// Three-way (device/edge/cloud) partitioning: cost-model sanity, greedy and
// alpha-expansion quality against exhaustive ground truth, and the
// structural expectations (edge wins latency, cloud wins money).

#include <gtest/gtest.h>

#include "ntco/app/generators.hpp"
#include "ntco/app/workloads.hpp"
#include "ntco/common/error.hpp"
#include "ntco/partition/multi_target.hpp"

namespace ntco::partition {
namespace {

MultiCostModel latency_model(const app::TaskGraph& g,
                             const MultiEnvironment& env) {
  return MultiCostModel(g, env, 1.0, 0.0, 0.0);
}

TEST(MultiPartition, BasicsAndPins) {
  const auto g = app::workloads::photo_backup();
  auto p = MultiPartition::all_device(g.component_count());
  EXPECT_EQ(p.count(Site::Device), 6u);
  EXPECT_TRUE(p.respects_pins(g));
  p.site[1] = Site::Edge;
  p.site[2] = Site::Cloud;
  EXPECT_EQ(p.to_string(), "DECDDD");
  p.site[0] = Site::Cloud;  // pinned component
  EXPECT_FALSE(p.respects_pins(g));
  EXPECT_STREQ(to_string(Site::Edge), "edge");
}

TEST(MultiCostModel, SiteCostsOrderAsExpected) {
  const auto g = app::workloads::ml_batch_training();
  const auto env = default_multi_environment();
  const auto m = latency_model(g, env);
  for (app::ComponentId id = 0; id < g.component_count(); ++id) {
    if (g.component(id).pinned_local) continue;
    // Edge (3 GHz, 2 ms overhead) beats cloud (2.5 GHz, 5 ms) beats the
    // 1.4 GHz phone on pure latency.
    EXPECT_LT(m.site_cost(id, Site::Edge), m.site_cost(id, Site::Cloud));
    EXPECT_LT(m.site_cost(id, Site::Cloud), m.site_cost(id, Site::Device));
  }
}

TEST(MultiCostModel, MoneyOrdersTheOtherWay) {
  const auto g = app::workloads::ml_batch_training();
  const auto env = default_multi_environment();
  const MultiCostModel m(g, env, 0.0, 0.0, 1.0);
  for (app::ComponentId id = 0; id < g.component_count(); ++id) {
    EXPECT_DOUBLE_EQ(m.site_cost(id, Site::Device), 0.0);
    EXPECT_GT(m.site_cost(id, Site::Edge), 0.0);
    EXPECT_GT(m.site_cost(id, Site::Cloud), 0.0);
  }
}

TEST(MultiCostModel, TransferDependsOnSitePair) {
  const auto g = app::workloads::video_transcode();
  const auto env = default_multi_environment();
  const auto m = latency_model(g, env);
  // Same site is free; the LAN to the edge is much faster than the WAN to
  // the cloud; the backhaul is fastest of all.
  for (const auto s : kAllSites)
    EXPECT_DOUBLE_EQ(m.transfer_cost(0, s, s), 0.0);
  EXPECT_LT(m.transfer_cost(0, Site::Device, Site::Edge),
            m.transfer_cost(0, Site::Device, Site::Cloud));
  EXPECT_LT(m.transfer_cost(0, Site::Edge, Site::Cloud),
            m.transfer_cost(0, Site::Device, Site::Cloud));
}

TEST(MultiCostModel, EvaluateRejectsPinViolations) {
  const auto g = app::workloads::photo_backup();
  const auto m = latency_model(g, default_multi_environment());
  auto p = MultiPartition::all_device(g.component_count());
  p.site[0] = Site::Edge;
  EXPECT_THROW((void)m.evaluate(p), ContractViolation);
}

TEST(MultiPartitioners, LatencyObjectivePrefersTheEdge) {
  const auto g = app::workloads::ml_batch_training();
  const auto m = latency_model(g, default_multi_environment());
  const auto p = MultiExhaustivePartitioner().plan(m);
  EXPECT_GT(p.count(Site::Edge), 0u);
  EXPECT_EQ(p.count(Site::Cloud), 0u);  // edge dominates cloud on latency
}

TEST(MultiPartitioners, MoneyObjectivePrefersDeviceThenCloud) {
  const auto g = app::workloads::ml_batch_training();
  // Pure money: the device is free, so everything stays on it.
  const MultiCostModel pure(g, default_multi_environment(), 0.0, 0.0, 1.0);
  const auto all_dev = MultiExhaustivePartitioner().plan(pure);
  EXPECT_EQ(all_dev.count(Site::Device), g.component_count());

  // Money-dominant with a whisper of latency: compute lands on the cheap
  // serverless cloud ($2.9e-5/s), not the amortised edge ($8.3e-5/s); the
  // edge appears at most as an incidental relay hop.
  const MultiCostModel m(g, default_multi_environment(), 0.0001, 0.0, 1.0);
  const auto p = MultiExhaustivePartitioner().plan(m);
  EXPECT_GT(p.count(Site::Cloud), 0u);
  EXPECT_GT(p.count(Site::Cloud), p.count(Site::Edge));
}

TEST(MultiPartitioners, ThreeWayNeverWorseThanTwoWay) {
  // Restricting the label set cannot help: the 3-way optimum must be at
  // least as good as device+cloud-only and device+edge-only optima.
  for (const auto& g : app::workloads::all()) {
    const auto m = latency_model(g, default_multi_environment());
    const auto p3 = MultiExhaustivePartitioner().plan(m);
    const double v3 = m.evaluate(p3);

    // Two-way optima via exhaustive search over the restricted label sets.
    auto restricted_best = [&](Site remote) {
      MultiPartition best = MultiPartition::all_device(g.component_count());
      double best_v = m.evaluate(best);
      MultiPartition c = best;
      const std::uint64_t combos = 1ULL << g.component_count();
      for (std::uint64_t mask = 1; mask < combos; ++mask) {
        bool ok = true;
        for (app::ComponentId id = 0; id < g.component_count(); ++id) {
          const bool rem = (mask >> id) & 1;
          if (rem && g.component(id).pinned_local) {
            ok = false;
            break;
          }
          c.site[id] = rem ? remote : Site::Device;
        }
        if (!ok) continue;
        const double v = m.evaluate(c);
        if (v < best_v) {
          best_v = v;
          best = c;
        }
      }
      return best_v;
    };
    EXPECT_LE(v3, restricted_best(Site::Cloud) + 1e-9) << g.name();
    EXPECT_LE(v3, restricted_best(Site::Edge) + 1e-9) << g.name();
  }
}

TEST(MultiPartitioners, GreedyAndAlphaRespectPinsOnWorkloads) {
  for (const auto& g : app::workloads::all()) {
    const auto m = latency_model(g, default_multi_environment());
    EXPECT_TRUE(MultiGreedyPartitioner().plan(m).respects_pins(g));
    EXPECT_TRUE(AlphaExpansionPartitioner().plan(m).respects_pins(g));
  }
}

TEST(MultiPartitioners, AlphaExpansionMatchesExhaustiveOnWorkloads) {
  for (const auto& g : app::workloads::all()) {
    for (const double money_w : {0.0, 1.0, 5.0}) {
      const MultiCostModel m(g, default_multi_environment(), 1.0, 0.05,
                             money_w);
      const double opt = m.evaluate(MultiExhaustivePartitioner().plan(m));
      const double alpha = m.evaluate(AlphaExpansionPartitioner().plan(m));
      EXPECT_LE(alpha, opt * 1.02 + 1e-9) << g.name() << " w=" << money_w;
      EXPECT_GE(alpha, opt - 1e-9) << g.name();
    }
  }
}

class AlphaExpansionProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AlphaExpansionProperty, NearOptimalOnRandomGraphs) {
  Rng rng(GetParam());
  app::GeneratorParams gp;
  gp.components = 5 + static_cast<std::size_t>(rng.uniform_int(0, 5));
  gp.mean_work =
      Cycles::mega(static_cast<std::uint64_t>(rng.uniform_int(100, 5000)));
  gp.mean_flow = DataSize::kilobytes(
      static_cast<std::uint64_t>(rng.uniform_int(20, 2000)));
  const auto g = app::layered_random(
      2 + static_cast<std::size_t>(rng.uniform_int(0, 2)), gp, rng.fork(1));

  MultiEnvironment env = default_multi_environment();
  env.cloud.uplink = DataRate::megabits_per_second(
      static_cast<std::uint64_t>(rng.uniform_int(2, 60)));
  env.cloud.downlink = env.cloud.uplink * 3.0;
  env.edge.speed = Frequency::gigahertz(rng.uniform(1.5, 5.0));

  const MultiCostModel m(g, env, rng.uniform(0.1, 1.0), rng.uniform(0.0, 0.1),
                         rng.uniform(0.0, 3.0));
  const double opt = m.evaluate(MultiExhaustivePartitioner().plan(m));
  const auto alpha_plan = AlphaExpansionPartitioner().plan(m);
  const double alpha = m.evaluate(alpha_plan);
  const double greedy = m.evaluate(MultiGreedyPartitioner().plan(m));

  EXPECT_TRUE(alpha_plan.respects_pins(g));
  EXPECT_GE(alpha, opt - 1e-9);
  // Alpha-expansion is near-optimal in practice; allow a small slack for
  // truncated non-metric instances.
  EXPECT_LE(alpha, opt * 1.05 + 1e-9)
      << g.name() << " alpha=" << alpha_plan.to_string();
  // And it should not lose to single-move hill climbing by much.
  EXPECT_LE(alpha, greedy * 1.02 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlphaExpansionProperty,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(MultiPartitioners, ExhaustiveRefusesHugeGraphs) {
  app::GeneratorParams gp;
  gp.components = 30;
  gp.pin_fraction = 0.0;
  const auto g = app::layered_random(4, gp, Rng(9));
  const auto m = latency_model(g, default_multi_environment());
  EXPECT_THROW((void)MultiExhaustivePartitioner().plan(m), ConfigError);
}

}  // namespace
}  // namespace ntco::partition
