#include <gtest/gtest.h>

#include "ntco/alloc/memory_optimizer.hpp"
#include "ntco/alloc/warm_pool.hpp"
#include "ntco/common/error.hpp"

namespace ntco::alloc {
namespace {

serverless::PlatformConfig provider() {
  serverless::PlatformConfig cfg;
  cfg.core_speed = Frequency::gigahertz(2.5);
  cfg.full_share_memory = DataSize::megabytes(1792);
  cfg.max_vcpus = 6.0;
  return cfg;
}

TEST(MemoryOptimizer, SweepCoversDeployableRange) {
  sim::Simulator s;
  serverless::Platform p(s, provider());
  const MemoryOptimizer opt(p);
  const auto curve = opt.sweep(Cycles::giga(10), DataSize::megabytes(128),
                               /*parallel_fraction=*/1.0,
                               DataSize::megabytes(512));
  ASSERT_FALSE(curve.empty());
  EXPECT_EQ(curve.front().memory, DataSize::megabytes(128));
  EXPECT_LE(curve.back().memory, DataSize::megabytes(10240));
  // Duration decreases monotonically with memory until the vCPU cap.
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_LE(curve[i].duration, curve[i - 1].duration);
}

TEST(MemoryOptimizer, FloorRespectsWorkingSet) {
  sim::Simulator s;
  serverless::Platform p(s, provider());
  const MemoryOptimizer opt(p);
  const auto curve = opt.sweep(Cycles::giga(1), DataSize::megabytes(700));
  EXPECT_GE(curve.front().memory, DataSize::megabytes(700));
}

TEST(MemoryOptimizer, UnconstrainedChoiceIsCostMinimal) {
  sim::Simulator s;
  serverless::Platform p(s, provider());
  const MemoryOptimizer opt(p);
  const auto curve = opt.sweep(Cycles::giga(20), DataSize::megabytes(128));
  const auto choice = opt.choose(Cycles::giga(20), DataSize::megabytes(128));
  EXPECT_TRUE(choice.feasible);
  for (const auto& pt : curve)
    EXPECT_LE(choice.chosen.cost, pt.cost);
}

TEST(MemoryOptimizer, DeadlineForcesLargerMemory) {
  sim::Simulator s;
  serverless::Platform p(s, provider());
  const MemoryOptimizer opt(p);
  const auto work = Cycles::giga(25);  // 10 s at full share
  const auto lazy = opt.choose(work, DataSize::megabytes(128));
  const auto tight = opt.choose(work, DataSize::megabytes(128), 1.0,
                                Duration::seconds(5));
  EXPECT_TRUE(tight.feasible);
  EXPECT_GE(tight.chosen.memory, lazy.chosen.memory);
  EXPECT_LE(tight.chosen.duration, Duration::seconds(5));
}

TEST(MemoryOptimizer, ImpossibleDeadlineReportsInfeasible) {
  sim::Simulator s;
  serverless::Platform p(s, provider());
  const MemoryOptimizer opt(p);
  const auto choice = opt.choose(Cycles::giga(1000), DataSize::megabytes(128), 1.0,
                                 Duration::millis(1));
  EXPECT_FALSE(choice.feasible);
  // Still returns the fastest configuration available.
  EXPECT_GT(choice.chosen.memory, DataSize::megabytes(5000));
}

TEST(MemoryOptimizer, TieBreaksTowardFasterConfiguration) {
  // For a 1 ms-scale job the billing quantum makes several configurations
  // cost-equal; the optimiser must pick the fastest of the cheapest.
  sim::Simulator s;
  serverless::Platform p(s, provider());
  const MemoryOptimizer opt(p);
  const auto curve = opt.sweep(Cycles::mega(1), DataSize::megabytes(128));
  const auto choice = opt.choose(Cycles::mega(1), DataSize::megabytes(128));
  for (const auto& pt : curve) {
    EXPECT_LE(choice.chosen.cost, pt.cost);
    if (pt.cost == choice.chosen.cost) {
      EXPECT_LE(choice.chosen.duration, pt.duration);
    }
  }
}

TEST(MemoryOptimizer, AmdahlLimitedFunctionHasInteriorCostOptimum) {
  // With limited parallelism, memory beyond one vCPU buys little speed but
  // full price: the cost curve has a strict interior minimum well below
  // the provider maximum, which is the whole point of allocation (T3).
  sim::Simulator s;
  serverless::Platform p(s, provider());
  const MemoryOptimizer opt(p);
  const auto work = Cycles::giga(100);
  const auto choice = opt.choose(work, DataSize::megabytes(128),
                                 /*parallel_fraction=*/0.5);
  EXPECT_TRUE(choice.feasible);
  EXPECT_LT(choice.chosen.memory, DataSize::megabytes(10240));
  // The top-of-range configuration is strictly more expensive.
  const auto curve = opt.sweep(work, DataSize::megabytes(128), 0.5);
  EXPECT_GT(curve.back().cost, choice.chosen.cost);
  // A serial function gains nothing beyond one vCPU, so durations flatten.
  const auto serial = opt.sweep(work, DataSize::megabytes(1792), 0.0);
  EXPECT_EQ(serial.front().duration, serial.back().duration);
}

TEST(MemoryOptimizer, InvalidStepRejected) {
  sim::Simulator s;
  serverless::Platform p(s, provider());
  const MemoryOptimizer opt(p);
  EXPECT_THROW(
      (void)opt.sweep(Cycles::giga(1), DataSize::megabytes(128), 1.0,
                      DataSize::megabytes(100)),  // not a 64 MB multiple
      ConfigError);
}

TEST(ErlangB, KnownValues) {
  // B(0, a) = 1 for any load.
  EXPECT_DOUBLE_EQ(erlang_b(0, 3.0), 1.0);
  // B(1, 1) = 1/2, B(2, 1) = 1/5 (textbook values).
  EXPECT_NEAR(erlang_b(1, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(erlang_b(2, 1.0), 0.2, 1e-12);
  // Zero load never blocks (with at least one server).
  EXPECT_DOUBLE_EQ(erlang_b(4, 0.0), 0.0);
}

TEST(ErlangB, MonotoneInServersAndLoad) {
  for (std::size_t n = 1; n < 20; ++n)
    EXPECT_LT(erlang_b(n + 1, 5.0), erlang_b(n, 5.0));
  for (double a = 1.0; a < 10.0; a += 1.0)
    EXPECT_LT(erlang_b(8, a), erlang_b(8, a + 1.0));
}

TEST(WarmPoolPlanner, MeetsTargetWithSmallestPool) {
  WarmPoolPlanner::Inputs in;
  in.arrivals_per_second = 10.0;
  in.service_time = Duration::millis(500);  // offered load 5 Erlangs
  in.target_cold_rate = 0.01;
  const auto plan = WarmPoolPlanner::plan(in);
  EXPECT_GT(plan.instances, 5u);  // must exceed the offered load
  EXPECT_LE(plan.predicted_cold_rate, 0.01);
  // One fewer instance would miss the target (minimality).
  EXPECT_GT(erlang_b(plan.instances - 1, 5.0), 0.01);
}

TEST(WarmPoolPlanner, ZeroLoadNeedsNoPool) {
  WarmPoolPlanner::Inputs in;
  in.arrivals_per_second = 0.0;
  const auto plan = WarmPoolPlanner::plan(in);
  EXPECT_EQ(plan.instances, 0u);
  EXPECT_TRUE(plan.standing_cost_per_hour.is_zero());
}

TEST(WarmPoolPlanner, StandingCostScalesWithPoolAndMemory) {
  WarmPoolPlanner::Inputs in;
  in.arrivals_per_second = 20.0;
  in.service_time = Duration::seconds(1);
  in.memory = DataSize::gigabytes(1);
  in.provisioned_price_per_gb_second = Money::nano_usd(4'167);
  const auto plan = WarmPoolPlanner::plan(in);
  const double expected_per_hour =
      4'167e-9 * static_cast<double>(plan.instances) * 3600.0;
  EXPECT_NEAR(plan.standing_cost_per_hour.to_usd(), expected_per_hour, 1e-6);
}

TEST(WarmPoolPlanner, CapsAtMaxInstances) {
  WarmPoolPlanner::Inputs in;
  in.arrivals_per_second = 1000.0;
  in.service_time = Duration::seconds(1);
  in.target_cold_rate = 0.0001;
  in.max_instances = 10;  // far too few for 1000 Erlangs
  const auto plan = WarmPoolPlanner::plan(in);
  EXPECT_EQ(plan.instances, 10u);
  EXPECT_GT(plan.predicted_cold_rate, 0.9);
}

TEST(WarmPoolPlanner, InvalidInputsRejected) {
  WarmPoolPlanner::Inputs in;
  in.target_cold_rate = 0.0;
  EXPECT_THROW((void)WarmPoolPlanner::plan(in), ContractViolation);
}

}  // namespace
}  // namespace ntco::alloc
