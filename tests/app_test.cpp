#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "ntco/app/generators.hpp"
#include "ntco/app/task_graph.hpp"
#include "ntco/app/workloads.hpp"
#include "ntco/common/error.hpp"

namespace ntco::app {
namespace {

TaskGraph diamond() {
  TaskGraph g("diamond");
  const auto a = g.add_component({"a", Cycles::mega(10), DataSize::megabytes(64),
                                  DataSize::megabytes(5), true});
  const auto b = g.add_component({"b", Cycles::mega(20), DataSize::megabytes(64),
                                  DataSize::megabytes(5), false});
  const auto c = g.add_component({"c", Cycles::mega(30), DataSize::megabytes(64),
                                  DataSize::megabytes(5), false});
  const auto d = g.add_component({"d", Cycles::mega(40), DataSize::megabytes(64),
                                  DataSize::megabytes(5), true});
  g.add_flow(a, b, DataSize::kilobytes(100));
  g.add_flow(a, c, DataSize::kilobytes(200));
  g.add_flow(b, d, DataSize::kilobytes(300));
  g.add_flow(c, d, DataSize::kilobytes(400));
  return g;
}

TEST(TaskGraph, BasicAccessors) {
  const auto g = diamond();
  EXPECT_EQ(g.component_count(), 4u);
  EXPECT_EQ(g.flow_count(), 4u);
  EXPECT_EQ(g.component(0).name, "a");
  EXPECT_EQ(g.flow(0).bytes, DataSize::kilobytes(100));
  EXPECT_EQ(g.out_flows(0).size(), 2u);
  EXPECT_EQ(g.in_flows(3).size(), 2u);
  EXPECT_EQ(g.pinned_count(), 2u);
}

TEST(TaskGraph, Totals) {
  const auto g = diamond();
  EXPECT_EQ(g.total_work(), Cycles::mega(100));
  EXPECT_EQ(g.total_flow_bytes(), DataSize::kilobytes(1000));
  EXPECT_DOUBLE_EQ(g.compute_to_communication(), 100e6 / 1e6);
}

TEST(TaskGraph, ContractsOnMalformedInput) {
  TaskGraph g("bad");
  EXPECT_THROW((void)g.add_component({"", Cycles::mega(1), {}, {}, false}),
               ContractViolation);
  const auto a = g.add_component({"a", Cycles::mega(1), {}, {}, false});
  EXPECT_THROW(g.add_flow(a, a, DataSize::bytes(1)), ContractViolation);
  EXPECT_THROW(g.add_flow(a, 99, DataSize::bytes(1)), ContractViolation);
  EXPECT_THROW((void)g.component(42), ContractViolation);
}

TEST(TaskGraph, TopologicalOrderRespectsFlows) {
  const auto g = diamond();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const auto& f : g.flows()) EXPECT_LT(pos[f.from], pos[f.to]);
}

TEST(TaskGraph, CycleIsDetected) {
  TaskGraph g("cyclic");
  const auto a = g.add_component({"a", Cycles::mega(1), {}, {}, false});
  const auto b = g.add_component({"b", Cycles::mega(1), {}, {}, false});
  g.add_flow(a, b, DataSize::bytes(1));
  g.add_flow(b, a, DataSize::bytes(1));
  EXPECT_FALSE(g.is_dag());
  EXPECT_THROW((void)g.topological_order(), ConfigError);
}

TEST(TaskGraph, SourcesAndSinks) {
  const auto g = diamond();
  EXPECT_EQ(g.sources(), std::vector<ComponentId>{0});
  EXPECT_EQ(g.sinks(), std::vector<ComponentId>{3});
}

TEST(TaskGraph, WorkScalingPreservesStructure) {
  const auto g = diamond();
  const auto scaled = g.with_work_scaled(2.0);
  EXPECT_EQ(scaled.component_count(), g.component_count());
  EXPECT_EQ(scaled.flow_count(), g.flow_count());
  EXPECT_EQ(scaled.total_work(), Cycles::mega(200));
  EXPECT_EQ(scaled.total_flow_bytes(), g.total_flow_bytes());
  EXPECT_EQ(scaled.component(0).pinned_local, true);
  EXPECT_THROW((void)g.with_work_scaled(0.0), ContractViolation);
}

TEST(Generators, PipelineShape) {
  GeneratorParams p;
  p.components = 6;
  const auto g = linear_pipeline(p, Rng(1));
  EXPECT_EQ(g.component_count(), 6u);
  EXPECT_EQ(g.flow_count(), 5u);
  EXPECT_TRUE(g.component(0).pinned_local);
  EXPECT_TRUE(g.component(5).pinned_local);
  for (ComponentId i = 1; i < 5; ++i)
    EXPECT_FALSE(g.component(i).pinned_local);
  EXPECT_TRUE(g.is_dag());
}

TEST(Generators, FanOutShape) {
  GeneratorParams p;
  const auto g = fan_out_fan_in(8, p, Rng(2));
  EXPECT_EQ(g.component_count(), 10u);  // split + 8 workers + join
  EXPECT_EQ(g.flow_count(), 16u);
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
  EXPECT_TRUE(g.is_dag());
}

TEST(Generators, DeterministicPerSeed) {
  GeneratorParams p;
  const auto a = layered_random(4, p, Rng(7));
  const auto b = layered_random(4, p, Rng(7));
  ASSERT_EQ(a.component_count(), b.component_count());
  for (ComponentId i = 0; i < a.component_count(); ++i)
    EXPECT_EQ(a.component(i).work, b.component(i).work);
}

class LayeredRandomProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LayeredRandomProperty, AlwaysValidDag) {
  GeneratorParams p;
  p.components = 24;
  const auto g = layered_random(5, p, Rng(GetParam()));
  EXPECT_EQ(g.component_count(), 24u);
  EXPECT_TRUE(g.is_dag());
  // Every non-source component is reachable (has >= 1 predecessor).
  const auto srcs = g.sources();
  const std::set<ComponentId> src_set(srcs.begin(), srcs.end());
  for (ComponentId v = 0; v < g.component_count(); ++v) {
    if (!src_set.contains(v)) {
      EXPECT_FALSE(g.in_flows(v).empty());
    }
  }
  // Sources are pinned (data acquisition stays on the UE).
  for (const auto s : srcs) EXPECT_TRUE(g.component(s).pinned_local);
  // No degenerate demands.
  for (const auto& c : g.components()) EXPECT_GT(c.work, Cycles::zero());
  for (const auto& f : g.flows()) EXPECT_GT(f.bytes, DataSize::zero());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayeredRandomProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(Workloads, AllAreValid) {
  for (const auto& g : workloads::all()) {
    EXPECT_TRUE(g.is_dag()) << g.name();
    EXPECT_GE(g.pinned_count(), 1u) << g.name();
    EXPECT_LT(g.pinned_count(), g.component_count()) << g.name();
    EXPECT_EQ(g.sources().size(), 1u) << g.name();
    EXPECT_GT(g.total_work(), Cycles::zero()) << g.name();
  }
}

TEST(Workloads, SpanTheComputeToCommunicationSpectrum) {
  // ML training is compute-dominated, video transcode transfer-dominated;
  // the other two sit in between. This ordering is what drives the F2
  // experiment's crossover.
  const double ml = workloads::ml_batch_training().compute_to_communication();
  const double etl = workloads::nightly_etl().compute_to_communication();
  const double photo = workloads::photo_backup().compute_to_communication();
  const double video = workloads::video_transcode().compute_to_communication();
  EXPECT_GT(ml, 20.0 * video);
  EXPECT_GT(etl, video);
  EXPECT_GT(photo, video);
  EXPECT_GT(ml, etl);
}

TEST(Workloads, EndpointsArePinned) {
  for (const auto& g : workloads::all()) {
    for (const auto s : g.sources())
      EXPECT_TRUE(g.component(s).pinned_local) << g.name();
    for (const auto s : g.sinks())
      EXPECT_TRUE(g.component(s).pinned_local) << g.name();
  }
}

}  // namespace
}  // namespace ntco::app
