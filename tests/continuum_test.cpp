#include "ntco/continuum/federation.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ntco/continuum/migration.hpp"
#include "ntco/edgesim/edge_platform.hpp"
#include "ntco/fleet/replicator.hpp"
#include "ntco/net/mobility.hpp"
#include "ntco/net/path.hpp"
#include "ntco/obs/trace.hpp"
#include "ntco/serverless/platform.hpp"
#include "ntco/sim/simulator.hpp"

namespace ntco::continuum {
namespace {

/// Jitter-free path spec so every transfer time is exact.
net::PathSpec flat_spec(std::string name, DataRate rate, Duration latency) {
  net::PathSpec s;
  s.name = std::move(name);
  s.up = {rate, latency, 0.0, 0.0};
  s.down = {rate, latency, 0.0, 0.0};
  return s;
}

edgesim::EdgeConfig edge_config(std::size_t servers, double usd_per_hour) {
  edgesim::EdgeConfig cfg;
  cfg.servers = servers;
  cfg.server_speed = Frequency::gigahertz(2.0);
  cfg.infra_cost_per_server_hour = Money::from_usd(usd_per_hour);
  cfg.request_overhead = Duration::millis(2);
  return cfg;
}

serverless::PlatformConfig cloud_config() {
  serverless::PlatformConfig cfg;
  cfg.cold_start_base = Duration::millis(100);
  cfg.spot_mean_time_to_preempt = Duration::zero();  // on-demand worlds
  return cfg;
}

serverless::FunctionSpec cloud_fn() {
  serverless::FunctionSpec fn;
  fn.name = "job";
  fn.memory = DataSize::megabytes(1792);  // one full 2.5 GHz vCPU
  fn.image = DataSize::megabytes(10);
  return fn;
}

JobSpec small_job() {
  JobSpec spec;
  spec.work = Cycles::giga(2);  // 1 s at 2 GHz, 0.8 s at 2.5 GHz
  spec.input = DataSize::megabytes(1);
  spec.output = DataSize::megabytes(1);
  spec.state = DataSize::megabytes(2);
  return spec;
}

TEST(Continuum, EdgeFirstPlacementRunsNearby) {
  sim::Simulator sim;
  edgesim::EdgePlatform edge(sim, edge_config(2, 0.05));
  serverless::Platform cloud(sim, cloud_config());
  const auto fn = cloud.deploy(cloud_fn());
  auto lan = net::make_path(
      flat_spec("lan", DataRate::megabits_per_second(800), Duration::millis(1)));
  auto wan = net::make_path(
      flat_spec("wan", DataRate::megabits_per_second(40), Duration::millis(25)));

  Federation fed(sim);
  fed.add_site(Site(0, "edge", SiteTier::Edge, edge, lan));
  fed.add_site(Site(1, "cloud", SiteTier::Cloud, cloud, fn, wan));

  JobOutcome out;
  fed.submit(small_job(), [&](const JobOutcome& o) { out = o; });
  sim.run();

  EXPECT_EQ(out.first_site, 0u);
  EXPECT_EQ(out.final_site, 0u);
  EXPECT_EQ(out.migrations, 0u);
  // 11 ms up (10 ms serialisation + 1 ms latency) + 2 ms dispatch + 1 s
  // exec + 11 ms down — exact, because nothing here is stochastic.
  EXPECT_EQ(out.completion, Duration::millis(1024));
  EXPECT_EQ(out.exec_total, Duration::seconds(1));
  EXPECT_TRUE(out.deadline_met);
  EXPECT_EQ(fed.stats().spillovers, 0u);
  EXPECT_EQ(fed.live_jobs(), 0u);
}

TEST(Continuum, SaturatedEdgeSpillsToCloud) {
  sim::Simulator sim;
  edgesim::EdgePlatform edge(sim, edge_config(2, 0.05));
  serverless::Platform cloud(sim, cloud_config());
  const auto fn = cloud.deploy(cloud_fn());
  auto lan = net::make_path(
      flat_spec("lan", DataRate::megabits_per_second(800), Duration::millis(1)));
  auto wan = net::make_path(
      flat_spec("wan", DataRate::megabits_per_second(40), Duration::millis(25)));

  Federation fed(sim);
  fed.add_site(Site(0, "edge", SiteTier::Edge, edge, lan));
  fed.add_site(Site(1, "cloud", SiteTier::Cloud, cloud, fn, wan));

  // Both edge servers busy for a long while: utilisation 1.0 >= 0.85.
  edge.submit(Cycles::giga(200), [](const edgesim::EdgeResult&) {});
  edge.submit(Cycles::giga(200), [](const edgesim::EdgeResult&) {});

  JobOutcome out;
  fed.submit(small_job(), [&](const JobOutcome& o) { out = o; });
  sim.run();

  EXPECT_EQ(out.final_site, 1u);
  EXPECT_EQ(fed.stats().spillovers, 1u);
  EXPECT_FALSE(out.cost.is_zero());
}

TEST(Continuum, PriceOverrideRoutesPastExpensiveEdge) {
  sim::Simulator sim;
  // The edge tier wins proximity but bills $10/server-hour; the job has no
  // deadline, so the price-aware override takes the strictly cheaper cloud.
  edgesim::EdgePlatform edge(sim, edge_config(2, 10.0));
  serverless::Platform cloud(sim, cloud_config());
  const auto fn = cloud.deploy(cloud_fn());
  auto lan = net::make_path(
      flat_spec("lan", DataRate::megabits_per_second(800), Duration::millis(1)));
  auto wan = net::make_path(
      flat_spec("wan", DataRate::megabits_per_second(40), Duration::millis(25)));

  Federation fed(sim);
  fed.add_site(Site(0, "edge", SiteTier::Edge, edge, lan));
  fed.add_site(Site(1, "cloud", SiteTier::Cloud, cloud, fn, wan));

  JobOutcome out;
  fed.submit(small_job(), [&](const JobOutcome& o) { out = o; });
  sim.run();

  EXPECT_EQ(out.final_site, 1u);
  EXPECT_EQ(fed.stats().spillovers, 1u);
  EXPECT_LT(out.cost, Money::from_usd(10.0 / 3600.0));  // < 1 edge-second
}

TEST(Continuum, TightDeadlineOverridesPriceAndIsAccounted) {
  sim::Simulator sim;
  edgesim::EdgePlatform edge(sim, edge_config(2, 10.0));
  serverless::Platform cloud(sim, cloud_config());
  const auto fn = cloud.deploy(cloud_fn());
  auto lan = net::make_path(
      flat_spec("lan", DataRate::megabits_per_second(800), Duration::millis(1)));
  // Cloud is cheap but its pipe is slow: 1 MB at 4 Mb/s = 2 s each way.
  auto wan = net::make_path(
      flat_spec("wan", DataRate::megabits_per_second(4), Duration::millis(25)));

  Federation fed(sim);
  fed.add_site(Site(0, "edge", SiteTier::Edge, edge, lan));
  fed.add_site(Site(1, "cloud", SiteTier::Cloud, cloud, fn, wan));

  // ~1.1 s needed via the edge; the 2 s deadline leaves no 1.5x slack for
  // the ~4.9 s cloud detour, so the expensive edge keeps the job and makes
  // the deadline.
  JobSpec spec = small_job();
  spec.deadline = Duration::seconds(2);
  JobOutcome tight;
  fed.submit(spec, [&](const JobOutcome& o) { tight = o; });
  sim.run();
  EXPECT_EQ(tight.final_site, 0u);
  EXPECT_TRUE(tight.deadline_met);
  EXPECT_EQ(fed.stats().deadline_misses, 0u);

  // An impossible deadline is still served, and the miss is counted.
  spec.deadline = Duration::millis(1);
  JobOutcome missed;
  fed.submit(spec, [&](const JobOutcome& o) { missed = o; });
  sim.run();
  EXPECT_FALSE(missed.deadline_met);
  EXPECT_EQ(fed.stats().deadline_misses, 1u);
}

TEST(Continuum, HugeCheckpointStaysPutAfterSpotPreemption) {
  sim::Simulator sim;
  // Spot-backed cloud site that preempts aggressively.
  serverless::PlatformConfig pc = cloud_config();
  pc.spot_mean_time_to_preempt = Duration::millis(100);
  pc.seed = 42;
  serverless::Platform cloud(sim, pc);
  const auto fn = cloud.deploy(cloud_fn());
  edgesim::EdgePlatform edge(sim, edge_config(2, 0.05));
  auto wan = net::make_path(
      flat_spec("wan", DataRate::megabits_per_second(40), Duration::millis(25)));
  auto slow = net::make_path(
      flat_spec("cell", DataRate::megabits_per_second(8), Duration::millis(25)));
  auto link = net::make_path(
      flat_spec("xsite", DataRate::megabits_per_second(8), Duration::millis(5)));

  Federation fed(sim);
  SiteConfig spot_cfg;
  spot_cfg.faas_tier = serverless::Tier::Spot;
  fed.add_site(Site(0, "spot", SiteTier::Cloud, cloud, fn, wan, spot_cfg));
  fed.add_site(Site(1, "edge", SiteTier::Edge, edge, slow));
  fed.set_route(0, 1, link);

  obs::JsonlTraceWriter trace;
  fed.attach_observer(&trace, nullptr);

  // Saturate the edge so placement starts on spot, and keep it saturated
  // past the job's lifetime so re-decisions never prefer moving there.
  edge.submit(Cycles::giga(400), [](const edgesim::EdgeResult&) {});
  edge.submit(Cycles::giga(400), [](const edgesim::EdgeResult&) {});

  // A 50 MB checkpoint over an 8 Mb/s inter-site route costs ~50 s —
  // vastly more than the <= 0.8 s of remaining work — so every preemption
  // decision resolves to staying put and resuming with credit.
  JobSpec spec = small_job();
  spec.state = DataSize::megabytes(50);
  JobOutcome out;
  fed.submit(spec, [&](const JobOutcome& o) { out = o; });
  sim.run();

  EXPECT_EQ(out.final_site, 0u);
  EXPECT_GE(fed.stats().stay_puts, 1u);
  EXPECT_EQ(fed.stats().migrations, 0u);
  EXPECT_EQ(fed.stats().restarts, 0u);
  EXPECT_NE(trace.str().find("continuum.migrate.stay"), std::string::npos);
  // Credited resumes mean total exec sums to one full run regardless of
  // how many times the spot market interrupted it.
  EXPECT_EQ(out.exec_total, Duration::millis(800));
}

TEST(Continuum, GracefulFailureMigratesAndReroutesWhenDestinationDies) {
  sim::Simulator sim;
  edgesim::EdgePlatform edge_a(sim, edge_config(1, 0.05));
  edgesim::EdgePlatform edge_b(sim, edge_config(2, 0.10));
  serverless::Platform cloud(sim, cloud_config());
  const auto fn = cloud.deploy(cloud_fn());
  auto lan_a = net::make_path(
      flat_spec("lanA", DataRate::megabits_per_second(800), Duration::millis(1)));
  auto lan_b = net::make_path(
      flat_spec("lanB", DataRate::megabits_per_second(8), Duration::millis(1)));
  auto wan_c = net::make_path(
      flat_spec("wanC", DataRate::megabits_per_second(8), Duration::millis(25)));
  auto ab = net::make_path(
      flat_spec("a-b", DataRate::megabits_per_second(80), Duration::millis(5)));

  Federation fed(sim);
  fed.add_site(Site(0, "edge-a", SiteTier::Edge, edge_a, lan_a));
  fed.add_site(Site(1, "edge-b", SiteTier::Edge, edge_b, lan_b));
  fed.add_site(Site(2, "cloud", SiteTier::Cloud, cloud, fn, wan_c));
  fed.set_route(0, 1, ab);

  obs::JsonlTraceWriter trace;
  fed.attach_observer(&trace, nullptr);

  JobOutcome out;
  fed.submit(small_job(), [&](const JobOutcome& o) { out = o; });

  // t=300ms: A drains gracefully; the 2 MB checkpoint heads for B (0.2 s
  // on the 80 Mb/s inter-site route beats re-uploading the input at
  // 8 Mb/s). t=400ms: B dies while the state is mid-flight, so the
  // arrival bounces and the job re-places onto the cloud from the UE.
  sim.schedule_at(TimePoint::origin() + Duration::millis(300),
                  [&] { fed.fail_site(0); });
  sim.schedule_at(TimePoint::origin() + Duration::millis(400),
                  [&] { fed.fail_site(1); });
  sim.run();

  EXPECT_EQ(out.first_site, 0u);
  EXPECT_EQ(out.final_site, 2u);
  EXPECT_EQ(fed.stats().migrations, 1u);
  EXPECT_EQ(fed.stats().reroutes, 1u);
  EXPECT_EQ(fed.stats().restarts, 0u);
  EXPECT_NE(trace.str().find("continuum.migrate.begin"), std::string::npos);
  EXPECT_NE(trace.str().find("continuum.migrate.reroute"), std::string::npos);
  // 287 ms rendered on A before the drain + the credited remainder on the
  // 2.5 GHz cloud (800 - 287 ms): the credit survived both hops.
  EXPECT_EQ(out.exec_total, Duration::millis(800));
  EXPECT_EQ(fed.live_jobs(), 0u);
}

TEST(Continuum, LiveMigrationBeatsRestartFromZero) {
  // Same failure, two policies: live migration carries 287 ms of credit
  // over the inter-site route; the ablation re-uploads and re-executes.
  const auto run = [](bool live) {
    sim::Simulator sim;
    edgesim::EdgePlatform edge(sim, edge_config(1, 0.05));
    serverless::Platform cloud(sim, cloud_config());
    const auto fn = cloud.deploy(cloud_fn());
    auto lan = net::make_path(flat_spec(
        "lan", DataRate::megabits_per_second(800), Duration::millis(1)));
    auto wan = net::make_path(flat_spec(
        "wan", DataRate::megabits_per_second(8), Duration::millis(25)));
    auto ac = net::make_path(flat_spec(
        "a-c", DataRate::megabits_per_second(80), Duration::millis(5)));

    FederationConfig cfg;
    cfg.live_migration = live;
    Federation fed(sim, cfg);
    fed.add_site(Site(0, "edge", SiteTier::Edge, edge, lan));
    fed.add_site(Site(1, "cloud", SiteTier::Cloud, cloud, fn, wan));
    fed.set_route(0, 1, ac);

    JobOutcome out;
    fed.submit(small_job(), [&](const JobOutcome& o) { out = o; });
    sim.schedule_at(TimePoint::origin() + Duration::millis(300),
                    [&] { fed.fail_site(0); });
    sim.run();
    EXPECT_EQ(out.final_site, 1u);
    return out;
  };

  const JobOutcome live = run(true);
  const JobOutcome restart = run(false);
  EXPECT_EQ(live.exec_total, Duration::millis(800));      // 287 + 513
  EXPECT_EQ(restart.exec_total, Duration::millis(1087));  // 287 + 800
  EXPECT_LT(live.completion, restart.completion);
}

TEST(Continuum, AbruptFailureParksUntilRestore) {
  sim::Simulator sim;
  edgesim::EdgePlatform edge(sim, edge_config(1, 0.05));
  auto lan = net::make_path(
      flat_spec("lan", DataRate::megabits_per_second(800), Duration::millis(1)));

  Federation fed(sim);
  fed.add_site(Site(0, "edge", SiteTier::Edge, edge, lan));

  obs::JsonlTraceWriter trace;
  fed.attach_observer(&trace, nullptr);

  JobOutcome out;
  bool done = false;
  fed.submit(small_job(), [&](const JobOutcome& o) {
    out = o;
    done = true;
  });
  // Abrupt crash: progress is lost, and with no other site alive the job
  // parks until the site comes back.
  sim.schedule_at(TimePoint::origin() + Duration::millis(300),
                  [&] { fed.fail_site(0, /*graceful=*/false); });
  sim.schedule_at(TimePoint::origin() + Duration::seconds(5),
                  [&] { fed.restore_site(0); });
  sim.run();

  ASSERT_TRUE(done);
  EXPECT_EQ(fed.stats().parked, 1u);
  EXPECT_NE(trace.str().find("continuum.job.parked"), std::string::npos);
  // Credit was dropped (abrupt), so the full exec re-ran after restore.
  EXPECT_EQ(out.exec_total, Duration::millis(1287));  // 287 lost + 1000
  EXPECT_GT(out.completion, Duration::seconds(5));
  EXPECT_EQ(fed.live_jobs(), 0u);
}

TEST(Continuum, CapacityFactorTracksAliveSites) {
  sim::Simulator sim;
  edgesim::EdgePlatform edge(sim, edge_config(1, 0.05));
  serverless::Platform cloud(sim, cloud_config());
  const auto fn = cloud.deploy(cloud_fn());
  auto lan = net::make_path(
      flat_spec("lan", DataRate::megabits_per_second(800), Duration::millis(1)));
  auto wan = net::make_path(
      flat_spec("wan", DataRate::megabits_per_second(40), Duration::millis(25)));

  Federation fed(sim);
  fed.add_site(Site(0, "edge", SiteTier::Edge, edge, lan));
  fed.add_site(Site(1, "cloud", SiteTier::Cloud, cloud, fn, wan));
  EXPECT_DOUBLE_EQ(fed.capacity_factor(), 1.0);
  fed.fail_site(0);
  EXPECT_DOUBLE_EQ(fed.capacity_factor(), 0.5);
  fed.fail_site(1);
  EXPECT_DOUBLE_EQ(fed.capacity_factor(), 0.0);
  fed.restore_site(0);
  EXPECT_DOUBLE_EQ(fed.capacity_factor(), 0.5);
}

TEST(Continuum, MobilityFollowsUserToNearerEdgeSite) {
  sim::Simulator sim;
  edgesim::EdgePlatform home(sim, edge_config(2, 0.05));
  edgesim::EdgePlatform office(sim, edge_config(2, 0.05));
  // The home site's pipe is a thin cell link; the office LAN is fast. A
  // 50 MB result download dominates, so following the commute pays.
  auto home_route = net::make_path(
      flat_spec("home", DataRate::megabits_per_second(8), Duration::millis(5)));
  auto office_route = net::make_path(flat_spec(
      "office", DataRate::megabits_per_second(800), Duration::millis(1)));
  auto backhaul = net::make_path(
      flat_spec("bh", DataRate::megabits_per_second(80), Duration::millis(5)));

  Federation fed(sim);
  fed.add_site(Site(0, "home", SiteTier::Edge, home, home_route));
  fed.add_site(Site(1, "office", SiteTier::Edge, office, office_route));
  fed.set_route(0, 1, backhaul);

  obs::JsonlTraceWriter trace;
  fed.attach_observer(&trace, nullptr);

  // Keep the office saturated at submit time so placement starts at home.
  office.submit(Cycles::giga(3), [](const edgesim::EdgeResult&) {});
  office.submit(Cycles::giga(3), [](const edgesim::EdgeResult&) {});

  JobSpec spec;
  spec.work = Cycles::giga(20);  // 10 s of exec
  spec.input = DataSize::kilobytes(100);
  spec.output = DataSize::megabytes(50);
  spec.state = DataSize::megabytes(1);
  JobOutcome out;
  fed.submit(spec, [&](const JobOutcome& o) { out = o; });

  // Commute at t=2s: the schedule flips WiFi -> 4G and the preference map
  // flips home -> office.
  net::MobilitySchedule sched({
      {net::to_profile(net::spec_wifi()), Duration::seconds(2), Money::zero()},
      {net::to_profile(net::spec_4g()), Duration::hours(1), Money::zero()},
  });
  fed.migration().follow(
      sched,
      [](const net::ConnectivityPhase& p) -> SiteId {
        return p.tech.name == "WiFi" ? 0 : 1;
      },
      TimePoint::origin() + Duration::seconds(3));
  sim.run();

  EXPECT_EQ(out.first_site, 0u);
  EXPECT_EQ(out.final_site, 1u);
  EXPECT_EQ(fed.stats().migrations, 1u);
  EXPECT_NE(trace.str().find("continuum.mobility.phase"), std::string::npos);
  EXPECT_NE(trace.str().find("continuum.migrate.begin"), std::string::npos);
  // The ~1.9 s rendered at home arrived at the office as credit.
  EXPECT_EQ(out.exec_total, Duration::seconds(10));
}

// Fleet determinism: a sharded continuum run (placements, a failure wave,
// migrations, restores) must merge to byte-identical traces at 1 and 8
// workers. Suite name starts with "Fleet" so tools/ci.sh reruns it under
// ThreadSanitizer.
TEST(FleetContinuum, MigrationTracesByteIdenticalAcrossWorkerCounts) {
  const auto run_fleet = [](std::size_t threads) {
    fleet::Replicator fleet(2024, threads);
    return fleet.reduce(
        8, std::string{},
        [](fleet::ShardContext& ctx) {
          sim::Simulator sim;
          edgesim::EdgePlatform edge(sim, edge_config(2, 0.05));
          serverless::Platform cloud(sim, cloud_config());
          const auto fn = cloud.deploy(cloud_fn());
          auto lan = net::make_path(flat_spec(
              "lan", DataRate::megabits_per_second(800), Duration::millis(1)));
          auto wan = net::make_path(flat_spec(
              "wan", DataRate::megabits_per_second(8), Duration::millis(25)));
          auto xs = net::make_path(flat_spec(
              "xs", DataRate::megabits_per_second(80), Duration::millis(5)));

          Federation fed(sim);
          fed.add_site(Site(0, "edge", SiteTier::Edge, edge, lan));
          fed.add_site(Site(1, "cloud", SiteTier::Cloud, cloud, fn, wan));
          fed.set_route(0, 1, xs);

          obs::JsonlTraceWriter trace;
          fed.attach_observer(&trace, nullptr);

          const std::int64_t jobs = ctx.rng.uniform_int(3, 6);
          for (std::int64_t i = 0; i < jobs; ++i) {
            JobSpec spec = small_job();
            spec.work = Cycles::giga(
                static_cast<std::uint64_t>(ctx.rng.uniform_int(1, 4)));
            fed.submit(spec, [](const JobOutcome&) {});
          }
          sim.schedule_at(TimePoint::origin() + Duration::millis(300),
                          [&] { fed.fail_site(0); });
          sim.schedule_at(TimePoint::origin() + Duration::seconds(2),
                          [&] { fed.restore_site(0); });
          sim.run();
          return trace.str();
        },
        [](std::string& acc, std::string&& shard_trace, std::size_t) {
          acc += shard_trace;
        });
  };

  const std::string t1 = run_fleet(1);
  const std::string t8 = run_fleet(8);
  EXPECT_FALSE(t1.empty());
  EXPECT_NE(t1.find("continuum.migrate."), std::string::npos);
  EXPECT_EQ(t1, t8);
}

}  // namespace
}  // namespace ntco::continuum
