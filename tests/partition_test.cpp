#include <gtest/gtest.h>

#include "ntco/app/generators.hpp"
#include "ntco/app/workloads.hpp"
#include "ntco/common/error.hpp"
#include "ntco/partition/cost_model.hpp"
#include "ntco/partition/max_flow.hpp"
#include "ntco/partition/partitioners.hpp"

namespace ntco::partition {
namespace {

Environment fast_cloud_env() {
  Environment env;
  env.device = device::budget_phone();
  env.remote_speed = Frequency::gigahertz(2.5);
  env.remote_overhead = Duration::millis(5);
  env.uplink = DataRate::megabits_per_second(10);
  env.downlink = DataRate::megabits_per_second(30);
  env.uplink_latency = Duration::millis(25);
  env.downlink_latency = Duration::millis(25);
  return env;
}

TEST(Partition, BasicsAndPins) {
  auto g = app::workloads::photo_backup();
  auto p = Partition::all_local(g.component_count());
  EXPECT_EQ(p.remote_count(), 0u);
  EXPECT_TRUE(p.respects_pins(g));
  p.placement[1] = Placement::Remote;
  EXPECT_EQ(p.remote_count(), 1u);
  EXPECT_EQ(p.to_string(), "LRLLLL");
  p.placement[0] = Placement::Remote;  // component 0 is pinned
  EXPECT_FALSE(p.respects_pins(g));
}

TEST(CostModel, LocalOnlyBreakdownMatchesDeviceMath) {
  const auto g = app::workloads::photo_backup();
  const CostModel model(g, fast_cloud_env(), Objective::latency());
  const auto b = model.breakdown(Partition::all_local(g.component_count()));
  // All components at 1.4 GHz, no transfers, no money. Per-component
  // execution times round up to whole microseconds, so sum them the same
  // way.
  const device::Device ue(device::budget_phone());
  Duration expected;
  for (const auto& c : g.components()) expected += ue.exec_time(c.work);
  EXPECT_EQ(b.latency, expected);
  EXPECT_TRUE(b.money.is_zero());
  EXPECT_GT(b.energy, Energy::zero());
  EXPECT_DOUBLE_EQ(b.objective, b.latency.to_seconds());
}

TEST(CostModel, RemoteExecutionIsFasterButCostsMoney) {
  const auto g = app::workloads::ml_batch_training();
  const CostModel model(g, fast_cloud_env(), Objective::latency());
  for (app::ComponentId id = 0; id < g.component_count(); ++id) {
    if (g.component(id).pinned_local) continue;
    // 2.5 GHz cloud beats the 1.4 GHz phone on every component.
    EXPECT_LT(model.remote_cost(id), model.local_cost(id)) << id;
  }
}

TEST(CostModel, TransferCostScalesWithBytesAndDirection) {
  const auto g = app::workloads::video_transcode();
  const CostModel model(g, fast_cloud_env(), Objective::latency());
  // Flow 0 is 120 MB, flow 4 is 35 MB: upload cost must order accordingly.
  EXPECT_GT(model.upload_cost(0), model.upload_cost(4));
  // Downlink is 3x faster than uplink, so download < upload per flow.
  EXPECT_LT(model.download_cost(0), model.upload_cost(0));
}

TEST(CostModel, EvaluateRejectsPinViolations) {
  const auto g = app::workloads::photo_backup();
  const CostModel model(g, fast_cloud_env(), Objective::latency());
  auto p = Partition::all_local(g.component_count());
  p.placement[0] = Placement::Remote;  // pinned
  EXPECT_THROW((void)model.evaluate(p), ContractViolation);
}

TEST(CostModel, MoneyObjectiveMakesLocalFree) {
  const auto g = app::workloads::photo_backup();
  const CostModel model(g, fast_cloud_env(), Objective::cost());
  for (app::ComponentId id = 0; id < g.component_count(); ++id)
    EXPECT_DOUBLE_EQ(model.local_cost(id), 0.0);
  // With a money-only objective, all-local is optimal.
  const MinCutPartitioner mincut;
  EXPECT_EQ(mincut.plan(model).remote_count(), 0u);
}

TEST(MaxFlow, TextbookNetwork) {
  // Classic 6-node example with max flow 19.
  MaxFlow f(6);
  f.add_arc(0, 1, 10);
  f.add_arc(0, 2, 10);
  f.add_arc(1, 2, 2);
  f.add_arc(1, 3, 4);
  f.add_arc(1, 4, 8);
  f.add_arc(2, 4, 9);
  f.add_arc(4, 3, 6);
  f.add_arc(3, 5, 10);
  f.add_arc(4, 5, 10);
  EXPECT_DOUBLE_EQ(f.solve(0, 5), 19.0);
  const auto side = f.min_cut_source_side(0);
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[5]);
}

TEST(MaxFlow, DisconnectedSinkHasZeroFlow) {
  MaxFlow f(3);
  f.add_arc(0, 1, 5);
  EXPECT_DOUBLE_EQ(f.solve(0, 2), 0.0);
  const auto side = f.min_cut_source_side(0);
  EXPECT_TRUE(side[1]);
  EXPECT_FALSE(side[2]);
}

TEST(MaxFlow, InfiniteCapacityPathIsUnbounded) {
  MaxFlow f(2);
  f.add_arc(0, 1, std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isinf(f.solve(0, 1)));
}

TEST(Partitioners, LocalAndRemoteBaselines) {
  const auto g = app::workloads::nightly_etl();
  const CostModel model(g, fast_cloud_env(), Objective::latency());
  EXPECT_EQ(LocalOnlyPartitioner().plan(model).remote_count(), 0u);
  const auto remote = RemoteAllPartitioner().plan(model);
  EXPECT_EQ(remote.remote_count(),
            g.component_count() - g.pinned_count());
  EXPECT_TRUE(remote.respects_pins(g));
}

TEST(Partitioners, RandomRespectsPinsAndProbability) {
  const auto g = app::workloads::nightly_etl();
  const CostModel model(g, fast_cloud_env(), Objective::latency());
  const RandomPartitioner all(1.0, Rng(1));
  EXPECT_EQ(all.plan(model).remote_count(),
            g.component_count() - g.pinned_count());
  const RandomPartitioner none(0.0, Rng(1));
  EXPECT_EQ(none.plan(model).remote_count(), 0u);
}

TEST(Partitioners, GreedyNeverWorseThanBaselines) {
  for (const auto& g : app::workloads::all()) {
    const CostModel model(g, fast_cloud_env(),
                          Objective::non_time_critical());
    const double greedy = model.evaluate(GreedyPartitioner().plan(model));
    const double local = model.evaluate(LocalOnlyPartitioner().plan(model));
    const double remote = model.evaluate(RemoteAllPartitioner().plan(model));
    EXPECT_LE(greedy, local + 1e-9) << g.name();
    EXPECT_LE(greedy, remote + 1e-9) << g.name();
  }
}

TEST(Partitioners, MinCutMatchesExhaustiveOnWorkloads) {
  for (const auto& g : app::workloads::all()) {
    for (const auto obj :
         {Objective::latency(), Objective::energy(),
          Objective::non_time_critical()}) {
      const CostModel model(g, fast_cloud_env(), obj);
      const double opt = model.evaluate(ExhaustivePartitioner().plan(model));
      const double cut = model.evaluate(MinCutPartitioner().plan(model));
      EXPECT_NEAR(cut, opt, 1e-9) << g.name();
    }
  }
}

/// Property: on random DAGs under random environments, min-cut is exactly
/// optimal (matches exhaustive) and all searchers respect pins.
class MinCutOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinCutOptimality, MatchesExhaustiveOnRandomGraphs) {
  Rng rng(GetParam());
  app::GeneratorParams gp;
  gp.components = 4 + static_cast<std::size_t>(rng.uniform_int(0, 8));
  gp.mean_work = Cycles::mega(
      static_cast<std::uint64_t>(rng.uniform_int(50, 5000)));
  gp.mean_flow = DataSize::kilobytes(
      static_cast<std::uint64_t>(rng.uniform_int(10, 3000)));
  const auto g = app::layered_random(
      2 + static_cast<std::size_t>(rng.uniform_int(0, 2)), gp, rng.fork(1));

  Environment env = fast_cloud_env();
  env.uplink = DataRate::megabits_per_second(
      static_cast<std::uint64_t>(rng.uniform_int(1, 100)));
  env.downlink = env.uplink * 2.0;
  env.remote_speed = Frequency::gigahertz(rng.uniform(1.0, 8.0));

  const Objective obj{rng.uniform(0.0, 1.0), rng.uniform(0.0, 0.2),
                      rng.uniform(0.0, 5.0)};
  const CostModel model(g, env, obj);

  const auto exact = ExhaustivePartitioner().plan(model);
  const auto cut = MinCutPartitioner().plan(model);
  EXPECT_TRUE(cut.respects_pins(g));
  EXPECT_NEAR(model.evaluate(cut), model.evaluate(exact), 1e-9)
      << "graph=" << g.name() << " cut=" << cut.to_string()
      << " exact=" << exact.to_string();

  // Searchers are never better than the optimum (sanity of evaluate()).
  const double opt = model.evaluate(exact);
  EXPECT_GE(model.evaluate(GreedyPartitioner().plan(model)), opt - 1e-9);
  AnnealingPartitioner::Params ap;
  ap.iterations = 2000;
  EXPECT_GE(model.evaluate(AnnealingPartitioner(ap, rng.fork(2)).plan(model)),
            opt - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinCutOptimality,
                         ::testing::Range<std::uint64_t>(0, 40));

TEST(Partitioners, AnnealingFindsOptimumOnSmallGraphs) {
  const auto g = app::workloads::photo_backup();
  const CostModel model(g, fast_cloud_env(), Objective::latency());
  const double opt = model.evaluate(ExhaustivePartitioner().plan(model));
  AnnealingPartitioner::Params p;
  p.iterations = 5000;
  const double got =
      model.evaluate(AnnealingPartitioner(p, Rng(3)).plan(model));
  EXPECT_NEAR(got, opt, opt * 0.05);
}

TEST(Partitioners, ExhaustiveRefusesHugeGraphs) {
  app::GeneratorParams gp;
  gp.components = 40;
  gp.pin_fraction = 0.0;
  const auto g = app::layered_random(4, gp, Rng(4));
  const CostModel model(g, fast_cloud_env(), Objective::latency());
  EXPECT_THROW((void)ExhaustivePartitioner().plan(model), ConfigError);
}

TEST(Partitioners, OffloadDecisionFollowsBandwidth) {
  // ML training (compute-heavy) offloads even on 3G; video transcode
  // (transfer-heavy) stays local on a slow link but offloads on a fast one.
  const auto ml = app::workloads::ml_batch_training();
  Environment slow = fast_cloud_env();
  slow.uplink = DataRate::megabits_per_second(1);
  slow.downlink = DataRate::megabits_per_second(4);
  {
    const CostModel model(ml, slow, Objective::latency());
    EXPECT_GT(MinCutPartitioner().plan(model).remote_count(), 0u);
  }
  const auto video = app::workloads::video_transcode();
  {
    const CostModel model(video, slow, Objective::latency());
    EXPECT_EQ(MinCutPartitioner().plan(model).remote_count(), 0u);
  }
  Environment fast = fast_cloud_env();
  fast.uplink = DataRate::megabits_per_second(500);
  fast.downlink = DataRate::megabits_per_second(500);
  fast.remote_speed = Frequency::gigahertz(8.0);
  {
    const CostModel model(video, fast, Objective::latency());
    EXPECT_GT(MinCutPartitioner().plan(model).remote_count(), 0u);
  }
}

TEST(Partitioners, StandardPortfolioIsComplete) {
  const auto portfolio = standard_portfolio(42);
  ASSERT_EQ(portfolio.size(), 6u);
  const auto g = app::workloads::photo_backup();
  const CostModel model(g, fast_cloud_env(), Objective::latency());
  for (const auto& p : portfolio) {
    EXPECT_FALSE(p->name().empty());
    EXPECT_TRUE(p->plan(model).respects_pins(g)) << p->name();
  }
}

}  // namespace
}  // namespace ntco::partition
