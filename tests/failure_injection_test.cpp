// Failure injection: flaky links, controller retries, local fallback, and
// run-failure escalation.

#include <gtest/gtest.h>

#include "ntco/app/workloads.hpp"
#include "ntco/common/error.hpp"
#include "ntco/core/controller.hpp"
#include "ntco/net/flaky_link.hpp"
#include "ntco/net/path.hpp"

namespace ntco {
namespace {

/// Path whose uplink/downlink fail with the given probabilities.
net::NetworkPath flaky_path(double up_fail, double down_fail,
                            std::uint64_t seed) {
  const auto p = net::profile_wifi();
  return net::NetworkPath(
      "flaky-wifi",
      std::make_unique<net::FlakyLink>(
          std::make_unique<net::FixedLink>(p.one_way_latency, p.uplink),
          up_fail, Duration::seconds(2), Rng(seed)),
      std::make_unique<net::FlakyLink>(
          std::make_unique<net::FixedLink>(p.one_way_latency, p.downlink),
          down_fail, Duration::seconds(2), Rng(seed + 1)));
}

struct Fixture {
  sim::Simulator sim;
  serverless::Platform platform;
  device::Device ue;
  net::NetworkPath path;
  core::OffloadController controller;

  Fixture(double up_fail, double down_fail, std::uint64_t seed = 7,
          core::ExecutionMode mode = core::ExecutionMode::Sequential)
      : platform(sim, {}),
        ue(device::budget_phone()),
        path(flaky_path(up_fail, down_fail, seed)),
        controller(sim, platform, ue, path, make_cfg(mode)) {}

  static core::ControllerConfig make_cfg(core::ExecutionMode mode) {
    core::ControllerConfig cfg;
    cfg.objective = partition::Objective::latency();
    cfg.execution_mode = mode;
    cfg.max_transfer_retries = 2;
    return cfg;
  }
};

TEST(FlakyLink, NeverFailsAtRateZero) {
  net::FlakyLink link(
      std::make_unique<net::FixedLink>(Duration::millis(5),
                                       DataRate::megabits_per_second(10)),
      0.0, Duration::seconds(1), Rng(1));
  for (int i = 0; i < 100; ++i) {
    const auto a = link.try_transfer(DataSize::kilobytes(100));
    EXPECT_TRUE(a.ok);
  }
  EXPECT_EQ(link.failures(), 0u);
}

TEST(FlakyLink, AlwaysFailsAtRateOne) {
  net::FlakyLink link(
      std::make_unique<net::FixedLink>(Duration::millis(5),
                                       DataRate::megabits_per_second(10)),
      1.0, Duration::seconds(3), Rng(2));
  const auto a = link.try_transfer(DataSize::kilobytes(100));
  EXPECT_FALSE(a.ok);
  EXPECT_EQ(a.elapsed, Duration::seconds(3));  // timeout burned
  EXPECT_EQ(link.failures(), 1u);
}

TEST(FlakyLink, FailureRateIsRespected) {
  net::FlakyLink link(
      std::make_unique<net::FixedLink>(Duration::millis(5),
                                       DataRate::megabits_per_second(10)),
      0.25, Duration::seconds(1), Rng(3));
  int failures = 0;
  for (int i = 0; i < 4000; ++i)
    if (!link.try_transfer(DataSize::bytes(100)).ok) ++failures;
  EXPECT_NEAR(failures / 4000.0, 0.25, 0.03);
}

TEST(FlakyLink, AttemptHelperHandlesPlainLinks) {
  net::FixedLink plain(Duration::millis(5),
                       DataRate::megabits_per_second(10));
  const auto a = net::attempt_transfer(plain, DataSize::kilobytes(10));
  EXPECT_TRUE(a.ok);
  EXPECT_GT(a.elapsed, Duration::zero());
}

TEST(FlakyLink, InvalidConstructionThrows) {
  EXPECT_THROW(net::FlakyLink(nullptr, 0.1, Duration::seconds(1), Rng(1)),
               ContractViolation);
  EXPECT_THROW(net::FlakyLink(std::make_unique<net::FixedLink>(
                                  Duration::millis(1),
                                  DataRate::megabits_per_second(1)),
                              1.5, Duration::seconds(1), Rng(1)),
               ContractViolation);
}

TEST(FailureInjection, ReliablePathReportsNoFailures) {
  Fixture fx(0.0, 0.0);
  const auto g = app::workloads::ml_batch_training();
  const auto plan = fx.controller.prepare(g, partition::MinCutPartitioner{});
  const auto r = fx.controller.execute(plan, g);
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.transfer_failures, 0u);
  EXPECT_EQ(r.local_fallbacks, 0u);
}

TEST(FailureInjection, OccasionalFailuresAreRetriedTransparently) {
  // 20% loss with 2 retries: P(3 consecutive losses) = 0.8%, so most runs
  // complete with retries absorbed into the makespan.
  int completed = 0, with_retries = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Fixture fx(0.2, 0.2, 100 + seed);
    const auto g = app::workloads::ml_batch_training();
    const auto plan =
        fx.controller.prepare(g, partition::MinCutPartitioner{});
    const auto r = fx.controller.execute(plan, g);
    if (!r.failed) ++completed;
    if (r.transfer_failures > 0) ++with_retries;
  }
  EXPECT_GE(completed, 16);
  // The ML plan crosses the boundary only a few times per run, but at 20%
  // loss a decent share of runs still exercises the retry path.
  EXPECT_GE(with_retries, 4);
}

TEST(FailureInjection, DeadUplinkFallsBackToLocalExecution) {
  Fixture fx(1.0, 0.0);
  const auto g = app::workloads::ml_batch_training();
  const auto plan = fx.controller.prepare(g, partition::MinCutPartitioner{});
  ASSERT_GT(plan.partition.remote_count(), 0u);
  const auto r = fx.controller.execute(plan, g);
  // Every planned-remote component whose upload failed ran on the UE.
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.remote_invocations, 0u);
  EXPECT_GT(r.local_fallbacks, 0u);
  EXPECT_GT(r.transfer_failures, 0u);
  EXPECT_TRUE(r.cloud_cost.is_zero());
  // The run is slower than a clean offload (timeouts + local compute).
  const device::Device ref(device::budget_phone());
  EXPECT_GT(r.makespan, ref.exec_time(g.total_work()));
}

TEST(FailureInjection, DeadDownlinkAbortsTheRun) {
  Fixture fx(0.0, 1.0);
  const auto g = app::workloads::ml_batch_training();
  const auto plan = fx.controller.prepare(g, partition::MinCutPartitioner{});
  ASSERT_GT(plan.partition.remote_count(), 0u);
  const auto r = fx.controller.execute(plan, g);
  EXPECT_TRUE(r.failed);
  EXPECT_GT(r.transfer_failures, 0u);
  // Work did run in the cloud before the results were stranded.
  EXPECT_GT(r.remote_invocations, 0u);
}

TEST(FailureInjection, FallbackEnergyIsAccounted) {
  Fixture fx(1.0, 0.0);
  const auto g = app::workloads::photo_backup();
  const auto plan = fx.controller.prepare(g, partition::MinCutPartitioner{});
  const auto r = fx.controller.execute(plan, g);
  // All-local compute energy plus the radio energy burned on timeouts.
  const device::Device ref(device::budget_phone());
  Energy local_only;
  for (const auto& c : g.components()) local_only += ref.exec_energy(c.work);
  EXPECT_GT(r.device_energy, local_only);
}

TEST(FailureInjection, ParallelModeEscalatesToRunFailure) {
  Fixture fx(1.0, 0.0, 7, core::ExecutionMode::Parallel);
  const auto g = app::workloads::ml_batch_training();
  const auto plan = fx.controller.prepare(g, partition::MinCutPartitioner{});
  ASSERT_GT(plan.partition.remote_count(), 0u);
  bool done = false;
  core::ExecutionReport r;
  fx.controller.execute_async(plan, g, [&](const core::ExecutionReport& rep) {
    r = rep;
    done = true;
  });
  fx.sim.run();
  ASSERT_TRUE(done);
  EXPECT_TRUE(r.failed);
  EXPECT_GT(r.transfer_failures, 0u);
}

TEST(FailureInjection, ZeroRetriesFailsFaster) {
  auto run_with_retries = [](std::size_t retries) {
    core::ControllerConfig cfg;
    cfg.objective = partition::Objective::latency();
    cfg.max_transfer_retries = retries;
    sim::Simulator sim;
    serverless::Platform platform(sim, {});
    device::Device ue(device::budget_phone());
    auto path = flaky_path(1.0, 0.0, 55);
    core::OffloadController ctl(sim, platform, ue, path, cfg);
    const auto g = app::workloads::photo_backup();
    const auto plan = ctl.prepare(g, partition::MinCutPartitioner{});
    bool done = false;
    core::ExecutionReport r;
    ctl.execute_async(plan, g, [&](const core::ExecutionReport& rep) {
      r = rep;
      done = true;
    });
    while (!done && sim.step()) {
    }
    return r;
  };
  const auto eager = run_with_retries(0);
  const auto patient = run_with_retries(4);
  EXPECT_LT(eager.transfer_failures, patient.transfer_failures);
  EXPECT_LT(eager.makespan, patient.makespan);  // fewer timeouts burned
}

}  // namespace
}  // namespace ntco
