// Progressive (blue/green) rollout: step gating, abort blast radius, and
// config validation.

#include <gtest/gtest.h>

#include "ntco/app/workloads.hpp"
#include "ntco/cicd/pipeline.hpp"
#include "ntco/common/error.hpp"
#include "ntco/net/path.hpp"

namespace ntco::cicd {
namespace {

struct Fixture {
  sim::Simulator sim;
  serverless::Platform platform;
  device::Device ue;
  net::NetworkPath path;
  core::OffloadController controller;

  Fixture()
      : platform(sim, {}),
        ue(device::budget_phone()),
        path(net::make_fixed_path(net::profile_4g())),
        controller(sim, platform, ue, path, latency_cfg()) {}

  static core::ControllerConfig latency_cfg() {
    core::ControllerConfig cfg;
    cfg.objective = partition::Objective::latency();
    return cfg;
  }
};

TEST(MeasuredObjective, AppliesTheWeights) {
  core::ExecutionReport r;
  r.makespan = Duration::seconds(10);
  r.device_energy = Energy::joules(5.0);
  r.cloud_cost = Money::from_usd(0.01);
  EXPECT_DOUBLE_EQ(measured_objective({1.0, 0.0, 0.0}, r), 10.0);
  EXPECT_DOUBLE_EQ(measured_objective({0.0, 1.0, 0.0}, r), 5.0);
  EXPECT_DOUBLE_EQ(measured_objective({1.0, 2.0, 100.0}, r), 10 + 10 + 1);
}

TEST(ProgressiveRollout, GoodCandidateReachesFullTraffic) {
  Fixture fx;
  const auto g = app::workloads::ml_batch_training();
  const auto incumbent =
      fx.controller.prepare(g, partition::LocalOnlyPartitioner{});
  const auto candidate =
      fx.controller.prepare(g, partition::MinCutPartitioner{});

  ProgressiveRollout::Config cfg;
  cfg.runs_per_step = 6;
  ProgressiveRollout rollout(fx.controller, cfg);
  const auto report = rollout.roll(g, candidate, incumbent);

  EXPECT_TRUE(report.completed);
  ASSERT_EQ(report.steps.size(), 4u);  // all four steps executed
  for (const auto& s : report.steps) {
    EXPECT_TRUE(s.passed);
    // The offloaded candidate beats the all-local incumbent everywhere.
    EXPECT_LT(s.candidate_objective, s.incumbent_objective);
  }
  EXPECT_DOUBLE_EQ(report.exposure, 0.0);
}

TEST(ProgressiveRollout, BadCandidateAbortsAtFirstStepWithSmallExposure) {
  Fixture fx;
  const auto g = app::workloads::ml_batch_training();
  // Incumbent offloads; the "candidate" regresses to all-local (much
  // slower under the latency objective).
  const auto incumbent =
      fx.controller.prepare(g, partition::MinCutPartitioner{});
  const auto candidate =
      fx.controller.prepare(g, partition::LocalOnlyPartitioner{});

  ProgressiveRollout::Config cfg;
  cfg.runs_per_step = 10;
  ProgressiveRollout rollout(fx.controller, cfg);
  const auto report = rollout.roll(g, candidate, incumbent);

  EXPECT_FALSE(report.completed);
  ASSERT_EQ(report.steps.size(), 1u);  // aborted at 5% traffic
  EXPECT_FALSE(report.steps[0].passed);
  EXPECT_DOUBLE_EQ(report.steps[0].traffic, 0.05);
  // Blast radius: one candidate run out of ten at the 5% step.
  EXPECT_NEAR(report.exposure, 0.1, 1e-9);
}

TEST(ProgressiveRollout, StepRunCountsFollowTrafficShare) {
  Fixture fx;
  const auto g = app::workloads::photo_backup();
  const auto plan = fx.controller.prepare(g, partition::MinCutPartitioner{});

  ProgressiveRollout::Config cfg;
  cfg.runs_per_step = 20;
  ProgressiveRollout rollout(fx.controller, cfg);
  // Warm the functions first: otherwise the candidate's single 5%-step run
  // pays the cold start the incumbent's nineteen runs amortise away.
  (void)fx.controller.execute(plan, g);
  const auto report = rollout.roll(g, plan, plan);  // identical plans
  ASSERT_TRUE(report.completed);
  ASSERT_EQ(report.steps.size(), 4u);
  EXPECT_EQ(report.steps[0].candidate_runs, 1u);   // 5% of 20
  EXPECT_EQ(report.steps[1].candidate_runs, 5u);   // 25% of 20
  EXPECT_EQ(report.steps[2].candidate_runs, 10u);  // 50% of 20
  EXPECT_EQ(report.steps[3].candidate_runs, 20u);  // 100%
  EXPECT_GE(report.steps[3].incumbent_runs, 1u);   // reference run
}

TEST(ProgressiveRollout, ConfigValidation) {
  Fixture fx;
  ProgressiveRollout::Config cfg;
  cfg.traffic_steps = {};
  EXPECT_THROW(ProgressiveRollout(fx.controller, cfg), ConfigError);
  cfg.traffic_steps = {0.5, 0.25, 1.0};  // not increasing
  EXPECT_THROW(ProgressiveRollout(fx.controller, cfg), ConfigError);
  cfg.traffic_steps = {0.5, 0.9};  // does not end at 1.0
  EXPECT_THROW(ProgressiveRollout(fx.controller, cfg), ConfigError);
  cfg.traffic_steps = {0.5, 1.0};
  cfg.runs_per_step = 1;
  EXPECT_THROW(ProgressiveRollout(fx.controller, cfg), ConfigError);
}

}  // namespace
}  // namespace ntco::cicd
