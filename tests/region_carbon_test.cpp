// Region selection and carbon-aware deferral: the two placement freedoms
// only delay-tolerant work has.

#include <gtest/gtest.h>

#include "ntco/alloc/region_selector.hpp"
#include "ntco/common/error.hpp"
#include "ntco/sched/carbon_planner.hpp"

namespace ntco {
namespace {

TimePoint at_hours(double h) {
  return TimePoint::origin() + Duration::from_seconds(h * 3600.0);
}

TEST(RegionSelector, MoneyOnlyPicksCheapestTariff) {
  const alloc::RegionSelector sel(alloc::default_regions(), {1.0, 0.0, 0.0});
  const auto pick = sel.choose(Money::from_usd(0.001), Duration::seconds(10));
  EXPECT_EQ(sel.regions()[pick.region_index].name, "ap-south");
  EXPECT_NEAR(pick.cost_per_invocation.to_usd(), 0.001 * 0.92, 1e-9);
}

TEST(RegionSelector, LatencyWeightPullsToTheNearestRegion) {
  const alloc::RegionSelector sel(alloc::default_regions(),
                                  {1.0, /*latency=*/10.0, 0.0});
  const auto pick = sel.choose(Money::from_usd(0.001), Duration::seconds(10));
  EXPECT_EQ(sel.regions()[pick.region_index].name, "near-metro");
  EXPECT_TRUE(pick.round_trip_overhead.is_zero());
}

TEST(RegionSelector, CarbonWeightPicksTheHydroGrid) {
  const alloc::RegionSelector sel(alloc::default_regions(),
                                  {1.0, 0.0, /*carbon=*/1.0});
  const auto pick = sel.choose(Money::from_usd(0.001), Duration::seconds(60));
  EXPECT_EQ(sel.regions()[pick.region_index].name, "eu-north");
}

TEST(RegionSelector, EmissionsScaleWithExecutionTime) {
  const alloc::RegionSelector sel(alloc::default_regions(), {0.0, 0.0, 1.0});
  const auto short_run =
      sel.score_all(Money::zero(), Duration::seconds(10));
  const auto long_run =
      sel.score_all(Money::zero(), Duration::seconds(100));
  for (std::size_t i = 0; i < short_run.size(); ++i)
    EXPECT_NEAR(long_run[i].gco2_per_invocation,
                10.0 * short_run[i].gco2_per_invocation, 1e-9);
  // 10 W for 3600 s = 0.01 kWh; at 420 g/kWh that is 4.2 g.
  const auto hour = sel.score_all(Money::zero(), Duration::hours(1));
  EXPECT_NEAR(hour[1].gco2_per_invocation, 4.2, 1e-9);
}

TEST(RegionSelector, RejectsMalformedMenus) {
  EXPECT_THROW(alloc::RegionSelector({}, {}), ConfigError);
  EXPECT_THROW(
      alloc::RegionSelector({{"bad", 0.0, Duration::zero(), 100.0}}, {}),
      ConfigError);
}

TEST(CarbonProfile, SolarGridShape) {
  const auto grid = sched::CarbonProfile::solar_grid();
  // Midday trough, evening peak, wraps across days.
  EXPECT_LT(grid.at(at_hours(12)), grid.at(at_hours(3)));
  EXPECT_GT(grid.at(at_hours(19)), grid.at(at_hours(12)) * 3.0);
  EXPECT_DOUBLE_EQ(grid.at(at_hours(12)), grid.at(at_hours(36)));
}

TEST(CarbonProfile, FlatAndValidation) {
  const auto flat = sched::CarbonProfile::flat(250.0);
  EXPECT_DOUBLE_EQ(flat.at(at_hours(0)), 250.0);
  EXPECT_DOUBLE_EQ(flat.at(at_hours(17.5)), 250.0);
  std::array<double, 24> bad{};
  bad[3] = -1.0;
  EXPECT_THROW(sched::CarbonProfile{bad}, ConfigError);
}

TEST(CarbonAwarePlanner, DefersIntoTheSolarTrough) {
  const sched::CarbonAwarePlanner planner(
      sched::CarbonProfile::solar_grid());
  // Released 02:00 with 14 h slack: the trough (11:00-13:00) is reachable.
  const auto start = planner.plan_start(at_hours(2), Duration::hours(14),
                                        Duration::minutes(10));
  EXPECT_GE(start, at_hours(10.5));
  EXPECT_LE(start, at_hours(13));
  EXPECT_DOUBLE_EQ(planner.profile().at(start), 160.0);
}

TEST(CarbonAwarePlanner, TightSlackRunsImmediately) {
  const sched::CarbonAwarePlanner planner(
      sched::CarbonProfile::solar_grid());
  const auto start = planner.plan_start(at_hours(19), Duration::minutes(30),
                                        Duration::minutes(20));
  EXPECT_EQ(start, at_hours(19));  // the peak, but there is no choice
}

TEST(CarbonAwarePlanner, FlatGridNeverDefers) {
  const sched::CarbonAwarePlanner planner(sched::CarbonProfile::flat(300.0));
  const auto start = planner.plan_start(at_hours(2), Duration::hours(20),
                                        Duration::minutes(10));
  EXPECT_EQ(start, at_hours(2));  // nothing to gain by waiting
}

TEST(CarbonAwarePlanner, EmissionsUseTheStartHourIntensity) {
  const sched::CarbonAwarePlanner planner(
      sched::CarbonProfile::solar_grid());
  EXPECT_DOUBLE_EQ(planner.emissions(at_hours(12), 0.5), 80.0);  // 160 x 0.5
  EXPECT_DOUBLE_EQ(planner.emissions(at_hours(19), 0.5), 260.0);
}

}  // namespace
}  // namespace ntco
