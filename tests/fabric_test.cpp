#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ntco/app/task_graph.hpp"
#include "ntco/app/workloads.hpp"
#include "ntco/common/error.hpp"
#include "ntco/core/controller.hpp"
#include "ntco/fabric/fabric.hpp"
#include "ntco/fleet/replicator.hpp"
#include "ntco/net/path.hpp"
#include "ntco/obs/trace.hpp"
#include "ntco/serverless/platform.hpp"
#include "ntco/sim/simulator.hpp"

namespace ntco::fabric {
namespace {

/// Path spec with zero access latency so the segment math is observable
/// undiluted; the access rate cap is set high unless a test wants it to
/// bind.
net::PathSpec wide_spec(std::string name, DataRate access,
                        Duration latency = Duration::zero()) {
  net::PathSpec s;
  s.name = std::move(name);
  s.up = {access, latency, 0.0, 0.0};
  s.down = {access, latency, 0.0, 0.0};
  return s;
}

TEST(Fabric, UncontendedMatchesPrivateLinkMath) {
  sim::Simulator sim;
  Fabric fabric(sim);
  // Segment is wide enough that the path's own 8 Mb/s access cap binds, so
  // the fabric must reproduce FixedLink timing exactly: 1 MB over 8 Mb/s =
  // 1 s serialisation + 10 ms access latency + 2 ms segment propagation.
  const auto seg = fabric.add_segment(
      {"lan.up", DataRate::megabits_per_second(1000), Duration::millis(2)});
  auto path =
      fabric.attach(wide_spec("cell", DataRate::megabits_per_second(8),
                              Duration::millis(10)),
                    Route{{seg}, {seg}});
  EXPECT_EQ(path->uplink_time(DataSize::megabytes(1)),
            Duration::millis(1012));
}

TEST(Fabric, ZeroPayloadPaysLatencyAndAdmitsNoFlow) {
  sim::Simulator sim;
  Fabric fabric(sim);
  const auto seg = fabric.add_segment(
      {"lan.up", DataRate::megabits_per_second(100), Duration::millis(3)});
  auto path =
      fabric.attach(wide_spec("cell", DataRate::megabits_per_second(10),
                              Duration::millis(7)),
                    Route{{seg}, {}});
  // Transport contract: a zero-size transfer pays the full one-way latency
  // (access + per-segment propagation) and occupies no capacity.
  EXPECT_EQ(path->uplink_time(DataSize::zero()), Duration::millis(10));
  EXPECT_EQ(path->downlink_time(DataSize::zero()), Duration::millis(7));
  EXPECT_EQ(fabric.stats().flows, 0u);
  EXPECT_EQ(fabric.active_flows(seg), 0u);
}

TEST(Fabric, SecondFlowSharesThenInheritsFullCapacity) {
  sim::Simulator sim;
  Fabric fabric(sim);
  // 80 Mb/s segment, non-binding access caps. Flow A: 10 MB alone = 1 s.
  // Flow B admitted immediately after: half share (40 Mb/s) until A's
  // committed departure at t=1s (drains 40 Mbit of its 80), then the full
  // 80 Mb/s for the remaining half = 0.5 s. Total 1.5 s.
  const auto seg = fabric.add_segment(
      {"lan.up", DataRate::megabits_per_second(80), Duration::zero()});
  auto path = fabric.attach(
      wide_spec("ue", DataRate::megabits_per_second(100000)),
      Route{{seg}, {}});
  EXPECT_EQ(path->uplink_time(DataSize::megabytes(10)),
            Duration::seconds(1));
  EXPECT_EQ(path->uplink_time(DataSize::megabytes(10)),
            Duration::micros(1'500'000));
  EXPECT_EQ(fabric.active_flows(seg), 2u);
  EXPECT_EQ(fabric.stats().reshare_steps, 1u);  // B stepped A's departure
}

TEST(Fabric, DeparturesExpireLazily) {
  sim::Simulator sim;
  Fabric fabric(sim);
  const auto seg = fabric.add_segment(
      {"lan.up", DataRate::megabits_per_second(80), Duration::zero()});
  auto path = fabric.attach(
      wide_spec("ue", DataRate::megabits_per_second(100000)),
      Route{{seg}, {}});
  (void)path->uplink_time(DataSize::megabytes(10));  // departs at 1 s
  (void)path->uplink_time(DataSize::megabytes(10));  // departs at 1.5 s
  EXPECT_EQ(fabric.active_flows(seg), 2u);
  EXPECT_EQ(fabric.fair_share(seg), DataRate::megabits_per_second(40));
  sim.schedule_at(TimePoint::at(Duration::seconds(2)), [] {});
  (void)sim.run();
  EXPECT_EQ(fabric.active_flows(seg), 0u);
  EXPECT_EQ(fabric.fair_share(seg), DataRate::megabits_per_second(80));
  EXPECT_EQ(fabric.segment_stats(seg).flows_departed, 2u);
  EXPECT_EQ(fabric.segment_stats(seg).flows_admitted, 2u);
  EXPECT_EQ(fabric.segment_stats(seg).peak_flows, 2u);
  EXPECT_EQ(fabric.segment_stats(seg).bytes_carried, DataSize::megabytes(20));
}

TEST(Fabric, SaturationSlowsLaterArrivalsMonotonically) {
  sim::Simulator sim;
  Fabric fabric(sim);
  const auto seg = fabric.add_segment(
      {"lan.up", DataRate::megabits_per_second(100), Duration::zero()});
  auto path = fabric.attach(
      wide_spec("ue", DataRate::megabits_per_second(100000)),
      Route{{seg}, {}});
  std::vector<Duration> times;
  for (int i = 0; i < 8; ++i)
    times.push_back(path->uplink_time(DataSize::megabytes(25)));
  for (std::size_t i = 1; i < times.size(); ++i)
    EXPECT_GT(times[i], times[i - 1]) << "arrival " << i;
  // Admission-order fairness: the eighth concurrent flow must take at
  // least twice as long as the first (it rides behind all of them).
  EXPECT_GE(times.back().to_seconds(), 2.0 * times.front().to_seconds());
  EXPECT_EQ(fabric.segment_stats(seg).peak_flows, 8u);
}

TEST(Fabric, MultiSegmentRouteIsBottleneckedByNarrowestShare) {
  sim::Simulator sim;
  Fabric fabric(sim);
  const auto wide = fabric.add_segment(
      {"cell.up", DataRate::megabits_per_second(100), Duration::zero()});
  const auto narrow = fabric.add_segment(
      {"wan.up", DataRate::megabits_per_second(40), Duration::zero()});
  auto wan_only = fabric.attach(
      wide_spec("bg", DataRate::megabits_per_second(100000)),
      Route{{narrow}, {}});
  auto through = fabric.attach(
      wide_spec("ue", DataRate::megabits_per_second(100000)),
      Route{{wide, narrow}, {}});
  // Background flow holds the narrow segment (40 Mb/s, alone): 40 Mbit in
  // 1 s. The through flow shares it: min(100/1, 40/2) = 20 Mb/s until the
  // background departs at t=1s (20 Mbit drained), then min(100, 40) = 40
  // for the remaining 20 Mbit = 0.5 s. Total 1.5 s.
  EXPECT_EQ(wan_only->uplink_time(DataSize::megabytes(5)),
            Duration::seconds(1));
  EXPECT_EQ(through->uplink_time(DataSize::megabytes(5)),
            Duration::micros(1'500'000));
  EXPECT_EQ(fabric.active_flows(narrow), 2u);
  EXPECT_EQ(fabric.active_flows(wide), 1u);
}

TEST(Fabric, AmortizationCapHoldsSnapshotShare) {
  sim::Simulator sim;
  Fabric fabric(sim, FabricConfig{SharingModel::MaxMinFairShare, 8.0, 0});
  const auto seg = fabric.add_segment(
      {"lan.up", DataRate::megabits_per_second(80), Duration::zero()});
  auto path = fabric.attach(
      wide_spec("ue", DataRate::megabits_per_second(100000)),
      Route{{seg}, {}});
  (void)path->uplink_time(DataSize::megabytes(10));
  // With max_reshare_steps = 0 the second flow never steps past the first
  // one's departure: it drains all 80 Mbit at the half share = 2 s (the
  // pure admission-snapshot model), and the amortised tail is counted.
  EXPECT_EQ(path->uplink_time(DataSize::megabytes(10)),
            Duration::seconds(2));
  EXPECT_EQ(fabric.stats().amortized_tails, 1u);
  EXPECT_EQ(fabric.stats().reshare_steps, 0u);
}

TEST(Fabric, CubicRampDelaysPlateauByQuarterK) {
  sim::Simulator sim;
  Fabric fabric(sim, FabricConfig{SharingModel::CubicAimd, 8.0, 64});
  const auto seg = fabric.add_segment(
      {"lan.up", DataRate::megabits_per_second(1000), Duration::zero()});
  // RTT = 20 + 20 = 40 ms, so K = 8 * 40 = 320 ms. A flow needing 1 s of
  // full-rate service finishes at target + K/4 = 1.08 s (plus latency):
  // the cubic ramp forfeits exactly K/4 of service before the plateau.
  auto path =
      fabric.attach(wide_spec("ue", DataRate::megabits_per_second(8),
                              Duration::millis(20)),
                    Route{{seg}, {seg}});
  EXPECT_EQ(path->uplink_time(DataSize::megabytes(1)),
            Duration::millis(20) + Duration::micros(1'080'000));
}

TEST(Fabric, CubicShortFlowNeverReachesFairShare) {
  sim::Simulator sim;
  Fabric cubic_fabric(sim, FabricConfig{SharingModel::CubicAimd, 8.0, 64});
  sim::Simulator sim2;
  Fabric fair_fabric(sim2);
  const SegmentSpec spec{"lan.up", DataRate::megabits_per_second(1000),
                         Duration::zero()};
  const auto cs = cubic_fabric.add_segment(spec);
  const auto fs = fair_fabric.add_segment(spec);
  const auto pspec = wide_spec("ue", DataRate::megabits_per_second(8),
                               Duration::millis(20));
  auto cubic_path = cubic_fabric.attach(pspec, Route{{cs}, {cs}});
  auto fair_path = fair_fabric.attach(pspec, Route{{fs}, {fs}});
  // 10 kB needs 10 ms of full-rate service, deep inside the 320 ms ramp:
  // cubic must be strictly slower than max-min, but still finite and
  // bounded by the ramp length.
  const auto cubic_t = cubic_path->uplink_time(DataSize::kilobytes(10));
  const auto fair_t = fair_path->uplink_time(DataSize::kilobytes(10));
  EXPECT_GT(cubic_t, fair_t);
  EXPECT_LT(cubic_t, Duration::millis(20) + Duration::millis(320));
}

TEST(Fabric, ContractViolationsThrow) {
  sim::Simulator sim;
  Fabric fabric(sim);
  EXPECT_THROW(fabric.add_segment({"z", DataRate::bits_per_second(0),
                                   Duration::zero()}),
               ContractViolation);
  const auto seg = fabric.add_segment(
      {"lan.up", DataRate::megabits_per_second(10), Duration::zero()});
  EXPECT_THROW((void)fabric.attach(wide_spec("ue", DataRate::bits_per_second(0)),
                                   Route{{seg}, {}}),
               ContractViolation);
  EXPECT_THROW((void)fabric.attach(
                   wide_spec("ue", DataRate::megabits_per_second(1)),
                   Route{{seg + 1}, {}}),
               ContractViolation);
}

TEST(FabricTrace, FlowRecordsAreOrderedAndDeterministic) {
  const auto run_once = [] {
    sim::Simulator sim;
    Fabric fabric(sim);
    const auto seg = fabric.add_segment(
        {"lan.up", DataRate::megabits_per_second(80), Duration::zero()});
    auto path = fabric.attach(
        wide_spec("ue", DataRate::megabits_per_second(100000)),
        Route{{seg}, {}});
    obs::JsonlTraceWriter trace;
    path->set_trace(&trace, &sim);
    (void)path->uplink_time(DataSize::megabytes(10));
    (void)path->uplink_time(DataSize::megabytes(10));
    (void)sim.run();
    return trace.str();
  };
  const std::string a = run_once();
  // Two starts at t=0 in admission order, then the finishes in committed
  // departure order (1 s before 1.5 s).
  EXPECT_NE(a.find("fabric.flow.start"), std::string::npos);
  const auto first_finish = a.find("fabric.flow.finish");
  ASSERT_NE(first_finish, std::string::npos);
  EXPECT_NE(a.find("fabric.flow.finish", first_finish + 1),
            std::string::npos);
  EXPECT_NE(a.find("\"flow\":0"), std::string::npos);
  EXPECT_NE(a.find("\"flow\":1"), std::string::npos);
  EXPECT_LT(a.find("\"dir\":\"up\""), first_finish);
  // Byte determinism: an identical run renders identically.
  EXPECT_EQ(a, run_once());
}

TEST(FabricFleet, ShardedTracesAreByteIdenticalAcrossWorkerCounts) {
  // The F13 determinism contract in miniature: per-shard fabrics driven
  // under a Replicator must merge to the same bytes at 1 and 8 workers.
  const auto run_fleet = [](std::size_t threads) {
    fleet::Replicator fleet(1234, threads);
    return fleet.reduce(
        8, std::string{},
        [](fleet::ShardContext& ctx) {
          sim::Simulator sim;
          Fabric fabric(sim);
          const auto seg = fabric.add_segment(
              {"lan.up", DataRate::megabits_per_second(100),
               Duration::zero()});
          auto path = fabric.attach(
              wide_spec("ue" + std::to_string(ctx.shard),
                        DataRate::megabits_per_second(100000)),
              Route{{seg}, {}});
          obs::JsonlTraceWriter trace;
          path->set_trace(&trace, &sim);
          const std::int64_t flows = ctx.rng.uniform_int(2, 4);
          for (std::int64_t i = 0; i < flows; ++i)
            (void)path->uplink_time(
                DataSize::megabytes(5 + static_cast<std::uint64_t>(i)));
          (void)sim.run();
          return trace.str();
        },
        [](std::string& acc, std::string&& shard_trace, std::size_t) {
          acc += shard_trace;
        });
  };
  const std::string t1 = run_fleet(1);
  const std::string t8 = run_fleet(8);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t8);
}

TEST(FabricController, OffloadWorkflowRunsUnmodifiedOverFabricPath) {
  // API-redesign acceptance: core::OffloadController only sees
  // net::Transport, so the full prepare/execute workflow must run over a
  // shared fabric without modification.
  sim::Simulator sim;
  serverless::Platform cloud(sim, {});
  device::Device ue(device::budget_phone());
  Fabric fabric(sim);
  const auto up = fabric.add_segment(
      {"cell.up", DataRate::megabits_per_second(200), Duration::millis(2)});
  const auto down = fabric.add_segment(
      {"cell.down", DataRate::megabits_per_second(400), Duration::millis(2)});
  auto spec = net::spec_4g();
  auto path = fabric.attach(spec, Route{{up}, {down}});
  core::OffloadController ctl(sim, cloud, ue, *path, {});
  const auto app = app::workloads::photo_backup();
  partition::MinCutPartitioner mincut;
  const auto plan = ctl.prepare(app, mincut);
  const auto report = ctl.execute(plan, app);
  EXPECT_FALSE(report.failed);
  EXPECT_GT(report.makespan, Duration::zero());
  if (plan.partition.remote_count() > 0) {
    EXPECT_GT(fabric.stats().flows, 0u);
  }
}

}  // namespace
}  // namespace ntco::fabric
