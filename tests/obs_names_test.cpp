#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>

#include "ntco/app/workloads.hpp"
#include "ntco/broker/broker.hpp"
#include "ntco/continuum/federation.hpp"
#include "ntco/edgesim/edge_platform.hpp"
#include "ntco/lint/lint.hpp"
#include "ntco/net/path.hpp"
#include "ntco/obs/metrics.hpp"
#include "ntco/obs/trace.hpp"
#include "ntco/serverless/platform.hpp"
#include "ntco/sim/simulator.hpp"

// Round-trip contract test for the telemetry-name registry: drive real
// broker and continuum scenarios with live observers and assert that every
// trace and metric name they emit exists in src/obs/include/ntco/obs/
// names.hpp with the matching kind. This is the runtime side of lint rule
// R7 (which checks the same contract statically at call sites): a name can
// only reach an artifact if the registry documents it.

namespace ntco {
namespace {

/// TraceSink that records the distinct event names it sees.
struct RecordingSink final : obs::TraceSink {
  std::set<std::string> names;
  void record(const obs::TraceEvent& ev) override {
    names.insert(std::string(ev.name));
  }
};

/// name -> kinds registered for it (the registry allows one name under
/// several kinds only as an error, but the loader reports what is there).
std::map<std::string, std::set<std::string>> registry_kinds() {
  const auto entries = lint::load_names_registry(
      std::string(NTCO_LINT_REPO_ROOT) + "/src/obs/include/ntco/obs/names.hpp");
  std::map<std::string, std::set<std::string>> kinds;
  for (const auto& e : entries) kinds[e.name].insert(e.kind);
  return kinds;
}

void expect_traces_registered(
    const RecordingSink& sink,
    const std::map<std::string, std::set<std::string>>& kinds) {
  ASSERT_FALSE(sink.names.empty()) << "scenario emitted no trace records";
  for (const auto& n : sink.names) {
    const auto it = kinds.find(n);
    ASSERT_NE(it, kinds.end()) << "unregistered trace name: " << n;
    EXPECT_EQ(it->second.count("trace"), 1u)
        << n << " is registered but not as a trace";
  }
}

void expect_metrics_registered(
    const obs::MetricsRegistry& metrics,
    const std::map<std::string, std::set<std::string>>& kinds) {
  ASSERT_GT(metrics.size(), 0u) << "scenario registered no metrics";
  std::istringstream csv(metrics.to_csv());
  std::string line;
  std::getline(csv, line);  // header
  std::set<std::string> checked;
  while (std::getline(csv, line)) {
    const std::size_t c1 = line.find(',');
    const std::size_t c2 = line.find(',', c1 + 1);
    ASSERT_NE(c2, std::string::npos) << line;
    const std::string name = line.substr(0, c1);
    const std::string kind = line.substr(c1 + 1, c2 - c1 - 1);
    if (!checked.insert(name + "|" + kind).second) continue;
    const auto it = kinds.find(name);
    ASSERT_NE(it, kinds.end()) << "unregistered metric name: " << name;
    EXPECT_EQ(it->second.count(kind), 1u)
        << name << " is registered but not as a " << kind;
  }
}

TEST(ObsNames, BrokerServePathEmitsOnlyRegisteredNames) {
  const auto kinds = registry_kinds();
  ASSERT_FALSE(kinds.empty());

  sim::Simulator sim;
  serverless::Platform platform(sim, {});
  device::Device ue(device::budget_phone());
  net::NetworkPath path(net::make_fixed_path(net::profile_wifi()));
  core::OffloadController controller(sim, platform, ue, path, {});
  partition::MinCutPartitioner mincut;
  broker::Broker broker(sim, platform, controller, mincut, {});

  RecordingSink sink;
  obs::MetricsRegistry metrics;
  platform.attach_observer(&sink, &metrics);
  controller.attach_observer(&sink, &metrics);
  broker.attach_observer(&sink, &metrics);

  const auto g = app::workloads::photo_backup();
  broker::ServeRequest req;
  req.app = &g;
  int done = 0;
  broker.serve(req, [&](const broker::ServeOutcome&) { ++done; });
  broker.serve(req, [&](const broker::ServeOutcome&) { ++done; });
  sim.run();
  ASSERT_EQ(done, 2);

  expect_traces_registered(sink, kinds);
  expect_metrics_registered(metrics, kinds);
}

TEST(ObsNames, ContinuumPlacementEmitsOnlyRegisteredNames) {
  const auto kinds = registry_kinds();
  ASSERT_FALSE(kinds.empty());

  sim::Simulator sim;
  edgesim::EdgeConfig ecfg;
  ecfg.servers = 1;
  ecfg.server_speed = Frequency::gigahertz(2.0);
  ecfg.request_overhead = Duration::millis(2);
  edgesim::EdgePlatform edge(sim, ecfg);
  serverless::PlatformConfig ccfg;
  ccfg.cold_start_base = Duration::millis(100);
  ccfg.spot_mean_time_to_preempt = Duration::zero();
  serverless::Platform cloud(sim, ccfg);
  serverless::FunctionSpec fn_spec;
  fn_spec.name = "job";
  fn_spec.memory = DataSize::megabytes(1792);
  fn_spec.image = DataSize::megabytes(10);
  const auto fn = cloud.deploy(fn_spec);

  net::PathSpec lan_spec;
  lan_spec.name = "lan";
  lan_spec.up = {DataRate::megabits_per_second(800), Duration::millis(1), 0.0,
                 0.0};
  lan_spec.down = lan_spec.up;
  net::PathSpec wan_spec;
  wan_spec.name = "wan";
  wan_spec.up = {DataRate::megabits_per_second(40), Duration::millis(25), 0.0,
                 0.0};
  wan_spec.down = wan_spec.up;
  auto lan = net::make_path(lan_spec);
  auto wan = net::make_path(wan_spec);

  continuum::Federation fed(sim);
  fed.add_site(continuum::Site(0, "edge", continuum::SiteTier::Edge, edge, lan));
  fed.add_site(
      continuum::Site(1, "cloud", continuum::SiteTier::Cloud, cloud, fn, wan));

  RecordingSink sink;
  obs::MetricsRegistry metrics;
  fed.attach_observer(&sink, &metrics);

  continuum::JobSpec spec;
  spec.work = Cycles::giga(2);
  spec.input = DataSize::megabytes(1);
  spec.output = DataSize::megabytes(1);
  spec.state = DataSize::megabytes(2);
  int done = 0;
  // Two jobs on a one-server edge: the second either queues or spills,
  // widening the set of emitted names past the happy path.
  fed.submit(spec, [&](const continuum::JobOutcome&) { ++done; });
  fed.submit(spec, [&](const continuum::JobOutcome&) { ++done; });
  sim.run();
  ASSERT_EQ(done, 2);

  expect_traces_registered(sink, kinds);
  expect_metrics_registered(metrics, kinds);
}

}  // namespace
}  // namespace ntco
