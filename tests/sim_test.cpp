#include "ntco/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "ntco/common/error.hpp"
#include "ntco/common/rng.hpp"
#include "ntco/obs/trace.hpp"
#include "ntco/sim/server_pool.hpp"

namespace ntco::sim {
namespace {

TEST(Simulator, StartsAtOrigin) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint::origin());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::millis(20), [&] { order.push_back(2); });
  sim.schedule_after(Duration::millis(10), [&] { order.push_back(1); });
  sim.schedule_after(Duration::millis(30), [&] { order.push_back(3); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().since_origin(), Duration::millis(30));
}

TEST(Simulator, SimultaneousEventsFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_after(Duration::millis(5), [&order, i] {
      order.push_back(i);
    });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, HandlerCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule_after(Duration::millis(1), chain);
  };
  sim.schedule_after(Duration::millis(1), chain);
  EXPECT_EQ(sim.run(), 5u);
  EXPECT_EQ(sim.now().since_origin(), Duration::millis(5));
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_after(Duration::millis(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double-cancel reports failure
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const auto id = sim.schedule_after(Duration::millis(1), [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelUnknownIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(12345));
}

TEST(Simulator, PendingExcludesCancelled) {
  Simulator sim;
  sim.schedule_after(Duration::millis(1), [] {});
  const auto id = sim.schedule_after(Duration::millis(2), [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, PendingEventIdsAreSortedAndExcludeCancelledAndFired) {
  // pending_ids_ is a membership-only unordered set; the ordered view must
  // come out sorted (ascending EventId == scheduling order) regardless of
  // hash order, with cancelled and already-fired events absent.
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i)
    ids.push_back(
        sim.schedule_after(Duration::millis(8 - i), [] {}));  // reverse time
  sim.cancel(ids[3]);
  EXPECT_TRUE(sim.step());  // fires ids[7], the earliest
  const auto pending = sim.pending_event_ids();
  const std::vector<EventId> expect{ids[0], ids[1], ids[2],
                                    ids[4], ids[5], ids[6]};
  EXPECT_EQ(pending, expect);
}

TEST(Simulator, RunUntilAdvancesClockToHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(Duration::millis(5), [&] { ++fired; });
  sim.schedule_after(Duration::millis(15), [&] { ++fired; });
  const auto horizon = TimePoint::origin() + Duration::millis(10);
  EXPECT_EQ(sim.run_until(horizon), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), horizon);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilFiresEventExactlyAtHorizon) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(Duration::millis(10), [&] { fired = true; });
  sim.run_until(TimePoint::origin() + Duration::millis(10));
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilWithOnlyCancelledEventsIsSafe) {
  Simulator sim;
  const auto id = sim.schedule_after(Duration::millis(1), [] {});
  sim.cancel(id);
  EXPECT_EQ(sim.run_until(TimePoint::origin() + Duration::millis(5)), 0u);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_after(Duration::millis(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint::origin(), [] {}),
               ContractViolation);
  EXPECT_THROW(sim.schedule_after(-Duration::millis(1), [] {}),
               ContractViolation);
}

TEST(Simulator, NextEventTimeSkipsCancelled) {
  Simulator sim;
  const auto id = sim.schedule_after(Duration::millis(1), [] {});
  sim.schedule_after(Duration::millis(9), [] {});
  sim.cancel(id);
  EXPECT_EQ(sim.next_event_time(), TimePoint::origin() + Duration::millis(9));
}

TEST(ServerPool, SingleServerSerialisesJobs) {
  Simulator sim;
  ServerPool pool(sim, 1);
  std::vector<Duration> starts;
  for (int i = 0; i < 3; ++i)
    pool.submit(Duration::millis(10), [&](TimePoint started) {
      starts.push_back(started.since_origin());
    });
  sim.run();
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[0], Duration::zero());
  EXPECT_EQ(starts[1], Duration::millis(10));
  EXPECT_EQ(starts[2], Duration::millis(20));
  EXPECT_EQ(pool.total_busy_time(), Duration::millis(30));
  EXPECT_EQ(pool.completed(), 3u);
}

TEST(ServerPool, ParallelServersRunConcurrently) {
  Simulator sim;
  ServerPool pool(sim, 3);
  int done = 0;
  for (int i = 0; i < 3; ++i)
    pool.submit(Duration::millis(10), [&](TimePoint started) {
      EXPECT_EQ(started, TimePoint::origin());
      ++done;
    });
  sim.run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(sim.now().since_origin(), Duration::millis(10));
}

TEST(ServerPool, QueueDrainsAfterRelease) {
  Simulator sim;
  ServerPool pool(sim, 2);
  std::vector<Duration> starts;
  for (int i = 0; i < 5; ++i)
    pool.submit(Duration::millis(4), [&](TimePoint started) {
      starts.push_back(started.since_origin());
    });
  EXPECT_EQ(pool.busy(), 2u);
  EXPECT_EQ(pool.queued(), 3u);
  sim.run();
  ASSERT_EQ(starts.size(), 5u);
  EXPECT_EQ(starts[4], Duration::millis(8));
}

TEST(ServerPool, ZeroCapacityThrows) {
  Simulator sim;
  EXPECT_THROW(ServerPool(sim, 0), ContractViolation);
}

TEST(ServerPool, ZeroServiceTimeCompletesImmediately) {
  Simulator sim;
  ServerPool pool(sim, 1);
  bool done = false;
  pool.submit(Duration::zero(), [&](TimePoint) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), TimePoint::origin());
}

TEST(ServerPool, CancelQueuedJobNeverRuns) {
  Simulator sim;
  ServerPool pool(sim, 1);
  pool.submit(Duration::millis(10), [](TimePoint) {});
  bool ran = false;
  const auto t = pool.submit(Duration::millis(10), [&](TimePoint) { ran = true; });
  const auto info = pool.cancel(t);
  ASSERT_TRUE(info.has_value());
  EXPECT_FALSE(info->was_running);
  EXPECT_TRUE(info->consumed.is_zero());
  EXPECT_EQ(pool.queued(), 0u);
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(pool.completed(), 1u);
}

TEST(ServerPool, CancelRunningJobFreesServerAndReportsConsumed) {
  Simulator sim;
  ServerPool pool(sim, 1);
  const auto t = pool.submit(Duration::millis(10), [](TimePoint) {});
  Duration waited;
  pool.submit(Duration::millis(5),
              [&](TimePoint started) { waited = started.since_origin(); });
  sim.schedule_at(TimePoint::origin() + Duration::millis(4), [&] {
    const auto info = pool.cancel(t);
    ASSERT_TRUE(info.has_value());
    EXPECT_TRUE(info->was_running);
    EXPECT_EQ(info->consumed, Duration::millis(4));
    EXPECT_EQ(info->started, TimePoint::origin());
  });
  sim.run();
  // The queued job started the moment the cancel freed the server, and the
  // refunded busy time only counts service actually rendered.
  EXPECT_EQ(waited, Duration::millis(4));
  EXPECT_EQ(pool.total_busy_time(), Duration::millis(9));
  EXPECT_EQ(pool.completed(), 1u);
}

TEST(ServerPool, CancelUnknownTicketReturnsNullopt) {
  Simulator sim;
  ServerPool pool(sim, 1);
  const auto t = pool.submit(Duration::millis(1), [](TimePoint) {});
  sim.run();
  EXPECT_FALSE(pool.cancel(t).has_value());  // already completed
  EXPECT_FALSE(pool.status(t).has_value());
}

TEST(ServerPool, StatusTracksQueuedThenRunning) {
  Simulator sim;
  ServerPool pool(sim, 1);
  pool.submit(Duration::millis(5), [](TimePoint) {});
  const auto t = pool.submit(Duration::millis(5), [](TimePoint) {});
  const auto queued = pool.status(t);
  ASSERT_TRUE(queued.has_value());
  EXPECT_FALSE(queued->running);
  sim.schedule_at(TimePoint::origin() + Duration::millis(6), [&] {
    const auto running = pool.status(t);
    ASSERT_TRUE(running.has_value());
    EXPECT_TRUE(running->running);
    EXPECT_EQ(running->started, TimePoint::origin() + Duration::millis(5));
  });
  sim.run();
}

// --- Arena kernel: slot reuse, generations, growth -------------------------

TEST(SimulatorArena, StaleIdAfterSlotReuseIsRejected) {
  Simulator sim;
  int fired = 0;
  const EventId a = sim.schedule_after(Duration::millis(1), [&] { ++fired; });
  EXPECT_EQ(sim.run(), 1u);
  // The next schedule recycles a's slot; a's id must stay dead even though
  // the slot is live again under a fresh generation.
  const EventId b = sim.schedule_after(Duration::millis(1), [&] { ++fired; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(sim.cancel(a));
  EXPECT_EQ(sim.pending(), 1u);  // b untouched by the stale cancel
  EXPECT_TRUE(sim.cancel(b));
  EXPECT_EQ(sim.run(), 0u);
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorArena, StaleIdAfterCancelAndDrainIsRejected) {
  Simulator sim;
  int fired = 0;
  const EventId a = sim.schedule_after(Duration::millis(2), [&] { ++fired; });
  EXPECT_TRUE(sim.cancel(a));
  EXPECT_FALSE(sim.cancel(a));  // double-cancel, slot still Cancelled
  EXPECT_EQ(sim.run(), 0u);     // drains the lazy heap node, frees the slot
  const EventId b = sim.schedule_after(Duration::millis(2), [&] { ++fired; });
  EXPECT_FALSE(sim.cancel(a));  // recycled slot, bumped generation
  EXPECT_TRUE(sim.cancel(b));
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorArena, GrowthAcrossChunksPreservesFifoOrder) {
  // 1300 events cross two 512-slot chunk boundaries; order and count must
  // be unaffected by arena growth, and recycled slots must serve a second
  // wave correctly.
  Simulator sim;
  constexpr int kN = 1300;
  std::vector<int> order;
  order.reserve(kN);
  for (int i = 0; i < kN; ++i)
    sim.schedule_after(Duration::micros(i), [&order, i] {
      order.push_back(i);
    });
  EXPECT_EQ(sim.pending(), static_cast<std::size_t>(kN));
  EXPECT_EQ(sim.run(), static_cast<std::size_t>(kN));
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kN));
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  order.clear();
  for (int i = 0; i < kN; ++i)  // second wave through the free list
    sim.schedule_after(Duration::micros(i), [&order, i] {
      order.push_back(i);
    });
  EXPECT_EQ(sim.run(), static_cast<std::size_t>(kN));
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(SimulatorArena, CancelDestroysHandlerCapturesEagerly) {
  Simulator sim;
  auto token = std::make_shared<int>(7);
  sim.schedule_after(Duration::millis(1), [token] { (void)*token; });
  const EventId id = sim.schedule_after(Duration::millis(2), [token] {
    (void)*token;
  });
  EXPECT_EQ(token.use_count(), 3);
  EXPECT_TRUE(sim.cancel(id));
  // The cancelled handler's capture must be released at cancel, not when
  // the heap node eventually drains.
  EXPECT_EQ(token.use_count(), 2);
  sim.run();
  EXPECT_EQ(token.use_count(), 1);
}

TEST(SimulatorArena, MoveOnlyCapturesAreSchedulable) {
  // std::function rejected move-only captures; InlineHandler accepts them.
  Simulator sim;
  auto payload = std::make_unique<int>(41);
  int got = 0;
  sim.schedule_after(Duration::millis(1),
                     [p = std::move(payload), &got] { got = *p + 1; });
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(got, 42);
}

// --- Randomized interleaving vs the pre-arena reference kernel -------------

/// Verbatim behavioural copy of the hash-set + priority_queue kernel this
/// kernel replaced. It is the executable specification for the randomized
/// equivalence test below: same FIFO tie-break, same lazy cancellation
/// semantics, and byte-identical trace emission (trace "seq" is the
/// schedule counter, which the reference also uses as its EventId).
class ReferenceSimulator {
 public:
  using Handler = std::function<void()>;

  [[nodiscard]] TimePoint now() const { return now_; }
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

  std::uint64_t schedule_at(TimePoint t, Handler fn) {
    const std::uint64_t id = next_seq_++;
    queue_.push(Event{t, id, std::move(fn)});
    pending_ids_.insert(id);
    if (trace_)
      obs::emit(trace_, now_, "sim.event.scheduled", {{"seq", id}, {"at", t}});
    return id;
  }

  std::uint64_t schedule_after(Duration d, Handler fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  bool cancel(std::uint64_t id) {
    if (pending_ids_.erase(id) == 0) return false;
    cancelled_.insert(id);
    if (trace_) obs::emit(trace_, now_, "sim.event.cancelled", {{"seq", id}});
    return true;
  }

  [[nodiscard]] std::size_t pending() const { return pending_ids_.size(); }

  [[nodiscard]] std::vector<std::uint64_t> pending_event_ids() const {
    std::vector<std::uint64_t> ids(pending_ids_.begin(), pending_ids_.end());
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  bool step() {
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (cancelled_.erase(top.seq) > 0) {
        queue_.pop();
        continue;
      }
      now_ = top.time;
      const std::uint64_t seq = top.seq;
      Handler fn = std::move(const_cast<Event&>(top).fn);
      queue_.pop();
      pending_ids_.erase(seq);
      if (trace_) obs::emit(trace_, now_, "sim.event.fired", {{"seq", seq}});
      fn();
      return true;
    }
    return false;
  }

  std::size_t run() {
    std::size_t n = 0;
    while (step()) ++n;
    return n;
  }

  std::size_t run_until(TimePoint horizon) {
    std::size_t n = 0;
    for (;;) {
      drop_cancelled_head();
      if (queue_.empty() || queue_.top().time > horizon) break;
      if (step()) ++n;
    }
    now_ = horizon;
    return n;
  }

 private:
  struct Event {
    TimePoint time;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled_head() {
    while (!queue_.empty() && cancelled_.erase(queue_.top().seq) > 0)
      queue_.pop();
  }

  TimePoint now_;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_set<std::uint64_t> pending_ids_;
  obs::TraceSink* trace_ = nullptr;
};

TEST(SimulatorRandomized, MatchesReferenceKernelAndTraceBytes) {
  for (const std::uint64_t seed : {1ULL, 42ULL, 20260805ULL}) {
    Simulator sim;
    ReferenceSimulator ref;
    obs::JsonlTraceWriter sim_trace;
    obs::JsonlTraceWriter ref_trace;
    sim.set_trace_sink(&sim_trace);
    ref.set_trace_sink(&ref_trace);

    Rng rng(seed);
    // Every scheduled event, as (arena id, reference id, schedule index).
    // Ids stay in this list after firing, so cancels regularly target
    // already-fired and slot-recycled ids — the stale-id surface.
    std::vector<std::pair<EventId, std::uint64_t>> all;
    std::vector<std::uint64_t> fired_sim;
    std::vector<std::uint64_t> fired_ref;
    std::uint64_t label = 0;

    for (int op = 0; op < 3000; ++op) {
      const double r = rng.uniform(0.0, 1.0);
      if (r < 0.55) {
        const Duration d = Duration::micros(rng.uniform_int(0, 300));
        const std::uint64_t lbl = label++;
        all.emplace_back(
            sim.schedule_after(d, [&fired_sim, lbl] {
              fired_sim.push_back(lbl);
            }),
            ref.schedule_after(d, [&fired_ref, lbl] {
              fired_ref.push_back(lbl);
            }));
      } else if (r < 0.80 && !all.empty()) {
        const auto k = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(all.size()) - 1));
        ASSERT_EQ(sim.cancel(all[k].first), ref.cancel(all[k].second));
      } else if (r < 0.95) {
        const TimePoint h = sim.now() + Duration::micros(rng.uniform_int(0, 250));
        ASSERT_EQ(sim.run_until(h), ref.run_until(h));
        ASSERT_EQ(sim.now(), ref.now());
      } else {
        ASSERT_EQ(sim.pending(), ref.pending());
        // Reference ids are schedule-ordered, so mapping the arena ids
        // through the schedule log must reproduce them exactly.
        const std::vector<EventId> got = sim.pending_event_ids();
        std::vector<std::uint64_t> mapped;
        mapped.reserve(got.size());
        for (const EventId id : got)
          for (const auto& [sim_id, ref_id] : all)
            if (sim_id == id) mapped.push_back(ref_id);
        ASSERT_EQ(mapped, ref.pending_event_ids());
      }
    }
    ASSERT_EQ(sim.run(), ref.run());
    ASSERT_EQ(fired_sim, fired_ref);
    ASSERT_EQ(sim_trace.str(), ref_trace.str());
  }
}

}  // namespace
}  // namespace ntco::sim
