#include "ntco/sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ntco/common/error.hpp"
#include "ntco/sim/server_pool.hpp"

namespace ntco::sim {
namespace {

TEST(Simulator, StartsAtOrigin) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint::origin());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::millis(20), [&] { order.push_back(2); });
  sim.schedule_after(Duration::millis(10), [&] { order.push_back(1); });
  sim.schedule_after(Duration::millis(30), [&] { order.push_back(3); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now().since_origin(), Duration::millis(30));
}

TEST(Simulator, SimultaneousEventsFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule_after(Duration::millis(5), [&order, i] {
      order.push_back(i);
    });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, HandlerCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule_after(Duration::millis(1), chain);
  };
  sim.schedule_after(Duration::millis(1), chain);
  EXPECT_EQ(sim.run(), 5u);
  EXPECT_EQ(sim.now().since_origin(), Duration::millis(5));
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  const auto id = sim.schedule_after(Duration::millis(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double-cancel reports failure
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const auto id = sim.schedule_after(Duration::millis(1), [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelUnknownIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(12345));
}

TEST(Simulator, PendingExcludesCancelled) {
  Simulator sim;
  sim.schedule_after(Duration::millis(1), [] {});
  const auto id = sim.schedule_after(Duration::millis(2), [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, PendingEventIdsAreSortedAndExcludeCancelledAndFired) {
  // pending_ids_ is a membership-only unordered set; the ordered view must
  // come out sorted (ascending EventId == scheduling order) regardless of
  // hash order, with cancelled and already-fired events absent.
  Simulator sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 8; ++i)
    ids.push_back(
        sim.schedule_after(Duration::millis(8 - i), [] {}));  // reverse time
  sim.cancel(ids[3]);
  EXPECT_TRUE(sim.step());  // fires ids[7], the earliest
  const auto pending = sim.pending_event_ids();
  const std::vector<EventId> expect{ids[0], ids[1], ids[2],
                                    ids[4], ids[5], ids[6]};
  EXPECT_EQ(pending, expect);
}

TEST(Simulator, RunUntilAdvancesClockToHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(Duration::millis(5), [&] { ++fired; });
  sim.schedule_after(Duration::millis(15), [&] { ++fired; });
  const auto horizon = TimePoint::origin() + Duration::millis(10);
  EXPECT_EQ(sim.run_until(horizon), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), horizon);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, RunUntilFiresEventExactlyAtHorizon) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(Duration::millis(10), [&] { fired = true; });
  sim.run_until(TimePoint::origin() + Duration::millis(10));
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilWithOnlyCancelledEventsIsSafe) {
  Simulator sim;
  const auto id = sim.schedule_after(Duration::millis(1), [] {});
  sim.cancel(id);
  EXPECT_EQ(sim.run_until(TimePoint::origin() + Duration::millis(5)), 0u);
}

TEST(Simulator, SchedulingInThePastThrows) {
  Simulator sim;
  sim.schedule_after(Duration::millis(10), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint::origin(), [] {}),
               ContractViolation);
  EXPECT_THROW(sim.schedule_after(-Duration::millis(1), [] {}),
               ContractViolation);
}

TEST(Simulator, NextEventTimeSkipsCancelled) {
  Simulator sim;
  const auto id = sim.schedule_after(Duration::millis(1), [] {});
  sim.schedule_after(Duration::millis(9), [] {});
  sim.cancel(id);
  EXPECT_EQ(sim.next_event_time(), TimePoint::origin() + Duration::millis(9));
}

TEST(ServerPool, SingleServerSerialisesJobs) {
  Simulator sim;
  ServerPool pool(sim, 1);
  std::vector<Duration> starts;
  for (int i = 0; i < 3; ++i)
    pool.submit(Duration::millis(10), [&](TimePoint started) {
      starts.push_back(started.since_origin());
    });
  sim.run();
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[0], Duration::zero());
  EXPECT_EQ(starts[1], Duration::millis(10));
  EXPECT_EQ(starts[2], Duration::millis(20));
  EXPECT_EQ(pool.total_busy_time(), Duration::millis(30));
  EXPECT_EQ(pool.completed(), 3u);
}

TEST(ServerPool, ParallelServersRunConcurrently) {
  Simulator sim;
  ServerPool pool(sim, 3);
  int done = 0;
  for (int i = 0; i < 3; ++i)
    pool.submit(Duration::millis(10), [&](TimePoint started) {
      EXPECT_EQ(started, TimePoint::origin());
      ++done;
    });
  sim.run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(sim.now().since_origin(), Duration::millis(10));
}

TEST(ServerPool, QueueDrainsAfterRelease) {
  Simulator sim;
  ServerPool pool(sim, 2);
  std::vector<Duration> starts;
  for (int i = 0; i < 5; ++i)
    pool.submit(Duration::millis(4), [&](TimePoint started) {
      starts.push_back(started.since_origin());
    });
  EXPECT_EQ(pool.busy(), 2u);
  EXPECT_EQ(pool.queued(), 3u);
  sim.run();
  ASSERT_EQ(starts.size(), 5u);
  EXPECT_EQ(starts[4], Duration::millis(8));
}

TEST(ServerPool, ZeroCapacityThrows) {
  Simulator sim;
  EXPECT_THROW(ServerPool(sim, 0), ContractViolation);
}

TEST(ServerPool, ZeroServiceTimeCompletesImmediately) {
  Simulator sim;
  ServerPool pool(sim, 1);
  bool done = false;
  pool.submit(Duration::zero(), [&](TimePoint) { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), TimePoint::origin());
}

}  // namespace
}  // namespace ntco::sim
