#include "ntco/app/arrivals.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "ntco/common/contracts.hpp"
#include "ntco/common/rng.hpp"
#include "ntco/fleet/replicator.hpp"
#include "ntco/obs/metrics.hpp"
#include "ntco/obs/trace.hpp"

// Suite names: "Arrival*" for the process models, "ArrivalFleet" for the
// cross-thread determinism suite (picked up by the ci.sh TSan rerun).

namespace ntco::app {
namespace {

int hour_of(TimePoint t) {
  return static_cast<int>(
      (t.since_origin().count_micros() / 3'600'000'000LL) % 24);
}

// ----------------------------------------------------------------- Poisson

TEST(ArrivalPoisson, SortedWithinHorizonAtRoughlyTheRate) {
  Rng rng(7);
  const TimePoint t0 = TimePoint::at(Duration::hours(3));
  const Duration horizon = Duration::seconds(1000);
  const auto at = poisson_arrivals(t0, horizon, 10.0, rng);

  // Mean 10'000, sd 100: +-5 sd is a 1-in-a-million flake bound.
  EXPECT_GT(at.size(), 9500u);
  EXPECT_LT(at.size(), 10500u);
  for (std::size_t i = 0; i < at.size(); ++i) {
    EXPECT_GE(at[i], t0);
    EXPECT_LT(at[i], t0 + horizon);
    if (i > 0) {
      EXPECT_GE(at[i], at[i - 1]);
    }
  }
}

TEST(ArrivalPoisson, ContractChecks) {
  Rng rng(7);
  const TimePoint t0 = TimePoint::origin();
  EXPECT_THROW((void)poisson_arrivals(t0, Duration::seconds(1), 0.0, rng),
               ContractViolation);
  EXPECT_THROW(
      (void)poisson_arrivals(t0, Duration::seconds(-1), 1.0, rng),
      ContractViolation);
}

TEST(ArrivalPoisson, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  const TimePoint t0 = TimePoint::origin();
  EXPECT_EQ(poisson_arrivals(t0, Duration::seconds(100), 5.0, a),
            poisson_arrivals(t0, Duration::seconds(100), 5.0, b));
}

// ------------------------------------------------------------------- MMPP

TEST(ArrivalDiurnal, ProfileNormalisation) {
  const auto flat = DiurnalProfile::flat();
  EXPECT_DOUBLE_EQ(flat.mean(), 1.0);
  EXPECT_DOUBLE_EQ(flat.max(), 1.0);
  const auto res = DiurnalProfile::residential_evening();
  EXPECT_GT(res.mean(), 0.0);
  // The evening peak dominates every other hour.
  EXPECT_DOUBLE_EQ(res.max(), res.weight[21]);
}

TEST(ArrivalMmpp, FlatProfileMatchesPoissonRate) {
  MmppConfig cfg;
  cfg.mean_rate_per_second = 0.5;
  cfg.profile = DiurnalProfile::flat();
  cfg.burst_multiplier = 1.0;
  Rng rng(11);
  const auto at =
      mmpp_arrivals(cfg, TimePoint::origin(), Duration::hours(24), rng);
  // Mean 43'200, sd ~208: +-5 sd.
  EXPECT_GT(at.size(), 42160u);
  EXPECT_LT(at.size(), 44240u);
}

TEST(ArrivalMmpp, EnvelopeShiftsMassIntoTheEveningPeak) {
  MmppConfig cfg;
  cfg.mean_rate_per_second = 0.5;
  cfg.burst_multiplier = 1.0;  // pure envelope, no burst chain
  Rng rng(13);
  const auto at =
      mmpp_arrivals(cfg, TimePoint::origin(), Duration::hours(24), rng);

  std::array<std::uint64_t, 24> per_hour{};
  for (const TimePoint t : at)
    ++per_hour[static_cast<std::size_t>(hour_of(t))];
  // weight(21:00) / weight(03:00) = 2.30 / 0.16; even half that ratio
  // can't happen by chance at these counts.
  EXPECT_GT(static_cast<double>(per_hour[21]),
            5.0 * static_cast<double>(per_hour[3]));
  // Arrivals stay sorted across hour boundaries.
  for (std::size_t i = 1; i < at.size(); ++i) EXPECT_GE(at[i], at[i - 1]);
}

TEST(ArrivalMmpp, BurstChainRaisesTheRealisedMean) {
  MmppConfig calm;
  calm.mean_rate_per_second = 0.5;
  calm.profile = DiurnalProfile::flat();
  calm.burst_multiplier = 1.0;
  MmppConfig bursty = calm;
  bursty.burst_multiplier = 3.0;  // ~8.3% of time in 3x bursts => +17% mean

  Rng a(17);
  Rng b(17);
  const auto base =
      mmpp_arrivals(calm, TimePoint::origin(), Duration::hours(24), a);
  const auto burst =
      mmpp_arrivals(bursty, TimePoint::origin(), Duration::hours(24), b);
  EXPECT_GT(static_cast<double>(burst.size()),
            1.05 * static_cast<double>(base.size()));
}

TEST(ArrivalMmpp, ContractChecks) {
  Rng rng(1);
  MmppConfig cfg;
  cfg.burst_multiplier = 0.5;  // < 1 is not a burst
  EXPECT_THROW(
      (void)mmpp_arrivals(cfg, TimePoint::origin(), Duration::hours(1), rng),
      ContractViolation);
  MmppConfig zero;
  zero.profile.weight.fill(0.0);
  EXPECT_THROW(
      (void)mmpp_arrivals(zero, TimePoint::origin(), Duration::hours(1), rng),
      ContractViolation);
}

// -------------------------------------------------------------- Vehicular

TEST(ArrivalVehicular, SessionAndRequestInvariants) {
  VehicularConfig cfg;  // defaults: 0.5 veh/s, 45 s mean residence
  Rng rng(23);
  const TimePoint t0 = TimePoint::at(Duration::hours(8));
  const Duration horizon = Duration::minutes(30);
  const auto sessions = vehicular_sessions(cfg, t0, horizon, rng);

  ASSERT_FALSE(sessions.empty());
  std::uint64_t prev_vehicle = 0;
  TimePoint prev_enter = t0;
  for (const VehicleSession& s : sessions) {
    if (&s != &sessions.front()) {
      EXPECT_GT(s.vehicle, prev_vehicle);
      EXPECT_GE(s.enter, prev_enter);
    }
    prev_vehicle = s.vehicle;
    prev_enter = s.enter;
    EXPECT_GE(s.enter, t0);
    EXPECT_LT(s.enter, t0 + horizon);
    EXPECT_GE(s.residence, cfg.min_residence);
    EXPECT_EQ(s.exit(), s.enter + s.residence);
    TimePoint prev_at = s.enter;
    for (const VehicleRequest& r : s.requests) {
      EXPECT_GE(r.at, prev_at);
      prev_at = r.at;
      EXPECT_GT(r.at, s.enter);
      EXPECT_LT(r.at, s.exit());
      // The hard deadline is exactly the remaining link residence.
      EXPECT_EQ(r.at + r.residence_left, s.exit());
      EXPECT_GT(r.bw_scale, 0.0);
      EXPECT_GE(r.battery, cfg.battery_min);
      EXPECT_LE(r.battery, 1.0);
    }
  }
}

TEST(ArrivalVehicular, ObserverCountsEveryOfferedJob) {
  VehicularConfig cfg;
  obs::MetricsRegistry metrics;
  obs::JsonlTraceWriter trace;
  ArrivalObserver watch{&trace, &metrics};
  Rng rng(29);
  const auto sessions = vehicular_sessions(cfg, TimePoint::origin(),
                                           Duration::minutes(10), rng, watch);

  std::uint64_t offered = 0;
  for (const VehicleSession& s : sessions) offered += s.requests.size();
  EXPECT_EQ(metrics.counter("app.arrival.jobs").value(), offered);
  EXPECT_FALSE(trace.str().empty());
}

// ------------------------------------------------------------ Determinism

/// Arrivals generated per shard from Rng substreams must merge to the same
/// bytes at any worker count — they are the demand side of every open-loop
/// fleet experiment (F15/F16).
struct FleetOut {
  std::uint64_t jobs = 0;
  obs::MetricsRegistry metrics;
  obs::JsonlTraceWriter trace;
};

FleetOut run_fleet(std::size_t threads) {
  fleet::Replicator rep(83, threads);
  return rep.reduce(
      8, FleetOut{},
      [](fleet::ShardContext& ctx) {
        FleetOut out;
        ArrivalObserver watch{&out.trace, &out.metrics};
        MmppConfig mm;
        mm.mean_rate_per_second = 0.05;
        mm.burst_multiplier = 2.0;
        out.jobs += mmpp_arrivals(mm, TimePoint::origin(), Duration::hours(6),
                                  ctx.rng, watch)
                        .size();
        VehicularConfig vc;
        out.jobs += vehicular_sessions(vc, TimePoint::at(Duration::hours(6)),
                                       Duration::minutes(5), ctx.rng, watch)
                        .size();
        return out;
      },
      [](FleetOut& acc, FleetOut&& shard, std::size_t) {
        acc.jobs += shard.jobs;
        acc.metrics.merge_from(shard.metrics);
        acc.trace.append_from(shard.trace);
      });
}

TEST(ArrivalFleet, ByteIdenticalAcrossThreads) {
  const FleetOut one = run_fleet(1);
  const FleetOut eight = run_fleet(8);
  EXPECT_GT(one.jobs, 0u);
  EXPECT_EQ(one.jobs, eight.jobs);
  EXPECT_FALSE(one.trace.str().empty());
  EXPECT_EQ(one.metrics.to_csv(), eight.metrics.to_csv());
  EXPECT_EQ(one.trace.str(), eight.trace.str());
}

}  // namespace
}  // namespace ntco::app
