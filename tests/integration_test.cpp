// Cross-module integration tests and system-level properties that no
// single-module suite covers.

#include <gtest/gtest.h>

#include "ntco/app/generators.hpp"
#include "ntco/app/workloads.hpp"
#include "ntco/cicd/pipeline.hpp"
#include "ntco/core/controller.hpp"
#include "ntco/net/mobility.hpp"
#include "ntco/profile/profiler.hpp"
#include "ntco/net/path.hpp"

namespace ntco {
namespace {

TEST(Integration, MobilityDrivenControllerRunsEndToEnd) {
  // The controller must work unchanged behind a schedule-following path:
  // the same plan executes faster on WiFi than on the 4G commute.
  const auto schedule = net::MobilitySchedule::commuter_day();
  sim::Simulator sim;
  serverless::Platform cloud(sim, {});
  device::Device phone(device::budget_phone());
  net::NetworkPath path(
      "mobile",
      std::make_unique<net::MobileLink>(schedule, true,
                                        [&sim] { return sim.now(); }),
      std::make_unique<net::MobileLink>(schedule, false,
                                        [&sim] { return sim.now(); }));
  core::ControllerConfig cfg;
  cfg.objective = partition::Objective::latency();
  core::OffloadController ctl(sim, cloud, phone, path, cfg);

  const auto g = app::workloads::ml_batch_training();
  const auto plan = ctl.prepare(g, partition::MinCutPartitioner{});
  ASSERT_GT(plan.partition.remote_count(), 0u);

  // Warm up, then measure one run on home WiFi (t ~ 1 h)...
  (void)ctl.execute(plan, g);
  const auto on_wifi = ctl.execute(plan, g);
  // ...and one on the 08:00-09:00 4G commute.
  sim.run_until(TimePoint::origin() + Duration::hours(8) +
                Duration::minutes(30));
  const auto on_4g = ctl.execute(plan, g);

  EXPECT_FALSE(on_wifi.failed);
  EXPECT_FALSE(on_4g.failed);
  EXPECT_LT(on_wifi.transfer, on_4g.transfer);
  EXPECT_LT(on_wifi.makespan, on_4g.makespan);
}

TEST(Integration, PipelinePlanSurvivesIntoProductionExecution) {
  // A plan promoted by the release pipeline is directly executable by the
  // controller against drifting truth until the watcher fires.
  sim::Simulator sim;
  serverless::Platform cloud(sim, {});
  device::Device phone(device::budget_phone());
  auto path = net::make_fixed_path(net::profile_4g());
  core::ControllerConfig ccfg;
  ccfg.objective = partition::Objective::latency();
  core::OffloadController ctl(sim, cloud, phone, path, ccfg);
  cicd::PipelineConfig pcfg;
  pcfg.canary_runs = 2;
  pcfg.profile_runs = 10;
  cicd::ReleasePipeline pipeline(sim, ctl, pcfg, Rng(3));

  const auto g = app::workloads::photo_backup();
  const auto release = pipeline.run_release(g, partition::MinCutPartitioner{},
                                            nullptr);
  ASSERT_TRUE(release.promoted);

  cicd::DriftWatcher watcher(0.4, 3);
  int production_runs = 0;
  for (double scale = 1.0; scale < 4.0; scale += 0.25) {
    const auto truth = g.with_work_scaled(scale);
    const auto r = ctl.execute(*release.plan, truth);
    EXPECT_FALSE(r.failed);
    ++production_runs;
    if (watcher.observe_run(truth.total_work())) break;
  }
  EXPECT_TRUE(watcher.pending());
  EXPECT_GT(production_runs, 4);
}

/// Property: widening the uplink can never make the optimal plan worse —
/// the optimiser can always ignore extra bandwidth.
class BandwidthMonotonicity : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BandwidthMonotonicity, OptimalObjectiveIsMonotoneInBandwidth) {
  Rng rng(GetParam());
  app::GeneratorParams gp;
  gp.components = 6 + static_cast<std::size_t>(rng.uniform_int(0, 8));
  const auto g = app::layered_random(3, gp, rng.fork(1));

  partition::Environment env;
  env.device = device::budget_phone();
  const partition::MinCutPartitioner mincut;

  double previous = std::numeric_limits<double>::infinity();
  for (const auto mbps : {1ULL, 4ULL, 16ULL, 64ULL, 256ULL}) {
    env.uplink = DataRate::megabits_per_second(mbps);
    env.downlink = DataRate::megabits_per_second(mbps * 2);
    const partition::CostModel model(g, env, partition::Objective::latency());
    const double value = model.evaluate(mincut.plan(model));
    EXPECT_LE(value, previous + 1e-9) << "at " << mbps << " Mb/s";
    previous = value;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BandwidthMonotonicity,
                         ::testing::Range<std::uint64_t>(0, 15));

/// Property: the objective is positively homogeneous — scaling all weights
/// scales the value and preserves the argmin.
class ObjectiveHomogeneity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ObjectiveHomogeneity, ScalingWeightsPreservesTheOptimum) {
  Rng rng(GetParam());
  app::GeneratorParams gp;
  gp.components = 8;
  const auto g = app::layered_random(3, gp, rng.fork(1));
  partition::Environment env;
  env.device = device::budget_phone();

  const partition::Objective base{rng.uniform(0.1, 1.0),
                                  rng.uniform(0.0, 0.2),
                                  rng.uniform(0.0, 2.0)};
  const double k = rng.uniform(2.0, 10.0);
  const partition::Objective scaled{base.latency_weight * k,
                                    base.energy_weight * k,
                                    base.money_weight * k};

  const partition::CostModel m1(g, env, base);
  const partition::CostModel mk(g, env, scaled);
  const partition::MinCutPartitioner mincut;
  const auto p1 = mincut.plan(m1);
  const auto pk = mincut.plan(mk);
  EXPECT_NEAR(mk.evaluate(pk), k * m1.evaluate(p1),
              k * m1.evaluate(p1) * 1e-9);
  // The argmin is identical up to cost ties.
  EXPECT_NEAR(m1.evaluate(pk), m1.evaluate(p1), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObjectiveHomogeneity,
                         ::testing::Range<std::uint64_t>(0, 15));

/// Property: the plan's predicted breakdown equals the cost model's
/// breakdown of its partition — prepare() must not distort the model.
TEST(Integration, PreparePredictionMatchesCostModel) {
  for (const auto& g : app::workloads::all()) {
    sim::Simulator sim;
    serverless::Platform cloud(sim, {});
    device::Device phone(device::budget_phone());
    auto path = net::make_fixed_path(net::profile_4g());
    core::OffloadController ctl(sim, cloud, phone, path, {});
    const auto plan = ctl.prepare(g, partition::MinCutPartitioner{});
    const partition::CostModel model(g, plan.environment,
                                     ctl.config().objective);
    const auto expected = model.breakdown(plan.partition);
    EXPECT_DOUBLE_EQ(plan.predicted.objective, expected.objective)
        << g.name();
    EXPECT_EQ(plan.predicted.latency, expected.latency) << g.name();
  }
}

/// Property: end-to-end determinism — identical seeds and scenario produce
/// bit-identical reports.
TEST(Integration, WholeStackIsDeterministic) {
  auto run_once = [] {
    sim::Simulator sim;
    serverless::PlatformConfig pcfg;
    pcfg.seed = 99;
    serverless::Platform cloud(sim, pcfg);
    device::Device phone(device::budget_phone());
    auto path = net::make_stochastic_path(net::profile_4g(), Rng(5));
    core::OffloadController ctl(sim, cloud, phone, path, {});
    const auto g = app::workloads::nightly_etl();
    profile::TraceGenerator gen(g, 0.3, Rng(6));
    profile::DemandProfiler prof(g.component_count(), g.flow_count());
    for (int i = 0; i < 25; ++i) prof.ingest(gen.next());
    const auto plan =
        ctl.prepare(prof.estimated_graph(g), partition::MinCutPartitioner{});
    return ctl.execute(plan, g);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.device_energy, b.device_energy);
  EXPECT_EQ(a.cloud_cost, b.cloud_cost);
  EXPECT_EQ(a.cold_starts, b.cold_starts);
}

}  // namespace
}  // namespace ntco
