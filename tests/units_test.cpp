#include "ntco/common/units.hpp"

#include <gtest/gtest.h>

#include "ntco/common/error.hpp"

namespace ntco {
namespace {

TEST(Duration, FactoryConversions) {
  EXPECT_EQ(Duration::micros(1).count_micros(), 1);
  EXPECT_EQ(Duration::millis(1).count_micros(), 1'000);
  EXPECT_EQ(Duration::seconds(1).count_micros(), 1'000'000);
  EXPECT_EQ(Duration::minutes(2).count_micros(), 120'000'000);
  EXPECT_EQ(Duration::hours(1).count_micros(), 3'600'000'000LL);
}

TEST(Duration, FromSecondsRoundsToMicros) {
  EXPECT_EQ(Duration::from_seconds(0.5).count_micros(), 500'000);
  EXPECT_EQ(Duration::from_seconds(1e-7).count_micros(), 0);
  EXPECT_EQ(Duration::from_seconds(-0.25).count_micros(), -250'000);
}

TEST(Duration, Arithmetic) {
  const auto a = Duration::millis(10);
  const auto b = Duration::millis(4);
  EXPECT_EQ((a + b).count_micros(), 14'000);
  EXPECT_EQ((a - b).count_micros(), 6'000);
  EXPECT_EQ((a * 2.5).count_micros(), 25'000);
  EXPECT_EQ((a / 4.0).count_micros(), 2'500);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_TRUE((b - a).is_negative());
}

TEST(Duration, ComparisonOrdering) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_EQ(Duration::seconds(1), Duration::millis(1000));
  EXPECT_GE(Duration::zero(), -Duration::millis(1));
}

TEST(Duration, DivisionByZeroThrows) {
  EXPECT_THROW((void)(Duration::millis(1) / 0.0), ContractViolation);
}

TEST(TimePoint, Arithmetic) {
  const auto t0 = TimePoint::origin();
  const auto t1 = t0 + Duration::seconds(3);
  EXPECT_EQ((t1 - t0).count_micros(), 3'000'000);
  EXPECT_EQ((t1 - Duration::seconds(1)).since_origin(), Duration::seconds(2));
  EXPECT_LT(t0, t1);
}

TEST(DataSize, FactoryConversions) {
  EXPECT_EQ(DataSize::bytes(7).count_bytes(), 7u);
  EXPECT_EQ(DataSize::kilobytes(2).count_bytes(), 2'000u);
  EXPECT_EQ(DataSize::megabytes(3).count_bytes(), 3'000'000u);
  EXPECT_EQ(DataSize::gigabytes(1).count_bytes(), 1'000'000'000u);
  EXPECT_EQ(DataSize::bytes(1).count_bits(), 8u);
}

TEST(DataSize, Arithmetic) {
  EXPECT_EQ((DataSize::kilobytes(1) + DataSize::bytes(24)).count_bytes(),
            1'024u);
  EXPECT_EQ((DataSize::megabytes(2) * 0.5).count_bytes(), 1'000'000u);
  EXPECT_THROW((void)(DataSize::bytes(1) * -1.0), ContractViolation);
}

TEST(Cycles, FactoryAndScaling) {
  EXPECT_EQ(Cycles::mega(5).value(), 5'000'000u);
  EXPECT_EQ(Cycles::giga(2).value(), 2'000'000'000u);
  EXPECT_EQ((Cycles::mega(10) * 1.5).value(), 15'000'000u);
  EXPECT_DOUBLE_EQ(Cycles::mega(3).to_mega(), 3.0);
}

TEST(CrossUnit, CyclesOverFrequencyIsExecutionTime) {
  // 2 Gcycles at 2 GHz = exactly 1 s.
  const auto t = Cycles::giga(2) / Frequency::gigahertz(2.0);
  EXPECT_EQ(t, Duration::seconds(1));
}

TEST(CrossUnit, ExecutionTimeRoundsUpForTinyWork) {
  // 1 cycle at 1 GHz is 1 ns — must round *up* to 1 us, never to zero.
  const auto t = Cycles::count(1) / Frequency::gigahertz(1.0);
  EXPECT_EQ(t.count_micros(), 1);
}

TEST(CrossUnit, ZeroFrequencyThrows) {
  EXPECT_THROW((void)(Cycles::mega(1) / Frequency::hertz(0)),
               ContractViolation);
}

TEST(CrossUnit, DataOverRateIsTransferTime) {
  // 1 MB over 8 Mbit/s = exactly 1 s.
  const auto t = DataSize::megabytes(1) / DataRate::megabits_per_second(8);
  EXPECT_EQ(t, Duration::seconds(1));
}

TEST(CrossUnit, PowerTimesDurationIsEnergy) {
  const auto e = Power::watts(2.0) * Duration::seconds(3);
  EXPECT_DOUBLE_EQ(e.to_joules(), 6.0);
  EXPECT_EQ((Duration::seconds(3) * Power::watts(2.0)), e);
}

TEST(CrossUnit, NegativeDurationEnergyThrows) {
  EXPECT_THROW((void)(Power::watts(1.0) * (-Duration::seconds(1))),
               ContractViolation);
}

TEST(Money, NanoUsdRepresentation) {
  EXPECT_EQ(Money::usd(1).count_nano_usd(), 1'000'000'000);
  EXPECT_EQ(Money::usd(1).count_micro_usd(), 1'000'000);
  EXPECT_EQ(Money::cents(5).count_nano_usd(), 50'000'000);
  // The canonical GB-second price survives the round trip to 1e-9.
  EXPECT_DOUBLE_EQ(Money::from_usd(0.0000166667).to_usd(), 0.0000166670);
  // Per-request pricing is representable exactly.
  EXPECT_EQ(Money::from_usd(0.0000002).count_nano_usd(), 200);
}

TEST(Money, ArithmeticIsExact) {
  // Accumulating a sub-cent price a million times must not drift.
  Money total;
  const Money per_call = Money::micro_usd(2);  // $0.000002
  for (int i = 0; i < 1'000'000; ++i) total += per_call;
  EXPECT_EQ(total, Money::usd(2));
}

TEST(Money, SignedArithmetic) {
  EXPECT_EQ((Money::usd(1) - Money::usd(3)).count_micro_usd(), -2'000'000);
  EXPECT_EQ((Money::cents(10) * 0.5), Money::cents(5));
}

TEST(Energy, Accumulation) {
  Energy e;
  e += Energy::joules(1.5);
  e += Energy::microjoules(500'000);
  EXPECT_DOUBLE_EQ(e.to_joules(), 2.0);
  EXPECT_EQ((Energy::joules(2.0) - Energy::joules(0.5)), Energy::joules(1.5));
}

TEST(Formatting, HumanReadable) {
  EXPECT_EQ(to_string(Duration::micros(500)), "500 us");
  EXPECT_EQ(to_string(Duration::millis(12)), "12.00 ms");
  EXPECT_EQ(to_string(Duration::seconds(3)), "3.00 s");
  EXPECT_EQ(to_string(Duration::minutes(2)), "2.00 min");
  EXPECT_EQ(to_string(DataSize::bytes(12)), "12 B");
  EXPECT_EQ(to_string(DataSize::megabytes(3)), "3.00 MB");
  EXPECT_EQ(to_string(Cycles::mega(4)), "4.00 Mcyc");
  EXPECT_EQ(to_string(Money::from_usd(0.000041)), "$0.000041");
  EXPECT_EQ(to_string(Energy::joules(1.25)), "1.25 J");
}

}  // namespace
}  // namespace ntco
