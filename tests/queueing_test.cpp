// Queueing closed forms and the cross-validation of the edge simulator
// against M/M/c theory — the substrate-level "is the simulator right"
// property suite.

#include <gtest/gtest.h>

#include "ntco/common/error.hpp"
#include "ntco/common/rng.hpp"
#include "ntco/edgesim/edge_platform.hpp"
#include "ntco/stats/accumulator.hpp"
#include "ntco/stats/queueing.hpp"

namespace ntco::stats {
namespace {

TEST(ErlangC, KnownValues) {
  // Single server: C(1, rho) = rho (M/M/1 waiting probability).
  EXPECT_NEAR(erlang_c(1, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(erlang_c(1, 0.9), 0.9, 1e-12);
  // c=2, a=1: B = 1/5, C = 2*(1/5) / (2 - 1*(4/5)) = 0.4/1.2 = 1/3.
  EXPECT_NEAR(erlang_c(2, 1.0), 1.0 / 3.0, 1e-12);
  // Saturation clamps to 1.
  EXPECT_DOUBLE_EQ(erlang_c(2, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(erlang_c(2, 5.0), 1.0);
}

TEST(ErlangC, MonotoneInLoadAndServers) {
  for (double a = 0.5; a < 3.5; a += 0.5)
    EXPECT_LT(erlang_c(4, a), erlang_c(4, a + 0.4));
  for (std::size_t c = 2; c < 10; ++c)
    EXPECT_GT(erlang_c(c, 1.5), erlang_c(c + 1, 1.5));
}

TEST(MMc, MeanWaitFormulas) {
  // M/M/1 at rho = 0.5: Wq = rho/(1-rho) = 1 service time.
  EXPECT_NEAR(mmc_mean_wait_in_service_times(1, 0.5), 1.0, 1e-12);
  // Lq = a * Wq.
  EXPECT_NEAR(mmc_mean_queue_length(1, 0.5), 0.5, 1e-12);
  EXPECT_TRUE(std::isinf(mmc_mean_wait_in_service_times(3, 3.0)));
}

TEST(MMc, ContractsRejectBadInput) {
  EXPECT_THROW((void)erlang_c(0, 1.0), ContractViolation);
  EXPECT_THROW((void)erlang_c(2, -1.0), ContractViolation);
}

/// Property sweep: the edge platform fed Poisson arrivals of exponential
/// work must match the M/M/c mean wait within simulation noise.
struct MmcCase {
  std::size_t servers;
  double rho;  ///< utilisation per server = a / c
};

class EdgeMmcProperty : public ::testing::TestWithParam<MmcCase> {};

TEST_P(EdgeMmcProperty, EdgePlatformMatchesTheory) {
  const auto [servers, rho] = GetParam();
  const double a = rho * static_cast<double>(servers);  // Erlangs

  sim::Simulator simulator;
  edgesim::EdgeConfig cfg;
  cfg.servers = servers;
  cfg.server_speed = Frequency::gigahertz(1.0);
  cfg.request_overhead = Duration::zero();  // pure M/M/c
  edgesim::EdgePlatform edge(simulator, cfg);

  const double mean_service_s = 0.5;  // 0.5 Gcyc at 1 GHz
  const double lambda = a / mean_service_s;

  Rng rng(42 + servers);
  Accumulator waits;
  TimePoint at = TimePoint::origin();
  constexpr int kWarmup = 10'000;  // discard the empty-system transient
  constexpr int kJobs = 150'000;
  int seen = 0;
  for (int i = 0; i < kJobs; ++i) {
    at = at + Duration::from_seconds(rng.exponential(1.0 / lambda));
    const auto work = Cycles::count(static_cast<std::uint64_t>(
        std::max(1.0, rng.exponential(mean_service_s) * 1e9)));
    simulator.schedule_at(at, [&edge, &waits, &seen, work] {
      edge.submit(work, [&waits, &seen](const edgesim::EdgeResult& r) {
        if (++seen > kWarmup) waits.add(r.queue_wait.to_seconds());
      });
    });
  }
  simulator.run();

  const double expected_wait_s =
      mmc_mean_wait_in_service_times(servers, a) * mean_service_s;
  ASSERT_EQ(waits.count(), static_cast<std::uint64_t>(kJobs - kWarmup));
  // Long-run mean with warmup discarded: 10% relative tolerance.
  EXPECT_NEAR(waits.mean(), expected_wait_s,
              std::max(0.01, expected_wait_s * 0.10))
      << "c=" << servers << " rho=" << rho;
  // Utilisation must match the offered load per server.
  EXPECT_NEAR(edge.utilization(), rho, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EdgeMmcProperty,
    ::testing::Values(MmcCase{1, 0.3}, MmcCase{1, 0.6}, MmcCase{1, 0.8},
                      MmcCase{2, 0.5}, MmcCase{2, 0.8}, MmcCase{4, 0.6},
                      MmcCase{4, 0.9}, MmcCase{8, 0.7}));

}  // namespace
}  // namespace ntco::stats
