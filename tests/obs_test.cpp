#include "ntco/obs/metrics.hpp"
#include "ntco/obs/trace.hpp"

#include <gtest/gtest.h>

#include "ntco/app/workloads.hpp"
#include "ntco/core/controller.hpp"
#include "ntco/net/path.hpp"

namespace ntco::obs {
namespace {

// ---------------------------------------------------------------------------
// JSONL trace writer: exact rendering.

TEST(JsonlTraceWriter, RendersRecordsExactly) {
  JsonlTraceWriter w;
  emit(&w, TimePoint::at(Duration::micros(1500)), "faas.cold_start",
       {{"fn", std::uint64_t{0}}, {"init", Duration::micros(180600)}});
  emit(&w, TimePoint::at(Duration::millis(2)), "net.link.state",
       {{"link", "4g/up"}, {"good", false}});
  emit(&w, TimePoint::origin(), "sim.event.fired", {});
  EXPECT_EQ(w.record_count(), 3u);
  EXPECT_EQ(w.str(),
            "{\"t_us\":1500,\"ev\":\"faas.cold_start\",\"fn\":0,"
            "\"init\":180600}\n"
            "{\"t_us\":2000,\"ev\":\"net.link.state\",\"link\":\"4g/up\","
            "\"good\":false}\n"
            "{\"t_us\":0,\"ev\":\"sim.event.fired\"}\n");
}

TEST(JsonlTraceWriter, EscapesStringsAndRendersAllKinds) {
  JsonlTraceWriter w;
  emit(&w, TimePoint::origin(), "test",
       {{"s", "a\"b\\c\nd"},
        {"i", std::int64_t{-7}},
        {"d", 0.25},
        {"b", true}});
  EXPECT_EQ(w.str(),
            "{\"t_us\":0,\"ev\":\"test\",\"s\":\"a\\\"b\\\\c\\nd\","
            "\"i\":-7,\"d\":0.25,\"b\":true}\n");
  w.clear();
  EXPECT_EQ(w.record_count(), 0u);
  EXPECT_TRUE(w.str().empty());
}

TEST(Emit, NullSinkIsANoOp) {
  emit(nullptr, TimePoint::origin(), "never", {{"k", 1.0}});  // must not crash
  CountingSink sink;
  emit(&sink, TimePoint::origin(), "once");
  EXPECT_EQ(sink.count(), 1u);
}

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(MetricsRegistry, CounterGaugeSummaryArithmetic) {
  MetricsRegistry reg;
  reg.counter("a.hits").add();
  reg.counter("a.hits").add(4);
  EXPECT_EQ(reg.counter("a.hits").value(), 5u);

  reg.gauge("a.depth").set(3.5);
  EXPECT_DOUBLE_EQ(reg.gauge("a.depth").value(), 3.5);

  auto& s = reg.summary("a.wait_ms");
  s.add(1.0);
  s.add(3.0);
  EXPECT_EQ(reg.summary("a.wait_ms").count(), 2u);
  EXPECT_DOUBLE_EQ(reg.summary("a.wait_ms").mean(), 2.0);

  // Same name -> same instrument, not a fresh one.
  EXPECT_EQ(&reg.counter("a.hits"), &reg.counter("a.hits"));
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, HistogramBinsAndLookups) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat", 0.0, 10.0, 5);
  h.add(1.0);
  h.add(9.9);
  h.add(42.0);  // overflow
  EXPECT_EQ(&reg.histogram("lat", 0.0, 10.0, 5), &h);

  EXPECT_NE(reg.find_histogram("lat"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  EXPECT_EQ(reg.find_counter("lat"), nullptr);
}

TEST(MetricsRegistry, CsvIsSortedAndComplete) {
  MetricsRegistry reg;
  reg.counter("z.last").add(2);
  reg.counter("a.first").add(1);
  reg.gauge("m.mid").set(-1.5);
  const std::string csv = reg.to_csv();
  EXPECT_EQ(csv.rfind("metric,kind,field,value\n", 0), 0u);
  const auto a = csv.find("a.first,counter,value,1");
  const auto m = csv.find("m.mid,gauge,value,-1.5");
  const auto z = csv.find("z.last,counter,value,2");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
}

TEST(MetricsRegistry, MergeFromCombinesEveryKind) {
  MetricsRegistry a, b;
  a.counter("hits").add(3);
  b.counter("hits").add(4);
  b.counter("only_b").add(1);
  a.gauge("depth").set(1.0);
  b.gauge("depth").set(2.5);
  a.summary("wait").add(1.0);
  b.summary("wait").add(3.0);
  a.histogram("lat", 0.0, 10.0, 5).add(1.0);
  b.histogram("lat", 0.0, 10.0, 5).add(1.5);
  b.histogram("lat", 0.0, 10.0, 5).add(42.0);

  a.merge_from(b);
  EXPECT_EQ(a.counter("hits").value(), 7u);
  EXPECT_EQ(a.counter("only_b").value(), 1u);
  EXPECT_DOUBLE_EQ(a.gauge("depth").value(), 2.5);  // last write wins
  EXPECT_EQ(a.summary("wait").count(), 2u);
  EXPECT_DOUBLE_EQ(a.summary("wait").mean(), 2.0);
  const auto* h = a.find_histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total(), 3u);
  EXPECT_EQ(h->bin(0), 2u);
  EXPECT_EQ(h->overflow(), 1u);
}

TEST(MetricsRegistry, MergeFromRejectsHistogramGeometryMismatch) {
  MetricsRegistry a, b;
  a.histogram("lat", 0.0, 10.0, 5).add(1.0);
  b.histogram("lat", 0.0, 20.0, 5).add(1.0);
  EXPECT_THROW(a.merge_from(b), ContractViolation);
}

TEST(MetricsRegistry, MergedDumpIsGroupingIndependent) {
  // Three per-shard registries reduced ((s0+s1)+s2) versus (s0+(s1+s2)):
  // the CSV and JSON dumps must be byte-identical — the property the fleet
  // relies on to make NTCO_THREADS invisible in merged artifacts.
  const auto shard = [](std::uint64_t i) {
    MetricsRegistry r;
    r.counter("faas.invocations").add(10 + i);
    r.gauge("pool.depth").set(static_cast<double>(i));
    r.summary("exec_ms").add(static_cast<double>(1 + i));
    r.summary("exec_ms").add(static_cast<double>(5 * (i + 1)));
    r.histogram("lat_s", 0.0, 8.0, 4).add(static_cast<double>(i) * 2.5);
    return r;
  };

  MetricsRegistry left;  // ((s0 + s1) + s2)
  left.merge_from(shard(0));
  left.merge_from(shard(1));
  left.merge_from(shard(2));

  MetricsRegistry mid;  // s0 + (s1 + s2)
  mid.merge_from(shard(1));
  mid.merge_from(shard(2));
  MetricsRegistry right;
  right.merge_from(shard(0));
  right.merge_from(mid);

  EXPECT_EQ(left.to_csv(), right.to_csv());
  EXPECT_EQ(left.to_json(), right.to_json());
}

TEST(JsonlTraceWriter, AppendFromStitchesInCallOrder) {
  JsonlTraceWriter s0, s1, all;
  emit(&s0, TimePoint::at(Duration::micros(10)), "shard0.ev");
  emit(&s1, TimePoint::at(Duration::micros(5)), "shard1.ev");
  all.append_from(s0);
  all.append_from(s1);
  EXPECT_EQ(all.record_count(), 2u);
  EXPECT_EQ(all.str(), s0.str() + s1.str());
}

// ---------------------------------------------------------------------------
// End-to-end: determinism and the disabled-by-default guarantee.

struct Fixture {
  sim::Simulator sim;
  serverless::Platform platform;
  device::Device ue;
  net::NetworkPath path;
  core::OffloadController controller;

  Fixture()
      : platform(sim, {}),
        ue(device::budget_phone()),
        path(net::make_fixed_path(net::profile_4g())),
        controller(sim, platform, ue, path, {}) {}
};

/// One fully observed end-to-end run; returns the artifacts.
struct Observed {
  std::string trace;
  std::string metrics_csv;
  core::ExecutionReport report;
};

Observed observed_run() {
  Fixture fx;
  JsonlTraceWriter trace;
  MetricsRegistry metrics;
  fx.sim.set_trace_sink(&trace);
  fx.platform.attach_observer(&trace, &metrics);
  fx.controller.attach_observer(&trace, &metrics);
  fx.path.set_trace(&trace, &fx.sim);
  const auto g = app::workloads::ml_batch_training();
  const auto plan =
      fx.controller.prepare(g, partition::MinCutPartitioner{});
  const auto report = fx.controller.execute(plan, g);
  return {trace.str(), metrics.to_csv(), report};
}

TEST(Determinism, IdenticalRunsProduceByteIdenticalArtifacts) {
  const auto first = observed_run();
  const auto second = observed_run();
  EXPECT_GT(first.trace.size(), 0u);
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.metrics_csv, second.metrics_csv);
}

TEST(Determinism, TraceCoversEveryLayer) {
  const auto run = observed_run();
  EXPECT_NE(run.trace.find("\"ev\":\"sim.event.fired\""), std::string::npos);
  EXPECT_NE(run.trace.find("\"ev\":\"faas.invoke\""), std::string::npos);
  EXPECT_NE(run.trace.find("\"ev\":\"faas.cold_start\""), std::string::npos);
  EXPECT_NE(run.trace.find("\"ev\":\"ctl.run.begin\""), std::string::npos);
  EXPECT_NE(run.trace.find("\"ev\":\"ctl.run.end\""), std::string::npos);
  EXPECT_NE(run.metrics_csv.find("serverless.invocations"),
            std::string::npos);
  EXPECT_NE(run.metrics_csv.find("core.runs"), std::string::npos);
}

TEST(DisabledByDefault, UntracedRunRecordsNothingAndBehavesIdentically) {
  // No sink attached: nothing may be recorded anywhere...
  Fixture fx;
  const auto g = app::workloads::ml_batch_training();
  const auto plan =
      fx.controller.prepare(g, partition::MinCutPartitioner{});
  const auto plain = fx.controller.execute(plan, g);

  // ...and attaching one must observe, not perturb: the measured report
  // matches the untraced run bit for bit.
  const auto traced = observed_run();
  EXPECT_EQ(plain.makespan, traced.report.makespan);
  EXPECT_EQ(plain.device_energy, traced.report.device_energy);
  EXPECT_EQ(plain.cloud_cost, traced.report.cloud_cost);
  EXPECT_EQ(plain.remote_invocations, traced.report.remote_invocations);
  EXPECT_EQ(plain.cold_starts, traced.report.cold_starts);
}

TEST(DisabledByDefault, DetachResetsToZeroCost) {
  Fixture fx;
  CountingSink sink;
  fx.sim.set_trace_sink(&sink);
  fx.sim.schedule_after(Duration::millis(1), [] {});
  fx.sim.run();
  EXPECT_GT(sink.count(), 0u);

  const auto before = sink.count();
  fx.sim.set_trace_sink(nullptr);
  fx.sim.schedule_after(Duration::millis(1), [] {});
  fx.sim.run();
  EXPECT_EQ(sink.count(), before);
}

TEST(SimulatorTrace, EmitsScheduledFiredCancelled) {
  sim::Simulator sim;
  JsonlTraceWriter trace;
  sim.set_trace_sink(&trace);
  const auto keep = sim.schedule_after(Duration::millis(1), [] {});
  (void)keep;
  const auto drop = sim.schedule_after(Duration::millis(2), [] {});
  sim.cancel(drop);
  sim.run();
  const auto& s = trace.str();
  EXPECT_NE(s.find("\"ev\":\"sim.event.scheduled\""), std::string::npos);
  EXPECT_NE(s.find("\"ev\":\"sim.event.fired\""), std::string::npos);
  EXPECT_NE(s.find("\"ev\":\"sim.event.cancelled\""), std::string::npos);
}

}  // namespace
}  // namespace ntco::obs
