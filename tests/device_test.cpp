#include "ntco/device/device.hpp"

#include <gtest/gtest.h>

#include "ntco/common/error.hpp"

namespace ntco::device {
namespace {

TEST(Device, ExecTimeFollowsClock) {
  Device d(budget_phone());
  // 1.4 Gcycles at 1.4 GHz = 1 s.
  EXPECT_EQ(d.exec_time(Cycles::mega(1400)), Duration::seconds(1));
}

TEST(Device, FasterDeviceExecutesFaster) {
  Device slow(budget_phone()), fast(flagship_phone());
  const auto work = Cycles::giga(2);
  EXPECT_GT(slow.exec_time(work), fast.exec_time(work));
}

TEST(Device, ExecEnergyIsPowerTimesTime) {
  Device d(budget_phone());
  const auto work = Cycles::mega(1400);  // 1 s on this device
  const auto e = d.exec_energy(work);
  EXPECT_NEAR(e.to_joules(), 1.8, 1e-6);  // 1.8 W * 1 s
}

TEST(Device, RadioAndIdleEnergy) {
  Device d(flagship_phone());
  EXPECT_NEAR(d.tx_energy(Duration::seconds(2)).to_joules(), 2.8, 1e-6);
  EXPECT_NEAR(d.rx_energy(Duration::seconds(1)).to_joules(), 1.0, 1e-6);
  EXPECT_NEAR(d.idle_energy(Duration::seconds(10)).to_joules(), 4.5, 1e-6);
  EXPECT_THROW((void)d.tx_energy(-Duration::seconds(1)), ContractViolation);
}

TEST(Device, OffloadEnergyBreakEven) {
  // The core energy argument: a compute-heavy job saves energy when
  // offloaded, a data-heavy one does not.
  Device d(budget_phone());
  const auto heavy_compute = d.exec_energy(Cycles::giga(10));
  const auto ship_small = d.tx_energy(Duration::seconds(1)) +
                          d.idle_energy(Duration::seconds(2));
  EXPECT_GT(heavy_compute, ship_small);

  const auto light_compute = d.exec_energy(Cycles::mega(50));
  const auto ship_large = d.tx_energy(Duration::seconds(30)) +
                          d.idle_energy(Duration::seconds(5));
  EXPECT_LT(light_compute, ship_large);
}

TEST(Device, BatteryDrainsAndClamps) {
  Device d(iot_node());
  EXPECT_DOUBLE_EQ(d.battery_fraction(), 1.0);
  EXPECT_TRUE(d.drain(Energy::joules(4'500)));
  EXPECT_NEAR(d.battery_fraction(), 0.5, 1e-9);
  EXPECT_FALSE(d.drain(Energy::joules(10'000)));  // exhausted
  EXPECT_EQ(d.battery_remaining(), Energy::zero());
  d.recharge();
  EXPECT_DOUBLE_EQ(d.battery_fraction(), 1.0);
}

TEST(Device, NegativeDrainThrows) {
  Device d(laptop());
  EXPECT_THROW(d.drain(Energy::joules(-1.0)), ContractViolation);
}

TEST(Device, PresetsAreSane) {
  for (const auto& spec :
       {budget_phone(), flagship_phone(), iot_node(), laptop()}) {
    EXPECT_FALSE(spec.cpu.is_zero()) << spec.name;
    EXPECT_GT(spec.cpu_active, spec.idle) << spec.name;
    EXPECT_GT(spec.battery, Energy::zero()) << spec.name;
    EXPECT_GT(spec.radio_tx, Power::zero()) << spec.name;
  }
  EXPECT_LT(budget_phone().cpu, flagship_phone().cpu);
  EXPECT_LT(iot_node().cpu, budget_phone().cpu);
}

}  // namespace
}  // namespace ntco::device
