#include "ntco/cicd/pipeline.hpp"

#include <gtest/gtest.h>

#include "ntco/app/workloads.hpp"
#include "ntco/common/error.hpp"
#include "ntco/net/path.hpp"

namespace ntco::cicd {
namespace {

struct Fixture {
  sim::Simulator sim;
  serverless::Platform platform;
  device::Device ue;
  net::NetworkPath path;
  core::OffloadController controller;

  explicit Fixture(core::ControllerConfig cfg = {})
      : platform(sim, {}),
        ue(device::budget_phone()),
        path(net::make_fixed_path(net::profile_4g())),
        controller(sim, platform, ue, path, cfg) {}
};

core::ControllerConfig latency_objective() {
  core::ControllerConfig cfg;
  cfg.objective = partition::Objective::latency();
  return cfg;
}

TEST(ReleasePipeline, HappyPathPromotesFirstRelease) {
  Fixture fx;
  PipelineConfig cfg;
  cfg.canary_runs = 3;
  cfg.profile_runs = 10;
  ReleasePipeline pipeline(fx.sim, fx.controller, cfg, Rng(1));
  const auto g = app::workloads::photo_backup();
  const partition::MinCutPartitioner mincut;

  const auto report = pipeline.run_release(g, mincut, nullptr);
  EXPECT_TRUE(report.promoted);
  EXPECT_FALSE(report.aborted);
  ASSERT_TRUE(report.plan.has_value());
  EXPECT_TRUE(report.plan->partition.respects_pins(g));
  // All stages present, in order.
  ASSERT_GE(report.stages.size(), 7u);
  EXPECT_EQ(report.stages[0].name, "build");
  EXPECT_EQ(report.stages[1].name, "test");
  EXPECT_EQ(report.stages[2].name, "package");
  EXPECT_EQ(report.stages[3].name, "profile");
  EXPECT_EQ(report.stages[4].name, "partition+deploy");
  EXPECT_EQ(report.stages[5].name, "canary");
  EXPECT_EQ(report.stages.back().name, "promote");
  EXPECT_GT(report.total_duration, Duration::minutes(9));
  EXPECT_GT(report.candidate_objective, 0.0);
  EXPECT_DOUBLE_EQ(report.incumbent_objective, 0.0);
}

TEST(ReleasePipeline, TestFailureAbortsBeforeDeploy) {
  Fixture fx;
  PipelineConfig cfg;
  cfg.test_failure_rate = 1.0;
  ReleasePipeline pipeline(fx.sim, fx.controller, cfg, Rng(2));
  const auto g = app::workloads::photo_backup();
  const auto report =
      pipeline.run_release(g, partition::MinCutPartitioner{}, nullptr);
  EXPECT_TRUE(report.aborted);
  EXPECT_FALSE(report.promoted);
  EXPECT_FALSE(report.plan.has_value());
  EXPECT_EQ(report.stages.back().name, "test");
  EXPECT_FALSE(report.stages.back().ok);
  EXPECT_EQ(fx.platform.function_count(), 0u);  // nothing deployed
}

TEST(ReleasePipeline, CanaryRollsBackRegressingCandidate) {
  // Latency objective: the canary compares measured makespans directly.
  Fixture fx(latency_objective());
  PipelineConfig cfg;
  cfg.canary_runs = 3;
  cfg.profile_runs = 10;
  cfg.regression_tolerance = 0.05;
  ReleasePipeline pipeline(fx.sim, fx.controller, cfg, Rng(3));
  const auto g = app::workloads::ml_batch_training();

  // Incumbent: a good plan from a faithful profile.
  const auto first =
      pipeline.run_release(g, partition::MinCutPartitioner{}, nullptr);
  ASSERT_TRUE(first.promoted);

  // Candidate: built from a profile that under-reports demand 20x, which
  // pushes the partitioner toward keeping heavy work on the phone.
  const auto second = pipeline.run_release(
      g, partition::MinCutPartitioner{}, &*first.plan, /*profile_bias=*/0.05);
  EXPECT_FALSE(second.promoted);
  EXPECT_EQ(second.stages.back().name, "rollback");
  EXPECT_GT(second.candidate_objective,
            second.incumbent_objective * 1.05);
}

TEST(ReleasePipeline, EquivalentCandidatePromotesWithinTolerance) {
  Fixture fx;
  PipelineConfig cfg;
  cfg.canary_runs = 3;
  cfg.profile_runs = 30;
  cfg.regression_tolerance = 0.15;
  ReleasePipeline pipeline(fx.sim, fx.controller, cfg, Rng(4));
  const auto g = app::workloads::nightly_etl();

  const auto first =
      pipeline.run_release(g, partition::MinCutPartitioner{}, nullptr);
  ASSERT_TRUE(first.promoted);
  const auto second = pipeline.run_release(g, partition::MinCutPartitioner{},
                                           &*first.plan);
  EXPECT_TRUE(second.promoted);
}

TEST(ReleasePipeline, StageLookupByName) {
  Fixture fx;
  PipelineConfig cfg;
  cfg.canary_runs = 2;
  cfg.profile_runs = 5;
  ReleasePipeline pipeline(fx.sim, fx.controller, cfg, Rng(5));
  const auto g = app::workloads::photo_backup();
  const auto report =
      pipeline.run_release(g, partition::MinCutPartitioner{}, nullptr);
  ASSERT_NE(report.stage("profile"), nullptr);
  EXPECT_EQ(report.stage("profile")->detail, "5 runs");
  EXPECT_EQ(report.stage("no-such-stage"), nullptr);
}

TEST(ReleasePipeline, InvalidConfigRejected) {
  Fixture fx;
  PipelineConfig cfg;
  cfg.canary_runs = 0;
  EXPECT_THROW(ReleasePipeline(fx.sim, fx.controller, cfg, Rng(6)),
               ConfigError);
  cfg = {};
  cfg.test_failure_rate = 2.0;
  EXPECT_THROW(ReleasePipeline(fx.sim, fx.controller, cfg, Rng(7)),
               ConfigError);
}

TEST(DriftWatcher, TriggersReleaseOnWorkloadShift) {
  DriftWatcher watcher(0.25, 10);
  for (int i = 0; i < 10; ++i)
    EXPECT_FALSE(watcher.observe_run(Cycles::giga(10)));
  bool triggered = false;
  for (int i = 0; i < 15; ++i)
    triggered = watcher.observe_run(Cycles::giga(16));
  EXPECT_TRUE(triggered);
  EXPECT_TRUE(watcher.pending());
  EXPECT_NEAR(watcher.relative_change(), 0.6, 1e-9);
  watcher.acknowledge();
  EXPECT_FALSE(watcher.pending());
  for (int i = 0; i < 10; ++i)
    EXPECT_FALSE(watcher.observe_run(Cycles::giga(16)));
}

TEST(DriftWatcherWithPipeline, RepartitionAfterDriftImprovesObjective) {
  Fixture fx;
  PipelineConfig cfg;
  cfg.canary_runs = 3;
  cfg.profile_runs = 20;
  ReleasePipeline pipeline(fx.sim, fx.controller, cfg, Rng(8));
  const auto original = app::workloads::photo_backup();

  const auto first =
      pipeline.run_release(original, partition::MinCutPartitioner{}, nullptr);
  ASSERT_TRUE(first.promoted);

  // The workload drifts: demand grows 8x (e.g. users switch to RAW photos).
  const auto drifted = original.with_work_scaled(8.0);
  const auto second = pipeline.run_release(
      drifted, partition::MinCutPartitioner{}, &*first.plan);
  ASSERT_TRUE(second.promoted);
  // The re-partitioned plan offloads at least as much as before (heavier
  // compute favours the cloud) and measures no worse than the stale plan.
  EXPECT_GE(second.plan->partition.remote_count(),
            first.plan->partition.remote_count());
  EXPECT_LE(second.candidate_objective,
            second.incumbent_objective * (1.0 + cfg.regression_tolerance));
}

}  // namespace
}  // namespace ntco::cicd
