#include "ntco/common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "ntco/common/error.hpp"

namespace ntco {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
  Rng base(7);
  Rng f1 = base.fork(1);
  Rng f1b = Rng(7).fork(1);
  Rng f2 = base.fork(2);
  EXPECT_EQ(f1.next_u64(), f1b.next_u64());
  EXPECT_NE(Rng(7).fork(1).next_u64(), f2.next_u64());
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(9), b(9);
  (void)a.fork(5);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamIsDeterministic) {
  Rng a = Rng::stream(42, 7);
  Rng b = Rng::stream(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  // Instance form agrees with the static form.
  Rng c = Rng(42).stream(7);
  Rng d = Rng::stream(42, 7);
  EXPECT_EQ(c.next_u64(), d.next_u64());
}

TEST(Rng, StreamShardsArePairwiseDistinct) {
  // 64 shards — the widest fleet a test machine plausibly runs — must
  // produce pairwise-distinct draw sequences from one root seed.
  constexpr std::size_t kShards = 64;
  constexpr std::size_t kDraws = 16;
  std::vector<std::array<std::uint64_t, kDraws>> draws(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    Rng r = Rng::stream(2026, s);
    for (auto& d : draws[s]) d = r.next_u64();
  }
  for (std::size_t i = 0; i < kShards; ++i)
    for (std::size_t j = i + 1; j < kShards; ++j)
      EXPECT_NE(draws[i], draws[j]) << "shards " << i << " and " << j;
}

TEST(Rng, StreamOfStreamDoesNotCollideWithSiblings) {
  // Regression guard for the fleet's seed derivation: fleet::Sweep hands
  // (point p, replica r) the stream Rng::stream(seed, p).stream(r). None
  // of those nested streams may collide with a sibling stream of the
  // root, nor with another (point, replica) pair.
  constexpr std::uint64_t kSeed = 99;
  std::vector<std::uint64_t> first_draws;
  for (std::uint64_t s = 0; s < 32; ++s)
    first_draws.push_back(Rng::stream(kSeed, s).next_u64());
  for (std::uint64_t p = 0; p < 8; ++p)
    for (std::uint64_t r = 0; r < 8; ++r)
      first_draws.push_back(Rng::stream(kSeed, p).stream(r).next_u64());
  std::sort(first_draws.begin(), first_draws.end());
  EXPECT_EQ(std::adjacent_find(first_draws.begin(), first_draws.end()),
            first_draws.end())
      << "two fleet streams share a first draw";
}

TEST(Rng, StreamDiffersFromFork) {
  // stream() must not alias fork(): the fleet reserves stream-space for
  // shards while modules keep deriving consumer substreams with fork().
  Rng base(5);
  EXPECT_NE(base.fork(3).next_u64(), base.stream(3).next_u64());
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBoundsAndCoverage) {
  Rng r(4);
  std::array<int, 4> seen{};
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(0, 3);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 3);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int c : seen) EXPECT_GT(c, 100);
}

TEST(Rng, ExponentialMeanIsClose) {
  Rng r(5);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, NormalMomentsAreClose) {
  Rng r(6);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(sq / n - mean * mean, 4.0, 0.25);
}

TEST(Rng, NormalZeroSigmaIsDegenerate) {
  Rng r(11);
  EXPECT_DOUBLE_EQ(r.normal(3.5, 0.0), 3.5);
}

TEST(Rng, PoissonMeanIsClose) {
  Rng r(8);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.1);
  EXPECT_EQ(r.poisson(0.0), 0u);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(9);
  int heads = 0;
  for (int i = 0; i < 20000; ++i)
    if (r.bernoulli(0.3)) ++heads;
  EXPECT_NEAR(heads / 20000.0, 0.3, 0.02);
}

TEST(Rng, PickCoversAllElements) {
  Rng r(10);
  const std::vector<int> items{1, 2, 3};
  std::array<int, 4> seen{};
  for (int i = 0; i < 300; ++i)
    ++seen[static_cast<std::size_t>(r.pick(std::span<const int>(items)))];
  EXPECT_GT(seen[1], 0);
  EXPECT_GT(seen[2], 0);
  EXPECT_GT(seen[3], 0);
}

TEST(Rng, ContractsRejectInvalidArguments) {
  Rng r(1);
  EXPECT_THROW((void)r.uniform(5.0, 2.0), ContractViolation);
  EXPECT_THROW((void)r.uniform_int(3, 1), ContractViolation);
  EXPECT_THROW((void)r.bernoulli(1.5), ContractViolation);
  EXPECT_THROW((void)r.exponential(0.0), ContractViolation);
  EXPECT_THROW((void)r.normal(0.0, -1.0), ContractViolation);
  const std::vector<int> empty;
  EXPECT_THROW((void)r.pick(std::span<const int>(empty)), ContractViolation);
}

}  // namespace
}  // namespace ntco
