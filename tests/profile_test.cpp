#include "ntco/profile/profiler.hpp"

#include <gtest/gtest.h>

#include "ntco/app/workloads.hpp"
#include "ntco/common/error.hpp"

namespace ntco::profile {
namespace {

TEST(TraceGenerator, NoiseFreeTracesEqualTruth) {
  const auto truth = app::workloads::photo_backup();
  TraceGenerator gen(truth, 0.0, Rng(1));
  const auto t = gen.next();
  ASSERT_EQ(t.components.size(), truth.component_count());
  ASSERT_EQ(t.flows.size(), truth.flow_count());
  for (const auto& o : t.components)
    EXPECT_EQ(o.cycles, truth.component(o.id).work);
  for (const auto& o : t.flows)
    EXPECT_EQ(o.bytes, truth.flow(o.flow).bytes);
}

TEST(TraceGenerator, NoisyTracesAreUnbiasedOnAverage) {
  const auto truth = app::workloads::nightly_etl();
  TraceGenerator gen(truth, 0.3, Rng(2));
  double sum = 0.0;
  const int n = 3000;
  const double t0 = static_cast<double>(truth.component(1).work.value());
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(gen.next().components[1].cycles.value());
  EXPECT_NEAR(sum / n / t0, 1.0, 0.03);  // mean-1 lognormal noise
}

TEST(TraceGenerator, BiasShiftsAllObservations) {
  const auto truth = app::workloads::photo_backup();
  TraceGenerator gen(truth, 0.0, Rng(3), 1.1);
  const auto t = gen.next();
  for (const auto& o : t.components)
    EXPECT_NEAR(static_cast<double>(o.cycles.value()),
                static_cast<double>(truth.component(o.id).work.value()) * 1.1,
                2.0);
}

TEST(TraceGenerator, ScaleModelsDrift) {
  const auto truth = app::workloads::photo_backup();
  TraceGenerator gen(truth, 0.0, Rng(4));
  const auto before = gen.next();
  gen.set_scale(2.0);
  const auto after = gen.next();
  EXPECT_NEAR(static_cast<double>(after.components[1].cycles.value()),
              2.0 * static_cast<double>(before.components[1].cycles.value()),
              2.0);
  EXPECT_THROW(gen.set_scale(0.0), ContractViolation);
}

TEST(DemandProfiler, ConvergesToTruthWithTraces) {
  const auto truth = app::workloads::ml_batch_training();
  TraceGenerator gen(truth, 0.4, Rng(5));
  DemandProfiler few(truth.component_count(), truth.flow_count());
  DemandProfiler many(truth.component_count(), truth.flow_count());
  for (int i = 0; i < 5; ++i) {
    const auto t = gen.next();
    few.ingest(t);
    many.ingest(t);
  }
  for (int i = 0; i < 495; ++i) many.ingest(gen.next());
  EXPECT_LT(many.max_relative_error(truth), few.max_relative_error(truth));
  EXPECT_LT(many.max_relative_error(truth), 0.10);
}

TEST(DemandProfiler, EstimateExposesDispersion) {
  const auto truth = app::workloads::photo_backup();
  TraceGenerator gen(truth, 0.5, Rng(6));
  DemandProfiler prof(truth.component_count(), truth.flow_count());
  for (int i = 0; i < 300; ++i) prof.ingest(gen.next());
  const auto est = prof.component(1);
  EXPECT_EQ(est.samples, 300u);
  EXPECT_NEAR(est.cv, 0.5, 0.1);
  EXPECT_GT(est.p95, est.mean);
}

TEST(DemandProfiler, EstimatedGraphPreservesStructureAndPins) {
  const auto truth = app::workloads::nightly_etl();
  TraceGenerator gen(truth, 0.2, Rng(7));
  DemandProfiler prof(truth.component_count(), truth.flow_count());
  for (int i = 0; i < 100; ++i) prof.ingest(gen.next());
  const auto est = prof.estimated_graph(truth);
  ASSERT_EQ(est.component_count(), truth.component_count());
  ASSERT_EQ(est.flow_count(), truth.flow_count());
  for (app::ComponentId i = 0; i < truth.component_count(); ++i) {
    EXPECT_EQ(est.component(i).pinned_local, truth.component(i).pinned_local);
    EXPECT_EQ(est.component(i).memory, truth.component(i).memory);
  }
  for (std::size_t fi = 0; fi < truth.flow_count(); ++fi) {
    EXPECT_EQ(est.flow(fi).from, truth.flow(fi).from);
    EXPECT_EQ(est.flow(fi).to, truth.flow(fi).to);
  }
  // Conservative estimation never yields smaller demands than the mean.
  const auto cons = prof.estimated_graph(truth, /*conservative=*/true);
  for (app::ComponentId i = 0; i < truth.component_count(); ++i)
    EXPECT_GE(cons.component(i).work, est.component(i).work);
}

TEST(DemandProfiler, QueryBeforeObservationThrows) {
  DemandProfiler prof(3, 2);
  EXPECT_THROW((void)prof.component(0), ContractViolation);
  EXPECT_THROW((void)prof.component(9), ContractViolation);
  EXPECT_THROW((void)prof.flow(0), ContractViolation);
}

TEST(DriftDetector, QuietStreamNeverDrifts) {
  DriftDetector det(0.2, 20);
  Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    const auto v = Cycles::mega(
        static_cast<std::uint64_t>(1000.0 * (1.0 + rng.normal(0.0, 0.05))));
    EXPECT_FALSE(det.observe(v));
  }
  EXPECT_FALSE(det.drifted());
}

TEST(DriftDetector, DetectsSustainedShift) {
  DriftDetector det(0.2, 10);
  for (int i = 0; i < 10; ++i) (void)det.observe(Cycles::mega(1000));
  bool detected = false;
  for (int i = 0; i < 15; ++i) detected = det.observe(Cycles::mega(1500));
  EXPECT_TRUE(detected);
  EXPECT_NEAR(det.relative_change(), 0.5, 1e-9);
}

TEST(DriftDetector, SingleOutlierInWindowIsAbsorbed) {
  DriftDetector det(0.5, 10);
  for (int i = 0; i < 10; ++i) (void)det.observe(Cycles::mega(1000));
  (void)det.observe(Cycles::mega(4000));  // one spike: +30% window mean
  for (int i = 0; i < 9; ++i) (void)det.observe(Cycles::mega(1000));
  EXPECT_FALSE(det.drifted());
}

TEST(DriftDetector, ResetRebaselineClearsDrift) {
  DriftDetector det(0.2, 5);
  for (int i = 0; i < 5; ++i) (void)det.observe(Cycles::mega(1000));
  for (int i = 0; i < 6; ++i) (void)det.observe(Cycles::mega(2000));
  EXPECT_TRUE(det.drifted());
  det.reset_baseline();
  EXPECT_FALSE(det.drifted());
  // New level is now normal.
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(det.observe(Cycles::mega(2000)));
}

TEST(DriftDetector, InvalidConstructionThrows) {
  EXPECT_THROW(DriftDetector(0.0, 5), ContractViolation);
  EXPECT_THROW(DriftDetector(0.1, 0), ContractViolation);
}

}  // namespace
}  // namespace ntco::profile
