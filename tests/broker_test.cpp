#include "ntco/broker/broker.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "ntco/app/workloads.hpp"
#include "ntco/common/contracts.hpp"
#include "ntco/common/rng.hpp"
#include "ntco/fleet/replicator.hpp"
#include "ntco/net/path.hpp"

// Suite names start with "Broker" so tools/ci.sh can rerun exactly these
// (plus the Fleet suites) under ThreadSanitizer (ctest -R '^Fleet|^Broker').

namespace ntco::broker {
namespace {

// ---------------------------------------------------------------- PlanCache

/// A recognisable plan: unit tests only need identity, not deployability.
core::DeploymentPlan plan_with(Duration tag) {
  core::DeploymentPlan p;
  p.predicted.latency = tag;
  return p;
}

DecisionContext ctx_with(std::string workload, double mbps,
                         double battery = 1.0) {
  DecisionContext ctx;
  ctx.workload = std::move(workload);
  ctx.uplink = DataRate::kilobits_per_second(
      static_cast<std::uint64_t>(std::llround(mbps * 1000.0)));
  ctx.rtt = Duration::millis(20);
  ctx.battery = battery;
  ctx.hour = 10;
  return ctx;
}

TEST(BrokerPlanCache, MissThenInsertThenHit) {
  PlanCache cache({});
  const auto ctx = ctx_with("app", 80.0);
  const TimePoint t0 = TimePoint::origin();

  EXPECT_EQ(cache.lookup(ctx, t0), nullptr);
  cache.insert(ctx, plan_with(Duration::seconds(7)), t0);
  const core::DeploymentPlan* p = cache.lookup(ctx, t0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->predicted.latency, Duration::seconds(7));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(BrokerPlanCache, LruEvictionOrder) {
  PlanCacheConfig cfg;
  cfg.capacity = 2;
  PlanCache cache(cfg);
  const TimePoint t0 = TimePoint::origin();
  // Three distinct workloads occupy three distinct keys.
  const auto a = ctx_with("a", 80.0);
  const auto b = ctx_with("b", 80.0);
  const auto c = ctx_with("c", 80.0);

  cache.insert(a, plan_with(Duration::seconds(1)), t0);
  cache.insert(b, plan_with(Duration::seconds(2)), t0);
  // Touch `a`: now `b` is the least recently used.
  ASSERT_NE(cache.lookup(a, t0), nullptr);
  cache.insert(c, plan_with(Duration::seconds(3)), t0);

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.lookup(b, t0), nullptr);  // evicted as LRU
  EXPECT_NE(cache.lookup(a, t0), nullptr);  // survived (recently used)
  EXPECT_NE(cache.lookup(c, t0), nullptr);
}

TEST(BrokerPlanCache, TtlExpiresAtSimulatedTime) {
  PlanCacheConfig cfg;
  cfg.ttl = Duration::hours(1);
  PlanCache cache(cfg);
  const auto ctx = ctx_with("app", 80.0);
  const TimePoint t0 = TimePoint::origin();

  cache.insert(ctx, plan_with(Duration::seconds(1)), t0);
  EXPECT_NE(cache.lookup(ctx, t0 + Duration::minutes(59)), nullptr);
  EXPECT_EQ(cache.lookup(ctx, t0 + Duration::minutes(61)), nullptr);
  EXPECT_EQ(cache.stats().expiries, 1u);
  EXPECT_EQ(cache.size(), 0u);  // expired entries are erased on lookup
}

TEST(BrokerPlanCache, HysteresisReusesNeighbourWithinDrift) {
  PlanCache cache({});  // hysteresis 0.25
  const TimePoint t0 = TimePoint::origin();
  // Planned at 80 Mbps -> bucket round(log2 80) = 6.
  cache.insert(ctx_with("app", 80.0), plan_with(Duration::seconds(1)), t0);

  // 96 Mbps quantizes to neighbouring bucket 7, but the raw drift from the
  // planning context is 20% <= 25%: the plan is still good.
  EXPECT_NE(cache.lookup(ctx_with("app", 96.0), t0), nullptr);
  EXPECT_EQ(cache.stats().hysteresis_hits, 1u);

  // 160 Mbps also probes bucket 6 as a neighbour, but 100% drift is a
  // genuine regime change: replan.
  EXPECT_EQ(cache.lookup(ctx_with("app", 160.0), t0), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(BrokerPlanCache, QuantizeClampsAndWindows) {
  const PlanCacheConfig cfg;  // 4 battery buckets, 6-hour windows
  auto ctx = ctx_with("app", 80.0, /*battery=*/1.0);
  ctx.hour = 23;
  const PlanKey k = quantize(ctx, cfg);
  EXPECT_EQ(k.battery_bucket, 3);  // full charge clamps into the top bucket
  EXPECT_EQ(k.window, 3);          // 23:00 is the last 6-hour window
  ctx.hour = 0;
  ctx.battery = 0.0;
  const PlanKey k2 = quantize(ctx, cfg);
  EXPECT_EQ(k2.battery_bucket, 0);
  EXPECT_EQ(k2.window, 0);
}

TEST(BrokerPlanCache, BatteryHysteresisIsItsOwnKnob) {
  // Regression: within_hysteresis used to judge the *absolute* battery
  // drift against the *relative* bw/rtt knob — at hysteresis=0.05 a 5%
  // bandwidth drift and a 5-percentage-point charge drift were silently
  // conflated. Battery must read battery_hysteresis, nothing else.
  PlanCacheConfig tight_links;
  tight_links.hysteresis = 0.05;          // links barely tolerate drift...
  tight_links.battery_hysteresis = 0.25;  // ...but charge has a wide band
  PlanCache cache(tight_links);
  const TimePoint t0 = TimePoint::origin();
  // Planned at battery 0.50 (bucket 2 of 4); identical link context.
  cache.insert(ctx_with("app", 80.0, /*battery=*/0.50),
               plan_with(Duration::seconds(1)), t0);

  // 0.30 quantizes to neighbouring bucket 1; the raw 0.20 charge drift is
  // within battery_hysteresis. Pre-fix this read the 0.05 link knob and
  // replanned.
  EXPECT_NE(cache.lookup(ctx_with("app", 80.0, /*battery=*/0.30), t0),
            nullptr);
  EXPECT_EQ(cache.stats().hysteresis_hits, 1u);

  // The converse conflation: a *loose* link knob must not excuse a charge
  // drift past the battery band.
  PlanCacheConfig tight_battery;
  tight_battery.hysteresis = 0.50;
  tight_battery.battery_hysteresis = 0.10;
  PlanCache cache2(tight_battery);
  cache2.insert(ctx_with("app", 80.0, /*battery=*/0.50),
                plan_with(Duration::seconds(1)), t0);
  EXPECT_EQ(cache2.lookup(ctx_with("app", 80.0, /*battery=*/0.30), t0),
            nullptr);
  EXPECT_EQ(cache2.stats().misses, 1u);

  // Boundary: a drift of exactly battery_hysteresis still reuses.
  PlanCacheConfig at_edge;
  at_edge.battery_hysteresis = 0.20;
  PlanCache cache3(at_edge);
  cache3.insert(ctx_with("app", 80.0, /*battery=*/0.50),
                plan_with(Duration::seconds(1)), t0);
  EXPECT_NE(cache3.lookup(ctx_with("app", 80.0, /*battery=*/0.30), t0),
            nullptr);
}

TEST(BrokerPlanCache, WindowWidthMustDivideTheDay) {
  // Regression: hours_per_window=5 used to quantize into a ragged final
  // window (window 4 spanning only 20:00-23:59) that skewed hit rates
  // across midnight; the config is now rejected by contract.
  PlanCacheConfig bad;
  bad.hours_per_window = 5;
  EXPECT_THROW(PlanCache{bad}, ContractViolation);
  EXPECT_THROW((void)quantize(ctx_with("app", 80.0), bad),
               ContractViolation);

  // Every divisor of 24 stays valid, and the window count is exact.
  for (const int hpw : {1, 2, 3, 4, 6, 8, 12, 24}) {
    PlanCacheConfig good;
    good.hours_per_window = hpw;
    PlanCache ok(good);
    auto ctx = ctx_with("app", 80.0);
    ctx.hour = 23;
    EXPECT_EQ(quantize(ctx, good).window, 23 / hpw);
  }
}

// --------------------------------------------------------------- Admission

TEST(BrokerAdmission, AdmitsWithinBurstThenDefers) {
  AdmissionConfig cfg;
  cfg.rate_per_second = 1.0;
  cfg.burst = 2.0;
  cfg.min_defer = Duration::seconds(1);
  AdmissionController adm(cfg);
  const TimePoint t0 = TimePoint::origin();
  const TimePoint deadline = t0 + Duration::hours(1);
  const Duration est = Duration::seconds(10);

  EXPECT_EQ(adm.decide(t0, deadline, est).verdict, AdmissionVerdict::Admitted);
  EXPECT_EQ(adm.decide(t0, deadline, est).verdict, AdmissionVerdict::Admitted);
  const auto d = adm.decide(t0, deadline, est);
  EXPECT_EQ(d.verdict, AdmissionVerdict::Deferred);
  EXPECT_GE(d.retry_at, t0 + cfg.min_defer);
  EXPECT_EQ(adm.stats().deferred_outstanding, 1u);

  // Tokens refill with simulated time: two seconds buy two decisions.
  adm.retry_resolved();
  EXPECT_EQ(adm.decide(t0 + Duration::seconds(2), deadline, est).verdict,
            AdmissionVerdict::Admitted);
}

TEST(BrokerAdmission, BacklogSpreadsRetryQuotes) {
  AdmissionConfig cfg;
  cfg.rate_per_second = 1.0;
  cfg.burst = 1.0;
  cfg.min_defer = Duration::zero() + Duration::micros(1);
  AdmissionController adm(cfg);
  const TimePoint t0 = TimePoint::origin();
  const TimePoint deadline = t0 + Duration::hours(1);

  ASSERT_EQ(adm.decide(t0, deadline, Duration::zero()).verdict,
            AdmissionVerdict::Admitted);
  const auto d1 = adm.decide(t0, deadline, Duration::zero());
  const auto d2 = adm.decide(t0, deadline, Duration::zero());
  ASSERT_EQ(d1.verdict, AdmissionVerdict::Deferred);
  ASSERT_EQ(d2.verdict, AdmissionVerdict::Deferred);
  // The second deferral queues behind the first: its quote is later, so
  // the two retries drain at the sustained rate instead of colliding.
  EXPECT_GT(d2.retry_at, d1.retry_at);
}

TEST(BrokerAdmission, CapacityProbeScalesRefillRate) {
  AdmissionConfig cfg;
  cfg.rate_per_second = 1.0;
  cfg.burst = 1.0;
  cfg.min_defer = Duration::millis(1);
  AdmissionController adm(cfg);
  const TimePoint t0 = TimePoint::origin();
  const TimePoint deadline = t0 + Duration::hours(10);

  double capacity = 1.0;
  adm.set_capacity_probe([&] { return capacity; });

  ASSERT_EQ(adm.decide(t0, deadline, Duration::zero()).verdict,
            AdmissionVerdict::Admitted);
  // Half capacity: one second refills only half a token, two seconds a
  // full one.
  capacity = 0.5;
  EXPECT_EQ(adm.decide(t0 + Duration::seconds(1), deadline, Duration::zero())
                .verdict,
            AdmissionVerdict::Deferred);
  adm.retry_resolved();
  EXPECT_EQ(adm.decide(t0 + Duration::seconds(3), deadline, Duration::zero())
                .verdict,
            AdmissionVerdict::Admitted);

  // Zero capacity stalls the refill entirely, but the retry quote stays
  // finite (floored rate, 60-minute cap) instead of dividing by zero.
  capacity = 0.0;
  const auto d =
      adm.decide(t0 + Duration::hours(1), deadline, Duration::zero());
  EXPECT_EQ(d.verdict, AdmissionVerdict::Deferred);
  EXPECT_LE(d.retry_at,
            t0 + Duration::hours(1) + Duration::minutes(60));

  // Clearing the probe restores the configured rate.
  adm.retry_resolved();
  adm.set_capacity_probe(nullptr);
  EXPECT_EQ(adm.decide(t0 + Duration::hours(2), deadline, Duration::zero())
                .verdict,
            AdmissionVerdict::Admitted);
}

TEST(BrokerAdmission, ShedsWhenDeadlineTooTight) {
  AdmissionConfig cfg;
  cfg.rate_per_second = 1.0;
  cfg.burst = 1.0;
  cfg.min_defer = Duration::seconds(30);
  AdmissionController adm(cfg);
  const TimePoint t0 = TimePoint::origin();

  ASSERT_EQ(adm.decide(t0, t0 + Duration::hours(1), Duration::seconds(1))
                .verdict,
            AdmissionVerdict::Admitted);
  // No token left; the wait plus the job itself overshoots the deadline.
  const auto d =
      adm.decide(t0, t0 + Duration::seconds(20), Duration::seconds(1));
  EXPECT_EQ(d.verdict, AdmissionVerdict::Shed);
  EXPECT_EQ(d.reason, ShedReason::DeadlineTooTight);
}

TEST(BrokerAdmission, ShedsWhenQueueFull) {
  AdmissionConfig cfg;
  cfg.rate_per_second = 1.0;
  cfg.burst = 1.0;
  cfg.max_deferred = 1;
  AdmissionController adm(cfg);
  const TimePoint t0 = TimePoint::origin();
  const TimePoint deadline = t0 + Duration::hours(10);

  ASSERT_EQ(adm.decide(t0, deadline, Duration::zero()).verdict,
            AdmissionVerdict::Admitted);
  ASSERT_EQ(adm.decide(t0, deadline, Duration::zero()).verdict,
            AdmissionVerdict::Deferred);
  const auto d = adm.decide(t0, deadline, Duration::zero());
  EXPECT_EQ(d.verdict, AdmissionVerdict::Shed);
  EXPECT_EQ(d.reason, ShedReason::QueueFull);
  EXPECT_EQ(adm.stats().shed, 1u);
}

TEST(BrokerAdmission, QueueFullOutranksDeadlineTooTight) {
  // A request that hits BOTH shed conditions must report QueueFull: a full
  // deferral queue sheds regardless of slack, and blaming the client's
  // deadline would misreport capacity exhaustion. (The old precedence
  // checked the deadline first.)
  AdmissionConfig cfg;
  cfg.rate_per_second = 1.0;
  cfg.burst = 1.0;
  cfg.max_deferred = 1;
  cfg.min_defer = Duration::seconds(30);
  AdmissionController adm(cfg);
  const TimePoint t0 = TimePoint::origin();
  const TimePoint far = t0 + Duration::hours(10);

  ASSERT_EQ(adm.decide(t0, far, Duration::zero()).verdict,
            AdmissionVerdict::Admitted);
  ASSERT_EQ(adm.decide(t0, far, Duration::zero()).verdict,
            AdmissionVerdict::Deferred);
  // Queue now full AND this deadline cannot absorb the 30 s min wait.
  const auto d =
      adm.decide(t0, t0 + Duration::seconds(5), Duration::seconds(1));
  EXPECT_EQ(d.verdict, AdmissionVerdict::Shed);
  EXPECT_EQ(d.reason, ShedReason::QueueFull);
}

TEST(BrokerAdmission, QueueBoundaryFreesExactlyOneSlotOnRetryResolved) {
  AdmissionConfig cfg;
  cfg.rate_per_second = 1.0;
  cfg.burst = 1.0;
  cfg.max_deferred = 2;
  AdmissionController adm(cfg);
  const TimePoint t0 = TimePoint::origin();
  const TimePoint deadline = t0 + Duration::hours(10);

  ASSERT_EQ(adm.decide(t0, deadline, Duration::zero()).verdict,
            AdmissionVerdict::Admitted);
  // Fill the deferral queue to its bound exactly.
  ASSERT_EQ(adm.decide(t0, deadline, Duration::zero()).verdict,
            AdmissionVerdict::Deferred);
  ASSERT_EQ(adm.decide(t0, deadline, Duration::zero()).verdict,
            AdmissionVerdict::Deferred);
  EXPECT_EQ(adm.stats().deferred_outstanding, 2u);
  EXPECT_EQ(adm.decide(t0, deadline, Duration::zero()).reason,
            ShedReason::QueueFull);
  // One retry resolves; exactly one deferral slot reopens.
  adm.retry_resolved();
  EXPECT_EQ(adm.stats().deferred_outstanding, 1u);
  ASSERT_EQ(adm.decide(t0, deadline, Duration::zero()).verdict,
            AdmissionVerdict::Deferred);
  EXPECT_EQ(adm.decide(t0, deadline, Duration::zero()).reason,
            ShedReason::QueueFull);
  EXPECT_EQ(adm.stats().deferred_outstanding, 2u);
  EXPECT_EQ(adm.stats().shed, 2u);
}

TEST(BrokerAdmission, ShedsInfeasibleRequestEvenWithTokenAvailable) {
  // Regression: the est-vs-deadline feasibility check used to run only on
  // the no-token path, so a request with now + est > deadline — already
  // guaranteed to miss — burned a token and dispatched anyway whenever one
  // was available.
  AdmissionConfig cfg;
  cfg.rate_per_second = 1.0;
  cfg.burst = 1.0;
  AdmissionController adm(cfg);
  const TimePoint t0 = TimePoint::origin();

  // Bucket is full, yet the job cannot make its deadline even if admitted
  // this instant: shed up front, loudly.
  const auto d =
      adm.decide(t0, t0 + Duration::seconds(10), Duration::seconds(20));
  EXPECT_EQ(d.verdict, AdmissionVerdict::Shed);
  EXPECT_EQ(d.reason, ShedReason::DeadlineTooTight);
  EXPECT_EQ(adm.stats().shed, 1u);

  // The infeasible request must not have consumed the token: a feasible
  // one right behind it (burst=1) is still admitted.
  EXPECT_EQ(adm.decide(t0, t0 + Duration::hours(1), Duration::seconds(1))
                .verdict,
            AdmissionVerdict::Admitted);
}

/// Fixed-pressure stub: deterministic, so fleet- and artifact-safe.
struct StubPressure final : dataplane::BackpressureSource {
  double p = 0.0;
  [[nodiscard]] double pressure() const override { return p; }
};

TEST(BrokerAdmission, OpenLoopRandomizedInvariants) {
  // An open-loop arrival stream (nobody waits for permission to arrive)
  // hammers three controllers; the invariants must hold at every step:
  //   1. deferred_outstanding tracks defers minus resolved retries exactly
  //      (never underflows, never leaks);
  //   2. quoted retry waits are monotone in ring backpressure — the same
  //      request sequence quotes later retries under pressure 0.8 than
  //      under 0.0;
  //   3. shed-reason precedence: an infeasible-on-arrival request sheds
  //      DeadlineTooTight regardless of queue state; a wait-induced shed
  //      with a full queue reports QueueFull, never the client's deadline.
  AdmissionConfig cfg;
  cfg.rate_per_second = 2.0;
  cfg.burst = 4.0;
  cfg.max_deferred = 4096;  // never binds for the quote-comparison pair
  cfg.min_defer = Duration::seconds(1);
  AdmissionController calm(cfg);
  AdmissionController loaded(cfg);
  StubPressure none;
  StubPressure heavy;
  heavy.p = 0.8;
  calm.set_backpressure_source(&none);
  loaded.set_backpressure_source(&heavy);

  AdmissionConfig small = cfg;
  small.max_deferred = 4;  // the precedence controller's queue binds often
  AdmissionController tight(small);

  Rng rng(31);
  TimePoint now = TimePoint::origin();
  std::uint64_t calm_out = 0;
  std::uint64_t loaded_out = 0;
  std::uint64_t tight_out = 0;
  for (int i = 0; i < 5000; ++i) {
    now = now + Duration::from_seconds(rng.exponential(0.25));
    // One shared draw per step keeps all controllers on identical inputs.
    // Draining at least as fast as the ~0.5/step deferral influx keeps the
    // backlog small, so the pressure-shrunk queue bound of the `loaded`
    // controller never binds and the comparison pair stays in lockstep.
    const std::uint64_t resolve_n =
        static_cast<std::uint64_t>(rng.uniform_int(0, 2));
    const Duration est = Duration::from_seconds(rng.uniform(0.1, 5.0));
    const auto drain = [&](AdmissionController& adm, std::uint64_t& mirror) {
      for (std::uint64_t r = 0; r < resolve_n && mirror > 0; ++r) {
        adm.retry_resolved();
        --mirror;
      }
    };
    drain(calm, calm_out);
    drain(loaded, loaded_out);
    drain(tight, tight_out);

    // The comparison pair sees far deadlines only (no deadline sheds, so
    // both controllers keep identical backlog state by construction).
    const TimePoint far = now + Duration::hours(2);
    const auto dc = calm.decide(now, far, est);
    const auto dl = loaded.decide(now, far, est);
    ASSERT_EQ(dc.verdict, dl.verdict);
    if (dc.verdict == AdmissionVerdict::Deferred) {
      ++calm_out;
      ++loaded_out;
      EXPECT_GE(dc.retry_at, now + cfg.min_defer);
      // Invariant 2: pressure stretches, never shortens, the quote.
      EXPECT_GE(dl.retry_at, dc.retry_at);
    }
    ASSERT_EQ(calm.stats().deferred_outstanding, calm_out);  // invariant 1
    ASSERT_EQ(loaded.stats().deferred_outstanding, loaded_out);

    // The precedence controller sees mixed (sometimes hopeless) deadlines.
    const TimePoint deadline =
        now + Duration::from_seconds(rng.uniform(0.5, 120.0));
    const auto dt = tight.decide(now, deadline, est);
    if (dt.verdict == AdmissionVerdict::Deferred) ++tight_out;
    if (dt.verdict == AdmissionVerdict::Shed) {
      if (now + est > deadline) {
        // Infeasible on arrival: always the client's problem.
        EXPECT_EQ(dt.reason, ShedReason::DeadlineTooTight);
      } else if (tight_out >= small.max_deferred) {
        // Wait-induced shed with a full queue: capacity, not the deadline.
        EXPECT_EQ(dt.reason, ShedReason::QueueFull);
      } else {
        EXPECT_EQ(dt.reason, ShedReason::DeadlineTooTight);
      }
    }
    ASSERT_EQ(tight.stats().deferred_outstanding, tight_out);
  }
  // The stream actually exercised all three paths.
  EXPECT_GT(calm.stats().deferrals, 0u);
  EXPECT_GT(tight.stats().shed, 0u);
  EXPECT_GT(tight.stats().admitted, 0u);
}

// ------------------------------------------------------------------- Batch

TEST(BrokerBatch, FlushesAtTheAlignedInstant) {
  sim::Simulator sim;
  BatchDispatcher d(sim, {});
  const TimePoint at = TimePoint::at(Duration::minutes(10));
  std::vector<Duration> ran_at;
  for (int i = 0; i < 3; ++i)
    d.enqueue("g", at, [&](std::function<void()> done) {
      ran_at.push_back(sim.now().since_origin());
      done();
    });
  EXPECT_EQ(d.open_batches(), 1u);
  sim.run();
  ASSERT_EQ(ran_at.size(), 3u);
  for (const Duration t : ran_at) EXPECT_EQ(t, Duration::minutes(10));
  EXPECT_EQ(d.stats().batches, 1u);
  EXPECT_EQ(d.stats().jobs_dispatched, 3u);
  EXPECT_EQ(d.open_batches(), 0u);
}

TEST(BrokerBatch, SealedBatchKeepsItsFlushInstant) {
  sim::Simulator sim;
  BatchConfig cfg;
  cfg.max_batch = 2;
  BatchDispatcher d(sim, cfg);
  const TimePoint at = TimePoint::at(Duration::minutes(10));
  std::vector<Duration> ran_at;
  for (int i = 0; i < 3; ++i)
    d.enqueue("g", at, [&](std::function<void()> done) {
      ran_at.push_back(sim.now().since_origin());
      done();
    });
  sim.run();
  // The first two sealed the batch, the third re-opened the key — but
  // nothing dispatched before the price-aligned instant.
  ASSERT_EQ(ran_at.size(), 3u);
  for (const Duration t : ran_at) EXPECT_EQ(t, Duration::minutes(10));
  EXPECT_EQ(d.stats().batches, 2u);
  EXPECT_EQ(d.stats().sealed, 1u);
}

TEST(BrokerBatch, LanesChainOnCompletion) {
  sim::Simulator sim;
  BatchConfig cfg;
  cfg.lanes = 1;
  BatchDispatcher d(sim, cfg);
  const TimePoint at = TimePoint::at(Duration::minutes(10));
  std::vector<std::pair<int, Duration>> runs;
  for (int i = 0; i < 3; ++i)
    d.enqueue("g", at, [&, i](std::function<void()> done) {
      runs.emplace_back(i, sim.now().since_origin());
      // Each job takes one simulated second; the lane's successor must not
      // start before it completed.
      sim.schedule_after(Duration::seconds(1),
                         [done = std::move(done)] { done(); });
    });
  sim.run();
  ASSERT_EQ(runs.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(runs[static_cast<std::size_t>(i)].first, i);  // enqueue order
    EXPECT_EQ(runs[static_cast<std::size_t>(i)].second,
              Duration::minutes(10) + Duration::seconds(i));
  }
}

// ------------------------------------------------------------------- Serve

/// End-to-end fixture: a full world plus a broker fronting it.
struct ServeFixture {
  sim::Simulator sim;
  serverless::Platform platform;
  device::Device ue;
  net::NetworkPath path;
  core::OffloadController controller;
  partition::MinCutPartitioner mincut;
  Broker broker;

  explicit ServeFixture(BrokerConfig cfg = {})
      : platform(sim, {}),
        ue(device::budget_phone()),
        path(net::make_fixed_path(net::profile_wifi())),
        controller(sim, platform, ue, path, {}),
        broker(sim, platform, controller, mincut, std::move(cfg)) {}
};

TEST(BrokerServe, CompletesAndCachesAcrossUsers) {
  ServeFixture fx;
  const auto g = app::workloads::photo_backup();
  std::vector<ServeOutcome> outcomes;
  ServeRequest req;
  req.app = &g;
  fx.broker.serve(req, [&](const ServeOutcome& o) { outcomes.push_back(o); });
  fx.broker.serve(req, [&](const ServeOutcome& o) { outcomes.push_back(o); });
  fx.sim.run();

  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& o : outcomes) {
    EXPECT_EQ(o.status, ServeStatus::Completed);
    EXPECT_GT(o.finished, o.released);
    EXPECT_FALSE(o.report.failed);
  }
  // Identical context: one request planned (and paid for it), the other
  // hit the cache at hit_cost. Outcome order is not request order — the
  // hit's decision is milliseconds shorter, so it can finish first.
  const BrokerConfig& cfg = fx.broker.config();
  const Duration miss_cost =
      cfg.plan_cost_base +
      cfg.plan_cost_per_component * static_cast<double>(g.component_count());
  ASSERT_NE(outcomes[0].cache_hit, outcomes[1].cache_hit);
  const ServeOutcome& hit = outcomes[0].cache_hit ? outcomes[0] : outcomes[1];
  const ServeOutcome& miss = outcomes[0].cache_hit ? outcomes[1] : outcomes[0];
  EXPECT_EQ(miss.decision_latency, miss_cost);
  EXPECT_EQ(hit.decision_latency, cfg.hit_cost);
  EXPECT_EQ(fx.broker.stats().completed, 2u);
  EXPECT_EQ(fx.broker.cache().stats().hits, 1u);
}

TEST(BrokerServe, NoCacheModeAlwaysReplans) {
  BrokerConfig cfg;
  cfg.cache_enabled = false;
  cfg.batching_enabled = false;
  cfg.defer.policy = sched::Policy::Immediate;
  ServeFixture fx(cfg);
  const auto g = app::workloads::photo_backup();
  std::vector<ServeOutcome> outcomes;
  ServeRequest req;
  req.app = &g;
  fx.broker.serve(req, [&](const ServeOutcome& o) { outcomes.push_back(o); });
  fx.broker.serve(req, [&](const ServeOutcome& o) { outcomes.push_back(o); });
  fx.sim.run();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0].cache_hit);
  EXPECT_FALSE(outcomes[1].cache_hit);
  EXPECT_EQ(fx.broker.cache().stats().hits + fx.broker.cache().stats().misses,
            0u);
}

TEST(BrokerServe, ShedOutcomeIsDelivered) {
  BrokerConfig cfg;
  cfg.admission.rate_per_second = 1.0;
  cfg.admission.burst = 1.0;
  cfg.admission.min_defer = Duration::minutes(5);
  ServeFixture fx(cfg);
  const auto g = app::workloads::photo_backup();
  std::vector<ServeOutcome> outcomes;
  ServeRequest req;
  req.app = &g;
  fx.broker.serve(req, [&](const ServeOutcome& o) { outcomes.push_back(o); });
  // Second request: no token left, and minutes of slack cannot absorb the
  // five-minute deferral floor.
  ServeRequest tight = req;
  tight.slack = Duration::minutes(2);
  fx.broker.serve(tight, [&](const ServeOutcome& o) { outcomes.push_back(o); });
  fx.sim.run();

  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].status, ServeStatus::Shed);  // shed fires first
  EXPECT_EQ(outcomes[0].shed_reason, ShedReason::DeadlineTooTight);
  EXPECT_EQ(outcomes[1].status, ServeStatus::Completed);
  EXPECT_EQ(fx.broker.stats().shed, 1u);
}

// -------------------------------------------------------------- Two-stage

BrokerConfig two_stage_cfg() {
  BrokerConfig cfg;
  cfg.two_stage_enabled = true;
  cfg.batching_enabled = false;
  cfg.defer.policy = sched::Policy::Immediate;
  return cfg;
}

TEST(BrokerTwoStage, RequiresTheCache) {
  // The cache is the stage-1 lookup and the stage-2 publication point; a
  // two-stage broker without it would resolve into the void.
  BrokerConfig cfg = two_stage_cfg();
  cfg.cache_enabled = false;
  EXPECT_THROW({ ServeFixture fx(cfg); }, ContractViolation);
}

TEST(BrokerTwoStage, MissServedByHeuristicThenExactPublishes) {
  ServeFixture fx(two_stage_cfg());
  const auto g = app::workloads::photo_backup();
  std::vector<ServeOutcome> outcomes;
  ServeRequest req;
  req.app = &g;
  fx.broker.serve(req, [&](const ServeOutcome& o) { outcomes.push_back(o); });
  fx.sim.run();

  // Stage 1: the miss was answered immediately by the heuristic at its
  // (much cheaper) decision cost — no multi-ms plan on the serving path.
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].status, ServeStatus::Completed);
  EXPECT_TRUE(outcomes[0].heuristic_serve);
  EXPECT_FALSE(outcomes[0].cache_hit);
  EXPECT_EQ(outcomes[0].decision_latency, fx.broker.config().heuristic_cost);
  EXPECT_EQ(fx.broker.twostage().fast_serves, 1u);

  // Stage 2 resolved in the background and published the *exact* plan.
  EXPECT_EQ(fx.broker.twostage().resolves, 1u);
  EXPECT_LE(fx.broker.twostage().agreements, fx.broker.twostage().resolves);
  EXPECT_EQ(fx.broker.cache().size(), 1u);

  // The next request in the bucket gets the published exact plan: a cache
  // hit, not another heuristic serve.
  fx.broker.serve(req, [&](const ServeOutcome& o) { outcomes.push_back(o); });
  fx.sim.run();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[1].cache_hit);
  EXPECT_FALSE(outcomes[1].heuristic_serve);
  EXPECT_EQ(outcomes[1].decision_latency, fx.broker.config().hit_cost);
  EXPECT_EQ(fx.broker.twostage().fast_serves, 1u);  // no second fast serve
}

TEST(BrokerTwoStage, SameBucketBurstResolvesOnce) {
  ServeFixture fx(two_stage_cfg());
  const auto g = app::workloads::photo_backup();
  std::uint64_t served = 0;
  ServeRequest req;
  req.app = &g;
  // A burst of identical-context misses lands before the exact solve can
  // publish: every one is fast-served, but only ONE solver run is in
  // flight for the bucket — a churn burst must not become a solver storm.
  for (int i = 0; i < 3; ++i)
    fx.broker.serve(req, [&](const ServeOutcome& o) {
      if (o.status == ServeStatus::Completed && o.heuristic_serve) ++served;
    });
  fx.sim.run();

  EXPECT_EQ(served, 3u);
  EXPECT_EQ(fx.broker.twostage().fast_serves, 3u);
  EXPECT_EQ(fx.broker.twostage().resolves, 1u);
  EXPECT_EQ(fx.broker.cache().stats().misses, 3u);
}

TEST(BrokerTwoStage, BackpressureStretchesResolveLatency) {
  // Saturated rings delay refinement (stage 2), never the fast answer:
  // under pressure p the resolve lands at solve_cost * (1 + p).
  const auto g = app::workloads::photo_backup();
  const BrokerConfig probe_cfg = two_stage_cfg();
  const Duration solve =
      probe_cfg.plan_cost_base +
      probe_cfg.plan_cost_per_component *
          static_cast<double>(g.component_count());

  for (const double p : {0.0, 1.0}) {
    ServeFixture fx(two_stage_cfg());
    StubPressure src;
    src.p = p;
    fx.broker.set_backpressure_source(&src);
    ServeRequest req;
    req.app = &g;
    fx.broker.serve(req);
    // Probe between 1x and 2x the solve cost: the unpressured resolve has
    // landed by then, the fully pressured one (2x) has not.
    std::uint64_t resolves_at_probe = 0;
    fx.sim.schedule_at(TimePoint::origin() + solve * 1.5, [&] {
      resolves_at_probe = fx.broker.twostage().resolves;
    });
    fx.sim.run();
    EXPECT_EQ(resolves_at_probe, p == 0.0 ? 1u : 0u);
    EXPECT_EQ(fx.broker.twostage().resolves, 1u);  // it does land eventually
  }
}

// ------------------------------------------------------------ Determinism

/// A miniature F12 shard: one broker serving a small random population.
struct FleetOut {
  obs::MetricsRegistry metrics;
  obs::JsonlTraceWriter trace;
};

FleetOut run_fleet(std::size_t threads) {
  fleet::Replicator rep(99, threads);
  return rep.reduce(
      8, FleetOut{},
      [](fleet::ShardContext& ctx) {
        FleetOut out;
        ServeFixture fx;
        fx.broker.attach_observer(&out.trace, &out.metrics);
        const auto graphs = app::workloads::all();
        for (int u = 0; u < 24; ++u) {
          const auto wl = static_cast<std::size_t>(
              ctx.rng.uniform_int(0, static_cast<std::int64_t>(graphs.size()) - 1));
          const double bw = std::exp2(ctx.rng.uniform(-2.0, 2.0));
          const double batt = ctx.rng.uniform(0.05, 1.0);
          const auto at = Duration::seconds(ctx.rng.uniform_int(0, 60));
          fx.sim.schedule_at(TimePoint::at(at), [&fx, &graphs, wl, bw, batt] {
            ServeRequest req;
            req.app = &graphs[wl];
            req.battery = batt;
            req.bandwidth_scale = bw;
            fx.broker.serve(req);
          });
        }
        fx.sim.run();
        return out;
      },
      [](FleetOut& acc, FleetOut&& shard, std::size_t) {
        acc.metrics.merge_from(shard.metrics);
        acc.trace.append_from(shard.trace);
      });
}

TEST(BrokerDeterminism, FleetMergeByteIdenticalAcrossThreads) {
  const FleetOut one = run_fleet(1);
  const FleetOut eight = run_fleet(8);
  EXPECT_FALSE(one.trace.str().empty());
  EXPECT_EQ(one.metrics.to_csv(), eight.metrics.to_csv());
  EXPECT_EQ(one.trace.str(), eight.trace.str());
}

}  // namespace
}  // namespace ntco::broker
