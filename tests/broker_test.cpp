#include "ntco/broker/broker.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "ntco/app/workloads.hpp"
#include "ntco/fleet/replicator.hpp"
#include "ntco/net/path.hpp"

// Suite names start with "Broker" so tools/ci.sh can rerun exactly these
// (plus the Fleet suites) under ThreadSanitizer (ctest -R '^Fleet|^Broker').

namespace ntco::broker {
namespace {

// ---------------------------------------------------------------- PlanCache

/// A recognisable plan: unit tests only need identity, not deployability.
core::DeploymentPlan plan_with(Duration tag) {
  core::DeploymentPlan p;
  p.predicted.latency = tag;
  return p;
}

DecisionContext ctx_with(std::string workload, double mbps,
                         double battery = 1.0) {
  DecisionContext ctx;
  ctx.workload = std::move(workload);
  ctx.uplink = DataRate::kilobits_per_second(
      static_cast<std::uint64_t>(std::llround(mbps * 1000.0)));
  ctx.rtt = Duration::millis(20);
  ctx.battery = battery;
  ctx.hour = 10;
  return ctx;
}

TEST(BrokerPlanCache, MissThenInsertThenHit) {
  PlanCache cache({});
  const auto ctx = ctx_with("app", 80.0);
  const TimePoint t0 = TimePoint::origin();

  EXPECT_EQ(cache.lookup(ctx, t0), nullptr);
  cache.insert(ctx, plan_with(Duration::seconds(7)), t0);
  const core::DeploymentPlan* p = cache.lookup(ctx, t0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->predicted.latency, Duration::seconds(7));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(BrokerPlanCache, LruEvictionOrder) {
  PlanCacheConfig cfg;
  cfg.capacity = 2;
  PlanCache cache(cfg);
  const TimePoint t0 = TimePoint::origin();
  // Three distinct workloads occupy three distinct keys.
  const auto a = ctx_with("a", 80.0);
  const auto b = ctx_with("b", 80.0);
  const auto c = ctx_with("c", 80.0);

  cache.insert(a, plan_with(Duration::seconds(1)), t0);
  cache.insert(b, plan_with(Duration::seconds(2)), t0);
  // Touch `a`: now `b` is the least recently used.
  ASSERT_NE(cache.lookup(a, t0), nullptr);
  cache.insert(c, plan_with(Duration::seconds(3)), t0);

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.lookup(b, t0), nullptr);  // evicted as LRU
  EXPECT_NE(cache.lookup(a, t0), nullptr);  // survived (recently used)
  EXPECT_NE(cache.lookup(c, t0), nullptr);
}

TEST(BrokerPlanCache, TtlExpiresAtSimulatedTime) {
  PlanCacheConfig cfg;
  cfg.ttl = Duration::hours(1);
  PlanCache cache(cfg);
  const auto ctx = ctx_with("app", 80.0);
  const TimePoint t0 = TimePoint::origin();

  cache.insert(ctx, plan_with(Duration::seconds(1)), t0);
  EXPECT_NE(cache.lookup(ctx, t0 + Duration::minutes(59)), nullptr);
  EXPECT_EQ(cache.lookup(ctx, t0 + Duration::minutes(61)), nullptr);
  EXPECT_EQ(cache.stats().expiries, 1u);
  EXPECT_EQ(cache.size(), 0u);  // expired entries are erased on lookup
}

TEST(BrokerPlanCache, HysteresisReusesNeighbourWithinDrift) {
  PlanCache cache({});  // hysteresis 0.25
  const TimePoint t0 = TimePoint::origin();
  // Planned at 80 Mbps -> bucket round(log2 80) = 6.
  cache.insert(ctx_with("app", 80.0), plan_with(Duration::seconds(1)), t0);

  // 96 Mbps quantizes to neighbouring bucket 7, but the raw drift from the
  // planning context is 20% <= 25%: the plan is still good.
  EXPECT_NE(cache.lookup(ctx_with("app", 96.0), t0), nullptr);
  EXPECT_EQ(cache.stats().hysteresis_hits, 1u);

  // 160 Mbps also probes bucket 6 as a neighbour, but 100% drift is a
  // genuine regime change: replan.
  EXPECT_EQ(cache.lookup(ctx_with("app", 160.0), t0), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(BrokerPlanCache, QuantizeClampsAndWindows) {
  const PlanCacheConfig cfg;  // 4 battery buckets, 6-hour windows
  auto ctx = ctx_with("app", 80.0, /*battery=*/1.0);
  ctx.hour = 23;
  const PlanKey k = quantize(ctx, cfg);
  EXPECT_EQ(k.battery_bucket, 3);  // full charge clamps into the top bucket
  EXPECT_EQ(k.window, 3);          // 23:00 is the last 6-hour window
  ctx.hour = 0;
  ctx.battery = 0.0;
  const PlanKey k2 = quantize(ctx, cfg);
  EXPECT_EQ(k2.battery_bucket, 0);
  EXPECT_EQ(k2.window, 0);
}

// --------------------------------------------------------------- Admission

TEST(BrokerAdmission, AdmitsWithinBurstThenDefers) {
  AdmissionConfig cfg;
  cfg.rate_per_second = 1.0;
  cfg.burst = 2.0;
  cfg.min_defer = Duration::seconds(1);
  AdmissionController adm(cfg);
  const TimePoint t0 = TimePoint::origin();
  const TimePoint deadline = t0 + Duration::hours(1);
  const Duration est = Duration::seconds(10);

  EXPECT_EQ(adm.decide(t0, deadline, est).verdict, AdmissionVerdict::Admitted);
  EXPECT_EQ(adm.decide(t0, deadline, est).verdict, AdmissionVerdict::Admitted);
  const auto d = adm.decide(t0, deadline, est);
  EXPECT_EQ(d.verdict, AdmissionVerdict::Deferred);
  EXPECT_GE(d.retry_at, t0 + cfg.min_defer);
  EXPECT_EQ(adm.stats().deferred_outstanding, 1u);

  // Tokens refill with simulated time: two seconds buy two decisions.
  adm.retry_resolved();
  EXPECT_EQ(adm.decide(t0 + Duration::seconds(2), deadline, est).verdict,
            AdmissionVerdict::Admitted);
}

TEST(BrokerAdmission, BacklogSpreadsRetryQuotes) {
  AdmissionConfig cfg;
  cfg.rate_per_second = 1.0;
  cfg.burst = 1.0;
  cfg.min_defer = Duration::zero() + Duration::micros(1);
  AdmissionController adm(cfg);
  const TimePoint t0 = TimePoint::origin();
  const TimePoint deadline = t0 + Duration::hours(1);

  ASSERT_EQ(adm.decide(t0, deadline, Duration::zero()).verdict,
            AdmissionVerdict::Admitted);
  const auto d1 = adm.decide(t0, deadline, Duration::zero());
  const auto d2 = adm.decide(t0, deadline, Duration::zero());
  ASSERT_EQ(d1.verdict, AdmissionVerdict::Deferred);
  ASSERT_EQ(d2.verdict, AdmissionVerdict::Deferred);
  // The second deferral queues behind the first: its quote is later, so
  // the two retries drain at the sustained rate instead of colliding.
  EXPECT_GT(d2.retry_at, d1.retry_at);
}

TEST(BrokerAdmission, CapacityProbeScalesRefillRate) {
  AdmissionConfig cfg;
  cfg.rate_per_second = 1.0;
  cfg.burst = 1.0;
  cfg.min_defer = Duration::millis(1);
  AdmissionController adm(cfg);
  const TimePoint t0 = TimePoint::origin();
  const TimePoint deadline = t0 + Duration::hours(10);

  double capacity = 1.0;
  adm.set_capacity_probe([&] { return capacity; });

  ASSERT_EQ(adm.decide(t0, deadline, Duration::zero()).verdict,
            AdmissionVerdict::Admitted);
  // Half capacity: one second refills only half a token, two seconds a
  // full one.
  capacity = 0.5;
  EXPECT_EQ(adm.decide(t0 + Duration::seconds(1), deadline, Duration::zero())
                .verdict,
            AdmissionVerdict::Deferred);
  adm.retry_resolved();
  EXPECT_EQ(adm.decide(t0 + Duration::seconds(3), deadline, Duration::zero())
                .verdict,
            AdmissionVerdict::Admitted);

  // Zero capacity stalls the refill entirely, but the retry quote stays
  // finite (floored rate, 60-minute cap) instead of dividing by zero.
  capacity = 0.0;
  const auto d =
      adm.decide(t0 + Duration::hours(1), deadline, Duration::zero());
  EXPECT_EQ(d.verdict, AdmissionVerdict::Deferred);
  EXPECT_LE(d.retry_at,
            t0 + Duration::hours(1) + Duration::minutes(60));

  // Clearing the probe restores the configured rate.
  adm.retry_resolved();
  adm.set_capacity_probe(nullptr);
  EXPECT_EQ(adm.decide(t0 + Duration::hours(2), deadline, Duration::zero())
                .verdict,
            AdmissionVerdict::Admitted);
}

TEST(BrokerAdmission, ShedsWhenDeadlineTooTight) {
  AdmissionConfig cfg;
  cfg.rate_per_second = 1.0;
  cfg.burst = 1.0;
  cfg.min_defer = Duration::seconds(30);
  AdmissionController adm(cfg);
  const TimePoint t0 = TimePoint::origin();

  ASSERT_EQ(adm.decide(t0, t0 + Duration::hours(1), Duration::seconds(1))
                .verdict,
            AdmissionVerdict::Admitted);
  // No token left; the wait plus the job itself overshoots the deadline.
  const auto d =
      adm.decide(t0, t0 + Duration::seconds(20), Duration::seconds(1));
  EXPECT_EQ(d.verdict, AdmissionVerdict::Shed);
  EXPECT_EQ(d.reason, ShedReason::DeadlineTooTight);
}

TEST(BrokerAdmission, ShedsWhenQueueFull) {
  AdmissionConfig cfg;
  cfg.rate_per_second = 1.0;
  cfg.burst = 1.0;
  cfg.max_deferred = 1;
  AdmissionController adm(cfg);
  const TimePoint t0 = TimePoint::origin();
  const TimePoint deadline = t0 + Duration::hours(10);

  ASSERT_EQ(adm.decide(t0, deadline, Duration::zero()).verdict,
            AdmissionVerdict::Admitted);
  ASSERT_EQ(adm.decide(t0, deadline, Duration::zero()).verdict,
            AdmissionVerdict::Deferred);
  const auto d = adm.decide(t0, deadline, Duration::zero());
  EXPECT_EQ(d.verdict, AdmissionVerdict::Shed);
  EXPECT_EQ(d.reason, ShedReason::QueueFull);
  EXPECT_EQ(adm.stats().shed, 1u);
}

TEST(BrokerAdmission, QueueFullOutranksDeadlineTooTight) {
  // A request that hits BOTH shed conditions must report QueueFull: a full
  // deferral queue sheds regardless of slack, and blaming the client's
  // deadline would misreport capacity exhaustion. (The old precedence
  // checked the deadline first.)
  AdmissionConfig cfg;
  cfg.rate_per_second = 1.0;
  cfg.burst = 1.0;
  cfg.max_deferred = 1;
  cfg.min_defer = Duration::seconds(30);
  AdmissionController adm(cfg);
  const TimePoint t0 = TimePoint::origin();
  const TimePoint far = t0 + Duration::hours(10);

  ASSERT_EQ(adm.decide(t0, far, Duration::zero()).verdict,
            AdmissionVerdict::Admitted);
  ASSERT_EQ(adm.decide(t0, far, Duration::zero()).verdict,
            AdmissionVerdict::Deferred);
  // Queue now full AND this deadline cannot absorb the 30 s min wait.
  const auto d =
      adm.decide(t0, t0 + Duration::seconds(5), Duration::seconds(1));
  EXPECT_EQ(d.verdict, AdmissionVerdict::Shed);
  EXPECT_EQ(d.reason, ShedReason::QueueFull);
}

TEST(BrokerAdmission, QueueBoundaryFreesExactlyOneSlotOnRetryResolved) {
  AdmissionConfig cfg;
  cfg.rate_per_second = 1.0;
  cfg.burst = 1.0;
  cfg.max_deferred = 2;
  AdmissionController adm(cfg);
  const TimePoint t0 = TimePoint::origin();
  const TimePoint deadline = t0 + Duration::hours(10);

  ASSERT_EQ(adm.decide(t0, deadline, Duration::zero()).verdict,
            AdmissionVerdict::Admitted);
  // Fill the deferral queue to its bound exactly.
  ASSERT_EQ(adm.decide(t0, deadline, Duration::zero()).verdict,
            AdmissionVerdict::Deferred);
  ASSERT_EQ(adm.decide(t0, deadline, Duration::zero()).verdict,
            AdmissionVerdict::Deferred);
  EXPECT_EQ(adm.stats().deferred_outstanding, 2u);
  EXPECT_EQ(adm.decide(t0, deadline, Duration::zero()).reason,
            ShedReason::QueueFull);
  // One retry resolves; exactly one deferral slot reopens.
  adm.retry_resolved();
  EXPECT_EQ(adm.stats().deferred_outstanding, 1u);
  ASSERT_EQ(adm.decide(t0, deadline, Duration::zero()).verdict,
            AdmissionVerdict::Deferred);
  EXPECT_EQ(adm.decide(t0, deadline, Duration::zero()).reason,
            ShedReason::QueueFull);
  EXPECT_EQ(adm.stats().deferred_outstanding, 2u);
  EXPECT_EQ(adm.stats().shed, 2u);
}

// ------------------------------------------------------------------- Batch

TEST(BrokerBatch, FlushesAtTheAlignedInstant) {
  sim::Simulator sim;
  BatchDispatcher d(sim, {});
  const TimePoint at = TimePoint::at(Duration::minutes(10));
  std::vector<Duration> ran_at;
  for (int i = 0; i < 3; ++i)
    d.enqueue("g", at, [&](std::function<void()> done) {
      ran_at.push_back(sim.now().since_origin());
      done();
    });
  EXPECT_EQ(d.open_batches(), 1u);
  sim.run();
  ASSERT_EQ(ran_at.size(), 3u);
  for (const Duration t : ran_at) EXPECT_EQ(t, Duration::minutes(10));
  EXPECT_EQ(d.stats().batches, 1u);
  EXPECT_EQ(d.stats().jobs_dispatched, 3u);
  EXPECT_EQ(d.open_batches(), 0u);
}

TEST(BrokerBatch, SealedBatchKeepsItsFlushInstant) {
  sim::Simulator sim;
  BatchConfig cfg;
  cfg.max_batch = 2;
  BatchDispatcher d(sim, cfg);
  const TimePoint at = TimePoint::at(Duration::minutes(10));
  std::vector<Duration> ran_at;
  for (int i = 0; i < 3; ++i)
    d.enqueue("g", at, [&](std::function<void()> done) {
      ran_at.push_back(sim.now().since_origin());
      done();
    });
  sim.run();
  // The first two sealed the batch, the third re-opened the key — but
  // nothing dispatched before the price-aligned instant.
  ASSERT_EQ(ran_at.size(), 3u);
  for (const Duration t : ran_at) EXPECT_EQ(t, Duration::minutes(10));
  EXPECT_EQ(d.stats().batches, 2u);
  EXPECT_EQ(d.stats().sealed, 1u);
}

TEST(BrokerBatch, LanesChainOnCompletion) {
  sim::Simulator sim;
  BatchConfig cfg;
  cfg.lanes = 1;
  BatchDispatcher d(sim, cfg);
  const TimePoint at = TimePoint::at(Duration::minutes(10));
  std::vector<std::pair<int, Duration>> runs;
  for (int i = 0; i < 3; ++i)
    d.enqueue("g", at, [&, i](std::function<void()> done) {
      runs.emplace_back(i, sim.now().since_origin());
      // Each job takes one simulated second; the lane's successor must not
      // start before it completed.
      sim.schedule_after(Duration::seconds(1),
                         [done = std::move(done)] { done(); });
    });
  sim.run();
  ASSERT_EQ(runs.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(runs[static_cast<std::size_t>(i)].first, i);  // enqueue order
    EXPECT_EQ(runs[static_cast<std::size_t>(i)].second,
              Duration::minutes(10) + Duration::seconds(i));
  }
}

// ------------------------------------------------------------------- Serve

/// End-to-end fixture: a full world plus a broker fronting it.
struct ServeFixture {
  sim::Simulator sim;
  serverless::Platform platform;
  device::Device ue;
  net::NetworkPath path;
  core::OffloadController controller;
  partition::MinCutPartitioner mincut;
  Broker broker;

  explicit ServeFixture(BrokerConfig cfg = {})
      : platform(sim, {}),
        ue(device::budget_phone()),
        path(net::make_fixed_path(net::profile_wifi())),
        controller(sim, platform, ue, path, {}),
        broker(sim, platform, controller, mincut, std::move(cfg)) {}
};

TEST(BrokerServe, CompletesAndCachesAcrossUsers) {
  ServeFixture fx;
  const auto g = app::workloads::photo_backup();
  std::vector<ServeOutcome> outcomes;
  ServeRequest req;
  req.app = &g;
  fx.broker.serve(req, [&](const ServeOutcome& o) { outcomes.push_back(o); });
  fx.broker.serve(req, [&](const ServeOutcome& o) { outcomes.push_back(o); });
  fx.sim.run();

  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& o : outcomes) {
    EXPECT_EQ(o.status, ServeStatus::Completed);
    EXPECT_GT(o.finished, o.released);
    EXPECT_FALSE(o.report.failed);
  }
  // Identical context: one request planned (and paid for it), the other
  // hit the cache at hit_cost. Outcome order is not request order — the
  // hit's decision is milliseconds shorter, so it can finish first.
  const BrokerConfig& cfg = fx.broker.config();
  const Duration miss_cost =
      cfg.plan_cost_base +
      cfg.plan_cost_per_component * static_cast<double>(g.component_count());
  ASSERT_NE(outcomes[0].cache_hit, outcomes[1].cache_hit);
  const ServeOutcome& hit = outcomes[0].cache_hit ? outcomes[0] : outcomes[1];
  const ServeOutcome& miss = outcomes[0].cache_hit ? outcomes[1] : outcomes[0];
  EXPECT_EQ(miss.decision_latency, miss_cost);
  EXPECT_EQ(hit.decision_latency, cfg.hit_cost);
  EXPECT_EQ(fx.broker.stats().completed, 2u);
  EXPECT_EQ(fx.broker.cache().stats().hits, 1u);
}

TEST(BrokerServe, NoCacheModeAlwaysReplans) {
  BrokerConfig cfg;
  cfg.cache_enabled = false;
  cfg.batching_enabled = false;
  cfg.defer.policy = sched::Policy::Immediate;
  ServeFixture fx(cfg);
  const auto g = app::workloads::photo_backup();
  std::vector<ServeOutcome> outcomes;
  ServeRequest req;
  req.app = &g;
  fx.broker.serve(req, [&](const ServeOutcome& o) { outcomes.push_back(o); });
  fx.broker.serve(req, [&](const ServeOutcome& o) { outcomes.push_back(o); });
  fx.sim.run();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0].cache_hit);
  EXPECT_FALSE(outcomes[1].cache_hit);
  EXPECT_EQ(fx.broker.cache().stats().hits + fx.broker.cache().stats().misses,
            0u);
}

TEST(BrokerServe, ShedOutcomeIsDelivered) {
  BrokerConfig cfg;
  cfg.admission.rate_per_second = 1.0;
  cfg.admission.burst = 1.0;
  cfg.admission.min_defer = Duration::minutes(5);
  ServeFixture fx(cfg);
  const auto g = app::workloads::photo_backup();
  std::vector<ServeOutcome> outcomes;
  ServeRequest req;
  req.app = &g;
  fx.broker.serve(req, [&](const ServeOutcome& o) { outcomes.push_back(o); });
  // Second request: no token left, and minutes of slack cannot absorb the
  // five-minute deferral floor.
  ServeRequest tight = req;
  tight.slack = Duration::minutes(2);
  fx.broker.serve(tight, [&](const ServeOutcome& o) { outcomes.push_back(o); });
  fx.sim.run();

  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].status, ServeStatus::Shed);  // shed fires first
  EXPECT_EQ(outcomes[0].shed_reason, ShedReason::DeadlineTooTight);
  EXPECT_EQ(outcomes[1].status, ServeStatus::Completed);
  EXPECT_EQ(fx.broker.stats().shed, 1u);
}

// ------------------------------------------------------------ Determinism

/// A miniature F12 shard: one broker serving a small random population.
struct FleetOut {
  obs::MetricsRegistry metrics;
  obs::JsonlTraceWriter trace;
};

FleetOut run_fleet(std::size_t threads) {
  fleet::Replicator rep(99, threads);
  return rep.reduce(
      8, FleetOut{},
      [](fleet::ShardContext& ctx) {
        FleetOut out;
        ServeFixture fx;
        fx.broker.attach_observer(&out.trace, &out.metrics);
        const auto graphs = app::workloads::all();
        for (int u = 0; u < 24; ++u) {
          const auto wl = static_cast<std::size_t>(
              ctx.rng.uniform_int(0, static_cast<std::int64_t>(graphs.size()) - 1));
          const double bw = std::exp2(ctx.rng.uniform(-2.0, 2.0));
          const double batt = ctx.rng.uniform(0.05, 1.0);
          const auto at = Duration::seconds(ctx.rng.uniform_int(0, 60));
          fx.sim.schedule_at(TimePoint::at(at), [&fx, &graphs, wl, bw, batt] {
            ServeRequest req;
            req.app = &graphs[wl];
            req.battery = batt;
            req.bandwidth_scale = bw;
            fx.broker.serve(req);
          });
        }
        fx.sim.run();
        return out;
      },
      [](FleetOut& acc, FleetOut&& shard, std::size_t) {
        acc.metrics.merge_from(shard.metrics);
        acc.trace.append_from(shard.trace);
      });
}

TEST(BrokerDeterminism, FleetMergeByteIdenticalAcrossThreads) {
  const FleetOut one = run_fleet(1);
  const FleetOut eight = run_fleet(8);
  EXPECT_FALSE(one.trace.str().empty());
  EXPECT_EQ(one.metrics.to_csv(), eight.metrics.to_csv());
  EXPECT_EQ(one.trace.str(), eight.trace.str());
}

}  // namespace
}  // namespace ntco::broker
