#include "ntco/core/controller.hpp"

#include <gtest/gtest.h>

#include "ntco/app/workloads.hpp"
#include "ntco/common/error.hpp"
#include "ntco/net/path.hpp"

namespace ntco::core {
namespace {

/// Everything one end-to-end test needs, wired together.
struct Fixture {
  sim::Simulator sim;
  serverless::Platform platform;
  device::Device ue;
  net::NetworkPath path;
  OffloadController controller;

  explicit Fixture(ControllerConfig cfg = {},
                   net::TechProfile tech = net::profile_4g(),
                   serverless::PlatformConfig pcfg = {})
      : platform(sim, pcfg),
        ue(device::budget_phone()),
        path(net::make_fixed_path(tech)),
        controller(sim, platform, ue, path, cfg) {}
};

TEST(MakeEnvironment, ReflectsPlatformDeviceAndNetwork) {
  Fixture fx;
  const auto g = app::workloads::photo_backup();
  const auto env = fx.controller.make_environment(g);
  EXPECT_EQ(env.device.name, "budget-phone");
  EXPECT_EQ(env.uplink, net::profile_4g().uplink);
  EXPECT_EQ(env.downlink_latency, net::profile_4g().one_way_latency);
  // Reference memory of 1792 MB buys exactly one 2.5 GHz vCPU.
  EXPECT_EQ(env.remote_speed, Frequency::gigahertz(2.5));
  // Overhead includes the amortised cold-start share.
  EXPECT_GT(env.remote_overhead, Duration::zero());
  EXPECT_GT(env.remote_price_per_second, Money::zero());
}

TEST(Prepare, DeploysOneFunctionPerRemoteComponent) {
  Fixture fx;
  const auto g = app::workloads::ml_batch_training();
  const partition::MinCutPartitioner mincut;
  const auto plan = fx.controller.prepare(g, mincut);
  ASSERT_EQ(plan.function_of.size(), g.component_count());
  std::size_t deployed = 0;
  for (app::ComponentId id = 0; id < g.component_count(); ++id) {
    if (plan.is_remote(id)) {
      const auto fn = plan.function_for(id);
      ASSERT_TRUE(fn.has_value());
      // Memory respects the component's working set.
      const auto mem = plan.memory_for(id);
      ASSERT_TRUE(mem.has_value());
      EXPECT_GE(*mem, g.component(id).memory);
      EXPECT_EQ(fx.platform.spec(*fn).memory, *mem);
      ++deployed;
    } else {
      EXPECT_FALSE(plan.function_for(id).has_value());
      EXPECT_FALSE(plan.memory_for(id).has_value());
    }
  }
  // Out-of-range ids read as "not deployed" rather than faulting.
  const auto past_end = static_cast<app::ComponentId>(g.component_count());
  EXPECT_FALSE(plan.function_for(past_end).has_value());
  EXPECT_EQ(fx.platform.function_count(), deployed);
  EXPECT_GT(deployed, 0u);  // ML training must offload on 4G
}

TEST(Prepare, RespectsPinsAndPredictsCosts) {
  Fixture fx;
  const auto g = app::workloads::nightly_etl();
  const partition::MinCutPartitioner mincut;
  const auto plan = fx.controller.prepare(g, mincut);
  EXPECT_TRUE(plan.partition.respects_pins(g));
  EXPECT_GT(plan.predicted.latency, Duration::zero());
  EXPECT_GT(plan.predicted.objective, 0.0);
}

TEST(Execute, LocalOnlyPlanMatchesDeviceMath) {
  Fixture fx;
  const auto g = app::workloads::photo_backup();
  const partition::LocalOnlyPartitioner local;
  const auto plan = fx.controller.prepare(g, local);
  const auto r = fx.controller.execute(plan, g);
  // Per-component times/energies round independently, so sum them the same
  // way the run does.
  const device::Device ref(device::budget_phone());
  Duration expected_time;
  Energy expected_energy;
  for (const auto& c : g.components()) {
    expected_time += ref.exec_time(c.work);
    expected_energy += ref.exec_energy(c.work);
  }
  EXPECT_EQ(r.makespan, expected_time);
  EXPECT_EQ(r.local_compute, r.makespan);
  EXPECT_TRUE(r.cloud_cost.is_zero());
  EXPECT_EQ(r.remote_invocations, 0u);
  EXPECT_TRUE(r.transfer.is_zero());
  EXPECT_EQ(r.device_energy, expected_energy);
}

TEST(Execute, OffloadedPlanBeatsLocalForComputeHeavyApp) {
  Fixture fx;
  const auto g = app::workloads::ml_batch_training();
  const auto local_plan =
      fx.controller.prepare(g, partition::LocalOnlyPartitioner{});
  const auto local_run = fx.controller.execute(local_plan, g);
  const auto cut_plan =
      fx.controller.prepare(g, partition::MinCutPartitioner{});
  const auto cut_run = fx.controller.execute(cut_plan, g);

  EXPECT_LT(cut_run.makespan, local_run.makespan);
  EXPECT_LT(cut_run.device_energy, local_run.device_energy);
  EXPECT_GT(cut_run.cloud_cost, Money::zero());
  EXPECT_GT(cut_run.remote_invocations, 0u);
  EXPECT_GT(cut_run.transfer, Duration::zero());
}

TEST(Execute, PredictionTracksMeasurementOnWarmRuns) {
  Fixture fx;
  const auto g = app::workloads::ml_batch_training();
  const auto plan = fx.controller.prepare(g, partition::MinCutPartitioner{});
  (void)fx.controller.execute(plan, g);  // warm the instances
  const auto warm = fx.controller.execute(plan, g);
  // The separable model and the simulator agree within 20% once cold
  // starts are out of the picture (fixed links, sequential execution).
  const double predicted = plan.predicted.latency.to_seconds();
  const double measured = warm.makespan.to_seconds();
  EXPECT_NEAR(measured / predicted, 1.0, 0.2);
}

TEST(Execute, ColdThenWarmRunsGetFaster) {
  Fixture fx;
  const auto g = app::workloads::ml_batch_training();
  const auto plan = fx.controller.prepare(g, partition::MinCutPartitioner{});
  const auto first = fx.controller.execute(plan, g);
  const auto second = fx.controller.execute(plan, g);
  EXPECT_GT(first.cold_starts, 0u);
  EXPECT_EQ(second.cold_starts, 0u);
  EXPECT_LT(second.makespan, first.makespan);
}

TEST(Execute, EgressIsChargedOnDownloads) {
  Fixture fx;
  const auto g = app::workloads::ml_batch_training();
  const auto plan = fx.controller.prepare(g, partition::MinCutPartitioner{});
  const auto r = fx.controller.execute(plan, g);
  // The run downloads the compressed model (and any boundary data), so the
  // cloud bill must exceed pure invocation cost.
  Money invocation_only;
  const auto st = fx.platform.stats();
  invocation_only = st.exec_cost + st.request_cost;
  EXPECT_GT(r.cloud_cost, invocation_only - Money::nano_usd(1));
}

TEST(Execute, AsyncRunsCanOverlap) {
  Fixture fx;
  const auto g = app::workloads::photo_backup();
  const auto plan = fx.controller.prepare(g, partition::MinCutPartitioner{});
  int done = 0;
  for (int i = 0; i < 3; ++i)
    fx.controller.execute_async(plan, g,
                                [&](const ExecutionReport&) { ++done; });
  fx.sim.run();
  EXPECT_EQ(done, 3);
}

TEST(Execute, MismatchedPlanRejected) {
  Fixture fx;
  const auto g = app::workloads::photo_backup();
  const auto other = app::workloads::nightly_etl();
  const auto plan = fx.controller.prepare(g, partition::LocalOnlyPartitioner{});
  EXPECT_THROW((void)fx.controller.execute(plan, other), ContractViolation);
}

// Regression: prepare() used to register a brand-new function set on every
// call, so replanning the same app double-billed its cold starts and grew
// the platform without bound. Deployment is now idempotent per plan
// fingerprint.
TEST(Prepare, IdenticalPlanReusesDeployedFunctions) {
  Fixture fx;
  const auto g = app::workloads::ml_batch_training();
  const partition::MinCutPartitioner mincut;

  const auto first = fx.controller.prepare(g, mincut);
  const std::size_t deployed = fx.platform.function_count();
  (void)fx.controller.execute(first, g);
  const std::uint64_t colds_after_first = fx.platform.stats().cold_starts;
  EXPECT_GT(colds_after_first, 0u);

  const auto second = fx.controller.prepare(g, mincut);
  EXPECT_EQ(fx.platform.function_count(), deployed);
  EXPECT_EQ(second.function_of, first.function_of);

  // The reused functions keep their warm instances: a prompt second run
  // pays no cold starts (previously every replan cold-started afresh).
  (void)fx.controller.execute(second, g);
  EXPECT_EQ(fx.platform.stats().cold_starts, colds_after_first);
}

// A different placement for the same app is a different fingerprint and
// must deploy its own functions rather than reuse the memo.
TEST(Prepare, DifferentPartitionDeploysFresh) {
  Fixture fx;
  const auto g = app::workloads::ml_batch_training();
  (void)fx.controller.prepare(g, partition::MinCutPartitioner{});
  const std::size_t after_mincut = fx.platform.function_count();
  (void)fx.controller.prepare(g, partition::RemoteAllPartitioner{});
  EXPECT_GT(fx.platform.function_count(), after_mincut);
}

TEST(Controller, BadConfigRejected) {
  sim::Simulator s;
  serverless::Platform platform(s, {});
  device::Device ue(device::budget_phone());
  auto path = net::make_fixed_path(net::profile_4g());
  ControllerConfig cfg;
  cfg.expected_warm_rate = 1.5;
  EXPECT_THROW(OffloadController(s, platform, ue, path, cfg), ConfigError);
}

}  // namespace
}  // namespace ntco::core
