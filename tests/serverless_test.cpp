#include "ntco/serverless/platform.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ntco/common/error.hpp"

namespace ntco::serverless {
namespace {

PlatformConfig fast_config() {
  PlatformConfig cfg;
  cfg.core_speed = Frequency::gigahertz(2.0);
  cfg.full_share_memory = DataSize::megabytes(1792);
  cfg.cold_start_base = Duration::millis(100);
  cfg.image_install_rate = DataRate::megabits_per_second(400);
  cfg.keep_alive = Duration::minutes(10);
  return cfg;
}

FunctionSpec small_fn(std::string name = "fn") {
  return FunctionSpec{std::move(name), DataSize::megabytes(1792),
                      DataSize::megabytes(10)};
}

TEST(PlatformMath, CpuShareScalesWithMemory) {
  sim::Simulator s;
  Platform p(s, fast_config());
  EXPECT_DOUBLE_EQ(p.cpu_share(DataSize::megabytes(1792)), 1.0);
  EXPECT_DOUBLE_EQ(p.cpu_share(DataSize::megabytes(896)), 0.5);
  EXPECT_DOUBLE_EQ(p.cpu_share(DataSize::megabytes(10240)),
                   10240.0 / 1792.0);  // below the 6-vCPU cap
  EXPECT_DOUBLE_EQ(p.cpu_share(DataSize::megabytes(17920)), 6.0);  // capped
}

TEST(PlatformMath, ExecTimeInverselyProportionalToMemory) {
  sim::Simulator s;
  Platform p(s, fast_config());
  const auto work = Cycles::giga(2);  // 1 s at full share (2 GHz)
  EXPECT_EQ(p.exec_time(DataSize::megabytes(1792), work), Duration::seconds(1));
  EXPECT_EQ(p.exec_time(DataSize::megabytes(896), work), Duration::seconds(2));
}

TEST(PlatformMath, ColdStartGrowsWithImage) {
  sim::Simulator s;
  Platform p(s, fast_config());
  // 10 MB at 400 Mb/s = 200 ms install + 100 ms base.
  EXPECT_EQ(p.cold_start_time(DataSize::megabytes(10)), Duration::millis(300));
  EXPECT_LT(p.cold_start_time(DataSize::megabytes(1)),
            p.cold_start_time(DataSize::megabytes(100)));
}

TEST(PlatformMath, QuantizeMemoryRoundsUpAndClamps) {
  sim::Simulator s;
  Platform p(s, fast_config());
  EXPECT_EQ(p.quantize_memory(DataSize::megabytes(100)),
            DataSize::megabytes(128));  // below floor
  EXPECT_EQ(p.quantize_memory(DataSize::megabytes(130)),
            DataSize::megabytes(192));  // round up to 64 MB quantum
  EXPECT_EQ(p.quantize_memory(DataSize::megabytes(99999)),
            DataSize::megabytes(10240));  // ceiling
}

TEST(PlatformMath, InvocationCostMatchesHandComputation) {
  sim::Simulator s;
  auto cfg = fast_config();
  cfg.price_per_gb_second = Money::nano_usd(16'667);
  cfg.price_per_request = Money::nano_usd(200);
  Platform p(s, cfg);
  // 1 GB for exactly 1 s: 16667 + 200 nano-USD.
  const auto c = p.invocation_cost(DataSize::gigabytes(1),
                                   Duration::seconds(1), TimePoint::origin());
  EXPECT_EQ(c.count_nano_usd(), 16'867);
}

TEST(PlatformMath, BillingRoundsUpToQuantum) {
  sim::Simulator s;
  Platform p(s, fast_config());
  // 1 us of work is billed as a full 1 ms.
  const auto tiny = p.invocation_cost(DataSize::gigabytes(1),
                                      Duration::micros(1), TimePoint::origin());
  const auto ms = p.invocation_cost(DataSize::gigabytes(1),
                                    Duration::millis(1), TimePoint::origin());
  EXPECT_EQ(tiny, ms);
}

TEST(Platform, DeployValidation) {
  sim::Simulator s;
  Platform p(s, fast_config());
  EXPECT_THROW((void)p.deploy({"", DataSize::megabytes(256),
                               DataSize::megabytes(1)}),
               ConfigError);
  EXPECT_THROW((void)p.deploy({"too-small", DataSize::megabytes(64),
                               DataSize::megabytes(1)}),
               ConfigError);
  EXPECT_THROW((void)p.deploy({"misaligned", DataSize::megabytes(200),
                               DataSize::megabytes(1)}),
               ConfigError);
  const auto id = p.deploy(small_fn());
  EXPECT_EQ(p.spec(id).name, "fn");
  EXPECT_EQ(p.function_count(), 1u);
}

TEST(Platform, FirstInvocationIsColdSecondIsWarm) {
  sim::Simulator s;
  Platform p(s, fast_config());
  const auto id = p.deploy(small_fn());
  std::vector<InvocationResult> results;
  p.invoke(id, Cycles::giga(2), [&](const InvocationResult& r) {
    results.push_back(r);
    p.invoke(id, Cycles::giga(2),
             [&](const InvocationResult& r2) { results.push_back(r2); });
  });
  s.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].cold_start);
  EXPECT_EQ(results[0].init_time, Duration::millis(300));
  EXPECT_EQ(results[0].exec_time, Duration::seconds(1));
  EXPECT_FALSE(results[1].cold_start);
  EXPECT_TRUE(results[1].init_time.is_zero());
}

TEST(Platform, KeepAliveExpiryForcesColdStart) {
  sim::Simulator s;
  auto cfg = fast_config();
  cfg.keep_alive = Duration::seconds(5);
  Platform p(s, cfg);
  const auto id = p.deploy(small_fn());
  p.invoke(id, Cycles::giga(2), [](const InvocationResult&) {});
  // Execution ends at 1.3 s; stop before the 5 s keep-alive lapses.
  s.run_until(TimePoint::origin() + Duration::seconds(2));
  EXPECT_EQ(p.warm_count(id), 1u);
  // Let the keep-alive lapse.
  s.run_until(s.now() + Duration::seconds(6));
  EXPECT_EQ(p.warm_count(id), 0u);
  bool cold = false;
  p.invoke(id, Cycles::giga(2),
           [&](const InvocationResult& r) { cold = r.cold_start; });
  s.run();
  EXPECT_TRUE(cold);
}

TEST(Platform, ReuseWithinKeepAliveStaysWarm) {
  sim::Simulator s;
  auto cfg = fast_config();
  cfg.keep_alive = Duration::seconds(5);
  Platform p(s, cfg);
  const auto id = p.deploy(small_fn());
  p.invoke(id, Cycles::giga(2), [](const InvocationResult&) {});
  // Execution ends at 1.3 s; re-invoke 3 s later, inside the 5 s window.
  s.run_until(TimePoint::origin() + Duration::millis(4300));
  bool cold = true;
  p.invoke(id, Cycles::giga(2),
           [&](const InvocationResult& r) { cold = r.cold_start; });
  s.run();
  EXPECT_FALSE(cold);
}

TEST(Platform, ConcurrentBurstColdStartsEachInstance) {
  sim::Simulator s;
  Platform p(s, fast_config());
  const auto id = p.deploy(small_fn());
  int colds = 0;
  for (int i = 0; i < 5; ++i)
    p.invoke(id, Cycles::giga(2), [&](const InvocationResult& r) {
      if (r.cold_start) ++colds;
    });
  s.run_until(TimePoint::origin() + Duration::seconds(2));
  EXPECT_EQ(colds, 5);  // no instance is free to reuse in a burst
  EXPECT_EQ(p.warm_count(id), 5u);
  EXPECT_EQ(p.stats().peak_concurrency, 5u);
}

TEST(Platform, AccountConcurrencyThrottlesFifo) {
  sim::Simulator s;
  auto cfg = fast_config();
  cfg.account_concurrency = 2;
  Platform p(s, cfg);
  const auto id = p.deploy(small_fn());
  std::vector<int> done_order;
  std::vector<Duration> queue_waits;
  for (int i = 0; i < 4; ++i)
    p.invoke(id, Cycles::giga(2), [&, i](const InvocationResult& r) {
      done_order.push_back(i);
      queue_waits.push_back(r.queue_wait);
    });
  s.run();
  ASSERT_EQ(done_order.size(), 4u);
  EXPECT_EQ(done_order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_TRUE(queue_waits[0].is_zero());
  EXPECT_GT(queue_waits[2], Duration::zero());
  EXPECT_EQ(p.stats().throttled, 2u);
  EXPECT_EQ(p.stats().peak_concurrency, 2u);
}

TEST(Platform, ProvisionedConcurrencySkipsColdStart) {
  sim::Simulator s;
  Platform p(s, fast_config());
  const auto id = p.deploy(small_fn());
  p.set_provisioned_concurrency(id, 2);
  EXPECT_EQ(p.warm_count(id), 2u);
  int colds = 0;
  for (int i = 0; i < 2; ++i)
    p.invoke(id, Cycles::giga(2), [&](const InvocationResult& r) {
      if (r.cold_start) ++colds;
    });
  s.run();
  EXPECT_EQ(colds, 0);
  EXPECT_EQ(p.warm_count(id), 2u);  // provisioned instances return to pool
}

TEST(Platform, ProvisionedCapacityAccruesCostWhileIdle) {
  sim::Simulator s;
  auto cfg = fast_config();
  cfg.provisioned_price_per_gb_second = Money::nano_usd(4'167);
  cfg.memory_quantum = DataSize::megabytes(1);  // allow an exact 1 GB config
  Platform p(s, cfg);
  const auto id = p.deploy({"fn", DataSize::gigabytes(1),
                            DataSize::megabytes(10)});
  p.set_provisioned_concurrency(id, 2);
  s.schedule_after(Duration::seconds(100), [] {});
  s.run();
  // 2 instances x 1 GB x 100 s x 4167 nano$/GB-s.
  EXPECT_EQ(p.stats().provisioned_cost.count_nano_usd(), 2 * 100 * 4'167);
  p.set_provisioned_concurrency(id, 0);
  EXPECT_EQ(p.warm_count(id), 0u);
  const auto before = p.stats().provisioned_cost;
  s.schedule_after(Duration::seconds(50), [] {});
  s.run();
  EXPECT_EQ(p.stats().provisioned_cost, before);  // no further accrual
}

TEST(Platform, RedeployInvalidatesWarmInstances) {
  sim::Simulator s;
  Platform p(s, fast_config());
  const auto id = p.deploy(small_fn());
  p.invoke(id, Cycles::giga(1), [](const InvocationResult&) {});
  s.run_until(TimePoint::origin() + Duration::seconds(1));
  EXPECT_EQ(p.warm_count(id), 1u);
  p.redeploy(id, small_fn("fn-v2"));
  EXPECT_EQ(p.warm_count(id), 0u);
  bool cold = false;
  p.invoke(id, Cycles::giga(1),
           [&](const InvocationResult& r) { cold = r.cold_start; });
  s.run();
  EXPECT_TRUE(cold);
  EXPECT_EQ(p.spec(id).name, "fn-v2");
}

TEST(Platform, PriceWindowsDiscountOffPeak) {
  sim::Simulator s;
  auto cfg = fast_config();
  cfg.price_windows = {{22, 6, 0.5}, {6, 22, 1.0}};  // wrap-around window
  Platform p(s, cfg);
  const auto day = p.invocation_cost(DataSize::gigabytes(1),
                                     Duration::seconds(1),
                                     TimePoint::origin() + Duration::hours(12));
  const auto night = p.invocation_cost(
      DataSize::gigabytes(1), Duration::seconds(1),
      TimePoint::origin() + Duration::hours(23));
  const auto early = p.invocation_cost(
      DataSize::gigabytes(1), Duration::seconds(1),
      TimePoint::origin() + Duration::hours(26));  // 02:00 next day
  EXPECT_LT(night, day);
  EXPECT_EQ(night, early);
  EXPECT_DOUBLE_EQ(p.price_multiplier(TimePoint::origin() + Duration::hours(23)),
                   0.5);
}

TEST(Platform, StatsAccumulateAcrossInvocations) {
  sim::Simulator s;
  Platform p(s, fast_config());
  const auto id = p.deploy(small_fn());
  for (int i = 0; i < 3; ++i)
    p.invoke(id, Cycles::giga(2), [](const InvocationResult&) {});
  s.run();
  const auto st = p.stats();
  EXPECT_EQ(st.invocations, 3u);
  EXPECT_EQ(st.cold_starts, 3u);  // burst
  EXPECT_EQ(st.total_exec, Duration::seconds(3));
  EXPECT_GT(st.exec_cost, Money::zero());
  EXPECT_EQ(st.request_cost.count_nano_usd(), 3 * 200);
  EXPECT_EQ(p.total_cost(), st.exec_cost + st.request_cost + st.provisioned_cost);
}

TEST(Platform, InvalidConfigRejected) {
  sim::Simulator s;
  auto cfg = fast_config();
  cfg.account_concurrency = 0;
  EXPECT_THROW(Platform(s, cfg), ConfigError);
  cfg = fast_config();
  cfg.price_windows = {{25, 3, 1.0}};
  EXPECT_THROW(Platform(s, cfg), ConfigError);
}

TEST(PlatformCheckpoint, ResumeCreditsPriorExecAndBillsOnlyRemainder) {
  sim::Simulator s;
  Platform p(s, fast_config());
  const auto id = p.deploy(small_fn());
  InvocationResult res;
  // 2 Gcycles = 1 s at this config; half of it is already done elsewhere.
  p.resume(id, Cycles::giga(2), Duration::millis(500),
           [&res](const InvocationResult& r) { res = r; });
  s.run();
  EXPECT_FALSE(res.preempted);
  EXPECT_EQ(res.exec_time, Duration::millis(500));
  EXPECT_EQ(res.exec_credit, Duration::millis(500));
  EXPECT_EQ(res.cost, p.invocation_cost(DataSize::megabytes(1792),
                                        Duration::millis(500), res.started));
}

TEST(PlatformCheckpoint, CreditBeyondFullExecClampsToImmediateCompletion) {
  sim::Simulator s;
  Platform p(s, fast_config());
  const auto id = p.deploy(small_fn());
  InvocationResult res;
  p.resume(id, Cycles::giga(2), Duration::seconds(5),
           [&res](const InvocationResult& r) { res = r; });
  s.run();
  EXPECT_FALSE(res.preempted);
  EXPECT_EQ(res.exec_time, Duration::zero());
}

TEST(PlatformCheckpoint, PreemptBillsPartialSpotRunAtSpotRate) {
  // The ISSUE-7 regression: a checkpointed spot run bills exactly its
  // partial exec at the spot price, and resuming credits that exec.
  sim::Simulator s;
  auto cfg = fast_config();
  cfg.spot_mean_time_to_preempt = Duration::zero();  // only forced preempts
  Platform p(s, cfg);
  const auto id = p.deploy(small_fn());
  InvocationResult partial;
  const auto inv = p.invoke(
      id, Cycles::giga(2), [&partial](const InvocationResult& r) { partial = r; },
      Tier::Spot);
  // Cold start is 300 ms (10 MB at 400 Mb/s + 100 ms base); checkpoint
  // 400 ms in, i.e. 100 ms into execution.
  s.schedule_at(TimePoint::origin() + Duration::millis(400),
                [&p, inv] { EXPECT_TRUE(p.checkpoint_preempt(inv)); });
  s.run();
  EXPECT_TRUE(partial.preempted);
  EXPECT_EQ(partial.tier, Tier::Spot);
  EXPECT_EQ(partial.exec_time, Duration::millis(100));
  EXPECT_EQ(partial.cost,
            p.invocation_cost(DataSize::megabytes(1792), Duration::millis(100),
                              partial.started, Tier::Spot));
  // Spot rate really is the discounted one.
  EXPECT_LT(partial.cost,
            p.invocation_cost(DataSize::megabytes(1792), Duration::millis(100),
                              partial.started, Tier::OnDemand));

  // Resume with the partial run credited: only the 900 ms tail runs and
  // bills (here on-demand), so nothing is double-charged.
  InvocationResult rest;
  p.resume(id, Cycles::giga(2), partial.exec_time,
           [&rest](const InvocationResult& r) { rest = r; });
  s.run();
  EXPECT_FALSE(rest.preempted);
  EXPECT_EQ(rest.exec_time, Duration::millis(900));
  EXPECT_EQ(rest.exec_credit, Duration::millis(100));
  EXPECT_EQ(rest.cost, p.invocation_cost(DataSize::megabytes(1792),
                                         Duration::millis(900), rest.started));
  EXPECT_EQ(partial.exec_time + rest.exec_time, Duration::seconds(1));
}

TEST(PlatformCheckpoint, QueuedInvocationCheckpointsWithZeroExecAndCost) {
  sim::Simulator s;
  auto cfg = fast_config();
  cfg.account_concurrency = 1;
  Platform p(s, cfg);
  const auto id = p.deploy(small_fn());
  p.invoke(id, Cycles::giga(2), [](const InvocationResult&) {});
  InvocationResult queued;
  const auto second =
      p.invoke(id, Cycles::giga(2),
               [&queued](const InvocationResult& r) { queued = r; });
  const auto st = p.in_flight(second);
  ASSERT_TRUE(st.has_value());
  EXPECT_FALSE(st->executing);
  EXPECT_TRUE(p.checkpoint_preempt(second));
  EXPECT_TRUE(queued.preempted);
  EXPECT_EQ(queued.exec_time, Duration::zero());
  EXPECT_EQ(queued.cost, Money::zero());
  EXPECT_FALSE(p.in_flight(second).has_value());
  s.run();
  EXPECT_EQ(p.stats().invocations, 2u);
}

TEST(PlatformCheckpoint, InFlightReportsExecutionProgress) {
  sim::Simulator s;
  Platform p(s, fast_config());
  const auto id = p.deploy(small_fn());
  const auto inv =
      p.invoke(id, Cycles::giga(2), [](const InvocationResult&) {});
  s.schedule_at(TimePoint::origin() + Duration::millis(800), [&p, inv] {
    const auto st = p.in_flight(inv);
    ASSERT_TRUE(st.has_value());
    EXPECT_TRUE(st->executing);
    EXPECT_EQ(st->consumed, Duration::millis(500));  // 300 ms was cold start
    EXPECT_EQ(st->remaining, Duration::millis(500));
  });
  s.run();
  EXPECT_FALSE(p.in_flight(inv).has_value());
}

TEST(PlatformCheckpoint, UnknownHandleReturnsFalse) {
  sim::Simulator s;
  Platform p(s, fast_config());
  const auto id = p.deploy(small_fn());
  const auto inv =
      p.invoke(id, Cycles::giga(2), [](const InvocationResult&) {});
  s.run();
  EXPECT_FALSE(p.checkpoint_preempt(inv));  // already completed
  EXPECT_FALSE(p.checkpoint_preempt(inv + 17));
}

}  // namespace
}  // namespace ntco::serverless
