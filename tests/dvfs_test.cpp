// DVFS governor: table validation, race-to-idle energy accounting, and the
// deadline/energy trade.

#include <gtest/gtest.h>

#include "ntco/common/error.hpp"
#include "ntco/device/dvfs.hpp"

namespace ntco::device {
namespace {

DvfsGovernor governor() {
  return DvfsGovernor(budget_phone(), budget_phone_dvfs());
}

TEST(DvfsTable, ValidationRejectsMalformedLadders) {
  EXPECT_THROW(DvfsTable::validated({}), ConfigError);
  EXPECT_THROW(DvfsTable::validated({{Frequency::hertz(0), Power::watts(1)}}),
               ConfigError);
  // Non-monotone frequency.
  EXPECT_THROW(
      DvfsTable::validated({{Frequency::gigahertz(2.0), Power::watts(3)},
                            {Frequency::gigahertz(1.0), Power::watts(1)}}),
      ConfigError);
  // Power must grow with frequency.
  EXPECT_THROW(
      DvfsTable::validated({{Frequency::gigahertz(1.0), Power::watts(2)},
                            {Frequency::gigahertz(2.0), Power::watts(2)}}),
      ConfigError);
}

TEST(DvfsGovernor, EvaluateAccountsActivePlusIdleTail) {
  const auto gov = governor();
  const auto& slow = gov.table().levels.front();  // 600 MHz / 0.55 W
  // 0.6 Gcycles at 600 MHz = 1 s; 2 s window leaves 1 s idle at 0.35 W.
  const auto c = gov.evaluate(slow, Cycles::mega(600), Duration::seconds(2));
  EXPECT_TRUE(c.feasible);
  EXPECT_EQ(c.exec_time, Duration::seconds(1));
  EXPECT_NEAR(c.energy.to_joules(), 0.55 + 0.35, 1e-6);
}

TEST(DvfsGovernor, SlowerIsMoreEfficientWithLooseDeadlines) {
  // With a generous window, energy per cycle wins: the lowest level that
  // still fits is chosen (cubic power beats linear time).
  const auto gov = governor();
  const auto c = gov.energy_optimal(Cycles::giga(1), Duration::minutes(5));
  EXPECT_TRUE(c.feasible);
  EXPECT_EQ(c.level.freq, Frequency::megahertz(600));
}

TEST(DvfsGovernor, TightDeadlineForcesHigherLevels) {
  const auto gov = governor();
  // 2 Gcycles: 600 MHz needs 3.33 s; a 2 s window needs >= 1 GHz.
  const auto c = gov.energy_optimal(Cycles::giga(2), Duration::seconds(2));
  EXPECT_TRUE(c.feasible);
  EXPECT_GE(c.level.freq, Frequency::megahertz(1400));
  EXPECT_LE(c.exec_time, Duration::seconds(2));
}

TEST(DvfsGovernor, ImpossibleDeadlineReturnsFastestInfeasible) {
  const auto gov = governor();
  const auto c = gov.energy_optimal(Cycles::giga(100), Duration::millis(1));
  EXPECT_FALSE(c.feasible);
  EXPECT_EQ(c.level.freq, Frequency::megahertz(2000));
}

TEST(DvfsGovernor, DvfsTunedBaselineBeatsMaxFrequency) {
  // The honest-baseline property A4 relies on: for a delay-tolerant job,
  // DVFS-tuned local execution uses strictly less energy than racing at
  // the top level.
  const auto gov = governor();
  const auto work = Cycles::giga(10);
  const auto window = Duration::minutes(2);
  const auto tuned = gov.energy_optimal(work, window);
  const auto maxed = gov.evaluate(gov.table().levels.back(), work, window);
  ASSERT_TRUE(tuned.feasible);
  ASSERT_TRUE(maxed.feasible);
  EXPECT_LT(tuned.energy, maxed.energy);
}

TEST(DvfsGovernor, SpecAtReparameterisesTheDevice) {
  const auto gov = governor();
  const auto& boost = gov.table().levels.back();
  const auto spec = gov.spec_at(boost);
  EXPECT_EQ(spec.cpu, Frequency::megahertz(2000));
  EXPECT_EQ(spec.cpu_active, boost.active_power);
  // Unrelated fields are preserved.
  EXPECT_EQ(spec.radio_tx, budget_phone().radio_tx);
  EXPECT_EQ(spec.battery, budget_phone().battery);
}

}  // namespace
}  // namespace ntco::device
