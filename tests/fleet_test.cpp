#include "ntco/fleet/replicator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ntco/common/error.hpp"
#include "ntco/fleet/sweep.hpp"
#include "ntco/fleet/thread_pool.hpp"
#include "ntco/obs/metrics.hpp"
#include "ntco/sim/simulator.hpp"
#include "ntco/stats/percentile.hpp"

namespace ntco::fleet {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool.

TEST(FleetThreadPool, RunsEverySubmittedTask) {
  // ntco-lint: allow(R3) exercising the fleet ThreadPool requires an atomic observed from pool workers
  std::atomic<int> ran{0};
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  for (int i = 0; i < 100; ++i)
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(FleetThreadPool, WaitIdleWaitsForRunningTasks) {
  // ntco-lint: allow(R3) cross-thread completion flag for the pool under test
  std::atomic<bool> done{false};
  ThreadPool pool(2);
  pool.submit([&done] {
    // ntco-lint: allow(R3) deliberate in-task delay so wait_idle() has something to wait for
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    done.store(true);
  });
  pool.wait_idle();
  EXPECT_TRUE(done.load());
}

TEST(FleetThreadPool, DrainsQueueOnDestruction) {
  // ntco-lint: allow(R3) counts task executions across pool workers during teardown
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 10; ++i)
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }  // destructor joins after the queue drains
  EXPECT_EQ(ran.load(), 10);
}

TEST(FleetThreadPool, ContractsRejectInvalidUse) {
  EXPECT_THROW(ThreadPool(0), ContractViolation);
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), ContractViolation);
}

TEST(FleetThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(default_thread_count(), 1u);
}

// ---------------------------------------------------------------------------
// Replicator.

TEST(FleetReplicator, MapReturnsResultsInShardOrder) {
  Replicator rep(1, 4);
  const auto out = rep.map(16, [](ShardContext& ctx) {
    EXPECT_EQ(ctx.shard_count, 16u);
    return ctx.shard;
  });
  ASSERT_EQ(out.size(), 16u);
  for (std::size_t s = 0; s < out.size(); ++s) EXPECT_EQ(out[s], s);
}

TEST(FleetReplicator, ShardRngIsTheDocumentedStream) {
  Replicator rep(123, 2);
  auto firsts = rep.map(8, [](ShardContext& ctx) { return ctx.rng.next_u64(); });
  for (std::size_t s = 0; s < firsts.size(); ++s)
    EXPECT_EQ(firsts[s], Rng::stream(123, s).next_u64());
}

/// One small but genuine replica: a discrete-event simulation whose event
/// times and count come from the shard's rng stream.
double simulate_replica(ShardContext& ctx) {
  sim::Simulator sim;
  stats::PercentileSample lat;
  const int events = static_cast<int>(ctx.rng.uniform_int(50, 150));
  for (int i = 0; i < events; ++i) {
    const auto at = Duration::micros(
        static_cast<std::int64_t>(ctx.rng.uniform(0.0, 1e6)));
    sim.schedule_after(at, [&lat, &sim] {
      lat.add(sim.now().since_origin().to_seconds());
    });
  }
  sim.run();
  return lat.p95() + lat.median() + static_cast<double>(lat.count());
}

TEST(FleetDeterminism, MergedResultsAreThreadCountInvariant) {
  // The fleet's core guarantee: identical merged output at any worker
  // count. Run the same 12-shard fleet on 1, 2, and 8 workers and require
  // exact (bit-for-bit) equality of every per-shard result.
  const auto run = [](std::size_t threads) {
    Replicator rep(777, threads);
    return rep.map(12, simulate_replica);
  };
  const auto on1 = run(1);
  const auto on2 = run(2);
  const auto on8 = run(8);
  ASSERT_EQ(on1.size(), on2.size());
  ASSERT_EQ(on1.size(), on8.size());
  for (std::size_t s = 0; s < on1.size(); ++s) {
    EXPECT_EQ(on1[s], on2[s]) << "shard " << s;
    EXPECT_EQ(on1[s], on8[s]) << "shard " << s;
  }
}

TEST(FleetDeterminism, MergedRegistryDumpIsThreadCountInvariant) {
  // Per-shard MetricsRegistry instances reduced in shard order must dump
  // byte-identical CSV no matter how many workers ran the shards.
  const auto run = [](std::size_t threads) {
    Replicator rep(31, threads);
    return rep.reduce(
        10, obs::MetricsRegistry{},
        [](ShardContext& ctx) {
          obs::MetricsRegistry shard;
          shard.counter("fleet.events").add(ctx.rng.next_u64() % 100);
          shard.summary("fleet.latency").add(ctx.rng.uniform(0.0, 5.0));
          shard.gauge("fleet.last_shard").set(static_cast<double>(ctx.shard));
          shard.histogram("fleet.lat_s", 0.0, 5.0, 10)
              .add(ctx.rng.uniform(0.0, 5.0));
          return shard;
        },
        [](obs::MetricsRegistry& acc, obs::MetricsRegistry&& shard,
           std::size_t) { acc.merge_from(shard); });
  };
  const std::string csv1 = run(1).to_csv();
  const std::string csv8 = run(8).to_csv();
  EXPECT_EQ(csv1, csv8);
  // The gauge proves the fold ran in shard order on both fleets.
  EXPECT_NE(csv1.find("fleet.last_shard,gauge,value,9"), std::string::npos);
}

TEST(FleetReplicator, ReduceFoldsInShardOrder) {
  Replicator rep(5, 8);
  const auto order = rep.reduce(
      24, std::vector<std::size_t>{},
      [](ShardContext& ctx) { return ctx.shard; },
      [](std::vector<std::size_t>& acc, std::size_t shard, std::size_t s) {
        EXPECT_EQ(shard, s);
        acc.push_back(shard);
      });
  ASSERT_EQ(order.size(), 24u);
  for (std::size_t s = 0; s < order.size(); ++s) EXPECT_EQ(order[s], s);
}

TEST(FleetReplicator, FirstExceptionInShardOrderPropagates) {
  Replicator rep(9, 4);
  try {
    (void)rep.map(8, [](ShardContext& ctx) -> int {
      if (ctx.shard == 2 || ctx.shard == 6)
        throw std::runtime_error("shard " + std::to_string(ctx.shard));
      return 0;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard 2");
  }
}

TEST(FleetReplicator, ContractsRejectZeroShards) {
  Replicator rep(1, 1);
  EXPECT_THROW((void)rep.map(0, [](ShardContext&) { return 0; }),
               ContractViolation);
}

// ---------------------------------------------------------------------------
// Sweep.

TEST(FleetSweep, ReplicateGroupsByPointInOrder) {
  Sweep sweep(17, 4);
  const std::vector<double> points{0.5, 1.5, 2.5};
  const auto groups =
      sweep.replicate(points, 5, [](const double& p, ReplicaContext& ctx) {
        EXPECT_EQ(ctx.replica_count, 5u);
        return p * 100.0 + static_cast<double>(ctx.replica);
      });
  ASSERT_EQ(groups.size(), 3u);
  for (std::size_t p = 0; p < groups.size(); ++p) {
    ASSERT_EQ(groups[p].size(), 5u);
    for (std::size_t r = 0; r < 5; ++r)
      EXPECT_DOUBLE_EQ(groups[p][r],
                       points[p] * 100.0 + static_cast<double>(r));
  }
}

TEST(FleetSweep, ReplicaRngIsNestedStreamOfPointStream) {
  Sweep sweep(404, 2);
  const std::vector<int> points{10, 20};
  const auto draws =
      sweep.replicate(points, 3, [](const int&, ReplicaContext& ctx) {
        return ctx.rng.next_u64();
      });
  for (std::size_t p = 0; p < 2; ++p)
    for (std::size_t r = 0; r < 3; ++r)
      EXPECT_EQ(draws[p][r], Rng::stream(404, p).stream(r).next_u64());
}

TEST(FleetSweep, MapGivesOneResultPerPoint) {
  Sweep sweep(1, 3);
  const std::vector<int> points{4, 5, 6, 7};
  const auto out = sweep.map(
      points, [](const int& p, ReplicaContext& ctx) {
        EXPECT_EQ(ctx.replica, 0u);
        return p * 2;
      });
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t p = 0; p < out.size(); ++p)
    EXPECT_EQ(out[p], points[p] * 2);
}

TEST(FleetSweep, ReplicateIsThreadCountInvariant) {
  const auto run = [](std::size_t threads) {
    Sweep sweep(2022, threads);
    const std::vector<double> loads{0.2, 0.8};
    return sweep.replicate(loads, 6, [](const double& load, ReplicaContext& ctx) {
      ShardContext sc{ctx.replica, ctx.replica_count, ctx.rng};
      return simulate_replica(sc) * load;
    });
  };
  const auto on1 = run(1);
  const auto on8 = run(8);
  ASSERT_EQ(on1.size(), on8.size());
  for (std::size_t p = 0; p < on1.size(); ++p)
    for (std::size_t r = 0; r < on1[p].size(); ++r)
      EXPECT_EQ(on1[p][r], on8[p][r]) << "point " << p << " replica " << r;
}

}  // namespace
}  // namespace ntco::fleet
