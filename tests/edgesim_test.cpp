#include "ntco/edgesim/edge_platform.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ntco/common/error.hpp"

namespace ntco::edgesim {
namespace {

EdgeConfig two_servers() {
  EdgeConfig cfg;
  cfg.servers = 2;
  cfg.server_speed = Frequency::gigahertz(2.0);
  cfg.infra_cost_per_server_hour = Money::from_usd(0.10);
  cfg.request_overhead = Duration::millis(2);
  return cfg;
}

TEST(EdgePlatform, ExecTimeFollowsServerSpeed) {
  sim::Simulator s;
  EdgePlatform edge(s, two_servers());
  EXPECT_EQ(edge.exec_time(Cycles::giga(2)), Duration::seconds(1));
}

TEST(EdgePlatform, UncontendedJobRunsImmediately) {
  sim::Simulator s;
  EdgePlatform edge(s, two_servers());
  EdgeResult result;
  edge.submit(Cycles::giga(2), [&](const EdgeResult& r) { result = r; });
  s.run();
  EXPECT_TRUE(result.queue_wait.is_zero());
  EXPECT_EQ(result.exec_time, Duration::seconds(1));
  EXPECT_EQ(result.finished.since_origin(),
            Duration::seconds(1) + Duration::millis(2));
}

TEST(EdgePlatform, SaturationQueuesJobs) {
  sim::Simulator s;
  EdgePlatform edge(s, two_servers());
  std::vector<Duration> waits;
  for (int i = 0; i < 6; ++i)
    edge.submit(Cycles::giga(2),
                [&](const EdgeResult& r) { waits.push_back(r.queue_wait); });
  EXPECT_EQ(edge.busy(), 2u);
  EXPECT_EQ(edge.queued(), 4u);
  s.run();
  ASSERT_EQ(waits.size(), 6u);
  EXPECT_TRUE(waits[0].is_zero());
  EXPECT_TRUE(waits[1].is_zero());
  // Third wave waited for two full service rounds.
  EXPECT_GT(waits[4], Duration::seconds(1));
  EXPECT_GT(waits[5], waits[3]);
}

TEST(EdgePlatform, InfrastructureCostAccruesWithWallTimeNotLoad) {
  sim::Simulator s;
  EdgePlatform edge(s, two_servers());
  // One hour passes with zero jobs: the site still bills 2 server-hours.
  s.schedule_after(Duration::hours(1), [] {});
  s.run();
  EXPECT_NEAR(edge.infrastructure_cost().to_usd(), 0.20, 1e-9);
  EXPECT_DOUBLE_EQ(edge.utilization(), 0.0);
}

TEST(EdgePlatform, UtilizationReflectsBusyShare) {
  sim::Simulator s;
  EdgePlatform edge(s, two_servers());
  edge.submit(Cycles::giga(2), [](const EdgeResult&) {});  // ~1 s on 1 of 2
  s.run();
  s.run_until(s.now() + Duration::seconds(1));  // 2 s elapsed total
  EXPECT_NEAR(edge.utilization(), (1.002) / (2.004 * 2.0), 1e-3);
}

TEST(EdgePlatform, StatsAccumulate) {
  sim::Simulator s;
  EdgePlatform edge(s, two_servers());
  for (int i = 0; i < 3; ++i) edge.submit(Cycles::giga(2), [](const EdgeResult&) {});
  s.run();
  EXPECT_EQ(edge.stats().jobs, 3u);
  EXPECT_EQ(edge.stats().total_exec, Duration::seconds(3));
  EXPECT_GT(edge.stats().total_queue_wait, Duration::zero());
}

TEST(EdgeCheckpoint, ResumedJobServesOnlyRemainder) {
  sim::Simulator s;
  EdgePlatform edge(s, two_servers());
  EdgeResult result;
  edge.submit_resumed(Cycles::giga(2), Duration::millis(500),
                      [&](const EdgeResult& r) { result = r; });
  s.run();
  EXPECT_FALSE(result.preempted);
  EXPECT_EQ(result.exec_time, Duration::millis(500));
  EXPECT_EQ(result.exec_credit, Duration::millis(500));
  EXPECT_EQ(result.finished.since_origin(),
            Duration::millis(500) + Duration::millis(2));
}

TEST(EdgeCheckpoint, RunningJobReportsExecPastOverhead) {
  sim::Simulator s;
  EdgePlatform edge(s, two_servers());
  EdgeResult result;
  const auto id =
      edge.submit(Cycles::giga(2), [&](const EdgeResult& r) { result = r; });
  s.schedule_at(TimePoint::origin() + Duration::millis(400),
                [&] { EXPECT_TRUE(edge.checkpoint(id)); });
  s.run();
  EXPECT_TRUE(result.preempted);
  // 400 ms elapsed minus the 2 ms dispatch overhead actually executed.
  EXPECT_EQ(result.exec_time, Duration::millis(398));
  EXPECT_EQ(edge.stats().preemptions, 1u);
  // The server freed at checkpoint time, not at the planned completion.
  EXPECT_EQ(edge.busy(), 0u);
}

TEST(EdgeCheckpoint, QueuedJobCheckpointsWithZeroExec) {
  sim::Simulator s;
  EdgePlatform edge(s, two_servers());
  edge.submit(Cycles::giga(2), [](const EdgeResult&) {});
  edge.submit(Cycles::giga(2), [](const EdgeResult&) {});
  EdgeResult result;
  const auto id =
      edge.submit(Cycles::giga(2), [&](const EdgeResult& r) { result = r; });
  EXPECT_EQ(edge.queued(), 1u);
  EXPECT_TRUE(edge.checkpoint(id));
  EXPECT_TRUE(result.preempted);
  EXPECT_TRUE(result.exec_time.is_zero());
  EXPECT_EQ(edge.queued(), 0u);
  s.run();
}

TEST(EdgeCheckpoint, CheckpointThenResumeSumsToFullExec) {
  sim::Simulator s;
  EdgePlatform edge(s, two_servers());
  EdgeResult first;
  const auto id =
      edge.submit(Cycles::giga(2), [&](const EdgeResult& r) { first = r; });
  s.schedule_at(TimePoint::origin() + Duration::millis(400),
                [&] { edge.checkpoint(id); });
  s.run();
  EdgeResult second;
  edge.submit_resumed(Cycles::giga(2), first.exec_time,
                      [&](const EdgeResult& r) { second = r; });
  s.run();
  EXPECT_FALSE(second.preempted);
  EXPECT_EQ(first.exec_time + second.exec_time, Duration::seconds(1));
}

TEST(EdgeCheckpoint, InFlightTracksProgress) {
  sim::Simulator s;
  EdgePlatform edge(s, two_servers());
  const auto id = edge.submit(Cycles::giga(2), [](const EdgeResult&) {});
  s.schedule_at(TimePoint::origin() + Duration::millis(502), [&] {
    const auto st = edge.in_flight(id);
    ASSERT_TRUE(st.has_value());
    EXPECT_TRUE(st->executing);
    EXPECT_EQ(st->consumed, Duration::millis(500));
    EXPECT_EQ(st->remaining, Duration::millis(500));
  });
  s.run();
  EXPECT_FALSE(edge.in_flight(id).has_value());  // completed
  EXPECT_FALSE(edge.checkpoint(id));             // unknown by now
}

TEST(EdgePlatform, InvalidConfigRejected) {
  sim::Simulator s;
  EdgeConfig cfg = two_servers();
  cfg.server_speed = Frequency::hertz(0);
  EXPECT_THROW(EdgePlatform(s, cfg), ConfigError);
  cfg = two_servers();
  cfg.servers = 0;
  EXPECT_THROW(EdgePlatform(s, cfg), ContractViolation);
}

}  // namespace
}  // namespace ntco::edgesim
