#include "ntco/dataplane/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "ntco/broker/admission.hpp"
#include "ntco/common/error.hpp"
#include "ntco/common/rng.hpp"
#include "ntco/dataplane/controller.hpp"
#include "ntco/dataplane/ring.hpp"
#include "ntco/fleet/replicator.hpp"
#include "ntco/obs/metrics.hpp"
#include "ntco/obs/trace.hpp"

// Suite names start with "Dataplane" so tools/ci.sh can rerun exactly these
// under ThreadSanitizer (ctest -R '^Dataplane').

namespace ntco {
namespace {

using dataplane::Engine;
using dataplane::EngineConfig;

// ---------------------------------------------------------------------------
// Ring<T>: SPSC boundaries, wraparound, batching.

TEST(DataplaneRing, EmptyAndFullBoundaries) {
  Ring<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));  // empty from birth
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_TRUE(ring.try_push(3));
  EXPECT_TRUE(ring.try_push(4));
  EXPECT_FALSE(ring.try_push(5));  // full: capacity items in flight
  EXPECT_EQ(ring.size_approx(), 4u);
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(ring.try_push(5));  // slot freed, push succeeds again
  for (int want = 2; want <= 5; ++want) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, want);
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty_approx());
}

TEST(DataplaneRing, RejectsNonPowerOfTwoCapacity) {
  EXPECT_THROW(Ring<int>(3), ContractViolation);
  EXPECT_THROW(Ring<int>(0), ContractViolation);
  EXPECT_THROW(Ring<int>(1), ContractViolation);  // pow2 but < 2
  EXPECT_THROW(MpscRing<int>(12), ContractViolation);
}

TEST(DataplaneRing, WrapsAroundManyLaps) {
  // A tiny ring driven far past its capacity exercises the masked index
  // arithmetic on every lap boundary.
  Ring<std::uint64_t> ring(4);
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(i));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty_approx());
}

TEST(DataplaneRing, BatchedPushPopRespectsCapacityAndOrder) {
  Ring<int> ring(8);
  const int in[12] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  // Only capacity items fit; push_n reports the truncation.
  EXPECT_EQ(ring.push_n(in, 12), 8u);
  int out[12] = {};
  EXPECT_EQ(ring.pop_n(out, 3), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(out[i], i);
  // Partial batch across the wrap boundary: 3 free slots, then drain all.
  EXPECT_EQ(ring.push_n(in + 8, 4), 3u);
  EXPECT_EQ(ring.pop_n(out, 12), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i + 3);
  EXPECT_EQ(ring.pop_n(out, 12), 0u);
}

TEST(DataplaneRing, SeededRandomInterleavingMatchesDequeModel) {
  // Single-threaded randomized interleaving of single and batched ops,
  // mirrored against a std::deque reference model. Seeded, so failures
  // reproduce exactly.
  Ring<std::uint64_t> ring(16);
  std::deque<std::uint64_t> model;
  Rng rng(20260809);
  std::uint64_t next_value = 0;
  for (int op = 0; op < 20000; ++op) {
    switch (rng.uniform_int(0, 3)) {
      case 0: {  // single push
        const bool pushed = ring.try_push(next_value);
        EXPECT_EQ(pushed, model.size() < ring.capacity());
        if (pushed) model.push_back(next_value++);
        break;
      }
      case 1: {  // single pop
        std::uint64_t got = 0;
        const bool popped = ring.try_pop(got);
        EXPECT_EQ(popped, !model.empty());
        if (popped) {
          EXPECT_EQ(got, model.front());
          model.pop_front();
        }
        break;
      }
      case 2: {  // batched push
        std::uint64_t batch[8];
        const auto n = static_cast<std::size_t>(rng.uniform_int(1, 8));
        for (std::size_t i = 0; i < n; ++i) batch[i] = next_value + i;
        const std::size_t took = ring.push_n(batch, n);
        EXPECT_EQ(took, std::min(n, ring.capacity() - model.size()));
        for (std::size_t i = 0; i < took; ++i) model.push_back(next_value++);
        break;
      }
      default: {  // batched pop
        std::uint64_t batch[8];
        const auto n = static_cast<std::size_t>(rng.uniform_int(1, 8));
        const std::size_t got = ring.pop_n(batch, n);
        EXPECT_EQ(got, std::min(n, model.size()));
        for (std::size_t i = 0; i < got; ++i) {
          EXPECT_EQ(batch[i], model.front());
          model.pop_front();
        }
        break;
      }
    }
    EXPECT_EQ(ring.size_approx(), model.size());
  }
}

TEST(DataplaneRing, SpscThreadedStressKeepsFifoOrder) {
  // One producer, one consumer, a ring far smaller than the item count:
  // every value must arrive exactly once, in order. Run under TSan by
  // tools/ci.sh to validate the acquire/release pairing.
  constexpr std::uint64_t kItems = 20000;
  Ring<std::uint64_t> ring(64);
  // ntco-lint: allow(R3) SPSC stress test needs a real producer thread against the ring under test
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kItems;) {
      // Yield on a full ring so single-core runners make progress instead
      // of burning the whole timeslice against a descheduled consumer.
      // ntco-lint: allow(R3) producer-side yield for single-core timeslicing
      if (ring.try_push(i)) ++i; else std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  while (expected < kItems) {
    std::uint64_t got = 0;
    if (ring.try_pop(got)) {
      ASSERT_EQ(got, expected);
      ++expected;
    } else {
      // ntco-lint: allow(R3) consumer-side yield for single-core timeslicing
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty_approx());
}

// ---------------------------------------------------------------------------
// MpscRing<T>: completion-queue variant.

TEST(DataplaneMpsc, SingleThreadFifoAndFullBehaviour) {
  MpscRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  for (int want = 0; want < 4; ++want) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, want);
  }
  EXPECT_FALSE(ring.try_pop(out));
  // Reusable after a full lap.
  EXPECT_TRUE(ring.try_push(7));
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 7);
}

TEST(DataplaneMpsc, ManyProducersDeliverEverythingInPerProducerOrder) {
  constexpr std::uint64_t kProducers = 4;
  constexpr std::uint64_t kPerProducer = 4000;
  MpscRing<std::uint64_t> ring(128);
  // ntco-lint: allow(R3) MPSC stress requires real concurrent producer threads
  std::vector<std::thread> producers;
  for (std::uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p] {
      for (std::uint64_t i = 0; i < kPerProducer;) {
        // Tag values with the producer id so the consumer can check
        // per-producer FIFO order.
        // ntco-lint: allow(R3) producer-side yield for single-core timeslicing
        if (ring.try_push(p * kPerProducer + i)) ++i; else std::this_thread::yield();
      }
    });
  }
  std::vector<std::uint64_t> next_from(kProducers, 0);
  std::uint64_t received = 0;
  while (received < kProducers * kPerProducer) {
    std::uint64_t got = 0;
    if (!ring.try_pop(got)) {
      // ntco-lint: allow(R3) consumer-side yield for single-core timeslicing
      std::this_thread::yield();
      continue;
    }
    const std::uint64_t p = got / kPerProducer;
    const std::uint64_t seq = got % kPerProducer;
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(seq, next_from[p]) << "producer " << p;
    ++next_from[p];
    ++received;
  }
  for (auto& t : producers) t.join();
  for (std::uint64_t p = 0; p < kProducers; ++p)
    EXPECT_EQ(next_from[p], kPerProducer);
}

// ---------------------------------------------------------------------------
// CoreController: plan logic (pure, no threads).

TEST(DataplaneController, ScaleUpNeedsSustainedBacklog) {
  dataplane::ControllerConfig cfg;
  cfg.sustain_epochs = 2;
  dataplane::CoreController ctl(cfg, 4);
  // One backlogged epoch is not enough (hysteresis)...
  EXPECT_EQ(ctl.plan(1, 0.9, 100), 1u);
  // ...two consecutive ones acquire exactly one worker.
  EXPECT_EQ(ctl.plan(1, 0.9, 100), 2u);
  EXPECT_EQ(ctl.stats().scale_ups, 1u);
  // An in-between epoch resets the streak.
  EXPECT_EQ(ctl.plan(2, 0.9, 100), 2u);
  EXPECT_EQ(ctl.plan(2, 0.4, 100), 2u);
  EXPECT_EQ(ctl.plan(2, 0.9, 100), 2u);
  EXPECT_EQ(ctl.plan(2, 0.9, 100), 3u);
}

TEST(DataplaneController, ScaleDownNeedsSustainedIdle) {
  dataplane::ControllerConfig cfg;
  cfg.idle_epochs = 3;
  dataplane::CoreController ctl(cfg, 4);
  EXPECT_EQ(ctl.plan(3, 0.0, 100), 3u);
  EXPECT_EQ(ctl.plan(3, 0.0, 100), 3u);
  EXPECT_EQ(ctl.plan(3, 0.0, 100), 2u);
  EXPECT_EQ(ctl.stats().scale_downs, 1u);
  // Never below min_workers.
  dataplane::ControllerConfig floor_cfg;
  floor_cfg.idle_epochs = 1;
  floor_cfg.min_workers = 2;
  dataplane::CoreController floored(floor_cfg, 4);
  EXPECT_EQ(floored.plan(2, 0.0, 100), 2u);
  EXPECT_EQ(floored.plan(2, 0.0, 100), 2u);
}

TEST(DataplaneController, CeilingIsPoolAndPendingWork) {
  dataplane::ControllerConfig cfg;
  cfg.sustain_epochs = 1;
  dataplane::CoreController ctl(cfg, 2);
  // Pool of 2 caps acquisition even under full backlog.
  EXPECT_EQ(ctl.plan(2, 1.0, 100), 2u);
  // Three shards left: no point holding four workers.
  dataplane::CoreController wide(cfg, 8);
  EXPECT_EQ(wide.plan(6, 0.4, 3), 3u);
}

TEST(DataplaneController, DisabledControllerHoldsWorkerCount) {
  dataplane::ControllerConfig cfg;
  cfg.enabled = false;
  cfg.sustain_epochs = 1;
  cfg.idle_epochs = 1;
  dataplane::CoreController ctl(cfg, 4);
  EXPECT_EQ(ctl.plan(2, 1.0, 100), 2u);
  EXPECT_EQ(ctl.plan(2, 0.0, 100), 2u);
  EXPECT_EQ(ctl.stats().scale_ups, 0u);
  EXPECT_EQ(ctl.stats().scale_downs, 0u);
  // Liveness still records who ran.
  EXPECT_EQ(ctl.liveness()[0], 2u);
  EXPECT_EQ(ctl.liveness()[1], 2u);
  EXPECT_EQ(ctl.liveness()[2], 0u);
}

// ---------------------------------------------------------------------------
// Engine: epoch barrier, stats, worker scaling plumbing.

struct ShardTouches {
  std::vector<std::uint32_t> counts;
};

void touch_shard(void* ctx, std::size_t shard) {
  // Per-shard slots; the completion ring's release/acquire edge publishes
  // the writes to the orchestrator before run() returns.
  ++static_cast<ShardTouches*>(ctx)->counts[shard];
}

TEST(DataplaneEngine, RunsEveryShardExactlyOnce) {
  EngineConfig cfg;
  cfg.workers = 4;
  cfg.epoch_width = 8;
  Engine engine(cfg);
  ShardTouches touches;
  touches.counts.assign(203, 0);  // deliberately not a multiple of the width
  engine.run(203, &touch_shard, &touches);
  for (std::size_t s = 0; s < touches.counts.size(); ++s)
    ASSERT_EQ(touches.counts[s], 1u) << "shard " << s;
  const auto& stats = engine.last_run();
  EXPECT_EQ(stats.items, 203u);
  EXPECT_EQ(stats.epochs, 26u);  // ceil(203 / 8)
  std::uint64_t per_worker_total = 0;
  for (const auto n : stats.items_per_worker) per_worker_total += n;
  EXPECT_EQ(per_worker_total, 203u);
  std::uint64_t liveness_total = 0;
  for (const auto n : stats.core_liveness) liveness_total += n;
  EXPECT_GE(liveness_total, stats.epochs);  // worker 0 is always live
  EXPECT_EQ(engine.pressure(), 0.0);        // rings idle after the run
}

struct EpochLog {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
};

void log_epoch(void* ctx, std::size_t begin, std::size_t end) {
  static_cast<EpochLog*>(ctx)->ranges.emplace_back(begin, end);
}

TEST(DataplaneEngine, EpochCallbackWalksContiguousAscendingRanges) {
  EngineConfig cfg;
  cfg.workers = 3;
  cfg.epoch_width = 16;
  Engine engine(cfg);
  ShardTouches touches;
  touches.counts.assign(100, 0);
  EpochLog log;
  engine.run(100, &touch_shard, &touches, &log_epoch, &log);
  ASSERT_EQ(log.ranges.size(), 7u);  // ceil(100 / 16)
  std::size_t expect_begin = 0;
  for (const auto& [begin, end] : log.ranges) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_GT(end, begin);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, 100u);
}

TEST(DataplaneEngine, ReusableAcrossRuns) {
  EngineConfig cfg;
  cfg.workers = 2;
  cfg.epoch_width = 4;
  Engine engine(cfg);
  for (int round = 0; round < 3; ++round) {
    ShardTouches touches;
    touches.counts.assign(33, 0);
    engine.run(33, &touch_shard, &touches);
    for (std::size_t s = 0; s < touches.counts.size(); ++s)
      ASSERT_EQ(touches.counts[s], 1u) << "round " << round << " shard " << s;
    EXPECT_EQ(engine.last_run().items, 33u);
  }
}

// ---------------------------------------------------------------------------
// Epoch determinism: the artifact contract across thread counts.

// One replica's trace shard: a few records derived from the shard-keyed
// substream, so content is a pure function of (seed, shard).
obs::JsonlTraceWriter trace_replica(fleet::ShardContext& ctx) {
  obs::JsonlTraceWriter trace;
  const auto events = 1 + static_cast<int>(ctx.rng.uniform_int(0, 3));
  for (int e = 0; e < events; ++e) {
    obs::emit(&trace,
              TimePoint::at(Duration::micros(
                  static_cast<std::int64_t>(ctx.shard * 100 +
                                            static_cast<std::size_t>(e)))),
              "sim.event.fired",
              {{"seq", ctx.rng.next_u64() % 1000}});
  }
  return trace;
}

std::string merged_trace(std::size_t threads, std::size_t shards,
                         const dataplane::EngineConfig& engine_cfg) {
  fleet::Replicator rep(4242, threads);
  rep.set_engine_config(engine_cfg);
  auto merged = rep.reduce(
      shards, obs::JsonlTraceWriter{}, trace_replica,
      [](obs::JsonlTraceWriter& acc, obs::JsonlTraceWriter&& shard,
         std::size_t) { acc.append_from(shard); });
  return merged.str();
}

TEST(DataplaneEpoch, TraceDigestByteEqualAcrossThreadCounts) {
  dataplane::EngineConfig cfg;  // stock epoch width
  const std::string t1 = merged_trace(1, 256, cfg);
  const std::string t2 = merged_trace(2, 256, cfg);
  const std::string t8 = merged_trace(8, 256, cfg);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t8);
}

TEST(DataplaneEpoch, EpochWidthNeverChangesArtifacts) {
  // Epoch width shapes scheduling granularity only; the merged stream is a
  // pure function of (seed, shards).
  dataplane::EngineConfig narrow;
  narrow.epoch_width = 4;
  dataplane::EngineConfig wide;
  wide.epoch_width = 128;
  EXPECT_EQ(merged_trace(8, 250, narrow), merged_trace(8, 250, wide));
  EXPECT_EQ(merged_trace(1, 250, narrow), merged_trace(8, 250, wide));
}

TEST(DataplaneEpoch, MidRunScalingNeverChangesArtifacts) {
  // An aggressive controller over starved rings forces live acquire /
  // release churn; a disabled controller forbids it. Both must produce the
  // byte-identical merged stream — scaling may move work, never results.
  dataplane::EngineConfig churn;
  churn.epoch_width = 8;
  churn.ring_capacity = 2;  // looks backlogged quickly
  churn.controller.sustain_epochs = 1;
  churn.controller.idle_epochs = 1;
  churn.controller.scale_up_occupancy = 0.1;
  churn.controller.scale_down_occupancy = 0.05;
  dataplane::EngineConfig frozen;
  frozen.controller.enabled = false;
  const std::string churned = merged_trace(8, 300, churn);
  EXPECT_EQ(churned, merged_trace(8, 300, frozen));
  EXPECT_EQ(churned, merged_trace(1, 300, frozen));
}

TEST(DataplaneEpoch, StreamingReduceMatchesSerialFold) {
  // The per-epoch streaming drain must fold in exactly the shard order the
  // all-at-once fold used to: the order-sensitive gauge proves it.
  const auto run = [](std::size_t threads) {
    fleet::Replicator rep(31, threads);
    return rep.reduce(
        64, obs::MetricsRegistry{},
        [](fleet::ShardContext& ctx) {
          obs::MetricsRegistry shard;
          shard.counter("fleet.events").add(ctx.rng.next_u64() % 100);
          shard.summary("fleet.latency").add(ctx.rng.uniform(0.0, 5.0));
          shard.gauge("fleet.last_shard").set(static_cast<double>(ctx.shard));
          return shard;
        },
        [](obs::MetricsRegistry& acc, obs::MetricsRegistry&& shard,
           std::size_t) { acc.merge_from(shard); });
  };
  const std::string csv1 = run(1).to_csv();
  const std::string csv8 = run(8).to_csv();
  EXPECT_EQ(csv1, csv8);
  EXPECT_NE(csv1.find("fleet.last_shard,gauge,value,63"), std::string::npos);
}

TEST(DataplaneEpoch, FirstShardOrderExceptionSurvivesStreamingReduce) {
  fleet::Replicator rep(9, 4);
  try {
    (void)rep.reduce(
        24, 0,
        [](fleet::ShardContext& ctx) -> int {
          if (ctx.shard == 17 || ctx.shard == 5)
            throw std::runtime_error("shard " + std::to_string(ctx.shard));
          return 1;
        },
        [](int& acc, int&& v, std::size_t) { acc += v; });
    FAIL() << "expected the shard exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard 5");  // first in shard order, not time
  }
}

// ---------------------------------------------------------------------------
// Admission backpressure: rings throttle the broker's deferral policy.

struct StubPressure final : dataplane::BackpressureSource {
  double value = 0.0;
  [[nodiscard]] double pressure() const override { return value; }
};

broker::AdmissionConfig tight_admission() {
  broker::AdmissionConfig cfg;
  cfg.rate_per_second = 0.001;  // effectively no refill within the test
  cfg.burst = 1.0;
  cfg.max_deferred = 4;
  return cfg;
}

TEST(DataplaneBackpressure, PressureShrinksDeferralBound) {
  // At zero pressure the queue holds max_deferred requests before the
  // QueueFull shed; at 0.75 pressure the effective bound is one slot.
  const auto deferred_before_shed = [](double pressure) {
    broker::AdmissionController ctl(tight_admission());
    StubPressure src;
    src.value = pressure;
    ctl.set_backpressure_source(&src);
    const TimePoint now = TimePoint::origin();
    const TimePoint deadline = now + Duration::minutes(600);
    const Duration est = Duration::seconds(1);
    EXPECT_EQ(ctl.decide(now, deadline, est).verdict,
              broker::AdmissionVerdict::Admitted);
    std::uint64_t deferred = 0;
    for (int i = 0; i < 10; ++i) {
      const auto d = ctl.decide(now, deadline, est);
      if (d.verdict == broker::AdmissionVerdict::Shed) {
        EXPECT_EQ(d.reason, broker::ShedReason::QueueFull);
        return deferred;
      }
      EXPECT_EQ(d.verdict, broker::AdmissionVerdict::Deferred);
      ++deferred;
    }
    return deferred;
  };
  EXPECT_EQ(deferred_before_shed(0.0), 4u);
  EXPECT_EQ(deferred_before_shed(0.75), 1u);
}

TEST(DataplaneBackpressure, PressureStretchesRetryQuote) {
  const auto quote = [](double pressure) {
    broker::AdmissionController ctl(tight_admission());
    StubPressure src;
    src.value = pressure;
    ctl.set_backpressure_source(&src);
    const TimePoint now = TimePoint::origin();
    const TimePoint deadline = now + Duration::minutes(600);
    (void)ctl.decide(now, deadline, Duration::seconds(1));  // spends the burst
    return ctl.decide(now, deadline, Duration::seconds(1)).retry_at;
  };
  // Saturated rings push the same request further into the future.
  EXPECT_GT(quote(1.0), quote(0.0));
}

TEST(DataplaneBackpressure, NullSourceAndStockBoundStayUnchanged) {
  // No source wired: behaviour is the pre-dataplane token bucket.
  broker::AdmissionController ctl(tight_admission());
  const TimePoint now = TimePoint::origin();
  const TimePoint deadline = now + Duration::minutes(600);
  EXPECT_EQ(ctl.decide(now, deadline, Duration::seconds(1)).verdict,
            broker::AdmissionVerdict::Admitted);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(ctl.decide(now, deadline, Duration::seconds(1)).verdict,
              broker::AdmissionVerdict::Deferred);
  const auto d = ctl.decide(now, deadline, Duration::seconds(1));
  EXPECT_EQ(d.verdict, broker::AdmissionVerdict::Shed);
  EXPECT_EQ(d.reason, broker::ShedReason::QueueFull);
}

}  // namespace
}  // namespace ntco
