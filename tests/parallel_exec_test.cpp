// Tests of the dataflow (parallel) execution mode: concurrency where the
// DAG allows it, serialisation where resources demand it, and agreement
// with sequential mode on chains.

#include <gtest/gtest.h>

#include "ntco/app/generators.hpp"
#include "ntco/app/workloads.hpp"
#include "ntco/common/error.hpp"
#include "ntco/core/controller.hpp"
#include "ntco/net/path.hpp"

namespace ntco::core {
namespace {

struct Fixture {
  sim::Simulator sim;
  serverless::Platform platform;
  device::Device ue;
  net::NetworkPath path;
  OffloadController controller;

  explicit Fixture(ExecutionMode mode,
                   partition::Objective obj = partition::Objective::latency())
      : platform(sim, {}),
        ue(device::budget_phone()),
        path(net::make_fixed_path(net::profile_wifi())),
        controller(sim, platform, ue, path, make_cfg(mode, obj)) {}

  static ControllerConfig make_cfg(ExecutionMode mode,
                                   partition::Objective obj) {
    ControllerConfig cfg;
    cfg.execution_mode = mode;
    cfg.objective = obj;
    return cfg;
  }
};

/// Fan-out with cheap pinned endpoints, so the workers dominate and remote
/// concurrency is visible end to end.
app::TaskGraph wide_fanout() {
  app::TaskGraph g("wide-fanout");
  const auto mem = DataSize::megabytes(192);
  const auto img = DataSize::megabytes(20);
  const auto split =
      g.add_component({"split", Cycles::mega(50), mem, img, true, 0.8});
  const auto join =
      g.add_component({"join", Cycles::mega(50), mem, img, true, 0.8});
  for (int i = 0; i < 8; ++i) {
    const auto w = g.add_component({"worker" + std::to_string(i),
                                    Cycles::giga(8), mem, img, false, 0.8});
    g.add_flow(split, w, DataSize::kilobytes(50));
    g.add_flow(w, join, DataSize::kilobytes(50));
  }
  return g;
}

TEST(ParallelExec, ChainMatchesSequentialLocally) {
  // On a pure chain there is no parallelism to exploit: local-only plans
  // must produce identical makespans in both modes.
  app::GeneratorParams p;
  p.components = 5;
  p.work_cv = 0.0;
  p.flow_cv = 0.0;
  const auto chain = app::linear_pipeline(p, Rng(2));

  Fixture seq(ExecutionMode::Sequential), par(ExecutionMode::Parallel);
  const auto seq_run = seq.controller.execute(
      seq.controller.prepare(chain, partition::LocalOnlyPartitioner{}), chain);
  const auto par_run = par.controller.execute(
      par.controller.prepare(chain, partition::LocalOnlyPartitioner{}), chain);
  EXPECT_EQ(seq_run.makespan, par_run.makespan);
  EXPECT_EQ(seq_run.local_compute, par_run.local_compute);
}

TEST(ParallelExec, FanOutGainsFromRemoteConcurrency) {
  const auto g = wide_fanout();
  Fixture seq(ExecutionMode::Sequential), par(ExecutionMode::Parallel);
  const auto seq_plan =
      seq.controller.prepare(g, partition::RemoteAllPartitioner{});
  (void)seq.controller.execute(seq_plan, g);  // warm
  const auto seq_run = seq.controller.execute(seq_plan, g);

  const auto par_plan =
      par.controller.prepare(g, partition::RemoteAllPartitioner{});
  (void)par.controller.execute(par_plan, g);  // warm
  const auto par_run = par.controller.execute(par_plan, g);

  // Eight 8-Gcycle workers run concurrently in the cloud: the dataflow
  // executor must be several times faster end to end.
  EXPECT_LT(par_run.makespan * 3.0, seq_run.makespan);
  // Both executed the same work remotely.
  EXPECT_EQ(par_run.remote_invocations, seq_run.remote_invocations);
  EXPECT_EQ(par_run.remote_compute, seq_run.remote_compute);
}

TEST(ParallelExec, LocalComponentsSerialiseOnTheSingleCore) {
  // All-local fan-out: eight workers cannot run concurrently on one UE
  // core, so the parallel makespan equals the sum of component times.
  const auto g = wide_fanout();
  Fixture par(ExecutionMode::Parallel);
  const auto plan =
      par.controller.prepare(g, partition::LocalOnlyPartitioner{});
  const auto run = par.controller.execute(plan, g);
  Duration expected;
  for (const auto& c : g.components())
    expected += par.ue.exec_time(c.work);
  EXPECT_EQ(run.makespan, expected);
}

TEST(ParallelExec, UplinkTransfersSerialise) {
  // Split(local) fans out to 8 remote workers: the 8 uploads share one
  // radio, so the last upload starts no earlier than 7 transfer times in.
  const auto g = wide_fanout();
  Fixture par(ExecutionMode::Parallel);
  const auto plan =
      par.controller.prepare(g, partition::RemoteAllPartitioner{});
  (void)par.controller.execute(plan, g);
  const auto run = par.controller.execute(plan, g);
  // Total radio time is the sum of all boundary transfers even though the
  // cloud side overlaps.
  Duration per_upload;
  for (const std::size_t fi : g.out_flows(0))
    per_upload += net::FixedLink(net::profile_wifi().one_way_latency,
                                 net::profile_wifi().uplink)
                      .transfer_time(g.flow(fi).bytes);
  EXPECT_GE(run.transfer, per_upload);
  // And the makespan includes at least the serialised upload train.
  EXPECT_GT(run.makespan, per_upload);
}

TEST(ParallelExec, ReportsAreInternallyConsistent) {
  const auto g = app::workloads::photo_backup();
  Fixture par(ExecutionMode::Parallel,
              partition::Objective::non_time_critical());
  const auto plan = par.controller.prepare(g, partition::MinCutPartitioner{});
  const auto run = par.controller.execute(plan, g);
  EXPECT_GT(run.makespan, Duration::zero());
  EXPECT_GE(run.makespan, run.local_compute);
  EXPECT_GT(run.device_energy, Energy::zero());
  if (plan.partition.remote_count() > 0) {
    EXPECT_GT(run.remote_invocations, 0u);
  }
}

TEST(ParallelExec, ParallelNeverSlowerThanSequentialOnWorkloads) {
  for (const auto& g : app::workloads::all()) {
    Fixture seq(ExecutionMode::Sequential), par(ExecutionMode::Parallel);
    const auto sp = seq.controller.prepare(g, partition::MinCutPartitioner{});
    (void)seq.controller.execute(sp, g);
    const auto s = seq.controller.execute(sp, g);
    const auto pp = par.controller.prepare(g, partition::MinCutPartitioner{});
    (void)par.controller.execute(pp, g);
    const auto p = par.controller.execute(pp, g);
    EXPECT_LE(p.makespan, s.makespan) << g.name();
  }
}

TEST(ParallelExec, ConcurrentRunsComplete) {
  const auto g = wide_fanout();
  Fixture par(ExecutionMode::Parallel);
  const auto plan =
      par.controller.prepare(g, partition::RemoteAllPartitioner{});
  int done = 0;
  for (int i = 0; i < 4; ++i)
    par.controller.execute_async(plan, g,
                                 [&](const ExecutionReport&) { ++done; });
  par.sim.run();
  EXPECT_EQ(done, 4);
}

TEST(ParallelExec, CyclicGraphRejected) {
  app::TaskGraph g("cyclic");
  const auto a = g.add_component({"a", Cycles::mega(1), {}, {}, false, 0.8});
  const auto b = g.add_component({"b", Cycles::mega(1), {}, {}, false, 0.8});
  g.add_flow(a, b, DataSize::bytes(1));
  g.add_flow(b, a, DataSize::bytes(1));
  Fixture par(ExecutionMode::Parallel);
  DeploymentPlan plan;
  plan.partition = partition::Partition::all_local(2);
  plan.function_of.assign(2, DeploymentPlan::kInvalidFunction);
  plan.memory_of.assign(2, DataSize::zero());
  EXPECT_THROW(
      par.controller.execute_async(plan, g, [](const ExecutionReport&) {}),
      ConfigError);
}

}  // namespace
}  // namespace ntco::core
