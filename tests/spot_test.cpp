// Spot-tier semantics (discounted, preemptible capacity) and the
// spot-with-fallback retry policy of the deferred executor.

#include <gtest/gtest.h>

#include "ntco/common/error.hpp"
#include "ntco/sched/deferred_scheduler.hpp"
#include "ntco/serverless/platform.hpp"

namespace ntco {
namespace {

serverless::PlatformConfig spot_config(Duration mean_preempt) {
  serverless::PlatformConfig cfg;
  cfg.core_speed = Frequency::gigahertz(2.5);
  cfg.spot_price_multiplier = 0.3;
  cfg.spot_mean_time_to_preempt = mean_preempt;
  return cfg;
}

serverless::FunctionId deploy(serverless::Platform& p) {
  return p.deploy({"fn", DataSize::megabytes(1792), DataSize::megabytes(10)});
}

TEST(SpotTier, NeverPreemptedWhenDisabled) {
  sim::Simulator s;
  serverless::Platform p(s, spot_config(Duration::zero()));
  const auto fn = deploy(p);
  int preempted = 0;
  for (int i = 0; i < 50; ++i)
    p.invoke(fn, Cycles::giga(25),
             [&](const serverless::InvocationResult& r) {
               if (r.preempted) ++preempted;
               EXPECT_EQ(r.tier, serverless::Tier::Spot);
             },
             serverless::Tier::Spot);
  s.run();
  EXPECT_EQ(preempted, 0);
  EXPECT_EQ(p.stats().preemptions, 0u);
}

TEST(SpotTier, SpotIsCheaperThanOnDemand) {
  sim::Simulator s;
  serverless::Platform p(s, spot_config(Duration::zero()));
  const auto mem = DataSize::gigabytes(1);
  const auto spot = p.invocation_cost(mem, Duration::seconds(10),
                                      TimePoint::origin(),
                                      serverless::Tier::Spot);
  const auto od = p.invocation_cost(mem, Duration::seconds(10),
                                    TimePoint::origin(),
                                    serverless::Tier::OnDemand);
  // 0.3x on the execution part; the request fee is unchanged.
  const auto req = p.config().price_per_request;
  EXPECT_EQ((spot - req).count_nano_usd(),
            static_cast<std::int64_t>(
                std::llround(static_cast<double>((od - req).count_nano_usd()) *
                             0.3)));
}

TEST(SpotTier, LongJobsGetPreemptedAtRoughlyTheHazardRate) {
  sim::Simulator s;
  // Executions take 10 s; mean time to preempt 10 s => P(preempt) = 1-1/e.
  serverless::Platform p(s, spot_config(Duration::seconds(10)));
  const auto fn = deploy(p);
  int preempted = 0;
  const int n = 600;
  for (int i = 0; i < n; ++i)
    p.invoke(fn, Cycles::giga(25),
             [&](const serverless::InvocationResult& r) {
               if (r.preempted) {
                 ++preempted;
                 EXPECT_LT(r.exec_time, Duration::seconds(10));
               } else {
                 EXPECT_EQ(r.exec_time, Duration::seconds(10));
               }
             },
             serverless::Tier::Spot);
  s.run();
  EXPECT_NEAR(static_cast<double>(preempted) / n, 1.0 - std::exp(-1.0), 0.06);
  EXPECT_EQ(p.stats().preemptions, static_cast<std::uint64_t>(preempted));
}

TEST(SpotTier, OnDemandIsNeverPreempted) {
  sim::Simulator s;
  serverless::Platform p(s, spot_config(Duration::millis(1)));  // brutal
  const auto fn = deploy(p);
  int preempted = 0;
  for (int i = 0; i < 20; ++i)
    p.invoke(fn, Cycles::giga(25), [&](const serverless::InvocationResult& r) {
      if (r.preempted) ++preempted;
    });
  s.run();
  EXPECT_EQ(preempted, 0);
}

TEST(SpotTier, PreemptedInstanceDoesNotReturnWarm) {
  sim::Simulator s;
  serverless::Platform p(s, spot_config(Duration::millis(1)));
  const auto fn = deploy(p);
  bool was_preempted = false;
  p.invoke(fn, Cycles::giga(250),
           [&](const serverless::InvocationResult& r) {
             was_preempted = r.preempted;
           },
           serverless::Tier::Spot);
  s.run_until(TimePoint::origin() + Duration::seconds(30));
  ASSERT_TRUE(was_preempted);
  EXPECT_EQ(p.warm_count(fn), 0u);
  EXPECT_EQ(p.concurrency_in_use(), 0u);  // concurrency slot released
}

TEST(SpotTier, InvalidSpotConfigRejected) {
  sim::Simulator s;
  auto cfg = spot_config(Duration::seconds(1));
  cfg.spot_price_multiplier = 0.0;
  EXPECT_THROW(serverless::Platform(s, cfg), ConfigError);
  cfg = spot_config(Duration::seconds(1));
  cfg.spot_price_multiplier = 1.5;
  EXPECT_THROW(serverless::Platform(s, cfg), ConfigError);
}

TEST(SpotFallback, SavesMoneyWithoutMissingDeadlines) {
  auto run = [](sched::TierPolicy tier) {
    sim::Simulator s;
    // Executions ~100 s, preemption mean 300 s: retries are common.
    serverless::Platform p(s, spot_config(Duration::seconds(300)));
    const auto fn = deploy(p);
    sched::DeferredScheduler::Config cfg;
    cfg.policy = sched::Policy::Immediate;
    cfg.tier_policy = tier;
    sched::DeferredExecutor exec(s, p, fn,
                                 sched::DeferredScheduler(p, cfg));
    for (int i = 0; i < 40; ++i)
      s.schedule_at(TimePoint::origin() + Duration::minutes(10 * i), [&exec] {
        exec.submit(sched::DeferredJob{"j", Cycles::giga(250),
                                       Duration::hours(2)});
      });
    s.run();
    return exec.report();
  };

  const auto od = run(sched::TierPolicy::OnDemandOnly);
  const auto spot = run(sched::TierPolicy::SpotWithFallback);
  ASSERT_EQ(od.jobs, 40u);
  ASSERT_EQ(spot.jobs, 40u);
  EXPECT_EQ(od.deadline_misses, 0u);
  EXPECT_EQ(spot.deadline_misses, 0u);
  EXPECT_EQ(od.spot_attempts, 0u);
  EXPECT_GT(spot.spot_attempts, 0u);
  EXPECT_GT(spot.spot_preemptions, 0u);  // the hazard really fired
  // Even paying for wasted partial executions, spot wins clearly.
  EXPECT_LT(spot.total_cost, od.total_cost * 0.7);
}

TEST(SpotFallback, TightSlackStaysOnDemand) {
  sim::Simulator s;
  serverless::Platform p(s, spot_config(Duration::seconds(300)));
  const auto fn = deploy(p);
  sched::DeferredScheduler::Config cfg;
  cfg.policy = sched::Policy::Immediate;
  cfg.tier_policy = sched::TierPolicy::SpotWithFallback;
  cfg.fallback_safety = 2.0;
  sched::DeferredExecutor exec(s, p, fn, sched::DeferredScheduler(p, cfg));
  // 100 s job with 150 s slack: 2x safety margin is not available, so the
  // executor must go straight to on-demand.
  exec.submit(sched::DeferredJob{"tight", Cycles::giga(250),
                                 Duration::seconds(150)});
  s.run();
  EXPECT_EQ(exec.report().spot_attempts, 0u);
  EXPECT_EQ(exec.report().deadline_misses, 0u);
}

}  // namespace
}  // namespace ntco
