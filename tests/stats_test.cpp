#include <gtest/gtest.h>

#include <cmath>

#include "ntco/common/error.hpp"
#include "ntco/stats/accumulator.hpp"
#include "ntco/stats/histogram.hpp"
#include "ntco/stats/percentile.hpp"
#include "ntco/stats/table.hpp"

namespace ntco::stats {
namespace {

TEST(Accumulator, EmptyStateAndContracts) {
  Accumulator a;
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.count(), 0u);
  EXPECT_THROW((void)a.mean(), ContractViolation);
  EXPECT_THROW((void)a.min(), ContractViolation);
}

TEST(Accumulator, MomentsMatchDirectComputation) {
  Accumulator a;
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Accumulator, SingleObservationHasZeroVariance) {
  Accumulator a;
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.stderr_mean(), 0.0);
}

TEST(Accumulator, MergeEqualsPooled) {
  Accumulator lhs, rhs, pooled;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? lhs : rhs).add(x);
    pooled.add(x);
  }
  lhs.merge(rhs);
  EXPECT_EQ(lhs.count(), pooled.count());
  EXPECT_NEAR(lhs.mean(), pooled.mean(), 1e-12);
  EXPECT_NEAR(lhs.variance(), pooled.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(lhs.min(), pooled.min());
  EXPECT_DOUBLE_EQ(lhs.max(), pooled.max());
}

TEST(Accumulator, MergeWithEmptyIsIdentity) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Accumulator, RejectsNonFinite) {
  Accumulator a;
  EXPECT_THROW(a.add(std::nan("")), ContractViolation);
  EXPECT_THROW(a.add(INFINITY), ContractViolation);
}

TEST(PercentileSample, ExactQuantilesOnKnownData) {
  PercentileSample p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.min(), 1.0);
  EXPECT_DOUBLE_EQ(p.max(), 100.0);
  EXPECT_DOUBLE_EQ(p.median(), 50.5);
  EXPECT_NEAR(p.p95(), 95.05, 1e-9);
  EXPECT_DOUBLE_EQ(p.mean(), 50.5);
}

TEST(PercentileSample, InterpolatesBetweenPoints) {
  PercentileSample p;
  p.add(10.0);
  p.add(20.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.25), 12.5);
}

TEST(PercentileSample, SingleElement) {
  PercentileSample p;
  p.add(7.0);
  EXPECT_DOUBLE_EQ(p.median(), 7.0);
  EXPECT_DOUBLE_EQ(p.p99(), 7.0);
}

TEST(PercentileSample, AddAfterQueryResorts) {
  PercentileSample p;
  p.add(5.0);
  EXPECT_DOUBLE_EQ(p.max(), 5.0);
  p.add(9.0);
  p.add(1.0);
  EXPECT_DOUBLE_EQ(p.max(), 9.0);
  EXPECT_DOUBLE_EQ(p.min(), 1.0);
}

TEST(PercentileSample, MergeEqualsPooled) {
  PercentileSample lhs, rhs, pooled;
  for (int i = 0; i < 101; ++i) {
    const double x = std::cos(i) * 50.0;
    (i % 3 ? lhs : rhs).add(x);
    pooled.add(x);
  }
  lhs.merge(rhs);
  EXPECT_EQ(lhs.count(), pooled.count());
  EXPECT_DOUBLE_EQ(lhs.median(), pooled.median());
  EXPECT_DOUBLE_EQ(lhs.p95(), pooled.p95());
  EXPECT_DOUBLE_EQ(lhs.min(), pooled.min());
  EXPECT_DOUBLE_EQ(lhs.max(), pooled.max());
}

TEST(PercentileSample, MergeWithEmptyIsIdentity) {
  PercentileSample a, empty;
  a.add(3.0);
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.median(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.median(), 2.0);
}

TEST(PercentileSample, MergedQuantilesAreOrderIndependent) {
  // Three shards merged in two different groupings must agree exactly:
  // the pooled multiset, not the merge tree, determines every quantile.
  PercentileSample s1, s2, s3;
  for (int i = 0; i < 40; ++i) s1.add(std::sin(i) * 9.0);
  for (int i = 0; i < 25; ++i) s2.add(std::sin(100 + i) * 3.0);
  for (int i = 0; i < 33; ++i) s3.add(std::sin(200 + i) * 27.0);

  PercentileSample left;  // (s1 + s2) + s3
  left.merge(s1);
  left.merge(s2);
  left.merge(s3);
  PercentileSample right;  // s3 + (s2 + s1)
  right.merge(s3);
  right.merge(s2);
  right.merge(s1);
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(left.quantile(q), right.quantile(q)) << "q=" << q;
}

TEST(PercentileSample, SelfMergeDoublesEveryObservation) {
  // merge(*this) used to insert the vector into itself, which is UB the
  // moment growth reallocates out from under the source iterators.
  PercentileSample s;
  for (double x : {3.0, 1.0, 2.0}) s.add(x);
  s.merge(s);
  EXPECT_EQ(s.count(), 6u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  // Quantiles are those of the doubled multiset {1,1,2,2,3,3}.
  EXPECT_DOUBLE_EQ(s.quantile(0.2), 1.0);
}

TEST(PercentileSample, SelfMergeAfterSortedQueryStaysCorrect) {
  // The duplicated tail breaks sortedness (1,2 -> 1,2,1,2); a quantile
  // right after a self-merge must re-sort.
  PercentileSample s;
  s.add(2.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 1.5);  // forces the sorted state
  s.merge(s);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 2.0);
}

TEST(PercentileSample, ContractsOnEmptyAndBadQ) {
  PercentileSample p;
  EXPECT_THROW((void)p.median(), ContractViolation);
  p.add(1.0);
  EXPECT_THROW((void)p.quantile(1.5), ContractViolation);
  EXPECT_THROW((void)p.quantile(-0.1), ContractViolation);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.0);   // bin 0
  h.add(9.99);  // bin 9
  h.add(5.0);   // bin 5
  h.add(-1.0);  // underflow
  h.add(10.0);  // overflow (hi is exclusive)
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin(0), 1u);
  EXPECT_EQ(h.bin(5), 1u);
  EXPECT_EQ(h.bin(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, CdfIsMonotone) {
  Histogram h(0.0, 1.0, 4);
  for (double x : {0.1, 0.3, 0.6, 0.9}) h.add(x);
  double prev = 0.0;
  for (std::size_t i = 0; i < h.bin_count(); ++i) {
    const double c = h.cdf_at_bin(i);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

// cdf_at_bin is the CDF of the *in-range* mass only: out-of-range
// observations must shift nothing, and the last bin must read exactly 1
// whenever anything landed in range. (The old implementation mixed
// underflow into the numerator and all mass into the denominator, so
// overflow dragged the last bin below 1.)
TEST(Histogram, CdfIgnoresUnderflowOnly) {
  Histogram h(0.0, 4.0, 4);
  h.add(-1.0);  // underflow
  h.add(-5.0);  // underflow
  h.add(0.5);   // bin 0
  h.add(2.5);   // bin 2
  EXPECT_DOUBLE_EQ(h.cdf_at_bin(0), 0.5);
  EXPECT_DOUBLE_EQ(h.cdf_at_bin(1), 0.5);
  EXPECT_DOUBLE_EQ(h.cdf_at_bin(2), 1.0);
  EXPECT_DOUBLE_EQ(h.cdf_at_bin(3), 1.0);
}

TEST(Histogram, CdfIgnoresOverflowOnly) {
  Histogram h(0.0, 4.0, 4);
  h.add(7.0);  // overflow
  h.add(0.5);  // bin 0
  h.add(1.5);  // bin 1
  EXPECT_DOUBLE_EQ(h.cdf_at_bin(0), 0.5);
  EXPECT_DOUBLE_EQ(h.cdf_at_bin(1), 1.0);
  EXPECT_DOUBLE_EQ(h.cdf_at_bin(3), 1.0);
}

TEST(Histogram, CdfIgnoresMixedOutOfRangeMass) {
  Histogram h(0.0, 2.0, 2);
  h.add(-1.0);  // underflow
  h.add(5.0);   // overflow
  h.add(0.5);   // bin 0
  EXPECT_DOUBLE_EQ(h.cdf_at_bin(0), 1.0);
  EXPECT_DOUBLE_EQ(h.cdf_at_bin(1), 1.0);
}

TEST(Histogram, CdfIsZeroWhenNothingInRange) {
  Histogram h(0.0, 2.0, 2);
  h.add(-1.0);
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.cdf_at_bin(0), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf_at_bin(1), 0.0);
}

TEST(Histogram, MergeAddsCountsBinwise) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  a.add(1.0);   // bin 0
  a.add(-2.0);  // underflow
  b.add(1.5);   // bin 0
  b.add(9.0);   // bin 4
  b.add(11.0);  // overflow
  a.merge(b);
  EXPECT_EQ(a.total(), 5u);
  EXPECT_EQ(a.bin(0), 2u);
  EXPECT_EQ(a.bin(4), 1u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
}

TEST(Histogram, MergeWithEmptyIsIdentityBothWays) {
  Histogram a(0.0, 4.0, 4), empty(0.0, 4.0, 4);
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.total(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.total(), 1u);
  EXPECT_EQ(empty.bin(1), 1u);
}

TEST(Histogram, MergeIsGroupingIndependent) {
  const auto fill = [](Histogram& h, int seed) {
    for (int i = 0; i < 30; ++i)
      h.add(static_cast<double>((seed * 37 + i * 13) % 120) / 10.0);
  };
  Histogram s1(0.0, 10.0, 8), s2(0.0, 10.0, 8), s3(0.0, 10.0, 8);
  fill(s1, 1);
  fill(s2, 2);
  fill(s3, 3);
  Histogram left(0.0, 10.0, 8), right(0.0, 10.0, 8);
  left.merge(s1);
  left.merge(s2);
  left.merge(s3);
  right.merge(s3);
  right.merge(s1);
  right.merge(s2);
  for (std::size_t i = 0; i < left.bin_count(); ++i)
    EXPECT_EQ(left.bin(i), right.bin(i));
  EXPECT_EQ(left.overflow(), right.overflow());
  EXPECT_EQ(left.total(), right.total());
}

TEST(Histogram, MergeRejectsMismatchedGeometry) {
  Histogram a(0.0, 10.0, 5);
  EXPECT_THROW(a.merge(Histogram(0.0, 10.0, 6)), ContractViolation);
  EXPECT_THROW(a.merge(Histogram(0.0, 12.0, 5)), ContractViolation);
  EXPECT_THROW(a.merge(Histogram(-1.0, 10.0, 5)), ContractViolation);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string s = h.render(10);
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_NE(s.find("2"), std::string::npos);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.set_title("demo");
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.render();
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22222 |"), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_csv(), "a,b\n1,2\n");
}

TEST(Table, RowArityIsChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, CellFormatting) {
  EXPECT_EQ(cell(3.14159, 2), "3.14");
  EXPECT_EQ(cell(2.0, 0), "2");
  EXPECT_EQ(cell_pct(0.256, 1), "25.6%");
}

}  // namespace
}  // namespace ntco::stats
