// R7 fixture registry: one live trace, one live counter, one dead row,
// and a deliberately duplicated name.
#pragma once

#define NTCO_OBS_NAME(ident, kind, name, fields) \
  inline constexpr const char* ident = name;

namespace ntco::obs::names {

NTCO_OBS_NAME(kDemoEvent, trace, "demo.event", "`id`")
NTCO_OBS_NAME(kDemoJobs, counter, "demo.jobs", "jobs admitted")
NTCO_OBS_NAME(kDemoDead, counter, "demo.dead", "registered, never emitted")
NTCO_OBS_NAME(kDemoDupA, trace, "demo.dup", "first row")
NTCO_OBS_NAME(kDemoDupB, trace, "demo.dup", "second row carries the finding")

}  // namespace ntco::obs::names
