// R7 fixture: an unregistered name and a kind mismatch.

namespace ntco::demo {

template <typename Sink, typename Metrics, typename Clock>
void emit_bad(Sink* trace, Metrics& m, Clock now) {
  obs::emit(trace, now, "demo.typo", {});
  m.gauge("demo.jobs").set(1.0);
}

}  // namespace ntco::demo
