// R7 fixture: an unregistered name, deliberately kept under an allow.

namespace ntco::demo {

template <typename Sink, typename Clock>
void emit_prototype(Sink* trace, Clock now) {
  // ntco-lint: allow(R7) fixture: prototype name, registry row lands with the real emitter
  obs::emit(trace, now, "demo.unregistered", {});
}

}  // namespace ntco::demo
