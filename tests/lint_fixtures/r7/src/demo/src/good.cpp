// R7 fixture: every name used here is registered with the matching kind.

namespace ntco::demo {

template <typename Sink, typename Metrics, typename Clock>
void emit_good(Sink* trace, Metrics& m, Clock now) {
  obs::emit(trace, now, "demo.event", {});
  m.counter("demo.jobs").add();
  obs::emit(trace, now, "demo.dup", {});
}

}  // namespace ntco::demo
