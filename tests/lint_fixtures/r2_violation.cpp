// Fixture: R2 violations — iterating an unordered container lets hash
// order leak into results. Covers range-for (with a structured binding and
// a qualified loop-variable type) and an explicit iterator for-loop.
#include <string>
#include <unordered_map>
#include <unordered_set>

double total_latency(const std::unordered_map<std::string, double>& by_user) {
  double sum = 0.0;
  for (const auto& [user, lat] : by_user) sum += lat;  // line 10: R2
  return sum;
}

int count_even(const std::unordered_set<int>& seen) {
  int n = 0;
  for (const int& v : seen) n += v % 2 == 0 ? 1 : 0;  // line 16: R2
  return n;
}

double sum_iter(const std::unordered_map<int, double>& weights) {
  double sum = 0.0;
  for (auto it = weights.begin(); it != weights.end(); ++it)  // line 22: R2
    sum += it->second;
  return sum;
}
