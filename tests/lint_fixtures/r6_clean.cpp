// R6 fixture, clean: pre-sizing outside the region, reuse inside it, and
// one reasoned allow for a deliberate amortized growth.
#include <vector>

void prep(std::vector<int>& v) {
  v.reserve(64);  // growth before the hot region opens is fine
}

// ntco-lint: hotpath begin
void serve(std::vector<int>& v, int x) {
  v[0] = x;  // writes into pre-sized storage
  int scratch[4] = {x, x, x, x};
  (void)scratch;
  v.push_back(x);  // ntco-lint: allow(R6) fixture: amortized growth is deliberate here
}
// ntco-lint: hotpath end
