// R9 fixture: handler captures that copy allocating types or defeat the
// 48-byte InlineFunction SBO.
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

void arm(Sim& sim, TimePoint t) {
  std::string name = "job";
  std::vector<int> work;
  sim.schedule_at(t, [name, work] {  // copies: 32 + 24 = 56 > 48
    consume(name, work);
  });
}

void arm_wide(Sim& sim, Duration d) {
  std::uint64_t a = 0, b = 0, c = 0, e = 0, f = 0, g = 0, h = 0;
  sim.schedule_after(d, [a, b, c, e, f, g, h] {  // 7 * 8 = 56 > 48
    consume(a + b + c + e + f + g + h);
  });
}

void arm_moved(Sim& sim, TimePoint t) {
  std::deque<int> backlog;
  sim.schedule_at(t, [q = std::move(backlog)] {  // moved in, but 80 bytes
    consume(q);
  });
}
