// R8 fixture: the .cpp leans on its associated header's re-export of
// widget.hpp — IWYU's associated-header exemption.
#include "ntco/app/gadget.hpp"

namespace ntco::app {

int gadget_weight(const app::Widget& w, const Gadget& g) {
  return g.core.weight() + w.weight();
}

}  // namespace ntco::app
