// R8 fixture: the header whose include edges the consumers get right or
// wrong.
#pragma once

namespace ntco::app {

class Widget {
 public:
  int weight() const { return 42; }
};

}  // namespace ntco::app
