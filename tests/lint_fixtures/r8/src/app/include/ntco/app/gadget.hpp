// R8 fixture: associated header — re-exports widget.hpp for gadget.cpp.
#pragma once

#include "ntco/app/widget.hpp"

namespace ntco::app {

struct Gadget {
  Widget core;
};

}  // namespace ntco::app
