// strip_code fixture: the digit separator inside 16'667 and the u8 char
// literal below must not derail the stripper — otherwise Tuned is never
// collected and tuned_user.cpp's include reads as stale.
#pragma once

namespace ntco::app {

inline long nano_per_frame() { return 16'667; }

inline constexpr char kGlyph = u8'x';

struct Tuned {
  long period = nano_per_frame();
};

}  // namespace ntco::app
