// R8 fixture: includes the widget header but never touches Widget.
#include "ntco/app/widget.hpp"

namespace ntco::core {

int nothing_from_widget() { return 7; }

}  // namespace ntco::core
