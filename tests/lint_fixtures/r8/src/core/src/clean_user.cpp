// R8 fixture: direct include, symbol used — hygienic.
#include "ntco/app/widget.hpp"

namespace ntco::core {

int weigh(const app::Widget& w) { return w.weight(); }

}  // namespace ntco::core
