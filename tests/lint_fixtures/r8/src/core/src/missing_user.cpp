// R8 fixture: names app::Widget with no include and no forward
// declaration in sight.

namespace ntco::core {

int use_widget(const app::Widget& w) { return w.weight(); }

}  // namespace ntco::core
