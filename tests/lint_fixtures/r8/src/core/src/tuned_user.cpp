// R8 fixture: hygienic include of the digit-separator header — only clean
// if the stripper kept 16'667 and u8'x' intact.
#include "ntco/app/tuned.hpp"

namespace ntco::core {

long tuned_period(const app::Tuned& t) { return t.period; }

}  // namespace ntco::core
