// R8 fixture: a deliberately kept include, suppressed with a reason.
// ntco-lint: allow(R8) fixture: compile anchor include kept on purpose
#include "ntco/app/widget.hpp"

namespace ntco::core {

int anchored() { return 1; }

}  // namespace ntco::core
