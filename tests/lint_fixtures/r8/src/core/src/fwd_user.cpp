// R8 fixture: a namespace-scope forward declaration satisfies pointer
// uses (IWYU's fwd-decl escape), so no include is required.

namespace ntco::app {
class Widget;
}  // namespace ntco::app

namespace ntco::core {

int count_widgets(const app::Widget* w) { return w == nullptr ? 0 : 1; }

}  // namespace ntco::core
