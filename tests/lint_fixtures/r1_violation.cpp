// Fixture: R1 violations — wall clocks, process env, and ad-hoc RNG in a
// result path. Each banned construct sits on its own line so the test can
// assert exact line numbers. NOT compiled; scanned by lint_test only.
#include <chrono>
#include <cstdlib>
#include <random>

double jittered_latency(double base) {
  std::random_device entropy;                              // line 9: R1
  const auto wall = std::chrono::system_clock::now();      // line 10: R1
  const auto tick = std::chrono::steady_clock::now();      // line 11: R1
  const char* override_ms = std::getenv("FAKE_LATENCY");   // line 12: R1
  const int noise = std::rand();                           // line 13: R1
  (void)wall;
  (void)tick;
  (void)override_ms;
  return base + static_cast<double>(entropy() + static_cast<unsigned>(noise));
}
