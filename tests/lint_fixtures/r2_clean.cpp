// Fixture: R2 clean variant — declaration, point lookup, and *sorted
// extraction* of an unordered container are all legal; only iteration in
// hash order is banned. Also proves range-for over an ordered vector does
// not trip the rule.
#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

bool seen_before(std::unordered_set<int>& seen, int id) {
  if (seen.count(id) != 0) return true;
  seen.insert(id);
  return false;
}

// Sorted extraction: copy out (begin() outside a for header), then sort.
std::vector<int> ordered_ids(const std::unordered_set<int>& seen) {
  std::vector<int> ids(seen.begin(), seen.end());
  std::sort(ids.begin(), ids.end());
  return ids;
}

double total(const std::unordered_map<int, double>& by_id,
             const std::vector<int>& order) {
  double sum = 0.0;
  for (const int id : order) sum += 1.0;  // ordered source: fine
  (void)by_id;
  return sum;
}
