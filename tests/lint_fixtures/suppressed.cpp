// Fixture: valid inline suppressions. Both placements are honoured — on
// the violating line itself, and on the line directly above it — and each
// carries the mandatory reason, so the report records two suppressions and
// zero diagnostics.
#include <unordered_set>

int census(const std::unordered_set<int>& members) {
  int n = 0;
  for (const int m : members) n += 1;  // ntco-lint: allow(R2) membership census is order-insensitive
  // ntco-lint: allow(R2) second census, same order-insensitive argument
  for (const int m2 : members) n += 1;
  return n;
}
