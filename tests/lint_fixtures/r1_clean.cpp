// Fixture: R1 clean variant — the same job done the sanctioned way: time
// from the simulator clock, randomness from ntco::Rng, and names that only
// *look* like banned tokens (exec_time(), a runtime_ suffix) to prove the
// identifier-boundary matching does not over-fire. Comments may legally
// mention std::random_device and steady_clock without tripping the rule.
#include <cstdint>

struct FakeRng {
  std::uint64_t state = 1;
  double uniform(double lo, double hi) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return lo + (hi - lo) * static_cast<double>(state >> 11) * 0x1.0p-53;
  }
};

struct FakeClock {
  double now_s = 0.0;
  double now() const { return now_s; }
};

double exec_time(double work) { return work * 2.0; }

double jittered_latency(FakeRng& rng, const FakeClock& sim, double base) {
  const double runtime_ = exec_time(base);
  return base + rng.uniform(0.0, 1.0) + sim.now() + runtime_;
}
