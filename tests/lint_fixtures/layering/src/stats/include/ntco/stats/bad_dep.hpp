#pragma once

// Fixture: R4 back-edge — stats is a leaf-adjacent layer and must never
// reach up into core (core depends on stats transitively via obs).
#include "ntco/core/controller.hpp"

namespace ntco::stats {
inline int uses_controller() { return 1; }
}  // namespace ntco::stats
