#pragma once

// Fixture: R4 back-edge from the bottom layer — common may depend on
// nothing, so an include of stats is a layering violation, and an include
// of a module absent from the declared DAG is its own R4 diagnostic.
#include "ntco/stats/histogram.hpp"
#include "ntco/mystery/widget.hpp"

namespace ntco::common {
inline int uses_stats() { return 1; }
}  // namespace ntco::common
