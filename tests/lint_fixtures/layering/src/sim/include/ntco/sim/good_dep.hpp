#pragma once

// Fixture: R4 clean variant — sim declares a direct dep on obs, and common
// is reachable through obs -> stats -> common, so both includes are
// forward edges. Same-module includes are always legal.
#include "ntco/common/units.hpp"
#include "ntco/obs/trace.hpp"
#include "ntco/sim/server_pool.hpp"

namespace ntco::sim {
inline int layered_fine() { return 1; }
}  // namespace ntco::sim
