// strip_code fixture: raw strings with non-empty delimiters must be
// blanked without ending at a lookalike ')x"' terminator.

const char* kDoc = R"doc(
std::random_device prose;  // inside the raw string: must not fire
auto t = std::chrono::system_clock::now();
)doc";

const char* kTricky = R"ab(an early )a" does not close this)ab";

const char* kEmpty = R"(std::rand() and getenv("X") stay quiet too)";

int real_violation() {
  std::random_device rd;  // the stripper recovered: this one fires
  return rd();
}
