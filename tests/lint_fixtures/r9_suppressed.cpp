// R9 fixture: an oversized copying capture, deliberately kept — one
// directive must absorb all three findings on the call line.
#include <string>
#include <vector>

void arm(Sim& sim, TimePoint t) {
  std::string name = "job";
  std::vector<int> work;
  // ntco-lint: allow(R9) fixture: handler owns both by design; the heap hop is accepted
  sim.schedule_at(t, [name, work] { consume(name, work); });
}
