// Fixture: R3 violations — threading primitives outside src/fleet/. The
// fleet layer owns all concurrency; ad-hoc threads elsewhere would race
// the deterministic shard-ordered reduction.
#include <atomic>
#include <mutex>
#include <thread>

int racy_counter() {
  std::atomic<int> hits{0};                       // line 9: R3
  std::mutex mu;                                  // line 10: R3
  std::thread worker([&] { hits.fetch_add(1); }); // line 11: R3
  {
    std::lock_guard<std::mutex> lock(mu);         // line 13: R3
  }
  worker.join();
  return hits.load();
}
