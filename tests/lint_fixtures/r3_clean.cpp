// Fixture: R3 clean variant — single-threaded code whose identifiers
// merely resemble threading vocabulary (a member named thread_count, a
// type named Mutex in prose) must not trip the token matcher.
#include <cstddef>

struct PoolConfig {
  // Comments may mention std::thread and std::mutex freely.
  std::size_t thread_count = 4;
  bool atomic_commits = true;  // "atomic" as a plain word, not std::atomic
};

std::size_t plan_shards(const PoolConfig& cfg, std::size_t shards) {
  return shards / (cfg.thread_count == 0 ? 1 : cfg.thread_count);
}
