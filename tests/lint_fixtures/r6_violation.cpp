// R6 fixture: allocation bans apply only inside the marked hot region.
#include <functional>
#include <memory>
#include <vector>

void setup(std::vector<int>& v) {
  v.push_back(1);  // outside the region: legal
}

// ntco-lint: hotpath begin
void serve(std::vector<int>& v) {
  int* p = new int(7);
  v.push_back(*p);
  auto s = std::make_shared<int>(3);
  std::function<void()> g;
  v.resize(9);
  (void)s;
  (void)g;
}
// ntco-lint: hotpath end

void teardown(std::vector<int>& v) {
  v.push_back(2);  // after the region closes: legal again
}
