// Fixture: R5 violations — `+=` accumulation of values read out of an
// unordered container. Even when the *loop* runs in a deterministic order,
// the rule fails closed on unordered-container reads feeding a float sum
// (operator[] and .at() forms both flagged).
#include <unordered_map>
#include <vector>

double weighted(const std::vector<int>& keys,
                std::unordered_map<int, double>& weights) {
  double acc = 0.0;
  for (const int k : keys) acc += weights[k];     // line 11: R5
  double bias = 0.0;
  bias += weights.at(0);                          // line 13: R5
  return acc + bias;
}
