// Fixture: R5 clean variant — accumulating from ordered sources (a vector
// subscript, a plain variable) and non-accumulating unordered reads
// (assignment, comparison) are all legal.
#include <unordered_map>
#include <vector>

double weighted(const std::vector<double>& weights,
                const std::unordered_map<int, double>& lookup) {
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) acc += weights[i];
  const double first = lookup.at(0);  // read without accumulation: fine
  return acc + first;
}
