// R9 fixture, clean: moves, references, and small scalars keep the
// handler inside the SBO.
#include <string>
#include <vector>

void arm(Sim& sim, TimePoint t) {
  std::string name = "job";
  std::vector<int> work;
  sim.schedule_at(t, [name = std::move(name), &work] {  // 32 + 8 = 40
    consume(name, work);
  });
}

void arm_small(Sim& sim, Duration d) {
  int a = 1;
  double b = 2.0;
  sim.schedule_after(d, [a, b] { consume(a + b); });
}
