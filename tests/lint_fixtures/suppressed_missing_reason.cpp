// Fixture: a suppression without its mandatory reason fails closed — the
// directive itself becomes a [sup] diagnostic AND the R2 it tried to cover
// still fires.
#include <unordered_set>

int census(const std::unordered_set<int>& members) {
  int n = 0;
  for (const int m : members) n += 1;  // ntco-lint: allow(R2)
  return n;
}
