// Suppression-staleness fixture: this allow silences nothing.

int fine() {
  // ntco-lint: allow(R2) fixture: nothing here actually violates R2
  return 1;
}
