// Fixture: pre-existing debt covered by a baseline entry. The baseline
// fingerprint is line-number-free, so editing elsewhere in this file must
// not invalidate it.
#include <cstdlib>

int legacy_jitter() {
  return std::rand();  // R1, absorbed by the baseline
}
