// Fixture: NEW debt added after the baseline was written — a second
// nondeterminism source the baseline does not absorb, so the lint must
// fail even though old_debt.cpp still passes.
#include <random>

unsigned fresh_entropy() {
  std::random_device rd;  // R1, not in the baseline
  return rd();
}
