#include "ntco/common/inline_function.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "ntco/common/error.hpp"

namespace ntco {
namespace {

using Fn = InlineFunction<int(int), 48>;

TEST(InlineFunction, DefaultIsEmptyAndComparesToNullptr) {
  Fn f;
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_TRUE(f == nullptr);
  EXPECT_FALSE(f != nullptr);
  Fn g = nullptr;
  EXPECT_TRUE(g == nullptr);
}

TEST(InlineFunction, InvokesStoredCallable) {
  Fn f = [](int x) { return x + 1; };
  EXPECT_TRUE(f != nullptr);
  EXPECT_EQ(f(41), 42);
}

TEST(InlineFunction, SmallCaptureIsStoredInline) {
  int base = 40;
  Fn f = [&base](int x) { return base + x; };
  EXPECT_TRUE(f.is_inline());
  EXPECT_EQ(f(2), 42);
}

TEST(InlineFunction, OversizedCaptureFallsBackToHeap) {
  struct Big {
    unsigned char bytes[64];
  };
  Big big{};
  big.bytes[0] = 9;
  Fn f = [big](int x) { return big.bytes[0] + x; };
  EXPECT_FALSE(f.is_inline());
  EXPECT_EQ(f(1), 10);
}

TEST(InlineFunction, MoveTransfersOwnershipAndEmptiesSource) {
  Fn f = [](int x) { return x * 2; };
  Fn g = std::move(f);
  EXPECT_TRUE(f == nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(g(21), 42);
  Fn h;
  h = std::move(g);
  EXPECT_TRUE(g == nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(h(21), 42);
}

TEST(InlineFunction, MoveOnlyCapturesAreAccepted) {
  auto p = std::make_unique<int>(40);
  InlineFunction<int(), 48> f = [p = std::move(p)] { return *p + 2; };
  EXPECT_EQ(f(), 42);
  InlineFunction<int(), 48> g = std::move(f);
  EXPECT_EQ(g(), 42);
}

TEST(InlineFunction, ResetDestroysCapturesImmediately) {
  auto token = std::make_shared<int>(1);
  InlineFunction<int(), 48> f = [token] { return *token; };
  EXPECT_EQ(token.use_count(), 2);
  f.reset();
  EXPECT_EQ(token.use_count(), 1);
  EXPECT_TRUE(f == nullptr);
}

TEST(InlineFunction, HeapStoredCapturesAreDestroyedOnce) {
  struct Big {
    std::shared_ptr<int> token;
    unsigned char pad[64];
  };
  auto token = std::make_shared<int>(5);
  {
    InlineFunction<int(), 48> f = [big = Big{token, {}}] {
      return *big.token;
    };
    EXPECT_FALSE(f.is_inline());
    EXPECT_EQ(token.use_count(), 2);
    EXPECT_EQ(f(), 5);
    InlineFunction<int(), 48> g = std::move(f);
    EXPECT_EQ(token.use_count(), 2);  // relocation is a pointer move
    EXPECT_EQ(g(), 5);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineFunction, ThrowingMoveTypesGoToHeapSoWrapperMovesStayNoexcept) {
  struct ThrowingMove {
    ThrowingMove() = default;
    ThrowingMove(const ThrowingMove&) = default;
    ThrowingMove(ThrowingMove&&) noexcept(false) {}
    int operator()(int x) const { return x; }
  };
  static_assert(!Fn::stores_inline<ThrowingMove>());
  static_assert(std::is_nothrow_move_constructible_v<Fn>);
  Fn f = ThrowingMove{};
  EXPECT_FALSE(f.is_inline());
  EXPECT_EQ(f(3), 3);
}

TEST(InlineFunction, NullptrAssignmentClears) {
  Fn f = [](int x) { return x; };
  f = nullptr;
  EXPECT_TRUE(f == nullptr);
}

TEST(InlineFunction, InvokingEmptyViolatesContract) {
  Fn f;
  EXPECT_THROW((void)f(1), ContractViolation);
}

}  // namespace
}  // namespace ntco
