// Edge cases across modules that the per-module suites do not cover.

#include <gtest/gtest.h>

#include "ntco/app/workloads.hpp"
#include "ntco/common/error.hpp"
#include "ntco/partition/partitioners.hpp"
#include "ntco/serverless/platform.hpp"
#include "ntco/sim/simulator.hpp"

namespace ntco {
namespace {

TEST(SimulatorEdge, CancelFromWithinASimultaneousHandler) {
  // Two events at the same timestamp; the first cancels the second.
  sim::Simulator sim;
  bool second_fired = false;
  sim::EventId second = 0;
  sim.schedule_after(Duration::millis(1), [&] { sim.cancel(second); });
  second = sim.schedule_after(Duration::millis(1),
                              [&] { second_fired = true; });
  sim.run();
  EXPECT_FALSE(second_fired);
}

TEST(SimulatorEdge, HandlerExceptionPropagatesAndStateStaysSane) {
  sim::Simulator sim;
  sim.schedule_after(Duration::millis(1),
                     [] { throw Error("handler blew up"); });
  sim.schedule_after(Duration::millis(2), [] {});
  EXPECT_THROW(sim.run(), Error);
  // The failed event was consumed; the remaining one still runs.
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.run(), 1u);
}

TEST(SimulatorEdge, ManySimultaneousCancellationsKeepPendingAccurate) {
  sim::Simulator sim;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 100; ++i)
    ids.push_back(sim.schedule_after(Duration::millis(5), [] {}));
  for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
  EXPECT_EQ(sim.pending(), 50u);
  EXPECT_EQ(sim.run(), 50u);
}

TEST(PlatformEdge, RedeployPreservesProvisionedTarget) {
  sim::Simulator sim;
  serverless::Platform p(sim, {});
  const auto id = p.deploy({"fn", DataSize::megabytes(512),
                            DataSize::megabytes(10)});
  p.set_provisioned_concurrency(id, 3);
  EXPECT_EQ(p.warm_count(id), 3u);
  p.redeploy(id, {"fn-v2", DataSize::megabytes(1024),
                  DataSize::megabytes(12)});
  // The new version keeps the provisioned capacity commitment.
  EXPECT_EQ(p.warm_count(id), 3u);
  int colds = 0;
  for (int i = 0; i < 3; ++i)
    p.invoke(id, Cycles::giga(1), [&](const serverless::InvocationResult& r) {
      if (r.cold_start) ++colds;
    });
  sim.run_until(TimePoint::origin() + Duration::minutes(1));
  EXPECT_EQ(colds, 0);
}

TEST(PlatformEdge, ProvisionedInstancesCountTowardAccountConcurrency) {
  sim::Simulator sim;
  serverless::PlatformConfig cfg;
  cfg.account_concurrency = 2;
  serverless::Platform p(sim, cfg);
  const auto id = p.deploy({"fn", DataSize::megabytes(512),
                            DataSize::megabytes(10)});
  p.set_provisioned_concurrency(id, 2);
  int done = 0;
  for (int i = 0; i < 4; ++i)
    p.invoke(id, Cycles::giga(5),
             [&](const serverless::InvocationResult&) { ++done; });
  EXPECT_EQ(p.concurrency_in_use(), 2u);
  sim.run_until(TimePoint::origin() + Duration::minutes(5));
  EXPECT_EQ(done, 4);
  EXPECT_EQ(p.stats().peak_concurrency, 2u);
}

TEST(PlatformEdge, ShrinkingProvisionedPoolWhileBusyRetiresOnCompletion) {
  sim::Simulator sim;
  serverless::Platform p(sim, {});
  const auto id = p.deploy({"fn", DataSize::megabytes(512),
                            DataSize::megabytes(10)});
  p.set_provisioned_concurrency(id, 2);
  // Occupy both provisioned instances, then drop the target to zero.
  p.invoke(id, Cycles::giga(5), [](const serverless::InvocationResult&) {});
  p.invoke(id, Cycles::giga(5), [](const serverless::InvocationResult&) {});
  EXPECT_EQ(p.warm_count(id), 0u);
  p.set_provisioned_concurrency(id, 0);
  sim.run_until(TimePoint::origin() + Duration::minutes(1));
  // The busy instances retired instead of returning to the pool.
  EXPECT_EQ(p.warm_count(id), 0u);
}

TEST(PlatformEdge, ZeroWorkInvocationStillBillsTheQuantumAndRequest) {
  sim::Simulator sim;
  serverless::Platform p(sim, {});
  const auto id = p.deploy({"fn", DataSize::megabytes(512),
                            DataSize::megabytes(10)});
  Money cost;
  p.invoke(id, Cycles::zero(),
           [&](const serverless::InvocationResult& r) { cost = r.cost; });
  sim.run_until(TimePoint::origin() + Duration::minutes(1));
  const auto expected = p.invocation_cost(DataSize::megabytes(512),
                                          Duration::zero(),
                                          TimePoint::origin());
  EXPECT_EQ(cost, expected);
  EXPECT_GT(cost, Money::zero());  // request fee + one billing quantum
}

TEST(CostModelEdge, EgressMoneyAppearsOnlyOnDownloads) {
  const auto g = app::workloads::ml_batch_training();
  partition::Environment env;
  env.device = device::budget_phone();
  env.egress_price_per_gb = Money::from_usd(0.09);
  const partition::CostModel model(g, env, partition::Objective::cost());

  // Offload only 'train' (component 2): its in-flow uploads are free of
  // egress; its out-flows to local components pay egress on download.
  auto p = partition::Partition::all_local(g.component_count());
  p.placement[2] = partition::Placement::Remote;
  const auto b = model.breakdown(p);
  // Downloads: train->validate (8 MB) and train->compress (8 MB), plus
  // train's remote compute cost.
  const double egress_usd = 0.09 * 16e6 / 1e9;
  const double compute_usd =
      env.remote_price_per_second.to_usd() *
          (g.component(2).work / env.remote_speed).to_seconds() +
      env.price_per_invocation.to_usd();
  EXPECT_NEAR(b.money.to_usd(), egress_usd + compute_usd, 1e-6);
}

TEST(CostModelEdge, ZeroWeightObjectiveIsDegenerateButValid) {
  const auto g = app::workloads::photo_backup();
  partition::Environment env;
  env.device = device::budget_phone();
  const partition::CostModel model(g, env, partition::Objective{0, 0, 0});
  // Every partition scores zero; min-cut must still return a valid one.
  const auto plan = partition::MinCutPartitioner().plan(model);
  EXPECT_TRUE(plan.respects_pins(g));
  EXPECT_DOUBLE_EQ(model.evaluate(plan), 0.0);
}

TEST(WorkloadEdge, ScalingByHugeFactorDoesNotOverflow) {
  const auto g = app::workloads::photo_backup().with_work_scaled(1000.0);
  EXPECT_EQ(g.total_work(), Cycles::giga(17'680));
  const device::Device ue(device::budget_phone());
  EXPECT_GT(ue.exec_time(g.total_work()), Duration::hours(3));
}

}  // namespace
}  // namespace ntco
