// Mobility schedules, the schedule-following MobileLink, and the
// WiFi-wait upload planner.

#include <gtest/gtest.h>

#include "ntco/common/error.hpp"
#include "ntco/net/mobility.hpp"
#include "ntco/sched/upload_planner.hpp"
#include "ntco/sim/simulator.hpp"

namespace ntco {
namespace {

TimePoint at_hours(double h) {
  return TimePoint::origin() + Duration::from_seconds(h * 3600.0);
}

TEST(MobilitySchedule, CommuterDayPhases) {
  const auto sched = net::MobilitySchedule::commuter_day();
  EXPECT_EQ(sched.cycle_length(), Duration::hours(24));
  EXPECT_EQ(sched.phase_count(), 5u);
  EXPECT_EQ(sched.phase_at(at_hours(3)).tech.name, "WiFi");     // home
  EXPECT_EQ(sched.phase_at(at_hours(8.5)).tech.name, "4G");     // commute
  EXPECT_EQ(sched.phase_at(at_hours(12)).tech.name, "WiFi");    // office
  EXPECT_EQ(sched.phase_at(at_hours(17.5)).tech.name, "4G");    // commute
  EXPECT_EQ(sched.phase_at(at_hours(22)).tech.name, "WiFi");    // home
  // Cellular is metered, WiFi free.
  EXPECT_GT(sched.phase_at(at_hours(8.5)).data_price_per_gb, Money::zero());
  EXPECT_TRUE(sched.phase_at(at_hours(12)).data_price_per_gb.is_zero());
}

TEST(MobilitySchedule, WrapsAcrossDays) {
  const auto sched = net::MobilitySchedule::commuter_day();
  EXPECT_EQ(sched.phase_at(at_hours(24 + 8.5)).tech.name, "4G");
  EXPECT_EQ(sched.phase_at(at_hours(48 + 3)).tech.name, "WiFi");
}

TEST(MobilitySchedule, RemainingInPhase) {
  const auto sched = net::MobilitySchedule::commuter_day();
  EXPECT_EQ(sched.remaining_in_phase(at_hours(8.5)), Duration::minutes(30));
  EXPECT_EQ(sched.remaining_in_phase(TimePoint::origin()),
            Duration::hours(8));
}

TEST(MobilitySchedule, NextMatchingFindsCurrentAndFuturePhases) {
  const auto sched = net::MobilitySchedule::commuter_day();
  const auto is_free = [](const net::ConnectivityPhase& p) {
    return p.data_price_per_gb.is_zero();
  };
  // Already on WiFi: now.
  EXPECT_EQ(sched.next_matching(at_hours(3), is_free), at_hours(3));
  // On the commute: the office WiFi starts at 09:00.
  EXPECT_EQ(sched.next_matching(at_hours(8.25), is_free), at_hours(9));
  // Nothing matches an impossible predicate.
  EXPECT_FALSE(sched
                   .next_matching(at_hours(0),
                                  [](const net::ConnectivityPhase&) {
                                    return false;
                                  })
                   .has_value());
}

TEST(MobilitySchedule, RejectsMalformedSchedules) {
  EXPECT_THROW(net::MobilitySchedule({}), ConfigError);
  EXPECT_THROW(net::MobilitySchedule(
                   {{net::profile_4g(), Duration::zero(), Money::zero()}}),
               ConfigError);
}

TEST(MobileLink, FollowsTheSimClock) {
  const auto sched = net::MobilitySchedule::commuter_day();
  sim::Simulator sim;
  net::MobileLink up(sched, /*uplink=*/true, [&sim] { return sim.now(); });

  // At t=0 (home WiFi): 40 Mb/s uplink.
  EXPECT_EQ(up.sample_rate(), net::profile_wifi().uplink);
  EXPECT_EQ(up.current_tech(), "WiFi");
  // Advance to the commute: 10 Mb/s 4G, metered.
  sim.schedule_at(at_hours(8.5), [] {});
  sim.run();
  EXPECT_EQ(up.sample_rate(), net::profile_4g().uplink);
  EXPECT_EQ(up.current_tech(), "4G");
  EXPECT_GT(up.current_data_price_per_gb(), Money::zero());
}

TEST(MobileLink, TransferTimeUsesPhaseRate) {
  const auto sched = net::MobilitySchedule::commuter_day();
  sim::Simulator sim;
  net::MobileLink up(sched, true, [&sim] { return sim.now(); });
  const auto on_wifi = up.transfer_time(DataSize::megabytes(10));
  sim.schedule_at(at_hours(8.5), [] {});
  sim.run();
  const auto on_4g = up.transfer_time(DataSize::megabytes(10));
  EXPECT_LT(on_wifi, on_4g);  // WiFi is 4x faster uplink
}

// ---------------------------------------------------------------- planner

sched::UploadPlanner make_planner(
    sched::UploadPlanner::Policy policy, const net::MobilitySchedule& sched,
    double energy_weight = 0.0) {
  sched::UploadPlanner::Config cfg;
  cfg.policy = policy;
  cfg.energy_weight_per_joule = energy_weight;
  return sched::UploadPlanner(sched, device::budget_phone(), cfg);
}

TEST(UploadPlanner, ImmediatePolicyIgnoresConnectivity) {
  const auto sched = net::MobilitySchedule::commuter_day();
  const auto planner =
      make_planner(sched::UploadPlanner::Policy::Immediate, sched);
  const sched::UploadJob job{"photos", DataSize::megabytes(500),
                             Duration::hours(12)};
  const auto d = planner.plan(at_hours(8.25), job);  // on the commute
  EXPECT_EQ(d.start, at_hours(8.25));
  EXPECT_EQ(d.tech, "4G");
  EXPECT_NEAR(d.data_cost.to_usd(), 4.0 * 0.5, 1e-6);  // $4/GB x 0.5 GB
  EXPECT_TRUE(d.meets_deadline);
}

TEST(UploadPlanner, WaitForFreeDefersToWifi) {
  const auto sched = net::MobilitySchedule::commuter_day();
  const auto planner =
      make_planner(sched::UploadPlanner::Policy::WaitForFree, sched);
  const sched::UploadJob job{"photos", DataSize::megabytes(500),
                             Duration::hours(12)};
  const auto d = planner.plan(at_hours(8.25), job);
  EXPECT_EQ(d.start, at_hours(9));  // office WiFi
  EXPECT_EQ(d.tech, "WiFi");
  EXPECT_TRUE(d.data_cost.is_zero());
  EXPECT_TRUE(d.meets_deadline);
  // Faster link also means less radio-on energy.
  const auto imm = make_planner(sched::UploadPlanner::Policy::Immediate,
                                sched)
                       .plan(at_hours(8.25), job);
  EXPECT_LT(d.radio_energy, imm.radio_energy);
}

TEST(UploadPlanner, TightSlackForcesImmediateUpload) {
  const auto sched = net::MobilitySchedule::commuter_day();
  const auto planner =
      make_planner(sched::UploadPlanner::Policy::WaitForFree, sched);
  // 10 minutes of slack at 08:15: WiFi at 09:00 is unreachable.
  const sched::UploadJob job{"urgentish", DataSize::megabytes(20),
                             Duration::minutes(10)};
  const auto d = planner.plan(at_hours(8.25), job);
  EXPECT_EQ(d.start, at_hours(8.25));
  EXPECT_EQ(d.tech, "4G");
  EXPECT_GT(d.data_cost, Money::zero());
  EXPECT_TRUE(d.meets_deadline);
}

TEST(UploadPlanner, AlreadyOnWifiStartsNow) {
  const auto sched = net::MobilitySchedule::commuter_day();
  const auto planner =
      make_planner(sched::UploadPlanner::Policy::WaitForFree, sched);
  const sched::UploadJob job{"j", DataSize::megabytes(100),
                             Duration::hours(2)};
  const auto d = planner.plan(at_hours(12), job);
  EXPECT_EQ(d.start, at_hours(12));
  EXPECT_TRUE(d.data_cost.is_zero());
}

TEST(UploadPlanner, ImpossibleDeadlineReportedHonestly) {
  const auto sched = net::MobilitySchedule::commuter_day();
  const auto planner =
      make_planner(sched::UploadPlanner::Policy::WaitForFree, sched);
  // 4 GB with one second of slack cannot make it on any link.
  const sched::UploadJob job{"hopeless", DataSize::gigabytes(4),
                             Duration::seconds(1)};
  const auto d = planner.plan(at_hours(12), job);
  EXPECT_FALSE(d.meets_deadline);
}

}  // namespace
}  // namespace ntco
