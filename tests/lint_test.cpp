#include "ntco/lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

// Fixture-driven tests for the ntco-lint analyzer. Every rule R1-R5 has a
// violating and a clean fixture under tests/lint_fixtures/ (the directory
// is excluded from the repo-wide scan precisely because its files violate
// on purpose). NTCO_LINT_FIXTURE_DIR is injected by tests/CMakeLists.txt.

namespace ntco::lint {
namespace {

std::string fixture_root() { return NTCO_LINT_FIXTURE_DIR; }

// Scan the given files/dirs (relative to the fixture dir, or to
// `root_suffix` below it) with the repo's default rule config.
Report scan(const std::vector<std::string>& roots,
            const std::string& root_suffix = "") {
  Config cfg = default_config(
      root_suffix.empty() ? fixture_root() : fixture_root() + "/" + root_suffix);
  cfg.roots = roots;
  cfg.exclude.clear();  // the default config excludes the fixture tree
  return run(cfg);
}

std::vector<Diagnostic> of_rule(const Report& r, Rule rule) {
  std::vector<Diagnostic> out;
  for (const auto& d : r.diagnostics)
    if (d.rule == rule) out.push_back(d);
  return out;
}

bool has_line(const std::vector<Diagnostic>& ds, int line) {
  return std::any_of(ds.begin(), ds.end(),
                     [line](const Diagnostic& d) { return d.line == line; });
}

// ---------------------------------------------------------------------------
// R1: nondeterminism sources.

TEST(LintR1, FlagsWallClockEnvAndAdHocRng) {
  const Report r = scan({"r1_violation.cpp"});
  const auto d = of_rule(r, Rule::R1);
  ASSERT_EQ(d.size(), 5u);
  EXPECT_TRUE(has_line(d, 9));   // std::random_device
  EXPECT_TRUE(has_line(d, 10));  // system_clock
  EXPECT_TRUE(has_line(d, 11));  // steady_clock
  EXPECT_TRUE(has_line(d, 12));  // getenv
  EXPECT_TRUE(has_line(d, 13));  // std::rand
  EXPECT_EQ(r.diagnostics.size(), d.size()) << "no other rules should fire";
}

TEST(LintR1, CleanVariantAndLookalikeIdentifiersPass) {
  const Report r = scan({"r1_clean.cpp"});
  EXPECT_TRUE(r.diagnostics.empty())
      << "first: " << (r.diagnostics.empty() ? "" : r.diagnostics[0].message);
  EXPECT_EQ(r.files_scanned, 1u);
}

TEST(LintR1, SanctionedFilesAreAllowlisted) {
  // The same violating contents under an allowlisted path must pass: the
  // bench harness legitimately times itself and reads NTCO_BENCH_OUT.
  Config cfg = default_config(fixture_root());
  Report rep;
  std::ifstream in(fixture_root() + "/r1_violation.cpp");
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  analyze_source(cfg, "bench/bench_common.hpp", ss.str(), rep);
  EXPECT_TRUE(of_rule(rep, Rule::R1).empty());
}

// ---------------------------------------------------------------------------
// R2: unordered-container iteration.

TEST(LintR2, FlagsRangeForAndIteratorLoops) {
  const Report r = scan({"r2_violation.cpp"});
  const auto d = of_rule(r, Rule::R2);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_TRUE(has_line(d, 10));  // structured-binding range-for
  EXPECT_TRUE(has_line(d, 16));  // qualified-type range-for
  EXPECT_TRUE(has_line(d, 22));  // .begin() in a for header
  // Fingerprints are line-number-free so baselines survive edits.
  for (const auto& diag : d)
    EXPECT_EQ(diag.fingerprint.find(':'), diag.fingerprint.rfind(':'))
        << "no line numbers in fingerprints: " << diag.fingerprint;
}

TEST(LintR2, DeclarationLookupAndSortedExtractionPass) {
  const Report r = scan({"r2_clean.cpp"});
  EXPECT_TRUE(r.diagnostics.empty())
      << "first: " << (r.diagnostics.empty() ? "" : r.diagnostics[0].message);
}

// ---------------------------------------------------------------------------
// R3: threading primitives.

TEST(LintR3, FlagsThreadingPrimitivesOutsideFleet) {
  const Report r = scan({"r3_violation.cpp"});
  const auto d = of_rule(r, Rule::R3);
  ASSERT_EQ(d.size(), 4u);
  EXPECT_TRUE(has_line(d, 9));   // std::atomic
  EXPECT_TRUE(has_line(d, 10));  // std::mutex
  EXPECT_TRUE(has_line(d, 11));  // std::thread
  EXPECT_TRUE(has_line(d, 13));  // std::lock_guard
}

TEST(LintR3, FleetPathsAreAllowlistedAndLookalikesPass) {
  EXPECT_TRUE(scan({"r3_clean.cpp"}).diagnostics.empty());
  // Identical threading code under src/fleet/ is sanctioned.
  Config cfg = default_config(fixture_root());
  Report rep;
  std::ifstream in(fixture_root() + "/r3_violation.cpp");
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  analyze_source(cfg, "src/fleet/src/pool_extras.cpp", ss.str(), rep);
  EXPECT_TRUE(of_rule(rep, Rule::R3).empty());
}

// ---------------------------------------------------------------------------
// R4: module layering.

TEST(LintR4, FlagsBackEdgesAndUnknownModules) {
  const Report r = scan({"src"}, "layering");
  const auto d = of_rule(r, Rule::R4);
  ASSERT_EQ(d.size(), 3u);
  int back_edges = 0, unknown = 0;
  for (const auto& diag : d) {
    if (diag.fingerprint.find("|edge:") != std::string::npos) ++back_edges;
    if (diag.fingerprint.find("|unknown:") != std::string::npos) ++unknown;
  }
  EXPECT_EQ(back_edges, 2);  // stats->core, common->stats
  EXPECT_EQ(unknown, 1);     // common->mystery
  // The clean sim header (obs direct, common via closure) contributes none.
  for (const auto& diag : d)
    EXPECT_EQ(diag.file.find("good_dep"), std::string::npos) << diag.file;
}

TEST(LintR4, DeclaredCycleIsAConfigError) {
  Config cfg = default_config(fixture_root());
  cfg.dag = {{"a", {"b"}}, {"b", {"a"}}};
  Report rep;
  EXPECT_THROW(analyze_source(cfg, "src/a/x.hpp", "", rep),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// R5: unordered-sourced accumulation.

TEST(LintR5, FlagsAccumulationFromUnorderedLookups) {
  const Report r = scan({"r5_violation.cpp"});
  const auto d = of_rule(r, Rule::R5);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_TRUE(has_line(d, 11));  // operator[]
  EXPECT_TRUE(has_line(d, 13));  // .at()
}

TEST(LintR5, OrderedSourcesPass) {
  EXPECT_TRUE(scan({"r5_clean.cpp"}).diagnostics.empty());
}

// ---------------------------------------------------------------------------
// Suppressions.

TEST(LintSuppression, ReasonedAllowSilencesAndIsCounted) {
  const Report r = scan({"suppressed.cpp"});
  EXPECT_TRUE(r.diagnostics.empty());
  ASSERT_EQ(r.suppressions.size(), 2u);
  EXPECT_EQ(r.suppressions[0].rules, "R2");
  EXPECT_FALSE(r.suppressions[0].reason.empty());
  EXPECT_FALSE(r.suppressions[1].reason.empty());
}

TEST(LintSuppression, MissingReasonFailsClosed) {
  const Report r = scan({"suppressed_missing_reason.cpp"});
  EXPECT_EQ(of_rule(r, Rule::Sup).size(), 1u);
  EXPECT_EQ(of_rule(r, Rule::R2).size(), 1u)
      << "a reasonless allow() must not suppress";
  EXPECT_TRUE(r.suppressions.empty());
}

TEST(LintSuppression, UnusedAllowIsReportedStale) {
  const Report r = scan({"stale_allow.cpp"});
  EXPECT_TRUE(r.diagnostics.empty());
  // A stale directive still counts as a (well-formed) suppression; it is
  // *additionally* reported stale so --fail-stale can gate on it.
  EXPECT_EQ(r.suppressions.size(), 1u);
  ASSERT_EQ(r.stale_suppressions.size(), 1u);
  EXPECT_EQ(r.stale_suppressions[0].line, 4);
  EXPECT_EQ(r.stale_suppressions[0].rules, "R2");
}

// ---------------------------------------------------------------------------
// R6: hot-path allocation.

TEST(LintR6, FlagsAllocationInsideMarkedRegion) {
  const Report r = scan({"r6_violation.cpp"});
  const auto d = of_rule(r, Rule::R6);
  ASSERT_EQ(d.size(), 5u);
  EXPECT_TRUE(has_line(d, 12));  // new
  EXPECT_TRUE(has_line(d, 13));  // push_back
  EXPECT_TRUE(has_line(d, 14));  // make_shared
  EXPECT_TRUE(has_line(d, 15));  // std::function
  EXPECT_TRUE(has_line(d, 16));  // resize
  EXPECT_EQ(r.diagnostics.size(), d.size()) << "no other rules should fire";
}

TEST(LintR6, OutsideRegionAndReasonedAllowPass) {
  const Report r = scan({"r6_clean.cpp"});
  EXPECT_TRUE(r.diagnostics.empty())
      << "first: " << (r.diagnostics.empty() ? "" : r.diagnostics[0].message);
  ASSERT_EQ(r.suppressions.size(), 1u);
  EXPECT_EQ(r.suppressions[0].rules, "R6");
}

TEST(LintR6, HotpathFileListCoversTheWholeFile) {
  // The same clean fixture, but listed whole-file hot: the reserve() that
  // sat before the marked region now fires; the allow still holds.
  Config cfg = default_config(fixture_root());
  cfg.exclude.clear();
  cfg.roots = {"r6_clean.cpp"};
  cfg.hotpath_files = {"r6_clean.cpp"};
  const Report r = run(cfg);
  const auto d = of_rule(r, Rule::R6);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_TRUE(has_line(d, 6));  // v.reserve(64)
  EXPECT_EQ(r.suppressions.size(), 1u);
}

// ---------------------------------------------------------------------------
// R7: telemetry-name contract.

TEST(LintR7, EnforcesRegistryContractAcrossTheTree) {
  const Report r = scan({"src"}, "r7");
  const auto d = of_rule(r, Rule::R7);
  ASSERT_EQ(d.size(), 4u);
  int unknown = 0, kind = 0, dup = 0, dead = 0;
  for (const auto& diag : d) {
    if (diag.fingerprint.find("|name:demo.typo") != std::string::npos) {
      ++unknown;
      EXPECT_EQ(diag.line, 7);
    }
    if (diag.fingerprint.find("|kind:demo.jobs") != std::string::npos) {
      ++kind;
      EXPECT_EQ(diag.line, 8);  // counter used as a gauge
    }
    if (diag.fingerprint.find("|dup:demo.dup") != std::string::npos) {
      ++dup;
      EXPECT_EQ(diag.line, 14);  // the second registry row
    }
    if (diag.fingerprint.find("|dead:demo.dead") != std::string::npos) {
      ++dead;
      EXPECT_EQ(diag.line, 12);
    }
  }
  EXPECT_EQ(unknown, 1);
  EXPECT_EQ(kind, 1);
  EXPECT_EQ(dup, 1);
  EXPECT_EQ(dead, 1);
  EXPECT_EQ(r.diagnostics.size(), d.size()) << "no other rules should fire";
  // The registered names good.cpp emits (including the duplicated one)
  // produce nothing; the unregistered prototype name is allow(R7)'d.
  ASSERT_EQ(r.suppressions.size(), 1u);
  EXPECT_EQ(r.suppressions[0].rules, "R7");
}

TEST(LintR7, RegistryLoaderParsesRowsInFileOrder) {
  const auto entries = load_names_registry(
      fixture_root() + "/r7/src/obs/include/ntco/obs/names.hpp");
  ASSERT_EQ(entries.size(), 5u);
  EXPECT_EQ(entries[0].ident, "kDemoEvent");
  EXPECT_EQ(entries[0].kind, "trace");
  EXPECT_EQ(entries[0].name, "demo.event");
  EXPECT_EQ(entries[0].fields, "`id`");
  EXPECT_EQ(entries[0].line, 10);
  EXPECT_EQ(entries[1].kind, "counter");
  EXPECT_EQ(entries[4].name, "demo.dup");
  const std::string md = names_markdown(entries);
  EXPECT_NE(md.find("demo.event"), std::string::npos);
  EXPECT_NE(md.find("demo.jobs"), std::string::npos);
}

// ---------------------------------------------------------------------------
// R8: include hygiene.

TEST(LintR8, FlagsStaleAndMissingIncludesAcrossFiles) {
  const Report r = scan({"src"}, "r8");
  const auto d = of_rule(r, Rule::R8);
  ASSERT_EQ(d.size(), 2u);
  for (const auto& diag : d) {
    if (diag.fingerprint.find("|stale:") != std::string::npos) {
      EXPECT_NE(diag.file.find("stale_user"), std::string::npos) << diag.file;
      EXPECT_EQ(diag.line, 2);
    } else {
      EXPECT_NE(diag.fingerprint.find("|missing:ntco/app/widget.hpp"),
                std::string::npos)
          << diag.fingerprint;
      EXPECT_NE(diag.file.find("missing_user"), std::string::npos)
          << diag.file;
      EXPECT_EQ(diag.line, 6);
    }
  }
  // clean_user (direct include + use), fwd_user (namespace-scope forward
  // declaration), gadget.cpp (associated-header re-export), and tuned_user
  // (digit separator + u8 literal in the header) all pass.
  EXPECT_EQ(r.diagnostics.size(), 2u);
  ASSERT_EQ(r.suppressions.size(), 1u);
  EXPECT_EQ(r.suppressions[0].rules, "R8");
}

// ---------------------------------------------------------------------------
// R9: kernel-handler capture audit.

TEST(LintR9, FlagsCopyCapturesAndSboOverflow) {
  const Report r = scan({"r9_violation.cpp"});
  const auto d = of_rule(r, Rule::R9);
  ASSERT_EQ(d.size(), 5u);
  int copies = 0, sbo = 0;
  for (const auto& diag : d) {
    if (diag.fingerprint.find("|copy:") != std::string::npos) ++copies;
    if (diag.fingerprint.find("|sbo:") != std::string::npos) ++sbo;
  }
  EXPECT_EQ(copies, 2);  // plain-copied string + vector at line 11
  EXPECT_EQ(sbo, 3);     // 56-byte copies, 7 scalars, moved 80-byte deque
  EXPECT_TRUE(has_line(d, 11));
  EXPECT_TRUE(has_line(d, 18));
  EXPECT_TRUE(has_line(d, 25));
  EXPECT_EQ(r.diagnostics.size(), d.size()) << "no other rules should fire";
}

TEST(LintR9, MovesReferencesAndScalarsPass) {
  const Report r = scan({"r9_clean.cpp"});
  EXPECT_TRUE(r.diagnostics.empty())
      << "first: " << (r.diagnostics.empty() ? "" : r.diagnostics[0].message);
}

TEST(LintR9, OneDirectiveAbsorbsAllFindingsOnTheCallLine) {
  const Report r = scan({"r9_suppressed.cpp"});
  EXPECT_TRUE(r.diagnostics.empty());
  EXPECT_TRUE(r.stale_suppressions.empty());
  ASSERT_EQ(r.suppressions.size(), 1u);
  EXPECT_EQ(r.suppressions[0].rules, "R9");
}

// ---------------------------------------------------------------------------
// Stripper: raw strings with non-empty delimiters.

TEST(LintStrip, RawStringDelimitersBlankContentAndRecover) {
  const Report r = scan({"rawstring.cpp"});
  const auto d = of_rule(r, Rule::R1);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_TRUE(has_line(d, 14)) << "only the code after the raw strings";
  EXPECT_EQ(r.diagnostics.size(), 1u);
}

// ---------------------------------------------------------------------------
// Acceptance probes against the real repo config: the two deliberate
// regressions named in the issue must fail the gate.

TEST(LintAcceptance, TypoedMetricNameFailsAgainstRealRegistry) {
  Config cfg = default_config(NTCO_LINT_REPO_ROOT);
  Report rep;
  analyze_source(cfg, "src/sched/src/typo_probe.cpp",
                 "void f(M& m) { m.counter(\"sched.jbos.planned\").add(); }\n",
                 rep);
  const auto d = of_rule(rep, Rule::R7);
  ASSERT_EQ(d.size(), 1u);
  EXPECT_NE(d[0].fingerprint.find("name:sched.jbos.planned"),
            std::string::npos);
}

TEST(LintAcceptance, HotpathGrowthInKernelFails) {
  Config cfg = default_config(NTCO_LINT_REPO_ROOT);
  ASSERT_FALSE(cfg.hotpath_files.empty())
      << "tools/lint_hotpath.txt must seed the hot file list";
  Report rep;
  analyze_source(cfg, "src/sim/include/ntco/sim/simulator.hpp",
                 "void f(std::vector<int>& v) { v.push_back(1); }\n", rep);
  EXPECT_EQ(of_rule(rep, Rule::R6).size(), 1u);
}

// ---------------------------------------------------------------------------
// Cache.

TEST(LintCache, WarmRunServesFromCacheWithIdenticalFindings) {
  Config cfg = default_config(fixture_root());
  cfg.exclude.clear();
  cfg.roots = {"r6_violation.cpp", "r9_violation.cpp"};
  const std::string cache = ::testing::TempDir() + "ntco_lint_cache_test.txt";
  std::remove(cache.c_str());
  const Report cold = run(cfg, cache);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, 2u);
  const Report warm = run(cfg, cache);
  EXPECT_EQ(warm.cache_hits, 2u);
  EXPECT_EQ(warm.cache_misses, 0u);
  ASSERT_EQ(warm.diagnostics.size(), cold.diagnostics.size());
  for (std::size_t i = 0; i < warm.diagnostics.size(); ++i) {
    EXPECT_EQ(warm.diagnostics[i].fingerprint, cold.diagnostics[i].fingerprint);
    EXPECT_EQ(warm.diagnostics[i].line, cold.diagnostics[i].line);
  }
  std::remove(cache.c_str());
}

// ---------------------------------------------------------------------------
// Baseline.

TEST(LintBaseline, AbsorbsOldDebtButFailsOnGrowth) {
  const Report old_only = scan({"baseline_growth/old_debt.cpp"});
  ASSERT_EQ(old_only.diagnostics.size(), 1u);

  const Baseline base =
      Baseline::from_string(Baseline::to_text(old_only.diagnostics));
  EXPECT_EQ(base.size(), 1u);
  // Unchanged baseline: clean.
  EXPECT_TRUE(base.filter_new(old_only.diagnostics).empty());

  // Debt grows: the new diagnostic (and only it) must surface.
  const Report grown =
      scan({"baseline_growth/old_debt.cpp", "baseline_growth/new_debt.cpp"});
  ASSERT_EQ(grown.diagnostics.size(), 2u);
  const auto fresh = base.filter_new(grown.diagnostics);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_NE(fresh[0].file.find("new_debt"), std::string::npos);
  EXPECT_EQ(fresh[0].rule, Rule::R1);
}

TEST(LintBaseline, CommentsAndBlanksIgnored) {
  const Baseline b = Baseline::from_string(
      "# comment\n\nsome/file.cpp|R1|rand\nsome/file.cpp|R1|rand\n");
  EXPECT_EQ(b.size(), 2u);
}

// ---------------------------------------------------------------------------
// Report plumbing.

TEST(LintReport, JsonCarriesCountsDiagnosticsAndSuppressions) {
  const Report viol = scan({"r2_violation.cpp", "suppressed.cpp"});
  const std::string json = to_json(viol, viol.diagnostics);
  EXPECT_NE(json.find("\"diagnostics_total\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"diagnostics_new\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"suppressions\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"R2\""), std::string::npos);
  EXPECT_NE(json.find("order-insensitive"), std::string::npos);
}

TEST(LintReport, SarifCarriesRulesResultsAndLocations) {
  const Report r = scan({"r6_violation.cpp"});
  const std::string s = to_sarif(r, r.diagnostics);
  EXPECT_NE(s.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(s.find("\"name\": \"ntco-lint\""), std::string::npos);
  EXPECT_NE(s.find("\"ruleId\": \"R6\""), std::string::npos);
  EXPECT_NE(s.find("\"level\": \"error\""), std::string::npos) << "fresh";
  EXPECT_NE(s.find("r6_violation.cpp"), std::string::npos);
  EXPECT_NE(s.find("\"startLine\": 12"), std::string::npos);
  EXPECT_NE(s.find("partialFingerprints"), std::string::npos);
  // Baselined diagnostics downgrade to "note".
  const std::string noted = to_sarif(r, {});
  EXPECT_EQ(noted.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(noted.find("\"level\": \"note\""), std::string::npos);
}

TEST(LintReport, RepoTreeIsCleanUnderDefaultConfig) {
  // The real gate is the LintClean ctest (which runs the CLI against the
  // checked-in baseline); this is the same assertion in-process so a
  // violation shows up with gtest context too. NTCO_LINT_REPO_ROOT points
  // at the source tree.
  Config cfg = default_config(NTCO_LINT_REPO_ROOT);
  const Report r = run(cfg);
  EXPECT_GT(r.files_scanned, 100u);
  for (const auto& d : r.diagnostics)
    ADD_FAILURE() << d.file << ":" << d.line << ": [" << rule_name(d.rule)
                  << "] " << d.message;
  for (const auto& s : r.suppressions)
    EXPECT_FALSE(s.reason.empty())
        << s.file << ":" << s.line << " suppression without reason";
}

}  // namespace
}  // namespace ntco::lint
