#include "ntco/lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

// Fixture-driven tests for the ntco-lint analyzer. Every rule R1-R5 has a
// violating and a clean fixture under tests/lint_fixtures/ (the directory
// is excluded from the repo-wide scan precisely because its files violate
// on purpose). NTCO_LINT_FIXTURE_DIR is injected by tests/CMakeLists.txt.

namespace ntco::lint {
namespace {

std::string fixture_root() { return NTCO_LINT_FIXTURE_DIR; }

// Scan the given files/dirs (relative to the fixture dir, or to
// `root_suffix` below it) with the repo's default rule config.
Report scan(const std::vector<std::string>& roots,
            const std::string& root_suffix = "") {
  Config cfg = default_config(
      root_suffix.empty() ? fixture_root() : fixture_root() + "/" + root_suffix);
  cfg.roots = roots;
  cfg.exclude.clear();  // the default config excludes the fixture tree
  return run(cfg);
}

std::vector<Diagnostic> of_rule(const Report& r, Rule rule) {
  std::vector<Diagnostic> out;
  for (const auto& d : r.diagnostics)
    if (d.rule == rule) out.push_back(d);
  return out;
}

bool has_line(const std::vector<Diagnostic>& ds, int line) {
  return std::any_of(ds.begin(), ds.end(),
                     [line](const Diagnostic& d) { return d.line == line; });
}

// ---------------------------------------------------------------------------
// R1: nondeterminism sources.

TEST(LintR1, FlagsWallClockEnvAndAdHocRng) {
  const Report r = scan({"r1_violation.cpp"});
  const auto d = of_rule(r, Rule::R1);
  ASSERT_EQ(d.size(), 5u);
  EXPECT_TRUE(has_line(d, 9));   // std::random_device
  EXPECT_TRUE(has_line(d, 10));  // system_clock
  EXPECT_TRUE(has_line(d, 11));  // steady_clock
  EXPECT_TRUE(has_line(d, 12));  // getenv
  EXPECT_TRUE(has_line(d, 13));  // std::rand
  EXPECT_EQ(r.diagnostics.size(), d.size()) << "no other rules should fire";
}

TEST(LintR1, CleanVariantAndLookalikeIdentifiersPass) {
  const Report r = scan({"r1_clean.cpp"});
  EXPECT_TRUE(r.diagnostics.empty())
      << "first: " << (r.diagnostics.empty() ? "" : r.diagnostics[0].message);
  EXPECT_EQ(r.files_scanned, 1u);
}

TEST(LintR1, SanctionedFilesAreAllowlisted) {
  // The same violating contents under an allowlisted path must pass: the
  // bench harness legitimately times itself and reads NTCO_BENCH_OUT.
  Config cfg = default_config(fixture_root());
  Report rep;
  std::ifstream in(fixture_root() + "/r1_violation.cpp");
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  analyze_source(cfg, "bench/bench_common.hpp", ss.str(), rep);
  EXPECT_TRUE(of_rule(rep, Rule::R1).empty());
}

// ---------------------------------------------------------------------------
// R2: unordered-container iteration.

TEST(LintR2, FlagsRangeForAndIteratorLoops) {
  const Report r = scan({"r2_violation.cpp"});
  const auto d = of_rule(r, Rule::R2);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_TRUE(has_line(d, 10));  // structured-binding range-for
  EXPECT_TRUE(has_line(d, 16));  // qualified-type range-for
  EXPECT_TRUE(has_line(d, 22));  // .begin() in a for header
  // Fingerprints are line-number-free so baselines survive edits.
  for (const auto& diag : d)
    EXPECT_EQ(diag.fingerprint.find(':'), diag.fingerprint.rfind(':'))
        << "no line numbers in fingerprints: " << diag.fingerprint;
}

TEST(LintR2, DeclarationLookupAndSortedExtractionPass) {
  const Report r = scan({"r2_clean.cpp"});
  EXPECT_TRUE(r.diagnostics.empty())
      << "first: " << (r.diagnostics.empty() ? "" : r.diagnostics[0].message);
}

// ---------------------------------------------------------------------------
// R3: threading primitives.

TEST(LintR3, FlagsThreadingPrimitivesOutsideFleet) {
  const Report r = scan({"r3_violation.cpp"});
  const auto d = of_rule(r, Rule::R3);
  ASSERT_EQ(d.size(), 4u);
  EXPECT_TRUE(has_line(d, 9));   // std::atomic
  EXPECT_TRUE(has_line(d, 10));  // std::mutex
  EXPECT_TRUE(has_line(d, 11));  // std::thread
  EXPECT_TRUE(has_line(d, 13));  // std::lock_guard
}

TEST(LintR3, FleetPathsAreAllowlistedAndLookalikesPass) {
  EXPECT_TRUE(scan({"r3_clean.cpp"}).diagnostics.empty());
  // Identical threading code under src/fleet/ is sanctioned.
  Config cfg = default_config(fixture_root());
  Report rep;
  std::ifstream in(fixture_root() + "/r3_violation.cpp");
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  analyze_source(cfg, "src/fleet/src/pool_extras.cpp", ss.str(), rep);
  EXPECT_TRUE(of_rule(rep, Rule::R3).empty());
}

// ---------------------------------------------------------------------------
// R4: module layering.

TEST(LintR4, FlagsBackEdgesAndUnknownModules) {
  const Report r = scan({"src"}, "layering");
  const auto d = of_rule(r, Rule::R4);
  ASSERT_EQ(d.size(), 3u);
  int back_edges = 0, unknown = 0;
  for (const auto& diag : d) {
    if (diag.fingerprint.find("|edge:") != std::string::npos) ++back_edges;
    if (diag.fingerprint.find("|unknown:") != std::string::npos) ++unknown;
  }
  EXPECT_EQ(back_edges, 2);  // stats->core, common->stats
  EXPECT_EQ(unknown, 1);     // common->mystery
  // The clean sim header (obs direct, common via closure) contributes none.
  for (const auto& diag : d)
    EXPECT_EQ(diag.file.find("good_dep"), std::string::npos) << diag.file;
}

TEST(LintR4, DeclaredCycleIsAConfigError) {
  Config cfg = default_config(fixture_root());
  cfg.dag = {{"a", {"b"}}, {"b", {"a"}}};
  Report rep;
  EXPECT_THROW(analyze_source(cfg, "src/a/x.hpp", "", rep),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// R5: unordered-sourced accumulation.

TEST(LintR5, FlagsAccumulationFromUnorderedLookups) {
  const Report r = scan({"r5_violation.cpp"});
  const auto d = of_rule(r, Rule::R5);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_TRUE(has_line(d, 11));  // operator[]
  EXPECT_TRUE(has_line(d, 13));  // .at()
}

TEST(LintR5, OrderedSourcesPass) {
  EXPECT_TRUE(scan({"r5_clean.cpp"}).diagnostics.empty());
}

// ---------------------------------------------------------------------------
// Suppressions.

TEST(LintSuppression, ReasonedAllowSilencesAndIsCounted) {
  const Report r = scan({"suppressed.cpp"});
  EXPECT_TRUE(r.diagnostics.empty());
  ASSERT_EQ(r.suppressions.size(), 2u);
  EXPECT_EQ(r.suppressions[0].rules, "R2");
  EXPECT_FALSE(r.suppressions[0].reason.empty());
  EXPECT_FALSE(r.suppressions[1].reason.empty());
}

TEST(LintSuppression, MissingReasonFailsClosed) {
  const Report r = scan({"suppressed_missing_reason.cpp"});
  EXPECT_EQ(of_rule(r, Rule::Sup).size(), 1u);
  EXPECT_EQ(of_rule(r, Rule::R2).size(), 1u)
      << "a reasonless allow() must not suppress";
  EXPECT_TRUE(r.suppressions.empty());
}

// ---------------------------------------------------------------------------
// Baseline.

TEST(LintBaseline, AbsorbsOldDebtButFailsOnGrowth) {
  const Report old_only = scan({"baseline_growth/old_debt.cpp"});
  ASSERT_EQ(old_only.diagnostics.size(), 1u);

  const Baseline base =
      Baseline::from_string(Baseline::to_text(old_only.diagnostics));
  EXPECT_EQ(base.size(), 1u);
  // Unchanged baseline: clean.
  EXPECT_TRUE(base.filter_new(old_only.diagnostics).empty());

  // Debt grows: the new diagnostic (and only it) must surface.
  const Report grown =
      scan({"baseline_growth/old_debt.cpp", "baseline_growth/new_debt.cpp"});
  ASSERT_EQ(grown.diagnostics.size(), 2u);
  const auto fresh = base.filter_new(grown.diagnostics);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_NE(fresh[0].file.find("new_debt"), std::string::npos);
  EXPECT_EQ(fresh[0].rule, Rule::R1);
}

TEST(LintBaseline, CommentsAndBlanksIgnored) {
  const Baseline b = Baseline::from_string(
      "# comment\n\nsome/file.cpp|R1|rand\nsome/file.cpp|R1|rand\n");
  EXPECT_EQ(b.size(), 2u);
}

// ---------------------------------------------------------------------------
// Report plumbing.

TEST(LintReport, JsonCarriesCountsDiagnosticsAndSuppressions) {
  const Report viol = scan({"r2_violation.cpp", "suppressed.cpp"});
  const std::string json = to_json(viol, viol.diagnostics);
  EXPECT_NE(json.find("\"diagnostics_total\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"diagnostics_new\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"suppressions\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"R2\""), std::string::npos);
  EXPECT_NE(json.find("order-insensitive"), std::string::npos);
}

TEST(LintReport, RepoTreeIsCleanUnderDefaultConfig) {
  // The real gate is the LintClean ctest (which runs the CLI against the
  // checked-in baseline); this is the same assertion in-process so a
  // violation shows up with gtest context too. NTCO_LINT_REPO_ROOT points
  // at the source tree.
  Config cfg = default_config(NTCO_LINT_REPO_ROOT);
  const Report r = run(cfg);
  EXPECT_GT(r.files_scanned, 100u);
  for (const auto& d : r.diagnostics)
    ADD_FAILURE() << d.file << ":" << d.line << ": [" << rule_name(d.rule)
                  << "] " << d.message;
  for (const auto& s : r.suppressions)
    EXPECT_FALSE(s.reason.empty())
        << s.file << ":" << s.line << " suppression without reason";
}

}  // namespace
}  // namespace ntco::lint
