#include <gtest/gtest.h>

#include "ntco/common/error.hpp"
#include "ntco/net/link.hpp"
#include "ntco/net/path.hpp"

namespace ntco::net {
namespace {

TEST(FixedLink, TransferTimeIsLatencyPlusSerialisation) {
  FixedLink link(Duration::millis(10), DataRate::megabits_per_second(8));
  // 1 MB over 8 Mb/s = 1 s serialisation + 10 ms latency.
  EXPECT_EQ(link.transfer_time(DataSize::megabytes(1)),
            Duration::millis(1010));
}

TEST(FixedLink, ZeroPayloadStillPaysLatency) {
  FixedLink link(Duration::millis(7), DataRate::megabits_per_second(10));
  EXPECT_EQ(link.transfer_time(DataSize::zero()), Duration::millis(7));
}

TEST(FixedLink, StatsAccumulate) {
  FixedLink link(Duration::millis(1), DataRate::megabits_per_second(80));
  (void)link.transfer_time(DataSize::megabytes(1));
  (void)link.transfer_time(DataSize::megabytes(2));
  EXPECT_EQ(link.stats().transfers, 2u);
  EXPECT_EQ(link.stats().bytes_moved, DataSize::megabytes(3));
  EXPECT_GT(link.stats().time_busy, Duration::zero());
}

TEST(FixedLink, InvalidConstructionThrows) {
  EXPECT_THROW(FixedLink(-Duration::millis(1),
                         DataRate::megabits_per_second(1)),
               ContractViolation);
  EXPECT_THROW(FixedLink(Duration::millis(1), DataRate::bits_per_second(0)),
               ContractViolation);
}

TEST(StochasticLink, SamplesStayInPlausibleEnvelope) {
  StochasticLink link(Duration::millis(20), 0.3,
                      DataRate::megabits_per_second(10), 0.2, Rng(1));
  for (int i = 0; i < 2000; ++i) {
    const auto lat = link.sample_latency();
    EXPECT_GT(lat, Duration::zero());
    EXPECT_LT(lat, Duration::seconds(2));
    const auto rate = link.sample_rate();
    EXPECT_GE(rate.to_mbps(), 0.5);                // 5% floor
    EXPECT_LE(rate.to_mbps(), 10.0 * (1 + 3 * 0.2) + 1e-9);  // +3 sigma cap
  }
}

TEST(StochasticLink, MedianLatencyIsApproximatelyNominal) {
  StochasticLink link(Duration::millis(40), 0.4,
                      DataRate::megabits_per_second(10), 0.1, Rng(2));
  std::vector<double> lats;
  for (int i = 0; i < 4001; ++i)
    lats.push_back(link.sample_latency().to_millis());
  std::sort(lats.begin(), lats.end());
  EXPECT_NEAR(lats[2000], 40.0, 4.0);  // median of lognormal = nominal
}

TEST(StochasticLink, DeterministicGivenSeed) {
  StochasticLink a(Duration::millis(10), 0.3,
                   DataRate::megabits_per_second(5), 0.1, Rng(42));
  StochasticLink b(Duration::millis(10), 0.3,
                   DataRate::megabits_per_second(5), 0.1, Rng(42));
  for (int i = 0; i < 50; ++i)
    EXPECT_EQ(a.transfer_time(DataSize::kilobytes(100)),
              b.transfer_time(DataSize::kilobytes(100)));
}

TEST(MarkovLink, VisitsBothStates) {
  MarkovLink link(Duration::millis(5), DataRate::megabits_per_second(20), 0.2,
                  0.1, 0.3, Rng(3));
  int good = 0, bad = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto r = link.sample_rate();
    if (r == DataRate::megabits_per_second(20))
      ++good;
    else {
      EXPECT_EQ(r, DataRate::megabits_per_second(20) * 0.2);
      ++bad;
    }
  }
  EXPECT_GT(good, 100);
  EXPECT_GT(bad, 100);
  // Stationary distribution of the chain: P(good) = p_bg / (p_gb + p_bg).
  EXPECT_NEAR(static_cast<double>(good) / 2000.0, 0.3 / 0.4, 0.08);
}

TEST(MarkovLink, DegenerateChainStaysGood) {
  MarkovLink link(Duration::millis(5), DataRate::megabits_per_second(20), 0.5,
                  0.0, 1.0, Rng(4));
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(link.sample_rate(), DataRate::megabits_per_second(20));
}

TEST(NetworkPath, RoundTripUsesBothLinks) {
  auto path = make_fixed_path(profile_wifi());
  const auto p = profile_wifi();
  const auto expected = p.one_way_latency + DataSize::megabytes(1) / p.uplink +
                        p.one_way_latency +
                        DataSize::kilobytes(10) / p.downlink;
  EXPECT_EQ(path.round_trip_time(DataSize::megabytes(1),
                                 DataSize::kilobytes(10)),
            expected);
}

TEST(Transport, ZeroSizeTransfersPayFullOneWayLatency) {
  // Golden contract pinned on the Transport interface (see transport.hpp):
  // a zero-size transfer still pays the one-way latency — a request header
  // crosses the network even when the payload stays local. FabricPath's
  // agreement with this contract is asserted in fabric_test.cpp.
  auto path = make_path(spec_4g());
  Transport& t = path;
  EXPECT_EQ(t.uplink_time(DataSize::zero()), spec_4g().up.latency);
  EXPECT_EQ(t.downlink_time(DataSize::zero()), spec_4g().down.latency);
  EXPECT_EQ(t.round_trip_time(DataSize::zero(), DataSize::zero()),
            spec_4g().up.latency + spec_4g().down.latency);
}

TEST(Transport, SpecExposesNominalPlanningFigures) {
  // Planners (core::OffloadController::make_environment) read the nominal
  // figures through Transport::spec(); both construction paths must agree.
  auto from_spec = make_path(spec_wifi());
  auto from_links = NetworkPath(
      "WiFi",
      std::make_unique<FixedLink>(spec_wifi().up.latency, spec_wifi().up.rate),
      std::make_unique<FixedLink>(spec_wifi().down.latency,
                                  spec_wifi().down.rate));
  EXPECT_EQ(from_spec.spec().up.rate, from_links.spec().up.rate);
  EXPECT_EQ(from_spec.spec().down.latency, from_links.spec().down.latency);
  EXPECT_EQ(from_spec.name(), "WiFi");
}

TEST(Profiles, AreOrderedByGeneration) {
  // Each generation improves uplink and latency.
  EXPECT_LT(profile_3g().uplink, profile_4g().uplink);
  EXPECT_LT(profile_4g().uplink, profile_5g().uplink);
  EXPECT_GT(profile_3g().one_way_latency, profile_4g().one_way_latency);
  EXPECT_GT(profile_4g().one_way_latency, profile_5g().one_way_latency);
  // Edge LAN is the fastest, lowest-latency hop.
  EXPECT_LT(profile_edge_lan().one_way_latency,
            profile_wifi().one_way_latency);
}

TEST(Profiles, StochasticPathIsDeterministicPerSeed) {
  auto a = make_stochastic_path(profile_4g(), Rng(9));
  auto b = make_stochastic_path(profile_4g(), Rng(9));
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(a.uplink().transfer_time(DataSize::kilobytes(500)),
              b.uplink().transfer_time(DataSize::kilobytes(500)));
}

}  // namespace
}  // namespace ntco::net
