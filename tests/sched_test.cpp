#include "ntco/sched/deferred_scheduler.hpp"

#include <gtest/gtest.h>

#include "ntco/common/error.hpp"

namespace ntco::sched {
namespace {

serverless::PlatformConfig night_discount() {
  serverless::PlatformConfig cfg;
  cfg.core_speed = Frequency::gigahertz(2.5);
  // Half price between 22:00 and 06:00.
  cfg.price_windows = {{22, 6, 0.5}, {6, 22, 1.0}};
  return cfg;
}

serverless::FunctionId deploy_fn(serverless::Platform& p) {
  return p.deploy({"job-runner", DataSize::megabytes(1792),
                   DataSize::megabytes(20)});
}

TEST(DeferredScheduler, ImmediatePolicyStartsAtRelease) {
  sim::Simulator s;
  serverless::Platform p(s, night_discount());
  DeferredScheduler sched(p, {Policy::Immediate, Duration::minutes(15),
                              Duration::minutes(10)});
  const DeferredJob job{"j", Cycles::giga(10), Duration::hours(12)};
  const auto release = TimePoint::origin() + Duration::hours(9);
  EXPECT_EQ(sched.plan_start(release, job, Duration::seconds(4)), release);
}

TEST(DeferredScheduler, CheapestWindowDefersIntoDiscount) {
  sim::Simulator s;
  serverless::Platform p(s, night_discount());
  DeferredScheduler sched(p, {Policy::CheapestWindow, Duration::minutes(15),
                              Duration::minutes(10)});
  // Released 09:00 with 16 h slack: the 22:00 window is reachable.
  const DeferredJob job{"j", Cycles::giga(10), Duration::hours(16)};
  const auto release = TimePoint::origin() + Duration::hours(9);
  const auto start = sched.plan_start(release, job, Duration::seconds(4));
  EXPECT_GE(start, TimePoint::origin() + Duration::hours(22));
  EXPECT_DOUBLE_EQ(p.price_multiplier(start), 0.5);
}

TEST(DeferredScheduler, TightSlackForbidsDeferral) {
  sim::Simulator s;
  serverless::Platform p(s, night_discount());
  DeferredScheduler sched(p, {Policy::CheapestWindow, Duration::minutes(15),
                              Duration::minutes(10)});
  // Released 09:00 with 2 h slack: cannot reach the discount window.
  const DeferredJob job{"j", Cycles::giga(10), Duration::hours(2)};
  const auto release = TimePoint::origin() + Duration::hours(9);
  const auto start = sched.plan_start(release, job, Duration::seconds(4));
  EXPECT_EQ(start, release);  // no cheaper reachable tariff
}

TEST(DeferredScheduler, DeferralNeverViolatesLatestStart) {
  sim::Simulator s;
  serverless::Platform p(s, night_discount());
  DeferredScheduler sched(p, {Policy::CheapestWindow, Duration::minutes(15),
                              Duration::minutes(10)});
  const DeferredJob job{"j", Cycles::giga(10), Duration::hours(16)};
  const auto release = TimePoint::origin() + Duration::hours(9);
  const Duration est = Duration::minutes(30);
  const auto start = sched.plan_start(release, job, est);
  EXPECT_LE(start + est, release + job.slack);
}

TEST(DeferredScheduler, LatestStartClampsToRelease) {
  sim::Simulator s;
  serverless::Platform p(s, night_discount());
  DeferredScheduler sched(p, {});
  const DeferredJob job{"j", Cycles::giga(10), Duration::minutes(1)};
  const auto release = TimePoint::origin() + Duration::hours(1);
  // Estimated duration exceeds the slack: start immediately (will miss).
  EXPECT_EQ(sched.latest_start(release, job, Duration::minutes(5)), release);
}

TEST(DeferredScheduler, BatchedAlignsToBoundary) {
  sim::Simulator s;
  serverless::Platform p(s, night_discount());
  DeferredScheduler sched(p, {Policy::Batched, Duration::minutes(15),
                              Duration::minutes(60)});
  const DeferredJob job{"j", Cycles::giga(10), Duration::hours(16)};
  const auto release = TimePoint::origin() + Duration::hours(9) +
                       Duration::minutes(7);
  const auto start = sched.plan_start(release, job, Duration::seconds(4));
  EXPECT_EQ(start.since_origin().count_micros() %
                Duration::minutes(60).count_micros(),
            0);
  EXPECT_DOUBLE_EQ(p.price_multiplier(start), 0.5);
}

TEST(DeferredScheduler, InvalidConfigRejected) {
  sim::Simulator s;
  serverless::Platform p(s, night_discount());
  EXPECT_THROW(DeferredScheduler(p, {Policy::Immediate, Duration::zero(),
                                     Duration::minutes(1)}),
               ContractViolation);
}

TEST(DeferredExecutor, DeferredJobsCostLessThanImmediate) {
  // Two identical simulations; only the policy differs.
  auto run = [](Policy policy) {
    sim::Simulator s;
    serverless::Platform p(s, night_discount());
    const auto fn = deploy_fn(p);
    DeferredExecutor exec(
        s, p, fn,
        DeferredScheduler(p, {policy, Duration::minutes(15),
                              Duration::minutes(10)}));
    // Jobs released across the working day with overnight slack.
    for (int h = 8; h < 18; ++h)
      s.schedule_at(TimePoint::origin() + Duration::hours(h), [&exec, h] {
        exec.submit(DeferredJob{"job-" + std::to_string(h),
                                Cycles::giga(250), Duration::hours(20)});
      });
    s.run();
    return exec.report();
  };

  const auto immediate = run(Policy::Immediate);
  const auto deferred = run(Policy::CheapestWindow);
  ASSERT_EQ(immediate.jobs, 10u);
  ASSERT_EQ(deferred.jobs, 10u);
  EXPECT_EQ(immediate.deadline_misses, 0u);
  EXPECT_EQ(deferred.deadline_misses, 0u);
  // Night tariff is half price: the deferred bill must be clearly lower.
  EXPECT_LT(deferred.total_cost, immediate.total_cost * 0.7);
  // Deferral trades completion latency for money.
  EXPECT_GT(deferred.completion_latency_s.median(),
            immediate.completion_latency_s.median());
}

TEST(DeferredExecutor, ReportsMissesWhenSlackIsImpossible) {
  sim::Simulator s;
  serverless::Platform p(s, night_discount());
  const auto fn = deploy_fn(p);
  DeferredExecutor exec(s, p, fn, DeferredScheduler(p, {}));
  // 250 Gcycles at 2.5 GHz is 100 s; 10 s slack cannot be met.
  exec.submit(DeferredJob{"hopeless", Cycles::giga(250),
                          Duration::seconds(10)});
  s.run();
  EXPECT_EQ(exec.report().jobs, 1u);
  EXPECT_EQ(exec.report().deadline_misses, 1u);
  EXPECT_DOUBLE_EQ(exec.report().miss_rate(), 1.0);
}

}  // namespace
}  // namespace ntco::sched
