# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/units_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/device_test[1]_include.cmake")
include("/root/repo/build/tests/app_test[1]_include.cmake")
include("/root/repo/build/tests/serverless_test[1]_include.cmake")
include("/root/repo/build/tests/edgesim_test[1]_include.cmake")
include("/root/repo/build/tests/profile_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/alloc_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/cicd_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_exec_test[1]_include.cmake")
include("/root/repo/build/tests/spot_test[1]_include.cmake")
include("/root/repo/build/tests/multi_target_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/mobility_test[1]_include.cmake")
include("/root/repo/build/tests/queueing_test[1]_include.cmake")
include("/root/repo/build/tests/dvfs_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/region_carbon_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/rollout_test[1]_include.cmake")
