file(REMOVE_RECURSE
  "CMakeFiles/rollout_test.dir/rollout_test.cpp.o"
  "CMakeFiles/rollout_test.dir/rollout_test.cpp.o.d"
  "rollout_test"
  "rollout_test.pdb"
  "rollout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rollout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
