# Empty dependencies file for rollout_test.
# This may be replaced when dependencies are built.
