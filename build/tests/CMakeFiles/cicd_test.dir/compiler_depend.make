# Empty compiler generated dependencies file for cicd_test.
# This may be replaced when dependencies are built.
