file(REMOVE_RECURSE
  "CMakeFiles/cicd_test.dir/cicd_test.cpp.o"
  "CMakeFiles/cicd_test.dir/cicd_test.cpp.o.d"
  "cicd_test"
  "cicd_test.pdb"
  "cicd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cicd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
