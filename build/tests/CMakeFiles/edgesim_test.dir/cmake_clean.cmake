file(REMOVE_RECURSE
  "CMakeFiles/edgesim_test.dir/edgesim_test.cpp.o"
  "CMakeFiles/edgesim_test.dir/edgesim_test.cpp.o.d"
  "edgesim_test"
  "edgesim_test.pdb"
  "edgesim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgesim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
