# Empty compiler generated dependencies file for edgesim_test.
# This may be replaced when dependencies are built.
