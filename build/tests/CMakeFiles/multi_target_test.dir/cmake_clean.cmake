file(REMOVE_RECURSE
  "CMakeFiles/multi_target_test.dir/multi_target_test.cpp.o"
  "CMakeFiles/multi_target_test.dir/multi_target_test.cpp.o.d"
  "multi_target_test"
  "multi_target_test.pdb"
  "multi_target_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_target_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
