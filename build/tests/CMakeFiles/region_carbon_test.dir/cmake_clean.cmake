file(REMOVE_RECURSE
  "CMakeFiles/region_carbon_test.dir/region_carbon_test.cpp.o"
  "CMakeFiles/region_carbon_test.dir/region_carbon_test.cpp.o.d"
  "region_carbon_test"
  "region_carbon_test.pdb"
  "region_carbon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_carbon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
