# Empty dependencies file for region_carbon_test.
# This may be replaced when dependencies are built.
