# Empty dependencies file for bench_t2_partitioners.
# This may be replaced when dependencies are built.
