file(REMOVE_RECURSE
  "../bench/bench_t2_partitioners"
  "../bench/bench_t2_partitioners.pdb"
  "CMakeFiles/bench_t2_partitioners.dir/bench_t2_partitioners.cpp.o"
  "CMakeFiles/bench_t2_partitioners.dir/bench_t2_partitioners.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_partitioners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
