# Empty dependencies file for bench_t6_regions.
# This may be replaced when dependencies are built.
