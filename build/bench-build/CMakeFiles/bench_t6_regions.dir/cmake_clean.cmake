file(REMOVE_RECURSE
  "../bench/bench_t6_regions"
  "../bench/bench_t6_regions.pdb"
  "CMakeFiles/bench_t6_regions.dir/bench_t6_regions.cpp.o"
  "CMakeFiles/bench_t6_regions.dir/bench_t6_regions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t6_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
