file(REMOVE_RECURSE
  "../bench/bench_f5_scale_users"
  "../bench/bench_f5_scale_users.pdb"
  "CMakeFiles/bench_f5_scale_users.dir/bench_f5_scale_users.cpp.o"
  "CMakeFiles/bench_f5_scale_users.dir/bench_f5_scale_users.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_scale_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
