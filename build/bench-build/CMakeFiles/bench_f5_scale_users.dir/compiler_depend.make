# Empty compiler generated dependencies file for bench_f5_scale_users.
# This may be replaced when dependencies are built.
