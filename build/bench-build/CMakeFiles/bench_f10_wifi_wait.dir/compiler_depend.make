# Empty compiler generated dependencies file for bench_f10_wifi_wait.
# This may be replaced when dependencies are built.
