file(REMOVE_RECURSE
  "../bench/bench_f10_wifi_wait"
  "../bench/bench_f10_wifi_wait.pdb"
  "CMakeFiles/bench_f10_wifi_wait.dir/bench_f10_wifi_wait.cpp.o"
  "CMakeFiles/bench_f10_wifi_wait.dir/bench_f10_wifi_wait.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f10_wifi_wait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
