# Empty dependencies file for bench_f7_offpeak.
# This may be replaced when dependencies are built.
