file(REMOVE_RECURSE
  "../bench/bench_f7_offpeak"
  "../bench/bench_f7_offpeak.pdb"
  "CMakeFiles/bench_f7_offpeak.dir/bench_f7_offpeak.cpp.o"
  "CMakeFiles/bench_f7_offpeak.dir/bench_f7_offpeak.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f7_offpeak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
