file(REMOVE_RECURSE
  "../bench/bench_f8_spot_tier"
  "../bench/bench_f8_spot_tier.pdb"
  "CMakeFiles/bench_f8_spot_tier.dir/bench_f8_spot_tier.cpp.o"
  "CMakeFiles/bench_f8_spot_tier.dir/bench_f8_spot_tier.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_spot_tier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
