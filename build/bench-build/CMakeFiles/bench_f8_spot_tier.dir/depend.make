# Empty dependencies file for bench_f8_spot_tier.
# This may be replaced when dependencies are built.
