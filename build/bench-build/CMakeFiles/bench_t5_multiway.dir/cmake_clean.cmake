file(REMOVE_RECURSE
  "../bench/bench_t5_multiway"
  "../bench/bench_t5_multiway.pdb"
  "CMakeFiles/bench_t5_multiway.dir/bench_t5_multiway.cpp.o"
  "CMakeFiles/bench_t5_multiway.dir/bench_t5_multiway.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_multiway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
