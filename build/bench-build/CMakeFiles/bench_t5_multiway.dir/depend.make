# Empty dependencies file for bench_t5_multiway.
# This may be replaced when dependencies are built.
