file(REMOVE_RECURSE
  "../bench/bench_f9_resilience"
  "../bench/bench_f9_resilience.pdb"
  "CMakeFiles/bench_f9_resilience.dir/bench_f9_resilience.cpp.o"
  "CMakeFiles/bench_f9_resilience.dir/bench_f9_resilience.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
