# Empty dependencies file for bench_f9_resilience.
# This may be replaced when dependencies are built.
