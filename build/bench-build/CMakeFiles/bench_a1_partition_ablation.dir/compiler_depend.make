# Empty compiler generated dependencies file for bench_a1_partition_ablation.
# This may be replaced when dependencies are built.
