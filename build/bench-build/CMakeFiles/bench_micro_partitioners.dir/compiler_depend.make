# Empty compiler generated dependencies file for bench_micro_partitioners.
# This may be replaced when dependencies are built.
