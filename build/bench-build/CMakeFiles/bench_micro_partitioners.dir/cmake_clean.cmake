file(REMOVE_RECURSE
  "../bench/bench_micro_partitioners"
  "../bench/bench_micro_partitioners.pdb"
  "CMakeFiles/bench_micro_partitioners.dir/bench_micro_partitioners.cpp.o"
  "CMakeFiles/bench_micro_partitioners.dir/bench_micro_partitioners.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_partitioners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
