file(REMOVE_RECURSE
  "../bench/bench_t3_memory_alloc"
  "../bench/bench_t3_memory_alloc.pdb"
  "CMakeFiles/bench_t3_memory_alloc.dir/bench_t3_memory_alloc.cpp.o"
  "CMakeFiles/bench_t3_memory_alloc.dir/bench_t3_memory_alloc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_memory_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
