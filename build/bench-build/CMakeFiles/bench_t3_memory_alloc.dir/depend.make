# Empty dependencies file for bench_t3_memory_alloc.
# This may be replaced when dependencies are built.
