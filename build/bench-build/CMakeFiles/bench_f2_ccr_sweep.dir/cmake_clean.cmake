file(REMOVE_RECURSE
  "../bench/bench_f2_ccr_sweep"
  "../bench/bench_f2_ccr_sweep.pdb"
  "CMakeFiles/bench_f2_ccr_sweep.dir/bench_f2_ccr_sweep.cpp.o"
  "CMakeFiles/bench_f2_ccr_sweep.dir/bench_f2_ccr_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_ccr_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
