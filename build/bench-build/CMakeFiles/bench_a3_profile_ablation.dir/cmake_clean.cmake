file(REMOVE_RECURSE
  "../bench/bench_a3_profile_ablation"
  "../bench/bench_a3_profile_ablation.pdb"
  "CMakeFiles/bench_a3_profile_ablation.dir/bench_a3_profile_ablation.cpp.o"
  "CMakeFiles/bench_a3_profile_ablation.dir/bench_a3_profile_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_profile_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
