# Empty dependencies file for bench_a3_profile_ablation.
# This may be replaced when dependencies are built.
