file(REMOVE_RECURSE
  "../bench/bench_t1_workloads"
  "../bench/bench_t1_workloads.pdb"
  "CMakeFiles/bench_t1_workloads.dir/bench_t1_workloads.cpp.o"
  "CMakeFiles/bench_t1_workloads.dir/bench_t1_workloads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
