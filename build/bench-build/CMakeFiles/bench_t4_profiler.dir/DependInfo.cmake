
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_t4_profiler.cpp" "bench-build/CMakeFiles/bench_t4_profiler.dir/bench_t4_profiler.cpp.o" "gcc" "bench-build/CMakeFiles/bench_t4_profiler.dir/bench_t4_profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/edgesim/CMakeFiles/ntco_edgesim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ntco_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/cicd/CMakeFiles/ntco_cicd.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/ntco_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ntco_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ntco_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ntco_net.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/ntco_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/ntco_device.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/ntco_app.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/ntco_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/serverless/CMakeFiles/ntco_serverless.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ntco_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ntco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
