file(REMOVE_RECURSE
  "../bench/bench_t4_profiler"
  "../bench/bench_t4_profiler.pdb"
  "CMakeFiles/bench_t4_profiler.dir/bench_t4_profiler.cpp.o"
  "CMakeFiles/bench_t4_profiler.dir/bench_t4_profiler.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
