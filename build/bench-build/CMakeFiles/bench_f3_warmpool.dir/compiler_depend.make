# Empty compiler generated dependencies file for bench_f3_warmpool.
# This may be replaced when dependencies are built.
