file(REMOVE_RECURSE
  "../bench/bench_f3_warmpool"
  "../bench/bench_f3_warmpool.pdb"
  "CMakeFiles/bench_f3_warmpool.dir/bench_f3_warmpool.cpp.o"
  "CMakeFiles/bench_f3_warmpool.dir/bench_f3_warmpool.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_warmpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
