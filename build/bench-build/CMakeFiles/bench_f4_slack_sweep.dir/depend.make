# Empty dependencies file for bench_f4_slack_sweep.
# This may be replaced when dependencies are built.
