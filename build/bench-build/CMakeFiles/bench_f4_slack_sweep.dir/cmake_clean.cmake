file(REMOVE_RECURSE
  "../bench/bench_f4_slack_sweep"
  "../bench/bench_f4_slack_sweep.pdb"
  "CMakeFiles/bench_f4_slack_sweep.dir/bench_f4_slack_sweep.cpp.o"
  "CMakeFiles/bench_f4_slack_sweep.dir/bench_f4_slack_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_slack_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
