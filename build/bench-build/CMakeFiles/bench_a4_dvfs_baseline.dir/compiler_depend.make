# Empty compiler generated dependencies file for bench_a4_dvfs_baseline.
# This may be replaced when dependencies are built.
