file(REMOVE_RECURSE
  "../bench/bench_a4_dvfs_baseline"
  "../bench/bench_a4_dvfs_baseline.pdb"
  "CMakeFiles/bench_a4_dvfs_baseline.dir/bench_a4_dvfs_baseline.cpp.o"
  "CMakeFiles/bench_a4_dvfs_baseline.dir/bench_a4_dvfs_baseline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a4_dvfs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
