# Empty compiler generated dependencies file for bench_a2_warmpool_ablation.
# This may be replaced when dependencies are built.
