file(REMOVE_RECURSE
  "../bench/bench_f11_carbon"
  "../bench/bench_f11_carbon.pdb"
  "CMakeFiles/bench_f11_carbon.dir/bench_f11_carbon.cpp.o"
  "CMakeFiles/bench_f11_carbon.dir/bench_f11_carbon.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f11_carbon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
