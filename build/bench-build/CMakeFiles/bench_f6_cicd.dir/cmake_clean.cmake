file(REMOVE_RECURSE
  "../bench/bench_f6_cicd"
  "../bench/bench_f6_cicd.pdb"
  "CMakeFiles/bench_f6_cicd.dir/bench_f6_cicd.cpp.o"
  "CMakeFiles/bench_f6_cicd.dir/bench_f6_cicd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_cicd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
