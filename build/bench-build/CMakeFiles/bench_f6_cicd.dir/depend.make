# Empty dependencies file for bench_f6_cicd.
# This may be replaced when dependencies are built.
