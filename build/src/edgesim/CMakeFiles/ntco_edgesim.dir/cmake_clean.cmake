file(REMOVE_RECURSE
  "CMakeFiles/ntco_edgesim.dir/src/edgesim.cpp.o"
  "CMakeFiles/ntco_edgesim.dir/src/edgesim.cpp.o.d"
  "libntco_edgesim.a"
  "libntco_edgesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntco_edgesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
