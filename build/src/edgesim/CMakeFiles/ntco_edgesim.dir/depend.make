# Empty dependencies file for ntco_edgesim.
# This may be replaced when dependencies are built.
