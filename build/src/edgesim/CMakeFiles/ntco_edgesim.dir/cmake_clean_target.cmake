file(REMOVE_RECURSE
  "libntco_edgesim.a"
)
