# Empty dependencies file for ntco_profile.
# This may be replaced when dependencies are built.
