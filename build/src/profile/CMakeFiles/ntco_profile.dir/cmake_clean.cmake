file(REMOVE_RECURSE
  "CMakeFiles/ntco_profile.dir/src/profiler.cpp.o"
  "CMakeFiles/ntco_profile.dir/src/profiler.cpp.o.d"
  "libntco_profile.a"
  "libntco_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntco_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
