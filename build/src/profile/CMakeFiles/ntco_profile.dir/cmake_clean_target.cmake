file(REMOVE_RECURSE
  "libntco_profile.a"
)
