file(REMOVE_RECURSE
  "libntco_device.a"
)
