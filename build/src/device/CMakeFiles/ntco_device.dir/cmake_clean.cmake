file(REMOVE_RECURSE
  "CMakeFiles/ntco_device.dir/src/device.cpp.o"
  "CMakeFiles/ntco_device.dir/src/device.cpp.o.d"
  "CMakeFiles/ntco_device.dir/src/dvfs.cpp.o"
  "CMakeFiles/ntco_device.dir/src/dvfs.cpp.o.d"
  "libntco_device.a"
  "libntco_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntco_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
