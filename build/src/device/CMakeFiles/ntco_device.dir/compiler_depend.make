# Empty compiler generated dependencies file for ntco_device.
# This may be replaced when dependencies are built.
