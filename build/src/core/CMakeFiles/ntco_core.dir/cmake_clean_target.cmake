file(REMOVE_RECURSE
  "libntco_core.a"
)
