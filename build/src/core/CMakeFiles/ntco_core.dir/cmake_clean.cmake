file(REMOVE_RECURSE
  "CMakeFiles/ntco_core.dir/src/controller.cpp.o"
  "CMakeFiles/ntco_core.dir/src/controller.cpp.o.d"
  "libntco_core.a"
  "libntco_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntco_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
