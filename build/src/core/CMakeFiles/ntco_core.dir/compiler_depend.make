# Empty compiler generated dependencies file for ntco_core.
# This may be replaced when dependencies are built.
