file(REMOVE_RECURSE
  "libntco_alloc.a"
)
