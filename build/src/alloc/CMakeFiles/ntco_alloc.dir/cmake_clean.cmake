file(REMOVE_RECURSE
  "CMakeFiles/ntco_alloc.dir/src/memory_optimizer.cpp.o"
  "CMakeFiles/ntco_alloc.dir/src/memory_optimizer.cpp.o.d"
  "CMakeFiles/ntco_alloc.dir/src/region_selector.cpp.o"
  "CMakeFiles/ntco_alloc.dir/src/region_selector.cpp.o.d"
  "CMakeFiles/ntco_alloc.dir/src/warm_pool.cpp.o"
  "CMakeFiles/ntco_alloc.dir/src/warm_pool.cpp.o.d"
  "libntco_alloc.a"
  "libntco_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntco_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
