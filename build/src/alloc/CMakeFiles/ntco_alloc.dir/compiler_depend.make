# Empty compiler generated dependencies file for ntco_alloc.
# This may be replaced when dependencies are built.
