
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/src/memory_optimizer.cpp" "src/alloc/CMakeFiles/ntco_alloc.dir/src/memory_optimizer.cpp.o" "gcc" "src/alloc/CMakeFiles/ntco_alloc.dir/src/memory_optimizer.cpp.o.d"
  "/root/repo/src/alloc/src/region_selector.cpp" "src/alloc/CMakeFiles/ntco_alloc.dir/src/region_selector.cpp.o" "gcc" "src/alloc/CMakeFiles/ntco_alloc.dir/src/region_selector.cpp.o.d"
  "/root/repo/src/alloc/src/warm_pool.cpp" "src/alloc/CMakeFiles/ntco_alloc.dir/src/warm_pool.cpp.o" "gcc" "src/alloc/CMakeFiles/ntco_alloc.dir/src/warm_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ntco_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serverless/CMakeFiles/ntco_serverless.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ntco_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
