file(REMOVE_RECURSE
  "CMakeFiles/ntco_app.dir/src/generators.cpp.o"
  "CMakeFiles/ntco_app.dir/src/generators.cpp.o.d"
  "CMakeFiles/ntco_app.dir/src/task_graph.cpp.o"
  "CMakeFiles/ntco_app.dir/src/task_graph.cpp.o.d"
  "CMakeFiles/ntco_app.dir/src/workloads.cpp.o"
  "CMakeFiles/ntco_app.dir/src/workloads.cpp.o.d"
  "libntco_app.a"
  "libntco_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntco_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
