
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/src/generators.cpp" "src/app/CMakeFiles/ntco_app.dir/src/generators.cpp.o" "gcc" "src/app/CMakeFiles/ntco_app.dir/src/generators.cpp.o.d"
  "/root/repo/src/app/src/task_graph.cpp" "src/app/CMakeFiles/ntco_app.dir/src/task_graph.cpp.o" "gcc" "src/app/CMakeFiles/ntco_app.dir/src/task_graph.cpp.o.d"
  "/root/repo/src/app/src/workloads.cpp" "src/app/CMakeFiles/ntco_app.dir/src/workloads.cpp.o" "gcc" "src/app/CMakeFiles/ntco_app.dir/src/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ntco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
