# Empty compiler generated dependencies file for ntco_app.
# This may be replaced when dependencies are built.
