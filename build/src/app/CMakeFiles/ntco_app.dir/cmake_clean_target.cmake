file(REMOVE_RECURSE
  "libntco_app.a"
)
