file(REMOVE_RECURSE
  "libntco_common.a"
)
