file(REMOVE_RECURSE
  "CMakeFiles/ntco_common.dir/src/units.cpp.o"
  "CMakeFiles/ntco_common.dir/src/units.cpp.o.d"
  "libntco_common.a"
  "libntco_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntco_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
