# Empty compiler generated dependencies file for ntco_common.
# This may be replaced when dependencies are built.
