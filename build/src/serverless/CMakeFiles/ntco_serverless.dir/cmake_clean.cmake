file(REMOVE_RECURSE
  "CMakeFiles/ntco_serverless.dir/src/platform.cpp.o"
  "CMakeFiles/ntco_serverless.dir/src/platform.cpp.o.d"
  "libntco_serverless.a"
  "libntco_serverless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntco_serverless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
