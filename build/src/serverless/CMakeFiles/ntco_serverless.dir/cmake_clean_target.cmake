file(REMOVE_RECURSE
  "libntco_serverless.a"
)
