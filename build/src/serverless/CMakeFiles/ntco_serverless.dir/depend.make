# Empty dependencies file for ntco_serverless.
# This may be replaced when dependencies are built.
