
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/src/mobility.cpp" "src/net/CMakeFiles/ntco_net.dir/src/mobility.cpp.o" "gcc" "src/net/CMakeFiles/ntco_net.dir/src/mobility.cpp.o.d"
  "/root/repo/src/net/src/path.cpp" "src/net/CMakeFiles/ntco_net.dir/src/path.cpp.o" "gcc" "src/net/CMakeFiles/ntco_net.dir/src/path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ntco_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
