file(REMOVE_RECURSE
  "libntco_net.a"
)
