# Empty compiler generated dependencies file for ntco_net.
# This may be replaced when dependencies are built.
