file(REMOVE_RECURSE
  "CMakeFiles/ntco_net.dir/src/mobility.cpp.o"
  "CMakeFiles/ntco_net.dir/src/mobility.cpp.o.d"
  "CMakeFiles/ntco_net.dir/src/path.cpp.o"
  "CMakeFiles/ntco_net.dir/src/path.cpp.o.d"
  "libntco_net.a"
  "libntco_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntco_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
