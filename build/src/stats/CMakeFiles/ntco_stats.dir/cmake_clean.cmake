file(REMOVE_RECURSE
  "CMakeFiles/ntco_stats.dir/src/histogram.cpp.o"
  "CMakeFiles/ntco_stats.dir/src/histogram.cpp.o.d"
  "CMakeFiles/ntco_stats.dir/src/queueing.cpp.o"
  "CMakeFiles/ntco_stats.dir/src/queueing.cpp.o.d"
  "CMakeFiles/ntco_stats.dir/src/table.cpp.o"
  "CMakeFiles/ntco_stats.dir/src/table.cpp.o.d"
  "libntco_stats.a"
  "libntco_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntco_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
