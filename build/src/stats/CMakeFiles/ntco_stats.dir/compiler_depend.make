# Empty compiler generated dependencies file for ntco_stats.
# This may be replaced when dependencies are built.
