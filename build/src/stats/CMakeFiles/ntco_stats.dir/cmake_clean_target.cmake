file(REMOVE_RECURSE
  "libntco_stats.a"
)
