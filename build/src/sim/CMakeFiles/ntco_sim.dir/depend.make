# Empty dependencies file for ntco_sim.
# This may be replaced when dependencies are built.
