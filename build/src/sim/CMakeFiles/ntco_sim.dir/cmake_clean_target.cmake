file(REMOVE_RECURSE
  "libntco_sim.a"
)
