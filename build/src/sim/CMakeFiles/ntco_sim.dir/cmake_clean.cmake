file(REMOVE_RECURSE
  "CMakeFiles/ntco_sim.dir/src/sim.cpp.o"
  "CMakeFiles/ntco_sim.dir/src/sim.cpp.o.d"
  "libntco_sim.a"
  "libntco_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntco_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
