file(REMOVE_RECURSE
  "libntco_cicd.a"
)
