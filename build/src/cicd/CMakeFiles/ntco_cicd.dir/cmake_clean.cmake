file(REMOVE_RECURSE
  "CMakeFiles/ntco_cicd.dir/src/pipeline.cpp.o"
  "CMakeFiles/ntco_cicd.dir/src/pipeline.cpp.o.d"
  "libntco_cicd.a"
  "libntco_cicd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntco_cicd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
