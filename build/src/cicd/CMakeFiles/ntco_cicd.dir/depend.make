# Empty dependencies file for ntco_cicd.
# This may be replaced when dependencies are built.
