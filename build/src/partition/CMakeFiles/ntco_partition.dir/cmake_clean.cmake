file(REMOVE_RECURSE
  "CMakeFiles/ntco_partition.dir/src/cost_model.cpp.o"
  "CMakeFiles/ntco_partition.dir/src/cost_model.cpp.o.d"
  "CMakeFiles/ntco_partition.dir/src/max_flow.cpp.o"
  "CMakeFiles/ntco_partition.dir/src/max_flow.cpp.o.d"
  "CMakeFiles/ntco_partition.dir/src/multi_target.cpp.o"
  "CMakeFiles/ntco_partition.dir/src/multi_target.cpp.o.d"
  "CMakeFiles/ntco_partition.dir/src/partitioners.cpp.o"
  "CMakeFiles/ntco_partition.dir/src/partitioners.cpp.o.d"
  "libntco_partition.a"
  "libntco_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntco_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
