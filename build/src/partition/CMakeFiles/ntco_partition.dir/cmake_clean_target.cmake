file(REMOVE_RECURSE
  "libntco_partition.a"
)
