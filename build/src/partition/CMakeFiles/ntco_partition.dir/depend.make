# Empty dependencies file for ntco_partition.
# This may be replaced when dependencies are built.
