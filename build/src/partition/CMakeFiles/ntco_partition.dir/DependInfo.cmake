
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/src/cost_model.cpp" "src/partition/CMakeFiles/ntco_partition.dir/src/cost_model.cpp.o" "gcc" "src/partition/CMakeFiles/ntco_partition.dir/src/cost_model.cpp.o.d"
  "/root/repo/src/partition/src/max_flow.cpp" "src/partition/CMakeFiles/ntco_partition.dir/src/max_flow.cpp.o" "gcc" "src/partition/CMakeFiles/ntco_partition.dir/src/max_flow.cpp.o.d"
  "/root/repo/src/partition/src/multi_target.cpp" "src/partition/CMakeFiles/ntco_partition.dir/src/multi_target.cpp.o" "gcc" "src/partition/CMakeFiles/ntco_partition.dir/src/multi_target.cpp.o.d"
  "/root/repo/src/partition/src/partitioners.cpp" "src/partition/CMakeFiles/ntco_partition.dir/src/partitioners.cpp.o" "gcc" "src/partition/CMakeFiles/ntco_partition.dir/src/partitioners.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ntco_common.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/ntco_app.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/ntco_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
