file(REMOVE_RECURSE
  "CMakeFiles/ntco_sched.dir/src/carbon_planner.cpp.o"
  "CMakeFiles/ntco_sched.dir/src/carbon_planner.cpp.o.d"
  "CMakeFiles/ntco_sched.dir/src/deferred_scheduler.cpp.o"
  "CMakeFiles/ntco_sched.dir/src/deferred_scheduler.cpp.o.d"
  "CMakeFiles/ntco_sched.dir/src/upload_planner.cpp.o"
  "CMakeFiles/ntco_sched.dir/src/upload_planner.cpp.o.d"
  "libntco_sched.a"
  "libntco_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntco_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
