# Empty compiler generated dependencies file for ntco_sched.
# This may be replaced when dependencies are built.
