file(REMOVE_RECURSE
  "libntco_sched.a"
)
