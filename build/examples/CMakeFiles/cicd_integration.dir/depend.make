# Empty dependencies file for cicd_integration.
# This may be replaced when dependencies are built.
