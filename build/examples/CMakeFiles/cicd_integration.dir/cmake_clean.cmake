file(REMOVE_RECURSE
  "CMakeFiles/cicd_integration.dir/cicd_integration.cpp.o"
  "CMakeFiles/cicd_integration.dir/cicd_integration.cpp.o.d"
  "cicd_integration"
  "cicd_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cicd_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
