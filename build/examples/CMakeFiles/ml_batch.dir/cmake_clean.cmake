file(REMOVE_RECURSE
  "CMakeFiles/ml_batch.dir/ml_batch.cpp.o"
  "CMakeFiles/ml_batch.dir/ml_batch.cpp.o.d"
  "ml_batch"
  "ml_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
