# Empty dependencies file for ml_batch.
# This may be replaced when dependencies are built.
