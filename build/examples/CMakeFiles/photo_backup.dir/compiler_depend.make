# Empty compiler generated dependencies file for photo_backup.
# This may be replaced when dependencies are built.
