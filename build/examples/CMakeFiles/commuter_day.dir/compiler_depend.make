# Empty compiler generated dependencies file for commuter_day.
# This may be replaced when dependencies are built.
