file(REMOVE_RECURSE
  "CMakeFiles/commuter_day.dir/commuter_day.cpp.o"
  "CMakeFiles/commuter_day.dir/commuter_day.cpp.o.d"
  "commuter_day"
  "commuter_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commuter_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
