#!/usr/bin/env sh
# Configure, build, and run the test suite under ASan + UBSan.
#
#   tools/sanitize.sh [build-dir]       (default: build-asan)
#
# Benches and examples are skipped: the sanitizer run exists to shake out
# memory and UB errors in the library and its tests, not to time anything.
set -eu

BUILD_DIR="${1:-build-asan}"
SRC_DIR="$(dirname "$0")/.."

cmake -B "$BUILD_DIR" -S "$SRC_DIR" \
  -DNTCO_SANITIZE=ON \
  -DNTCO_BUILD_BENCHMARKS=OFF \
  -DNTCO_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 2)"
UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure
