#!/usr/bin/env sh
# Configure, build, and run the test suite under a sanitizer family.
#
#   tools/sanitize.sh [address|thread] [build-dir]
#   tools/sanitize.sh --help
#
# Default family is address (ASan + UBSan); `thread` builds with TSan
# instead, which is what the fleet thread-pool tests want (the two families
# cannot be combined in one build — see NTCO_SANITIZE in CMakeLists.txt).
# Benches and examples are skipped: the sanitizer run exists to shake out
# memory, UB, and data-race errors in the library and its tests, not to
# time anything.
#
# These sanitizer runs are the *dynamic* half of the determinism story:
# they only catch what the chosen inputs execute. The static half is
# `ntco-lint` (tools/ci.sh step 2, ctest LintClean), which checks every
# source file for nondeterminism sources, unordered-container iteration,
# stray threading, and layering back-edges without running anything.
set -eu

if [ "${1:-}" = "--help" ] || [ "${1:-}" = "-h" ]; then
  # Print this header comment block (everything up to the first non-# line).
  awk 'NR > 1 { if ($0 !~ /^#/) exit; sub(/^# ?/, ""); print }' "$0"
  exit 0
fi

FAMILY="${1:-address}"
BUILD_DIR="${2:-build-${FAMILY}san}"
SRC_DIR="$(dirname "$0")/.."

cmake -B "$BUILD_DIR" -S "$SRC_DIR" \
  -DNTCO_SANITIZE="$FAMILY" \
  -DNTCO_BUILD_BENCHMARKS=OFF \
  -DNTCO_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 2)"
UBSAN_OPTIONS=halt_on_error=1 ASAN_OPTIONS=detect_leaks=1 \
TSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure
