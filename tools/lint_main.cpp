#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "ntco/lint/lint.hpp"

/// \file lint_main.cpp
/// `ntco-lint` CLI — the static counterpart to the dynamic determinism
/// gates in tools/ci.sh (artifact diffing) and tools/sanitize.sh
/// (ASan/TSan). See DESIGN.md "Static analysis & determinism contract".
///
///   ntco-lint [--root DIR] [--baseline FILE] [--json-out FILE]
///             [--write-baseline FILE] [paths...]
///
/// Scans src/ bench/ tests/ examples/ under --root (or the given relative
/// paths instead), prints `file:line: [Rn] message` for every diagnostic
/// not absorbed by the baseline, and exits non-zero if any remain.

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--root DIR] [--baseline FILE] [--json-out FILE]\n"
         "       [--write-baseline FILE] [paths...]\n"
         "\n"
         "Determinism & layering lint for the ntco tree. Rules:\n"
         "  R1  nondeterminism sources outside sanctioned files\n"
         "  R2  iteration over unordered containers\n"
         "  R3  threading primitives outside src/fleet/\n"
         "  R4  module-layering back-edges (declared DAG over ntco includes)\n"
         "  R5  += accumulation of unordered-container lookups\n"
         "\n"
         "Suppress inline (reason mandatory, counted in the report):\n"
         "  code();  " /* keep the directive non-contiguous in this binary's
                          own source */
      << "// ntco-"
      << "lint: allow(R2) why this is order-insensitive\n"
         "\n"
         "Exit status: 0 clean, 1 new diagnostics, 2 usage/config error.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  std::string json_out;
  std::string write_baseline;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--root") {
      if (const char* v = next()) root = v; else return usage(argv[0]);
    } else if (arg == "--baseline") {
      if (const char* v = next()) baseline_path = v; else return usage(argv[0]);
    } else if (arg == "--json-out") {
      if (const char* v = next()) json_out = v; else return usage(argv[0]);
    } else if (arg == "--write-baseline") {
      if (const char* v = next()) write_baseline = v; else return usage(argv[0]);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ntco-lint: unknown option '" << arg << "'\n";
      return usage(argv[0]);
    } else {
      roots.push_back(arg);
    }
  }

  try {
    ntco::lint::Config cfg = ntco::lint::default_config(root);
    if (!roots.empty()) cfg.roots = roots;

    const ntco::lint::Report report = ntco::lint::run(cfg);

    ntco::lint::Baseline baseline;
    if (!baseline_path.empty())
      baseline = ntco::lint::Baseline::from_file(baseline_path);
    const std::vector<ntco::lint::Diagnostic> fresh =
        baseline.filter_new(report.diagnostics);

    for (const auto& d : fresh)
      std::cout << d.file << ":" << d.line << ": ["
                << ntco::lint::rule_name(d.rule) << "] " << d.message << "\n";

    if (!write_baseline.empty()) {
      std::ofstream out(write_baseline, std::ios::binary);
      if (!out) {
        std::cerr << "ntco-lint: cannot write baseline " << write_baseline
                  << "\n";
        return 2;
      }
      out << ntco::lint::Baseline::to_text(report.diagnostics);
      std::cout << "ntco-lint: wrote baseline with "
                << report.diagnostics.size() << " entries to "
                << write_baseline << "\n";
    }

    if (!json_out.empty()) {
      std::ofstream out(json_out, std::ios::binary);
      if (!out) {
        std::cerr << "ntco-lint: cannot write report " << json_out << "\n";
        return 2;
      }
      out << ntco::lint::to_json(report, fresh);
    }

    std::cout << "ntco-lint: " << report.files_scanned << " files, "
              << report.diagnostics.size() << " diagnostics ("
              << report.diagnostics.size() - fresh.size() << " baselined), "
              << report.suppressions.size() << " suppressions, "
              << fresh.size() << " new\n";
    return fresh.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "ntco-lint: error: " << e.what() << "\n";
    return 2;
  }
}
