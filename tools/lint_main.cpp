#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "ntco/lint/lint.hpp"

/// \file lint_main.cpp
/// `ntco-lint` CLI — the static counterpart to the dynamic determinism
/// gates in tools/ci.sh (artifact diffing) and tools/sanitize.sh
/// (ASan/TSan). See DESIGN.md "Static analysis & determinism contract".
///
///   ntco-lint [--root DIR] [--baseline FILE] [--json-out FILE]
///             [--sarif FILE] [--cache FILE] [--fail-stale]
///             [--write-baseline FILE] [--dump-names] [paths...]
///
/// Scans src/ bench/ tests/ examples/ under --root (or the given relative
/// paths instead), prints `file:line: [Rn] message` for every diagnostic
/// not absorbed by the baseline, and exits non-zero if any remain.

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--root DIR] [--baseline FILE] [--json-out FILE]\n"
         "       [--sarif FILE] [--cache FILE] [--fail-stale]\n"
         "       [--write-baseline FILE] [--dump-names] [paths...]\n"
         "\n"
         "Determinism, layering & hot-path lint for the ntco tree. Rules:\n"
         "  R1  nondeterminism sources outside sanctioned files\n"
         "  R2  iteration over unordered containers\n"
         "  R3  threading primitives outside src/fleet/\n"
         "  R4  module-layering back-edges (declared DAG over ntco includes)\n"
         "  R5  += accumulation of unordered-container lookups\n"
         "  R6  allocation inside hot-path regions (tools/lint_hotpath.txt\n"
         "      or hotpath begin/end markers)\n"
         "  R7  telemetry names missing from src/obs/.../names.hpp (and\n"
         "      dead registry rows)\n"
         "  R8  stale includes / missing direct includes (IWYU-lite)\n"
         "  R9  kernel handler lambdas over the 48-byte InlineFunction SBO\n"
         "\n"
         "  --cache FILE   reuse per-file indexes across runs (content hash)\n"
         "  --sarif FILE   write a SARIF 2.1.0 report next to the JSON one\n"
         "  --fail-stale   exit 1 if any allow() directive silenced nothing\n"
         "  --dump-names   print DESIGN.md markdown tables from the name\n"
         "                 registry and exit\n"
         "\n"
         "Suppress inline (reason mandatory, counted in the report):\n"
         "  code();  " /* keep the directive non-contiguous in this binary's
                          own source */
      << "// ntco-"
      << "lint: allow(R2) why this is order-insensitive\n"
         "\n"
         "Exit status: 0 clean, 1 new diagnostics, 2 usage/config error.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  std::string json_out;
  std::string sarif_out;
  std::string cache_path;
  std::string write_baseline;
  bool fail_stale = false;
  bool dump_names = false;
  std::vector<std::string> roots;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--root") {
      if (const char* v = next()) root = v; else return usage(argv[0]);
    } else if (arg == "--baseline") {
      if (const char* v = next()) baseline_path = v; else return usage(argv[0]);
    } else if (arg == "--json-out") {
      if (const char* v = next()) json_out = v; else return usage(argv[0]);
    } else if (arg == "--sarif") {
      if (const char* v = next()) sarif_out = v; else return usage(argv[0]);
    } else if (arg == "--cache") {
      if (const char* v = next()) cache_path = v; else return usage(argv[0]);
    } else if (arg == "--fail-stale") {
      fail_stale = true;
    } else if (arg == "--dump-names") {
      dump_names = true;
    } else if (arg == "--write-baseline") {
      if (const char* v = next()) write_baseline = v; else return usage(argv[0]);
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ntco-lint: unknown option '" << arg << "'\n";
      return usage(argv[0]);
    } else {
      roots.push_back(arg);
    }
  }

  try {
    ntco::lint::Config cfg = ntco::lint::default_config(root);
    if (!roots.empty()) cfg.roots = roots;

    if (dump_names) {
      const auto entries = ntco::lint::load_names_registry(
          root + "/" + cfg.names_registry);
      if (entries.empty()) {
        std::cerr << "ntco-lint: no entries in " << cfg.names_registry
                  << "\n";
        return 2;
      }
      std::cout << ntco::lint::names_markdown(entries);
      return 0;
    }

    const ntco::lint::Report report = ntco::lint::run(cfg, cache_path);

    ntco::lint::Baseline baseline;
    if (!baseline_path.empty())
      baseline = ntco::lint::Baseline::from_file(baseline_path);
    const std::vector<ntco::lint::Diagnostic> fresh =
        baseline.filter_new(report.diagnostics);

    for (const auto& d : fresh)
      std::cout << d.file << ":" << d.line << ": ["
                << ntco::lint::rule_name(d.rule) << "] " << d.message << "\n";

    if (!write_baseline.empty()) {
      std::ofstream out(write_baseline, std::ios::binary);
      if (!out) {
        std::cerr << "ntco-lint: cannot write baseline " << write_baseline
                  << "\n";
        return 2;
      }
      out << ntco::lint::Baseline::to_text(report.diagnostics);
      std::cout << "ntco-lint: wrote baseline with "
                << report.diagnostics.size() << " entries to "
                << write_baseline << "\n";
    }

    if (!json_out.empty()) {
      std::ofstream out(json_out, std::ios::binary);
      if (!out) {
        std::cerr << "ntco-lint: cannot write report " << json_out << "\n";
        return 2;
      }
      out << ntco::lint::to_json(report, fresh);
    }

    if (!sarif_out.empty()) {
      std::ofstream out(sarif_out, std::ios::binary);
      if (!out) {
        std::cerr << "ntco-lint: cannot write SARIF " << sarif_out << "\n";
        return 2;
      }
      out << ntco::lint::to_sarif(report, fresh);
    }

    if (fail_stale) {
      for (const auto& s : report.stale_suppressions)
        std::cout << s.file << ":" << s.line << ": stale suppression ("
                  << s.rules << ") — its rule no longer fires here\n";
    }

    std::cout << "ntco-lint: " << report.files_scanned << " files ("
              << report.cache_hits << " cached), "
              << report.diagnostics.size() << " diagnostics ("
              << report.diagnostics.size() - fresh.size() << " baselined), "
              << report.suppressions.size() << " suppressions ("
              << report.stale_suppressions.size() << " stale), "
              << fresh.size() << " new\n";
    if (!fresh.empty()) return 1;
    if (fail_stale && !report.stale_suppressions.empty()) return 1;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ntco-lint: error: " << e.what() << "\n";
    return 2;
  }
}
