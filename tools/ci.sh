#!/usr/bin/env sh
# The full CI gate, in dependency order:
#
#   1. configure (warnings are errors: NTCO_WERROR=ON) and build just the
#      ntco-lint target — seconds, not minutes
#   2. run ntco-lint, the static determinism & layering gate (rules R1-R9,
#      see DESIGN.md "Static analysis & determinism contract"): any
#      diagnostic not absorbed by tools/lint_baseline.txt fails here,
#      before the expensive builds — as does any stale suppression
#      (--fail-stale). The phase-1 index cache makes repeat runs
#      sub-second; JSON and SARIF reports land in the build dir
#   3. build everything else (tests, benches, examples)
#   4. run the unit/integration suite (ctest; includes LintClean and
#      LintSelfClean again so a local `ctest` run gets the same gates)
#   5. prove the fleet determinism contract end-to-end:
#      bench_f5_scale_users, bench_f12_broker, bench_f13_fabric_contention,
#      bench_f14_continuum, bench_f15_vehicular, and bench_f16_diurnal must
#      emit byte-identical stdout and NTCO_BENCH_OUT artifacts with
#      NTCO_THREADS=1 and NTCO_THREADS=8
#   6. run bench_micro_sim, bench_micro_fabric, and bench_micro_ring and
#      compare their gated loops against the checked-in
#      BENCH_micro_sim.json / BENCH_micro_fabric.json /
#      BENCH_micro_ring.json baselines: a drop of more than 10% in
#      items_per_second fails the gate (benchmarks are noisy; 10% is
#      beyond run-to-run jitter for these loops). Refresh a baseline by
#      copying the build's JSON to the repo root after a deliberate
#      kernel/fabric/ring change.
#   7. rebuild under ThreadSanitizer and rerun the fleet, broker,
#      fabric-fleet, dataplane, and arrival-fleet suites (everything that
#      exercises the worker pool or the lock-free rings) —
#      ctest -R '^Fleet|^Broker|^FabricFleet|^Dataplane|^ArrivalFleet'
#   8. rebuild under ASan + UBSan and rerun the whole suite
#
#   tools/ci.sh [build-dir]             (default: build-ci)
#
# Steps 7 and 8 use their own build trees (NTCO_SANITIZE is a build-wide
# flag; ASan and TSan cannot share one). Set NTCO_CI_SKIP_SANITIZERS=1 to
# stop after step 6 on machines where two extra builds are too slow.
set -eu

BUILD_DIR="${1:-build-ci}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== [1/8] configure (NTCO_WERROR=ON) + build ntco-lint =="
cmake -B "$BUILD_DIR" -S "$SRC_DIR" \
  -DNTCO_WERROR=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" --target ntco-lint -j "$JOBS"

echo "== [2/8] ntco-lint: static determinism & layering gate =="
"$BUILD_DIR/tools/ntco-lint" \
  --root "$SRC_DIR" \
  --baseline "$SRC_DIR/tools/lint_baseline.txt" \
  --cache "$BUILD_DIR/ntco-lint-cache.txt" \
  --json-out "$BUILD_DIR/ntco-lint-report.json" \
  --sarif "$BUILD_DIR/ntco-lint.sarif" \
  --fail-stale

echo "== [3/8] build everything =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== [4/8] unit + integration tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== [5/8] fleet determinism: F5 + F12-F16 artifacts at NTCO_THREADS=1 vs 8 =="
for det_bench in bench_f5_scale_users bench_f12_broker bench_f13_fabric_contention bench_f14_continuum bench_f15_vehicular bench_f16_diurnal; do
  DET_DIR="$BUILD_DIR/fleet-determinism/$det_bench"
  rm -rf "$DET_DIR"
  mkdir -p "$DET_DIR/t1" "$DET_DIR/t8"
  NTCO_THREADS=1 NTCO_BENCH_OUT="$DET_DIR/t1" \
    "$BUILD_DIR/bench/$det_bench" > "$DET_DIR/t1/stdout.txt" 2>/dev/null
  NTCO_THREADS=8 NTCO_BENCH_OUT="$DET_DIR/t8" \
    "$BUILD_DIR/bench/$det_bench" > "$DET_DIR/t8/stdout.txt" 2>/dev/null
  if ! diff -r "$DET_DIR/t1" "$DET_DIR/t8"; then
    echo "FAIL: $det_bench output differs between NTCO_THREADS=1 and 8" >&2
    exit 1
  fi
  echo "$det_bench: byte-identical across $(ls "$DET_DIR/t1" | wc -l) artifacts"
done

echo "== [6/8] kernel + fabric micro-benches vs checked-in baselines =="
# gate_micro <bench-binary> <baseline.json> <gated loop>...
gate_micro() {
  mb="$1"; baseline="$2"; shift 2
  MB_DIR="$BUILD_DIR/micro-bench/$mb"
  rm -rf "$MB_DIR"
  mkdir -p "$MB_DIR"
  NTCO_BENCH_OUT="$MB_DIR" "$BUILD_DIR/bench/$mb" \
    --benchmark_min_time=0.5 > "$MB_DIR/stdout.txt" 2>&1
  for loop in "$@"; do
    base="$(awk -F': ' -v n="$loop" \
      '$0 ~ "\"" n "\"" { sub(/,.*/, "", $3); print $3 }' \
      "$SRC_DIR/$baseline")"
    cur="$(awk -F': ' -v n="$loop" \
      '$0 ~ "\"" n "\"" { sub(/,.*/, "", $3); print $3 }' \
      "$MB_DIR/$baseline")"
    if [ -z "$base" ] || [ -z "$cur" ]; then
      echo "FAIL: $loop missing from bench output or baseline" >&2
      exit 1
    fi
    if ! awk -v c="$cur" -v b="$base" 'BEGIN { exit !(c >= 0.9 * b) }'; then
      echo "FAIL: $loop regressed >10%: $cur items/s vs baseline $base" >&2
      exit 1
    fi
    echo "$loop: $cur items/s (baseline $base) — within 10% gate"
  done
}
gate_micro bench_micro_sim BENCH_micro_sim.json \
  "BM_ScheduleFireCancel/1024" "BM_ScheduleFireCancel/8192"
gate_micro bench_micro_fabric BENCH_micro_fabric.json \
  "BM_AdmitExpireChurn/1024" "BM_AdmitExpireChurn/8192"
# Only the single-threaded ring loops are gated: the ping-pong and
# epoch-barrier benches spawn threads, and their numbers are scheduler
# noise on shared or single-core runners.
gate_micro bench_micro_ring BENCH_micro_ring.json \
  "BM_RingSinglePushPop/1024" "BM_RingBatchedPushPop/1024"

if [ "${NTCO_CI_SKIP_SANITIZERS:-0}" = "1" ]; then
  echo "== sanitizer stages skipped (NTCO_CI_SKIP_SANITIZERS=1) =="
  exit 0
fi

echo "== [7/8] ThreadSanitizer: fleet + broker + continuum + dataplane + arrivals suites =="
cmake -B "$BUILD_DIR-tsan" -S "$SRC_DIR" \
  -DNTCO_SANITIZE=thread \
  -DNTCO_BUILD_BENCHMARKS=OFF -DNTCO_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR-tsan" \
  --target fleet_test broker_test fabric_test continuum_test dataplane_test \
  arrivals_test \
  -j "$JOBS"
TSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir "$BUILD_DIR-tsan" --output-on-failure \
  -R '^Fleet|^Broker|^FabricFleet|^Dataplane|^ArrivalFleet'

echo "== [8/8] ASan + UBSan: full suite =="
"$SRC_DIR/tools/sanitize.sh" address "$BUILD_DIR-asan"

echo "== CI green =="
