#!/usr/bin/env sh
# The full CI gate, in dependency order:
#
#   1. configure + build everything (tests, benches, examples)
#   2. run the unit/integration suite (ctest)
#   3. prove the fleet determinism contract end-to-end: bench_f5_scale_users
#      must emit byte-identical stdout and NTCO_BENCH_OUT artifacts with
#      NTCO_THREADS=1 and NTCO_THREADS=8
#   4. rebuild under ThreadSanitizer and rerun the fleet suites (the only
#      concurrent code in the repo) — ctest -R '^Fleet'
#   5. rebuild under ASan + UBSan and rerun the whole suite
#
#   tools/ci.sh [build-dir]             (default: build-ci)
#
# Steps 4 and 5 use their own build trees (NTCO_SANITIZE is a build-wide
# flag; ASan and TSan cannot share one). Set NTCO_CI_SKIP_SANITIZERS=1 to
# stop after step 3 on machines where two extra builds are too slow.
set -eu

BUILD_DIR="${1:-build-ci}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== [1/5] configure + build =="
cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== [2/5] unit + integration tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== [3/5] fleet determinism: F5 artifacts at NTCO_THREADS=1 vs 8 =="
DET_DIR="$BUILD_DIR/fleet-determinism"
rm -rf "$DET_DIR"
mkdir -p "$DET_DIR/t1" "$DET_DIR/t8"
NTCO_THREADS=1 NTCO_BENCH_OUT="$DET_DIR/t1" \
  "$BUILD_DIR/bench/bench_f5_scale_users" > "$DET_DIR/t1/stdout.txt"
NTCO_THREADS=8 NTCO_BENCH_OUT="$DET_DIR/t8" \
  "$BUILD_DIR/bench/bench_f5_scale_users" > "$DET_DIR/t8/stdout.txt"
if ! diff -r "$DET_DIR/t1" "$DET_DIR/t8"; then
  echo "FAIL: F5 output differs between NTCO_THREADS=1 and 8" >&2
  exit 1
fi
echo "byte-identical across $(ls "$DET_DIR/t1" | wc -l) artifacts"

if [ "${NTCO_CI_SKIP_SANITIZERS:-0}" = "1" ]; then
  echo "== sanitizer stages skipped (NTCO_CI_SKIP_SANITIZERS=1) =="
  exit 0
fi

echo "== [4/5] ThreadSanitizer: fleet suites =="
cmake -B "$BUILD_DIR-tsan" -S "$SRC_DIR" \
  -DNTCO_SANITIZE=thread \
  -DNTCO_BUILD_BENCHMARKS=OFF -DNTCO_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR-tsan" --target fleet_test -j "$JOBS"
TSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir "$BUILD_DIR-tsan" --output-on-failure -R '^Fleet'

echo "== [5/5] ASan + UBSan: full suite =="
"$SRC_DIR/tools/sanitize.sh" address "$BUILD_DIR-asan"

echo "== CI green =="
