#!/usr/bin/env sh
# The full CI gate, in dependency order:
#
#   1. configure (warnings are errors: NTCO_WERROR=ON) and build just the
#      ntco-lint target — seconds, not minutes
#   2. run ntco-lint, the static determinism & layering gate (rules R1-R5,
#      see DESIGN.md "Static analysis & determinism contract"): any
#      diagnostic not absorbed by tools/lint_baseline.txt fails here,
#      before the expensive builds; the JSON report lands in the build dir
#   3. build everything else (tests, benches, examples)
#   4. run the unit/integration suite (ctest; includes LintClean again so
#      a local `ctest` run gets the same gate)
#   5. prove the fleet determinism contract end-to-end: bench_f5_scale_users
#      and bench_f12_broker must emit byte-identical stdout and
#      NTCO_BENCH_OUT artifacts with NTCO_THREADS=1 and NTCO_THREADS=8
#   6. rebuild under ThreadSanitizer and rerun the fleet + broker suites
#      (everything that exercises the worker pool) — ctest -R
#      '^Fleet|^Broker'
#   7. rebuild under ASan + UBSan and rerun the whole suite
#
#   tools/ci.sh [build-dir]             (default: build-ci)
#
# Steps 6 and 7 use their own build trees (NTCO_SANITIZE is a build-wide
# flag; ASan and TSan cannot share one). Set NTCO_CI_SKIP_SANITIZERS=1 to
# stop after step 5 on machines where two extra builds are too slow.
set -eu

BUILD_DIR="${1:-build-ci}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== [1/7] configure (NTCO_WERROR=ON) + build ntco-lint =="
cmake -B "$BUILD_DIR" -S "$SRC_DIR" \
  -DNTCO_WERROR=ON \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" --target ntco-lint -j "$JOBS"

echo "== [2/7] ntco-lint: static determinism & layering gate =="
"$BUILD_DIR/tools/ntco-lint" \
  --root "$SRC_DIR" \
  --baseline "$SRC_DIR/tools/lint_baseline.txt" \
  --json-out "$BUILD_DIR/ntco-lint-report.json"

echo "== [3/7] build everything =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== [4/7] unit + integration tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== [5/7] fleet determinism: F5 + F12 artifacts at NTCO_THREADS=1 vs 8 =="
for det_bench in bench_f5_scale_users bench_f12_broker; do
  DET_DIR="$BUILD_DIR/fleet-determinism/$det_bench"
  rm -rf "$DET_DIR"
  mkdir -p "$DET_DIR/t1" "$DET_DIR/t8"
  NTCO_THREADS=1 NTCO_BENCH_OUT="$DET_DIR/t1" \
    "$BUILD_DIR/bench/$det_bench" > "$DET_DIR/t1/stdout.txt" 2>/dev/null
  NTCO_THREADS=8 NTCO_BENCH_OUT="$DET_DIR/t8" \
    "$BUILD_DIR/bench/$det_bench" > "$DET_DIR/t8/stdout.txt" 2>/dev/null
  if ! diff -r "$DET_DIR/t1" "$DET_DIR/t8"; then
    echo "FAIL: $det_bench output differs between NTCO_THREADS=1 and 8" >&2
    exit 1
  fi
  echo "$det_bench: byte-identical across $(ls "$DET_DIR/t1" | wc -l) artifacts"
done

if [ "${NTCO_CI_SKIP_SANITIZERS:-0}" = "1" ]; then
  echo "== sanitizer stages skipped (NTCO_CI_SKIP_SANITIZERS=1) =="
  exit 0
fi

echo "== [6/7] ThreadSanitizer: fleet + broker suites =="
cmake -B "$BUILD_DIR-tsan" -S "$SRC_DIR" \
  -DNTCO_SANITIZE=thread \
  -DNTCO_BUILD_BENCHMARKS=OFF -DNTCO_BUILD_EXAMPLES=OFF \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR-tsan" --target fleet_test broker_test -j "$JOBS"
TSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir "$BUILD_DIR-tsan" --output-on-failure -R '^Fleet|^Broker'

echo "== [7/7] ASan + UBSan: full suite =="
"$SRC_DIR/tools/sanitize.sh" address "$BUILD_DIR-asan"

echo "== CI green =="
