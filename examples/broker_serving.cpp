// A city of phones: one broker serving a whole population of
// non-time-critical users through the plan cache, admission control, and
// batch dispatch.
//
// 500 phones release one job each in a two-minute evening burst at 20:00.
// Most users tolerate hours of delay; the broker plans each decision
// context once, defers the burst down to its sustained planning rate, and
// flushes batched executions into the 22:00 off-peak tariff window.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/broker_serving

#include <cmath>
#include <cstdio>
#include <vector>

#include "ntco/app/workloads.hpp"
#include "ntco/broker/broker.hpp"
#include "ntco/common/rng.hpp"
#include "ntco/net/path.hpp"

using namespace ntco;

int main() {
  // 1. The world: a serverless region with an overnight discount, one
  //    budget phone archetype, a WiFi path shared by the population.
  sim::Simulator sim;
  serverless::PlatformConfig pcfg;
  pcfg.price_windows = {{22, 6, 0.55}};  // 22:00-06:00 at 55% of peak
  serverless::Platform cloud(sim, pcfg);
  device::Device phone(device::budget_phone());
  auto path = net::make_fixed_path(net::profile_wifi());
  core::OffloadController controller(sim, cloud, phone, path, {});

  // 2. The broker in front of it. Admission sustains 2 decisions/s with a
  //    small burst: the evening spike defers instead of overwhelming the
  //    planner, and jobs batch toward the cheap window.
  broker::BrokerConfig bcfg;
  bcfg.admission.rate_per_second = 2.0;
  bcfg.admission.burst = 4.0;
  bcfg.admission.min_defer = Duration::seconds(5);
  const partition::MinCutPartitioner mincut;
  broker::Broker b(sim, cloud, controller, mincut, bcfg);

  obs::MetricsRegistry metrics;
  b.attach_observer(nullptr, &metrics);

  // 3. The population: 500 users, mixed workloads, spread link quality and
  //    battery, released within a two-minute burst at 20:00.
  const auto graphs = app::workloads::all();
  Rng rng(2026);
  const TimePoint evening = TimePoint::at(Duration::hours(20));
  const int users = 500;
  for (int u = 0; u < users; ++u) {
    const auto wl = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(graphs.size()) - 1));
    const Duration offset = Duration::minutes(2) * rng.uniform(0.0, 1.0);
    const double battery = rng.uniform(0.05, 1.0);
    const double bw = std::exp2(rng.uniform(-2.0, 2.0));
    sim.schedule_at(evening + offset, [&b, &graphs, wl, battery, bw] {
      broker::ServeRequest req;
      req.app = &graphs[wl];
      req.slack = Duration::hours(8);  // overnight is fine
      req.battery = battery;
      req.bandwidth_scale = bw;
      b.serve(req);
    });
  }
  sim.run();

  // 4. What the serving layer did with the burst.
  const auto& cs = b.cache().stats();
  const auto& as = b.admission().stats();
  const auto& bs = b.dispatcher().stats();
  std::printf("served %llu of %llu requests (%llu shed)\n",
              static_cast<unsigned long long>(b.stats().completed),
              static_cast<unsigned long long>(b.stats().requests),
              static_cast<unsigned long long>(b.stats().shed));
  std::printf("plan cache: %.1f%% hit rate (%llu plans computed for %llu "
              "decisions)\n",
              100.0 * cs.hit_rate(),
              static_cast<unsigned long long>(cs.misses),
              static_cast<unsigned long long>(cs.hits + cs.hysteresis_hits +
                                              cs.misses));
  std::printf("admission: %llu deferrals smoothed the burst\n",
              static_cast<unsigned long long>(as.deferrals));
  std::printf("batching: %llu jobs in %llu batches\n",
              static_cast<unsigned long long>(bs.jobs_dispatched),
              static_cast<unsigned long long>(bs.batches));
  std::printf("cloud bill: $%.4f (%llu cold starts) across %d users\n",
              cloud.total_cost().to_usd(),
              static_cast<unsigned long long>(cloud.stats().cold_starts),
              users);
  return 0;
}
