// Quickstart: offload one non-time-critical application to the serverless
// cloud and compare against running it entirely on the phone.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "ntco/app/workloads.hpp"
#include "ntco/core/controller.hpp"
#include "ntco/obs/metrics.hpp"
#include "ntco/obs/trace.hpp"
#include "ntco/net/path.hpp"

using namespace ntco;

int main() {
  // 1. A simulated world: one event loop, one serverless region, one
  //    budget phone on a 4G uplink.
  sim::Simulator sim;
  serverless::Platform cloud(sim, serverless::PlatformConfig{});
  device::Device phone(device::budget_phone());
  auto path = net::make_fixed_path(net::profile_4g());

  // 2. The offloading controller ties them together. The default objective
  //    is the non-time-critical blend (money-dominant).
  core::OffloadController controller(sim, cloud, phone, path,
                                     core::ControllerConfig{});

  // Optional observability: a trace sink sees every simulator event and
  // every platform/controller span; a registry aggregates the stable
  // metrics (names in DESIGN.md, "Observability"). Detach by not attaching.
  obs::JsonlTraceWriter trace;
  obs::MetricsRegistry metrics;
  sim.set_trace_sink(&trace);
  cloud.attach_observer(&trace, &metrics);
  controller.attach_observer(&trace, &metrics);

  // 3. The application: overnight photo backup with OCR + face indexing.
  const app::TaskGraph photo = app::workloads::photo_backup();
  std::printf("app: %s (%zu components, %zu flows, %s of work)\n",
              photo.name().c_str(), photo.component_count(),
              photo.flow_count(), to_string(photo.total_work()).c_str());

  // 4. Plan with the exact min-cut partitioner and execute end to end.
  const partition::MinCutPartitioner mincut;
  const auto plan = controller.prepare(photo, mincut);
  std::printf("partition: %s (%zu of %zu components offloaded)\n",
              plan.partition.to_string().c_str(),
              plan.partition.remote_count(), photo.component_count());

  const auto offloaded = controller.execute(plan, photo);

  // 5. Baseline: the same app entirely on the phone.
  const partition::LocalOnlyPartitioner local;
  const auto local_plan = controller.prepare(photo, local);
  const auto on_device = controller.execute(local_plan, photo);

  std::printf("\n%-16s %14s %14s %14s\n", "", "makespan", "UE energy",
              "cloud cost");
  std::printf("%-16s %14s %14s %14s\n", "on-device",
              to_string(on_device.makespan).c_str(),
              to_string(on_device.device_energy).c_str(),
              to_string(on_device.cloud_cost).c_str());
  std::printf("%-16s %14s %14s %14s\n", "offloaded",
              to_string(offloaded.makespan).c_str(),
              to_string(offloaded.device_energy).c_str(),
              to_string(offloaded.cloud_cost).c_str());
  std::printf("\nspeedup %.2fx, battery saved %.1f%%, for %s per run\n",
              on_device.makespan / offloaded.makespan,
              (1.0 - offloaded.device_energy.to_joules() /
                         on_device.device_energy.to_joules()) *
                  100.0,
              to_string(offloaded.cloud_cost).c_str());

  // 6. The run left a full audit trail behind: dump it, or write_file()
  //    the JSONL / to_csv() the registry for offline analysis.
  std::printf("\ntrace: %zu records; metrics: %zu instruments\n",
              trace.record_count(), metrics.size());
  return 0;
}
