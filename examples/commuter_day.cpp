// Scenario: a commuter's phone runs the photo-backup pipeline through a
// full day of changing connectivity (home WiFi -> 4G commute -> office
// WiFi -> ...). Uploads triggered on the commute either go out immediately
// over metered 4G or wait for the office WiFi; either way the offloaded
// stages execute in the serverless cloud through the same controller.
//
// Demonstrates: MobilitySchedule + MobileLink behind the OffloadController,
// UploadPlanner's WiFi-wait policy, end-of-day accounting.

#include <cstdio>

#include "ntco/app/workloads.hpp"
#include "ntco/core/controller.hpp"
#include "ntco/net/mobility.hpp"
#include "ntco/sched/upload_planner.hpp"

using namespace ntco;

namespace {

struct DayResult {
  Money cellular_spend;
  Money cloud_spend;
  Energy battery;
  double mean_completion_min = 0.0;
};

DayResult run_day(sched::UploadPlanner::Policy policy) {
  const auto schedule = net::MobilitySchedule::commuter_day();
  sim::Simulator sim;
  serverless::Platform cloud(sim, {});
  device::Device phone(device::budget_phone());

  // The controller's path follows the mobility schedule.
  net::NetworkPath path(
      "mobile",
      std::make_unique<net::MobileLink>(schedule, true,
                                        [&sim] { return sim.now(); }),
      std::make_unique<net::MobileLink>(schedule, false,
                                        [&sim] { return sim.now(); }));
  core::OffloadController controller(sim, cloud, phone, path, {});

  const auto app = app::workloads::photo_backup();
  const partition::MinCutPartitioner mincut;
  const auto plan = controller.prepare(app, mincut);

  sched::UploadPlanner::Config ucfg;
  ucfg.policy = policy;
  const sched::UploadPlanner planner(schedule, phone.spec(), ucfg);

  DayResult day;
  int completed = 0;
  double completion_min_sum = 0.0;

  // 16 photo batches through the day (07:00-22:30, every hour), each with
  // 6 h of slack on its boundary upload.
  for (int i = 0; i < 16; ++i) {
    const auto release =
        TimePoint::origin() +
        Duration::from_seconds((7.0 + static_cast<double>(i)) * 3600.0);
    sim.schedule_at(release, [&, release] {
      // Plan the (4 MB raw-photo) upload within its slack...
      const auto decision = planner.plan(
          release, sched::UploadJob{"batch", DataSize::megabytes(4),
                                    Duration::hours(6)});
      day.cellular_spend += decision.data_cost;
      // ...then run the full pipeline at the planned start, over whatever
      // network the schedule provides then.
      sim.schedule_at(decision.start, [&, release] {
        controller.execute_async(
            plan, app, [&, release](const core::ExecutionReport& r) {
              day.cloud_spend += r.cloud_cost;
              day.battery += r.device_energy;
              // Release-to-finish latency includes any WiFi-wait deferral.
              completion_min_sum += (sim.now() - release).to_seconds() / 60.0;
              ++completed;
            });
      });
    });
  }
  sim.run();
  day.mean_completion_min = completion_min_sum / completed;
  return day;
}

}  // namespace

int main() {
  std::printf("%-16s %14s %14s %12s %16s\n", "policy", "cellular $", "cloud $",
              "battery", "mean runtime");
  for (const auto policy : {sched::UploadPlanner::Policy::Immediate,
                            sched::UploadPlanner::Policy::WaitForFree}) {
    const auto d = run_day(policy);
    std::printf("%-16s %14s %14s %11.1fJ %13.1f min\n",
                policy == sched::UploadPlanner::Policy::Immediate
                    ? "immediate"
                    : "wait-for-wifi",
                to_string(d.cellular_spend).c_str(),
                to_string(d.cloud_spend).c_str(), d.battery.to_joules(),
                d.mean_completion_min);
  }
  std::printf("\nWaiting for WiFi zeroes the metered-data bill and shortens\n"
              "radio time; the cloud bill is identical either way.\n");
  return 0;
}
