// Scenario: a fleet of phones runs overnight photo backup through the
// framework, with profiling driving the partition and a warm pool sized by
// the Erlang-B planner absorbing the nightly burst.
//
// Demonstrates: DemandProfiler -> estimated graph -> prepare() -> warm-pool
// planning -> concurrent execution -> platform accounting.

#include <cstdio>

#include "ntco/alloc/warm_pool.hpp"
#include "ntco/app/workloads.hpp"
#include "ntco/core/controller.hpp"
#include "ntco/profile/profiler.hpp"
#include "ntco/net/path.hpp"

using namespace ntco;

int main() {
  sim::Simulator sim;
  serverless::Platform cloud(sim, serverless::PlatformConfig{});
  device::Device phone(device::budget_phone());
  auto path = net::make_stochastic_path(net::profile_wifi(), Rng(7));
  core::OffloadController controller(sim, cloud, phone, path,
                                     core::ControllerConfig{});

  // The application as shipped; its true demands are unknown to us.
  const app::TaskGraph truth = app::workloads::photo_backup();

  // --- Profile: 60 instrumented runs with 30% run-to-run variation. -----
  profile::TraceGenerator instrumented(truth, 0.3, Rng(21));
  profile::DemandProfiler profiler(truth.component_count(),
                                   truth.flow_count());
  for (int i = 0; i < 60; ++i) profiler.ingest(instrumented.next());
  const auto estimated = profiler.estimated_graph(truth);
  std::printf("profiled %zu runs, worst demand estimate off by %.1f%%\n",
              profiler.trace_count(),
              profiler.max_relative_error(truth) * 100.0);

  // --- Partition + deploy from the estimate. -----------------------------
  const partition::MinCutPartitioner mincut;
  const auto plan = controller.prepare(estimated, mincut);
  std::printf("partition %s: components ", plan.partition.to_string().c_str());
  for (app::ComponentId id = 0; id < truth.component_count(); ++id)
    if (plan.is_remote(id))
      std::printf("[%s -> %s] ", truth.component(id).name.c_str(),
                  to_string(plan.memory_of[id]).c_str());
  std::printf("\n");

  // --- Size a warm pool for the nightly burst: 200 phones over an hour. --
  const double arrivals_per_second = 200.0 / 3600.0;
  alloc::WarmPoolPlanner::Inputs pool_in;
  pool_in.arrivals_per_second = arrivals_per_second;
  pool_in.service_time = Duration::seconds(8);  // rough per-backup service
  pool_in.target_cold_rate = 0.05;
  pool_in.memory = DataSize::megabytes(768);
  const auto pool = alloc::WarmPoolPlanner::plan(pool_in);
  std::printf("warm pool: %zu instances (predicted cold rate %.2f%%, %s/h)\n",
              pool.instances, pool.predicted_cold_rate * 100.0,
              to_string(pool.standing_cost_per_hour).c_str());
  for (app::ComponentId id = 0; id < truth.component_count(); ++id)
    if (const auto fn = plan.function_for(id))
      cloud.set_provisioned_concurrency(*fn, pool.instances);

  // --- The nightly burst: 200 backups with exponential inter-arrivals. ---
  Rng arrivals(99);
  stats::Accumulator makespans;
  Money total_cloud;
  int completed = 0;
  TimePoint next = sim.now();
  for (int i = 0; i < 200; ++i) {
    next = next + Duration::from_seconds(
                      arrivals.exponential(1.0 / arrivals_per_second));
    sim.schedule_at(next, [&] {
      controller.execute_async(plan, truth,
                               [&](const core::ExecutionReport& r) {
                                 makespans.add(r.makespan.to_seconds());
                                 total_cloud += r.cloud_cost;
                                 ++completed;
                               });
    });
  }
  sim.run();

  const auto st = cloud.stats();
  std::printf("\n%d backups: mean makespan %.2f s (min %.2f, max %.2f)\n",
              completed, makespans.mean(), makespans.min(), makespans.max());
  std::printf("cloud: %llu invocations, %llu cold starts (%.1f%%)\n",
              static_cast<unsigned long long>(st.invocations),
              static_cast<unsigned long long>(st.cold_starts),
              100.0 * static_cast<double>(st.cold_starts) /
                  static_cast<double>(st.invocations));
  std::printf("bill: %s for runs, %s total platform (incl. warm pool)\n",
              to_string(total_cloud).c_str(),
              to_string(cloud.total_cost()).c_str());
  return 0;
}
