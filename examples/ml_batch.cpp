// Scenario: periodic on-device model personalisation deferred into the
// night tariff. The job has hours of slack, so the scheduler ships it into
// the cheap window and the bill drops with zero missed deadlines.
//
// Demonstrates: DeferredScheduler policies, time-of-day pricing, the
// latency/cost trade at the heart of "non-time-critical".

#include <cstdio>

#include "ntco/app/workloads.hpp"
#include "ntco/common/rng.hpp"
#include "ntco/sched/deferred_scheduler.hpp"
#include "ntco/net/path.hpp"

using namespace ntco;

namespace {

sched::DeferredReport run_fleet(sched::Policy policy) {
  sim::Simulator sim;
  serverless::PlatformConfig pcfg;
  // Provider discounts nights 22:00-06:00 to 40%.
  pcfg.price_windows = {{22, 6, 0.4}, {6, 22, 1.0}};
  serverless::Platform cloud(sim, pcfg);

  const auto fn = cloud.deploy(serverless::FunctionSpec{
      "personalise", DataSize::megabytes(3072), DataSize::megabytes(150),
      0.95});

  sched::DeferredScheduler::Config scfg;
  scfg.policy = policy;
  sched::DeferredExecutor exec(sim, cloud, fn,
                               sched::DeferredScheduler(cloud, scfg));

  // 50 users trigger personalisation through the day; "by tomorrow
  // morning" semantics give ~18 h of slack.
  Rng rng(5);
  for (int u = 0; u < 50; ++u) {
    const auto release =
        TimePoint::origin() +
        Duration::from_seconds(rng.uniform(7.0, 21.0) * 3600.0);
    sim.schedule_at(release, [&exec, u] {
      exec.submit(sched::DeferredJob{"user-" + std::to_string(u),
                                     Cycles::giga(450), Duration::hours(18)});
    });
  }
  sim.run();
  return exec.report();
}

const char* policy_name(sched::Policy p) {
  switch (p) {
    case sched::Policy::Immediate: return "immediate";
    case sched::Policy::CheapestWindow: return "cheapest-window";
    case sched::Policy::Batched: return "batched";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("%-18s %10s %10s %14s %16s\n", "policy", "jobs", "misses",
              "total cost", "median latency");
  sched::DeferredReport immediate;
  for (const auto policy :
       {sched::Policy::Immediate, sched::Policy::CheapestWindow,
        sched::Policy::Batched}) {
    const auto r = run_fleet(policy);
    if (policy == sched::Policy::Immediate) immediate = r;
    std::printf("%-18s %10llu %10llu %14s %13.1f min\n", policy_name(policy),
                static_cast<unsigned long long>(r.jobs),
                static_cast<unsigned long long>(r.deadline_misses),
                to_string(r.total_cost).c_str(),
                r.completion_latency_s.median() / 60.0);
    if (policy != sched::Policy::Immediate && immediate.jobs > 0)
      std::printf("%-18s %47.1f%% cheaper than immediate\n", "",
                  (1.0 - r.total_cost.to_usd() /
                             immediate.total_cost.to_usd()) *
                      100.0);
  }
  std::printf("\nDelay tolerance is money: same work, same deadlines met,\n"
              "smaller bill — the paper's core argument for keeping\n"
              "non-time-critical offloading in the cloud.\n");
  return 0;
}
