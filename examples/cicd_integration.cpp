// Scenario: offloading decisions live inside the release pipeline. Three
// releases of the on-device personalisation (ML batch training) service:
//   v1  first release — profiled, partitioned, canaried, promoted;
//   v2  built from a corrupted profile — the canary catches the regression
//       and rolls back;
//   v3  triggered by the drift watcher after the workload grows 6x — the
//       re-partition promotes and restores the objective.
//
// Demonstrates: ReleasePipeline stages, canary promotion gates, DriftWatcher.

#include <cstdio>

#include "ntco/app/workloads.hpp"
#include "ntco/cicd/pipeline.hpp"
#include "ntco/net/path.hpp"

using namespace ntco;

namespace {

void print_release(const char* tag, const cicd::ReleaseReport& r) {
  std::printf("\n=== release %s (%s) ===\n", tag,
              r.aborted ? "ABORTED" : (r.promoted ? "PROMOTED" : "ROLLED BACK"));
  for (const auto& s : r.stages)
    std::printf("  %-18s %10s  %s %s\n", s.name.c_str(),
                to_string(s.duration).c_str(), s.ok ? "ok" : "FAIL",
                s.detail.c_str());
  if (!r.aborted)
    std::printf("  canary objective: candidate %.3f vs incumbent %.3f\n",
                r.candidate_objective, r.incumbent_objective);
  std::printf("  wall time: %s\n", to_string(r.total_duration).c_str());
}

}  // namespace

int main() {
  sim::Simulator sim;
  serverless::Platform cloud(sim, serverless::PlatformConfig{});
  device::Device phone(device::budget_phone());
  auto path = net::make_fixed_path(net::profile_4g());
  core::ControllerConfig ccfg;
  ccfg.objective = partition::Objective::latency();
  core::OffloadController controller(sim, cloud, phone, path, ccfg);

  cicd::PipelineConfig pcfg;
  pcfg.canary_runs = 5;
  pcfg.profile_runs = 30;
  pcfg.regression_tolerance = 0.05;  // promote only within 5% of incumbent
  cicd::ReleasePipeline pipeline(sim, controller, pcfg, Rng(11));

  const auto v1_app = app::workloads::ml_batch_training();
  const partition::MinCutPartitioner mincut;

  // v1: first release of the service.
  const auto v1 = pipeline.run_release(v1_app, mincut, nullptr);
  print_release("v1", v1);

  // v2: someone breaks the instrumentation; demands come in 50x too low,
  // so the candidate keeps the heavy forecast stage on the phone.
  const auto v2 = pipeline.run_release(v1_app, mincut, &*v1.plan,
                                       /*profile_bias=*/0.02);
  print_release("v2 (bad profile)", v2);

  // Production drifts: the dataset grows 6x. The watcher sees per-run
  // demand rise and asks for a re-release.
  const auto drifted_app = v1_app.with_work_scaled(6.0);
  cicd::DriftWatcher watcher(0.3, 15);
  for (int i = 0; i < 15; ++i) (void)watcher.observe_run(v1_app.total_work());
  int runs_until_trigger = 0;
  while (!watcher.observe_run(drifted_app.total_work())) ++runs_until_trigger;
  std::printf("\ndrift detected after %d production runs (+%.0f%% demand)\n",
              runs_until_trigger + 1, watcher.relative_change() * 100.0);

  const auto v3 = pipeline.run_release(drifted_app, mincut, &*v1.plan);
  watcher.acknowledge();
  print_release("v3 (post-drift)", v3);

  std::printf("\npipeline verdicts: v1 %s, v2 %s, v3 %s\n",
              v1.promoted ? "promoted" : "rolled back",
              v2.promoted ? "promoted" : "rolled back",
              v3.promoted ? "promoted" : "rolled back");
  return 0;
}
