// F8 — Spot-tier offloading for delay-tolerant jobs: cost versus
// preemption hazard.
//
// Spot-like preemptible FaaS capacity at 0.3x the on-demand price. Only
// jobs with slack can use it, because preemptions force retries. Sweep the
// mean time-to-preempt: when executions are short relative to the hazard,
// spot-with-fallback approaches a 70% saving with zero deadline misses;
// as the hazard approaches the job length, retries eat the discount and
// the fallback increasingly rescues the deadline on on-demand capacity.

#include "bench_common.hpp"
#include "ntco/sched/deferred_scheduler.hpp"

using namespace ntco;

namespace {

sched::DeferredReport run(sched::TierPolicy tier, Duration mean_preempt) {
  sim::Simulator sim;
  serverless::PlatformConfig pcfg;
  pcfg.spot_price_multiplier = 0.3;
  pcfg.spot_mean_time_to_preempt = mean_preempt;
  serverless::Platform cloud(sim, pcfg);
  const auto fn = cloud.deploy(serverless::FunctionSpec{
      "batch", DataSize::megabytes(1792), DataSize::megabytes(40)});

  sched::DeferredScheduler::Config scfg;
  scfg.policy = sched::Policy::Immediate;
  scfg.tier_policy = tier;
  sched::DeferredExecutor exec(sim, cloud, fn,
                               sched::DeferredScheduler(cloud, scfg));
  for (int i = 0; i < 60; ++i)
    sim.schedule_at(TimePoint::origin() + Duration::minutes(10 * i), [&exec] {
      // 100 s of work with 90 min of slack.
      exec.submit(sched::DeferredJob{"job", Cycles::giga(250),
                                     Duration::minutes(90)});
    });
  sim.run();
  return exec.report();
}

}  // namespace

int main() {
  bench::ReportWriter report("F8", "Spot tier vs preemption hazard",
                      "saving ~70% when preemptions are rare; shrinks as "
                      "hazard nears job length; misses stay 0 via fallback");

  const auto od = run(sched::TierPolicy::OnDemandOnly, Duration::zero());
  const double od_cost = od.total_cost.to_usd();

  stats::Table t({"mean time-to-preempt", "preempt/job", "fallbacks",
                  "misses", "$/job", "saving vs on-demand"});
  t.add_row({"on-demand only", "0.00", "0", std::to_string(od.deadline_misses),
             stats::cell(od_cost / static_cast<double>(od.jobs), 6), "0.0%"});
  for (const auto mean_s : {30.0, 60.0, 120.0, 300.0, 900.0, 3600.0, 0.0}) {
    const auto r = run(sched::TierPolicy::SpotWithFallback,
                       Duration::from_seconds(mean_s));
    const std::string label =
        mean_s == 0.0 ? "never (ideal spot)"
                      : stats::cell(mean_s / 60.0, 1) + " min";
    t.add_row({label,
               stats::cell(static_cast<double>(r.spot_preemptions) /
                               static_cast<double>(r.jobs),
                           2),
               std::to_string(r.fallbacks), std::to_string(r.deadline_misses),
               stats::cell(r.total_cost.to_usd() /
                               static_cast<double>(r.jobs),
                           6),
               stats::cell_pct(1.0 - r.total_cost.to_usd() / od_cost, 1)});
  }
  t.set_title("F8: 60 jobs of 100 s work, 90 min slack, spot at 0.3x");
  report.emit(t);
  return 0;
}
