// Micro-benchmark (google-benchmark): flow throughput of the shared
// fabric. Covers the admission hot path (arrival + fair-share integration
// + committed-departure insert), lazy departure expiry, and the
// amortisation guard under a standing population of 100k concurrent flows.
// BM_AdmitExpireChurn is the loop tools/ci.sh gates against the checked-in
// BENCH_micro_fabric.json baseline (>10% regression fails).
//
// Own main: when NTCO_BENCH_OUT names a directory every result is mirrored
// into <dir>/BENCH_micro_fabric.json (same stable schema as
// BENCH_micro_sim.json, parseable with POSIX awk).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "ntco/fabric/fabric.hpp"
#include "ntco/sim/simulator.hpp"

namespace {

using namespace ntco;

/// One segment wide enough that the per-flow access cap always binds, so
/// admission cost — not the share math outcome — is what varies.
struct Bed {
  sim::Simulator sim;
  fabric::Fabric net;
  fabric::SegmentId seg;
  std::unique_ptr<fabric::FabricPath> path;

  explicit Bed(fabric::FabricConfig cfg = {}) : net(sim, cfg) {
    seg = net.add_segment({"lan.up", DataRate::megabits_per_second(100000),
                           Duration::zero()});
    net::PathSpec spec;
    spec.name = "ue";
    spec.up = {DataRate::megabits_per_second(100), Duration::millis(1), 0.0,
               0.0};
    spec.down = spec.up;
    path = net.attach(spec, fabric::Route{{seg}, {seg}});
  }
};

// Pure arrival pressure: admissions against an ever-growing active set.
// Pins the multiset insert + integration cost per flow.
void BM_AdmitFlows(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Bed bed;
    Duration acc;
    for (std::uint64_t i = 0; i < n; ++i)
      acc += bed.path->uplink_time(DataSize::megabytes(1));
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_AdmitFlows)->Arg(1024)->Arg(8192);

// The gated loop: admissions interleaved with simulated-time progress, so
// every arrival both re-shares against the standing population and lazily
// expires the flows that drained meanwhile — the mix a population-scale
// experiment (F13) produces.
void BM_AdmitExpireChurn(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Bed bed;
    Duration acc;
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto at = TimePoint::at(
          Duration::micros(static_cast<std::int64_t>(i) * 500));
      bed.sim.schedule_at(at, [&] {
        acc += bed.path->uplink_time(DataSize::megabytes(1));
      });
    }
    (void)bed.sim.run();
    benchmark::DoNotOptimize(acc);
    benchmark::DoNotOptimize(bed.net.stats().reshare_events);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_AdmitExpireChurn)->Arg(1024)->Arg(8192);

// Amortisation guard: admissions against a standing population of
// `range(0)` concurrent flows (up to 100k). Cost per admission must stay
// bounded by max_reshare_steps, not the population size.
void BM_AdmitUnderStandingLoad(benchmark::State& state) {
  const auto standing = static_cast<std::uint64_t>(state.range(0));
  Bed bed;
  // A standing population that never expires within the measured window.
  for (std::uint64_t i = 0; i < standing; ++i)
    (void)bed.path->uplink_time(DataSize::gigabytes(1));
  Duration acc;
  for (auto _ : state) {
    acc += bed.path->uplink_time(DataSize::megabytes(1));
    benchmark::DoNotOptimize(acc);
  }
  benchmark::DoNotOptimize(bed.net.stats().amortized_tails);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdmitUnderStandingLoad)->Arg(1024)->Arg(102400);

// Re-share stepping: each admission walks departures of the flows ahead.
// Deep ramps (max_reshare_steps) versus the pure snapshot (0) bound the
// integrator's contribution to admission cost.
void BM_ReshareStepping(benchmark::State& state) {
  const auto steps = static_cast<std::size_t>(state.range(0));
  fabric::FabricConfig cfg;
  cfg.max_reshare_steps = steps;
  constexpr std::uint64_t kFlows = 512;
  for (auto _ : state) {
    Bed bed(cfg);
    Duration acc;
    for (std::uint64_t i = 0; i < kFlows; ++i)
      acc += bed.path->uplink_time(DataSize::megabytes(4));
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kFlows) *
                          state.iterations());
}
BENCHMARK(BM_ReshareStepping)->Arg(0)->Arg(64);

// ---------------------------------------------------------------------------
// Reporting: identical mirroring scheme to bench_micro_sim.cpp.

struct CapturedRun {
  std::string name;
  double items_per_second = 0.0;
  double ns_per_item = 0.0;
};

class MirroringReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      CapturedRun c;
      c.name = run.benchmark_name();
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        c.items_per_second = static_cast<double>(it->second);
        if (c.items_per_second > 0.0) c.ns_per_item = 1e9 / c.items_per_second;
      }
      captured.push_back(std::move(c));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  std::vector<CapturedRun> captured;
};

bool write_json(const std::string& path,
                const std::vector<CapturedRun>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"bench\": \"micro_fabric\",\n  \"results\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i)
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"items_per_second\": %.6g, "
                 "\"ns_per_item\": %.6g}%s\n",
                 runs[i].name.c_str(), runs[i].items_per_second,
                 runs[i].ns_per_item, i + 1 < runs.size() ? "," : "");
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  MirroringReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (const char* dir = std::getenv("NTCO_BENCH_OUT");
      dir != nullptr && dir[0] != '\0') {
    const std::string path = std::string(dir) + "/BENCH_micro_fabric.json";
    if (!write_json(path, reporter.captured)) {
      std::fprintf(stderr, "ntco: cannot write %s\n", path.c_str());
      return 1;
    }
  }
  return 0;
}
