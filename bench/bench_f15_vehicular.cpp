// F15 — Vehicular churn under hard deadlines: the two-stage decision
// pipeline versus exact-only planning.
//
// Vehicles stream through a roadside cell as an open-loop Poisson process
// (0.5 vehicles/s per cell), stay for a short exponential link residence
// (mean 45 s), and offer non-time-critical jobs while resident (0.2 req/s
// each). Every request carries a *hard* deadline — the remaining link
// residence: a result that lands after the vehicle leaves the cell is
// worthless. Link quality churns per request (multiplicative exp2 random
// walk across handoffs), so the decision-context keyspace is wider than
// F12's evening burst and the plan cache keeps taking misses throughout
// the window instead of saturating early. Two serving modes face
// identical streams:
//
//   twostage  cache hit, else a cheap all-remote heuristic answers the
//             miss immediately (40 us) while the exact min-cut solve
//             resolves asynchronously (deduped per cache bucket,
//             stretched by ring pressure) and publishes through the
//             cache for the next request in the bucket.
//   exact     every miss waits for the full multi-ms min-cut plan before
//             dispatch (the pre-two-stage broker).
//
// Expected shape: identical arrival streams (same replicator seed), so
// admission sheds the same transfer-infeasible share in both modes — the
// upfront now+est>deadline check fires hard here (roughly half the offers:
// a link-churned vehicle with seconds of residence cannot absorb a
// transfer-dominated job, which is the deadline-constrained admission
// story). The surviving requests tell the pipeline story: two-stage
// collapses miss-path decision latency (p99 drops from multi-ms to
// double-digit us) at an unchanged in-time share (execution, not the
// decision, dominates these multi-second jobs), and the heuristic's
// agreement rate against the exact solver shows how often stage 2 merely
// confirms stage 1 (the non-time-critical objective offloads aggressively,
// so agreement sits high and the fast answer is usually the right answer).
//
// Scale: each fleet shard simulates one independent cell for a 15-minute
// window; shards merge in shard order, so the table and NTCO_BENCH_OUT
// artifacts are byte-identical at any NTCO_THREADS (ci.sh step-5 gate).
// Wall-clock goes to stderr only. Tracing attaches only at the smallest
// point.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ntco/app/arrivals.hpp"
#include "ntco/broker/broker.hpp"
#include "ntco/fleet/replicator.hpp"
#include "ntco/stats/percentile.hpp"

using namespace ntco;

namespace {

constexpr int kTraceCellsCap = 1;        // largest point with tracing
const auto kWindow = Duration::minutes(15);  // per-cell observation window
const auto kStart = Duration::hours(17);     // rush hour

/// Everything one shard (one cell: broker + platform + cache) reports
/// back for the shard-ordered merge.
struct ShardResult {
  stats::PercentileSample decision_us;   // non-shed requests
  std::uint64_t vehicles = 0;
  std::uint64_t requests = 0;
  std::uint64_t completed = 0;
  std::uint64_t in_time = 0;       // finished before the vehicle exited
  std::uint64_t failed = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t shed_queue = 0;
  std::uint64_t deferrals = 0;
  std::uint64_t cache_hits = 0;    // exact + hysteresis
  std::uint64_t cache_misses = 0;
  std::uint64_t fast_serves = 0;
  std::uint64_t resolves = 0;
  std::uint64_t agreements = 0;
  obs::MetricsRegistry metrics;
  obs::JsonlTraceWriter trace;
};

ShardResult simulate_cell(bool two_stage, bool metrics_on, bool trace_on,
                          fleet::ShardContext& ctx) {
  ShardResult out;
  const auto graphs = app::workloads::all();

  // The arrival stream draws first, in a fixed order, so the offered load
  // is a pure function of (seed, shard) — identical across serving modes.
  app::VehicularConfig vcfg;  // defaults: 0.5 veh/s, 45 s residence
  app::ArrivalObserver watch;
  if (trace_on) watch.trace = &out.trace;
  if (metrics_on) watch.metrics = &out.metrics;
  const TimePoint t0 = TimePoint::at(kStart);
  const auto sessions =
      app::vehicular_sessions(vcfg, t0, kWindow, ctx.rng, watch);
  // Each vehicle runs one app for its whole pass through the cell.
  std::vector<std::size_t> vehicle_workload;
  vehicle_workload.reserve(sessions.size());
  for (std::size_t v = 0; v < sessions.size(); ++v)
    vehicle_workload.push_back(static_cast<std::size_t>(ctx.rng.uniform_int(
        0, static_cast<std::int64_t>(graphs.size()) - 1)));

  bench::World w(bench::ntc_cfg(), net::profile_5g(), {});
  partition::MinCutPartitioner mincut;

  broker::BrokerConfig bcfg;
  // Hard sub-minute deadlines: deferral is nearly useless here (the
  // vehicle leaves before a long retry), so admission keeps a modest
  // sustained rate and the deadline checks do the shedding.
  bcfg.admission.rate_per_second = 8.0;
  bcfg.admission.burst = 16.0;
  bcfg.admission.min_defer = Duration::seconds(1);
  bcfg.batching_enabled = false;  // latency matters; no grid alignment
  bcfg.defer.policy = sched::Policy::Immediate;
  bcfg.two_stage_enabled = two_stage;
  broker::Broker b(w.sim, w.cloud, w.controller, mincut, bcfg);
  b.attach_observer(trace_on ? &out.trace : nullptr,
                    metrics_on ? &out.metrics : nullptr);

  out.vehicles = sessions.size();
  for (const app::VehicleSession& s : sessions) {
    const app::TaskGraph& g = graphs[vehicle_workload[s.vehicle]];
    for (const app::VehicleRequest& r : s.requests) {
      ++out.requests;
      const TimePoint exit = s.exit();  // the hard deadline
      w.sim.schedule_at(r.at, [&b, &g, &out, &r, exit] {
        broker::ServeRequest req;
        req.app = &g;
        req.slack = r.residence_left;  // hard deadline: link residence
        req.battery = r.battery;
        req.bandwidth_scale = r.bw_scale;
        b.serve(req, [&out, exit](const broker::ServeOutcome& o) {
          if (o.status == broker::ServeStatus::Shed) {
            if (o.shed_reason == broker::ShedReason::QueueFull)
              ++out.shed_queue;
            else
              ++out.shed_deadline;
            return;
          }
          out.decision_us.add(
              static_cast<double>(o.decision_latency.count_micros()));
          if (o.status == broker::ServeStatus::Completed && o.finished <= exit)
            ++out.in_time;
        });
      });
    }
  }
  w.sim.run();

  out.completed = b.stats().completed;
  out.failed = b.stats().failed;
  out.deferrals = b.admission().stats().deferrals;
  const broker::PlanCacheStats& cs = b.cache().stats();
  out.cache_hits = cs.hits + cs.hysteresis_hits;
  out.cache_misses = cs.misses;
  out.fast_serves = b.twostage().fast_serves;
  out.resolves = b.twostage().resolves;
  out.agreements = b.twostage().agreements;
  return out;
}

}  // namespace

int main() {
  bench::ReportWriter report(
      "F15", "Vehicular churn: two-stage decisions under hard deadlines",
      "two-stage collapses miss-path decision p99 from multi-ms to tens "
      "of us; sheds identical across modes (same streams, same admission)");

  obs::JsonlTraceWriter trace;
  obs::MetricsRegistry metrics;
  const bool observe = report.machine_output();

  stats::Table t({"cells", "mode", "veh", "reqs", "hit rate", "fast", "agree",
                  "shed dl", "shed q", "defers", "dec p50 (us)",
                  "dec p99 (us)", "in-time"});
  for (const int cells : {1, 8, 64}) {
    const bool trace_on = observe && cells <= kTraceCellsCap;
    for (const bool two_stage : {true, false}) {
      const auto wall_start = std::chrono::steady_clock::now();
      // Same replicator seed for both modes: identical vehicle streams,
      // so every delta in the row pair is the pipeline's doing.
      fleet::Replicator rep(53);
      auto merged = rep.reduce(
          static_cast<std::size_t>(cells), ShardResult{},
          [&](fleet::ShardContext& ctx) {
            return simulate_cell(two_stage, observe, trace_on && two_stage,
                                 ctx);
          },
          [](ShardResult& acc, ShardResult&& shard, std::size_t) {
            acc.decision_us.merge(shard.decision_us);
            acc.vehicles += shard.vehicles;
            acc.requests += shard.requests;
            acc.completed += shard.completed;
            acc.in_time += shard.in_time;
            acc.failed += shard.failed;
            acc.shed_deadline += shard.shed_deadline;
            acc.shed_queue += shard.shed_queue;
            acc.deferrals += shard.deferrals;
            acc.cache_hits += shard.cache_hits;
            acc.cache_misses += shard.cache_misses;
            acc.fast_serves += shard.fast_serves;
            acc.resolves += shard.resolves;
            acc.agreements += shard.agreements;
            acc.metrics.merge_from(shard.metrics);
            acc.trace.append_from(shard.trace);
          });
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();

      const std::uint64_t lookups = merged.cache_hits + merged.cache_misses;
      const double hit_rate =
          lookups == 0 ? 0.0
                       : static_cast<double>(merged.cache_hits) /
                             static_cast<double>(lookups);
      const double fast_share =
          merged.requests == 0
              ? 0.0
              : static_cast<double>(merged.fast_serves) /
                    static_cast<double>(merged.requests);
      const double agree_rate =
          merged.resolves == 0 ? 0.0
                               : static_cast<double>(merged.agreements) /
                                     static_cast<double>(merged.resolves);
      const double in_time =
          merged.completed == 0 ? 0.0
                                : static_cast<double>(merged.in_time) /
                                      static_cast<double>(merged.completed);
      t.add_row({std::to_string(cells), two_stage ? "twostage" : "exact",
                 std::to_string(merged.vehicles),
                 std::to_string(merged.requests), stats::cell_pct(hit_rate, 1),
                 stats::cell_pct(fast_share, 1),
                 stats::cell_pct(agree_rate, 1),
                 std::to_string(merged.shed_deadline),
                 std::to_string(merged.shed_queue),
                 std::to_string(merged.deferrals),
                 stats::cell(merged.decision_us.median(), 1),
                 stats::cell(merged.decision_us.p99(), 1),
                 stats::cell_pct(in_time, 1)});

      std::fprintf(stderr, "[F15] cells=%d mode=%s wall=%.2fs reqs/sec=%.0f\n",
                   cells, two_stage ? "twostage" : "exact", wall_s,
                   wall_s > 0.0
                       ? static_cast<double>(merged.requests) / wall_s
                       : 0.0);

      metrics.merge_from(merged.metrics);
      if (trace_on && two_stage) trace.append_from(merged.trace);
    }
  }
  t.set_title(
      "F15: roadside cells at rush hour, 15-minute window (0.5 veh/s/cell, "
      "45 s mean residence, 0.2 req/s/vehicle, hard deadline = remaining "
      "residence, per-request link churn)");
  t.set_caption(
      "both modes face identical vehicle streams (same replicator seed); "
      "exact waits for the min-cut plan on every miss, twostage answers "
      "misses with the all-remote heuristic and resolves exactly in the "
      "background; cells merge in shard order (byte-stable at any "
      "NTCO_THREADS)");
  report.emit(t);
  report.emit_metrics(metrics);
  report.emit_trace(trace);
  return 0;
}
