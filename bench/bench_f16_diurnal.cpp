// F16 — A diurnal day at population scale: one million users replayed
// open-loop through the broker on the dataplane engine.
//
// A full simulated day of open-loop demand: arrivals follow a Markov-
// modulated Poisson process whose base rate traces the residential
// two-peak envelope (morning shoulder, workday trough, dominant 19:00-
// 23:00 evening peak) with a 3x burst chain on top — flash crowds a few
// minutes long, an open-loop stream that keeps coming whether or not the
// broker keeps up. Each arrival is one user offering one non-time-
// critical job with hours of slack; the broker serves with plan cache,
// deadline-aware admission, CheapestWindow deferral into the overnight
// off-peak window (x0.55), and batch dispatch.
//
// Expected shape: the cache keyspace saturates within the first simulated
// hours, so the hit rate plateaus above 80% (TTL-bounded: a
// neighbourhood's arrivals are sparse, so entries must live out their
// tariff window to be reused) and the mean decision stays sub-millisecond
// across the whole day — including through the evening peak, where
// admission defers the overload down to its sustained rate instead of
// shedding it (the non-time-critical premise: overload waits, since
// almost everyone's slack reaches the off-peak window anyway). $/job
// lands near the off-peak multiplier; sheds concentrate in the tight-
// slack tail squeezed by peak-hour backlogs, under 1% of the day.
//
// Scale: each fleet shard replays an independent neighbourhood of the
// same diurnal day (mean ~1.1k arrivals/shard-day); the top point runs
// 1024 shards — >1 M users through brokers in one run. Shards merge in
// shard order, so the table and NTCO_BENCH_OUT artifacts are byte-
// identical at any NTCO_THREADS (ci.sh step-5 gate). Wall-clock goes to
// stderr only. Tracing attaches only up to the kTraceShardsCap point.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ntco/app/arrivals.hpp"
#include "ntco/broker/broker.hpp"
#include "ntco/fleet/replicator.hpp"
#include "ntco/stats/percentile.hpp"

using namespace ntco;

namespace {

constexpr int kTraceShardsCap = 2;  // largest point with tracing attached
const auto kDay = Duration::hours(24);

/// Everything one shard (one neighbourhood: broker + platform + cache)
/// reports back for the shard-ordered merge.
struct ShardResult {
  stats::PercentileSample decision_us;  // non-shed requests
  std::uint64_t users = 0;              // arrivals offered (open loop)
  std::uint64_t peak_hour_users = 0;    // arrivals in 19:00-23:00
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;
  std::uint64_t deferrals = 0;
  std::uint64_t cache_hits = 0;  // exact + hysteresis
  std::uint64_t cache_misses = 0;
  std::uint64_t cold_starts = 0;
  std::uint64_t batches = 0;
  double cloud_usd = 0.0;
  obs::MetricsRegistry metrics;
  obs::JsonlTraceWriter trace;
};

ShardResult simulate_shard(bool metrics_on, bool trace_on,
                           fleet::ShardContext& ctx) {
  ShardResult out;
  const auto graphs = app::workloads::all();

  // The day's arrivals draw first, in a fixed order: the offered load is
  // a pure function of (seed, shard).
  app::MmppConfig acfg;
  acfg.mean_rate_per_second = 1100.0 / (24.0 * 3600.0);  // ~1.1k users/day
  acfg.profile = app::DiurnalProfile::residential_evening();
  acfg.burst_multiplier = 3.0;  // flash crowds on top of the envelope
  app::ArrivalObserver watch;
  if (trace_on) watch.trace = &out.trace;
  if (metrics_on) watch.metrics = &out.metrics;
  const TimePoint t0 = TimePoint::origin();
  const auto arrivals = app::mmpp_arrivals(acfg, t0, kDay, ctx.rng, watch);

  /// One user's draw from the population distribution, fixed order again.
  struct User {
    std::size_t workload = 0;
    Duration slack;
    double battery = 1.0;
    double bw_scale = 1.0;
  };
  std::vector<User> pop;
  pop.reserve(arrivals.size());
  for (std::size_t u = 0; u < arrivals.size(); ++u) {
    User usr;
    usr.workload = static_cast<std::size_t>(ctx.rng.uniform_int(
        0, static_cast<std::int64_t>(graphs.size()) - 1));
    // 10% tight tail (minutes); the rest ride to the off-peak window.
    usr.slack = ctx.rng.uniform(0.0, 1.0) < 0.1
                    ? Duration::minutes(2) +
                          Duration::minutes(6) * ctx.rng.uniform(0.0, 1.0)
                    : Duration::hours(6) +
                          Duration::hours(6) * ctx.rng.uniform(0.0, 1.0);
    usr.battery = ctx.rng.uniform(0.05, 1.0);
    usr.bw_scale = std::exp2(ctx.rng.uniform(-2.0, 2.0));
    pop.push_back(usr);
  }

  serverless::PlatformConfig pcfg;
  pcfg.price_windows = {{22, 6, 0.55}};  // overnight off-peak discount
  bench::World w(bench::ntc_cfg(), net::profile_wifi(), pcfg);
  partition::MinCutPartitioner mincut;

  broker::BrokerConfig bcfg;
  // A neighbourhood's arrivals are sparse (~1 per 80 s), so the default
  // 1 h TTL would expire most entries between uses. Plans are keyed by
  // 6 h tariff window anyway — let them live out their window.
  bcfg.cache.ttl = Duration::hours(6);
  // Sustained planning rate sized to the *mean* day: the evening peak
  // (~2.2x mean, bursts 3x on top) has to defer its overflow into the
  // trough, which is exactly the open-loop story under test.
  bcfg.admission.rate_per_second = 0.05;
  bcfg.admission.burst = 8.0;
  bcfg.admission.min_defer = Duration::seconds(30);
  bcfg.defer.policy = sched::Policy::CheapestWindow;
  broker::Broker b(w.sim, w.cloud, w.controller, mincut, bcfg);
  if (metrics_on) {
    w.controller.attach_observer(nullptr, &out.metrics);
    w.cloud.attach_observer(nullptr, &out.metrics);
  }
  b.attach_observer(trace_on ? &out.trace : nullptr,
                    metrics_on ? &out.metrics : nullptr);

  out.users = arrivals.size();
  for (std::size_t u = 0; u < arrivals.size(); ++u) {
    const TimePoint at = arrivals[u];
    const int hour = static_cast<int>(
        (at.since_origin().count_micros() / 3'600'000'000LL) % 24);
    if (hour >= 19 && hour < 23) ++out.peak_hour_users;
    w.sim.schedule_at(at, [&b, &graphs, &pop, &out, u] {
      const User& usr = pop[u];
      broker::ServeRequest req;
      req.app = &graphs[usr.workload];
      req.slack = usr.slack;
      req.battery = usr.battery;
      req.bandwidth_scale = usr.bw_scale;
      b.serve(req, [&out](const broker::ServeOutcome& o) {
        if (o.status == broker::ServeStatus::Shed) return;
        out.decision_us.add(
            static_cast<double>(o.decision_latency.count_micros()));
      });
    });
  }
  w.sim.run();

  out.completed = b.stats().completed;
  out.failed = b.stats().failed;
  out.shed = b.stats().shed;
  out.deferrals = b.admission().stats().deferrals;
  const broker::PlanCacheStats& cs = b.cache().stats();
  out.cache_hits = cs.hits + cs.hysteresis_hits;
  out.cache_misses = cs.misses;
  out.cold_starts = w.cloud.stats().cold_starts;
  out.batches = b.dispatcher().stats().batches;
  out.cloud_usd = w.cloud.total_cost().to_usd();
  return out;
}

}  // namespace

int main() {
  bench::ReportWriter report(
      "F16", "A diurnal day: a million open-loop users through the broker",
      "hit rate plateaus above 80%, mean decision stays sub-ms through "
      "the evening peak, $/job rides the off-peak multiplier");

  obs::JsonlTraceWriter trace;
  obs::MetricsRegistry metrics;
  const bool observe = report.machine_output();

  stats::Table t({"shards", "users", "peak-4h", "hit rate", "$/job",
                  "dec mean (us)", "dec p99 (us)", "colds", "shed", "defers",
                  "batches"});
  for (const int shards : {2, 16, 1024}) {
    const bool trace_on = observe && shards <= kTraceShardsCap;
    const auto wall_start = std::chrono::steady_clock::now();
    fleet::Replicator rep(61);
    auto merged = rep.reduce(
        static_cast<std::size_t>(shards), ShardResult{},
        [&](fleet::ShardContext& ctx) {
          return simulate_shard(observe, trace_on, ctx);
        },
        [](ShardResult& acc, ShardResult&& shard, std::size_t) {
          acc.decision_us.merge(shard.decision_us);
          acc.users += shard.users;
          acc.peak_hour_users += shard.peak_hour_users;
          acc.completed += shard.completed;
          acc.failed += shard.failed;
          acc.shed += shard.shed;
          acc.deferrals += shard.deferrals;
          acc.cache_hits += shard.cache_hits;
          acc.cache_misses += shard.cache_misses;
          acc.cold_starts += shard.cold_starts;
          acc.batches += shard.batches;
          acc.cloud_usd += shard.cloud_usd;
          acc.metrics.merge_from(shard.metrics);
          acc.trace.append_from(shard.trace);
        });
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

    const std::uint64_t lookups = merged.cache_hits + merged.cache_misses;
    const double hit_rate = lookups == 0
                                ? 0.0
                                : static_cast<double>(merged.cache_hits) /
                                      static_cast<double>(lookups);
    const std::uint64_t served = merged.completed + merged.failed;
    t.add_row({std::to_string(shards), std::to_string(merged.users),
               std::to_string(merged.peak_hour_users),
               stats::cell_pct(hit_rate, 1),
               stats::cell(served == 0 ? 0.0
                                       : merged.cloud_usd /
                                             static_cast<double>(served),
                           6),
               stats::cell(merged.decision_us.mean(), 1),
               stats::cell(merged.decision_us.p99(), 1),
               std::to_string(merged.cold_starts),
               std::to_string(merged.shed), std::to_string(merged.deferrals),
               std::to_string(merged.batches)});

    std::fprintf(stderr, "[F16] shards=%d users=%llu wall=%.2fs jobs/sec=%.0f\n",
                 shards, static_cast<unsigned long long>(merged.users), wall_s,
                 wall_s > 0.0 ? static_cast<double>(merged.users) / wall_s
                              : 0.0);

    metrics.merge_from(merged.metrics);
    if (trace_on) trace.append_from(merged.trace);
  }
  t.set_title(
      "F16: 24 h MMPP day per shard (residential two-peak envelope, 3x "
      "burst chain, ~1.1k users/shard-day; off-peak x0.55 22:00-06:00; "
      "10% tight-slack tail)");
  t.set_caption(
      "open loop: arrivals keep coming at the process rate; the evening "
      "peak defers its overflow into the overnight trough instead of "
      "shedding it; shards merge in shard order (byte-stable at any "
      "NTCO_THREADS)");
  report.emit(t);
  report.emit_metrics(metrics);
  report.emit_trace(trace);
  return 0;
}
