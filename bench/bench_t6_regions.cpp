// T6 — Region selection for offloaded functions.
//
// Delay tolerance means the nearest region is not mandatory: per weighting
// (money / latency / carbon), the selector picks different regions for the
// heavy function of each workload. Expected shape: latency weighting pins
// to near-metro; money-only goes to the cheapest tariff; carbon weighting
// chooses the hydro grid at a ~2% price premium — a nearly free 10-20x
// emissions cut that only non-time-critical work can take.

#include "bench_common.hpp"
#include "ntco/alloc/memory_optimizer.hpp"
#include "ntco/alloc/region_selector.hpp"

using namespace ntco;

int main() {
  bench::ReportWriter report("T6", "Region choice per objective weighting",
                      "latency -> near-metro; money -> cheapest tariff; "
                      "carbon -> hydro grid at ~2% premium");

  sim::Simulator sim;
  serverless::Platform cloud(sim, {});
  const alloc::MemoryOptimizer optimizer(cloud);

  struct Weighting {
    const char* name;
    alloc::RegionSelector::Weights w;
  };
  const Weighting weightings[] = {
      {"money-only", {1.0, 0.0, 0.0}},
      {"latency-heavy", {1.0, 10.0, 0.0}},
      {"carbon-aware", {1.0, 0.0, 0.01}},  // 1 cent per gram equivalent
  };

  stats::Table t({"workload (heaviest fn)", "weighting", "region",
                  "$/invocation", "added RTT", "gCO2/invocation"});
  for (const auto& g : app::workloads::all()) {
    // The workload's heaviest component is its defining function.
    app::ComponentId heavy = 0;
    for (app::ComponentId id = 0; id < g.component_count(); ++id)
      if (g.component(id).work > g.component(heavy).work) heavy = id;
    const auto& comp = g.component(heavy);
    const auto choice = optimizer.choose(comp.work, comp.memory,
                                         comp.parallel_fraction);

    for (const auto& weighting : weightings) {
      const alloc::RegionSelector selector(alloc::default_regions(),
                                           weighting.w);
      const auto pick =
          selector.choose(choice.chosen.cost, choice.chosen.duration);
      t.add_row({g.name() + "/" + comp.name, weighting.name,
                 selector.regions()[pick.region_index].name,
                 stats::cell(pick.cost_per_invocation.to_usd(), 6),
                 to_string(pick.round_trip_overhead),
                 stats::cell(pick.gco2_per_invocation, 2)});
    }
  }
  t.set_title("T6: region menu = near-metro (1.10x, +0 ms), us-east (1.00x, "
              "+35 ms), eu-north (1.02x, +60 ms, 30 g/kWh), ap-south "
              "(0.92x, +90 ms, 700 g/kWh)");
  report.emit(t);
  return 0;
}
