// F7 — Cost versus deferral window under time-of-day pricing.
//
// The same daily job mix under three scheduling policies as the allowed
// deferral (slack) grows from zero to a full day. Immediate is flat at the
// day tariff; CheapestWindow/Batched step down as soon as the window
// reaches the discount period and plateau at the night price. The gap
// between the curves is the money non-time-criticality is worth.

#include "bench_common.hpp"
#include "ntco/sched/deferred_scheduler.hpp"

using namespace ntco;

namespace {

double cost_per_job(sched::Policy policy, double slack_hours) {
  sim::Simulator sim;
  serverless::PlatformConfig pcfg;
  pcfg.price_windows = {{22, 6, 0.4}, {6, 22, 1.0}};
  serverless::Platform cloud(sim, pcfg);
  const auto fn = cloud.deploy(serverless::FunctionSpec{
      "batch", DataSize::megabytes(1792), DataSize::megabytes(40)});
  sched::DeferredScheduler::Config scfg;
  scfg.policy = policy;
  sched::DeferredExecutor exec(sim, cloud, fn,
                               sched::DeferredScheduler(cloud, scfg));
  Rng rng(41);
  for (int j = 0; j < 40; ++j) {
    const auto release =
        TimePoint::origin() +
        Duration::from_seconds(rng.uniform(7.0, 21.0) * 3600.0);
    sim.schedule_at(release, [&exec, slack_hours] {
      exec.submit(sched::DeferredJob{
          "job", Cycles::giga(300),
          Duration::from_seconds(slack_hours * 3600.0)});
    });
  }
  sim.run();
  return exec.report().total_cost.to_usd() /
         static_cast<double>(exec.report().jobs);
}

}  // namespace

int main() {
  bench::ReportWriter report("F7", "Cost vs deferral window under night tariff",
                      "immediate flat; deferring policies step down to the "
                      "0.4x plateau once the window reaches 22:00");

  stats::Table t({"slack (h)", "immediate $/job", "cheapest-window $/job",
                  "batched $/job", "saving"});
  for (const double slack : {0.0, 1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0}) {
    const double imm = cost_per_job(sched::Policy::Immediate, slack);
    const double cheap = cost_per_job(sched::Policy::CheapestWindow, slack);
    const double batched = cost_per_job(sched::Policy::Batched, slack);
    t.add_row({stats::cell(slack, 1), stats::cell(imm, 6),
               stats::cell(cheap, 6), stats::cell(batched, 6),
               stats::cell_pct(1.0 - cheap / imm, 1)});
  }
  t.set_title("F7: 40 daily jobs, 2-minute work each, night tariff 0.4x");
  report.emit(t);
  return 0;
}
