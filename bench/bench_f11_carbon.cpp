// F11 — Carbon-aware deferral: gCO2 per job versus slack.
//
// The sustainability twin of F7: a solar-heavy grid swings 160-520 gCO2/kWh
// over the day; jobs released around the clock defer into the midday trough
// when their slack reaches it. Expected shape: emissions fall monotonically
// with slack toward the trough intensity (~3.2x below the mean of an
// immediate policy), with zero deadline misses throughout.

#include "bench_common.hpp"
#include "ntco/sched/carbon_planner.hpp"

using namespace ntco;

int main() {
  bench::ReportWriter report("F11", "Carbon-aware deferral",
                      "gCO2/job falls toward the solar-trough intensity as "
                      "slack grows; misses stay 0");

  const sched::CarbonAwarePlanner planner(sched::CarbonProfile::solar_grid());
  // One job per hour of the day; each consumes 0.02 kWh in the cloud
  // (e.g. ~7 min of an 8-vCPU burst).
  constexpr double kKwhPerJob = 0.02;
  constexpr Duration kJobDuration = Duration::minutes(7);

  stats::Table t({"slack", "mean gCO2/job", "vs immediate", "mean deferral",
                  "misses"});
  double immediate_gco2 = 0.0;
  for (const double slack_h : {0.0, 2.0, 4.0, 8.0, 12.0, 18.0, 24.0}) {
    double gco2 = 0.0;
    double deferral_h = 0.0;
    int misses = 0;
    for (int h = 0; h < 24; ++h) {
      const auto release = TimePoint::origin() + Duration::hours(h);
      const auto slack = Duration::from_seconds(slack_h * 3600.0);
      const auto start = planner.plan_start(release, slack, kJobDuration);
      gco2 += planner.emissions(start, kKwhPerJob);
      deferral_h += (start - release).to_seconds() / 3600.0;
      if (start + kJobDuration > release + slack && slack_h > 0.0) ++misses;
    }
    gco2 /= 24.0;
    deferral_h /= 24.0;
    if (slack_h == 0.0) immediate_gco2 = gco2;
    t.add_row({stats::cell(slack_h, 0) + " h", stats::cell(gco2, 2),
               slack_h == 0.0
                   ? "-"
                   : "-" + stats::cell_pct(1.0 - gco2 / immediate_gco2, 1),
               stats::cell(deferral_h, 1) + " h", std::to_string(misses)});
  }
  t.set_title("F11: 24 jobs/day, 0.02 kWh each, solar grid 160-520 gCO2/kWh");
  t.set_caption("slack 0 h runs at the release hour's intensity "
                "(day-average); >= 18 h always reaches the 160 g trough");
  report.emit(t);
  return 0;
}
