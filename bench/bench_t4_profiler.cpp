// T4 — Demand-profiler accuracy versus trace volume.
//
// Estimation error of per-component demand and per-flow payload as the
// profiler ingests more instrumented runs, at two noise levels. Error must
// fall roughly as 1/sqrt(n); a few dozen traces suffice for partitioning.

#include "bench_common.hpp"
#include "ntco/profile/profiler.hpp"

using namespace ntco;

int main() {
  bench::ReportWriter report("T4", "Profiler accuracy vs trace volume",
                      "error ~ cv/sqrt(n); <5% by ~100 traces at cv=0.3");

  const auto truth = app::workloads::photo_backup();
  stats::Table t({"traces", "cv=0.2 max err", "cv=0.5 max err",
                  "cv=0.5 mean-of-means err"});
  for (const auto n : {1, 5, 10, 20, 50, 100, 200, 500}) {
    std::vector<std::string> row{std::to_string(n)};
    for (const double cv : {0.2, 0.5}) {
      // Average the max relative error over 20 independent repetitions so
      // the table is stable, not one lucky draw.
      stats::Accumulator err;
      stats::Accumulator mean_err;
      for (std::uint64_t rep = 0; rep < 20; ++rep) {
        profile::TraceGenerator gen(truth, cv, Rng(1000 * rep + 7));
        profile::DemandProfiler prof(truth.component_count(),
                                     truth.flow_count());
        for (int i = 0; i < n; ++i) prof.ingest(gen.next());
        err.add(prof.max_relative_error(truth));
        // Mean error across components (less tail-sensitive).
        double sum = 0.0;
        for (app::ComponentId id = 0; id < truth.component_count(); ++id) {
          const double tw =
              static_cast<double>(truth.component(id).work.value());
          const double ew =
              static_cast<double>(prof.component(id).mean.value());
          sum += std::abs(ew - tw) / tw;
        }
        mean_err.add(sum / static_cast<double>(truth.component_count()));
      }
      row.push_back(stats::cell_pct(err.mean(), 1));
      if (cv == 0.5) row.push_back(stats::cell_pct(mean_err.mean(), 1));
    }
    t.add_row(std::move(row));
  }
  t.set_title("T4: demand estimation error (photo-backup, 20 repetitions)");
  t.set_caption("max err = worst component/flow; cv = run-to-run variation");
  report.emit(t);
  return 0;
}
