// F14 — Edge–cloud continuum: federated placement with live job migration.
//
// One region serves a diurnal population of delay-tolerant jobs from two
// small edge sites (2 servers each, cheap per-server-hour) federated with
// an elastic serverless cloud whose execution price triples during
// daytime. At hour 10 one edge site drains for a two-hour maintenance
// window (graceful failure) and comes back at hour 12 — right at peak
// load, when the surviving site alone cannot carry the region.
//
// Four policies over the identical arrival tape:
//   continuum   edge-first placement, spillover to cloud, live migration
//   cont-restart the same, but preempted jobs restart from zero (ablation)
//   edge-only   the two edge sites federated with no cloud behind them
//   cloud-only  everything on serverless, no edge infrastructure
//
// Expected shape: continuum beats edge-only on deadline misses under the
// failure (the cloud absorbs the displaced peak) and beats cloud-only on
// cost (edge server-seconds at $0.06/h vs daytime serverless at ~3x that);
// live migration beats restart-from-zero on mean completion in the
// spot-heavy regime of the second table, where preemptions are frequent
// enough that losing earned execution dominates completion time.
//
// Scale & determinism: each of the 8 shards owns its Simulator, platforms,
// paths, and Federation; shards merge in shard order, so stdout and every
// NTCO_BENCH_OUT artifact are byte-identical at any NTCO_THREADS (gated in
// tools/ci.sh step 5). Tracing attaches on shard 0 only to bound the
// artifact.

#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ntco/continuum/federation.hpp"
#include "ntco/continuum/migration.hpp"
#include "ntco/fleet/replicator.hpp"
#include "ntco/stats/percentile.hpp"

using namespace ntco;

namespace {

constexpr std::size_t kShards = 8;

// Jobs offered per hour in one shard's region (diurnal tape; the 10-12
// maintenance window lands on the plateau).
constexpr int kHourly[24] = {5,  4,  4,  4,  4,  5,  15, 25, 35, 45, 50, 50,
                             48, 48, 45, 42, 40, 35, 30, 25, 20, 15, 10, 8};

const Duration kDeadline = Duration::minutes(15);

struct Job {
  Duration at;      // arrival offset from midnight
  Cycles work;      // 240-720 Gcyc: 2-6 min on a 2 GHz edge server
  DataSize input;
};

std::vector<Job> arrival_tape(fleet::ShardContext& ctx) {
  std::vector<Job> jobs;
  for (int h = 0; h < 24; ++h)
    for (int j = 0; j < kHourly[h]; ++j)
      jobs.push_back(
          {Duration::hours(h) + Duration::seconds(ctx.rng.uniform_int(0, 3599)),
           Cycles::giga(
               static_cast<std::uint64_t>(ctx.rng.uniform_int(240, 720))),
           DataSize::megabytes(
               static_cast<std::uint64_t>(ctx.rng.uniform_int(2, 8)))});
  return jobs;
}

net::PathSpec flat_spec(std::string name, DataRate rate, Duration latency) {
  net::PathSpec s;
  s.name = std::move(name);
  s.up = {rate, latency, 0.0, 0.0};
  s.down = {rate, latency, 0.0, 0.0};
  return s;
}

edgesim::EdgeConfig edge_site_config() {
  edgesim::EdgeConfig cfg;
  cfg.servers = 2;
  cfg.server_speed = Frequency::gigahertz(2.0);
  cfg.infra_cost_per_server_hour = Money::from_usd(0.06);
  cfg.request_overhead = Duration::millis(2);
  return cfg;
}

serverless::PlatformConfig cloud_cfg() {
  serverless::PlatformConfig cfg;
  cfg.spot_mean_time_to_preempt = Duration::zero();
  // Daytime demand triples the serverless execution price — the diurnal
  // tariff the continuum arbitrages by keeping the plateau on the edge.
  cfg.price_windows = {{8, 20, 3.0}};
  return cfg;
}

serverless::FunctionSpec cloud_fn_spec() {
  serverless::FunctionSpec fn;
  fn.name = "job";
  fn.memory = DataSize::megabytes(1792);
  fn.image = DataSize::megabytes(20);
  return fn;
}

enum class Policy { Continuum, ContinuumRestart, EdgeOnly, CloudOnly };

struct WorldResult {
  stats::PercentileSample completion;  // seconds
  std::uint64_t completed = 0;
  std::uint64_t misses = 0;
  double cost_usd = 0.0;
  std::uint64_t migrations = 0;
  std::uint64_t restarts = 0;
  std::uint64_t spillovers = 0;
  std::uint64_t parked = 0;

  void merge(const WorldResult& o) {
    completion.merge(o.completion);
    completed += o.completed;
    misses += o.misses;
    cost_usd += o.cost_usd;
    migrations += o.migrations;
    restarts += o.restarts;
    spillovers += o.spillovers;
    parked += o.parked;
  }
};

WorldResult run_world(Policy policy, const std::vector<Job>& tape,
                      obs::JsonlTraceWriter* trace) {
  sim::Simulator sim;
  edgesim::EdgePlatform edge_a(sim, edge_site_config());
  edgesim::EdgePlatform edge_b(sim, edge_site_config());
  serverless::Platform cloud(sim, cloud_cfg());
  const auto fn = cloud.deploy(cloud_fn_spec());

  auto lan_a = net::make_path(
      flat_spec("lanA", DataRate::megabits_per_second(800), Duration::millis(1)));
  auto lan_b = net::make_path(
      flat_spec("lanB", DataRate::megabits_per_second(800), Duration::millis(1)));
  auto wan = net::make_path(
      flat_spec("wan", DataRate::megabits_per_second(100), Duration::millis(25)));
  auto ab = net::make_path(
      flat_spec("a-b", DataRate::megabits_per_second(200), Duration::millis(5)));
  auto ba = net::make_path(
      flat_spec("b-a", DataRate::megabits_per_second(200), Duration::millis(5)));
  auto ac = net::make_path(
      flat_spec("a-c", DataRate::megabits_per_second(100), Duration::millis(20)));
  auto bc = net::make_path(
      flat_spec("b-c", DataRate::megabits_per_second(100), Duration::millis(20)));

  const bool has_edge = policy != Policy::CloudOnly;
  const bool has_cloud =
      policy == Policy::Continuum || policy == Policy::ContinuumRestart;

  continuum::FederationConfig fcfg;
  fcfg.live_migration = policy != Policy::ContinuumRestart;
  continuum::Federation fed(sim, fcfg);
  if (has_edge) {
    fed.add_site(continuum::Site(0, "edge-a", continuum::SiteTier::Edge,
                                 edge_a, lan_a));
    fed.add_site(continuum::Site(1, "edge-b", continuum::SiteTier::Edge,
                                 edge_b, lan_b));
    fed.set_route(0, 1, ab);
    fed.set_route(1, 0, ba);
  }
  if (has_cloud || policy == Policy::CloudOnly) {
    const auto c = fed.add_site(continuum::Site(
        static_cast<continuum::SiteId>(fed.site_count()), "cloud",
        continuum::SiteTier::Cloud, cloud, fn, wan));
    if (has_edge) {
      fed.set_route(0, c, ac);
      fed.set_route(1, c, bc);
    }
  }
  if (trace != nullptr) fed.attach_observer(trace, nullptr);

  WorldResult out;
  for (const Job& j : tape) {
    sim.schedule_at(TimePoint::origin() + j.at, [&, j] {
      continuum::JobSpec spec;
      spec.work = j.work;
      spec.input = j.input;
      spec.output = DataSize::megabytes(2);
      spec.state = DataSize::megabytes(4);
      spec.deadline = kDeadline;
      fed.submit(spec, [&](const continuum::JobOutcome& o) {
        ++out.completed;
        if (!o.deadline_met) ++out.misses;
        out.completion.add(o.completion.to_seconds());
        out.cost_usd += o.cost.to_usd();
      });
    });
  }

  // Maintenance window: edge-a drains gracefully at 10:00, back at 12:00.
  if (has_edge) {
    sim.schedule_at(TimePoint::origin() + Duration::hours(10),
                    [&] { fed.fail_site(0); });
    sim.schedule_at(TimePoint::origin() + Duration::hours(12),
                    [&] { fed.restore_site(0); });
  }
  sim.run();

  out.migrations = fed.stats().migrations;
  out.restarts = fed.stats().restarts;
  out.spillovers = fed.stats().spillovers;
  out.parked = fed.stats().parked;
  return out;
}

// --- Spot-heavy migration ablation (second table) -------------------------
//
// 100 one-minute jobs land on a spot-priced serverless site whose mean
// time-to-preempt (2 min) is of the same order as the job length, next to
// an on-demand sibling. With live migration the engine resumes each
// preempted job with its credit (usually staying put); the ablation loses
// the credit on every preemption and re-earns it from zero.

WorldResult run_spot_world(bool live, const std::vector<Job>& tape) {
  sim::Simulator sim;
  serverless::PlatformConfig pcfg;
  pcfg.spot_mean_time_to_preempt = Duration::seconds(120);
  pcfg.seed = 0xF14;
  serverless::Platform cloud(sim, pcfg);
  const auto fn = cloud.deploy(cloud_fn_spec());
  auto wan_a = net::make_path(
      flat_spec("wanA", DataRate::megabits_per_second(100), Duration::millis(25)));
  auto wan_b = net::make_path(
      flat_spec("wanB", DataRate::megabits_per_second(100), Duration::millis(25)));
  auto ab = net::make_path(
      flat_spec("s-o", DataRate::megabits_per_second(200), Duration::millis(5)));

  continuum::FederationConfig fcfg;
  fcfg.live_migration = live;
  continuum::Federation fed(sim, fcfg);
  continuum::SiteConfig spot_cfg;
  spot_cfg.faas_tier = serverless::Tier::Spot;
  fed.add_site(continuum::Site(0, "spot", continuum::SiteTier::Cloud, cloud,
                               fn, wan_a, spot_cfg));
  fed.add_site(continuum::Site(1, "on-demand", continuum::SiteTier::Cloud,
                               cloud, fn, wan_b));
  fed.set_route(0, 1, ab);

  WorldResult out;
  for (const Job& j : tape) {
    sim.schedule_at(TimePoint::origin() + j.at, [&, j] {
      continuum::JobSpec spec;
      spec.work = Cycles::giga(150);  // 60 s at the 2.5 GHz cloud
      spec.input = DataSize::megabytes(2);
      spec.output = DataSize::megabytes(1);
      spec.state = DataSize::megabytes(4);
      fed.submit(spec, [&](const continuum::JobOutcome& o) {
        ++out.completed;
        out.completion.add(o.completion.to_seconds());
        out.cost_usd += o.cost.to_usd();
      });
    });
  }
  sim.run();
  out.migrations = fed.stats().migrations + fed.stats().stay_puts;
  out.restarts = fed.stats().restarts + fed.stats().stay_puts * (live ? 0 : 1);
  return out;
}

std::vector<Job> spot_tape(fleet::ShardContext& ctx) {
  std::vector<Job> jobs;
  for (int j = 0; j < 100; ++j)
    jobs.push_back({Duration::seconds(ctx.rng.uniform_int(0, 3599)),
                    Cycles::giga(150), DataSize::megabytes(2)});
  return jobs;
}

const char* policy_name(Policy p) {
  switch (p) {
    case Policy::Continuum: return "continuum";
    case Policy::ContinuumRestart: return "cont-restart";
    case Policy::EdgeOnly: return "edge-only";
    default: return "cloud-only";
  }
}

}  // namespace

int main() {
  bench::ReportWriter report(
      "F14", "Edge-cloud continuum: federated placement + live migration",
      "continuum < edge-only on deadline misses under the maintenance "
      "window, < cloud-only on cost under the diurnal tariff; live "
      "migration < restart-from-zero on mean completion in the spot "
      "regime");

  obs::JsonlTraceWriter trace;
  const bool observe = report.machine_output();

  struct ShardOut {
    WorldResult by_policy[4];
    obs::JsonlTraceWriter trace;
  };

  fleet::Replicator rep(14);
  auto merged = rep.reduce(
      kShards, ShardOut{},
      [&](fleet::ShardContext& ctx) {
        ShardOut out;
        const auto tape = arrival_tape(ctx);
        for (int p = 0; p < 4; ++p)
          out.by_policy[p] = run_world(
              static_cast<Policy>(p), tape,
              observe && ctx.shard == 0 && p == 0 ? &out.trace : nullptr);
        return out;
      },
      [](ShardOut& acc, ShardOut&& shard, std::size_t) {
        for (int p = 0; p < 4; ++p)
          acc.by_policy[p].merge(shard.by_policy[p]);
        acc.trace.append_from(shard.trace);
      });
  trace.append_from(merged.trace);

  stats::Table t({"policy", "completed", "miss %", "mean (s)", "p95 (s)",
                  "cost ($)", "migrations", "restarts", "spillovers",
                  "parked"});
  for (int p = 0; p < 4; ++p) {
    const WorldResult& w = merged.by_policy[p];
    t.add_row({policy_name(static_cast<Policy>(p)),
               std::to_string(w.completed),
               stats::cell(100.0 * static_cast<double>(w.misses) /
                               static_cast<double>(w.completed), 2),
               stats::cell(w.completion.mean(), 1),
               stats::cell(w.completion.p95(), 1), stats::cell(w.cost_usd, 2),
               std::to_string(w.migrations), std::to_string(w.restarts),
               std::to_string(w.spillovers), std::to_string(w.parked)});
  }
  t.set_title(
      "F14: diurnal day (602 jobs/shard, 8 shards; 240-720 Gcyc, 15 min "
      "deadline); edge-a in maintenance 10:00-12:00; edge $0.06/server-h, "
      "serverless 3x price 08:00-20:00");
  t.set_caption(
      "continuum spills the displaced peak to the cloud (few misses, "
      "cheap off-peak edges); edge-only eats the backlog as deadline "
      "misses; cloud-only pays the daytime tariff for every job; shards "
      "merge in shard order (byte-stable at any NTCO_THREADS)");
  report.emit(t);

  fleet::Replicator srep(15);
  struct SpotOut {
    WorldResult live, restart;
  };
  auto spot = srep.reduce(
      kShards, SpotOut{},
      [&](fleet::ShardContext& ctx) {
        const auto tape = spot_tape(ctx);
        return SpotOut{run_spot_world(true, tape),
                       run_spot_world(false, tape)};
      },
      [](SpotOut& acc, SpotOut&& shard, std::size_t) {
        acc.live.merge(shard.live);
        acc.restart.merge(shard.restart);
      });

  stats::Table s({"arm", "completed", "mean (s)", "p95 (s)", "cost ($)"});
  s.add_row({"live migration", std::to_string(spot.live.completed),
             stats::cell(spot.live.completion.mean(), 1),
             stats::cell(spot.live.completion.p95(), 1),
             stats::cell(spot.live.cost_usd, 2)});
  s.add_row({"restart-from-zero", std::to_string(spot.restart.completed),
             stats::cell(spot.restart.completion.mean(), 1),
             stats::cell(spot.restart.completion.p95(), 1),
             stats::cell(spot.restart.cost_usd, 2)});
  s.set_title(
      "F14 ablation: 100 jobs/shard x 60 s on a spot site (mean "
      "time-to-preempt 120 s) next to an on-demand sibling");
  s.set_caption(
      "with credit carried across preemptions every interruption costs "
      "only the resume overhead; without it, each preemption re-earns the "
      "whole prefix");
  report.emit(s);
  report.emit_trace(trace);
  return 0;
}
