// T3 — Serverless memory-size allocation.
//
// The duration/cost curve of two representative functions (highly parallel
// `train`, weakly parallel `forecast`) over the provider's memory range,
// plus the optimiser's pick under several per-invocation deadlines. The
// curve must show: duration falls with memory (steeply below one vCPU,
// Amdahl-limited above), cost has an interior minimum, and deadlines move
// the pick up the memory axis.

#include "bench_common.hpp"
#include "ntco/alloc/memory_optimizer.hpp"

using namespace ntco;

namespace {

void curve_for(bench::ReportWriter& report, const char* name, Cycles work,
               DataSize floor, double parallel,
               const alloc::MemoryOptimizer& opt) {
  stats::Table t({"memory (MB)", "duration (s)", "cost ($)", "note"});
  const auto unconstrained = opt.choose(work, floor, parallel);
  for (const auto mb :
       {128, 256, 512, 1024, 1792, 2048, 3072, 5120, 7168, 10240}) {
    const auto mem = DataSize::megabytes(static_cast<std::uint64_t>(mb));
    if (mem < floor) continue;
    const auto curve =
        opt.sweep(work, mem, parallel, DataSize::megabytes(10240));
    const auto& p = curve.front();
    t.add_row({std::to_string(mb), stats::cell(p.duration.to_seconds(), 2),
               stats::cell(p.cost.to_usd(), 6),
               p.memory == unconstrained.chosen.memory ? "<- cost-optimal"
                                                       : ""});
  }
  t.set_title(std::string("T3: memory curve for '") + name + "' (" +
              to_string(work) + ", parallel fraction " +
              stats::cell(parallel, 2) + ")");
  report.emit(t);

  stats::Table picks({"deadline", "chosen memory (MB)", "duration (s)",
                      "cost ($)", "feasible"});
  for (const auto deadline_s : {0.5, 2.0, 10.0, 30.0, 120.0, 1e9}) {
    const auto c = opt.choose(work, floor, parallel,
                              Duration::from_seconds(deadline_s));
    picks.add_row({deadline_s > 1e8 ? "none" : stats::cell(deadline_s, 1) + " s",
                   std::to_string(c.chosen.memory.count_bytes() / 1'000'000),
                   stats::cell(c.chosen.duration.to_seconds(), 2),
                   stats::cell(c.chosen.cost.to_usd(), 6),
                   c.feasible ? "yes" : "NO"});
  }
  picks.set_title(std::string("T3: optimiser picks for '") + name +
                  "' under deadlines");
  report.emit(picks);
}

}  // namespace

int main() {
  bench::ReportWriter report("T3", "Serverless memory allocation",
                      "interior cost optimum; deadlines buy memory; "
                      "Amdahl caps the useful range");
  sim::Simulator s;
  serverless::Platform cloud(s, {});
  const alloc::MemoryOptimizer opt(cloud);

  const auto ml = app::workloads::ml_batch_training();
  const auto& train = ml.component(2);  // "train"
  curve_for(report, "train", train.work, train.memory, train.parallel_fraction,
            opt);

  const auto etl = app::workloads::nightly_etl();
  const auto& forecast = etl.component(4);  // "forecast"
  curve_for(report, "forecast", forecast.work, forecast.memory,
            forecast.parallel_fraction, opt);
  return 0;
}
