// F3 — Cold-start amortisation: latency percentiles and cost versus
// provisioned warm-pool size.
//
// Traffic is bursty — fan-out bursts of 1-10 concurrent invocations
// separated by gaps longer than the keep-alive window — which is exactly
// where serverless cold starts hurt: every burst lands on a cold function.
// Provisioning a pool the size of the typical burst removes the tail
// (p95/p99 collapse to the warm latency) while the standing capacity cost
// grows linearly. Steady high-rate traffic would hide this because
// keep-alive reuse keeps instances warm for free (see A2).

#include "bench_common.hpp"
#include "ntco/alloc/warm_pool.hpp"

using namespace ntco;

int main() {
  bench::ReportWriter report("F3", "Warm pool vs latency tail and cost (bursty)",
                      "cold rate and p95/p99 fall as pool covers the burst "
                      "size; cost rises linearly with the pool");

  const auto kWork = Cycles::giga(1);  // 1.4 s at 512 MB
  const auto kMemory = DataSize::megabytes(512);
  const auto kHorizon = Duration::hours(4);
  const auto kMeanGap = Duration::minutes(6);  // > keep-alive: bursts go cold

  stats::Table t({"pool", "invocations", "cold rate", "p50 (s)", "p95 (s)",
                  "p99 (s)", "total cost ($)"});
  for (const std::size_t pool : {0u, 1u, 2u, 4u, 6u, 8u, 12u}) {
    sim::Simulator sim;
    serverless::PlatformConfig pcfg;
    pcfg.keep_alive = Duration::minutes(2);
    serverless::Platform cloud(sim, pcfg);
    const auto fn = cloud.deploy(
        serverless::FunctionSpec{"worker", kMemory, DataSize::megabytes(60)});
    cloud.set_provisioned_concurrency(fn, pool);

    // One capture instead of three keeps the burst handler inside the
    // kernel's inline buffer (lint R9), so scheduling it never allocates.
    struct Tally {
      stats::PercentileSample latency;
      std::uint64_t colds = 0;
      std::uint64_t total = 0;
    } tally;
    Rng rng(17);
    TimePoint at = TimePoint::origin();
    for (;;) {
      at = at + Duration::from_seconds(
                    rng.exponential(kMeanGap.to_seconds()));
      if (at.since_origin() > kHorizon) break;
      const auto burst = rng.uniform_int(1, 10);
      sim.schedule_at(at, [&cloud, fn, kWork, burst, &tally] {
        for (std::int64_t i = 0; i < burst; ++i)
          cloud.invoke(fn, kWork,
                       [&](const serverless::InvocationResult& r) {
                         tally.latency.add(
                             (r.finished - r.submitted).to_seconds());
                         if (r.cold_start) ++tally.colds;
                         ++tally.total;
                       });
      });
    }
    sim.run_until(TimePoint::origin() + kHorizon + Duration::minutes(10));

    t.add_row({std::to_string(pool), std::to_string(tally.total),
               stats::cell_pct(static_cast<double>(tally.colds) /
                                   static_cast<double>(tally.total),
                               1),
               stats::cell(tally.latency.median(), 2),
               stats::cell(tally.latency.p95(), 2),
               stats::cell(tally.latency.p99(), 2),
               stats::cell(cloud.total_cost().to_usd(), 4)});
  }
  t.set_title("F3: bursts of 1-10 invocations every ~6 min (exp), 4 h, "
              "512 MB function, 2 min keep-alive");
  report.emit(t);
  return 0;
}
