// A1 — Partitioner ablation on random DAG families.
//
// (a) Solution quality: mean gap to the exhaustive optimum over random
//     layered DAGs small enough to enumerate. Min-cut must be 0%; greedy
//     and annealing close; random/remote-all far.
// (b) Scaling: planning time as graphs grow to hundreds of components,
//     where only min-cut remains both optimal and fast.

#include <chrono>
#include <vector>

#include "bench_common.hpp"
#include "ntco/app/generators.hpp"
#include "ntco/fleet/replicator.hpp"
#include "ntco/partition/partitioners.hpp"

using namespace ntco;

namespace {

partition::Environment random_env(Rng& rng) {
  partition::Environment env;
  env.device = device::budget_phone();
  env.remote_speed = Frequency::gigahertz(rng.uniform(1.5, 6.0));
  env.uplink = DataRate::megabits_per_second(
      static_cast<std::uint64_t>(rng.uniform_int(2, 80)));
  env.downlink = env.uplink * 2.0;
  env.uplink_latency = Duration::millis(rng.uniform_int(5, 60));
  env.downlink_latency = env.uplink_latency;
  return env;
}

app::TaskGraph random_graph(std::size_t components, Rng& rng) {
  app::GeneratorParams gp;
  gp.components = components;
  gp.mean_work =
      Cycles::mega(static_cast<std::uint64_t>(rng.uniform_int(100, 4000)));
  gp.mean_flow = DataSize::kilobytes(
      static_cast<std::uint64_t>(rng.uniform_int(20, 2000)));
  const auto layers =
      std::max<std::size_t>(2, std::min<std::size_t>(components / 3, 6));
  return app::layered_random(layers, gp, rng.fork(1));
}

}  // namespace

int main() {
  bench::ReportWriter report("A1", "Partitioner ablation on random DAGs",
                      "min-cut 0% gap at all sizes; heuristic gaps grow; "
                      "exhaustive infeasible past ~20 components");

  // --- (a) Quality against ground truth (small graphs). ------------------
  // Trials are independent, so they run as fleet shards: each shard owns
  // its own portfolio (the Random/Annealing baselines keep internal rng
  // state) and its per-algorithm gaps merge in shard order.
  {
    stats::Table t({"algorithm", "mean gap", "max gap", "opt found"});
    const int kTrials = 30;
    const auto names = [] {
      std::vector<std::string> out;
      for (const auto& p : partition::standard_portfolio(11))
        out.push_back(p->name());
      return out;
    }();

    struct TrialResult {
      std::vector<double> gaps;
      std::vector<bool> exact;
    };
    fleet::Replicator rep(500);
    const auto trials = rep.map(
        static_cast<std::size_t>(kTrials), [&](fleet::ShardContext& ctx) {
          auto portfolio = partition::standard_portfolio(11 + ctx.shard);
          Rng rng = ctx.rng;
          const auto g = random_graph(
              static_cast<std::size_t>(rng.uniform_int(8, 16)), rng);
          const partition::CostModel model(g, random_env(rng),
                                           partition::Objective::latency());
          const double opt =
              model.evaluate(partition::ExhaustivePartitioner().plan(model));
          TrialResult out;
          for (const auto& p : portfolio) {
            const double got = model.evaluate(p->plan(model));
            out.gaps.push_back(got / opt - 1.0);
            out.exact.push_back(got <= opt * (1.0 + 1e-9));
          }
          return out;
        });

    std::vector<stats::Accumulator> gap(names.size());
    std::vector<int> exact_hits(names.size(), 0);
    for (const TrialResult& trial : trials) {  // shard order
      for (std::size_t a = 0; a < names.size(); ++a) {
        gap[a].add(trial.gaps[a]);
        if (trial.exact[a]) ++exact_hits[a];
      }
    }
    for (std::size_t a = 0; a < names.size(); ++a)
      t.add_row({names[a], stats::cell_pct(gap[a].mean(), 1),
                 stats::cell_pct(gap[a].max(), 1),
                 stats::cell_pct(static_cast<double>(exact_hits[a]) / kTrials,
                                 0)});
    t.set_title("A1a: gap to exhaustive optimum (30 random DAGs, 8-16 "
                "components, fleet-parallel trials)");
    report.emit(t);
  }

  // --- (b) Planning-time scaling. -----------------------------------------
  {
    stats::Table t({"components", "min-cut (us)", "greedy (us)",
                    "annealing (us)", "greedy gap to min-cut"});
    for (const std::size_t n : {16u, 32u, 64u, 128u, 256u, 512u}) {
      Rng rng(900 + n);
      const auto g = random_graph(n, rng);
      const partition::CostModel model(g, random_env(rng),
                                       partition::Objective::latency());
      auto timed = [&](const partition::Partitioner& p, double* value) {
        const auto begin = std::chrono::steady_clock::now();
        const auto plan = p.plan(model);
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - begin)
                            .count();
        *value = model.evaluate(plan);
        return us;
      };
      double cut_v = 0, greedy_v = 0, anneal_v = 0;
      const auto cut_us = timed(partition::MinCutPartitioner{}, &cut_v);
      const auto greedy_us = timed(partition::GreedyPartitioner{}, &greedy_v);
      partition::AnnealingPartitioner::Params ap;
      ap.iterations = 20'000;
      const auto anneal_us =
          timed(partition::AnnealingPartitioner(ap, rng.fork(2)), &anneal_v);
      t.add_row({std::to_string(n), std::to_string(cut_us),
                 std::to_string(greedy_us), std::to_string(anneal_us),
                 stats::cell_pct(greedy_v / cut_v - 1.0, 2)});
    }
    t.set_title("A1b: planning time vs graph size (single run per size)");
    report.emit(t);
  }
  return 0;
}
