// F10 — Connectivity-aware transfer deferral ("WiFi-wait"): metered-data
// cost, radio energy, and completion latency versus slack.
//
// A commuter's phone produces uploads (photo batches, model deltas) through
// the day, including during metered 4G commutes. The WaitForFree policy
// defers commute-time uploads to the next WiFi phase when the slack
// reaches it. Expected shape: at zero slack both policies pay the cellular
// tariff for commute uploads; within an hour of slack the metered spend
// drops to zero and radio energy falls (WiFi's faster uplink means less
// radio-on time), at the price of completion latency. This is the
// textbook win only non-time-critical traffic can have.

#include "bench_common.hpp"
#include "ntco/sched/upload_planner.hpp"

using namespace ntco;

int main() {
  bench::ReportWriter report("F10", "WiFi-wait upload deferral",
                      "metered spend -> $0 and radio energy falls once "
                      "slack reaches the next WiFi phase; latency is the "
                      "price");

  const auto schedule = net::MobilitySchedule::commuter_day();
  const auto device = device::budget_phone();

  // A day of uploads: 20 MB batches every 30 min from 07:00 to 19:00
  // (covers both commutes and both WiFi locations).
  struct Release {
    double hour;
    DataSize bytes;
  };
  std::vector<Release> releases;
  for (double h = 7.0; h < 19.0; h += 0.5)
    releases.push_back({h, DataSize::megabytes(20)});

  stats::Table t({"slack", "policy", "metered $/day", "radio J/day",
                  "mean deferral (min)", "uploads on 4G"});
  for (const double slack_h : {0.0, 0.25, 0.5, 1.0, 2.0, 6.0}) {
    for (const bool wait : {false, true}) {
      sched::UploadPlanner::Config cfg;
      cfg.policy = wait ? sched::UploadPlanner::Policy::WaitForFree
                        : sched::UploadPlanner::Policy::Immediate;
      const sched::UploadPlanner planner(schedule, device, cfg);

      Money spend;
      Energy energy;
      double deferral_min = 0.0;
      int on_cellular = 0;
      for (const auto& r : releases) {
        const auto release =
            TimePoint::origin() + Duration::from_seconds(r.hour * 3600.0);
        const auto d = planner.plan(
            release, sched::UploadJob{
                         "batch", r.bytes,
                         Duration::from_seconds(slack_h * 3600.0)});
        spend += d.data_cost;
        energy += d.radio_energy;
        deferral_min += (d.start - release).to_seconds() / 60.0;
        if (d.tech != "WiFi") ++on_cellular;
      }
      t.add_row({stats::cell(slack_h, 2) + " h",
                 wait ? "wait-for-wifi" : "immediate",
                 stats::cell(spend.to_usd(), 4),
                 stats::cell(energy.to_joules(), 1),
                 stats::cell(deferral_min / static_cast<double>(releases.size()), 1),
                 std::to_string(on_cellular)});
    }
  }
  t.set_title("F10: 24 x 20 MB uploads across a commuter day, $4/GB "
              "cellular");
  report.emit(t);
  return 0;
}
