// A3 — End-to-end effect of profiling volume on partition quality.
//
// Plans built from 1..100-trace profiles, executed against the true
// application, versus the plan built from the truth itself. With one noisy
// trace the partition can be wrong enough to cost tens of percent; by a few
// dozen traces the measured objective converges to the truth-plan level —
// the operational answer to "how long must the profile stage run?".

#include "bench_common.hpp"
#include "ntco/profile/profiler.hpp"

using namespace ntco;

int main() {
  bench::ReportWriter report("A3", "Profile volume -> partition quality",
                      "measured regret shrinks to ~0 within a few dozen "
                      "traces");

  const auto truth = app::workloads::nightly_etl();
  constexpr double kCv = 0.6;  // noisy instrumentation
  constexpr int kReps = 10;

  // Reference: plan from the truth, measured on the truth (warm).
  const auto measure = [&truth](const app::TaskGraph& planning_view,
                                std::uint64_t seed) {
    (void)seed;
    bench::World w(bench::latency_cfg(), net::profile_4g());
    const auto plan =
        w.controller.prepare(planning_view, partition::MinCutPartitioner{});
    (void)w.controller.execute(plan, truth);  // warm instances
    return w.controller.execute(plan, truth).makespan.to_seconds();
  };
  const double reference = measure(truth, 0);

  stats::Table t({"traces", "mean makespan (s)", "regret vs truth-plan",
                  "worst rep"});
  for (const int n : {1, 3, 5, 10, 30, 100}) {
    stats::Accumulator makespan;
    double worst = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      profile::TraceGenerator gen(
          truth, kCv, Rng(10'000 + static_cast<std::uint64_t>(rep)));
      profile::DemandProfiler prof(truth.component_count(),
                                   truth.flow_count());
      for (int i = 0; i < n; ++i) prof.ingest(gen.next());
      const double m = measure(prof.estimated_graph(truth),
                               static_cast<std::uint64_t>(rep));
      makespan.add(m);
      worst = std::max(worst, m);
    }
    t.add_row({std::to_string(n), stats::cell(makespan.mean(), 2),
               stats::cell_pct(makespan.mean() / reference - 1.0, 1),
               stats::cell(worst, 2)});
  }
  t.add_row({"truth", stats::cell(reference, 2), "0.0%", "-"});
  t.set_title("A3: nightly-etl, cv=0.6 instrumentation noise, 10 reps, "
              "latency objective (warm runs)");
  report.emit(t);
  return 0;
}
