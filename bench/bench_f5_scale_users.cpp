// F5 — Edge site versus serverless cloud as user count grows, at
// population scale on the fleet engine.
//
// N users each submit one 10 Gcycle job within a one-minute window. The
// edge site (4 servers, LAN latency, standing infrastructure cost) wins on
// response time at low load; past ~4 concurrent jobs its queue grows
// linearly while the serverless cloud keeps scaling out (cold starts are
// its only penalty). Per-job cost: the edge is ruinous at low utilisation
// (idle servers still bill) and only approaches the serverless price when
// saturated — exactly the "required infrastructure" drawback the abstract
// cites, and why non-time-critical work should skip the edge.
//
// Scale: points past kShardUsers users split the population into
// independent shards of kShardUsers users, each owning its own edge site
// (4 servers) and serverless region — the geographic reality of edge
// deployments (every site serves only its local users) and the reason the
// serverless side "just scales". Shards run in parallel on the fleet
// (NTCO_THREADS workers) and their results merge in shard order, so the
// table and every NTCO_BENCH_OUT artifact are byte-identical at any
// worker count. Tracing attaches only up to kTraceUsersCap users to keep
// the trace artifact bounded; the metrics registry covers every point.

#include <vector>

#include "bench_common.hpp"
#include "ntco/fleet/replicator.hpp"

using namespace ntco;

namespace {

constexpr int kShardUsers = 128;      // users one edge site serves
constexpr int kTraceUsersCap = 1024;  // largest point with tracing attached

const auto kWork = Cycles::giga(10);
const auto kWindow = Duration::minutes(1);
const auto kDay = Duration::hours(24);  // edge amortisation period

/// Everything one shard (one edge site + one serverless region, serving
/// `users` local users) reports back for the shard-ordered merge.
struct ShardResult {
  stats::PercentileSample edge_latency;
  stats::PercentileSample cloud_latency;
  double edge_util = 0.0;       // window load extrapolated to a full day
  double edge_infra_usd = 0.0;  // 24 h of this site's infrastructure
  double cloud_usd = 0.0;
  std::uint64_t cold_starts = 0;
  obs::MetricsRegistry metrics;
  obs::JsonlTraceWriter trace;
};

ShardResult simulate_shard(int users, bool metrics_on, bool trace_on,
                           fleet::ShardContext& ctx) {
  ShardResult out;

  // One arrival offset per user, shared by the edge and cloud runs so the
  // two platforms face the identical burst.
  std::vector<Duration> arrival;
  arrival.reserve(static_cast<std::size_t>(users));
  for (int u = 0; u < users; ++u)
    arrival.push_back(kWindow * ctx.rng.uniform(0.0, 1.0));

  // --- Edge site: 4 servers, jobs burst within the window. ---------------
  {
    sim::Simulator esim;
    edgesim::EdgeConfig ecfg;
    ecfg.servers = 4;
    edgesim::EdgePlatform edge(esim, ecfg);
    net::NetworkPath elan = net::make_fixed_path(net::profile_edge_lan());
    for (int u = 0; u < users; ++u) {
      esim.schedule_at(TimePoint::origin() + arrival[static_cast<std::size_t>(u)], [&] {
        // Request and response ride the LAN around the queue+exec.
        const Duration up = elan.uplink().transfer_time(DataSize::megabytes(2));
        esim.schedule_after(up, [&, up] {
          edge.submit(kWork, [&, up](const edgesim::EdgeResult& r) {
            const Duration down =
                elan.downlink().transfer_time(DataSize::kilobytes(200));
            out.edge_latency.add(
                (r.finished - r.submitted + down + up).to_seconds());
          });
        });
      });
    }
    esim.run();
    // Amortise a day of infrastructure over this window's share of a
    // day's identical windows: the site exists all day either way.
    esim.run_until(TimePoint::origin() + kDay);
    out.edge_util = edge.utilization() * (kDay / kWindow);
    out.edge_infra_usd = edge.infrastructure_cost().to_usd();
  }

  // --- Serverless: same burst, same work. --------------------------------
  {
    sim::Simulator csim;
    serverless::Platform cloud(csim, {});
    net::NetworkPath wan = net::make_fixed_path(net::profile_wifi());
    if (trace_on) {
      csim.set_trace_sink(&out.trace);
      wan.set_trace(&out.trace, &csim);
    }
    if (metrics_on)
      cloud.attach_observer(trace_on ? &out.trace : nullptr, &out.metrics);
    const auto fn = cloud.deploy(serverless::FunctionSpec{
        "job", DataSize::megabytes(1792), DataSize::megabytes(40)});
    for (int u = 0; u < users; ++u) {
      csim.schedule_at(TimePoint::origin() + arrival[static_cast<std::size_t>(u)], [&] {
        const Duration up = wan.uplink().transfer_time(DataSize::megabytes(2));
        csim.schedule_after(up, [&, up] {
          cloud.invoke(fn, kWork, [&, up](const serverless::InvocationResult& r) {
            const Duration down =
                wan.downlink().transfer_time(DataSize::kilobytes(200));
            out.cloud_latency.add(
                (r.finished - r.submitted + down + up).to_seconds());
          });
        });
      });
    }
    csim.run();
    out.cold_starts = cloud.stats().cold_starts;
    out.cloud_usd = cloud.total_cost().to_usd();
  }
  return out;
}

}  // namespace

int main() {
  bench::ReportWriter report("F5", "Edge vs serverless under load",
                      "edge p95 explodes past its capacity; serverless p95 "
                      "flat; edge $/job falls with load, serverless flat");

  // Machine-readable observability for the whole sweep: per-shard streams
  // and registries merge in shard order, so two runs with the same seeds
  // must produce byte-identical files at any NTCO_THREADS.
  obs::JsonlTraceWriter trace;
  obs::MetricsRegistry metrics;
  const bool observe = report.machine_output();

  stats::Table t({"users", "sites", "edge p95 (s)", "cloud p95 (s)",
                  "edge util", "edge $/job", "cloud $/job", "cloud colds"});
  for (const int users :
       {1, 2, 4, 8, 16, 32, 64, 128, 1024, 10240, 102400}) {
    const int shards = (users + kShardUsers - 1) / kShardUsers;
    const int shard_users = users < kShardUsers ? users : kShardUsers;
    const bool trace_on = observe && users <= kTraceUsersCap;

    fleet::Replicator rep(31);
    auto merged = rep.reduce(
        static_cast<std::size_t>(shards), ShardResult{},
        [&](fleet::ShardContext& ctx) {
          return simulate_shard(shard_users, observe, trace_on, ctx);
        },
        [](ShardResult& acc, ShardResult&& shard, std::size_t) {
          acc.edge_latency.merge(shard.edge_latency);
          acc.cloud_latency.merge(shard.cloud_latency);
          acc.edge_util += shard.edge_util;
          acc.edge_infra_usd += shard.edge_infra_usd;
          acc.cloud_usd += shard.cloud_usd;
          acc.cold_starts += shard.cold_starts;
          acc.metrics.merge_from(shard.metrics);
          acc.trace.append_from(shard.trace);
        });

    const double edge_jobs_per_day =
        static_cast<double>(users) * (kDay / kWindow);
    t.add_row({std::to_string(users), std::to_string(shards),
               stats::cell(merged.edge_latency.p95(), 2),
               stats::cell(merged.cloud_latency.p95(), 2),
               stats::cell_pct(merged.edge_util / shards, 1),
               stats::cell(merged.edge_infra_usd / edge_jobs_per_day, 6),
               stats::cell(merged.cloud_usd / users, 6),
               std::to_string(merged.cold_starts)});
    metrics.merge_from(merged.metrics);
    if (trace_on) trace.append_from(merged.trace);
  }
  t.set_title("F5: one 10 Gcyc job per user in a 1-minute window "
              "(per site: edge 4 x 3 GHz servers; cloud 1792 MB functions; "
              "128 users/site past one site)");
  t.set_caption("edge util extrapolates the window's load to a full day; "
                "edge $/job amortises 24 h of per-site infrastructure; "
                "shards merge in shard order (byte-stable at any "
                "NTCO_THREADS)");
  report.emit(t);
  report.emit_metrics(metrics);
  report.emit_trace(trace);
  return 0;
}
