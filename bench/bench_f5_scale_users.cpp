// F5 — Edge site versus serverless cloud as user count grows.
//
// N users each submit one 10 Gcycle job within a one-minute window. The
// edge site (4 servers, LAN latency, standing infrastructure cost) wins on
// response time at low load; past ~4 concurrent jobs its queue grows
// linearly while the serverless cloud keeps scaling out (cold starts are
// its only penalty). Per-job cost: the edge is ruinous at low utilisation
// (idle servers still bill) and only approaches the serverless price when
// saturated — exactly the "required infrastructure" drawback the abstract
// cites, and why non-time-critical work should skip the edge.

#include "bench_common.hpp"

using namespace ntco;

int main() {
  bench::ReportWriter report("F5", "Edge vs serverless under load",
                      "edge p95 explodes past its capacity; serverless p95 "
                      "flat; edge $/job falls with load, serverless flat");

  const auto kWork = Cycles::giga(10);
  const auto kWindow = Duration::minutes(1);
  const auto kDay = Duration::hours(24);  // edge amortisation period

  // Machine-readable observability for the whole sweep: every per-user
  // serverless simulation appends to one trace stream and one registry,
  // so two runs with the same seeds must produce byte-identical files.
  obs::JsonlTraceWriter trace;
  obs::MetricsRegistry metrics;
  const bool observe = report.machine_output();

  stats::Table t({"users", "edge p95 (s)", "cloud p95 (s)", "edge util",
                  "edge $/job", "cloud $/job", "cloud colds"});
  for (const int users : {1, 2, 4, 8, 16, 32, 64, 128}) {
    // --- Edge site: 4 servers, jobs burst within the window. -------------
    sim::Simulator esim;
    edgesim::EdgeConfig ecfg;
    ecfg.servers = 4;
    edgesim::EdgePlatform edge(esim, ecfg);
    net::NetworkPath elan = net::make_fixed_path(net::profile_edge_lan());
    stats::PercentileSample edge_latency;
    Rng erng(31);
    for (int u = 0; u < users; ++u) {
      const auto at = TimePoint::origin() +
                      kWindow * erng.uniform(0.0, 1.0);
      esim.schedule_at(at, [&] {
        // Request and response ride the LAN around the queue+exec.
        const Duration up = elan.uplink().transfer_time(DataSize::megabytes(2));
        esim.schedule_after(up, [&, up] {
          edge.submit(kWork, [&, up](const edgesim::EdgeResult& r) {
            const Duration down =
                elan.downlink().transfer_time(DataSize::kilobytes(200));
            edge_latency.add((r.finished - r.submitted + down + up).to_seconds());
          });
        });
      });
    }
    esim.run();
    // Amortise a day of infrastructure over this window's share of a
    // day's identical windows: the site exists all day either way.
    esim.run_until(TimePoint::origin() + kDay);
    const double edge_jobs_per_day =
        static_cast<double>(users) * (kDay / kWindow);
    const double edge_cost_per_job =
        edge.infrastructure_cost().to_usd() / edge_jobs_per_day;

    // --- Serverless: same burst, same work. ------------------------------
    sim::Simulator csim;
    serverless::Platform cloud(csim, {});
    net::NetworkPath wan = net::make_fixed_path(net::profile_wifi());
    if (observe) {
      csim.set_trace_sink(&trace);
      cloud.attach_observer(&trace, &metrics);
      wan.set_trace(&trace, &csim);
    }
    const auto fn = cloud.deploy(serverless::FunctionSpec{
        "job", DataSize::megabytes(1792), DataSize::megabytes(40)});
    stats::PercentileSample cloud_latency;
    Rng crng(31);
    for (int u = 0; u < users; ++u) {
      const auto at = TimePoint::origin() + kWindow * crng.uniform(0.0, 1.0);
      csim.schedule_at(at, [&] {
        const Duration up = wan.uplink().transfer_time(DataSize::megabytes(2));
        csim.schedule_after(up, [&, up] {
          cloud.invoke(fn, kWork, [&, up](const serverless::InvocationResult& r) {
            const Duration down =
                wan.downlink().transfer_time(DataSize::kilobytes(200));
            cloud_latency.add(
                (r.finished - r.submitted + down + up).to_seconds());
          });
        });
      });
    }
    csim.run();
    const auto cstats = cloud.stats();
    const double cloud_cost_per_job =
        cloud.total_cost().to_usd() / static_cast<double>(users);

    t.add_row({std::to_string(users), stats::cell(edge_latency.p95(), 2),
               stats::cell(cloud_latency.p95(), 2),
               stats::cell_pct(edge.utilization() * (kDay / kWindow), 1),
               stats::cell(edge_cost_per_job, 6),
               stats::cell(cloud_cost_per_job, 6),
               std::to_string(cstats.cold_starts)});
  }
  t.set_title("F5: one 10 Gcyc job per user in a 1-minute window "
              "(edge: 4 x 3 GHz servers; cloud: 1792 MB functions)");
  t.set_caption("edge util extrapolates the window's load to a full day; "
                "edge $/job amortises 24 h of 4-server infrastructure");
  report.emit(t);
  report.emit_metrics(metrics);
  report.emit_trace(trace);
  return 0;
}
