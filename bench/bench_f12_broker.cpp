// F12 — The offload broker at population scale: plan caching, admission
// control, and batch dispatch versus per-request planning.
//
// A city of phones wakes up in the evening: N users release one
// non-time-critical job each within a two-minute burst at simulated 20:00,
// most with hours of slack, a tight tail (10%) with only minutes. Two
// serving modes face the identical population:
//
//   broker   plan cache + CheapestWindow deferral + batch dispatch. Hits
//            serve a cached DeploymentPlan in microseconds; execution
//            shifts into the 22:00-06:00 off-peak window (x0.55) and
//            flushes as lane-chained batches that reuse warm instances.
//   nocache  the pre-broker baseline: every admitted request replans from
//            scratch and dispatches immediately at full evening price.
//
// Expected shape: cache hit rate rises with population (the decision-
// context keyspace saturates: ~4 workloads x ~5 bandwidth buckets x 4
// battery buckets inside one price window, well under the per-shard cache
// capacity of 256) and plateaus around 90%+; $/job drops by roughly the
// off-peak multiplier; mean and p99 decision latency collapse because hits
// cost 5 us against multi-ms replans. Admission defers the burst down to
// its sustained rate in both modes; the tight tail sheds once the backlog
// outgrows its slack.
//
// Scale: points past kShardUsers split into independent shards of
// kShardUsers users, each with its own broker, platform, and cache (a
// broker serves one region; caches do not gossip). Shards run on the fleet
// engine and merge in shard order, so the table and every NTCO_BENCH_OUT
// artifact are byte-identical at any NTCO_THREADS — wall-clock throughput
// goes to stderr only, keeping stdout deterministic for the CI byte-diff
// gate. Tracing attaches only up to kTraceUsersCap users.
//
// NTCO_F12_SCALE=1 appends a 1,048,576-user point (1024 shards), broker
// mode only: the nocache baseline replans every request at multi-ms each,
// which is hours of wall clock at this population, and its contrast is
// already established by the default points. The default point list is
// unchanged, so the ci.sh byte-diff artifacts never see the knob. The
// stderr line carries the dataplane's view of each parallel run —
// epochs/sec, mean ring occupancy, and the per-core item split.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ntco/broker/broker.hpp"
#include "ntco/dataplane/engine.hpp"
#include "ntco/fleet/replicator.hpp"
#include "ntco/stats/percentile.hpp"

using namespace ntco;

namespace {

constexpr int kShardUsers = 1024;     // users one broker serves
constexpr int kTraceUsersCap = 1024;  // largest point with tracing attached

const auto kBurst = Duration::minutes(2);  // evening release window
const auto kEvening = Duration::hours(20);

/// One user's draw from the population distribution. Drawn up front, in a
/// fixed order, so the population is a pure function of the shard stream.
struct User {
  std::size_t workload = 0;
  Duration offset;   // release time within the burst
  Duration slack;    // delay tolerance
  double battery = 1.0;
  double bw_scale = 1.0;
};

/// Everything one shard (one broker + platform + cache) reports back for
/// the shard-ordered merge.
struct ShardResult {
  stats::PercentileSample decision_us;   // non-shed requests
  stats::PercentileSample completion_s;  // finish - release, non-shed
  double cloud_usd = 0.0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;
  std::uint64_t deferrals = 0;
  std::uint64_t cache_hits = 0;    // exact + hysteresis
  std::uint64_t cache_misses = 0;
  std::uint64_t cold_starts = 0;
  std::uint64_t batches = 0;
  obs::MetricsRegistry metrics;
  obs::JsonlTraceWriter trace;
};

std::vector<User> draw_population(int users, std::size_t workloads,
                                  fleet::ShardContext& ctx) {
  std::vector<User> pop;
  pop.reserve(static_cast<std::size_t>(users));
  for (int u = 0; u < users; ++u) {
    User usr;
    usr.workload = static_cast<std::size_t>(
        ctx.rng.uniform_int(0, static_cast<std::int64_t>(workloads) - 1));
    usr.offset = kBurst * ctx.rng.uniform(0.0, 1.0);
    // 10% tight tail: minutes of slack, squeezed out by the backlog. The
    // rest tolerate 6-12 h, deep enough to reach the 22:00 off-peak window.
    usr.slack = ctx.rng.uniform(0.0, 1.0) < 0.1
                    ? Duration::minutes(2) +
                          Duration::minutes(6) * ctx.rng.uniform(0.0, 1.0)
                    : Duration::hours(6) +
                          Duration::hours(6) * ctx.rng.uniform(0.0, 1.0);
    usr.battery = ctx.rng.uniform(0.05, 1.0);
    usr.bw_scale = std::exp2(ctx.rng.uniform(-2.0, 2.0));
    pop.push_back(usr);
  }
  return pop;
}

ShardResult simulate_shard(int users, bool broker_on, bool metrics_on,
                           bool trace_on, fleet::ShardContext& ctx) {
  ShardResult out;
  const auto graphs = app::workloads::all();
  const auto pop = draw_population(users, graphs.size(), ctx);

  serverless::PlatformConfig pcfg;
  pcfg.price_windows = {{22, 6, 0.55}};  // off-peak discount overnight
  bench::World w(bench::ntc_cfg(), net::profile_wifi(), pcfg);
  partition::MinCutPartitioner mincut;

  broker::BrokerConfig bcfg;
  // The burst (~8.5 req/s at full shards) far outruns the sustained
  // planning rate, so admission visibly defers; tight-tail sheds appear
  // once the backlog-quoted retry overshoots minutes of slack.
  bcfg.admission.rate_per_second = 2.0;
  bcfg.admission.burst = 4.0;
  bcfg.admission.min_defer = Duration::seconds(5);
  bcfg.cache_enabled = broker_on;
  bcfg.batching_enabled = broker_on;
  bcfg.defer.policy =
      broker_on ? sched::Policy::CheapestWindow : sched::Policy::Immediate;
  broker::Broker b(w.sim, w.cloud, w.controller, mincut, bcfg);

  if (metrics_on) {
    w.controller.attach_observer(nullptr, &out.metrics);
    w.cloud.attach_observer(nullptr, &out.metrics);
  }
  b.attach_observer(trace_on ? &out.trace : nullptr,
                    metrics_on ? &out.metrics : nullptr);

  const TimePoint t0 = TimePoint::at(kEvening);
  for (int u = 0; u < users; ++u) {
    const User& usr = pop[static_cast<std::size_t>(u)];
    w.sim.schedule_at(t0 + usr.offset, [&b, &graphs, &out, &usr] {
      broker::ServeRequest req;
      req.app = &graphs[usr.workload];
      req.slack = usr.slack;
      req.battery = usr.battery;
      req.bandwidth_scale = usr.bw_scale;
      b.serve(req, [&out](const broker::ServeOutcome& o) {
        if (o.status == broker::ServeStatus::Shed) return;
        out.decision_us.add(
            static_cast<double>(o.decision_latency.count_micros()));
        out.completion_s.add((o.finished - o.released).to_seconds());
      });
    });
  }
  w.sim.run();

  out.cloud_usd = w.cloud.total_cost().to_usd();
  out.cold_starts = w.cloud.stats().cold_starts;
  out.completed = b.stats().completed;
  out.failed = b.stats().failed;
  out.shed = b.stats().shed;
  out.deferrals = b.admission().stats().deferrals;
  const broker::PlanCacheStats& cs = b.cache().stats();
  out.cache_hits = cs.hits + cs.hysteresis_hits;
  out.cache_misses = cs.misses;
  out.batches = b.dispatcher().stats().batches;
  return out;
}

}  // namespace

int main() {
  bench::ReportWriter report(
      "F12", "Offload broker at population scale",
      "hit rate rises with population then plateaus; broker $/job and "
      "decision latency drop vs the replan-per-request baseline");

  obs::JsonlTraceWriter trace;
  obs::MetricsRegistry metrics;
  const bool observe = report.machine_output();

  stats::Table t({"users", "mode", "hit rate", "$/job", "dec mean (us)",
                  "dec p50 (us)", "dec p99 (us)", "colds", "shed", "defers",
                  "batches"});
  std::vector<int> points{128, 1024, 10240, 102400};
  const char* scale_env = std::getenv("NTCO_F12_SCALE");
  const bool at_scale =
      scale_env != nullptr && scale_env[0] != '\0' && scale_env[0] != '0';
  if (at_scale) points.push_back(1024 * 1024);
  for (const int users : points) {
    const int shards = (users + kShardUsers - 1) / kShardUsers;
    const int shard_users = users < kShardUsers ? users : kShardUsers;
    const bool trace_on = observe && users <= kTraceUsersCap;

    for (const bool broker_on : {true, false}) {
      if (!broker_on && users > 102400) continue;  // replan-per-request: hours
      // Same replicator seed for both modes: identical populations, so
      // every delta in the row pair is the broker's doing.
      const auto wall_start = std::chrono::steady_clock::now();
      fleet::Replicator rep(47);
      auto merged = rep.reduce(
          static_cast<std::size_t>(shards), ShardResult{},
          [&](fleet::ShardContext& ctx) {
            return simulate_shard(shard_users, broker_on, observe,
                                  trace_on && broker_on, ctx);
          },
          [](ShardResult& acc, ShardResult&& shard, std::size_t) {
            acc.decision_us.merge(shard.decision_us);
            acc.completion_s.merge(shard.completion_s);
            acc.cloud_usd += shard.cloud_usd;
            acc.completed += shard.completed;
            acc.failed += shard.failed;
            acc.shed += shard.shed;
            acc.deferrals += shard.deferrals;
            acc.cache_hits += shard.cache_hits;
            acc.cache_misses += shard.cache_misses;
            acc.cold_starts += shard.cold_starts;
            acc.batches += shard.batches;
            acc.metrics.merge_from(shard.metrics);
            acc.trace.append_from(shard.trace);
          });
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall_start)
              .count();

      const std::uint64_t lookups = merged.cache_hits + merged.cache_misses;
      const double hit_rate =
          lookups == 0 ? 0.0
                       : static_cast<double>(merged.cache_hits) /
                             static_cast<double>(lookups);
      // Planning decisions made (nocache never touches the cache counters).
      const std::uint64_t served = merged.completed + merged.failed;
      t.add_row({std::to_string(users), broker_on ? "broker" : "nocache",
                 stats::cell_pct(hit_rate, 1),
                 stats::cell(served == 0 ? 0.0
                                         : merged.cloud_usd /
                                               static_cast<double>(served),
                             6),
                 stats::cell(merged.decision_us.mean(), 1),
                 stats::cell(merged.decision_us.median(), 1),
                 stats::cell(merged.decision_us.p99(), 1),
                 std::to_string(merged.cold_starts),
                 std::to_string(merged.shed),
                 std::to_string(merged.deferrals),
                 std::to_string(merged.batches)});

      // Wall-clock throughput is machine-dependent by nature: stderr only,
      // so stdout and the NTCO_BENCH_OUT artifacts stay byte-deterministic.
      // The dataplane stats are all zero on serial runs (NTCO_THREADS=1 or
      // a single shard bypasses the engine).
      const dataplane::EngineRunStats& dp = rep.last_dataplane_run();
      std::string cores;
      for (std::size_t c = 0; c < dp.items_per_worker.size(); ++c) {
        if (c > 0) cores += ",";
        cores += std::to_string(dp.items_per_worker[c]);
      }
      std::fprintf(
          stderr,
          "[F12] users=%d mode=%s wall=%.2fs plans/sec=%.0f "
          "epochs=%llu epochs/sec=%.1f occ=%.3f scale=+%llu/-%llu "
          "cores=[%s]\n",
          users, broker_on ? "broker" : "nocache", wall_s,
          wall_s > 0.0 ? static_cast<double>(served) / wall_s : 0.0,
          static_cast<unsigned long long>(dp.epochs),
          wall_s > 0.0 ? static_cast<double>(dp.epochs) / wall_s : 0.0,
          dp.mean_occupancy, static_cast<unsigned long long>(dp.scale_ups),
          static_cast<unsigned long long>(dp.scale_downs), cores.c_str());

      metrics.merge_from(merged.metrics);
      if (trace_on && broker_on) trace.append_from(merged.trace);
    }
  }
  t.set_title(
      "F12: one job per user, two-minute evening burst at 20:00 "
      "(off-peak x0.55 22:00-06:00; 1024 users/broker past one shard; "
      "10% tight-slack tail)");
  t.set_caption(
      "both modes face identical populations (same replicator seed); "
      "nocache replans per request and dispatches immediately; shards "
      "merge in shard order (byte-stable at any NTCO_THREADS)");
  report.emit(t);
  report.emit_metrics(metrics);
  report.emit_trace(trace);
  return 0;
}
