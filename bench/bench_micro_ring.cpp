// Micro-benchmark (google-benchmark): throughput and latency of the
// dataplane's lock-free rings and epoch barrier.
//
//   BM_RingSinglePushPop   one release store per op — the unbatched floor
//   BM_RingBatchedPushPop  push_n/pop_n in bursts of 64: one release store
//                          amortised across the burst
//   BM_MpscPushPop         the completion-ring variant (CAS claim + seq)
//   BM_RingPingPong        two-thread round-trip latency over a ring pair
//   BM_EpochBarrier        full engine epochs (dispatch + drain + plan) at
//                          1/2/4/8 workers over a trivial body — the fixed
//                          cost a shard must out-weigh
//
// BM_RingSinglePushPop and BM_RingBatchedPushPop are the loops tools/ci.sh
// gates against the checked-in BENCH_micro_ring.json baseline (>10%
// regression fails). The threaded benches report but are not gated: on a
// shared single-core runner their numbers are scheduler noise.
//
// Own main: when NTCO_BENCH_OUT names a directory every result is mirrored
// into <dir>/BENCH_micro_ring.json (same stable schema as
// BENCH_micro_sim.json, parseable with POSIX awk).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "ntco/dataplane/engine.hpp"
#include "ntco/dataplane/ring.hpp"

namespace {

using namespace ntco;

// Single enqueue/dequeue pairs through a quarter-full ring: every op pays
// its own release store.
void BM_RingSinglePushPop(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Ring<std::uint64_t> ring(256);
  for (std::uint64_t i = 0; i < 64; ++i) (void)ring.try_push(i);  // standing
  std::uint64_t out = 0;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(ring.try_push(i));
      benchmark::DoNotOptimize(ring.try_pop(out));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_RingSinglePushPop)->Arg(1024);

// The batched counterpart: same item count, one release store per burst of
// 64 — the gap between this and the single variant is what push_n buys.
void BM_RingBatchedPushPop(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  constexpr std::size_t kBurst = 64;
  Ring<std::uint64_t> ring(256);
  std::uint64_t in[kBurst];
  std::uint64_t out[kBurst];
  for (std::size_t i = 0; i < kBurst; ++i) in[i] = i;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < n; i += kBurst) {
      benchmark::DoNotOptimize(ring.push_n(in, kBurst));
      benchmark::DoNotOptimize(ring.pop_n(out, kBurst));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_RingBatchedPushPop)->Arg(1024);

// Completion-ring variant: the CAS ticket + per-cell sequence handshake,
// measured uncontended so the number is the protocol cost, not contention.
void BM_MpscPushPop(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  MpscRing<std::uint64_t> ring(256);
  std::uint64_t out = 0;
  for (auto _ : state) {
    for (std::uint64_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(ring.try_push(i));
      benchmark::DoNotOptimize(ring.try_pop(out));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_MpscPushPop)->Arg(1024);

// Two-thread round trip: a token bounced over a ring pair. items/second is
// round trips; ns_per_item is the full there-and-back latency, the floor
// under any cross-core handoff the dataplane performs.
void BM_RingPingPong(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    Ring<std::uint64_t> ping(2);
    Ring<std::uint64_t> pong(2);
    // ntco-lint: allow(R3) ping-pong latency needs a real echo thread
    std::thread echo([&ping, &pong, n] {
      std::uint64_t v = 0;
      for (std::uint64_t i = 0; i < n;) {
        if (!ping.try_pop(v)) {
          // ntco-lint: allow(R3) yield keeps single-core runners moving
          std::this_thread::yield();
          continue;
        }
        while (!pong.try_push(v)) {
          // ntco-lint: allow(R3) yield keeps single-core runners moving
          std::this_thread::yield();
        }
        ++i;
      }
    });
    std::uint64_t v = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      while (!ping.try_push(i)) {
        // ntco-lint: allow(R3) yield keeps single-core runners moving
        std::this_thread::yield();
      }
      while (!pong.try_pop(v)) {
        // ntco-lint: allow(R3) yield keeps single-core runners moving
        std::this_thread::yield();
      }
      benchmark::DoNotOptimize(v);
    }
    echo.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_RingPingPong)->Arg(4096);

void count_shard(void* ctx, std::size_t shard) {
  // Trivial body: the measurement is the barrier, not the work.
  static_cast<std::vector<std::uint32_t>*>(ctx)->at(shard) += 1;
}

// Epoch-barrier overhead: dispatch + drain + controller plan for a run of
// trivial shards, at 1/2/4/8 workers. items/second is shards/second with
// zero-work bodies — the dataplane's fixed cost per shard.
void BM_EpochBarrier(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kShards = 4096;
  dataplane::EngineConfig cfg;
  cfg.workers = workers;
  cfg.epoch_width = 64;
  dataplane::Engine engine(cfg);
  std::vector<std::uint32_t> touched(kShards, 0);
  for (auto _ : state) {
    engine.run(kShards, &count_shard, &touched);
    benchmark::DoNotOptimize(engine.last_run().epochs);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(kShards) *
                          state.iterations());
  state.counters["epochs_per_run"] =
      static_cast<double>(engine.last_run().epochs);
}
BENCHMARK(BM_EpochBarrier)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Reporting: identical mirroring scheme to bench_micro_sim.cpp.

struct CapturedRun {
  std::string name;
  double items_per_second = 0.0;
  double ns_per_item = 0.0;
};

class MirroringReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      CapturedRun c;
      c.name = run.benchmark_name();
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        c.items_per_second = static_cast<double>(it->second);
        if (c.items_per_second > 0.0) c.ns_per_item = 1e9 / c.items_per_second;
      }
      captured.push_back(std::move(c));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  std::vector<CapturedRun> captured;
};

bool write_json(const std::string& path,
                const std::vector<CapturedRun>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"bench\": \"micro_ring\",\n  \"results\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i)
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"items_per_second\": %.6g, "
                 "\"ns_per_item\": %.6g}%s\n",
                 runs[i].name.c_str(), runs[i].items_per_second,
                 runs[i].ns_per_item, i + 1 < runs.size() ? "," : "");
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  MirroringReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (const char* dir = std::getenv("NTCO_BENCH_OUT");
      dir != nullptr && dir[0] != '\0') {
    const std::string path = std::string(dir) + "/BENCH_micro_ring.json";
    if (!write_json(path, reporter.captured)) {
      std::fprintf(stderr, "ntco: cannot write %s\n", path.c_str());
      return 1;
    }
  }
  return 0;
}
