// F6 — CI/CD integration: stage costs, canary catch rate, drift benefit.
//
// (a) Wall-time breakdown of a release — the offloading stages (profile,
//     partition+deploy, canary) add minutes, not hours, to a conventional
//     pipeline.
// (b) Canary verdicts over releases whose profiles are faithful vs.
//     corrupted: faithful candidates promote, corrupted ones roll back.
// (c) After an 8x compute drift flips the optimal partition, the
//     drift-triggered re-release recovers the objective the stale plan
//     forfeits.

#include "bench_common.hpp"

using namespace ntco;

int main() {
  bench::ReportWriter report("F6", "CI/CD pipeline integration",
                      "offloading stages add ~17 min; canary catches bad "
                      "profiles; re-release recovers drift losses");

  // --- (a) Stage breakdown of a clean release. ---------------------------
  {
    bench::World w(bench::latency_cfg(), net::profile_4g());
    cicd::PipelineConfig cfg;
    cfg.canary_runs = 5;
    cicd::ReleasePipeline pipeline(w.sim, w.controller, cfg, Rng(1));
    const auto rel = pipeline.run_release(app::workloads::photo_backup(),
                                          partition::MinCutPartitioner{},
                                          nullptr);
    stats::Table t({"stage", "duration", "detail"});
    for (const auto& s : rel.stages)
      t.add_row({s.name, to_string(s.duration), s.detail});
    t.add_row({"TOTAL", to_string(rel.total_duration), ""});
    t.set_title("F6a: release stage breakdown (photo-backup)");
    report.emit(t);
  }

  // --- (b) Canary catch rate over 20 releases. ---------------------------
  {
    stats::Table t({"profile quality", "releases", "promoted", "rolled back",
                    "correct verdicts"});
    for (const bool faithful : {true, false}) {
      int promoted = 0, rolled_back = 0;
      const int releases = 10;
      for (int i = 0; i < releases; ++i) {
        bench::World w(bench::latency_cfg(), net::profile_4g());
        cicd::PipelineConfig cfg;
        cfg.canary_runs = 5;
        cfg.regression_tolerance = 0.05;
        cicd::ReleasePipeline pipeline(w.sim, w.controller, cfg,
                                       Rng(100 + static_cast<std::uint64_t>(i)));
        const auto g = app::workloads::ml_batch_training();
        const auto incumbent = pipeline.run_release(
            g, partition::MinCutPartitioner{}, nullptr);
        const auto candidate = pipeline.run_release(
            g, partition::MinCutPartitioner{}, &*incumbent.plan,
            faithful ? 1.0 : 0.02);
        (candidate.promoted ? promoted : rolled_back)++;
      }
      const int correct = faithful ? promoted : rolled_back;
      t.add_row({faithful ? "faithful (bias 1.0)" : "corrupted (bias 0.02)",
                 std::to_string(releases), std::to_string(promoted),
                 std::to_string(rolled_back),
                 stats::cell_pct(static_cast<double>(correct) / releases, 0)});
    }
    t.set_title("F6b: canary verdicts (5% regression tolerance)");
    report.emit(t);
  }

  // --- (c) Drift: stale plan vs re-released plan. -------------------------
  {
    bench::World w(bench::latency_cfg(), net::profile_4g());
    cicd::PipelineConfig cfg;
    cfg.canary_runs = 5;
    cicd::ReleasePipeline pipeline(w.sim, w.controller, cfg, Rng(7));
    // Video transcode is all-local at its shipped demand (transfer-bound)
    // but its optimum flips to offloading once per-frame compute grows 8x:
    // the stale plan then leaves a large win on the table.
    const auto original = app::workloads::video_transcode();
    const auto v1 = pipeline.run_release(original,
                                         partition::MinCutPartitioner{},
                                         nullptr);
    const auto drifted = original.with_work_scaled(8.0);

    // Production keeps running the stale plan against the drifted truth.
    stats::Accumulator stale;
    for (int i = 0; i < 10; ++i)
      stale.add(pipeline.measured_objective(
          w.controller.execute(*v1.plan, drifted)));

    cicd::DriftWatcher watcher(0.3, 10);
    for (int i = 0; i < 10; ++i) (void)watcher.observe_run(original.total_work());
    int runs = 0;
    while (!watcher.observe_run(drifted.total_work())) ++runs;

    const auto v2 = pipeline.run_release(drifted,
                                         partition::MinCutPartitioner{},
                                         &*v1.plan);
    stats::Accumulator fresh;
    for (int i = 0; i < 10; ++i)
      fresh.add(pipeline.measured_objective(
          w.controller.execute(*v2.plan, drifted)));

    stats::Table t({"metric", "value"});
    t.add_row({"runs to detect 8x drift", std::to_string(runs + 1)});
    t.add_row({"stale-plan objective (mean of 10)", stats::cell(stale.mean(), 2)});
    t.add_row({"re-released objective (mean of 10)", stats::cell(fresh.mean(), 2)});
    t.add_row({"improvement", stats::cell_pct(1.0 - fresh.mean() / stale.mean(), 1)});
    t.add_row({"v2 promoted", v2.promoted ? "yes" : "no"});
    t.set_title("F6c: drift-triggered re-partition (video-transcode, 8x demand)");
    report.emit(t);
  }
  return 0;
}
