// F9 — Resilience under transfer loss: completion, fallback, and the cost
// of retries.
//
// The uplink and downlink drop each transfer with probability p; the
// controller retries (2x) and falls back to local execution when an upload
// is unrecoverable. Expected shape: completion stays ~100% across loss
// rates — failed uploads degrade to local execution rather than failing the
// run — while makespan inflates with burned timeouts; only downlink loss
// can abort a run (stranded results), which shows up at high loss as
// non-complete runs.

#include "bench_common.hpp"
#include "ntco/net/flaky_link.hpp"

using namespace ntco;

namespace {

net::NetworkPath flaky_wifi(double loss, std::uint64_t seed) {
  const auto p = net::profile_wifi();
  return net::NetworkPath(
      "flaky-wifi",
      std::make_unique<net::FlakyLink>(
          std::make_unique<net::FixedLink>(p.one_way_latency, p.uplink), loss,
          Duration::seconds(2), Rng(seed)),
      std::make_unique<net::FlakyLink>(
          std::make_unique<net::FixedLink>(p.one_way_latency, p.downlink),
          loss, Duration::seconds(2), Rng(seed + 1)));
}

}  // namespace

int main() {
  bench::ReportWriter report("F9", "Resilience under transfer loss",
                      "completion ~100% via local fallback until downlink "
                      "loss strands results; makespan inflates with "
                      "timeouts");

  const auto g = app::workloads::photo_backup();
  stats::Table t({"loss rate", "completed", "fallbacks/run", "retries/run",
                  "median makespan (s)", "median $/run"});
  for (const double loss : {0.0, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}) {
    const int kRuns = 30;
    int completed = 0;
    double fallbacks = 0, retries = 0;
    stats::PercentileSample makespans, costs;
    for (int rep = 0; rep < kRuns; ++rep) {
      sim::Simulator sim;
      serverless::Platform cloud(sim, {});
      device::Device ue(device::budget_phone());
      auto path = flaky_wifi(loss, 1000 + static_cast<std::uint64_t>(rep));
      core::ControllerConfig cfg;
      cfg.objective = partition::Objective::latency();
      cfg.max_transfer_retries = 2;
      core::OffloadController ctl(sim, cloud, ue, path, cfg);
      const auto plan = ctl.prepare(g, partition::MinCutPartitioner{});
      const auto r = ctl.execute(plan, g);
      if (!r.failed) {
        ++completed;
        makespans.add(r.makespan.to_seconds());
        costs.add(r.cloud_cost.to_usd());
      }
      fallbacks += static_cast<double>(r.local_fallbacks);
      retries += static_cast<double>(r.transfer_failures);
    }
    t.add_row({stats::cell_pct(loss, 0), std::to_string(completed) + "/30",
               stats::cell(fallbacks / kRuns, 2),
               stats::cell(retries / kRuns, 2),
               completed ? stats::cell(makespans.median(), 2) : "-",
               completed ? stats::cell(costs.median(), 6) : "-"});
  }
  t.set_title("F9: photo-backup on WiFi with symmetric loss, 2 retries, "
              "30 runs per point");
  report.emit(t);
  return 0;
}
