// F9 — Resilience under transfer loss: completion, fallback, and the cost
// of retries.
//
// The uplink and downlink drop each transfer with probability p; the
// controller retries (2x) and falls back to local execution when an upload
// is unrecoverable. Expected shape: completion stays ~100% across loss
// rates — failed uploads degrade to local execution rather than failing the
// run — while makespan inflates with burned timeouts; only downlink loss
// can abort a run (stranded results), which shows up at high loss as
// non-complete runs.
//
// All (loss rate, replica) pairs run concurrently on the fleet; per-point
// aggregation folds replicas in replica order, so the table is identical
// at any NTCO_THREADS.

#include <vector>

#include "bench_common.hpp"
#include "ntco/fleet/sweep.hpp"
#include "ntco/net/flaky_link.hpp"
#include "ntco/net/path.hpp"

using namespace ntco;

namespace {

net::NetworkPath flaky_wifi(double loss, const Rng& rng) {
  const auto p = net::profile_wifi();
  return net::NetworkPath(
      "flaky-wifi",
      std::make_unique<net::FlakyLink>(
          std::make_unique<net::FixedLink>(p.one_way_latency, p.uplink), loss,
          Duration::seconds(2), rng.fork(0)),
      std::make_unique<net::FlakyLink>(
          std::make_unique<net::FixedLink>(p.one_way_latency, p.downlink),
          loss, Duration::seconds(2), rng.fork(1)));
}

struct RunResult {
  bool completed = false;
  double makespan_s = 0.0;
  double cost_usd = 0.0;
  std::uint32_t fallbacks = 0;
  std::uint32_t retries = 0;
};

}  // namespace

int main() {
  bench::ReportWriter report("F9", "Resilience under transfer loss",
                      "completion ~100% via local fallback until downlink "
                      "loss strands results; makespan inflates with "
                      "timeouts");

  const auto g = app::workloads::photo_backup();
  const std::vector<double> losses{0.0, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0};
  const int kRuns = 30;

  fleet::Sweep sweep(1000);
  const auto groups = sweep.replicate(
      losses, static_cast<std::size_t>(kRuns),
      [&g](const double& loss, fleet::ReplicaContext& ctx) {
        sim::Simulator sim;
        serverless::Platform cloud(sim, {});
        device::Device ue(device::budget_phone());
        auto path = flaky_wifi(loss, ctx.rng);
        core::ControllerConfig cfg;
        cfg.objective = partition::Objective::latency();
        cfg.max_transfer_retries = 2;
        core::OffloadController ctl(sim, cloud, ue, path, cfg);
        const auto plan = ctl.prepare(g, partition::MinCutPartitioner{});
        const auto r = ctl.execute(plan, g);
        RunResult out;
        out.completed = !r.failed;
        if (out.completed) {
          out.makespan_s = r.makespan.to_seconds();
          out.cost_usd = r.cloud_cost.to_usd();
        }
        out.fallbacks = static_cast<std::uint32_t>(r.local_fallbacks);
        out.retries = static_cast<std::uint32_t>(r.transfer_failures);
        return out;
      });

  stats::Table t({"loss rate", "completed", "fallbacks/run", "retries/run",
                  "median makespan (s)", "median $/run"});
  for (std::size_t p = 0; p < losses.size(); ++p) {
    int completed = 0;
    double fallbacks = 0, retries = 0;
    stats::PercentileSample makespans, costs;
    for (const RunResult& r : groups[p]) {  // replica order
      if (r.completed) {
        ++completed;
        makespans.add(r.makespan_s);
        costs.add(r.cost_usd);
      }
      fallbacks += r.fallbacks;
      retries += r.retries;
    }
    t.add_row({stats::cell_pct(losses[p], 0), std::to_string(completed) + "/30",
               stats::cell(fallbacks / kRuns, 2),
               stats::cell(retries / kRuns, 2),
               completed ? stats::cell(makespans.median(), 2) : "-",
               completed ? stats::cell(costs.median(), 6) : "-"});
  }
  t.set_title("F9: photo-backup on WiFi with symmetric loss, 2 retries, "
              "30 runs per point (fleet-parallel)");
  report.emit(t);
  return 0;
}
