// T5 — Three-way placement: what a third (edge) site buys, and when.
//
// Per workload and objective: the best device+cloud plan, the best
// device+edge plan, and the full 3-way optimum with the sites it uses,
// plus alpha-expansion's gap to the exhaustive optimum and its runtime.
// Expected shapes:
//  - latency objective: the edge absorbs the compute (closest, fastest);
//  - monetary objective: the 3-way optimum collapses onto device+cloud —
//    the quantitative version of the abstract's claim that delay-tolerant
//    workloads do not need edge infrastructure;
//  - battery-weighted blend: transfer-heavy workloads still pull the edge
//    in (the LAN saves radio energy) — an honest limit of the claim that
//    EXPERIMENTS.md discusses.

#include <chrono>

#include "bench_common.hpp"
#include "ntco/partition/multi_target.hpp"

using namespace ntco;

namespace {

double restricted_optimum(const partition::MultiCostModel& m,
                          partition::Site remote) {
  const auto& g = m.graph();
  partition::MultiPartition best =
      partition::MultiPartition::all_device(g.component_count());
  double best_v = m.evaluate(best);
  partition::MultiPartition c = best;
  const std::uint64_t combos = 1ULL << g.component_count();
  for (std::uint64_t mask = 1; mask < combos; ++mask) {
    bool ok = true;
    for (app::ComponentId id = 0; id < g.component_count(); ++id) {
      const bool rem = (mask >> id) & 1;
      if (rem && g.component(id).pinned_local) {
        ok = false;
        break;
      }
      c.site[id] = rem ? remote : partition::Site::Device;
    }
    if (!ok) continue;
    best_v = std::min(best_v, m.evaluate(c));
  }
  return best_v;
}

void run_table(bench::ReportWriter& report, const char* title, double w_lat,
               double w_energy, double w_money) {
  stats::Table t({"workload", "dev+cloud", "dev+edge", "3-way", "3-way plan",
                  "alpha gap", "alpha time (us)"});
  for (const auto& g : app::workloads::all()) {
    const partition::MultiCostModel m(g, partition::default_multi_environment(),
                                      w_lat, w_energy, w_money);
    const double cloud2 = restricted_optimum(m, partition::Site::Cloud);
    const double edge2 = restricted_optimum(m, partition::Site::Edge);
    const auto p3 = partition::MultiExhaustivePartitioner().plan(m);
    const double v3 = m.evaluate(p3);

    const auto begin = std::chrono::steady_clock::now();
    const auto alpha = partition::AlphaExpansionPartitioner().plan(m);
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - begin)
                        .count();

    t.add_row({g.name(), stats::cell(cloud2, 4), stats::cell(edge2, 4),
               stats::cell(v3, 4), p3.to_string(),
               stats::cell_pct(m.evaluate(alpha) / v3 - 1.0, 2),
               std::to_string(us)});
  }
  t.set_title(title);
  report.emit(t);
}

}  // namespace

int main() {
  bench::ReportWriter report("T5", "Device/edge/cloud 3-way placement",
                      "latency objective uses the edge; monetary objective "
                      "collapses to device+cloud (no edge needed for "
                      "non-time-critical work); battery blends pull the "
                      "edge back for data-heavy apps");
  run_table(report,
            "T5a: latency objective (plan letters: D=device E=edge C=cloud)",
            1.0, 0.0, 0.0);
  run_table(report, "T5b: monetary objective (tiny latency tie-break)", 0.0001,
            0.0, 1.0);
  run_table(report,
            "T5c: battery-weighted blend (latency 0.01, energy 0.1, money 1)",
            0.01, 0.1, 1.0);
  return 0;
}
