// F4 — The time-critical -> delay-tolerant spectrum: deadline misses and
// cost per job versus slack.
//
// Jobs released through the working day under a night-discount tariff.
// With slack below the execution time every job misses; as slack grows,
// misses vanish, and once the slack window reaches the 22:00 discount the
// cheapest-window scheduler shifts work there and the bill steps down. The
// figure is the quantitative version of the abstract's thesis: only
// delay-tolerant jobs can trade latency for the cloud's cheap capacity.

#include "bench_common.hpp"
#include "ntco/sched/deferred_scheduler.hpp"

using namespace ntco;

int main() {
  bench::ReportWriter report("F4", "Miss rate and cost vs deadline slack",
                      "misses 100% -> 0% as slack passes the job length; "
                      "cost steps down once slack reaches the night window");

  const auto kWork = Cycles::giga(300);  // 2 min at one 2.5 GHz vCPU
  stats::Table t({"slack", "miss rate", "$/job", "median completion",
                  "mean deferral"});
  for (const double slack_hours :
       {0.01, 0.05, 0.5, 2.0, 6.0, 10.0, 14.0, 18.0, 24.0}) {
    sim::Simulator sim;
    serverless::PlatformConfig pcfg;
    pcfg.price_windows = {{22, 6, 0.4}, {6, 22, 1.0}};
    serverless::Platform cloud(sim, pcfg);
    const auto fn = cloud.deploy(serverless::FunctionSpec{
        "batch", DataSize::megabytes(1792), DataSize::megabytes(40)});

    sched::DeferredScheduler::Config scfg;
    scfg.policy = sched::Policy::CheapestWindow;
    sched::DeferredExecutor exec(sim, cloud, fn,
                                 sched::DeferredScheduler(cloud, scfg));

    stats::Accumulator deferral_s;
    Rng rng(23);
    for (int j = 0; j < 60; ++j) {
      const auto release =
          TimePoint::origin() +
          Duration::from_seconds(rng.uniform(8.0, 20.0) * 3600.0);
      sim.schedule_at(release, [&, slack_hours] {
        exec.submit(sched::DeferredJob{
            "job", kWork, Duration::from_seconds(slack_hours * 3600.0)});
      });
    }
    sim.run();

    const auto& r = exec.report();
    t.add_row({stats::cell(slack_hours, 2) + " h",
               stats::cell_pct(r.miss_rate(), 1),
               stats::cell(r.total_cost.to_usd() /
                               static_cast<double>(r.jobs),
                           6),
               stats::cell(r.completion_latency_s.median() / 3600.0, 2) + " h",
               stats::cell((r.completion_latency_s.mean() -
                            cloud.exec_time(DataSize::megabytes(1792), kWork)
                                .to_seconds()) /
                               3600.0,
                           2) +
                   " h"});
  }
  t.set_title("F4: 60 jobs/day, 2-minute batch work, night tariff 0.4x");
  report.emit(t);
  return 0;
}
