// F13 — Shared-fabric contention: where serverless beats the edge *because*
// the edge LAN saturates.
//
// Every prior experiment gives each UE a private link, which flatters the
// edge site: its LAN is modelled as infinitely parallel. F13 re-runs the
// edge-vs-serverless burst on the shared fabric (src/fabric): per site, N
// offloaders push a heavy upload through one cell segment and then either
// the site's 1 Gb/s edge LAN or a fat 40 Gb/s serverless WAN. Compute is
// deliberately over-provisioned on the edge (32 servers) so queueing never
// dominates — what collapses is the LAN. Each UE's private access cap is
// 200 Mb/s, so around N ≈ 5 concurrent uploads the LAN share
// (1000/N Mb/s) drops below the access cap and edge completion grows
// linearly with N, while the WAN keeps every flow at its access cap until
// the shared cell segment itself binds (N ≈ 50). The serverless side pays
// cold starts and WAN latency, so the edge wins small N — the experiment
// prints the measured crossover where that flips.
//
// Scale & determinism: each site is one fleet shard (own Simulator +
// Fabric + platforms), shards merge in shard order, so the table and every
// NTCO_BENCH_OUT artifact are byte-identical at any NTCO_THREADS. Tracing
// attaches only up to kTraceUsersCap users/site to bound the artifact.

#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ntco/fabric/fabric.hpp"
#include "ntco/fleet/replicator.hpp"

using namespace ntco;

namespace {

constexpr std::size_t kSites = 8;    // shards per sweep point
constexpr int kTraceUsersCap = 16;   // largest point with tracing attached

const auto kUpload = DataSize::megabytes(64);
const auto kResult = DataSize::megabytes(1);
const auto kWork = Cycles::giga(2);
const auto kWindow = Duration::seconds(2);  // arrival burst width

/// Per-UE private access leg: what the UE's radio can do when nothing is
/// shared. The fabric caps every flow at this rate.
net::PathSpec access_spec(const char* name, Duration latency) {
  net::PathSpec s;
  s.name = name;
  s.up = {DataRate::megabits_per_second(200), latency, 0.0, 0.0};
  s.down = {DataRate::megabits_per_second(400), latency, 0.0, 0.0};
  return s;
}

struct ShardResult {
  stats::PercentileSample edge_done;   // per-user completion, seconds
  stats::PercentileSample cloud_done;
  std::size_t lan_peak_flows = 0;
  std::size_t wan_peak_flows = 0;
  std::uint64_t cold_starts = 0;
  std::uint64_t amortized_tails = 0;
  obs::JsonlTraceWriter trace;
};

ShardResult simulate_site(int users, bool trace_on, fleet::ShardContext& ctx) {
  ShardResult out;

  // One arrival offset per user, shared by both platforms so they face the
  // identical burst.
  std::vector<Duration> arrival;
  arrival.reserve(static_cast<std::size_t>(users));
  for (int u = 0; u < users; ++u)
    arrival.push_back(kWindow * ctx.rng.uniform(0.0, 1.0));

  // --- Edge site: cell -> 1 Gb/s LAN, 32 servers (compute never binds). --
  {
    sim::Simulator esim;
    fabric::Fabric net(esim);
    const auto cell_up = net.add_segment(
        {"cell.up", DataRate::megabits_per_second(10000), Duration::zero()});
    const auto cell_dn = net.add_segment(
        {"cell.down", DataRate::megabits_per_second(10000), Duration::zero()});
    const auto lan_up = net.add_segment(
        {"lan.up", DataRate::megabits_per_second(1000), Duration::millis(1)});
    const auto lan_dn = net.add_segment(
        {"lan.down", DataRate::megabits_per_second(1000), Duration::millis(1)});
    edgesim::EdgeConfig ecfg;
    ecfg.servers = 32;
    edgesim::EdgePlatform edge(esim, ecfg);
    std::vector<std::unique_ptr<fabric::FabricPath>> paths;
    for (int u = 0; u < users; ++u)
      paths.push_back(net.attach(access_spec("edge", Duration::millis(8)),
                                 fabric::Route{{cell_up, lan_up},
                                               {cell_dn, lan_dn}}));
    if (trace_on) net.set_trace(&out.trace);
    for (int u = 0; u < users; ++u) {
      fabric::FabricPath* path = paths[static_cast<std::size_t>(u)].get();
      const auto at = arrival[static_cast<std::size_t>(u)];
      esim.schedule_at(TimePoint::origin() + at, [&, at, path] {
        const Duration up = path->uplink_time(kUpload);
        esim.schedule_after(up, [&, at, path] {
          edge.submit(kWork, [&, at, path](const edgesim::EdgeResult&) {
            const Duration down = path->downlink_time(kResult);
            esim.schedule_after(down, [&, at] {
              out.edge_done.add((esim.now() - TimePoint::origin() - at)
                                    .to_seconds());
            });
          });
        });
      });
    }
    esim.run();
    out.lan_peak_flows = net.segment_stats(lan_up).peak_flows;
    out.amortized_tails += net.stats().amortized_tails;
  }

  // --- Serverless: cell -> 40 Gb/s WAN, elastic compute. -----------------
  {
    sim::Simulator csim;
    fabric::Fabric net(csim);
    const auto cell_up = net.add_segment(
        {"cell.up", DataRate::megabits_per_second(10000), Duration::zero()});
    const auto cell_dn = net.add_segment(
        {"cell.down", DataRate::megabits_per_second(10000), Duration::zero()});
    const auto wan_up = net.add_segment(
        {"wan.up", DataRate::megabits_per_second(40000), Duration::millis(30)});
    const auto wan_dn = net.add_segment(
        {"wan.down", DataRate::megabits_per_second(40000),
         Duration::millis(30)});
    serverless::Platform cloud(csim, {});
    const auto fn = cloud.deploy(serverless::FunctionSpec{
        "job", DataSize::megabytes(1792), DataSize::megabytes(40)});
    std::vector<std::unique_ptr<fabric::FabricPath>> paths;
    for (int u = 0; u < users; ++u)
      paths.push_back(net.attach(access_spec("cloud", Duration::millis(8)),
                                 fabric::Route{{cell_up, wan_up},
                                               {cell_dn, wan_dn}}));
    if (trace_on) net.set_trace(&out.trace);
    for (int u = 0; u < users; ++u) {
      fabric::FabricPath* path = paths[static_cast<std::size_t>(u)].get();
      const auto at = arrival[static_cast<std::size_t>(u)];
      csim.schedule_at(TimePoint::origin() + at, [&, at, path] {
        const Duration up = path->uplink_time(kUpload);
        csim.schedule_after(up, [&, at, path] {
          cloud.invoke(fn, kWork,
                       [&, at, path](const serverless::InvocationResult&) {
            const Duration down = path->downlink_time(kResult);
            csim.schedule_after(down, [&, at] {
              out.cloud_done.add((csim.now() - TimePoint::origin() - at)
                                     .to_seconds());
            });
          });
        });
      });
    }
    csim.run();
    out.wan_peak_flows = net.segment_stats(wan_up).peak_flows;
    out.cold_starts = cloud.stats().cold_starts;
    out.amortized_tails += net.stats().amortized_tails;
  }
  return out;
}

}  // namespace

int main() {
  bench::ReportWriter report(
      "F13", "Shared-fabric contention: edge LAN saturation",
      "edge mean flat then linear in N once the 1 Gb/s LAN share drops "
      "below the 200 Mb/s access cap; cloud mean flat until the cell "
      "binds; crossover where cloud < edge");

  obs::JsonlTraceWriter trace;
  const bool observe = report.machine_output();

  stats::Table t({"users/site", "edge mean (s)", "cloud mean (s)",
                  "edge p95 (s)", "cloud p95 (s)", "LAN share (Mb/s)",
                  "LAN peak flows", "cloud colds", "winner"});
  int crossover = -1;
  for (const int users : {1, 2, 4, 6, 8, 12, 16, 24, 32, 64}) {
    const bool trace_on = observe && users <= kTraceUsersCap;
    fleet::Replicator rep(47);
    auto merged = rep.reduce(
        kSites, ShardResult{},
        [&](fleet::ShardContext& ctx) {
          return simulate_site(users, trace_on, ctx);
        },
        [](ShardResult& acc, ShardResult&& shard, std::size_t) {
          acc.edge_done.merge(shard.edge_done);
          acc.cloud_done.merge(shard.cloud_done);
          acc.lan_peak_flows =
              std::max(acc.lan_peak_flows, shard.lan_peak_flows);
          acc.wan_peak_flows =
              std::max(acc.wan_peak_flows, shard.wan_peak_flows);
          acc.cold_starts += shard.cold_starts;
          acc.amortized_tails += shard.amortized_tails;
          acc.trace.append_from(shard.trace);
        });

    const double edge_mean = merged.edge_done.mean();
    const double cloud_mean = merged.cloud_done.mean();
    const bool cloud_wins = cloud_mean < edge_mean;
    if (cloud_wins && crossover < 0) crossover = users;
    t.add_row({std::to_string(users), stats::cell(edge_mean, 2),
               stats::cell(cloud_mean, 2),
               stats::cell(merged.edge_done.p95(), 2),
               stats::cell(merged.cloud_done.p95(), 2),
               stats::cell(1000.0 / users, 1),
               std::to_string(merged.lan_peak_flows),
               std::to_string(merged.cold_starts),
               cloud_wins ? "cloud" : "edge"});
    if (trace_on) trace.append_from(merged.trace);
  }
  t.set_title("F13: per site, N users upload 64 MB + 2 Gcyc within a 2 s "
              "burst (access cap 200 Mb/s; edge: 1 Gb/s LAN, 32 servers; "
              "cloud: 40 Gb/s WAN, 1792 MB functions; 8 sites)");
  t.set_caption("LAN share = 1 Gb/s equally split across N concurrent "
                "uploads; the edge loses once that share, not compute, "
                "sets the pace; shards merge in shard order (byte-stable "
                "at any NTCO_THREADS)");
  report.emit(t);

  stats::Table x({"crossover users/site", "meaning"});
  x.add_row({crossover < 0 ? "none" : std::to_string(crossover),
             crossover < 0
                 ? "edge won every point in the sweep"
                 : "smallest N where serverless mean completion beats the "
                   "edge site"});
  x.set_title("F13 crossover");
  report.emit(x);
  report.emit_trace(trace);
  return 0;
}
