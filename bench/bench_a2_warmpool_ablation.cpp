// A2 — Warm-pool planner ablation across traffic patterns.
//
// Three sizing policies (none, analytic Erlang-B on the mean rate,
// burst-aware Erlang-B on the burst concurrency) against two streams:
//
//   steady  — Poisson 4 req/s. Keep-alive reuse alone keeps instances warm,
//             so the mean-rate plan only buys money for nothing: the right
//             pool is zero. (This is why F3 uses bursty traffic.)
//   bursty  — fan-out bursts of 1-10 invocations separated by gaps longer
//             than keep-alive. Without a pool most invocations go cold; the
//             mean-rate plan is far too small because the mean hides the
//             burst; sizing on the burst concurrency meets the target.
//
// The lesson the ablation encodes: what matters for provisioned concurrency
// is the *concurrent* demand distribution, not the average rate.

#include "bench_common.hpp"
#include "ntco/alloc/warm_pool.hpp"

using namespace ntco;

namespace {

constexpr auto kWork = Cycles::giga(1);  // 1.4 s at 512 MB
const auto kMemory = DataSize::megabytes(512);

struct Outcome {
  std::uint64_t invocations = 0;
  double cold_rate = 0.0;
  double p99_s = 0.0;
  Money total_cost;
};

Outcome simulate(bool bursty, std::size_t pool) {
  const auto horizon = bursty ? Duration::hours(4) : Duration::minutes(30);
  sim::Simulator sim;
  serverless::PlatformConfig pcfg;
  pcfg.keep_alive = Duration::minutes(1);
  serverless::Platform cloud(sim, pcfg);
  const auto fn = cloud.deploy(
      serverless::FunctionSpec{"w", kMemory, DataSize::megabytes(60)});
  cloud.set_provisioned_concurrency(fn, pool);

  stats::PercentileSample latency;
  std::uint64_t colds = 0, total = 0;
  Rng rng(3);
  TimePoint at = TimePoint::origin();
  for (;;) {
    const double gap_s = bursty ? rng.exponential(300.0)   // ~5 min
                                : rng.exponential(0.25);   // 4 req/s
    at = at + Duration::from_seconds(gap_s);
    if (at.since_origin() > horizon) break;
    const auto burst = bursty ? rng.uniform_int(1, 10) : 1;
    sim.schedule_at(at, [&cloud, fn, burst, &latency, &colds, &total] {
      for (std::int64_t i = 0; i < burst; ++i)
        cloud.invoke(fn, kWork, [&](const serverless::InvocationResult& r) {
          latency.add((r.finished - r.submitted).to_seconds());
          if (r.cold_start) ++colds;
          ++total;
        });
    });
  }
  sim.run_until(TimePoint::origin() + horizon + Duration::minutes(10));
  return Outcome{total,
                 static_cast<double>(colds) / static_cast<double>(total),
                 latency.p99(), cloud.total_cost()};
}

}  // namespace

int main() {
  bench::ReportWriter report("A2", "Warm-pool planner ablation",
                      "steady: pool 0 is right, mean-rate plan overspends; "
                      "bursty: mean-rate plan far too small, burst-aware "
                      "plan meets the 2% target");

  constexpr double kTarget = 0.02;
  sim::Simulator probe_sim;
  serverless::Platform probe(probe_sim, {});
  const Duration service = probe.exec_time(kMemory, kWork);

  // Mean-rate analytic plans.
  alloc::WarmPoolPlanner::Inputs steady_in;
  steady_in.arrivals_per_second = 4.0;
  steady_in.service_time = service;
  steady_in.target_cold_rate = kTarget;
  steady_in.memory = kMemory;
  const auto steady_plan = alloc::WarmPoolPlanner::plan(steady_in);

  alloc::WarmPoolPlanner::Inputs bursty_mean_in = steady_in;
  bursty_mean_in.arrivals_per_second = 5.5 / 300.0;  // mean burst / mean gap
  const auto bursty_mean_plan = alloc::WarmPoolPlanner::plan(bursty_mean_in);

  // Burst-aware plan: offered load = expected burst concurrency, because
  // within a burst all invocations are simultaneous.
  alloc::WarmPoolPlanner::Inputs bursty_burst_in = steady_in;
  bursty_burst_in.arrivals_per_second = 5.5 / service.to_seconds();
  const auto bursty_burst_plan = alloc::WarmPoolPlanner::plan(bursty_burst_in);

  stats::Table t({"traffic", "policy", "pool", "simulated cold", "p99 (s)",
                  "total cost ($)"});
  auto row = [&](const char* traffic, const char* policy, bool bursty,
                 std::size_t pool) {
    const auto o = simulate(bursty, pool);
    t.add_row({traffic, policy, std::to_string(pool),
               stats::cell_pct(o.cold_rate, 1), stats::cell(o.p99_s, 2),
               stats::cell(o.total_cost.to_usd(), 4)});
  };
  row("steady 4/s", "no pool", false, 0);
  row("steady 4/s", "analytic (mean rate)", false, steady_plan.instances);
  row("bursty 1-10", "no pool", true, 0);
  row("bursty 1-10", "analytic (mean rate)", true,
      bursty_mean_plan.instances);
  row("bursty 1-10", "burst-aware", true, bursty_burst_plan.instances);

  t.set_title("A2: pool sizing policies vs traffic shape (2% cold target, "
              "1 min keep-alive)");
  t.set_caption("steady traffic self-warms via keep-alive; bursts need "
                "capacity sized on concurrency, not mean rate");
  report.emit(t);
  return 0;
}
