// A4 — Ablation: the honest local baseline (DVFS-tuned) vs. offloading.
//
// Offloading evaluations are often criticised for comparing against a
// max-frequency local run. For *delay-tolerant* jobs the device itself can
// trade time for energy via DVFS, shrinking the energy gap offloading has
// to beat. Per workload (given a deadline of 3x the nominal local runtime):
// local at max frequency, local at the energy-optimal DVFS point, and the
// min-cut offloaded plan. Expected shape: DVFS cuts the local baseline's
// energy meaningfully, offloading still wins on energy for compute-heavy
// apps — but the margin over the honest baseline is the number that
// matters.

#include "bench_common.hpp"
#include "ntco/device/dvfs.hpp"

using namespace ntco;

int main() {
  bench::ReportWriter report("A4", "DVFS-tuned local baseline vs offloading",
                      "DVFS shrinks the local baseline's energy; offloading "
                      "still wins for compute-heavy apps, by a smaller, "
                      "honest margin");

  const device::DvfsGovernor governor(device::budget_phone(),
                                      device::budget_phone_dvfs());

  stats::Table t({"workload", "deadline (s)", "local@max (J)",
                  "local@DVFS (J)", "DVFS level", "offloaded (J)",
                  "saving vs max", "saving vs DVFS"});
  for (const auto& g : app::workloads::all()) {
    // Deadline: 3x nominal-runtime slack (delay-tolerant but not infinite).
    const device::Device nominal(device::budget_phone());
    const Duration deadline = nominal.exec_time(g.total_work()) * 3.0;

    // Local at the top (2 GHz boost) level, racing to idle in the window.
    const auto maxed =
        governor.evaluate(governor.table().levels.back(), g.total_work(),
                          deadline);
    // Local at the energy-optimal level.
    const auto tuned = governor.energy_optimal(g.total_work(), deadline);

    // Offloaded: min-cut under the energy objective, measured end to end
    // (warm run), plus idle energy until the same deadline window closes.
    core::ControllerConfig cfg;
    cfg.objective = partition::Objective::energy();
    bench::World w(cfg, net::profile_4g());
    const auto plan = w.controller.prepare(g, partition::MinCutPartitioner{});
    (void)w.controller.execute(plan, g);
    const auto run = w.controller.execute(plan, g);
    Energy offload_energy = run.device_energy;
    if (run.makespan < deadline)
      offload_energy += device::Device(device::budget_phone())
                            .idle_energy(deadline - run.makespan);

    t.add_row(
        {g.name(), stats::cell(deadline.to_seconds(), 1),
         stats::cell(maxed.energy.to_joules(), 1),
         stats::cell(tuned.energy.to_joules(), 1),
         std::to_string(tuned.level.freq.count_hertz() / 1'000'000) + " MHz",
         stats::cell(offload_energy.to_joules(), 1),
         stats::cell_pct(1.0 - offload_energy.to_joules() /
                                   maxed.energy.to_joules(),
                         1),
         stats::cell_pct(1.0 - offload_energy.to_joules() /
                                   tuned.energy.to_joules(),
                         1)});
  }
  t.set_title("A4: deadline = 3x nominal local runtime; all rows include "
              "idle energy to the deadline (race-to-idle accounting)");
  report.emit(t);
  return 0;
}
