// F1 — Makespan and cost versus uplink bandwidth: where offloading starts
// to pay.
//
// Two workloads bracketing the CCR spectrum, executed end-to-end (measured,
// not modelled) under min-cut plans at each bandwidth, against the
// local-only baseline. Expected shape: ML training offloads profitably even
// at 1 Mb/s; video transcode needs tens of Mb/s before the plan leaves the
// phone; speedup grows monotonically with bandwidth and saturates once
// transfer stops dominating.

#include "bench_common.hpp"

using namespace ntco;

namespace {

void sweep(bench::ReportWriter& report, const app::TaskGraph& g) {
  stats::Table t({"uplink (Mb/s)", "local (s)", "offloaded (s)", "speedup",
                  "remote comps", "cloud cost ($)"});
  for (const auto mbps : {1, 2, 5, 10, 20, 50, 100}) {
    net::TechProfile tech = net::profile_4g();
    tech.uplink = DataRate::megabits_per_second(
        static_cast<std::uint64_t>(mbps));
    tech.downlink = tech.uplink * 3.0;

    bench::World w(bench::latency_cfg(), tech);
    const auto local_plan =
        w.controller.prepare(g, partition::LocalOnlyPartitioner{});
    const auto local = w.controller.execute(local_plan, g);

    const auto plan = w.controller.prepare(g, partition::MinCutPartitioner{});
    (void)w.controller.execute(plan, g);  // cold run warms instances
    const auto run = w.controller.execute(plan, g);

    t.add_row({std::to_string(mbps),
               stats::cell(local.makespan.to_seconds(), 2),
               stats::cell(run.makespan.to_seconds(), 2),
               stats::cell(local.makespan / run.makespan, 2),
               std::to_string(plan.partition.remote_count()),
               stats::cell(run.cloud_cost.to_usd(), 6)});
  }
  t.set_title("F1: " + g.name() + " (latency objective, warm runs)");
  report.emit(t);
}

}  // namespace

int main() {
  bench::ReportWriter report("F1", "Speedup vs uplink bandwidth",
                      "compute-heavy offloads at any bandwidth; "
                      "transfer-heavy crosses over in the tens of Mb/s");
  sweep(report, app::workloads::ml_batch_training());
  sweep(report, app::workloads::video_transcode());
  return 0;
}
