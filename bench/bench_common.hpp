#pragma once

// Shared fixtures for the experiment binaries. Every bench builds a fresh
// simulated world per configuration point so results are independent and
// deterministic (fixed seeds; see DESIGN.md).

#include <cstdio>
#include <string>

#include "ntco/app/workloads.hpp"
#include "ntco/cicd/pipeline.hpp"
#include "ntco/core/controller.hpp"
#include "ntco/edgesim/edge_platform.hpp"
#include "ntco/stats/table.hpp"

namespace ntco::bench {

/// One self-contained simulated world: event loop, serverless region,
/// UE, and UE<->cloud network path.
struct World {
  sim::Simulator sim;
  serverless::Platform cloud;
  device::Device ue;
  net::NetworkPath path;
  core::OffloadController controller;

  World(core::ControllerConfig ccfg, net::TechProfile tech,
        serverless::PlatformConfig pcfg = {},
        device::DeviceSpec ue_spec = device::budget_phone())
      : cloud(sim, pcfg),
        ue(std::move(ue_spec)),
        path(net::make_fixed_path(tech)),
        controller(sim, cloud, ue, path, ccfg) {}
};

inline core::ControllerConfig latency_cfg() {
  core::ControllerConfig cfg;
  cfg.objective = partition::Objective::latency();
  return cfg;
}

inline core::ControllerConfig ntc_cfg() {
  core::ControllerConfig cfg;
  cfg.objective = partition::Objective::non_time_critical();
  return cfg;
}

/// Uniform experiment header so tee'd bench output reads as a report.
inline void print_header(const char* id, const char* title,
                         const char* shape) {
  std::printf("\n################################################################\n");
  std::printf("# %s  %s\n", id, title);
  std::printf("# expected shape: %s\n", shape);
  std::printf("################################################################\n\n");
}

}  // namespace ntco::bench
