#pragma once

// Shared fixtures for the experiment binaries. Every bench builds a fresh
// simulated world per configuration point so results are independent and
// deterministic (fixed seeds; see DESIGN.md).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "ntco/app/workloads.hpp"
#include "ntco/cicd/pipeline.hpp"
#include "ntco/core/controller.hpp"
#include "ntco/edgesim/edge_platform.hpp"
#include "ntco/obs/metrics.hpp"
#include "ntco/obs/trace.hpp"
#include "ntco/stats/table.hpp"
#include "ntco/net/path.hpp"

namespace ntco::bench {

/// One self-contained simulated world: event loop, serverless region,
/// UE, and UE<->cloud network path.
struct World {
  sim::Simulator sim;
  serverless::Platform cloud;
  device::Device ue;
  net::NetworkPath path;
  core::OffloadController controller;

  World(core::ControllerConfig ccfg, net::TechProfile tech,
        serverless::PlatformConfig pcfg = {},
        device::DeviceSpec ue_spec = device::budget_phone())
      : cloud(sim, pcfg),
        ue(std::move(ue_spec)),
        path(net::make_fixed_path(tech)),
        controller(sim, cloud, ue, path, ccfg) {}
};

inline core::ControllerConfig latency_cfg() {
  core::ControllerConfig cfg;
  cfg.objective = partition::Objective::latency();
  return cfg;
}

inline core::ControllerConfig ntc_cfg() {
  core::ControllerConfig cfg;
  cfg.objective = partition::Objective::non_time_critical();
  return cfg;
}

/// Unified experiment reporting: one object per bench binary that prints
/// the uniform banner on construction, renders every result table for
/// humans, and — when the environment variable NTCO_BENCH_OUT names a
/// directory — mirrors everything machine-readably into it:
///
///   <id>.t<k>.csv       k-th table as CSV (k counts from 1)
///   <id>.rows.jsonl     all table rows as JSON Lines (keyed by header)
///   <id>.metrics.csv    MetricsRegistry dump (via emit_metrics)
///   <id>.trace.jsonl    trace stream (via emit_trace)
///
/// All machine files are byte-deterministic under fixed seeds.
class ReportWriter {
 public:
  ReportWriter(std::string id, const char* title, const char* shape)
      : id_(std::move(id)) {
    std::printf(
        "\n################################################################\n");
    std::printf("# %s  %s\n", id_.c_str(), title);
    std::printf("# expected shape: %s\n", shape);
    std::printf(
        "################################################################\n\n");
    if (const char* dir = std::getenv("NTCO_BENCH_OUT");
        dir != nullptr && dir[0] != '\0')
      dir_ = dir;
  }

  /// True when machine-readable output is being written.
  [[nodiscard]] bool machine_output() const { return !dir_.empty(); }
  [[nodiscard]] const std::string& id() const { return id_; }

  /// Prints the table and mirrors it to <id>.t<k>.csv + <id>.rows.jsonl.
  void emit(const stats::Table& t) {
    std::printf("%s\n", t.render().c_str());
    std::fflush(stdout);
    if (dir_.empty()) return;
    ++tables_;
    write_file(path(".t" + std::to_string(tables_) + ".csv"), t.render_csv(),
               /*append=*/false);
    write_file(path(".rows.jsonl"), t.render_jsonl(), /*append=*/tables_ > 1);
  }

  /// Dumps the registry to <id>.metrics.csv (no-op without NTCO_BENCH_OUT).
  void emit_metrics(const obs::MetricsRegistry& reg) {
    if (dir_.empty()) return;
    write_file(path(".metrics.csv"), reg.to_csv(), /*append=*/false);
  }

  /// Dumps the trace stream to <id>.trace.jsonl (no-op without
  /// NTCO_BENCH_OUT).
  void emit_trace(const obs::JsonlTraceWriter& trace) {
    if (dir_.empty()) return;
    write_file(path(".trace.jsonl"), trace.str(), /*append=*/false);
  }

 private:
  [[nodiscard]] std::string path(const std::string& suffix) const {
    return dir_ + "/" + id_ + suffix;
  }

  void write_file(const std::string& p, const std::string& content,
                  bool append) {
    std::FILE* f = std::fopen(p.c_str(), append ? "ab" : "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "ntco: cannot write %s\n", p.c_str());
      return;
    }
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
  }

  std::string id_;
  std::string dir_;
  std::size_t tables_ = 0;
};

}  // namespace ntco::bench
