// T1 — Workload characteristics.
//
// The four non-time-critical applications the evaluation uses, chosen to
// span the compute-to-communication spectrum from transfer-dominated
// (video transcode) to compute-dominated (ML batch training).

#include "bench_common.hpp"

using namespace ntco;

int main() {
  bench::ReportWriter report(
      "T1", "Workload characteristics",
      "CCR spans >3 orders of magnitude: video << photo/etl << ml");

  stats::Table t({"workload", "components", "pinned", "flows", "work (Gcyc)",
                  "data (MB)", "CCR (cyc/B)", "local runtime",
                  "local energy"});
  const device::Device ue(device::budget_phone());
  for (const auto& g : app::workloads::all()) {
    Duration runtime;
    Energy energy;
    for (const auto& c : g.components()) {
      runtime += ue.exec_time(c.work);
      energy += ue.exec_energy(c.work);
    }
    t.add_row({g.name(), std::to_string(g.component_count()),
               std::to_string(g.pinned_count()),
               std::to_string(g.flow_count()),
               stats::cell(g.total_work().to_mega() / 1000.0, 1),
               stats::cell(g.total_flow_bytes().to_megabytes(), 1),
               stats::cell(g.compute_to_communication(), 1),
               to_string(runtime), to_string(energy)});
  }
  t.set_title("T1: workloads (local runtime/energy on the budget phone)");
  t.set_caption(
      "Pinned components (capture/UI/install) must stay on the UE.");
  report.emit(t);
  return 0;
}
