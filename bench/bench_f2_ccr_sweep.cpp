// F2 — UE energy saved versus compute-to-communication ratio.
//
// The photo-backup graph with its demands scaled over ~3 orders of
// magnitude: at low CCR the radio energy of shipping state exceeds the
// compute energy avoided (offloading *costs* battery and the energy-optimal
// partition stays local); past the break-even the savings climb toward the
// all-remote asymptote.

#include "bench_common.hpp"

using namespace ntco;

int main() {
  bench::ReportWriter report("F2", "Energy saved vs compute-to-communication ratio",
                      "negative/zero savings at low CCR, then monotone "
                      "climb past break-even");

  const auto base = app::workloads::photo_backup();
  core::ControllerConfig cfg;
  cfg.objective = partition::Objective::energy();

  stats::Table t({"work scale", "CCR (cyc/B)", "local energy (J)",
                  "offload energy (J)", "saved", "remote comps"});
  for (const double scale : {0.05, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0,
                             32.0}) {
    const auto g = base.with_work_scaled(scale);
    bench::World w(cfg, net::profile_4g());
    const auto local = w.controller.execute(
        w.controller.prepare(g, partition::LocalOnlyPartitioner{}), g);
    const auto plan = w.controller.prepare(g, partition::MinCutPartitioner{});
    (void)w.controller.execute(plan, g);
    const auto run = w.controller.execute(plan, g);
    const double saved = 1.0 - run.device_energy.to_joules() /
                                   local.device_energy.to_joules();
    t.add_row({stats::cell(scale, 3),
               stats::cell(g.compute_to_communication(), 1),
               stats::cell(local.device_energy.to_joules(), 2),
               stats::cell(run.device_energy.to_joules(), 2),
               stats::cell_pct(saved, 1),
               std::to_string(plan.partition.remote_count())});
  }
  t.set_title("F2: photo-backup, demand scaled (energy objective, 4G)");
  t.set_caption("saved = 1 - offloaded/local UE energy; 0% rows are "
                "all-local plans (offloading would waste battery)");
  report.emit(t);
  return 0;
}
