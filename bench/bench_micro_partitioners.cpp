// Micro-benchmark (google-benchmark): planning throughput of the
// partitioning algorithms on graphs of increasing size. Partitioning runs
// inside the CI/CD pipeline and at every drift-triggered re-release, so its
// latency bounds how often re-planning is affordable.

#include <benchmark/benchmark.h>

#include "ntco/app/generators.hpp"
#include "ntco/device/device.hpp"
#include "ntco/partition/partitioners.hpp"

namespace {

using namespace ntco;

partition::CostModel make_model(std::size_t components,
                                const app::TaskGraph** keep) {
  static std::vector<std::unique_ptr<app::TaskGraph>> graphs;
  app::GeneratorParams gp;
  gp.components = components;
  graphs.push_back(std::make_unique<app::TaskGraph>(
      app::layered_random(std::max<std::size_t>(2, components / 4), gp,
                          Rng(components))));
  *keep = graphs.back().get();
  partition::Environment env;
  env.device = device::budget_phone();
  return partition::CostModel(**keep, env, partition::Objective::latency());
}

void BM_MinCut(benchmark::State& state) {
  const app::TaskGraph* g = nullptr;
  const auto model = make_model(static_cast<std::size_t>(state.range(0)), &g);
  const partition::MinCutPartitioner algo;
  for (auto _ : state) benchmark::DoNotOptimize(algo.plan(model));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MinCut)->Range(8, 512)->Complexity();

void BM_Greedy(benchmark::State& state) {
  const app::TaskGraph* g = nullptr;
  const auto model = make_model(static_cast<std::size_t>(state.range(0)), &g);
  const partition::GreedyPartitioner algo;
  for (auto _ : state) benchmark::DoNotOptimize(algo.plan(model));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Greedy)->Range(8, 128)->Complexity();

void BM_Evaluate(benchmark::State& state) {
  const app::TaskGraph* g = nullptr;
  const auto model = make_model(static_cast<std::size_t>(state.range(0)), &g);
  const auto plan = partition::RemoteAllPartitioner{}.plan(model);
  for (auto _ : state) benchmark::DoNotOptimize(model.evaluate(plan));
}
BENCHMARK(BM_Evaluate)->Range(8, 512);

}  // namespace
