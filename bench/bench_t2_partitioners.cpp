// T2 — Partitioner comparison on the four workloads.
//
// For each workload and algorithm: objective value, physical totals, gap to
// the exhaustive optimum, and planning wall time. Min-cut must sit at 0%
// gap everywhere (it is exact for the separable objective) at microsecond
// planning cost; greedy is near-optimal; the naive baselines bracket the
// range.

#include <chrono>

#include "bench_common.hpp"
#include "ntco/partition/partitioners.hpp"

using namespace ntco;

namespace {

void run_table(bench::ReportWriter& report, const char* title,
               const partition::Objective& objective) {
  stats::Table t({"workload", "algorithm", "objective", "latency (s)",
                  "energy (J)", "cost ($)", "gap-to-opt", "plan time (us)"});
  for (const auto& g : app::workloads::all()) {
    partition::Environment env;
    env.device = device::budget_phone();
    const auto tech = net::profile_4g();
    env.uplink = tech.uplink;
    env.downlink = tech.downlink;
    env.uplink_latency = tech.one_way_latency;
    env.downlink_latency = tech.one_way_latency;
    const partition::CostModel model(g, env, objective);

    const auto optimal =
        model.evaluate(partition::ExhaustivePartitioner().plan(model));

    auto portfolio = partition::standard_portfolio(42);
    portfolio.push_back(std::make_unique<partition::ExhaustivePartitioner>());
    for (const auto& algo : portfolio) {
      const auto begin = std::chrono::steady_clock::now();
      const auto plan = algo->plan(model);
      const auto micros =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - begin)
              .count();
      const auto b = model.breakdown(plan);
      t.add_row({g.name(), algo->name(), stats::cell(b.objective, 4),
                 stats::cell(b.latency.to_seconds(), 2),
                 stats::cell(b.energy.to_joules(), 2),
                 stats::cell(b.money.to_usd(), 6),
                 stats::cell_pct(b.objective / optimal - 1.0, 1),
                 std::to_string(micros)});
    }
  }
  t.set_title(title);
  report.emit(t);
}

}  // namespace

int main() {
  bench::ReportWriter report("T2", "Partitioning algorithms",
                      "min-cut gap 0% everywhere; greedy close; local-only/"
                      "remote-all/random bracket the range");
  run_table(report, "T2a: latency objective (budget phone, 4G)",
            partition::Objective::latency());
  run_table(report, "T2b: non-time-critical objective (money-dominant)",
            partition::Objective::non_time_critical());
  return 0;
}
