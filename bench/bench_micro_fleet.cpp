// MF — Fleet engine scaling: wall-clock speedup of an 8-way replica sweep
// as the worker count grows, plus the determinism cross-check.
//
// Eight identical replicas (each a full serverless burst simulation on its
// own sim::Simulator) run on 1, 2, 4, and 8 workers; the table reports the
// wall time, the speedup over the 1-worker fleet, and whether the merged
// results digest is byte-identical to the 1-worker digest (it must be —
// the fleet's determinism guarantee). Worker counts are explicit here, so
// NTCO_THREADS does not change what this bench measures. Ideal speedup at
// 8 workers is min(8, cores); on a single-core container every row
// measures ~1x, which is itself the honest result.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ntco/fleet/replicator.hpp"

using namespace ntco;

namespace {

/// One replica: a 2000-invocation burst against a private serverless
/// region, arrivals drawn from the shard's rng stream. Returns a digest
/// of everything the merge would consume.
std::string simulate_replica(fleet::ShardContext& ctx) {
  sim::Simulator sim;
  serverless::Platform cloud(sim, {});
  const auto fn = cloud.deploy(serverless::FunctionSpec{
      "job", DataSize::megabytes(1792), DataSize::megabytes(40)});
  stats::PercentileSample latency;
  const int kInvocations = 10000;
  const auto kWindow = Duration::minutes(10);
  for (int i = 0; i < kInvocations; ++i) {
    const auto at = kWindow * ctx.rng.uniform(0.0, 1.0);
    sim.schedule_after(at, [&] {
      cloud.invoke(fn, Cycles::giga(5), [&](const serverless::InvocationResult& r) {
        latency.add((r.finished - r.submitted).to_seconds());
      });
    });
  }
  sim.run();
  char buf[128];
  std::snprintf(buf, sizeof buf, "p50=%.9g p95=%.9g cost=%.9g colds=%llu;",
                latency.median(), latency.p95(), cloud.total_cost().to_usd(),
                static_cast<unsigned long long>(cloud.stats().cold_starts));
  return buf;
}

}  // namespace

int main() {
  bench::ReportWriter report("MF", "Fleet engine scaling (8-way replica sweep)",
                      "wall time falls ~linearly with workers up to the "
                      "core count; merged digest identical on every row");

  const std::size_t kReplicas = 8;
  const std::uint64_t kSeed = 77;

  const auto timed_run = [&](std::size_t threads, double* wall_ms) {
    fleet::Replicator rep(kSeed, threads);
    const auto begin = std::chrono::steady_clock::now();
    const auto digests = rep.map(kReplicas, simulate_replica);
    *wall_ms = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - begin)
                   .count();
    std::string merged;
    for (const auto& d : digests) merged += d;  // shard order
    return merged;
  };

  // Warm-up run so first-row timings do not pay allocator warm-up.
  double warmup_ms = 0.0;
  const std::string baseline_digest = timed_run(1, &warmup_ms);

  stats::Table t({"workers", "wall (ms)", "speedup", "digest identical"});
  double base_ms = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    double wall_ms = 0.0;
    const std::string digest = timed_run(threads, &wall_ms);
    if (threads == 1) base_ms = wall_ms;
    t.add_row({std::to_string(threads), stats::cell(wall_ms, 1),
               stats::cell(base_ms / wall_ms, 2) + "x",
               digest == baseline_digest ? "yes" : "NO"});
  }
  t.set_title("MF: 8 replicas x 10000 invocations, workers swept 1..8 "
              "(explicit, NTCO_THREADS ignored)");
  t.set_caption("digest = per-shard (p50, p95, cost, colds) concatenated "
                "in shard order; any 'NO' is a determinism bug");
  report.emit(t);
  return 0;
}
