// Micro-benchmark (google-benchmark): event-loop throughput of the
// simulation kernel. step() moves the handler out of the queue instead of
// copying it, which matters once a handler's captures exceed the
// std::function small-buffer (BM_ScheduleAndRun/big), and tracing must cost
// nothing when no sink is attached (BM_ScheduleAndRun vs .../traced).

#include <benchmark/benchmark.h>

#include "ntco/obs/trace.hpp"
#include "ntco/sim/simulator.hpp"

namespace {

using namespace ntco;

// Small capture: fits the libstdc++ std::function small-buffer, so the
// old copy-out path was already cheap.
void BM_ScheduleAndRun_Small(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < n; ++i)
      sim.schedule_at(TimePoint::at(Duration::micros(
                          static_cast<std::int64_t>(i))),
                      [&acc] { ++acc; });
    sim.run();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ScheduleAndRun_Small)->Arg(1024)->Arg(8192);

// Big capture: 64 bytes of payload defeats the small-buffer optimisation,
// so a copying step() would heap-allocate per event; the move-out path
// only swaps pointers.
void BM_ScheduleAndRun_Big(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  struct Payload {
    std::uint64_t data[8];
  };
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      Payload p{};
      p.data[0] = i;
      sim.schedule_at(TimePoint::at(Duration::micros(
                          static_cast<std::int64_t>(i))),
                      [&acc, p] { acc += p.data[0]; });
    }
    sim.run();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ScheduleAndRun_Big)->Arg(1024)->Arg(8192);

// Same loop with a sink attached: bounds the cost of the tracing hooks
// when observability is actually on (a counting sink, no serialisation).
void BM_ScheduleAndRun_Traced(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    obs::CountingSink sink;
    sim.set_trace_sink(&sink);
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < n; ++i)
      sim.schedule_at(TimePoint::at(Duration::micros(
                          static_cast<std::int64_t>(i))),
                      [&acc] { ++acc; });
    sim.run();
    benchmark::DoNotOptimize(acc);
    benchmark::DoNotOptimize(sink.count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ScheduleAndRun_Traced)->Arg(1024)->Arg(8192);

}  // namespace
