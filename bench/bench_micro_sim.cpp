// Micro-benchmark (google-benchmark): event-loop throughput of the
// simulation kernel. Covers the three hot verbs — schedule, fire, cancel —
// separately and in the mixed schedule-fire-cancel churn that dominates
// timer-heavy simulations (keep-alive expiries, batch flushes, retries).
// BM_ScheduleFireCancel is the loop tools/ci.sh gates against the
// checked-in BENCH_micro_sim.json baseline (>10% regression fails).
//
// Unlike the other microbenches this binary carries its own main: when
// NTCO_BENCH_OUT names a directory it mirrors every result into
// <dir>/BENCH_micro_sim.json (deterministic field order) so the perf
// trajectory is machine-recorded alongside the experiment artifacts.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "ntco/obs/trace.hpp"
#include "ntco/sim/simulator.hpp"

namespace {

using namespace ntco;

// Small capture: fits the handler small-buffer, so scheduling never
// allocates for the common [&]-style lambda.
void BM_ScheduleAndRun_Small(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < n; ++i)
      sim.schedule_at(TimePoint::at(Duration::micros(
                          static_cast<std::int64_t>(i))),
                      [&acc] { ++acc; });
    sim.run();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ScheduleAndRun_Small)->Arg(1024)->Arg(8192);

// Big capture: 64 bytes of payload defeats the small-buffer optimisation,
// so this pins the cost of the heap-fallback path per event.
void BM_ScheduleAndRun_Big(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  struct Payload {
    std::uint64_t data[8];
  };
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      Payload p{};
      p.data[0] = i;
      sim.schedule_at(TimePoint::at(Duration::micros(
                          static_cast<std::int64_t>(i))),
                      [&acc, p] { acc += p.data[0]; });
    }
    sim.run();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ScheduleAndRun_Big)->Arg(1024)->Arg(8192);

// Same loop with a sink attached: bounds the cost of the tracing hooks
// when observability is actually on (a counting sink, no serialisation).
void BM_ScheduleAndRun_Traced(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    obs::CountingSink sink;
    sim.set_trace_sink(&sink);
    std::uint64_t acc = 0;
    for (std::uint64_t i = 0; i < n; ++i)
      sim.schedule_at(TimePoint::at(Duration::micros(
                          static_cast<std::int64_t>(i))),
                      [&acc] { ++acc; });
    sim.run();
    benchmark::DoNotOptimize(acc);
    benchmark::DoNotOptimize(sink.count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ScheduleAndRun_Traced)->Arg(1024)->Arg(8192);

// The gated loop: per event, one schedule; half the population is then
// cancelled before firing and the rest runs to completion — the mix a
// timer-heavy simulation (keep-alives, retries, batch flushes) produces.
// Items processed counts scheduled events, so items/s compares across
// kernels regardless of the cancel ratio.
void BM_ScheduleFireCancel(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  std::vector<sim::EventId> ids;
  ids.reserve(n);
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t acc = 0;
    ids.clear();
    for (std::uint64_t i = 0; i < n; ++i)
      ids.push_back(sim.schedule_at(
          TimePoint::at(Duration::micros(static_cast<std::int64_t>(i))),
          [&acc] { ++acc; }));
    for (std::uint64_t i = 0; i < n; i += 2) sim.cancel(ids[i]);
    sim.run();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_ScheduleFireCancel)->Arg(1024)->Arg(8192);

// Timer churn: a fixed population of pending timeouts, each repeatedly
// cancelled and re-armed (the reset-the-timeout pattern of keep-alive and
// retry timers), then drained. Cancel cost dominates; items counts
// cancel+reschedule pairs.
void BM_CancelReschedule(benchmark::State& state) {
  constexpr std::uint64_t kTimers = 256;
  const auto rounds = static_cast<std::uint64_t>(state.range(0));
  std::vector<sim::EventId> ids(kTimers);
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t acc = 0;
    std::int64_t t = 1'000'000;
    for (std::uint64_t i = 0; i < kTimers; ++i)
      ids[i] = sim.schedule_at(TimePoint::at(Duration::micros(t + static_cast<std::int64_t>(i))),
                               [&acc] { ++acc; });
    for (std::uint64_t r = 0; r < rounds; ++r) {
      const std::uint64_t i = r % kTimers;
      sim.cancel(ids[i]);
      ++t;
      ids[i] = sim.schedule_at(
          TimePoint::at(Duration::micros(t + static_cast<std::int64_t>(i))),
          [&acc] { ++acc; });
    }
    sim.run();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds) *
                          state.iterations());
}
BENCHMARK(BM_CancelReschedule)->Arg(4096)->Arg(32768);

// Interleaved handler-driven scheduling: every fired event schedules its
// successor (the chain shape ServerPool and the platform keep-alive path
// produce), so schedule and fire alternate instead of batching.
void BM_FireChain(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t fired = 0;
    struct Chain {
      sim::Simulator& sim;
      std::uint64_t& fired;
      std::uint64_t remaining;
      void operator()() {
        ++fired;
        if (remaining > 0)
          sim.schedule_after(Duration::micros(1),
                             Chain{sim, fired, remaining - 1});
      }
    };
    sim.schedule_after(Duration::micros(1), Chain{sim, fired, n - 1});
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(BM_FireChain)->Arg(8192);

// ---------------------------------------------------------------------------
// Reporting: forward everything to the console reporter and, when
// NTCO_BENCH_OUT is set, mirror (name, items/s, ns/item) into
// <dir>/BENCH_micro_sim.json. The JSON is written by us (not
// google-benchmark's --benchmark_out) so the schema stays stable and the
// ci.sh regression guard can parse it with POSIX awk.

struct CapturedRun {
  std::string name;
  double items_per_second = 0.0;
  double ns_per_item = 0.0;
};

class MirroringReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      CapturedRun c;
      c.name = run.benchmark_name();
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        c.items_per_second = static_cast<double>(it->second);
        if (c.items_per_second > 0.0) c.ns_per_item = 1e9 / c.items_per_second;
      }
      captured.push_back(std::move(c));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  std::vector<CapturedRun> captured;
};

bool write_json(const std::string& path,
                const std::vector<CapturedRun>& runs) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"bench\": \"micro_sim\",\n  \"results\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i)
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"items_per_second\": %.6g, "
                 "\"ns_per_item\": %.6g}%s\n",
                 runs[i].name.c_str(), runs[i].items_per_second,
                 runs[i].ns_per_item, i + 1 < runs.size() ? "," : "");
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  MirroringReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (const char* dir = std::getenv("NTCO_BENCH_OUT");
      dir != nullptr && dir[0] != '\0') {
    const std::string path = std::string(dir) + "/BENCH_micro_sim.json";
    if (!write_json(path, reporter.captured)) {
      std::fprintf(stderr, "ntco: cannot write %s\n", path.c_str());
      return 1;
    }
  }
  return 0;
}
