#pragma once

#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ntco/app/task_graph.hpp"
#include "ntco/common/units.hpp"
#include "ntco/device/device.hpp"
#include "ntco/net/transport.hpp"
#include "ntco/obs/metrics.hpp"
#include "ntco/obs/trace.hpp"
#include "ntco/partition/cost_model.hpp"
#include "ntco/partition/partitioners.hpp"
#include "ntco/serverless/platform.hpp"
#include "ntco/sim/simulator.hpp"
#include "ntco/stats/accumulator.hpp"

/// \file controller.hpp
/// The framework's primary public API: profile-informed partitioning,
/// serverless resource allocation, deployment, and end-to-end execution.
///
/// Typical use (see examples/quickstart.cpp):
///
///   sim::Simulator sim;
///   serverless::Platform cloud(sim, {});
///   device::Device ue(device::budget_phone());
///   auto path = net::make_path(net::spec_4g());   // any net::Transport
///   core::OffloadController ctl(sim, cloud, ue, path, {});
///
/// The controller programs against net::Transport, so the same workflow
/// runs over a private link (net::NetworkPath) or a contention-aware
/// shared fabric (fabric::FabricPath) without modification.
///
///   const auto app = app::workloads::photo_backup();
///   partition::MinCutPartitioner mincut;
///   const auto plan = ctl.prepare(app, mincut);
///   const auto report = ctl.execute(plan, app);
///
/// prepare() is fed the *estimated* graph from the profiler in production;
/// execute() runs against the true demands, so estimate error shows up as
/// prediction-vs-measurement gap.

namespace ntco::core {

/// How execute() walks the DAG.
enum class ExecutionMode {
  /// One component at a time in topological order (the model the separable
  /// cost objective and the min-cut partitioner assume).
  Sequential,
  /// Dataflow execution: a component starts once all inputs arrived.
  /// Remote components run concurrently on the platform; local components
  /// serialise on the single UE core; boundary transfers serialise per
  /// radio direction (half-duplex up, half-duplex down).
  Parallel,
};

/// Knobs of the offloading controller.
struct ControllerConfig {
  partition::Objective objective = partition::Objective::non_time_critical();
  ExecutionMode execution_mode = ExecutionMode::Sequential;
  /// Per-component execution-time ceiling for the memory allocator
  /// (Duration::max() = cost-optimal regardless of duration).
  Duration component_deadline = Duration::max();
  /// Memory sweep granularity of the allocator.
  DataSize memory_step = DataSize::megabytes(128);
  /// Reference memory used for the planning environment (before per-
  /// function allocation fixes the real sizes).
  DataSize reference_memory = DataSize::megabytes(1792);
  /// Expected fraction of remote invocations that hit a warm instance;
  /// cold-start time is amortised into the planning overhead at (1 - rate).
  double expected_warm_rate = 0.8;
  /// Per-invocation dispatch overhead excluded from cold starts.
  Duration dispatch_overhead = Duration::millis(5);
  /// Retries per boundary transfer before giving up (relevant when the
  /// network path injects failures, see net::FlakyLink). After the final
  /// upload failure the component falls back to local execution; after the
  /// final download failure the run is aborted (results are stranded in
  /// the cloud). Parallel mode escalates any exhausted transfer to a run
  /// failure.
  std::size_t max_transfer_retries = 2;
};

/// Result of prepare(): a deployed, executable offloading plan.
struct DeploymentPlan {
  partition::Partition partition;
  partition::Environment environment;   ///< environment used for planning
  partition::CostBreakdown predicted;   ///< model-predicted totals
  /// Per-component function handle; kInvalidFunction for local components.
  /// Direct access is discouraged — prefer function_for(), which encodes
  /// "local" as nullopt instead of a sentinel; the raw field remains public
  /// only for tests that assemble plans by hand.
  std::vector<serverless::FunctionId> function_of;
  /// Per-component chosen memory (meaningful for remote components).
  /// Direct access is discouraged — prefer memory_for().
  std::vector<DataSize> memory_of;

  static constexpr serverless::FunctionId kInvalidFunction =
      std::numeric_limits<serverless::FunctionId>::max();

  [[nodiscard]] bool is_remote(app::ComponentId id) const {
    return partition.is_remote(id);
  }

  /// Deployed function serving component `id`; nullopt for components that
  /// run on the device (or ids beyond the planned graph).
  [[nodiscard]] std::optional<serverless::FunctionId> function_for(
      app::ComponentId id) const {
    if (id >= function_of.size() || function_of[id] == kInvalidFunction)
      return std::nullopt;
    return function_of[id];
  }

  /// Memory configured for component `id`'s function; nullopt for local
  /// components.
  [[nodiscard]] std::optional<DataSize> memory_for(app::ComponentId id) const {
    if (!function_for(id).has_value()) return std::nullopt;
    return memory_of[id];
  }
};

/// Measured totals of one end-to-end execution.
struct ExecutionReport {
  Duration makespan;        ///< release to final component completion
  Energy device_energy;     ///< UE battery drained by the run
  Money cloud_cost;         ///< invocation + egress cost attributable to it
  Duration local_compute;   ///< UE busy time
  Duration remote_compute;  ///< cloud execution time (excl. init/queue)
  Duration transfer;        ///< radio time across the partition boundary
  Duration waiting;         ///< UE idle time while the cloud works
  std::size_t remote_invocations = 0;
  std::size_t cold_starts = 0;
  std::size_t transfer_failures = 0;  ///< failed radio attempts (retried)
  std::size_t local_fallbacks = 0;    ///< components re-homed to the UE
  bool failed = false;  ///< run aborted (unrecoverable transfer loss)
};

/// Facade wiring profiler output, partitioner, allocator, platform, and
/// network into one offloading workflow.
class OffloadController {
 public:
  OffloadController(sim::Simulator& sim, serverless::Platform& platform,
                    device::Device& device, net::Transport& path,
                    ControllerConfig cfg);

  OffloadController(const OffloadController&) = delete;
  OffloadController& operator=(const OffloadController&) = delete;

  /// Builds the planning environment (remote speed, prices, link figures)
  /// for a graph from the attached platform, device, and network.
  [[nodiscard]] partition::Environment make_environment(
      const app::TaskGraph& g) const;

  /// Partitions `g`, sizes a serverless function for every remote
  /// component, and deploys them. `g` is normally the profiler's estimated
  /// graph.
  ///
  /// Deployment is idempotent per plan fingerprint (graph identity +
  /// placement + per-function memory/image): preparing an identical plan
  /// again reuses the already-deployed functions — and with them their
  /// warm instances — instead of registering fresh cold ones. This is what
  /// lets a plan-cache hit skip the redundant deploy cost (previously
  /// every prepare() cold-started a brand-new set of functions).
  [[nodiscard]] DeploymentPlan prepare(
      const app::TaskGraph& g, const partition::Partitioner& partitioner);

  /// As above, but plans against a caller-supplied environment instead of
  /// make_environment(g) — the broker perturbs link figures per user
  /// before planning.
  [[nodiscard]] DeploymentPlan prepare(
      const app::TaskGraph& g, const partition::Partitioner& partitioner,
      const partition::Environment& env);

  /// Executes `truth` once under `plan`, sequentially in topological
  /// order; `done` fires with the measured report. Multiple concurrent
  /// executions are allowed (they contend for warm instances naturally).
  void execute_async(const DeploymentPlan& plan, const app::TaskGraph& truth,
                     std::function<void(const ExecutionReport&)> done);

  /// Synchronous convenience: executes once and drives the simulator until
  /// the run completes.
  [[nodiscard]] ExecutionReport execute(const DeploymentPlan& plan,
                                        const app::TaskGraph& truth);

  [[nodiscard]] const ControllerConfig& config() const { return cfg_; }

  /// The transport every boundary transfer of this controller rides.
  /// Exposed for upstream layers (the broker's deadline-joint admission)
  /// that need the *nominal* link figures via spec(); the stateful timing
  /// methods commit transfers and must not be called for estimates.
  [[nodiscard]] const net::Transport& transport() const { return path_; }

  /// Attaches observability. `trace` receives the "ctl.*" spans (run
  /// begin/end, transfer attempts and retries, local fallbacks); `metrics`
  /// hosts the "core.*" instruments. Either may be null. Stable names are
  /// listed in DESIGN.md ("Observability").
  void attach_observer(obs::TraceSink* trace, obs::MetricsRegistry* metrics);

 private:
  struct RunState;
  struct RadioResult {
    bool ok = true;
    Duration elapsed;
  };
  /// Attempts a boundary transfer with retries, charging time and radio
  /// energy for every attempt (including failed ones) to `report`.
  RadioResult radio_with_retries(bool upload, DataSize bytes,
                                 ExecutionReport& report);

  void step(std::shared_ptr<RunState> run);

  // Parallel-mode machinery.
  struct ParallelRun;
  void par_component_ready(std::shared_ptr<ParallelRun> run,
                           app::ComponentId v);
  void par_start_local(std::shared_ptr<ParallelRun> run, app::ComponentId v);
  void par_component_done(std::shared_ptr<ParallelRun> run,
                          app::ComponentId v);
  void par_deliver_flow(std::shared_ptr<ParallelRun> run, std::size_t flow);
  void par_maybe_finish(const std::shared_ptr<ParallelRun>& run);

  void observe_run_end(const ExecutionReport& r);

  /// Cached instrument pointers; null when no registry is attached.
  struct Instruments {
    obs::Counter* runs = nullptr;
    obs::Counter* run_failures = nullptr;
    obs::Counter* local_fallbacks = nullptr;
    obs::Counter* transfer_failures = nullptr;
    obs::Counter* plan_deploys = nullptr;
    obs::Counter* plan_reuses = nullptr;
    stats::Accumulator* makespan_ms = nullptr;
    stats::Accumulator* cloud_cost_usd = nullptr;
    stats::Accumulator* device_energy_j = nullptr;
  };

  sim::Simulator& sim_;
  serverless::Platform& platform_;
  device::Device& device_;
  net::Transport& path_;
  ControllerConfig cfg_;
  obs::TraceSink* trace_ = nullptr;
  Instruments m_;
  /// Deployed-function memo keyed by plan fingerprint (see prepare()):
  /// identical plans reuse their FunctionIds instead of redeploying.
  std::map<std::string, std::vector<serverless::FunctionId>> deployed_;
};

}  // namespace ntco::core
