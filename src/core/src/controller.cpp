#include "ntco/core/controller.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ntco/alloc/memory_optimizer.hpp"
#include "ntco/common/error.hpp"

namespace ntco::core {

OffloadController::OffloadController(sim::Simulator& sim,
                                     serverless::Platform& platform,
                                     device::Device& device,
                                     net::Transport& path,
                                     ControllerConfig cfg)
    : sim_(sim), platform_(platform), device_(device), path_(path), cfg_(cfg) {
  if (cfg_.expected_warm_rate < 0.0 || cfg_.expected_warm_rate > 1.0)
    throw ConfigError("expected_warm_rate must lie in [0, 1]");
}

void OffloadController::attach_observer(obs::TraceSink* trace,
                                        obs::MetricsRegistry* metrics) {
  trace_ = trace;
  m_ = {};
  if (metrics != nullptr) {
    m_.runs = &metrics->counter("core.runs");
    m_.run_failures = &metrics->counter("core.run_failures");
    m_.local_fallbacks = &metrics->counter("core.local_fallbacks");
    m_.transfer_failures = &metrics->counter("core.transfer_failures");
    m_.plan_deploys = &metrics->counter("core.plan_deploys");
    m_.plan_reuses = &metrics->counter("core.plan_reuses");
    m_.makespan_ms = &metrics->summary("core.makespan_ms");
    m_.cloud_cost_usd = &metrics->summary("core.cloud_cost_usd");
    m_.device_energy_j = &metrics->summary("core.device_energy_j");
  }
}

void OffloadController::observe_run_end(const ExecutionReport& r) {
  if (m_.runs) {
    m_.runs->add();
    if (r.failed) m_.run_failures->add();
    m_.local_fallbacks->add(r.local_fallbacks);
    m_.transfer_failures->add(r.transfer_failures);
    m_.makespan_ms->add(r.makespan.to_millis());
    m_.cloud_cost_usd->add(r.cloud_cost.to_usd());
    m_.device_energy_j->add(r.device_energy.to_joules());
  }
  if (trace_)
    obs::emit(trace_, sim_.now(), "ctl.run.end",
              {{"makespan", r.makespan},
               {"failed", r.failed},
               {"cloud_cost", r.cloud_cost},
               {"remote_invocations", r.remote_invocations},
               {"cold_starts", r.cold_starts},
               {"transfer_failures", r.transfer_failures},
               {"local_fallbacks", r.local_fallbacks}});
}

partition::Environment OffloadController::make_environment(
    const app::TaskGraph& g) const {
  partition::Environment env;
  env.device = device_.spec();

  const DataSize ref = platform_.quantize_memory(cfg_.reference_memory);
  env.remote_speed =
      platform_.config().core_speed * platform_.cpu_share(ref);

  // Amortise the expected cold-start share of the average image into the
  // per-invocation overhead.
  DataSize mean_image;
  std::size_t offloadable = 0;
  for (const auto& c : g.components()) {
    if (c.pinned_local) continue;
    mean_image += c.image;
    ++offloadable;
  }
  Duration cold;
  if (offloadable > 0)
    cold = platform_.cold_start_time(
        DataSize::bytes(mean_image.count_bytes() / offloadable));
  env.remote_overhead =
      cfg_.dispatch_overhead + cold * (1.0 - cfg_.expected_warm_rate);

  const double ref_gb = static_cast<double>(ref.count_bytes()) / 1e9;
  env.remote_price_per_second =
      platform_.config().price_per_gb_second * ref_gb;
  env.price_per_invocation = platform_.config().price_per_request;

  const net::PathSpec& spec = path_.spec();
  env.uplink = spec.up.rate;
  env.downlink = spec.down.rate;
  env.uplink_latency = spec.up.latency;
  env.downlink_latency = spec.down.latency;
  return env;
}

DeploymentPlan OffloadController::prepare(
    const app::TaskGraph& g, const partition::Partitioner& partitioner) {
  return prepare(g, partitioner, make_environment(g));
}

DeploymentPlan OffloadController::prepare(
    const app::TaskGraph& g, const partition::Partitioner& partitioner,
    const partition::Environment& env) {
  DeploymentPlan plan;
  plan.environment = env;
  const partition::CostModel model(g, plan.environment, cfg_.objective);
  plan.partition = partitioner.plan(model);
  NTCO_ENSURES(plan.partition.respects_pins(g));
  plan.predicted = model.breakdown(plan.partition);

  plan.function_of.assign(g.component_count(),
                          DeploymentPlan::kInvalidFunction);
  plan.memory_of.assign(g.component_count(), DataSize::zero());

  // Size every remote component's function first; the resulting specs (not
  // the environment that produced them) are what deployment must be
  // idempotent over.
  const alloc::MemoryOptimizer optimizer(platform_);
  std::vector<std::pair<app::ComponentId, serverless::FunctionSpec>> specs;
  std::string fingerprint = g.name();
  fingerprint += '|';
  fingerprint += plan.partition.to_string();
  for (app::ComponentId id = 0; id < g.component_count(); ++id) {
    if (!plan.partition.is_remote(id)) continue;
    const auto& comp = g.component(id);
    // Keep the allocation coherent with the plan: the function must run no
    // slower than the speed the partitioner assumed (plus 5% tolerance),
    // and within any caller-supplied per-component deadline.
    const Duration planned_exec = comp.work / plan.environment.remote_speed;
    const Duration deadline =
        std::min(cfg_.component_deadline, planned_exec * 1.05);
    const auto choice =
        optimizer.choose(comp.work, comp.memory, comp.parallel_fraction,
                         deadline, cfg_.memory_step);
    plan.memory_of[id] = choice.chosen.memory;
    specs.emplace_back(id, serverless::FunctionSpec{
                               g.name() + "/" + comp.name,
                               choice.chosen.memory, comp.image,
                               comp.parallel_fraction});
    fingerprint += '|';
    fingerprint += comp.name;
    fingerprint += '@';
    fingerprint += std::to_string(choice.chosen.memory.count_bytes());
    fingerprint += '#';
    fingerprint += std::to_string(comp.image.count_bytes());
  }

  const auto memo = deployed_.find(fingerprint);
  if (memo != deployed_.end()) {
    // Same functions, same sizes: reuse the deployment (and its warm
    // instances) instead of registering cold duplicates.
    NTCO_ENSURES(memo->second.size() == specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
      plan.function_of[specs[i].first] = memo->second[i];
    if (m_.plan_reuses) m_.plan_reuses->add();
    if (trace_)
      obs::emit(trace_, sim_.now(), "ctl.deploy.reuse",
                {{"app", std::string_view(g.name())},
                 {"functions", specs.size()}});
    return plan;
  }

  std::vector<serverless::FunctionId> ids;
  ids.reserve(specs.size());
  for (auto& [id, spec] : specs) {
    plan.function_of[id] = platform_.deploy(std::move(spec));
    ids.push_back(plan.function_of[id]);
  }
  deployed_.emplace(std::move(fingerprint), std::move(ids));
  if (m_.plan_deploys) m_.plan_deploys->add();
  return plan;
}

/// Per-execution state threaded through the event chain.
struct OffloadController::RunState {
  const DeploymentPlan* plan = nullptr;
  const app::TaskGraph* truth = nullptr;
  std::vector<app::ComponentId> order;
  std::size_t next = 0;
  TimePoint begin;
  ExecutionReport report;
  std::function<void(const ExecutionReport&)> done;
  /// Where each already-executed component actually ran (differs from the
  /// plan after an upload-failure fallback).
  std::vector<bool> ran_remote;
};

OffloadController::RadioResult OffloadController::radio_with_retries(
    bool upload, DataSize bytes, ExecutionReport& report) {
  const net::LinkDirection dir =
      upload ? net::LinkDirection::Up : net::LinkDirection::Down;
  RadioResult result;
  for (std::size_t attempt = 0; attempt <= cfg_.max_transfer_retries;
       ++attempt) {
    const net::TransferAttempt a = path_.attempt(dir, bytes);
    result.elapsed += a.elapsed;
    report.transfer += a.elapsed;
    report.device_energy +=
        upload ? device_.tx_energy(a.elapsed) : device_.rx_energy(a.elapsed);
    if (trace_)
      obs::emit(trace_, sim_.now(), "ctl.transfer.attempt",
                {{"dir", upload ? "up" : "down"},
                 {"bytes", bytes},
                 {"attempt", attempt},
                 {"ok", a.ok},
                 {"elapsed", a.elapsed}});
    if (a.ok) {
      result.ok = true;
      return result;
    }
    ++report.transfer_failures;
    if (trace_ && attempt < cfg_.max_transfer_retries)
      obs::emit(trace_, sim_.now(), "ctl.transfer.retry",
                {{"dir", upload ? "up" : "down"},
                 {"bytes", bytes},
                 {"next_attempt", attempt + 1}});
  }
  result.ok = false;
  if (trace_)
    obs::emit(trace_, sim_.now(), "ctl.transfer.exhausted",
              {{"dir", upload ? "up" : "down"}, {"bytes", bytes}});
  return result;
}

/// Per-execution state of the dataflow (parallel) executor.
struct OffloadController::ParallelRun {
  const DeploymentPlan* plan = nullptr;
  const app::TaskGraph* truth = nullptr;
  TimePoint begin;
  ExecutionReport report;
  std::function<void(const ExecutionReport&)> done;

  std::vector<std::size_t> pending_inputs;  ///< undelivered in-flows per comp
  std::size_t remaining = 0;                ///< components not yet finished
  bool finished = false;  ///< done() already fired (success or failure)
  bool device_busy = false;
  std::deque<app::ComponentId> local_ready;  ///< waiting for the UE core
  TimePoint uplink_free;    ///< next time the uplink can start a transfer
  TimePoint downlink_free;  ///< next time the downlink can start a transfer
};

void OffloadController::execute_async(
    const DeploymentPlan& plan, const app::TaskGraph& truth,
    std::function<void(const ExecutionReport&)> done) {
  NTCO_EXPECTS(done != nullptr);
  NTCO_EXPECTS(plan.partition.placement.size() == truth.component_count());
  const bool sequential = cfg_.execution_mode == ExecutionMode::Sequential;
  if (trace_)
    obs::emit(trace_, sim_.now(), "ctl.run.begin",
              {{"app", std::string_view(truth.name())},
               {"mode", sequential ? "sequential" : "parallel"},
               {"components", truth.component_count()},
               {"remote", plan.partition.remote_count()}});
  if (trace_ != nullptr || m_.runs != nullptr) {
    done = [this, inner = std::move(done)](const ExecutionReport& r) {
      observe_run_end(r);
      inner(r);
    };
  }
  if (cfg_.execution_mode == ExecutionMode::Sequential) {
    auto run = std::make_shared<RunState>();
    run->plan = &plan;
    run->truth = &truth;
    run->order = truth.topological_order();
    run->begin = sim_.now();
    run->done = std::move(done);
    step(std::move(run));
    return;
  }

  // Parallel (dataflow) execution.
  if (!truth.is_dag())
    throw ConfigError("parallel execution requires an acyclic graph");
  auto run = std::make_shared<ParallelRun>();
  run->plan = &plan;
  run->truth = &truth;
  run->begin = sim_.now();
  run->done = std::move(done);
  run->remaining = truth.component_count();
  run->pending_inputs.resize(truth.component_count());
  run->uplink_free = sim_.now();
  run->downlink_free = sim_.now();
  for (app::ComponentId v = 0; v < truth.component_count(); ++v)
    run->pending_inputs[v] = truth.in_flows(v).size();
  for (app::ComponentId v = 0; v < truth.component_count(); ++v)
    if (run->pending_inputs[v] == 0) par_component_ready(run, v);
}

void OffloadController::par_component_ready(std::shared_ptr<ParallelRun> run,
                                            app::ComponentId v) {
  if (run->finished) return;
  if (!run->plan->is_remote(v)) {
    if (run->device_busy) {
      run->local_ready.push_back(v);
    } else {
      par_start_local(std::move(run), v);
    }
    return;
  }
  // Remote components run concurrently on the platform.
  const auto fn = run->plan->function_for(v);
  NTCO_EXPECTS(fn.has_value());
  const TimePoint invoked = sim_.now();
  auto* controller = this;
  // Read the work before the call: the closure argument moves `run`, and
  // argument evaluation order is unspecified.
  const Cycles work = run->truth->component(v).work;
  platform_.invoke(*fn, work,
                   [controller, run = std::move(run), v,
                    invoked](const serverless::InvocationResult& r) mutable {
                     run->report.remote_compute += r.exec_time;
                     run->report.cloud_cost += r.cost;
                     run->report.waiting += r.finished - invoked;
                     ++run->report.remote_invocations;
                     if (r.cold_start) ++run->report.cold_starts;
                     controller->par_component_done(std::move(run), v);
                   });
}

void OffloadController::par_start_local(std::shared_ptr<ParallelRun> run,
                                        app::ComponentId v) {
  run->device_busy = true;
  const Cycles work = run->truth->component(v).work;
  const Duration exec = device_.exec_time(work);
  run->report.local_compute += exec;
  run->report.device_energy += device_.exec_energy(work);
  sim_.schedule_after(exec, [this, run = std::move(run), v]() mutable {
    run->device_busy = false;
    if (!run->local_ready.empty()) {
      const app::ComponentId next = run->local_ready.front();
      run->local_ready.pop_front();
      par_start_local(run, next);
    }
    par_component_done(std::move(run), v);
  });
}

void OffloadController::par_component_done(std::shared_ptr<ParallelRun> run,
                                           app::ComponentId v) {
  --run->remaining;
  for (const std::size_t fi : run->truth->out_flows(v))
    par_deliver_flow(run, fi);
  par_maybe_finish(run);
}

void OffloadController::par_deliver_flow(std::shared_ptr<ParallelRun> run,
                                         std::size_t flow) {
  const auto& f = run->truth->flow(flow);
  const bool from_remote = run->plan->is_remote(f.from);
  const bool to_remote = run->plan->is_remote(f.to);

  auto delivered = [this](std::shared_ptr<ParallelRun> r,
                          app::ComponentId to) {
    NTCO_EXPECTS(r->pending_inputs[to] > 0);
    if (--r->pending_inputs[to] == 0) par_component_ready(std::move(r), to);
  };

  if (run->finished) return;  // a failed run ignores stragglers

  if (from_remote == to_remote) {
    // Same side: in-process (local) or intra-region (remote), free.
    delivered(std::move(run), f.to);
    return;
  }

  // The transfer queues behind earlier traffic in its radio direction.
  // Retries happen back to back; in dataflow mode an exhausted transfer
  // has no safe fallback (other placements are already in flight), so it
  // escalates to a run failure.
  const bool upload = to_remote;
  const RadioResult radio =
      radio_with_retries(upload, f.bytes, run->report);
  const Duration t = radio.elapsed;
  if (!radio.ok) {
    run->finished = true;
    run->report.failed = true;
    run->report.makespan = (sim_.now() + t) - run->begin;
    run->done(run->report);
    return;
  }
  TimePoint& direction_free = upload ? run->uplink_free : run->downlink_free;
  const TimePoint start = std::max(sim_.now(), direction_free);
  const TimePoint finish = start + t;
  direction_free = finish;
  if (!upload)
    run->report.cloud_cost +=
        run->plan->environment.egress_price_per_gb *
        (static_cast<double>(f.bytes.count_bytes()) / 1e9);

  const app::ComponentId to = f.to;
  sim_.schedule_at(finish,
                   [this, run = std::move(run), to, delivered]() mutable {
                     delivered(std::move(run), to);
                   });
}

void OffloadController::par_maybe_finish(
    const std::shared_ptr<ParallelRun>& run) {
  if (run->finished || run->remaining > 0) return;
  run->finished = true;
  run->report.makespan = sim_.now() - run->begin;
  // The UE idles whenever it is not computing; radio energy is accounted
  // separately on top (slight overlap double-count, documented).
  const Duration idle = run->report.makespan - run->report.local_compute;
  if (idle > Duration::zero())
    run->report.device_energy += device_.idle_energy(idle);
  run->done(run->report);
}

void OffloadController::step(std::shared_ptr<RunState> run) {
  if (run->next == run->order.size()) {
    run->report.makespan = sim_.now() - run->begin;
    run->done(run->report);
    return;
  }

  const app::ComponentId v = run->order[run->next++];
  const auto& g = *run->truth;
  const auto& plan = *run->plan;
  if (run->ran_remote.empty()) run->ran_remote.resize(g.component_count());

  // Phase 1 — decide where v actually runs. If it is planned remote, its
  // local inputs must be uploaded first; an unrecoverable upload failure
  // re-homes v to the UE (the data never left the device, so this is
  // always safe).
  bool remote = plan.is_remote(v);
  Duration transfer;
  if (remote) {
    for (const std::size_t fi : g.in_flows(v)) {
      const auto& f = g.flow(fi);
      if (run->ran_remote[f.from]) continue;  // already in the cloud
      const RadioResult r =
          radio_with_retries(/*upload=*/true, f.bytes, run->report);
      transfer += r.elapsed;
      if (!r.ok) {
        remote = false;
        ++run->report.local_fallbacks;
        if (trace_)
          obs::emit(trace_, sim_.now(), "ctl.fallback.local",
                    {{"component", v}});
        break;
      }
    }
  }

  // Phase 2 — if v runs locally, inputs produced in the cloud must come
  // down. A final download failure strands the data remotely: the run
  // fails.
  if (!remote) {
    for (const std::size_t fi : g.in_flows(v)) {
      const auto& f = g.flow(fi);
      if (!run->ran_remote[f.from]) continue;
      const RadioResult r =
          radio_with_retries(/*upload=*/false, f.bytes, run->report);
      transfer += r.elapsed;
      if (!r.ok) {
        run->report.failed = true;
        run->report.makespan = (sim_.now() + transfer) - run->begin;
        run->done(run->report);
        return;
      }
      run->report.cloud_cost +=
          plan.environment.egress_price_per_gb *
          (static_cast<double>(f.bytes.count_bytes()) / 1e9);
    }
  }

  run->ran_remote[v] = remote;

  if (!remote) {
    const Duration exec = device_.exec_time(g.component(v).work);
    run->report.local_compute += exec;
    run->report.device_energy += device_.exec_energy(g.component(v).work);
    sim_.schedule_after(transfer + exec,
                        [this, run = std::move(run)]() mutable {
                          step(std::move(run));
                        });
    return;
  }

  const auto fn_opt = plan.function_for(v);
  NTCO_EXPECTS(fn_opt.has_value());
  const serverless::FunctionId fn = *fn_opt;
  const Cycles work = g.component(v).work;
  sim_.schedule_after(transfer, [this, run = std::move(run), fn,
                                 work]() mutable {
    const TimePoint invoked = sim_.now();
    // Keep a raw pointer so we can move `run` into the completion callback.
    auto* controller = this;
    platform_.invoke(
        fn, work,
        [controller, run = std::move(run),
         invoked](const serverless::InvocationResult& r) mutable {
          const Duration waited = r.finished - invoked;
          run->report.waiting += waited;
          // The UE idles while the cloud computes.
          run->report.device_energy += controller->device_.idle_energy(waited);
          run->report.remote_compute += r.exec_time;
          run->report.cloud_cost += r.cost;
          ++run->report.remote_invocations;
          if (r.cold_start) ++run->report.cold_starts;
          controller->step(std::move(run));
        });
  });
}

ExecutionReport OffloadController::execute(const DeploymentPlan& plan,
                                           const app::TaskGraph& truth) {
  ExecutionReport report;
  bool done = false;
  execute_async(plan, truth, [&](const ExecutionReport& r) {
    report = r;
    done = true;
  });
  while (!done && sim_.step()) {
  }
  NTCO_ENSURES(done);
  return report;
}

}  // namespace ntco::core
