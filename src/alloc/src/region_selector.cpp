#include "ntco/alloc/region_selector.hpp"

#include <algorithm>

#include "ntco/common/error.hpp"

namespace ntco::alloc {

std::vector<RegionOption> default_regions() {
  return {
      {"near-metro", 1.10, Duration::zero(), 350.0},      // close, pricey
      {"us-east", 1.00, Duration::millis(35), 420.0},     // reference tariff
      {"eu-north", 1.02, Duration::millis(60), 30.0},     // hydro grid
      {"ap-south", 0.92, Duration::millis(90), 700.0},    // cheap, coal-heavy
  };
}

RegionSelector::RegionSelector(std::vector<RegionOption> regions,
                               Weights weights, Power vcpu_power)
    : regions_(std::move(regions)), weights_(weights),
      vcpu_power_(vcpu_power) {
  if (regions_.empty()) throw ConfigError("region menu must be non-empty");
  for (const auto& r : regions_) {
    if (r.price_factor <= 0.0)
      throw ConfigError("region '" + r.name + "': price factor must be > 0");
    if (r.extra_latency.is_negative() || r.carbon_gco2_per_kwh < 0.0)
      throw ConfigError("region '" + r.name + "': malformed option");
  }
  NTCO_EXPECTS(weights.money >= 0.0);
  NTCO_EXPECTS(weights.latency >= 0.0);
  NTCO_EXPECTS(weights.carbon >= 0.0);
}

std::vector<RegionScore> RegionSelector::score_all(Money reference_cost,
                                                   Duration exec_time) const {
  NTCO_EXPECTS(!exec_time.is_negative());
  const double kwh = vcpu_power_.to_watts() * exec_time.to_seconds() / 3.6e6;
  std::vector<RegionScore> out;
  out.reserve(regions_.size());
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    const auto& r = regions_[i];
    RegionScore s;
    s.region_index = i;
    s.cost_per_invocation = reference_cost * r.price_factor;
    s.round_trip_overhead = r.extra_latency * 2.0;
    s.gco2_per_invocation = kwh * r.carbon_gco2_per_kwh;
    s.score = weights_.money * s.cost_per_invocation.to_usd() +
              weights_.latency * s.round_trip_overhead.to_seconds() +
              weights_.carbon * s.gco2_per_invocation;
    out.push_back(s);
  }
  return out;
}

RegionScore RegionSelector::choose(Money reference_cost,
                                   Duration exec_time) const {
  const auto scores = score_all(reference_cost, exec_time);
  return *std::min_element(scores.begin(), scores.end(),
                           [](const RegionScore& a, const RegionScore& b) {
                             return a.score < b.score;
                           });
}

}  // namespace ntco::alloc
