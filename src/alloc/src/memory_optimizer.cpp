#include "ntco/alloc/memory_optimizer.hpp"

#include "ntco/common/error.hpp"

namespace ntco::alloc {

std::vector<MemoryPoint> MemoryOptimizer::sweep(Cycles work, DataSize floor,
                                                double parallel_fraction,
                                                DataSize step) const {
  const auto& cfg = platform_.config();
  if (step.is_zero() ||
      step.count_bytes() % cfg.memory_quantum.count_bytes() != 0)
    throw ConfigError("sweep step must be a positive provider-quantum multiple");

  std::vector<MemoryPoint> out;
  const DataSize start = platform_.quantize_memory(floor);
  for (auto bytes = start.count_bytes(); bytes <= cfg.max_memory.count_bytes();
       bytes += step.count_bytes()) {
    const auto mem = DataSize::bytes(bytes);
    const Duration d = platform_.exec_time(mem, work, parallel_fraction);
    // Price at the reference (multiplier-free) tariff; scheduling into a
    // discount window is the scheduler's job, not the allocator's.
    const Money c = platform_.invocation_cost(mem, d, TimePoint::origin());
    out.push_back(MemoryPoint{mem, d, c});
  }
  NTCO_ENSURES(!out.empty());
  return out;
}

MemoryChoice MemoryOptimizer::choose(Cycles work, DataSize floor,
                                     double parallel_fraction,
                                     Duration deadline, DataSize step) const {
  const auto curve = sweep(work, floor, parallel_fraction, step);

  const MemoryPoint* best = nullptr;
  const MemoryPoint* fastest = &curve.front();
  for (const auto& p : curve) {
    if (p.duration < fastest->duration) fastest = &p;
    if (p.duration > deadline) continue;
    if (best == nullptr || p.cost < best->cost ||
        (p.cost == best->cost && p.duration < best->duration))
      best = &p;
  }
  if (best == nullptr) return MemoryChoice{*fastest, false};
  return MemoryChoice{*best, true};
}

}  // namespace ntco::alloc
