#include "ntco/alloc/warm_pool.hpp"

namespace ntco::alloc {

double erlang_b(std::size_t servers, double offered_load) {
  NTCO_EXPECTS(offered_load >= 0.0);
  if (offered_load == 0.0) return servers == 0 ? 1.0 : 0.0;
  double b = 1.0;  // B(0, a) = 1
  for (std::size_t n = 1; n <= servers; ++n) {
    const double k = static_cast<double>(n);
    b = offered_load * b / (k + offered_load * b);
  }
  return b;
}

WarmPoolPlan WarmPoolPlanner::plan(const Inputs& in) {
  NTCO_EXPECTS(in.arrivals_per_second >= 0.0);
  NTCO_EXPECTS(!in.service_time.is_negative());
  NTCO_EXPECTS(in.target_cold_rate > 0.0 && in.target_cold_rate <= 1.0);

  const double offered = in.arrivals_per_second * in.service_time.to_seconds();
  const double gb = static_cast<double>(in.memory.count_bytes()) / 1e9;

  if (offered == 0.0) {
    // No traffic: nothing to keep warm, nothing can go cold.
    return WarmPoolPlan{0, 0.0, Money::zero()};
  }

  std::size_t n = 0;
  double rate = erlang_b(0, offered);
  while (rate > in.target_cold_rate && n < in.max_instances) {
    ++n;
    rate = erlang_b(n, offered);
  }

  WarmPoolPlan plan;
  plan.instances = n;
  plan.predicted_cold_rate = rate;
  plan.standing_cost_per_hour = in.provisioned_price_per_gb_second *
                                (gb * static_cast<double>(n) * 3600.0);
  return plan;
}

}  // namespace ntco::alloc
