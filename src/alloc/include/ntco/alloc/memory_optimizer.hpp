#pragma once

#include <vector>

#include "ntco/common/units.hpp"
#include "ntco/serverless/platform.hpp"

/// \file memory_optimizer.hpp
/// Serverless memory-size allocation (the abstract's second contribution
/// and claimed originality).
///
/// A FaaS function's memory setting buys CPU share, so it controls both
/// duration and price: doubling memory halves duration (until the vCPU cap)
/// while the GB-second price doubles — making cost roughly flat on the
/// scaling region, dominated by the billing quantum at the small end and by
/// wasted share beyond the cap at the large end. The optimiser evaluates
/// every deployable configuration and returns the cost-minimal one subject
/// to an optional duration ceiling, plus the full curve for reporting
/// (Table T3).

namespace ntco::alloc {

/// One evaluated memory configuration.
struct MemoryPoint {
  DataSize memory;
  Duration duration;  ///< predicted execution time of the work
  Money cost;         ///< predicted per-invocation cost
};

/// Optimiser outcome.
struct MemoryChoice {
  MemoryPoint chosen;
  bool feasible = true;  ///< false if no configuration met the deadline
};

/// Enumerates deployable memory sizes for a given work demand and picks the
/// cheapest that satisfies the constraints.
class MemoryOptimizer {
 public:
  /// `platform` supplies the provider's timing and pricing math. The
  /// optimiser never mutates it.
  explicit MemoryOptimizer(const serverless::Platform& platform)
      : platform_(platform) {}

  /// Full duration/cost curve over deployable sizes (for reporting).
  /// `floor` is the function's working-set requirement: configurations
  /// below it are excluded. `parallel_fraction` is the function's Amdahl
  /// fraction (it shapes the whole curve above one vCPU). `step` controls
  /// sweep granularity (must be a multiple of the provider quantum).
  [[nodiscard]] std::vector<MemoryPoint> sweep(
      Cycles work, DataSize floor, double parallel_fraction = 1.0,
      DataSize step = DataSize::megabytes(128)) const;

  /// Cheapest configuration with duration <= `deadline` (Duration::max()
  /// for unconstrained). Ties broken toward the faster (larger-memory)
  /// configuration. If nothing meets the deadline, returns the fastest
  /// configuration with feasible == false.
  [[nodiscard]] MemoryChoice choose(
      Cycles work, DataSize floor, double parallel_fraction = 1.0,
      Duration deadline = Duration::max(),
      DataSize step = DataSize::megabytes(128)) const;

 private:
  const serverless::Platform& platform_;
};

}  // namespace ntco::alloc
