#pragma once

#include <string>
#include <vector>

#include "ntco/common/units.hpp"

/// \file region_selector.hpp
/// Choosing *which* cloud region hosts an offloaded function.
///
/// Serverless regions differ in tariff, network distance, and grid carbon
/// intensity. Latency-critical work must take the nearest region;
/// non-time-critical work is free to chase the cheapest or cleanest one —
/// another degree of freedom only delay tolerance unlocks (bench T6).

namespace ntco::alloc {

/// One candidate region.
struct RegionOption {
  std::string name;
  /// Execution price relative to the reference tariff (1.0 = reference).
  double price_factor = 1.0;
  /// Extra one-way latency versus the nearest region.
  Duration extra_latency;
  /// Grid carbon intensity, gCO2 per kWh (annual average).
  double carbon_gco2_per_kwh = 400.0;
};

/// A realistic four-region menu (relative tariffs and typical grid
/// intensities; nearest region is the reference).
[[nodiscard]] std::vector<RegionOption> default_regions();

/// Evaluation of one region for one function's expected usage.
struct RegionScore {
  std::size_t region_index = 0;
  Money cost_per_invocation;
  Duration round_trip_overhead;  ///< 2x extra latency (request + response)
  double gco2_per_invocation = 0.0;
  double score = 0.0;
};

/// Weighted single-winner region selection.
class RegionSelector {
 public:
  struct Weights {
    double money = 1.0;           ///< per USD
    double latency = 0.0;         ///< per second of added round trip
    double carbon = 0.0;          ///< per gram CO2
  };

  /// `reference_cost` is the per-invocation execution cost at the
  /// reference tariff; `exec_time` the expected execution duration;
  /// `vcpu_power` the server power attributed to the function while it
  /// runs (for the carbon estimate).
  RegionSelector(std::vector<RegionOption> regions, Weights weights,
                 Power vcpu_power = Power::watts(10.0));

  /// Scores every region for one function.
  [[nodiscard]] std::vector<RegionScore> score_all(Money reference_cost,
                                                   Duration exec_time) const;

  /// The minimum-score region.
  [[nodiscard]] RegionScore choose(Money reference_cost,
                                   Duration exec_time) const;

  [[nodiscard]] const std::vector<RegionOption>& regions() const {
    return regions_;
  }

 private:
  std::vector<RegionOption> regions_;
  Weights weights_;
  Power vcpu_power_;
};

}  // namespace ntco::alloc
