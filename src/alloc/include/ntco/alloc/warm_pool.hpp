#pragma once

#include <cstddef>

#include "ntco/common/units.hpp"

/// \file warm_pool.hpp
/// Provisioned-concurrency (warm pool) planning.
///
/// Cold starts are the serverless tax on tail latency. Keeping `n`
/// instances provisioned removes them for arrivals that find a provisioned
/// instance free — at a standing GB-second price. For Poisson arrivals of
/// rate `lambda` and service time `s`, the probability an arrival overflows
/// an n-instance pool is the Erlang-B blocking probability B(n, lambda*s).
/// The planner picks the smallest n with B(n, a) below a target cold rate.
///
/// The analytic model ignores the keep-alive reuse of on-demand instances,
/// so it is an upper bound on the real cold rate; bench A2 quantifies the
/// gap against simulation.

namespace ntco::alloc {

/// Erlang-B blocking probability for `servers` servers at `offered_load`
/// Erlangs. Computed with the stable recurrence.
[[nodiscard]] double erlang_b(std::size_t servers, double offered_load);

/// Warm-pool sizing decision.
struct WarmPoolPlan {
  std::size_t instances = 0;
  double predicted_cold_rate = 1.0;  ///< Erlang-B bound at `instances`
  Money standing_cost_per_hour;      ///< provisioned capacity price
};

/// Sizes a provisioned-concurrency pool.
class WarmPoolPlanner {
 public:
  struct Inputs {
    double arrivals_per_second = 1.0;       ///< Poisson rate
    Duration service_time = Duration::millis(200);
    double target_cold_rate = 0.01;         ///< acceptable overflow share
    DataSize memory = DataSize::megabytes(512);
    Money provisioned_price_per_gb_second = Money::nano_usd(4'167);
    std::size_t max_instances = 1000;
  };

  /// Smallest pool meeting the target; if even `max_instances` misses it,
  /// returns max_instances with its (too-high) predicted rate.
  [[nodiscard]] static WarmPoolPlan plan(const Inputs& in);
};

}  // namespace ntco::alloc
