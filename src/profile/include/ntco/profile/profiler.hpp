#pragma once

#include <deque>
#include <vector>

#include "ntco/app/task_graph.hpp"
#include "ntco/common/rng.hpp"
#include "ntco/stats/accumulator.hpp"
#include "ntco/stats/percentile.hpp"

/// \file profiler.hpp
/// Determining computational demands (the abstract's first contribution).
///
/// In a deployment, lightweight instrumentation measures per-component CPU
/// time and boundary payload sizes on every run. Here the instrumented runs
/// are produced by TraceGenerator (the truth graph plus measurement noise),
/// and DemandProfiler reduces them to demand estimates with confidence
/// information, which the partitioner consumes instead of the unknowable
/// truth. DriftDetector watches the stream for workload shifts that should
/// trigger re-partitioning through the CI/CD pipeline.

namespace ntco::profile {

/// One measured component execution.
struct ComponentObservation {
  app::ComponentId id;
  Cycles cycles;
};

/// One measured boundary transfer. `flow` indexes TaskGraph::flows().
struct FlowObservation {
  std::size_t flow;
  DataSize bytes;
};

/// One instrumented end-to-end run of the application.
struct ExecutionTrace {
  std::vector<ComponentObservation> components;
  std::vector<FlowObservation> flows;
};

/// Produces noisy instrumented runs of a ground-truth application.
///
/// Per run, every component demand and flow payload is scaled by an
/// independent log-normal factor with coefficient of variation `cv`
/// (run-to-run input variation) and a constant `bias` (systematic
/// instrumentation error). set_scale() shifts the underlying truth to model
/// workload drift.
class TraceGenerator {
 public:
  TraceGenerator(const app::TaskGraph& truth, double cv, Rng rng,
                 double bias = 1.0);

  [[nodiscard]] ExecutionTrace next();

  /// Scales the true demand of every component by `work_scale` from the next
  /// trace on (e.g. 1.5 = inputs grew 50%).
  void set_scale(double work_scale);

 private:
  const app::TaskGraph& truth_;
  double cv_;
  double bias_;
  double scale_ = 1.0;
  Rng rng_;
};

/// Demand estimate for one component.
struct ComponentEstimate {
  Cycles mean;
  Cycles p95;
  double cv = 0.0;      ///< observed coefficient of variation
  std::size_t samples = 0;
};

/// Payload estimate for one flow.
struct FlowEstimate {
  DataSize mean;
  DataSize p95;
  std::size_t samples = 0;
};

/// Aggregates execution traces into per-component / per-flow estimates.
class DemandProfiler {
 public:
  DemandProfiler(std::size_t component_count, std::size_t flow_count);

  void ingest(const ExecutionTrace& trace);

  [[nodiscard]] std::size_t trace_count() const { return traces_; }

  /// Pre: at least one observation for the component.
  [[nodiscard]] ComponentEstimate component(app::ComponentId id) const;
  [[nodiscard]] FlowEstimate flow(std::size_t idx) const;

  /// Copies `skeleton` (structure, pins, memory, image) with demands and
  /// payloads replaced by estimates: the mean, or the p95 when
  /// `conservative` (so under-provisioning is avoided at the cost of
  /// slightly pessimistic partitions). Pre: skeleton dimensions match and
  /// every component/flow has been observed.
  [[nodiscard]] app::TaskGraph estimated_graph(const app::TaskGraph& skeleton,
                                               bool conservative = false) const;

  /// Largest relative error of the mean demand estimates versus a known
  /// truth graph, over components and flows. Pre: dimensions match, all
  /// observed.
  [[nodiscard]] double max_relative_error(const app::TaskGraph& truth) const;

 private:
  std::vector<stats::Accumulator> comp_acc_;
  std::vector<stats::PercentileSample> comp_pct_;
  std::vector<stats::Accumulator> flow_acc_;
  std::vector<stats::PercentileSample> flow_pct_;
  std::size_t traces_ = 0;
};

/// Flags sustained shifts in total per-run demand.
///
/// The baseline is the mean of the first `window` runs; drift is declared
/// when the mean of the most recent `window` runs departs from the baseline
/// by more than `threshold` (relative). Once drifted, the detector stays
/// drifted until reset_baseline().
class DriftDetector {
 public:
  DriftDetector(double threshold, std::size_t window);

  /// Feeds the total demand of one run; returns true if drift is (now)
  /// detected.
  bool observe(Cycles run_total);

  [[nodiscard]] bool drifted() const { return drifted_; }
  /// Relative change of the recent window versus the baseline (0 until both
  /// windows are full).
  [[nodiscard]] double relative_change() const;

  /// Re-baselines on the most recent window (after a re-partition).
  void reset_baseline();

 private:
  double threshold_;
  std::size_t window_;
  double baseline_mean_ = 0.0;
  std::size_t baseline_n_ = 0;
  std::deque<double> recent_;
  bool drifted_ = false;
};

}  // namespace ntco::profile
