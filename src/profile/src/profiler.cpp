#include "ntco/profile/profiler.hpp"

#include <cmath>


namespace ntco::profile {

namespace {

/// Log-normal factor with mean 1 and the given coefficient of variation.
double noise_factor(double cv, Rng& rng) {
  if (cv <= 0.0) return 1.0;
  const double sigma2 = std::log(1.0 + cv * cv);
  return rng.lognormal(-sigma2 / 2.0, std::sqrt(sigma2));
}

}  // namespace

TraceGenerator::TraceGenerator(const app::TaskGraph& truth, double cv, Rng rng,
                               double bias)
    : truth_(truth), cv_(cv), bias_(bias), rng_(rng) {
  NTCO_EXPECTS(cv >= 0.0);
  NTCO_EXPECTS(bias > 0.0);
}

void TraceGenerator::set_scale(double work_scale) {
  NTCO_EXPECTS(work_scale > 0.0);
  scale_ = work_scale;
}

ExecutionTrace TraceGenerator::next() {
  ExecutionTrace t;
  t.components.reserve(truth_.component_count());
  for (app::ComponentId id = 0; id < truth_.component_count(); ++id) {
    const double factor = noise_factor(cv_, rng_) * bias_ * scale_;
    t.components.push_back(
        ComponentObservation{id, truth_.component(id).work * factor});
  }
  t.flows.reserve(truth_.flow_count());
  for (std::size_t fi = 0; fi < truth_.flow_count(); ++fi) {
    const double factor = noise_factor(cv_, rng_) * bias_ * scale_;
    t.flows.push_back(FlowObservation{fi, truth_.flow(fi).bytes * factor});
  }
  return t;
}

DemandProfiler::DemandProfiler(std::size_t component_count,
                               std::size_t flow_count)
    : comp_acc_(component_count),
      comp_pct_(component_count),
      flow_acc_(flow_count),
      flow_pct_(flow_count) {}

void DemandProfiler::ingest(const ExecutionTrace& trace) {
  for (const auto& o : trace.components) {
    NTCO_EXPECTS(o.id < comp_acc_.size());
    comp_acc_[o.id].add(static_cast<double>(o.cycles.value()));
    comp_pct_[o.id].add(static_cast<double>(o.cycles.value()));
  }
  for (const auto& o : trace.flows) {
    NTCO_EXPECTS(o.flow < flow_acc_.size());
    flow_acc_[o.flow].add(static_cast<double>(o.bytes.count_bytes()));
    flow_pct_[o.flow].add(static_cast<double>(o.bytes.count_bytes()));
  }
  ++traces_;
}

ComponentEstimate DemandProfiler::component(app::ComponentId id) const {
  NTCO_EXPECTS(id < comp_acc_.size());
  const auto& acc = comp_acc_[id];
  NTCO_EXPECTS(!acc.empty());
  ComponentEstimate e;
  e.mean = Cycles::count(static_cast<std::uint64_t>(acc.mean()));
  e.p95 = Cycles::count(static_cast<std::uint64_t>(comp_pct_[id].p95()));
  e.cv = acc.mean() > 0.0 ? acc.stddev() / acc.mean() : 0.0;
  e.samples = acc.count();
  return e;
}

FlowEstimate DemandProfiler::flow(std::size_t idx) const {
  NTCO_EXPECTS(idx < flow_acc_.size());
  const auto& acc = flow_acc_[idx];
  NTCO_EXPECTS(!acc.empty());
  FlowEstimate e;
  e.mean = DataSize::bytes(static_cast<std::uint64_t>(acc.mean()));
  e.p95 = DataSize::bytes(static_cast<std::uint64_t>(flow_pct_[idx].p95()));
  e.samples = acc.count();
  return e;
}

app::TaskGraph DemandProfiler::estimated_graph(const app::TaskGraph& skeleton,
                                               bool conservative) const {
  NTCO_EXPECTS(skeleton.component_count() == comp_acc_.size());
  NTCO_EXPECTS(skeleton.flow_count() == flow_acc_.size());
  app::TaskGraph g(skeleton.name() + "-estimated");
  for (app::ComponentId id = 0; id < skeleton.component_count(); ++id) {
    app::Component c = skeleton.component(id);
    const auto est = component(id);
    c.work = conservative ? est.p95 : est.mean;
    (void)g.add_component(std::move(c));
  }
  for (std::size_t fi = 0; fi < skeleton.flow_count(); ++fi) {
    const auto& f = skeleton.flow(fi);
    const auto est = flow(fi);
    g.add_flow(f.from, f.to, conservative ? est.p95 : est.mean);
  }
  return g;
}

double DemandProfiler::max_relative_error(const app::TaskGraph& truth) const {
  NTCO_EXPECTS(truth.component_count() == comp_acc_.size());
  NTCO_EXPECTS(truth.flow_count() == flow_acc_.size());
  double worst = 0.0;
  for (app::ComponentId id = 0; id < truth.component_count(); ++id) {
    const double t = static_cast<double>(truth.component(id).work.value());
    NTCO_EXPECTS(t > 0.0);
    const double e = static_cast<double>(component(id).mean.value());
    worst = std::max(worst, std::abs(e - t) / t);
  }
  for (std::size_t fi = 0; fi < truth.flow_count(); ++fi) {
    const double t = static_cast<double>(truth.flow(fi).bytes.count_bytes());
    NTCO_EXPECTS(t > 0.0);
    const double e = static_cast<double>(flow(fi).mean.count_bytes());
    worst = std::max(worst, std::abs(e - t) / t);
  }
  return worst;
}

DriftDetector::DriftDetector(double threshold, std::size_t window)
    : threshold_(threshold), window_(window) {
  NTCO_EXPECTS(threshold > 0.0);
  NTCO_EXPECTS(window >= 1);
}

bool DriftDetector::observe(Cycles run_total) {
  const double x = static_cast<double>(run_total.value());
  if (baseline_n_ < window_) {
    baseline_mean_ += (x - baseline_mean_) / static_cast<double>(++baseline_n_);
    return drifted_;
  }
  recent_.push_back(x);
  if (recent_.size() > window_) recent_.pop_front();
  if (recent_.size() == window_ && std::abs(relative_change()) > threshold_)
    drifted_ = true;
  return drifted_;
}

double DriftDetector::relative_change() const {
  if (baseline_n_ < window_ || recent_.size() < window_ ||
      baseline_mean_ <= 0.0)
    return 0.0;
  double recent_mean = 0.0;
  for (const double x : recent_) recent_mean += x;
  recent_mean /= static_cast<double>(recent_.size());
  return recent_mean / baseline_mean_ - 1.0;
}

void DriftDetector::reset_baseline() {
  if (!recent_.empty()) {
    double m = 0.0;
    for (const double x : recent_) m += x;
    baseline_mean_ = m / static_cast<double>(recent_.size());
    baseline_n_ = window_;
  } else {
    baseline_mean_ = 0.0;
    baseline_n_ = 0;
  }
  recent_.clear();
  drifted_ = false;
}

}  // namespace ntco::profile
