#include "ntco/device/device.hpp"

namespace ntco::device {

DeviceSpec budget_phone() {
  return {"budget-phone",
          Frequency::gigahertz(1.4),
          Power::watts(1.8),
          Power::watts(0.35),
          Power::watts(1.2),
          Power::watts(0.9),
          Energy::joules(32'000)};  // ~2300 mAh @ 3.85 V
}

DeviceSpec flagship_phone() {
  return {"flagship-phone",
          Frequency::gigahertz(2.8),
          Power::watts(3.5),
          Power::watts(0.45),
          Power::watts(1.4),
          Power::watts(1.0),
          Energy::joules(69'000)};  // ~5000 mAh @ 3.85 V
}

DeviceSpec iot_node() {
  return {"iot-node",
          Frequency::megahertz(400),
          Power::watts(0.5),
          Power::watts(0.05),
          Power::watts(0.7),
          Power::watts(0.5),
          Energy::joules(9'000)};  // small LiPo cell
}

DeviceSpec laptop() {
  return {"laptop",
          Frequency::gigahertz(3.2),
          Power::watts(15.0),
          Power::watts(4.0),
          Power::watts(2.5),
          Power::watts(2.0),
          Energy::joules(180'000)};  // ~50 Wh pack
}

}  // namespace ntco::device
