#include "ntco/device/dvfs.hpp"

#include "ntco/common/error.hpp"

namespace ntco::device {

DvfsTable DvfsTable::validated(std::vector<FrequencyLevel> levels) {
  if (levels.empty()) throw ConfigError("DVFS table must be non-empty");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (levels[i].freq.is_zero())
      throw ConfigError("DVFS level frequency must be positive");
    if (i > 0) {
      if (levels[i].freq <= levels[i - 1].freq ||
          levels[i].active_power <= levels[i - 1].active_power)
        throw ConfigError(
            "DVFS levels must strictly increase in frequency and power");
    }
  }
  return DvfsTable{std::move(levels)};
}

DvfsTable budget_phone_dvfs() {
  // Roughly cubic power growth across the ladder; the 1.4 GHz point
  // matches budget_phone()'s nominal spec.
  return DvfsTable::validated({
      {Frequency::megahertz(600), Power::watts(0.55)},
      {Frequency::megahertz(900), Power::watts(0.95)},
      {Frequency::megahertz(1400), Power::watts(1.8)},
      {Frequency::megahertz(2000), Power::watts(3.6)},
  });
}

DvfsChoice DvfsGovernor::evaluate(const FrequencyLevel& level, Cycles work,
                                  Duration window) const {
  NTCO_EXPECTS(!window.is_negative());
  DvfsChoice c;
  c.level = level;
  c.exec_time = work / level.freq;
  c.feasible = c.exec_time <= window;
  const Duration idle_tail =
      c.feasible ? window - c.exec_time : Duration::zero();
  c.energy = level.active_power * c.exec_time + base_.idle * idle_tail;
  return c;
}

DvfsChoice DvfsGovernor::energy_optimal(Cycles work, Duration window) const {
  DvfsChoice best;
  bool have = false;
  DvfsChoice fastest = evaluate(table_.levels.back(), work, window);
  for (const auto& level : table_.levels) {
    const DvfsChoice c = evaluate(level, work, window);
    if (!c.feasible) continue;
    if (!have || c.energy < best.energy) {
      best = c;
      have = true;
    }
  }
  if (!have) {
    fastest.feasible = false;
    return fastest;
  }
  return best;
}

DeviceSpec DvfsGovernor::spec_at(const FrequencyLevel& level) const {
  DeviceSpec spec = base_;
  spec.cpu = level.freq;
  spec.cpu_active = level.active_power;
  return spec;
}

}  // namespace ntco::device
