#pragma once

#include <vector>

#include "ntco/common/contracts.hpp"
#include "ntco/device/device.hpp"

/// \file dvfs.hpp
/// Dynamic voltage/frequency scaling on the UE.
///
/// Offloading papers are routinely criticised for comparing against a
/// max-frequency local baseline; a DVFS-tuned device is the honest
/// comparator (bench A4). Power grows superlinearly with frequency, so for
/// a job with a deadline there is an energy-optimal operating point:
/// E(f) = P_active(f) * t(f) + P_idle * (deadline - t(f)), minimised over
/// the feasible levels (race-to-idle accounting over the deadline window).

namespace ntco::device {

/// One DVFS operating point.
struct FrequencyLevel {
  Frequency freq;
  Power active_power;
};

/// The selectable operating points of a UE, ordered by frequency.
struct DvfsTable {
  std::vector<FrequencyLevel> levels;

  /// Validated table: non-empty, strictly increasing frequency and power.
  static DvfsTable validated(std::vector<FrequencyLevel> levels);
};

/// Typical big-core DVFS ladder for the budget phone (1.4 GHz nominal).
[[nodiscard]] DvfsTable budget_phone_dvfs();

/// Outcome of a governor decision.
struct DvfsChoice {
  FrequencyLevel level;
  Duration exec_time;
  Energy energy;  ///< active + idle-to-deadline energy over the window
  bool feasible = true;
};

/// Deadline-aware energy-optimal level selection.
class DvfsGovernor {
 public:
  DvfsGovernor(DeviceSpec base, DvfsTable table)
      : base_(std::move(base)), table_(std::move(table)) {
    NTCO_EXPECTS(!table_.levels.empty());
  }

  /// Energy of running `work` at `level`, idling out the rest of the
  /// `window` (race-to-idle). Pre: the work fits in the window or the
  /// caller tolerates energy of the overlong execution without idle tail.
  [[nodiscard]] DvfsChoice evaluate(const FrequencyLevel& level, Cycles work,
                                    Duration window) const;

  /// Minimum-energy level whose execution meets the `window`. If none
  /// fits, returns the fastest level with feasible == false.
  [[nodiscard]] DvfsChoice energy_optimal(Cycles work,
                                          Duration window) const;

  /// The base device spec re-parameterised to a level (for building
  /// partitioning environments with a DVFS-tuned local side).
  [[nodiscard]] DeviceSpec spec_at(const FrequencyLevel& level) const;

  [[nodiscard]] const DvfsTable& table() const { return table_; }

 private:
  DeviceSpec base_;
  DvfsTable table_;
};

}  // namespace ntco::device
