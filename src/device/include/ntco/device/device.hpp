#pragma once

#include <string>

#include "ntco/common/contracts.hpp"
#include "ntco/common/units.hpp"

/// \file device.hpp
/// User Equipment (UE) model: compute capability and the MAUI-style energy
/// model the partitioners optimise against.
///
///   E = P_cpu · t_compute + P_tx · t_tx + P_rx · t_rx + P_idle · t_wait
///
/// Offloading saves energy exactly when the compute energy avoided exceeds
/// the radio energy spent shipping state plus the idle energy burnt waiting
/// for the result.

namespace ntco::device {

/// Static description of a UE.
struct DeviceSpec {
  std::string name;
  Frequency cpu;      ///< effective single-thread clock available to the app
  Power cpu_active;   ///< draw while computing
  Power idle;         ///< draw while waiting (screen-on idle)
  Power radio_tx;     ///< draw while transmitting
  Power radio_rx;     ///< draw while receiving
  Energy battery;     ///< usable battery capacity
};

/// A UE with battery accounting. Time/energy queries are pure; `drain`
/// mutates the remaining charge.
class Device {
 public:
  explicit Device(DeviceSpec spec) : spec_(std::move(spec)) {
    NTCO_EXPECTS(!spec_.cpu.is_zero());
    NTCO_EXPECTS(spec_.battery > Energy::zero());
    remaining_ = spec_.battery;
  }

  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }

  /// Local execution time for `work`.
  [[nodiscard]] Duration exec_time(Cycles work) const {
    return work / spec_.cpu;
  }

  /// Energy to execute `work` locally.
  [[nodiscard]] Energy exec_energy(Cycles work) const {
    return spec_.cpu_active * exec_time(work);
  }

  [[nodiscard]] Energy tx_energy(Duration t) const {
    NTCO_EXPECTS(!t.is_negative());
    return spec_.radio_tx * t;
  }
  [[nodiscard]] Energy rx_energy(Duration t) const {
    NTCO_EXPECTS(!t.is_negative());
    return spec_.radio_rx * t;
  }
  [[nodiscard]] Energy idle_energy(Duration t) const {
    NTCO_EXPECTS(!t.is_negative());
    return spec_.idle * t;
  }

  /// Remaining battery charge.
  [[nodiscard]] Energy battery_remaining() const { return remaining_; }

  /// Fraction of battery left, in [0, 1].
  [[nodiscard]] double battery_fraction() const {
    return remaining_.to_joules() / spec_.battery.to_joules();
  }

  /// Consumes charge; clamps at empty. Returns false if the battery was
  /// exhausted by this drain.
  bool drain(Energy e) {
    NTCO_EXPECTS(e >= Energy::zero());
    if (e >= remaining_) {
      remaining_ = Energy::zero();
      return false;
    }
    remaining_ = remaining_ - e;
    return true;
  }

  void recharge() { remaining_ = spec_.battery; }

 private:
  DeviceSpec spec_;
  Energy remaining_;
};

/// Presets bracketing the UE space offloading papers consider. Battery
/// capacities are typical pack energies (e.g. 3000 mAh @ 3.85 V ≈ 41.6 kJ).
[[nodiscard]] DeviceSpec budget_phone();
[[nodiscard]] DeviceSpec flagship_phone();
[[nodiscard]] DeviceSpec iot_node();
[[nodiscard]] DeviceSpec laptop();

}  // namespace ntco::device
