#include "ntco/partition/multi_target.hpp"

#include <algorithm>
#include <limits>

#include "ntco/common/error.hpp"
#include "ntco/partition/max_flow.hpp"

namespace ntco::partition {

const char* to_string(Site s) {
  switch (s) {
    case Site::Device: return "device";
    case Site::Edge: return "edge";
    case Site::Cloud: return "cloud";
  }
  return "?";
}

std::string MultiPartition::to_string() const {
  std::string out;
  out.reserve(site.size());
  for (const auto s : site) {
    switch (s) {
      case Site::Device: out.push_back('D'); break;
      case Site::Edge: out.push_back('E'); break;
      case Site::Cloud: out.push_back('C'); break;
    }
  }
  return out;
}

bool MultiPartition::respects_pins(const app::TaskGraph& g) const {
  if (site.size() != g.component_count()) return false;
  for (app::ComponentId id = 0; id < g.component_count(); ++id)
    if (g.component(id).pinned_local && site[id] != Site::Device) return false;
  return true;
}

MultiEnvironment default_multi_environment() {
  MultiEnvironment env;
  env.device = device::budget_phone();

  env.edge.speed = Frequency::gigahertz(3.0);
  env.edge.overhead = Duration::millis(2);
  // Amortised infra price per busy-second of a $0.12/server-hour site at
  // the ~5% utilisation a single-tenant edge box sees from sporadic
  // non-time-critical jobs (F5 measures how this collapses under load).
  env.edge.price_per_second = Money::from_usd(0.12 / 3600.0 / 0.05);
  env.edge.price_per_invocation = Money::zero();
  env.edge.uplink = DataRate::megabits_per_second(100);
  env.edge.downlink = DataRate::megabits_per_second(100);
  env.edge.uplink_latency = Duration::millis(1);
  env.edge.downlink_latency = Duration::millis(1);
  env.edge.egress_price_per_gb = Money::zero();

  env.cloud.speed = Frequency::gigahertz(2.5);
  env.cloud.overhead = Duration::millis(5);
  env.cloud.price_per_second = Money::nano_usd(29'000);
  env.cloud.price_per_invocation = Money::nano_usd(200);
  env.cloud.uplink = DataRate::megabits_per_second(10);
  env.cloud.downlink = DataRate::megabits_per_second(30);
  env.cloud.uplink_latency = Duration::millis(25);
  env.cloud.downlink_latency = Duration::millis(25);
  env.cloud.egress_price_per_gb = Money::from_usd(0.09);
  return env;
}

MultiCostModel::MultiCostModel(const app::TaskGraph& graph,
                               MultiEnvironment env, double latency_weight,
                               double energy_weight, double money_weight)
    : graph_(graph),
      env_(std::move(env)),
      w_lat_(latency_weight),
      w_energy_(energy_weight),
      w_money_(money_weight) {
  NTCO_EXPECTS(latency_weight >= 0.0);
  NTCO_EXPECTS(energy_weight >= 0.0);
  NTCO_EXPECTS(money_weight >= 0.0);
  NTCO_EXPECTS(!env_.device.cpu.is_zero());
  NTCO_EXPECTS(!env_.edge.speed.is_zero());
  NTCO_EXPECTS(!env_.cloud.speed.is_zero());
}

double MultiCostModel::site_cost(app::ComponentId id, Site s) const {
  const auto& comp = graph_.component(id);
  if (s == Site::Device) {
    const Duration t = comp.work / env_.device.cpu;
    return w_lat_ * t.to_seconds() +
           w_energy_ * (env_.device.cpu_active * t).to_joules();
  }
  const SiteParams& p = s == Site::Edge ? env_.edge : env_.cloud;
  const Duration exec = comp.work / p.speed;
  const Duration t = exec + p.overhead;
  const Money m = p.price_per_second * exec.to_seconds() +
                  p.price_per_invocation;
  return w_lat_ * t.to_seconds() +
         w_energy_ * (env_.device.idle * t).to_joules() +
         w_money_ * m.to_usd();
}

double MultiCostModel::transfer_cost(std::size_t idx, Site from,
                                     Site to) const {
  if (from == to) return 0.0;
  const auto& f = graph_.flow(idx);
  const double gb = static_cast<double>(f.bytes.count_bytes()) / 1e9;

  // Device <-> remote site: the UE radio pays time and energy.
  if (from == Site::Device) {
    const SiteParams& p = to == Site::Edge ? env_.edge : env_.cloud;
    const Duration t = p.uplink_latency + f.bytes / p.uplink;
    return w_lat_ * t.to_seconds() +
           w_energy_ * (env_.device.radio_tx * t).to_joules();
  }
  if (to == Site::Device) {
    const SiteParams& p = from == Site::Edge ? env_.edge : env_.cloud;
    const Duration t = p.downlink_latency + f.bytes / p.downlink;
    return w_lat_ * t.to_seconds() +
           w_energy_ * (env_.device.radio_rx * t).to_joules() +
           w_money_ * (p.egress_price_per_gb * gb).to_usd();
  }
  // Edge <-> cloud backhaul: latency only for the UE's clock; cloud egress
  // applies when data leaves the cloud toward the edge.
  const Duration t = env_.backhaul_latency + f.bytes / env_.backhaul_rate;
  const Money egress = from == Site::Cloud
                           ? env_.cloud.egress_price_per_gb * gb
                           : Money::zero();
  return w_lat_ * t.to_seconds() + w_money_ * egress.to_usd();
}

double MultiCostModel::evaluate(const MultiPartition& p) const {
  NTCO_EXPECTS(p.site.size() == graph_.component_count());
  NTCO_EXPECTS(p.respects_pins(graph_));
  double total = 0.0;
  for (app::ComponentId id = 0; id < graph_.component_count(); ++id)
    total += site_cost(id, p.site[id]);
  for (std::size_t fi = 0; fi < graph_.flow_count(); ++fi) {
    const auto& f = graph_.flow(fi);
    total += transfer_cost(fi, p.site[f.from], p.site[f.to]);
  }
  return total;
}

namespace {

std::vector<app::ComponentId> free_components(const app::TaskGraph& g) {
  std::vector<app::ComponentId> out;
  for (app::ComponentId id = 0; id < g.component_count(); ++id)
    if (!g.component(id).pinned_local) out.push_back(id);
  return out;
}

}  // namespace

MultiPartition MultiExhaustivePartitioner::plan(
    const MultiCostModel& m) const {
  const auto& g = m.graph();
  const auto free = free_components(g);
  if (free.size() > max_free_)
    throw ConfigError("exhaustive-3 limited to " + std::to_string(max_free_) +
                      " free components, got " + std::to_string(free.size()));

  MultiPartition best = MultiPartition::all_device(g.component_count());
  double best_value = m.evaluate(best);
  MultiPartition candidate = best;

  std::uint64_t combos = 1;
  for (std::size_t i = 0; i < free.size(); ++i) combos *= 3;
  for (std::uint64_t code = 1; code < combos; ++code) {
    std::uint64_t c = code;
    for (std::size_t i = 0; i < free.size(); ++i) {
      candidate.site[free[i]] = static_cast<Site>(c % 3);
      c /= 3;
    }
    const double value = m.evaluate(candidate);
    if (value < best_value) {
      best_value = value;
      best = candidate;
    }
  }
  return best;
}

MultiPartition MultiGreedyPartitioner::plan(const MultiCostModel& m) const {
  const auto& g = m.graph();
  const auto free = free_components(g);
  MultiPartition p = MultiPartition::all_device(g.component_count());
  double current = m.evaluate(p);

  for (;;) {
    double best = current;
    app::ComponentId best_id = 0;
    Site best_site = Site::Device;
    bool found = false;
    for (const auto id : free) {
      for (const auto s : kAllSites) {
        if (p.site[id] == s) continue;
        MultiPartition candidate = p;
        candidate.site[id] = s;
        const double value = m.evaluate(candidate);
        if (value < best - 1e-12) {
          best = value;
          best_id = id;
          best_site = s;
          found = true;
        }
      }
    }
    if (!found) break;
    p.site[best_id] = best_site;
    current = best;
  }
  return p;
}

MultiPartition AlphaExpansionPartitioner::plan(const MultiCostModel& m) const {
  const auto& g = m.graph();
  const std::size_t n = g.component_count();
  MultiPartition labels = MultiPartition::all_device(n);
  double current = m.evaluate(labels);

  // One alpha-expansion: every component simultaneously decides whether to
  // switch to `alpha`, via a binary min cut (BVZ construction). Node in the
  // source side S takes alpha; node in T keeps its current label.
  const auto expand = [&](Site alpha) -> bool {
    const std::size_t source = n, sink = n + 1;
    constexpr double kInf = std::numeric_limits<double>::infinity();
    MaxFlow flow(n + 2);

    // Accumulated t-link capacities per node (built up by unary terms from
    // both the data costs and the pairwise decomposition).
    std::vector<double> cap_keep(n, 0.0);  // arc s->v, paid when v keeps
    std::vector<double> cap_alpha(n, 0.0); // arc v->t, paid when v takes α

    for (app::ComponentId v = 0; v < n; ++v) {
      if (g.component(v).pinned_local && alpha != Site::Device) {
        // Forbid taking alpha: v must stay on the sink ("keep") side, so
        // the v->t arc (cut exactly when v would take alpha) is infinite.
        cap_alpha[v] = kInf;
        continue;
      }
      cap_keep[v] += m.site_cost(v, labels.site[v]);
      cap_alpha[v] += m.site_cost(v, alpha);
    }

    // Unary helper: add `w` paid when x=1 (take alpha); negative weights
    // flip to the other link (constant offsets do not change the argmin).
    const auto add_when_alpha = [&](app::ComponentId v, double w) {
      if (w >= 0.0)
        cap_alpha[v] += w;
      else
        cap_keep[v] += -w;
    };

    for (std::size_t fi = 0; fi < g.flow_count(); ++fi) {
      const auto& f = g.flow(fi);
      const Site fp = labels.site[f.from], fq = labels.site[f.to];
      const double b00 = m.transfer_cost(fi, fp, fq);    // both keep
      const double b01 = m.transfer_cost(fi, fp, alpha); // q takes alpha
      const double b10 = m.transfer_cost(fi, alpha, fq); // p takes alpha
      // b11 = V(alpha, alpha) = 0.
      // Decomposition: B = b00 + xp(b10-b00) + xq(0-b10) + x̄p xq M,
      // with M = b01 + b10 - b00 (truncated at 0 if the triangle
      // inequality fails, keeping the move non-worsening).
      add_when_alpha(f.from, b10 - b00);
      add_when_alpha(f.to, -b10);
      const double coupling = std::max(0.0, b01 + b10 - b00);
      if (coupling > 0.0)
        // Paid when p keeps (p in T) and q takes alpha (q in S): the arc
        // q->p is cut exactly then.
        flow.add_arc(f.to, f.from, coupling);
    }

    for (app::ComponentId v = 0; v < n; ++v) {
      if (cap_keep[v] > 0.0) flow.add_arc(source, v, cap_keep[v]);
      if (cap_alpha[v] > 0.0) flow.add_arc(v, sink, cap_alpha[v]);
    }

    (void)flow.solve(source, sink);
    const auto alpha_side = flow.min_cut_source_side(source);

    MultiPartition moved = labels;
    for (app::ComponentId v = 0; v < n; ++v)
      if (alpha_side[v]) moved.site[v] = alpha;
    if (!moved.respects_pins(g)) return false;  // defensive; cannot happen
    const double value = m.evaluate(moved);
    if (value < current - 1e-12) {
      labels = std::move(moved);
      current = value;
      return true;
    }
    return false;
  };

  for (std::size_t sweep = 0; sweep < max_sweeps_; ++sweep) {
    bool improved = false;
    for (const auto alpha : kAllSites) improved |= expand(alpha);
    if (!improved) break;
  }
  NTCO_ENSURES(labels.respects_pins(g));
  return labels;
}

}  // namespace ntco::partition
