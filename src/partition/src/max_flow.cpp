#include "ntco/partition/max_flow.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

namespace ntco::partition {

bool MaxFlow::bfs(std::size_t source, std::size_t sink) {
  level_.assign(adj_.size(), -1);
  std::deque<std::size_t> queue{source};
  level_[source] = 0;
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop_front();
    for (const std::size_t ei : adj_[v]) {
      const Edge& e = edges_[ei];
      if (e.cap > kEps && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        queue.push_back(e.to);
      }
    }
  }
  return level_[sink] >= 0;
}

double MaxFlow::dfs(std::size_t v, std::size_t sink, double pushed) {
  if (v == sink) return pushed;
  for (std::size_t& i = iter_[v]; i < adj_[v].size(); ++i) {
    const std::size_t ei = adj_[v][i];
    Edge& e = edges_[ei];
    if (e.cap > kEps && level_[e.to] == level_[v] + 1) {
      const double got = dfs(e.to, sink, std::min(pushed, e.cap));
      if (got > kEps) {
        e.cap -= got;
        edges_[ei ^ 1].cap += got;  // paired reverse arc
        return got;
      }
    }
  }
  return 0.0;
}

double MaxFlow::solve(std::size_t source, std::size_t sink) {
  NTCO_EXPECTS(source < adj_.size());
  NTCO_EXPECTS(sink < adj_.size());
  NTCO_EXPECTS(source != sink);
  double flow = 0.0;
  const double inf = std::numeric_limits<double>::infinity();
  while (bfs(source, sink)) {
    iter_.assign(adj_.size(), 0);
    for (;;) {
      const double pushed = dfs(source, sink, inf);
      if (pushed <= kEps) break;
      if (std::isinf(pushed)) return inf;  // unbounded s-t path
      flow += pushed;
    }
  }
  return flow;
}

std::vector<bool> MaxFlow::min_cut_source_side(std::size_t source) const {
  NTCO_EXPECTS(source < adj_.size());
  std::vector<bool> side(adj_.size(), false);
  std::deque<std::size_t> queue{source};
  side[source] = true;
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop_front();
    for (const std::size_t ei : adj_[v]) {
      const Edge& e = edges_[ei];
      if (e.cap > kEps && !side[e.to]) {
        side[e.to] = true;
        queue.push_back(e.to);
      }
    }
  }
  return side;
}

}  // namespace ntco::partition
