#include "ntco/partition/cost_model.hpp"

namespace ntco::partition {

bool Partition::respects_pins(const app::TaskGraph& g) const {
  if (placement.size() != g.component_count()) return false;
  for (app::ComponentId id = 0; id < g.component_count(); ++id)
    if (g.component(id).pinned_local && is_remote(id)) return false;
  return true;
}

CostModel::CostModel(const app::TaskGraph& graph, Environment env,
                     Objective objective)
    : graph_(graph), env_(std::move(env)), objective_(objective) {
  NTCO_EXPECTS(!env_.device.cpu.is_zero());
  NTCO_EXPECTS(!env_.remote_speed.is_zero());
  NTCO_EXPECTS(!env_.uplink.is_zero());
  NTCO_EXPECTS(!env_.downlink.is_zero());
  NTCO_EXPECTS(objective.latency_weight >= 0.0);
  NTCO_EXPECTS(objective.energy_weight >= 0.0);
  NTCO_EXPECTS(objective.money_weight >= 0.0);
}

double CostModel::scalarize(const SideCosts& c) const {
  return objective_.latency_weight * c.latency.to_seconds() +
         objective_.energy_weight * c.energy.to_joules() +
         objective_.money_weight * c.money.to_usd();
}

CostModel::SideCosts CostModel::local_side(app::ComponentId id) const {
  const auto& comp = graph_.component(id);
  const Duration t = comp.work / env_.device.cpu;
  return SideCosts{t, env_.device.cpu_active * t, Money::zero()};
}

CostModel::SideCosts CostModel::remote_side(app::ComponentId id) const {
  const auto& comp = graph_.component(id);
  const Duration exec = comp.work / env_.remote_speed;
  const Duration t = exec + env_.remote_overhead;
  // The UE idles while the cloud computes.
  const Energy e = env_.device.idle * t;
  const Money m = env_.remote_price_per_second * exec.to_seconds() +
                  env_.price_per_invocation;
  return SideCosts{t, e, m};
}

CostModel::SideCosts CostModel::upload_side(std::size_t idx) const {
  const auto& flow = graph_.flow(idx);
  const Duration t = env_.uplink_latency + flow.bytes / env_.uplink;
  return SideCosts{t, env_.device.radio_tx * t, Money::zero()};
}

CostModel::SideCosts CostModel::download_side(std::size_t idx) const {
  const auto& flow = graph_.flow(idx);
  const Duration t = env_.downlink_latency + flow.bytes / env_.downlink;
  const Money egress =
      env_.egress_price_per_gb *
      (static_cast<double>(flow.bytes.count_bytes()) / 1e9);
  return SideCosts{t, env_.device.radio_rx * t, egress};
}

double CostModel::local_cost(app::ComponentId id) const {
  return scalarize(local_side(id));
}
double CostModel::remote_cost(app::ComponentId id) const {
  return scalarize(remote_side(id));
}
double CostModel::upload_cost(std::size_t idx) const {
  return scalarize(upload_side(idx));
}
double CostModel::download_cost(std::size_t idx) const {
  return scalarize(download_side(idx));
}

double CostModel::evaluate(const Partition& p) const {
  return breakdown(p).objective;
}

CostBreakdown CostModel::breakdown(const Partition& p) const {
  NTCO_EXPECTS(p.placement.size() == graph_.component_count());
  NTCO_EXPECTS(p.respects_pins(graph_));
  SideCosts total;
  auto accumulate = [&total](const SideCosts& c) {
    total.latency += c.latency;
    total.energy += c.energy;
    total.money += c.money;
  };
  for (app::ComponentId id = 0; id < graph_.component_count(); ++id)
    accumulate(p.is_remote(id) ? remote_side(id) : local_side(id));
  for (std::size_t fi = 0; fi < graph_.flow_count(); ++fi) {
    const auto& f = graph_.flow(fi);
    const bool from_remote = p.is_remote(f.from);
    const bool to_remote = p.is_remote(f.to);
    if (!from_remote && to_remote)
      accumulate(upload_side(fi));
    else if (from_remote && !to_remote)
      accumulate(download_side(fi));
  }
  return CostBreakdown{total.latency, total.energy, total.money,
                       scalarize(total)};
}

}  // namespace ntco::partition
