#include "ntco/partition/partitioners.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ntco/app/task_graph.hpp"
#include "ntco/common/error.hpp"
#include "ntco/partition/max_flow.hpp"

namespace ntco::partition {

namespace {

/// Ids of components that may be offloaded.
std::vector<app::ComponentId> free_components(const app::TaskGraph& g) {
  std::vector<app::ComponentId> out;
  for (app::ComponentId id = 0; id < g.component_count(); ++id)
    if (!g.component(id).pinned_local) out.push_back(id);
  return out;
}

}  // namespace

Partition LocalOnlyPartitioner::plan(const CostModel& model) const {
  return Partition::all_local(model.graph().component_count());
}

Partition RemoteAllPartitioner::plan(const CostModel& model) const {
  const auto& g = model.graph();
  Partition p = Partition::all_local(g.component_count());
  for (const auto id : free_components(g))
    p.placement[id] = Placement::Remote;
  return p;
}

RandomPartitioner::RandomPartitioner(double p_remote, Rng rng)
    : p_remote_(p_remote), rng_(rng) {
  NTCO_EXPECTS(p_remote >= 0.0 && p_remote <= 1.0);
}

Partition RandomPartitioner::plan(const CostModel& model) const {
  const auto& g = model.graph();
  Partition p = Partition::all_local(g.component_count());
  for (const auto id : free_components(g))
    if (rng_.bernoulli(p_remote_)) p.placement[id] = Placement::Remote;
  return p;
}

Partition GreedyPartitioner::plan(const CostModel& model) const {
  const auto& g = model.graph();
  const auto free = free_components(g);
  Partition p = Partition::all_local(g.component_count());
  double current = model.evaluate(p);

  for (;;) {
    double best = current;
    app::ComponentId best_id = 0;
    bool found = false;
    for (const auto id : free) {
      Partition candidate = p;
      candidate.placement[id] = p.is_remote(id) ? Placement::Local
                                                : Placement::Remote;
      const double value = model.evaluate(candidate);
      if (value < best - 1e-12) {
        best = value;
        best_id = id;
        found = true;
      }
    }
    if (!found) break;
    p.placement[best_id] =
        p.is_remote(best_id) ? Placement::Local : Placement::Remote;
    current = best;
  }
  return p;
}

AnnealingPartitioner::AnnealingPartitioner(Params params, Rng rng)
    : params_(params), rng_(rng) {
  NTCO_EXPECTS(params.iterations > 0);
  NTCO_EXPECTS(params.initial_temperature > 0.0);
  NTCO_EXPECTS(params.cooling > 0.0 && params.cooling < 1.0);
}

Partition AnnealingPartitioner::plan(const CostModel& model) const {
  const auto& g = model.graph();
  const auto free = free_components(g);
  Partition current = Partition::all_local(g.component_count());
  if (free.empty()) return current;

  double current_value = model.evaluate(current);
  Partition best = current;
  double best_value = current_value;
  // Temperature is relative to the all-local objective so the schedule is
  // scale-free across workloads.
  double temperature =
      params_.initial_temperature * std::max(current_value, 1e-9);

  for (std::size_t it = 0; it < params_.iterations; ++it) {
    const auto id = free[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(free.size()) - 1))];
    Partition candidate = current;
    candidate.placement[id] =
        current.is_remote(id) ? Placement::Local : Placement::Remote;
    const double value = model.evaluate(candidate);
    const double delta = value - current_value;
    if (delta <= 0.0 ||
        rng_.bernoulli(std::exp(-delta / std::max(temperature, 1e-12)))) {
      current = std::move(candidate);
      current_value = value;
      if (current_value < best_value) {
        best = current;
        best_value = current_value;
      }
    }
    temperature *= params_.cooling;
  }
  return best;
}

Partition ExhaustivePartitioner::plan(const CostModel& model) const {
  const auto& g = model.graph();
  const auto free = free_components(g);
  if (free.size() > max_free_)
    throw ConfigError("exhaustive partitioner limited to " +
                      std::to_string(max_free_) + " free components, got " +
                      std::to_string(free.size()));

  Partition best = Partition::all_local(g.component_count());
  double best_value = model.evaluate(best);
  Partition candidate = best;
  const std::uint64_t combos = 1ULL << free.size();
  for (std::uint64_t mask = 1; mask < combos; ++mask) {
    for (std::size_t i = 0; i < free.size(); ++i)
      candidate.placement[free[i]] =
          (mask >> i) & 1 ? Placement::Remote : Placement::Local;
    const double value = model.evaluate(candidate);
    if (value < best_value) {
      best_value = value;
      best = candidate;
    }
  }
  return best;
}

Partition MinCutPartitioner::plan(const CostModel& model) const {
  const auto& g = model.graph();
  const std::size_t n = g.component_count();
  const std::size_t source = n;      // device side
  const std::size_t sink = n + 1;    // cloud side
  constexpr double kInf = std::numeric_limits<double>::infinity();

  MaxFlow flow(n + 2);
  for (app::ComponentId id = 0; id < n; ++id) {
    // Arc s->v is cut exactly when v is on the sink (remote) side.
    flow.add_arc(source, id,
                 g.component(id).pinned_local ? kInf : model.remote_cost(id));
    // Arc v->t is cut exactly when v is on the source (local) side.
    flow.add_arc(id, sink, model.local_cost(id));
  }
  for (std::size_t fi = 0; fi < g.flow_count(); ++fi) {
    const auto& f = g.flow(fi);
    flow.add_arc(f.from, f.to, model.upload_cost(fi));
    flow.add_arc(f.to, f.from, model.download_cost(fi));
  }

  (void)flow.solve(source, sink);
  const auto local_side = flow.min_cut_source_side(source);

  Partition p = Partition::all_local(n);
  for (app::ComponentId id = 0; id < n; ++id)
    if (!local_side[id]) p.placement[id] = Placement::Remote;
  NTCO_ENSURES(p.respects_pins(g));
  return p;
}

std::vector<std::unique_ptr<Partitioner>> standard_portfolio(
    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<Partitioner>> out;
  out.push_back(std::make_unique<LocalOnlyPartitioner>());
  out.push_back(std::make_unique<RemoteAllPartitioner>());
  out.push_back(std::make_unique<RandomPartitioner>(0.5, rng.fork(1)));
  out.push_back(std::make_unique<GreedyPartitioner>());
  out.push_back(std::make_unique<AnnealingPartitioner>(
      AnnealingPartitioner::Params{}, rng.fork(2)));
  out.push_back(std::make_unique<MinCutPartitioner>());
  return out;
}

}  // namespace ntco::partition
