#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ntco/common/rng.hpp"
#include "ntco/partition/cost_model.hpp"

/// \file partitioners.hpp
/// Code-partitioning algorithms (the abstract's third contribution).
///
/// Every partitioner maps (task graph, cost model) to a pin-respecting
/// Partition. MinCutPartitioner is the framework's algorithm: it is exact
/// for the separable objective. The others are the baselines and searchers
/// the evaluation compares against (Table T2, Figure A1):
///
///   LocalOnly   – the no-offloading status quo,
///   RemoteAll   – naive full offload of everything not pinned,
///   Random      – sanity baseline,
///   Greedy      – iterative best-single-move hill climbing,
///   Annealing   – simulated annealing over placements,
///   Exhaustive  – ground truth for graphs with <= 24 free components,
///   MinCut      – optimal via s-t minimum cut (Dinic).

namespace ntco::partition {

/// Interface all partitioning algorithms implement.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Produces a pin-respecting partition of model.graph().
  [[nodiscard]] virtual Partition plan(const CostModel& model) const = 0;
};

/// Everything stays on the UE.
class LocalOnlyPartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "local-only"; }
  [[nodiscard]] Partition plan(const CostModel& model) const override;
};

/// Everything not pinned goes remote.
class RemoteAllPartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "remote-all"; }
  [[nodiscard]] Partition plan(const CostModel& model) const override;
};

/// Each unpinned component offloaded with probability `p_remote`.
class RandomPartitioner final : public Partitioner {
 public:
  RandomPartitioner(double p_remote, Rng rng);
  [[nodiscard]] std::string name() const override { return "random"; }
  [[nodiscard]] Partition plan(const CostModel& model) const override;

 private:
  double p_remote_;
  mutable Rng rng_;
};

/// Hill climbing: start all-local, repeatedly apply the single placement
/// flip with the largest objective improvement until none improves.
class GreedyPartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "greedy"; }
  [[nodiscard]] Partition plan(const CostModel& model) const override;
};

/// Simulated annealing over single-flip moves.
class AnnealingPartitioner final : public Partitioner {
 public:
  struct Params {
    std::size_t iterations = 20'000;
    double initial_temperature = 1.0;  ///< relative to initial objective
    double cooling = 0.9995;           ///< geometric per-iteration factor
  };

  AnnealingPartitioner(Params params, Rng rng);
  [[nodiscard]] std::string name() const override { return "annealing"; }
  [[nodiscard]] Partition plan(const CostModel& model) const override;

 private:
  Params params_;
  mutable Rng rng_;
};

/// Enumerates every pin-respecting partition. Pre: <= `max_free` unpinned
/// components (throws ConfigError beyond that).
class ExhaustivePartitioner final : public Partitioner {
 public:
  explicit ExhaustivePartitioner(std::size_t max_free = 24)
      : max_free_(max_free) {}
  [[nodiscard]] std::string name() const override { return "exhaustive"; }
  [[nodiscard]] Partition plan(const CostModel& model) const override;

 private:
  std::size_t max_free_;
};

/// Exact polynomial-time optimum via s-t minimum cut.
///
/// Construction: source s = device side, sink t = cloud side. For every
/// component v, arc s->v with capacity c_remote(v) (cut iff v lands remote)
/// and arc v->t with capacity c_local(v) (cut iff v stays local); pinned
/// components get an infinite s->v arc. For every flow (u,v), arc u->v with
/// capacity c_upload and arc v->u with capacity c_download, so exactly the
/// crossing direction's cost enters the cut. The minimum cut value equals
/// the minimum of the separable objective, and the source side of the cut
/// is the optimal local set.
class MinCutPartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "min-cut"; }
  [[nodiscard]] Partition plan(const CostModel& model) const override;
};

/// The portfolio the benches iterate over (excludes Exhaustive, which is
/// size-limited). Random/annealing seeds derive from `seed`.
[[nodiscard]] std::vector<std::unique_ptr<Partitioner>> standard_portfolio(
    std::uint64_t seed);

}  // namespace ntco::partition
