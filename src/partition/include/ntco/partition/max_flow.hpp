#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "ntco/common/contracts.hpp"

/// \file max_flow.hpp
/// Dinic's maximum-flow / minimum-cut over real-valued capacities.
///
/// Used by MinCutPartitioner on the MAUI-style flow network; node counts are
/// small (components + 2), so the O(V^2 E) bound is irrelevant, but the
/// implementation is a faithful Dinic with BFS level graphs and DFS blocking
/// flows and handles arbitrary graphs.

namespace ntco::partition {

/// Max-flow solver on a directed graph with double capacities.
class MaxFlow {
 public:
  explicit MaxFlow(std::size_t nodes) : adj_(nodes) {}

  /// Adds a directed arc with the given capacity (and a zero-capacity
  /// reverse arc for the residual graph). Infinite capacity is allowed via
  /// std::numeric_limits<double>::infinity().
  void add_arc(std::size_t from, std::size_t to, double capacity) {
    NTCO_EXPECTS(from < adj_.size());
    NTCO_EXPECTS(to < adj_.size());
    NTCO_EXPECTS(capacity >= 0.0);
    adj_[from].push_back(edges_.size());
    edges_.push_back(Edge{to, capacity});
    adj_[to].push_back(edges_.size());
    edges_.push_back(Edge{from, 0.0});
  }

  /// Computes the maximum s-t flow. Call once.
  double solve(std::size_t source, std::size_t sink);

  /// After solve(): nodes reachable from the source in the residual graph
  /// (the source side S of the minimum cut). `in_source_side[v]` is true
  /// iff v in S.
  [[nodiscard]] std::vector<bool> min_cut_source_side(
      std::size_t source) const;

 private:
  struct Edge {
    std::size_t to;
    double cap;  ///< residual capacity
  };

  bool bfs(std::size_t source, std::size_t sink);
  double dfs(std::size_t v, std::size_t sink, double pushed);

  static constexpr double kEps = 1e-12;

  std::vector<std::vector<std::size_t>> adj_;
  std::vector<Edge> edges_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace ntco::partition
