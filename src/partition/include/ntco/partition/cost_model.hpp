#pragma once

#include <string>
#include <vector>

#include "ntco/app/task_graph.hpp"
#include "ntco/common/contracts.hpp"
#include "ntco/common/units.hpp"
#include "ntco/device/device.hpp"

/// \file cost_model.hpp
/// Partition representation and the separable offloading cost model.
///
/// The objective is the classic MAUI-style separable form over a sequential
/// execution of the DAG:
///
///   J(P) =   sum_{v local}  c_local(v)
///          + sum_{v remote} c_remote(v)
///          + sum_{(u,v) cut} c_transfer(u,v)
///
/// where every c is a weighted combination of latency, UE energy, and cloud
/// money. Separability is what makes the optimal partition an s-t min cut
/// (see MinCutPartitioner); the end-to-end simulator in ntco::core executes
/// the same sequential model, so objective values predict simulated runs.

namespace ntco::partition {

/// Where a component executes.
enum class Placement : std::uint8_t { Local, Remote };

/// An assignment of every component to a side.
struct Partition {
  std::vector<Placement> placement;

  [[nodiscard]] bool is_remote(app::ComponentId id) const {
    NTCO_EXPECTS(id < placement.size());
    return placement[id] == Placement::Remote;
  }
  [[nodiscard]] std::size_t remote_count() const {
    std::size_t n = 0;
    for (const auto p : placement)
      if (p == Placement::Remote) ++n;
    return n;
  }
  /// Compact rendering, e.g. "LRRL".
  [[nodiscard]] std::string to_string() const {
    std::string s;
    s.reserve(placement.size());
    for (const auto p : placement)
      s.push_back(p == Placement::Remote ? 'R' : 'L');
    return s;
  }
  /// True if every pinned component of `g` is local.
  [[nodiscard]] bool respects_pins(const app::TaskGraph& g) const;

  [[nodiscard]] static Partition all_local(std::size_t n) {
    return Partition{std::vector<Placement>(n, Placement::Local)};
  }

  friend bool operator==(const Partition&, const Partition&) = default;
};

/// Linear objective weights. Units: latency in seconds, energy in joules,
/// money in USD. The defaults optimise latency only.
struct Objective {
  double latency_weight = 1.0;
  double energy_weight = 0.0;
  double money_weight = 0.0;

  /// Presets used throughout the evaluation.
  [[nodiscard]] static Objective latency() { return {1.0, 0.0, 0.0}; }
  [[nodiscard]] static Objective energy() { return {0.0, 1.0, 0.0}; }
  [[nodiscard]] static Objective cost() { return {0.0, 0.0, 1.0}; }
  /// Non-time-critical blend: money dominates, latency is a tie-breaker,
  /// battery matters.
  [[nodiscard]] static Objective non_time_critical() {
    return {0.01, 0.1, 1.0};
  }
};

/// Everything the cost model needs to price one side or the boundary.
/// Built from a concrete device + serverless allocation + network profile by
/// core::make_environment(); kept as plain values here so the partition
/// module stays independent of the platform simulators.
struct Environment {
  device::DeviceSpec device;

  /// Effective remote core speed after the memory allocation's CPU share.
  Frequency remote_speed = Frequency::gigahertz(2.5);
  /// Expected per-invocation remote overhead (dispatch + amortised cold
  /// start at the expected warm-hit rate).
  Duration remote_overhead = Duration::millis(5);
  /// Cloud price per remote compute-second at the chosen memory.
  Money remote_price_per_second = Money::nano_usd(29'000);
  /// Flat per-invocation fee.
  Money price_per_invocation = Money::nano_usd(200);

  DataRate uplink = DataRate::megabits_per_second(10);
  DataRate downlink = DataRate::megabits_per_second(30);
  Duration uplink_latency = Duration::millis(25);
  Duration downlink_latency = Duration::millis(25);
  /// Cloud egress price per byte sent back to the UE (ingress is free).
  Money egress_price_per_gb = Money::from_usd(0.09);
};

/// Per-partition totals in physical units plus the scalar objective.
struct CostBreakdown {
  Duration latency;
  Energy energy;
  Money money;
  double objective = 0.0;
};

/// Evaluates partitions of one graph under one environment and objective.
///
/// All sums are precomputed per component / per flow, so evaluate() is O(n)
/// and the search-based partitioners can afford many evaluations.
class CostModel {
 public:
  CostModel(const app::TaskGraph& graph, Environment env, Objective objective);

  [[nodiscard]] const app::TaskGraph& graph() const { return graph_; }
  [[nodiscard]] const Environment& environment() const { return env_; }
  [[nodiscard]] const Objective& objective() const { return objective_; }

  /// Objective contribution of running `id` on the UE.
  [[nodiscard]] double local_cost(app::ComponentId id) const;
  /// Objective contribution of running `id` remotely.
  [[nodiscard]] double remote_cost(app::ComponentId id) const;
  /// Objective contribution of flow `idx` crossing local -> remote (upload).
  [[nodiscard]] double upload_cost(std::size_t idx) const;
  /// Objective contribution of flow `idx` crossing remote -> local
  /// (download).
  [[nodiscard]] double download_cost(std::size_t idx) const;

  /// Total objective of a partition. Pre: sizes match; pins respected.
  [[nodiscard]] double evaluate(const Partition& p) const;

  /// Latency/energy/money totals of a partition (for reporting).
  [[nodiscard]] CostBreakdown breakdown(const Partition& p) const;

 private:
  struct SideCosts {
    Duration latency;
    Energy energy;
    Money money;
  };
  [[nodiscard]] double scalarize(const SideCosts& c) const;
  [[nodiscard]] SideCosts local_side(app::ComponentId id) const;
  [[nodiscard]] SideCosts remote_side(app::ComponentId id) const;
  [[nodiscard]] SideCosts upload_side(std::size_t idx) const;
  [[nodiscard]] SideCosts download_side(std::size_t idx) const;

  const app::TaskGraph& graph_;
  Environment env_;
  Objective objective_;
};

}  // namespace ntco::partition
