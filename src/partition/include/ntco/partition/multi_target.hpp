#pragma once

#include <array>
#include <string>
#include <vector>

#include "ntco/app/task_graph.hpp"
#include "ntco/common/units.hpp"
#include "ntco/device/device.hpp"

/// \file multi_target.hpp
/// Three-way placement: Device / Edge / Cloud.
///
/// The binary partitioner answers "phone or cloud?"; real deployments may
/// also have an edge site. Placement becomes a 3-label assignment with
/// pairwise transfer costs that depend on which pair of sites a flow
/// crosses (UE<->edge LAN, UE<->cloud WAN, edge<->cloud backhaul). The
/// optimal assignment is NP-hard in general (multiway cut), so the
/// framework provides:
///   MultiExhaustivePartitioner — ground truth for <= ~15 free components,
///   MultiGreedyPartitioner     — best-single-move hill climbing,
///   AlphaExpansionPartitioner  — graph-cut alpha-expansion (Boykov-
///                                Veksler-Zabih) on top of the same Dinic
///                                max-flow core; near-optimal in practice
///                                and polynomial per sweep.

namespace ntco::partition {

/// Placement site of one component.
enum class Site : std::uint8_t { Device = 0, Edge = 1, Cloud = 2 };

inline constexpr std::array<Site, 3> kAllSites{Site::Device, Site::Edge,
                                               Site::Cloud};

[[nodiscard]] const char* to_string(Site s);

/// An assignment of every component to a site.
struct MultiPartition {
  std::vector<Site> site;

  [[nodiscard]] std::size_t count(Site s) const {
    std::size_t n = 0;
    for (const auto x : site)
      if (x == s) ++n;
    return n;
  }
  /// Compact rendering, e.g. "DECD" (D=device, E=edge, C=cloud).
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool respects_pins(const app::TaskGraph& g) const;

  [[nodiscard]] static MultiPartition all_device(std::size_t n) {
    return MultiPartition{std::vector<Site>(n, Site::Device)};
  }

  friend bool operator==(const MultiPartition&, const MultiPartition&) =
      default;
};

/// Execution parameters of one remote site (edge or cloud).
struct SiteParams {
  Frequency speed = Frequency::gigahertz(2.5);
  Duration overhead = Duration::millis(5);     ///< per-invocation
  Money price_per_second = Money::nano_usd(29'000);
  Money price_per_invocation = Money::nano_usd(200);
  /// Link from/to the UE.
  DataRate uplink = DataRate::megabits_per_second(10);
  DataRate downlink = DataRate::megabits_per_second(30);
  Duration uplink_latency = Duration::millis(25);
  Duration downlink_latency = Duration::millis(25);
  Money egress_price_per_gb = Money::from_usd(0.09);
};

/// The full three-site world the multi cost model prices against.
struct MultiEnvironment {
  device::DeviceSpec device;
  SiteParams edge;
  SiteParams cloud;
  /// Backhaul between the edge site and the cloud region (no UE energy).
  DataRate backhaul_rate = DataRate::megabits_per_second(1000);
  Duration backhaul_latency = Duration::millis(15);
};

/// Sensible defaults: a 4G UE, an on-prem edge site on LAN, a serverless
/// cloud region over the WAN.
[[nodiscard]] MultiEnvironment default_multi_environment();

/// Objective weights are shared with the binary model (cost_model.hpp).
struct Objective;  // fwd (defined in cost_model.hpp)

/// Separable 3-label cost model: per-component site costs plus per-flow
/// site-pair transfer costs.
class MultiCostModel {
 public:
  MultiCostModel(const app::TaskGraph& graph, MultiEnvironment env,
                 double latency_weight, double energy_weight,
                 double money_weight);

  [[nodiscard]] const app::TaskGraph& graph() const { return graph_; }

  /// Objective contribution of running `id` at `s`.
  [[nodiscard]] double site_cost(app::ComponentId id, Site s) const;

  /// Objective contribution of flow `idx` crossing `from` -> `to`
  /// (0 when from == to).
  [[nodiscard]] double transfer_cost(std::size_t idx, Site from,
                                     Site to) const;

  /// Total objective. Pre: sizes match, pins respected.
  [[nodiscard]] double evaluate(const MultiPartition& p) const;

 private:
  const app::TaskGraph& graph_;
  MultiEnvironment env_;
  double w_lat_;
  double w_energy_;
  double w_money_;
};

/// Interface of the 3-way partitioners.
class MultiPartitioner {
 public:
  virtual ~MultiPartitioner() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual MultiPartition plan(const MultiCostModel& m) const = 0;
};

/// Enumerates all 3^free assignments. Pre: few free components.
class MultiExhaustivePartitioner final : public MultiPartitioner {
 public:
  explicit MultiExhaustivePartitioner(std::size_t max_free = 15)
      : max_free_(max_free) {}
  [[nodiscard]] std::string name() const override { return "exhaustive-3"; }
  [[nodiscard]] MultiPartition plan(const MultiCostModel& m) const override;

 private:
  std::size_t max_free_;
};

/// Best-single-relabel hill climbing from all-device.
class MultiGreedyPartitioner final : public MultiPartitioner {
 public:
  [[nodiscard]] std::string name() const override { return "greedy-3"; }
  [[nodiscard]] MultiPartition plan(const MultiCostModel& m) const override;
};

/// Alpha-expansion over the three labels using binary min cuts. Pairwise
/// terms that violate the triangle inequality are truncated (standard),
/// keeping every expansion move non-worsening.
class AlphaExpansionPartitioner final : public MultiPartitioner {
 public:
  explicit AlphaExpansionPartitioner(std::size_t max_sweeps = 10)
      : max_sweeps_(max_sweeps) {}
  [[nodiscard]] std::string name() const override { return "alpha-expansion"; }
  [[nodiscard]] MultiPartition plan(const MultiCostModel& m) const override;

 private:
  std::size_t max_sweeps_;
};

}  // namespace ntco::partition
