#include "ntco/net/path.hpp"

namespace ntco::net {

TechProfile profile_3g() {
  return {"3G", DataRate::megabits_per_second(1),
          DataRate::megabits_per_second(4), Duration::millis(60), 0.45, 0.25};
}

TechProfile profile_4g() {
  return {"4G", DataRate::megabits_per_second(10),
          DataRate::megabits_per_second(30), Duration::millis(25), 0.35, 0.20};
}

TechProfile profile_5g() {
  return {"5G", DataRate::megabits_per_second(60),
          DataRate::megabits_per_second(150), Duration::millis(8), 0.30, 0.15};
}

TechProfile profile_wifi() {
  return {"WiFi", DataRate::megabits_per_second(40),
          DataRate::megabits_per_second(80), Duration::millis(3), 0.30, 0.15};
}

TechProfile profile_edge_lan() {
  return {"EdgeLAN", DataRate::megabits_per_second(100),
          DataRate::megabits_per_second(100), Duration::millis(1), 0.20, 0.10};
}

TechProfile profile_cloud_wan() {
  return {"CloudWAN", DataRate::megabits_per_second(50),
          DataRate::megabits_per_second(50), Duration::millis(40), 0.30, 0.10};
}

NetworkPath make_fixed_path(const TechProfile& p) {
  return NetworkPath(p.name,
                     std::make_unique<FixedLink>(p.one_way_latency, p.uplink),
                     std::make_unique<FixedLink>(p.one_way_latency,
                                                 p.downlink));
}

NetworkPath make_stochastic_path(const TechProfile& p, Rng rng) {
  return NetworkPath(
      p.name,
      std::make_unique<StochasticLink>(p.one_way_latency, p.latency_sigma,
                                       p.uplink, p.rate_cv, rng.fork(1)),
      std::make_unique<StochasticLink>(p.one_way_latency, p.latency_sigma,
                                       p.downlink, p.rate_cv, rng.fork(2)));
}

}  // namespace ntco::net
