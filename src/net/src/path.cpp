#include "ntco/net/path.hpp"

namespace ntco::net {

namespace {

/// Symmetric-latency spec helper: the published figures the presets follow
/// quote one propagation latency and one jitter model per technology.
PathSpec symmetric(std::string name, DataRate up, DataRate down,
                   Duration latency, double latency_sigma, double rate_cv) {
  PathSpec s;
  s.name = std::move(name);
  s.up = {up, latency, latency_sigma, rate_cv};
  s.down = {down, latency, latency_sigma, rate_cv};
  return s;
}

}  // namespace

PathSpec spec_3g() {
  return symmetric("3G", DataRate::megabits_per_second(1),
                   DataRate::megabits_per_second(4), Duration::millis(60),
                   0.45, 0.25);
}

PathSpec spec_4g() {
  return symmetric("4G", DataRate::megabits_per_second(10),
                   DataRate::megabits_per_second(30), Duration::millis(25),
                   0.35, 0.20);
}

PathSpec spec_5g() {
  return symmetric("5G", DataRate::megabits_per_second(60),
                   DataRate::megabits_per_second(150), Duration::millis(8),
                   0.30, 0.15);
}

PathSpec spec_wifi() {
  return symmetric("WiFi", DataRate::megabits_per_second(40),
                   DataRate::megabits_per_second(80), Duration::millis(3),
                   0.30, 0.15);
}

PathSpec spec_edge_lan() {
  return symmetric("EdgeLAN", DataRate::megabits_per_second(100),
                   DataRate::megabits_per_second(100), Duration::millis(1),
                   0.20, 0.10);
}

PathSpec spec_cloud_wan() {
  return symmetric("CloudWAN", DataRate::megabits_per_second(50),
                   DataRate::megabits_per_second(50), Duration::millis(40),
                   0.30, 0.10);
}

NetworkPath make_path(const PathSpec& spec) {
  return NetworkPath(
      spec, std::make_unique<FixedLink>(spec.up.latency, spec.up.rate),
      std::make_unique<FixedLink>(spec.down.latency, spec.down.rate));
}

NetworkPath make_stochastic_path(const PathSpec& spec, Rng rng) {
  return NetworkPath(
      spec,
      std::make_unique<StochasticLink>(spec.up.latency, spec.up.latency_sigma,
                                       spec.up.rate, spec.up.rate_cv,
                                       rng.fork(1)),
      std::make_unique<StochasticLink>(spec.down.latency,
                                       spec.down.latency_sigma, spec.down.rate,
                                       spec.down.rate_cv, rng.fork(2)));
}

PathSpec to_spec(const TechProfile& p) {
  return symmetric(p.name, p.uplink, p.downlink, p.one_way_latency,
                   p.latency_sigma, p.rate_cv);
}

TechProfile to_profile(const PathSpec& spec) {
  return {spec.name,       spec.up.rate,          spec.down.rate,
          spec.up.latency, spec.up.latency_sigma, spec.up.rate_cv};
}

TechProfile profile_3g() { return to_profile(spec_3g()); }
TechProfile profile_4g() { return to_profile(spec_4g()); }
TechProfile profile_5g() { return to_profile(spec_5g()); }
TechProfile profile_wifi() { return to_profile(spec_wifi()); }
TechProfile profile_edge_lan() { return to_profile(spec_edge_lan()); }
TechProfile profile_cloud_wan() { return to_profile(spec_cloud_wan()); }

NetworkPath make_fixed_path(const TechProfile& p) {
  return make_path(to_spec(p));
}

NetworkPath make_stochastic_path(const TechProfile& p, Rng rng) {
  return make_stochastic_path(to_spec(p), rng);
}

}  // namespace ntco::net
