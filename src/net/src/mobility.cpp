#include "ntco/net/mobility.hpp"

#include "ntco/common/error.hpp"

namespace ntco::net {

MobilitySchedule::MobilitySchedule(std::vector<ConnectivityPhase> phases)
    : phases_(std::move(phases)) {
  if (phases_.empty())
    throw ConfigError("mobility schedule needs at least one phase");
  Duration offset;
  for (const auto& p : phases_) {
    if (p.duration <= Duration::zero())
      throw ConfigError("mobility phase durations must be positive");
    starts_.push_back(offset);
    offset += p.duration;
  }
  cycle_ = offset;
}

std::size_t MobilitySchedule::index_at(Duration offset) const {
  NTCO_EXPECTS(!offset.is_negative());
  NTCO_EXPECTS(offset < cycle_);
  // Phases are few (a handful per day); linear scan is clearest.
  for (std::size_t i = phases_.size(); i-- > 0;)
    if (offset >= starts_[i]) return i;
  return 0;
}

const ConnectivityPhase& MobilitySchedule::phase_at(TimePoint t) const {
  const auto us = t.since_origin().count_micros();
  NTCO_EXPECTS(us >= 0);
  const auto offset = Duration::micros(us % cycle_.count_micros());
  return phases_[index_at(offset)];
}

Duration MobilitySchedule::remaining_in_phase(TimePoint t) const {
  const auto us = t.since_origin().count_micros();
  NTCO_EXPECTS(us >= 0);
  const auto offset = Duration::micros(us % cycle_.count_micros());
  const auto idx = index_at(offset);
  return starts_[idx] + phases_[idx].duration - offset;
}

std::optional<TimePoint> MobilitySchedule::next_matching(
    TimePoint from,
    const std::function<bool(const ConnectivityPhase&)>& pred) const {
  NTCO_EXPECTS(pred != nullptr);
  if (pred(phase_at(from))) return from;
  // Walk phase boundaries for up to two cycles.
  TimePoint t = from + remaining_in_phase(from);
  const TimePoint horizon = from + cycle_ + cycle_;
  while (t < horizon) {
    const auto& phase = phase_at(t);
    if (pred(phase)) return t;
    t = t + phase.duration;
  }
  return std::nullopt;
}

MobilitySchedule MobilitySchedule::commuter_day(Money cellular_price_per_gb) {
  auto wifi = profile_wifi();
  auto cellular = profile_4g();
  return MobilitySchedule({
      {wifi, Duration::hours(8), Money::zero()},           // home, asleep
      {cellular, Duration::hours(1), cellular_price_per_gb},  // commute
      {wifi, Duration::hours(8), Money::zero()},           // office
      {cellular, Duration::hours(1), cellular_price_per_gb},  // commute
      {wifi, Duration::hours(6), Money::zero()},           // home, evening
  });
}

}  // namespace ntco::net
