#pragma once

#include <cstdint>
#include <string>

#include "ntco/common/units.hpp"
#include "ntco/obs/trace.hpp"

/// \file transport.hpp
/// The network layer's public serving surface: `Transport`, the interface
/// every consumer of a UE<->remote path programs against, and `PathSpec`,
/// the POD description of a calibrated technology preset.
///
/// Until this interface existed, consumers (core::OffloadController, the
/// benches) coupled directly to net::NetworkPath and its two owned Links —
/// which made the private-link assumption structural: there was no way to
/// model a *shared* cell uplink, edge LAN, or WAN without rewriting every
/// call site. Transport breaks that coupling:
///
///   - net::NetworkPath      private links, one UE's exclusive capacity
///   - fabric::FabricPath    flows on shared segments, contention-aware
///
/// Both honour the same timing contract (see `uplink_time`), so a
/// controller, platform, or bench written against `Transport&` runs
/// unmodified over either. Direct `NetworkPath&` coupling is deprecated;
/// see DESIGN.md ("Shared-fabric network model").

namespace ntco::net {

/// Transfer direction through a bidirectional transport.
enum class LinkDirection : std::uint8_t { Up, Down };

/// Result of one transfer attempt on a possibly unreliable transport.
/// (Moved here from flaky_link.hpp so the attempt API is part of the
/// Transport surface; flaky_link.hpp re-exports it.)
struct TransferAttempt {
  bool ok = true;
  Duration elapsed;  ///< transfer time, or the timeout burned on failure
};

/// Nominal figures of one transfer direction: the calibrated constants a
/// planner reasons about and the stochastic/fabric models perturb.
struct DirectionSpec {
  DataRate rate;          ///< nominal achievable throughput
  Duration latency;       ///< one-way propagation latency
  double latency_sigma = 0.0;  ///< log-normal sigma of the jitter model
  double rate_cv = 0.0;        ///< rate coefficient of variation
};

/// POD technology preset: per-direction nominal rate/latency/jitter,
/// separated from construction so the private-link factories
/// (make_path/make_stochastic_path) and the shared-fabric attach point
/// (fabric::Fabric::attach) consume one calibrated table instead of
/// duplicating constants. Known presets: spec_3g() ... spec_cloud_wan().
struct PathSpec {
  std::string name;
  DirectionSpec up;
  DirectionSpec down;
};

/// Bidirectional UE<->remote transport.
///
/// Timing contract (golden-tested in net_test/fabric_test):
///   - `uplink_time(s)` / `downlink_time(s)` return one-way latency plus
///     serialisation of `s` at the achieved rate, and are *stateful*: they
///     commit the transfer (consume jitter randomness, occupy shared
///     capacity), so call them once per modelled transfer.
///   - Zero-size transfers still pay the full one-way latency — the
///     request header has to travel. Both implementations agree:
///     `uplink_time(DataSize::zero())` equals the path's one-way uplink
///     latency exactly (Link::transfer_time pins the same semantics).
///   - No queuing is modelled at zero size beyond that latency: a
///     NetworkPath is private (never queues), and a fabric flow of zero
///     bytes drains instantly regardless of contention.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Stable display name (trace labels, tables).
  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Nominal figures for planning (partition::Environment construction).
  /// For a fabric path these are the access leg's nominal figures; shared
  /// contention shows up in the sampled times, not the spec.
  [[nodiscard]] virtual const PathSpec& spec() const = 0;

  /// Time to move `size` bytes UE -> remote. See the timing contract.
  [[nodiscard]] virtual Duration uplink_time(DataSize size) = 0;

  /// Time to move `size` bytes remote -> UE. See the timing contract.
  [[nodiscard]] virtual Duration downlink_time(DataSize size) = 0;

  /// Round-trip time for a request/response of the given payload sizes.
  [[nodiscard]] virtual Duration round_trip_time(DataSize request,
                                                 DataSize response) {
    return uplink_time(request) + downlink_time(response);
  }

  /// One transfer attempt in `dir`: implementations with failure
  /// injection (NetworkPath over FlakyLink) may report `ok == false`
  /// after burning the failure timeout; the default always succeeds.
  [[nodiscard]] virtual TransferAttempt attempt(LinkDirection dir,
                                                DataSize size) {
    return TransferAttempt{
        true, dir == LinkDirection::Up ? uplink_time(size)
                                       : downlink_time(size)};
  }

  /// Attaches tracing for this transport's transfer records; null pointers
  /// detach. NetworkPath labels its links "<name>/up"/"<name>/down";
  /// FabricPath forwards to its fabric's flow tracer.
  virtual void set_trace(obs::TraceSink* sink,
                         const obs::TraceClock* clock) = 0;
};

}  // namespace ntco::net
