#pragma once

#include <memory>

#include "ntco/common/rng.hpp"
#include "ntco/net/link.hpp"
#include "ntco/net/transport.hpp"
#include "ntco/obs/trace.hpp"

/// \file flaky_link.hpp
/// Failure injection for network links.
///
/// A FlakyLink wraps any Link and makes each transfer fail independently
/// with probability `failure_rate`. A failed transfer still costs wall time
/// (the sender waits out a timeout) and radio energy; recovering is the
/// caller's policy — core::OffloadController retries and falls back to
/// local execution (see ControllerConfig::max_transfer_retries).

namespace ntco::net {

// TransferAttempt lives in transport.hpp (it is part of the Transport
// attempt API); this header keeps the link-level failure injector.

/// Decorator injecting Bernoulli transfer failures into any Link.
class FlakyLink final : public Link {
 public:
  /// `timeout` is the time a failed attempt costs the sender (detection by
  /// timer expiry). Pre: 0 <= failure_rate <= 1.
  FlakyLink(std::unique_ptr<Link> inner, double failure_rate,
            Duration timeout, Rng rng)
      : inner_(std::move(inner)),
        failure_rate_(failure_rate),
        timeout_(timeout),
        rng_(rng) {
    NTCO_EXPECTS(inner_ != nullptr);
    NTCO_EXPECTS(failure_rate >= 0.0 && failure_rate <= 1.0);
    NTCO_EXPECTS(!timeout.is_negative());
  }

  [[nodiscard]] Duration sample_latency() override {
    return inner_->sample_latency();
  }
  [[nodiscard]] DataRate sample_rate() override {
    return inner_->sample_rate();
  }
  [[nodiscard]] DataRate nominal_rate() const override {
    return inner_->nominal_rate();
  }
  [[nodiscard]] Duration nominal_latency() const override {
    return inner_->nominal_latency();
  }

  /// One attempt: fails with the configured probability, burning the
  /// timeout; otherwise behaves like the wrapped link.
  [[nodiscard]] TransferAttempt try_transfer(DataSize size) {
    if (rng_.bernoulli(failure_rate_)) {
      ++failures_;
      if (traced())
        trace_event("net.link.loss", {{"bytes", size}, {"timeout", timeout_}});
      return TransferAttempt{false, timeout_};
    }
    return TransferAttempt{true, transfer_time(size)};
  }

  /// Tracing also covers the wrapped link (e.g. Markov state changes).
  void set_trace(obs::TraceSink* sink, const obs::TraceClock* clock,
                 std::string label) override {
    inner_->set_trace(sink, clock, label);
    Link::set_trace(sink, clock, std::move(label));
  }

  [[nodiscard]] std::uint64_t failures() const { return failures_; }
  [[nodiscard]] double failure_rate() const { return failure_rate_; }

 private:
  std::unique_ptr<Link> inner_;
  double failure_rate_;
  Duration timeout_;
  Rng rng_;
  std::uint64_t failures_ = 0;
};

/// Uniform attempt API over any link: plain links always succeed.
[[nodiscard]] inline TransferAttempt attempt_transfer(Link& link,
                                                      DataSize size) {
  if (auto* flaky = dynamic_cast<FlakyLink*>(&link))
    return flaky->try_transfer(size);
  return TransferAttempt{true, link.transfer_time(size)};
}

}  // namespace ntco::net
