#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "ntco/common/contracts.hpp"
#include "ntco/net/path.hpp"

/// \file mobility.hpp
/// Time-varying connectivity: the UE moves through a repeating daily
/// schedule of network phases (home WiFi, cellular commute, office WiFi,
/// ...). Delay-tolerant transfers can exploit this: waiting for the next
/// WiFi phase avoids cellular data charges and cuts radio energy, which is
/// exactly the kind of win only non-time-critical workloads can harvest
/// (see sched::UploadPlanner and bench F10).

namespace ntco::net {

/// One phase of the connectivity schedule.
struct ConnectivityPhase {
  TechProfile tech;
  Duration duration;
  /// Marginal user cost of data moved in this phase (cellular tariffs;
  /// zero on WiFi).
  Money data_price_per_gb;
};

/// Cyclic connectivity schedule (typically one day long).
class MobilitySchedule {
 public:
  explicit MobilitySchedule(std::vector<ConnectivityPhase> phases);

  [[nodiscard]] Duration cycle_length() const { return cycle_; }
  [[nodiscard]] std::size_t phase_count() const { return phases_.size(); }

  /// Phase in effect at absolute time `t` (cyclic).
  [[nodiscard]] const ConnectivityPhase& phase_at(TimePoint t) const;

  /// Start of the earliest phase at or after `from` satisfying `pred`
  /// (the current phase counts if it satisfies it, returning `from`).
  /// Searches at most two full cycles; nullopt if nothing matches.
  [[nodiscard]] std::optional<TimePoint> next_matching(
      TimePoint from,
      const std::function<bool(const ConnectivityPhase&)>& pred) const;

  /// Time remaining in the phase containing `t`.
  [[nodiscard]] Duration remaining_in_phase(TimePoint t) const;

  /// Commuter preset: home WiFi 00-08, 4G commute 08-09, office WiFi
  /// 09-17, 4G commute 17-18, home WiFi 18-24. Cellular data at
  /// `cellular_price_per_gb` (default $4/GB).
  [[nodiscard]] static MobilitySchedule commuter_day(
      Money cellular_price_per_gb = Money::from_usd(4.0));

 private:
  /// Index of the phase containing offset `o` in [0, cycle).
  [[nodiscard]] std::size_t index_at(Duration offset) const;

  std::vector<ConnectivityPhase> phases_;
  std::vector<Duration> starts_;  ///< phase start offsets within the cycle
  Duration cycle_;
};

/// Link whose latency/rate follow a MobilitySchedule, read at the simulated
/// time supplied by `clock` (usually [&sim]{ return sim.now(); }).
class MobileLink final : public Link {
 public:
  MobileLink(const MobilitySchedule& schedule, bool uplink,
             std::function<TimePoint()> clock)
      : schedule_(schedule), uplink_(uplink), clock_(std::move(clock)) {
    NTCO_EXPECTS(clock_ != nullptr);
  }

  [[nodiscard]] Duration sample_latency() override {
    return current().tech.one_way_latency;
  }
  [[nodiscard]] DataRate sample_rate() override {
    const auto& t = current().tech;
    return uplink_ ? t.uplink : t.downlink;
  }
  [[nodiscard]] DataRate nominal_rate() const override {
    const auto& t = schedule_.phase_at(TimePoint::origin()).tech;
    return uplink_ ? t.uplink : t.downlink;
  }
  [[nodiscard]] Duration nominal_latency() const override {
    return schedule_.phase_at(TimePoint::origin()).tech.one_way_latency;
  }

  /// Marginal data price in effect now.
  [[nodiscard]] Money current_data_price_per_gb() const {
    return current().data_price_per_gb;
  }
  /// Name of the technology in effect now (e.g. "WiFi", "4G").
  [[nodiscard]] const std::string& current_tech() const {
    return current().tech.name;
  }

 private:
  [[nodiscard]] const ConnectivityPhase& current() const {
    return schedule_.phase_at(clock_());
  }

  const MobilitySchedule& schedule_;
  bool uplink_;
  std::function<TimePoint()> clock_;
};

}  // namespace ntco::net
