#pragma once

#include <memory>
#include <string>

#include "ntco/common/contracts.hpp"
#include "ntco/net/flaky_link.hpp"
#include "ntco/net/link.hpp"
#include "ntco/net/transport.hpp"
#include "ntco/obs/trace.hpp"

/// \file path.hpp
/// Private-link Transport implementation plus the calibrated technology
/// preset table (PathSpec values follow the ballpark figures offloading
/// papers use: 3G per MAUI-era studies, LTE/5G/WiFi per OpenSignal-style
/// averages; the experiments sweep around them anyway).
///
/// NetworkPath models the paper's baseline assumption — every UE owns its
/// link exclusively. For shared capacity (cell uplink, edge LAN, WAN) use
/// fabric::FabricPath behind the same net::Transport interface.

namespace ntco::net {

/// Uplink + downlink pair of private Links. Owns its links. One of the two
/// Transport implementations (the other is fabric::FabricPath); new code
/// should accept `Transport&`, not `NetworkPath&` (see DESIGN.md,
/// "Shared-fabric network model" — direct coupling is deprecated).
class NetworkPath final : public Transport {
 public:
  NetworkPath(std::string name, std::unique_ptr<Link> uplink,
              std::unique_ptr<Link> downlink)
      : name_(std::move(name)),
        up_(std::move(uplink)),
        down_(std::move(downlink)) {
    NTCO_EXPECTS(up_ != nullptr);
    NTCO_EXPECTS(down_ != nullptr);
    // Derive the nominal spec from the links so hand-assembled paths
    // (tests, flaky wrappers) still expose true planning figures.
    spec_.name = name_;
    spec_.up = {up_->nominal_rate(), up_->nominal_latency(), 0.0, 0.0};
    spec_.down = {down_->nominal_rate(), down_->nominal_latency(), 0.0, 0.0};
  }

  /// Preset-built path: keeps the full spec (including jitter parameters)
  /// instead of re-deriving nominals from the links.
  NetworkPath(PathSpec spec, std::unique_ptr<Link> uplink,
              std::unique_ptr<Link> downlink)
      : name_(spec.name),
        spec_(std::move(spec)),
        up_(std::move(uplink)),
        down_(std::move(downlink)) {
    NTCO_EXPECTS(up_ != nullptr);
    NTCO_EXPECTS(down_ != nullptr);
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const PathSpec& spec() const override { return spec_; }
  [[nodiscard]] Link& uplink() { return *up_; }
  [[nodiscard]] Link& downlink() { return *down_; }
  [[nodiscard]] const Link& uplink() const { return *up_; }
  [[nodiscard]] const Link& downlink() const { return *down_; }

  /// One-way times: sampled latency + serialisation on the private link.
  /// Zero-size transfers still pay latency (Transport timing contract).
  [[nodiscard]] Duration uplink_time(DataSize size) override {
    return up_->transfer_time(size);
  }
  [[nodiscard]] Duration downlink_time(DataSize size) override {
    return down_->transfer_time(size);
  }

  /// Round-trip time for a request/response of the given payload sizes.
  [[nodiscard]] Duration round_trip_time(DataSize request,
                                         DataSize response) override {
    return up_->transfer_time(request) + down_->transfer_time(response);
  }

  /// One attempt: fails only when the direction's link is a FlakyLink that
  /// draws a failure (burning its timeout); plain links always succeed.
  [[nodiscard]] TransferAttempt attempt(LinkDirection dir,
                                        DataSize size) override {
    return attempt_transfer(dir == LinkDirection::Up ? *up_ : *down_, size);
  }

  /// Attaches tracing to both directions, labelled "<name>/up" and
  /// "<name>/down". Null pointers detach.
  void set_trace(obs::TraceSink* sink, const obs::TraceClock* clock) override {
    up_->set_trace(sink, clock, name_ + "/up");
    down_->set_trace(sink, clock, name_ + "/down");
  }

 private:
  std::string name_;
  PathSpec spec_;
  std::unique_ptr<Link> up_;
  std::unique_ptr<Link> down_;
};

// --- Calibrated preset table -------------------------------------------------
// One source of constants for both private-link and fabric modes: build a
// NetworkPath with make_path()/make_stochastic_path(), or attach the same
// spec to shared segments with fabric::Fabric::attach().

[[nodiscard]] PathSpec spec_3g();
[[nodiscard]] PathSpec spec_4g();
[[nodiscard]] PathSpec spec_5g();
[[nodiscard]] PathSpec spec_wifi();
/// LAN between UE and an on-premise edge site.
[[nodiscard]] PathSpec spec_edge_lan();
/// WAN leg from access network to a cloud region (what the UE pays on top
/// of the access link when offloading to the cloud instead of the edge).
[[nodiscard]] PathSpec spec_cloud_wan();

/// Deterministic private-link path from a spec.
[[nodiscard]] NetworkPath make_path(const PathSpec& spec);

/// Stochastic private-link path from a spec; `rng` supplies all jitter.
[[nodiscard]] NetworkPath make_stochastic_path(const PathSpec& spec, Rng rng);

// --- Legacy single-latency profile view --------------------------------------
// TechProfile predates PathSpec (one latency/jitter figure for both
// directions). It remains as a thin view over the spec table for existing
// call sites (mobility schedules, tests); new code should use PathSpec.

/// Named technology preset, single latency/jitter for both directions.
struct TechProfile {
  std::string name;
  DataRate uplink;
  DataRate downlink;
  Duration one_way_latency;
  double latency_sigma;  ///< log-normal sigma for the stochastic variant
  double rate_cv;        ///< rate coefficient of variation
};

/// PathSpec from a legacy profile (same figures both directions).
[[nodiscard]] PathSpec to_spec(const TechProfile& p);
/// Legacy profile view of a spec (uplink-direction latency/jitter figures).
[[nodiscard]] TechProfile to_profile(const PathSpec& spec);

/// Known profiles (views over spec_3g() ... spec_cloud_wan()).
[[nodiscard]] TechProfile profile_3g();
[[nodiscard]] TechProfile profile_4g();
[[nodiscard]] TechProfile profile_5g();
[[nodiscard]] TechProfile profile_wifi();
[[nodiscard]] TechProfile profile_edge_lan();
[[nodiscard]] TechProfile profile_cloud_wan();

/// Deterministic path from a profile.
[[nodiscard]] NetworkPath make_fixed_path(const TechProfile& p);

/// Stochastic path from a profile; `rng` supplies all jitter.
[[nodiscard]] NetworkPath make_stochastic_path(const TechProfile& p, Rng rng);

}  // namespace ntco::net
