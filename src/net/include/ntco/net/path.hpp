#pragma once

#include <memory>
#include <string>

#include "ntco/common/contracts.hpp"
#include "ntco/net/link.hpp"

/// \file path.hpp
/// Bidirectional path between the UE and a remote execution site, plus
/// named technology presets calibrated to published measurement studies.

namespace ntco::net {

/// Uplink + downlink pair. Owns its links.
class NetworkPath {
 public:
  NetworkPath(std::string name, std::unique_ptr<Link> uplink,
              std::unique_ptr<Link> downlink)
      : name_(std::move(name)),
        up_(std::move(uplink)),
        down_(std::move(downlink)) {
    NTCO_EXPECTS(up_ != nullptr);
    NTCO_EXPECTS(down_ != nullptr);
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Link& uplink() { return *up_; }
  [[nodiscard]] Link& downlink() { return *down_; }
  [[nodiscard]] const Link& uplink() const { return *up_; }
  [[nodiscard]] const Link& downlink() const { return *down_; }

  /// Round-trip time for a request/response of the given payload sizes.
  [[nodiscard]] Duration round_trip_time(DataSize request, DataSize response) {
    return up_->transfer_time(request) + down_->transfer_time(response);
  }

  /// Attaches tracing to both directions, labelled "<name>/up" and
  /// "<name>/down". Null pointers detach.
  void set_trace(obs::TraceSink* sink, const obs::TraceClock* clock) {
    up_->set_trace(sink, clock, name_ + "/up");
    down_->set_trace(sink, clock, name_ + "/down");
  }

 private:
  std::string name_;
  std::unique_ptr<Link> up_;
  std::unique_ptr<Link> down_;
};

/// Named technology preset. Values follow the ballpark figures offloading
/// papers use (3G per MAUI-era studies; LTE/5G/WiFi per OpenSignal-style
/// averages); the experiments sweep around them anyway.
struct TechProfile {
  std::string name;
  DataRate uplink;
  DataRate downlink;
  Duration one_way_latency;
  double latency_sigma;  ///< log-normal sigma for the stochastic variant
  double rate_cv;        ///< rate coefficient of variation
};

/// Known profiles.
[[nodiscard]] TechProfile profile_3g();
[[nodiscard]] TechProfile profile_4g();
[[nodiscard]] TechProfile profile_5g();
[[nodiscard]] TechProfile profile_wifi();
/// LAN between UE and an on-premise edge site.
[[nodiscard]] TechProfile profile_edge_lan();
/// WAN leg from access network to a cloud region (what the UE pays on top
/// of the access link when offloading to the cloud instead of the edge).
[[nodiscard]] TechProfile profile_cloud_wan();

/// Deterministic path from a profile.
[[nodiscard]] NetworkPath make_fixed_path(const TechProfile& p);

/// Stochastic path from a profile; `rng` supplies all jitter.
[[nodiscard]] NetworkPath make_stochastic_path(const TechProfile& p, Rng rng);

}  // namespace ntco::net
