#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "ntco/common/contracts.hpp"
#include "ntco/common/rng.hpp"
#include "ntco/common/units.hpp"
#include "ntco/obs/trace.hpp"

/// \file link.hpp
/// One-way network link models.
///
/// A transfer of `size` over a link costs one-way latency plus serialisation
/// at the (possibly time-varying) achievable rate. Links are stateful: the
/// stochastic variants consume randomness and the Markov variant remembers
/// its channel state, so the sampling member functions are non-const.

namespace ntco::net {

/// Cumulative per-link accounting, exposed for utilisation and energy maths.
struct LinkStats {
  std::uint64_t transfers = 0;
  DataSize bytes_moved;
  Duration time_busy;  ///< total serialisation + latency time accumulated
};

/// Abstract one-way link.
class Link {
 public:
  virtual ~Link() = default;

  /// Samples the one-way propagation latency for the next transfer.
  [[nodiscard]] virtual Duration sample_latency() = 0;

  /// Samples the achievable throughput for the next transfer.
  [[nodiscard]] virtual DataRate sample_rate() = 0;

  /// Nominal (configured) throughput, for reporting.
  [[nodiscard]] virtual DataRate nominal_rate() const = 0;

  /// Nominal one-way latency, for reporting.
  [[nodiscard]] virtual Duration nominal_latency() const = 0;

  /// Time to move `size` one way: sampled latency + serialisation at the
  /// sampled rate. Records stats. Zero-size transfers still pay latency
  /// (the request header has to travel).
  [[nodiscard]] Duration transfer_time(DataSize size) {
    const Duration lat = sample_latency();
    const DataRate rate = sample_rate();
    NTCO_ENSURES(!lat.is_negative());
    NTCO_ENSURES(!rate.is_zero());
    const Duration total = lat + size / rate;
    ++stats_.transfers;
    stats_.bytes_moved += size;
    stats_.time_busy += total;
    return total;
  }

  [[nodiscard]] const LinkStats& stats() const { return stats_; }

  /// Attaches tracing: "net.link.*" records (state transitions, losses)
  /// stamped with `clock` time and tagged `label`. Both pointers may be
  /// null (disables tracing); decorators forward to their inner link.
  virtual void set_trace(obs::TraceSink* sink, const obs::TraceClock* clock,
                         std::string label) {
    trace_ = sink;
    clock_ = clock;
    label_ = std::move(label);
  }

 protected:
  [[nodiscard]] bool traced() const {
    return trace_ != nullptr && clock_ != nullptr;
  }

  /// Emits one record with the link label prepended; call only when
  /// traced().
  void trace_event(std::string_view name,
                   std::initializer_list<obs::Field> extra) {
    std::vector<obs::Field> fields;
    fields.reserve(extra.size() + 1);
    fields.push_back({"link", std::string_view(label_)});
    fields.insert(fields.end(), extra.begin(), extra.end());
    const obs::TraceEvent ev{clock_->trace_now(), name, fields.data(),
                             fields.size()};
    trace_->record(ev);
  }

 private:
  LinkStats stats_;
  obs::TraceSink* trace_ = nullptr;
  const obs::TraceClock* clock_ = nullptr;
  std::string label_;
};

/// Deterministic link: constant latency and rate. The baseline model and
/// the one analytic cost models reason about.
class FixedLink final : public Link {
 public:
  FixedLink(Duration latency, DataRate rate) : latency_(latency), rate_(rate) {
    NTCO_EXPECTS(!latency.is_negative());
    NTCO_EXPECTS(!rate.is_zero());
  }

  [[nodiscard]] Duration sample_latency() override { return latency_; }
  [[nodiscard]] DataRate sample_rate() override { return rate_; }
  [[nodiscard]] DataRate nominal_rate() const override { return rate_; }
  [[nodiscard]] Duration nominal_latency() const override { return latency_; }

 private:
  Duration latency_;
  DataRate rate_;
};

/// Stochastic link: log-normally distributed latency around a median and
/// normally jittered rate, matching measured WAN behaviour closely enough
/// for trend studies.
class StochasticLink final : public Link {
 public:
  /// `latency_sigma` is the sigma of the underlying normal of the log-normal
  /// latency (0.25 ≈ mild jitter, 1.0 ≈ heavy tail). `rate_cv` is the
  /// coefficient of variation of the rate (truncated at ±3σ and 5% floor).
  StochasticLink(Duration median_latency, double latency_sigma, DataRate rate,
                 double rate_cv, Rng rng)
      : median_latency_(median_latency),
        latency_sigma_(latency_sigma),
        rate_(rate),
        rate_cv_(rate_cv),
        rng_(rng) {
    NTCO_EXPECTS(!median_latency.is_negative());
    NTCO_EXPECTS(latency_sigma >= 0.0);
    NTCO_EXPECTS(!rate.is_zero());
    NTCO_EXPECTS(rate_cv >= 0.0 && rate_cv < 0.34);
  }

  [[nodiscard]] Duration sample_latency() override {
    const double factor = rng_.lognormal(0.0, latency_sigma_);
    return median_latency_ * factor;
  }

  [[nodiscard]] DataRate sample_rate() override {
    double factor = rng_.normal(1.0, rate_cv_);
    factor = std::max(0.05, std::min(factor, 1.0 + 3.0 * rate_cv_));
    return rate_ * factor;
  }

  [[nodiscard]] DataRate nominal_rate() const override { return rate_; }
  [[nodiscard]] Duration nominal_latency() const override {
    return median_latency_;
  }

 private:
  Duration median_latency_;
  double latency_sigma_;
  DataRate rate_;
  double rate_cv_;
  Rng rng_;
};

/// Two-state Markov-modulated link (Gilbert–Elliott style): GOOD delivers
/// the nominal rate, BAD a degraded fraction of it. Each sample advances the
/// chain, producing bursty throughput typical of cellular uplinks.
class MarkovLink final : public Link {
 public:
  /// `p_good_to_bad` / `p_bad_to_good` are per-sample transition
  /// probabilities; `bad_fraction` scales the rate in the BAD state.
  MarkovLink(Duration latency, DataRate good_rate, double bad_fraction,
             double p_good_to_bad, double p_bad_to_good, Rng rng)
      : latency_(latency),
        good_rate_(good_rate),
        bad_fraction_(bad_fraction),
        p_gb_(p_good_to_bad),
        p_bg_(p_bad_to_good),
        rng_(rng) {
    NTCO_EXPECTS(!latency.is_negative());
    NTCO_EXPECTS(!good_rate.is_zero());
    NTCO_EXPECTS(bad_fraction > 0.0 && bad_fraction <= 1.0);
    NTCO_EXPECTS(p_good_to_bad >= 0.0 && p_good_to_bad <= 1.0);
    NTCO_EXPECTS(p_bad_to_good >= 0.0 && p_bad_to_good <= 1.0);
  }

  [[nodiscard]] Duration sample_latency() override { return latency_; }

  [[nodiscard]] DataRate sample_rate() override {
    const bool was_good = good_;
    if (good_) {
      if (rng_.bernoulli(p_gb_)) good_ = false;
    } else {
      if (rng_.bernoulli(p_bg_)) good_ = true;
    }
    if (good_ != was_good && traced())
      trace_event("net.link.state", {{"state", good_ ? "good" : "bad"}});
    return good_ ? good_rate_ : good_rate_ * bad_fraction_;
  }

  [[nodiscard]] DataRate nominal_rate() const override { return good_rate_; }
  [[nodiscard]] Duration nominal_latency() const override { return latency_; }
  [[nodiscard]] bool in_good_state() const { return good_; }

 private:
  Duration latency_;
  DataRate good_rate_;
  double bad_fraction_;
  double p_gb_;
  double p_bg_;
  Rng rng_;
  bool good_ = true;
};

}  // namespace ntco::net
