#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ntco/app/task_graph.hpp"
#include "ntco/common/rng.hpp"
#include "ntco/core/controller.hpp"
#include "ntco/partition/partitioners.hpp"
#include "ntco/profile/profiler.hpp"
#include "ntco/sim/simulator.hpp"

/// \file pipeline.hpp
/// Offloading integrated into a CI/CD release process (the abstract's
/// fourth contribution).
///
/// A release runs Build -> Test -> Package -> Profile -> Partition+Allocate
/// -> Deploy -> Canary -> Promote/Rollback. The profile stage collects
/// instrumented runs and builds the estimated graph; the partition stage is
/// core::OffloadController::prepare(); the canary executes the candidate
/// plan alongside the incumbent on live-like traffic and only promotes if
/// the measured objective does not regress beyond tolerance. DriftWatcher
/// glues the drift detector to release triggering for continuous
/// re-partitioning in operation.

namespace ntco::cicd {

/// Pipeline stage outcome.
struct StageRecord {
  std::string name;
  Duration duration;
  bool ok = true;
  std::string detail;
};

/// Pipeline knobs.
struct PipelineConfig {
  Duration build_time = Duration::minutes(3);
  Duration test_time = Duration::minutes(5);
  Duration package_time = Duration::minutes(1);
  /// Probability a release fails in the test stage (exercises the abort
  /// path; deterministic 0 by default).
  double test_failure_rate = 0.0;

  /// Instrumented runs collected by the profile stage.
  std::size_t profile_runs = 40;
  /// Run-to-run demand variation the instrumentation observes.
  double profile_cv = 0.3;
  /// Wall time per instrumented run (profiling throughput).
  Duration time_per_profile_run = Duration::seconds(30);

  /// Canary executions of candidate and incumbent each.
  std::size_t canary_runs = 10;
  /// Candidate may be at most this much worse than the incumbent on the
  /// measured objective and still promote.
  double regression_tolerance = 0.10;
};

/// Outcome of one release.
struct ReleaseReport {
  std::vector<StageRecord> stages;
  bool promoted = false;
  bool aborted = false;  ///< stopped before canary (test failure)
  double candidate_objective = 0.0;  ///< measured mean objective in canary
  double incumbent_objective = 0.0;  ///< 0 when there is no incumbent
  std::optional<core::DeploymentPlan> plan;  ///< set when promoted
  Duration total_duration;

  [[nodiscard]] const StageRecord* stage(const std::string& name) const;
};

/// Orchestrates releases of one application through the offloading-aware
/// pipeline.
class ReleasePipeline {
 public:
  ReleasePipeline(sim::Simulator& sim, core::OffloadController& controller,
                  PipelineConfig cfg, Rng rng);

  /// Runs one release against `truth` (the application's real behaviour)
  /// using `partitioner`. `incumbent` is the currently promoted plan, if
  /// any. `profile_bias` models a systematically wrong profile (1.0 =
  /// faithful); the canary stage is what catches plans built from bad
  /// profiles. Drives the simulator synchronously until the release
  /// finishes.
  [[nodiscard]] ReleaseReport run_release(
      const app::TaskGraph& truth, const partition::Partitioner& partitioner,
      const core::DeploymentPlan* incumbent, double profile_bias = 1.0);

  /// Objective scalarisation used to judge canaries: the controller's
  /// objective weights applied to measured makespan/energy/money.
  [[nodiscard]] double measured_objective(
      const core::ExecutionReport& r) const;

 private:
  sim::Simulator& sim_;
  core::OffloadController& controller_;
  PipelineConfig cfg_;
  Rng rng_;

  void wait(Duration d);  ///< advances simulated time synchronously
};

/// Measured-objective scalarisation shared by the canary and rollout
/// gates: the controller's weights applied to a run's measured totals.
[[nodiscard]] double measured_objective(const partition::Objective& weights,
                                        const core::ExecutionReport& r);

/// Progressive (blue/green) rollout: instead of a single canary verdict,
/// traffic shifts to the candidate in steps (e.g. 5% -> 25% -> 50% ->
/// 100%), each step gated on the measured objective. A regression aborts
/// the rollout at the *current* traffic share, bounding the blast radius —
/// the production-grade variant of the pipeline's canary stage.
class ProgressiveRollout {
 public:
  struct Config {
    std::vector<double> traffic_steps{0.05, 0.25, 0.50, 1.00};
    /// Executions per step (split candidate/incumbent by traffic share,
    /// each side getting at least one run).
    std::size_t runs_per_step = 20;
    /// Candidate may be at most this much worse at any step.
    double abort_tolerance = 0.10;
  };

  struct StepRecord {
    double traffic = 0.0;
    std::size_t candidate_runs = 0;
    std::size_t incumbent_runs = 0;
    double candidate_objective = 0.0;
    double incumbent_objective = 0.0;
    bool passed = false;
  };

  struct Report {
    std::vector<StepRecord> steps;
    bool completed = false;  ///< candidate reached 100% traffic
    /// Share of production runs that hit the bad candidate before the
    /// abort (the bounded blast radius); 0 for completed rollouts.
    double exposure = 0.0;
  };

  ProgressiveRollout(core::OffloadController& controller, Config cfg);

  /// Rolls `candidate` out against `incumbent` on live traffic of `truth`.
  [[nodiscard]] Report roll(const app::TaskGraph& truth,
                            const core::DeploymentPlan& candidate,
                            const core::DeploymentPlan& incumbent);

 private:
  core::OffloadController& controller_;
  Config cfg_;
};

/// Watches a production demand stream and reports when a release should be
/// triggered because the workload drifted from what the promoted plan was
/// partitioned for.
class DriftWatcher {
 public:
  DriftWatcher(double threshold, std::size_t window)
      : detector_(threshold, window) {}

  /// Feeds one production run's total demand; true if a re-release is due.
  bool observe_run(Cycles total_demand) { return detector_.observe(total_demand); }

  /// Acknowledges the triggered release (re-baselines on current demand).
  void acknowledge() { detector_.reset_baseline(); }

  [[nodiscard]] bool pending() const { return detector_.drifted(); }
  [[nodiscard]] double relative_change() const {
    return detector_.relative_change();
  }

 private:
  profile::DriftDetector detector_;
};

}  // namespace ntco::cicd
