#include "ntco/cicd/pipeline.hpp"

#include <algorithm>

#include "ntco/common/error.hpp"

namespace ntco::cicd {

const StageRecord* ReleaseReport::stage(const std::string& name) const {
  for (const auto& s : stages)
    if (s.name == name) return &s;
  return nullptr;
}

ReleasePipeline::ReleasePipeline(sim::Simulator& sim,
                                 core::OffloadController& controller,
                                 PipelineConfig cfg, Rng rng)
    : sim_(sim), controller_(controller), cfg_(cfg), rng_(rng) {
  if (cfg.test_failure_rate < 0.0 || cfg.test_failure_rate > 1.0)
    throw ConfigError("test_failure_rate must lie in [0, 1]");
  if (cfg.regression_tolerance < 0.0)
    throw ConfigError("regression_tolerance must be non-negative");
  if (cfg.canary_runs == 0) throw ConfigError("canary_runs must be positive");
  if (cfg.profile_runs == 0)
    throw ConfigError("profile_runs must be positive");
}

void ReleasePipeline::wait(Duration d) {
  bool elapsed = false;
  sim_.schedule_after(d, [&elapsed] { elapsed = true; });
  while (!elapsed && sim_.step()) {
  }
}

double measured_objective(const partition::Objective& weights,
                          const core::ExecutionReport& r) {
  return weights.latency_weight * r.makespan.to_seconds() +
         weights.energy_weight * r.device_energy.to_joules() +
         weights.money_weight * r.cloud_cost.to_usd();
}

double ReleasePipeline::measured_objective(
    const core::ExecutionReport& r) const {
  return cicd::measured_objective(controller_.config().objective, r);
}

ProgressiveRollout::ProgressiveRollout(core::OffloadController& controller,
                                       Config cfg)
    : controller_(controller), cfg_(std::move(cfg)) {
  if (cfg_.traffic_steps.empty())
    throw ConfigError("rollout needs at least one traffic step");
  double prev = 0.0;
  for (const double s : cfg_.traffic_steps) {
    if (s <= prev || s > 1.0)
      throw ConfigError("traffic steps must increase within (0, 1]");
    prev = s;
  }
  if (cfg_.traffic_steps.back() != 1.0)
    throw ConfigError("the final traffic step must be 1.0");
  if (cfg_.runs_per_step < 2)
    throw ConfigError("runs_per_step must be at least 2");
}

ProgressiveRollout::Report ProgressiveRollout::roll(
    const app::TaskGraph& truth, const core::DeploymentPlan& candidate,
    const core::DeploymentPlan& incumbent) {
  Report report;
  const auto& weights = controller_.config().objective;
  std::size_t candidate_total = 0, total = 0;

  for (const double traffic : cfg_.traffic_steps) {
    StepRecord step;
    step.traffic = traffic;
    // Split the step's runs by traffic share; both sides get >= 1 run so
    // the comparison is always defined (the 100% step measures the
    // incumbent once as a reference).
    step.candidate_runs = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(cfg_.runs_per_step) * traffic));
    step.incumbent_runs =
        std::max<std::size_t>(1, cfg_.runs_per_step - step.candidate_runs);

    double cand = 0.0, inc = 0.0;
    for (std::size_t i = 0; i < step.candidate_runs; ++i)
      cand += measured_objective(weights,
                                 controller_.execute(candidate, truth));
    for (std::size_t i = 0; i < step.incumbent_runs; ++i)
      inc += measured_objective(weights,
                                controller_.execute(incumbent, truth));
    step.candidate_objective = cand / static_cast<double>(step.candidate_runs);
    step.incumbent_objective = inc / static_cast<double>(step.incumbent_runs);
    step.passed = step.candidate_objective <=
                  step.incumbent_objective * (1.0 + cfg_.abort_tolerance);

    candidate_total += step.candidate_runs;
    total += step.candidate_runs + step.incumbent_runs;
    report.steps.push_back(step);
    if (!step.passed) break;
  }

  report.completed = report.steps.back().passed;
  report.exposure =
      report.completed ? 0.0
                       : static_cast<double>(candidate_total) /
                             static_cast<double>(total);
  return report;
}

ReleaseReport ReleasePipeline::run_release(
    const app::TaskGraph& truth, const partition::Partitioner& partitioner,
    const core::DeploymentPlan* incumbent, double profile_bias) {
  NTCO_EXPECTS(profile_bias > 0.0);
  ReleaseReport report;
  const TimePoint released_at = sim_.now();

  auto run_stage = [&](const std::string& name, Duration d, bool ok,
                       std::string detail = "") {
    wait(d);
    report.stages.push_back(StageRecord{name, d, ok, std::move(detail)});
    return ok;
  };

  // Build -> Test -> Package: conventional stages the offloading steps
  // extend, modelled by their wall time (and the test stage's verdict).
  (void)run_stage("build", cfg_.build_time, true);
  const bool tests_pass = !rng_.bernoulli(cfg_.test_failure_rate);
  if (!run_stage("test", cfg_.test_time, tests_pass,
                 tests_pass ? "" : "unit tests failed")) {
    report.aborted = true;
    report.total_duration = sim_.now() - released_at;
    return report;
  }
  (void)run_stage("package", cfg_.package_time, true);

  // Profile: collect instrumented runs of the new build.
  profile::TraceGenerator gen(truth, cfg_.profile_cv,
                              rng_.fork(rng_.next_u64()), profile_bias);
  profile::DemandProfiler profiler(truth.component_count(),
                                   truth.flow_count());
  for (std::size_t i = 0; i < cfg_.profile_runs; ++i) profiler.ingest(gen.next());
  (void)run_stage("profile",
                  cfg_.time_per_profile_run *
                      static_cast<double>(cfg_.profile_runs),
                  true,
                  std::to_string(cfg_.profile_runs) + " runs");
  const auto estimated = profiler.estimated_graph(truth);

  // Partition + allocate + deploy: the offloading-specific stage.
  core::DeploymentPlan candidate = controller_.prepare(estimated, partitioner);
  (void)run_stage("partition+deploy", Duration::seconds(20), true,
                  partitioner.name());

  // Canary: execute candidate (and incumbent, if any) on live-like traffic
  // against the *true* application behaviour.
  const TimePoint canary_begin = sim_.now();
  double candidate_sum = 0.0;
  for (std::size_t i = 0; i < cfg_.canary_runs; ++i)
    candidate_sum += measured_objective(controller_.execute(candidate, truth));
  report.candidate_objective =
      candidate_sum / static_cast<double>(cfg_.canary_runs);

  if (incumbent != nullptr) {
    double incumbent_sum = 0.0;
    for (std::size_t i = 0; i < cfg_.canary_runs; ++i)
      incumbent_sum +=
          measured_objective(controller_.execute(*incumbent, truth));
    report.incumbent_objective =
        incumbent_sum / static_cast<double>(cfg_.canary_runs);
  }
  report.stages.push_back(StageRecord{"canary", sim_.now() - canary_begin,
                                      true,
                                      std::to_string(cfg_.canary_runs) +
                                          " runs each"});

  // Promote unless the candidate regresses beyond tolerance.
  const bool regression =
      incumbent != nullptr &&
      report.candidate_objective >
          report.incumbent_objective * (1.0 + cfg_.regression_tolerance);
  report.promoted = !regression;
  report.stages.push_back(StageRecord{
      report.promoted ? "promote" : "rollback", Duration::seconds(5), true,
      regression ? "candidate regressed beyond tolerance" : ""});
  wait(Duration::seconds(5));
  if (report.promoted) report.plan = std::move(candidate);

  report.total_duration = sim_.now() - released_at;
  return report;
}

}  // namespace ntco::cicd
