#pragma once

#include <functional>

#include "ntco/continuum/federation.hpp"
#include "ntco/net/mobility.hpp"

/// \file migration.hpp
/// `continuum::MigrationEngine`: the decision core for moving in-flight
/// jobs between sites.
///
/// Checkpoint cost model (DESIGN.md S17): a checkpointed job is a state
/// image of `JobSpec::state` bytes plus a duration-denominated progress
/// credit. For each candidate the engine compares estimated
/// time-to-completion:
///
///   stay      resume_overhead + wait(src) + remaining(src)
///   migrate   transfer(state, src->dst) + resume_overhead
///               + wait(dst) + remaining(dst)
///   restart   transfer(input, UE->dst) + wait(dst) + full_exec(dst)
///
/// and takes the minimum, breaking ties deterministically toward staying,
/// then live migration, then the lowest destination id. Estimates use
/// nominal transport specs only; the chosen transfer is then committed on
/// the real (possibly contended) Transport. When the federation's
/// `live_migration` is off, stay/migrate degenerate to restart — the
/// ablation arm that bench F14 measures live migration against.
///
/// Triggers: spot preemption (`SiteResult::preempted` arriving without
/// intent), site failure (`Federation::fail_site` -> `evacuate`),
/// saturation (`rebalance`), and UE mobility (`follow` over a
/// `net::MobilitySchedule`).

namespace ntco::continuum {

/// Decision core; owned by its Federation (see `Federation::migration()`).
class MigrationEngine {
 public:
  explicit MigrationEngine(Federation& fed) : fed_(fed) {}

  MigrationEngine(const MigrationEngine&) = delete;
  MigrationEngine& operator=(const MigrationEngine&) = delete;

  /// Re-places a job that is off-site (just preempted or parked): picks
  /// stay/migrate/restart by the cost model above and commits it. Parks
  /// the job when no site is alive.
  void decide(JobId id);

  /// Drains every job on `failed`: each is checkpointed (progress kept
  /// when the failure is graceful and live migration is on) and re-placed.
  /// Called by Federation::fail_site.
  void evacuate(SiteId failed, bool graceful);

  /// Moves backend-queued (not yet executing) jobs off sites whose
  /// utilisation exceeds their spill threshold, when another site would
  /// finish them sooner. Running jobs are left alone — interrupting work
  /// to shuffle queues burns checkpoint transfers for nothing.
  void rebalance();

  /// Follows a UE mobility schedule until `until`: at each phase boundary
  /// `prefer` maps the connectivity phase to the UE's nearest site, and
  /// running jobs on other *edge* sites are live-migrated toward it when
  /// the estimated gain exceeds `mobility_min_gain`. Cloud/regional
  /// placements are left where they are — distance to them is unchanged
  /// by roaming between access networks.
  void follow(const net::MobilitySchedule& schedule,
              std::function<SiteId(const net::ConnectivityPhase&)> prefer,
              TimePoint until);

 private:
  /// Estimated completion of `exec_done`-credited `spec` work on site `s`
  /// if resumed there now (wait + remaining exec + resume overhead).
  [[nodiscard]] Duration est_resume(const Site& s, const JobSpec& spec,
                                    Duration exec_done) const;

  /// Issues a checkpoint with migration intent toward `dest`; the
  /// preempted result then flows through Federation::on_result, which
  /// starts the state transfer.
  void drain_to(JobId id, SiteId dest);

  void follow_step();

  Federation& fed_;

  // follow() state (one schedule at a time).
  const net::MobilitySchedule* sched_ = nullptr;
  std::function<SiteId(const net::ConnectivityPhase&)> prefer_;
  TimePoint until_;
  SiteId last_preferred_ = 0;
  bool has_preferred_ = false;
};

}  // namespace ntco::continuum
