#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "ntco/common/price_window.hpp"
#include "ntco/common/units.hpp"
#include "ntco/edgesim/edge_platform.hpp"
#include "ntco/net/transport.hpp"
#include "ntco/serverless/platform.hpp"

/// \file site.hpp
/// `continuum::Site`: one capacity pool of the edge–cloud continuum.
///
/// A site wraps either backend kind — a `serverless::Platform` function
/// (elastic, pay-per-use, possibly spot) or an `edgesim::EdgePlatform`
/// (fixed servers, pay-per-existence) — behind one submit/checkpoint/
/// progress surface plus a `net::Transport` route from the UE. Routes are
/// ordinary Transports, so `PathSpec` presets and `fabric::FabricPath`
/// plug in unchanged and sites contend on shared segments.
///
/// Estimation vs. commitment: `est_*` methods read only nominal figures
/// (`Transport::spec()`, platform pricing math) and never consume
/// randomness or capacity, so the federation can compare candidate sites
/// without perturbing the world. `submit` commits.
///
/// Cost attribution uses the shared `ntco::PriceWindow` from
/// <ntco/common/price_window.hpp> — the same type and first-match helper
/// the serverless platform bills with — so a federation's estimate of a
/// tariff can never drift from what the platform charges.

namespace ntco::continuum {

/// Site handle within a Federation (index into its registry).
using SiteId = std::uint32_t;

/// Backend job handle, valid until the job's callback fires.
using Ticket = std::uint64_t;

/// Continuum tier, ordered nearest-first (placement is edge-first).
enum class SiteTier : std::uint8_t { Edge = 0, Regional = 1, Cloud = 2 };

/// Which platform kind backs the site.
enum class BackendKind : std::uint8_t { Serverless, Edge };

/// Per-site placement knobs.
struct SiteConfig {
  /// Utilisation above which placement spills past this site.
  double spill_threshold = 0.85;
  /// Capacity tier used for serverless-backed submissions.
  serverless::Tier faas_tier = serverless::Tier::OnDemand;
  /// Time-of-day multipliers applied to edge-infra cost attribution
  /// (serverless backends already carry their own in PlatformConfig).
  std::vector<PriceWindow> price_windows;
};

/// Outcome of one run attempt on a site, normalised across backends.
struct SiteResult {
  TimePoint submitted;
  TimePoint started;
  TimePoint finished;
  Duration queue_wait;
  Duration exec_time;    ///< exec rendered by *this* run (partial if preempted)
  Duration exec_credit;  ///< prior exec credited into this run
  Money cost;            ///< marginal compute cost attributed to this run
  bool preempted = false;
};

/// Progress of a live job on a site.
struct Progress {
  bool executing = false;
  Duration consumed;
  Duration remaining;
};

/// One capacity pool: backend + UE route + placement knobs. Movable so a
/// Federation can hold sites by value; backends and routes are borrowed.
class Site {
 public:
  using Callback = std::function<void(const SiteResult&)>;

  /// Serverless-backed site: jobs run as invocations of `fn` at
  /// `cfg.faas_tier`.
  Site(SiteId id, std::string name, SiteTier tier, serverless::Platform& faas,
       serverless::FunctionId fn, net::Transport& ue_route,
       SiteConfig cfg = {});

  /// Edge-backed site: jobs occupy the site's fixed server pool.
  Site(SiteId id, std::string name, SiteTier tier,
       edgesim::EdgePlatform& edge, net::Transport& ue_route,
       SiteConfig cfg = {});

  [[nodiscard]] SiteId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] SiteTier tier() const { return tier_; }
  [[nodiscard]] BackendKind kind() const { return kind_; }
  [[nodiscard]] const SiteConfig& config() const { return cfg_; }

  /// UE <-> site transport (stateful; estimate with `.spec()`).
  [[nodiscard]] net::Transport& ue_route() const { return *route_; }

  // --- Estimation (nominal, side-effect free) -----------------------------

  /// Execution time of `work` on this site's compute.
  [[nodiscard]] Duration est_exec(Cycles work) const;

  /// Queueing delay estimate ahead of a job of `work` submitted now.
  [[nodiscard]] Duration est_wait(Cycles work) const;

  /// Marginal compute cost of running `work` here around time `when`.
  /// Serverless: the platform's own invocation_cost at the site tier.
  /// Edge: exec-time share of the server-hour rate, scaled by the site's
  /// price windows (marginal attribution; the standing infra cost exists
  /// either way).
  [[nodiscard]] Money est_cost(Cycles work, TimePoint when) const;

  /// Instantaneous load fraction (may exceed 1 when a backlog has formed).
  [[nodiscard]] double utilization() const;

  // --- Commitment ---------------------------------------------------------

  /// Starts `work` with `exec_credit` of it already performed (zero for a
  /// fresh job). `done` fires on completion or preemption.
  Ticket submit(Cycles work, Duration exec_credit, Callback done);

  /// Checkpoints a queued or running job: its callback fires now with
  /// `preempted = true` and the partial exec/cost of the run so far.
  bool checkpoint(Ticket t);

  /// Progress of a live job; nullopt once its callback fired.
  [[nodiscard]] std::optional<Progress> in_flight(Ticket t) const;

 private:
  SiteId id_;
  std::string name_;
  SiteTier tier_;
  BackendKind kind_;
  serverless::Platform* faas_ = nullptr;
  serverless::FunctionId fn_ = 0;
  edgesim::EdgePlatform* edge_ = nullptr;
  net::Transport* route_;
  SiteConfig cfg_;
};

}  // namespace ntco::continuum
