#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "ntco/common/units.hpp"
#include "ntco/continuum/site.hpp"
#include "ntco/net/transport.hpp"
#include "ntco/obs/metrics.hpp"
#include "ntco/obs/trace.hpp"
#include "ntco/sim/simulator.hpp"
#include "ntco/stats/accumulator.hpp"

/// \file federation.hpp
/// `continuum::Federation`: the multi-region/multi-tier site registry and
/// deterministic placement policy of the edge–cloud continuum.
///
/// A job moves through phases:
///
///   submit -> [place] -> Transfer(input, UE->site) -> Running
///          -> (complete)  Download(output) -> done
///          -> (preempted) MigrationEngine decision:
///                stay     resubmit here, prior exec credited
///                migrate  Transfer(state, site->site) -> Running elsewhere
///                restart  Transfer(input, UE->site) -> Running, credit lost
///          -> (no site alive) Parked until restore_site
///
/// Placement policy (see DESIGN.md S17): tiers are scanned nearest-first
/// (Edge < Regional < Cloud); the first tier holding an alive,
/// under-threshold, deadline-feasible site wins, cheapest such site first.
/// A price-aware override then routes to a strictly cheaper feasible site
/// when the deadline leaves `price_slack_factor` of headroom. Everything is
/// computed from nominal estimates (`Site::est_*`, `Transport::spec()`), so
/// comparing candidates consumes no randomness and placement is a pure
/// function of registry state — byte-identical across thread counts.

namespace ntco::continuum {

/// Federation-scoped job handle.
using JobId = std::uint64_t;

/// One delay-tolerant job offered to the continuum.
struct JobSpec {
  Cycles work;
  DataSize input;     ///< UE -> site payload before execution
  DataSize output;    ///< site -> UE payload after execution
  DataSize state;     ///< checkpoint image moved by a live migration
  /// Completion budget relative to submission; zero = no deadline.
  Duration deadline;
};

/// Final accounting of one job, delivered to its callback.
struct JobOutcome {
  JobId id = 0;
  SiteId first_site = 0;
  SiteId final_site = 0;
  TimePoint submitted;
  TimePoint finished;
  Duration completion;          ///< finished - submitted
  Duration exec_total;          ///< exec actually consumed across all runs
  Money cost;                   ///< compute cost across all (partial) runs
  std::uint32_t migrations = 0; ///< moves between sites (incl. restarts)
  bool deadline_met = true;
};

/// Federation-wide policy knobs.
struct FederationConfig {
  /// Price-aware placement override: a cheaper site is taken only when
  /// `est_completion * price_slack_factor <= deadline` (deadline-less jobs
  /// always qualify).
  double price_slack_factor = 1.5;
  /// Checkpoint deserialisation pause charged before any resumed run.
  Duration resume_overhead = Duration::millis(50);
  /// Minimum estimated gain before a mobility-triggered move interrupts a
  /// healthy run.
  Duration mobility_min_gain = Duration::millis(10);
  /// When false, preempted jobs always restart from zero elsewhere (the
  /// ablation arm of bench F14): no state transfer, no exec credit.
  bool live_migration = true;
};

/// Aggregate federation accounting.
struct FederationStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t migrations = 0;   ///< live state moves between sites
  std::uint64_t restarts = 0;     ///< placements that dropped earned credit
  std::uint64_t stay_puts = 0;    ///< post-preemption resumes on the same site
  std::uint64_t spillovers = 0;   ///< placements past an alive edge tier
  std::uint64_t reroutes = 0;     ///< transfers re-aimed mid-flight
  std::uint64_t parked = 0;       ///< jobs that had to wait for a restore
  Duration total_completion;
  Duration total_exec;
  Money total_cost;
};

class MigrationEngine;

/// Site registry + placement + job lifecycle. Non-copyable; lives alongside
/// one sim::Simulator. Sites must all be registered before the first
/// submit.
class Federation {
 public:
  using Callback = std::function<void(const JobOutcome&)>;

  Federation(sim::Simulator& sim, FederationConfig cfg = {});
  ~Federation();

  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  /// Registers a site; its `Site::id()` must equal the returned slot
  /// (`site_count()` at call time), keeping ids usable as indices.
  SiteId add_site(Site site);

  /// Declares the inter-site transport used by live migrations from
  /// `from` to `to` (direction matters; uplink carries the state). Pairs
  /// without a route fall back to restart-from-zero.
  void set_route(SiteId from, SiteId to, net::Transport& transport);

  /// Attaches observability: "continuum.*" traces and metrics.
  void attach_observer(obs::TraceSink* trace, obs::MetricsRegistry* metrics);

  /// Places and starts a job. `done` fires once, after the output download
  /// lands back at the UE.
  JobId submit(const JobSpec& spec, Callback done);

  /// Marks a site failed. With `graceful` (default) in-flight jobs are
  /// drained through one last checkpoint — the periodic-checkpoint
  /// assumption of the process-migration literature — and the migration
  /// engine re-places them; abrupt failure loses their progress instead.
  /// New placements skip the site either way.
  void fail_site(SiteId id, bool graceful = true);

  /// Brings a failed site back and re-places any parked jobs.
  void restore_site(SiteId id);

  [[nodiscard]] bool alive(SiteId id) const { return alive_[id]; }
  [[nodiscard]] Site& site(SiteId id) { return sites_[id]; }
  [[nodiscard]] const Site& site(SiteId id) const { return sites_[id]; }
  [[nodiscard]] std::size_t site_count() const { return sites_.size(); }

  /// Share of registered sites currently alive, in [0, 1]. The offload
  /// broker's admission controller consumes this as its capacity probe.
  [[nodiscard]] double capacity_factor() const;

  /// Jobs submitted but not yet delivered.
  [[nodiscard]] std::size_t live_jobs() const { return jobs_.size(); }

  [[nodiscard]] MigrationEngine& migration() { return *engine_; }
  [[nodiscard]] const FederationStats& stats() const { return stats_; }
  [[nodiscard]] const FederationConfig& config() const { return cfg_; }

 private:
  friend class MigrationEngine;

  enum class JobPhase : std::uint8_t {
    Transfer,  ///< input/state in flight toward `dest`
    Running,   ///< on `site` with a live `ticket`
    Draining,  ///< checkpoint issued with migration intent toward `dest`
    Download,  ///< output in flight back to the UE
    Parked,    ///< no alive site; waiting for restore_site
  };

  struct JobState {
    JobSpec spec;
    Callback done;
    TimePoint submitted;
    JobPhase phase = JobPhase::Transfer;
    SiteId first_site = 0;
    SiteId site = 0;    ///< current/previous site
    SiteId dest = 0;    ///< transfer/drain destination
    Ticket ticket = 0;  ///< backend handle while Running/Draining
    Duration exec_done;   ///< credited progress (duration-denominated)
    Duration exec_total;  ///< exec actually consumed (stats)
    Money cost;
    std::uint32_t migrations = 0;
    bool moved = false;           ///< a move is in flight (trace pairing)
    bool first_assigned = false;  ///< first_site recorded yet
  };

  /// Nominal one-way transfer estimate from a direction spec.
  [[nodiscard]] static Duration est_oneway(const net::DirectionSpec& d,
                                           DataSize size);

  /// Deterministic placement; sets `spilled` when an alive edge site was
  /// passed over. Returns site_count() when no site is alive.
  [[nodiscard]] SiteId place(const JobSpec& spec, bool& spilled) const;

  [[nodiscard]] net::Transport* route(SiteId from, SiteId to) const;

  /// Commits `size` bytes over `t` toward `dest`; `arrive` runs on landing
  /// (plus resume overhead when the job carries credit).
  void start_transfer(JobId id, SiteId dest, DataSize size,
                      net::Transport& t);
  void arrive(JobId id);
  void run_on(JobId id, SiteId s);
  void on_result(JobId id, const SiteResult& r);
  /// Commits the move decided for an off-site job with `dest` set: live
  /// state transfer when credit and a route exist, restart otherwise.
  void dispatch_move(JobId id);
  /// Places an off-site job whose image lives UE-side (parked jobs,
  /// rerouted transfers): cheapest-completion alive site, transfer from
  /// the UE. Returns false (and leaves the job untouched) when no site is
  /// alive.
  bool place_from_ue(JobId id);
  void park(JobId id);
  void finish(JobId id);

  sim::Simulator& sim_;
  FederationConfig cfg_;
  std::vector<Site> sites_;
  std::vector<bool> alive_;
  std::map<std::pair<SiteId, SiteId>, net::Transport*> routes_;
  std::map<JobId, JobState> jobs_;
  std::vector<JobId> parked_;
  JobId next_job_ = 1;
  bool abrupt_evac_ = false;  ///< progress is dropped while set
  obs::TraceSink* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;

  /// Cached instrument pointers (null without a registry).
  struct Instruments {
    obs::Counter* jobs = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* deadline_misses = nullptr;
    obs::Counter* migrations = nullptr;
    obs::Counter* restarts = nullptr;
    obs::Counter* stay_puts = nullptr;
    obs::Counter* spillovers = nullptr;
    obs::Counter* reroutes = nullptr;
    obs::Counter* parked = nullptr;
    stats::Accumulator* completion_ms = nullptr;
    stats::Accumulator* job_cost_usd = nullptr;
  };
  Instruments m_;
  FederationStats stats_;
  std::unique_ptr<MigrationEngine> engine_;
};

}  // namespace ntco::continuum
