#include "ntco/continuum/site.hpp"

#include <utility>

#include "ntco/common/contracts.hpp"

namespace ntco::continuum {

Site::Site(SiteId id, std::string name, SiteTier tier,
           serverless::Platform& faas, serverless::FunctionId fn,
           net::Transport& ue_route, SiteConfig cfg)
    : id_(id),
      name_(std::move(name)),
      tier_(tier),
      kind_(BackendKind::Serverless),
      faas_(&faas),
      fn_(fn),
      route_(&ue_route),
      cfg_(std::move(cfg)) {
  validate_price_windows(cfg_.price_windows);
}

Site::Site(SiteId id, std::string name, SiteTier tier,
           edgesim::EdgePlatform& edge, net::Transport& ue_route,
           SiteConfig cfg)
    : id_(id),
      name_(std::move(name)),
      tier_(tier),
      kind_(BackendKind::Edge),
      edge_(&edge),
      route_(&ue_route),
      cfg_(std::move(cfg)) {
  validate_price_windows(cfg_.price_windows);
}

Duration Site::est_exec(Cycles work) const {
  if (kind_ == BackendKind::Serverless) {
    const auto& spec = faas_->spec(fn_);
    return faas_->exec_time(spec.memory, work, spec.parallel_fraction);
  }
  return edge_->exec_time(work);
}

Duration Site::est_wait(Cycles work) const {
  if (kind_ == BackendKind::Serverless) {
    // The platform scales; the account-concurrency throttle only binds at
    // loads far beyond what a federation routes to one function.
    return Duration::zero();
  }
  // FIFO pool: the backlog drains at `servers` jobs per service time. Use
  // this job's own service time as the per-slot proxy — deterministic and
  // monotone in backlog depth, which is what placement needs.
  const auto& cfg = edge_->config();
  const Duration per = cfg.request_overhead + edge_->exec_time(work);
  return per * (static_cast<double>(edge_->queued()) /
                static_cast<double>(cfg.servers));
}

Money Site::est_cost(Cycles work, TimePoint when) const {
  if (kind_ == BackendKind::Serverless) {
    const auto& spec = faas_->spec(fn_);
    const Duration exec =
        faas_->exec_time(spec.memory, work, spec.parallel_fraction);
    return faas_->invocation_cost(spec.memory, exec, when, cfg_.faas_tier);
  }
  const double hours = edge_->exec_time(work).to_seconds() / 3600.0;
  return edge_->config().infra_cost_per_server_hour *
         (hours * price_multiplier_at(cfg_.price_windows, when));
}

double Site::utilization() const {
  if (kind_ == BackendKind::Serverless) {
    const auto limit = faas_->config().account_concurrency;
    return static_cast<double>(faas_->concurrency_in_use()) /
           static_cast<double>(limit);
  }
  return static_cast<double>(edge_->busy() + edge_->queued()) /
         static_cast<double>(edge_->config().servers);
}

Ticket Site::submit(Cycles work, Duration exec_credit, Callback done) {
  NTCO_EXPECTS(done != nullptr);
  if (kind_ == BackendKind::Serverless) {
    return faas_->resume(
        fn_, work, exec_credit,
        [done = std::move(done)](const serverless::InvocationResult& r) {
          SiteResult s;
          s.submitted = r.submitted;
          s.started = r.started;
          s.finished = r.finished;
          s.queue_wait = r.queue_wait;
          s.exec_time = r.exec_time;
          s.exec_credit = r.exec_credit;
          s.cost = r.cost;
          s.preempted = r.preempted;
          done(s);
        },
        cfg_.faas_tier);
  }
  // Capture what edge-cost attribution needs by value: the site may move
  // inside its federation's registry while the job runs.
  edgesim::EdgePlatform* edge = edge_;
  const Money rate = edge->config().infra_cost_per_server_hour;
  std::vector<PriceWindow> windows = cfg_.price_windows;
  return edge->submit_resumed(
      work, exec_credit,
      [rate, windows = std::move(windows),
       done = std::move(done)](const edgesim::EdgeResult& r) {
        SiteResult s;
        s.submitted = r.submitted;
        s.started = r.started;
        s.finished = r.finished;
        s.queue_wait = r.queue_wait;
        s.exec_time = r.exec_time;
        s.exec_credit = r.exec_credit;
        const double hours = r.exec_time.to_seconds() / 3600.0;
        s.cost = rate * (hours * price_multiplier_at(windows, r.started));
        s.preempted = r.preempted;
        done(s);
      });
}

bool Site::checkpoint(Ticket t) {
  if (kind_ == BackendKind::Serverless) return faas_->checkpoint_preempt(t);
  return edge_->checkpoint(t);
}

std::optional<Progress> Site::in_flight(Ticket t) const {
  if (kind_ == BackendKind::Serverless) {
    const auto st = faas_->in_flight(t);
    if (!st) return std::nullopt;
    return Progress{st->executing, st->consumed, st->remaining};
  }
  const auto st = edge_->in_flight(t);
  if (!st) return std::nullopt;
  return Progress{st->executing, st->consumed, st->remaining};
}

}  // namespace ntco::continuum
