#include "ntco/continuum/federation.hpp"

#include <algorithm>
#include <tuple>

#include "ntco/common/contracts.hpp"
#include "ntco/common/error.hpp"
#include "ntco/continuum/migration.hpp"

namespace ntco::continuum {

Federation::Federation(sim::Simulator& sim, FederationConfig cfg)
    : sim_(sim), cfg_(cfg), engine_(std::make_unique<MigrationEngine>(*this)) {
  if (cfg_.price_slack_factor < 1.0)
    throw ConfigError("price_slack_factor must be >= 1");
  if (cfg_.resume_overhead.is_negative())
    throw ConfigError("resume_overhead must be non-negative");
}

Federation::~Federation() = default;

SiteId Federation::add_site(Site site) {
  NTCO_EXPECTS(jobs_.empty());  // registry is fixed before the first job
  const auto slot = static_cast<SiteId>(sites_.size());
  NTCO_EXPECTS(site.id() == slot);
  sites_.push_back(std::move(site));
  alive_.push_back(true);
  return slot;
}

void Federation::set_route(SiteId from, SiteId to, net::Transport& transport) {
  NTCO_EXPECTS(from < sites_.size() && to < sites_.size() && from != to);
  routes_[{from, to}] = &transport;
}

void Federation::attach_observer(obs::TraceSink* trace,
                                 obs::MetricsRegistry* metrics) {
  trace_ = trace;
  metrics_ = metrics;
  m_ = Instruments{};
  if (metrics == nullptr) return;
  m_.jobs = &metrics->counter("continuum.jobs");
  m_.completed = &metrics->counter("continuum.completed");
  m_.deadline_misses = &metrics->counter("continuum.deadline_misses");
  m_.migrations = &metrics->counter("continuum.migrations");
  m_.restarts = &metrics->counter("continuum.restarts");
  m_.stay_puts = &metrics->counter("continuum.stay_puts");
  m_.spillovers = &metrics->counter("continuum.spillovers");
  m_.reroutes = &metrics->counter("continuum.reroutes");
  m_.parked = &metrics->counter("continuum.parked");
  m_.completion_ms = &metrics->summary("continuum.completion_ms");
  m_.job_cost_usd = &metrics->summary("continuum.job_cost_usd");
}

Duration Federation::est_oneway(const net::DirectionSpec& d, DataSize size) {
  return d.latency + size / d.rate;
}

net::Transport* Federation::route(SiteId from, SiteId to) const {
  const auto it = routes_.find({from, to});
  return it == routes_.end() ? nullptr : it->second;
}

double Federation::capacity_factor() const {
  if (sites_.empty()) return 1.0;
  const auto up = static_cast<std::size_t>(
      std::count(alive_.begin(), alive_.end(), true));
  return static_cast<double>(up) / static_cast<double>(sites_.size());
}

SiteId Federation::place(const JobSpec& spec, bool& spilled) const {
  spilled = false;
  const TimePoint now = sim_.now();
  struct Cand {
    SiteId id;
    SiteTier tier;
    double util;
    Duration est;
    Money cost;
  };
  std::vector<Cand> cands;
  bool edge_alive = false;
  for (SiteId s = 0; s < sites_.size(); ++s) {
    if (!alive_[s]) continue;
    const Site& site = sites_[s];
    if (site.tier() == SiteTier::Edge) edge_alive = true;
    const auto& path = site.ue_route().spec();
    const Duration est = est_oneway(path.up, spec.input) +
                         site.est_wait(spec.work) + site.est_exec(spec.work) +
                         est_oneway(path.down, spec.output);
    cands.push_back(
        {s, site.tier(), site.utilization(), est, site.est_cost(spec.work, now)});
  }
  if (cands.empty()) return static_cast<SiteId>(sites_.size());

  const auto feasible = [&spec](const Cand& c) {
    return spec.deadline.is_zero() || c.est <= spec.deadline;
  };

  // Edge-first: the nearest tier with an alive, under-threshold, feasible
  // site wins; within it, cheapest first (then least loaded, then id).
  const Cand* pick = nullptr;
  for (int tier = 0; tier <= 2 && pick == nullptr; ++tier) {
    for (const Cand& c : cands) {
      if (static_cast<int>(c.tier) != tier) continue;
      if (c.util >= sites_[c.id].config().spill_threshold) continue;
      if (!feasible(c)) continue;
      if (pick == nullptr || std::tie(c.cost, c.util, c.id) <
                                 std::tie(pick->cost, pick->util, pick->id))
        pick = &c;
    }
  }
  // Everything saturated or infeasible: soonest completion wins.
  if (pick == nullptr) {
    for (const Cand& c : cands)
      if (pick == nullptr ||
          std::tie(c.est, c.id) < std::tie(pick->est, pick->id))
        pick = &c;
  }
  // Price-aware override: a strictly cheaper under-threshold site is taken
  // when the deadline leaves price_slack_factor of headroom over its
  // estimate. Saturated sites never win on price — their est_cost ignores
  // the backlog a new job would join.
  const Cand* cheap = nullptr;
  for (const Cand& c : cands) {
    if (c.util >= sites_[c.id].config().spill_threshold) continue;
    const bool slack_ok = spec.deadline.is_zero() ||
                          c.est * cfg_.price_slack_factor <= spec.deadline;
    if (!slack_ok) continue;
    if (cheap == nullptr ||
        std::tie(c.cost, c.id) < std::tie(cheap->cost, cheap->id))
      cheap = &c;
  }
  if (cheap != nullptr && cheap->cost < pick->cost) pick = cheap;

  spilled = edge_alive && pick->tier != SiteTier::Edge;
  return pick->id;
}

JobId Federation::submit(const JobSpec& spec, Callback done) {
  NTCO_EXPECTS(done != nullptr);
  NTCO_EXPECTS(!sites_.empty());
  NTCO_EXPECTS(!spec.deadline.is_negative());
  const JobId id = next_job_++;
  JobState job;
  job.spec = spec;
  job.done = std::move(done);
  job.submitted = sim_.now();
  jobs_.emplace(id, std::move(job));
  ++stats_.submitted;
  if (m_.jobs) m_.jobs->add();
  if (trace_)
    obs::emit(trace_, sim_.now(), "continuum.job.submit",
              {{"job", id},
               {"work", spec.work.value()},
               {"input", spec.input},
               {"deadline", spec.deadline}});

  bool spilled = false;
  const SiteId s = place(spec, spilled);
  if (s == sites_.size()) {
    park(id);
    return id;
  }
  if (spilled) {
    ++stats_.spillovers;
    if (m_.spillovers) m_.spillovers->add();
  }
  if (trace_)
    obs::emit(trace_, sim_.now(), "continuum.place",
              {{"job", id}, {"site", s}, {"spilled", spilled}});
  start_transfer(id, s, spec.input, sites_[s].ue_route());
  return id;
}

void Federation::start_transfer(JobId id, SiteId dest, DataSize size,
                                net::Transport& t) {
  JobState& job = jobs_.at(id);
  job.phase = JobPhase::Transfer;
  job.dest = dest;
  if (!job.first_assigned) {
    job.first_assigned = true;
    job.first_site = dest;
  }
  Duration dur = t.uplink_time(size);  // commits the transfer
  if (!job.exec_done.is_zero()) dur += cfg_.resume_overhead;
  sim_.schedule_after(dur, [this, id] { arrive(id); });
}

void Federation::arrive(JobId id) {
  JobState& job = jobs_.at(id);
  if (alive_[job.dest]) {
    run_on(id, job.dest);
    return;
  }
  // Destination died while the transfer was in flight: re-place from the
  // UE-side image (the bytes never landed anywhere usable).
  const SiteId dead = job.dest;
  ++stats_.reroutes;
  ++job.migrations;
  if (m_.reroutes) m_.reroutes->add();
  if (!place_from_ue(id)) {
    park(id);
    return;
  }
  if (trace_)
    obs::emit(trace_, sim_.now(), "continuum.migrate.reroute",
              {{"job", id}, {"from", dead}, {"to", jobs_.at(id).dest}});
}

bool Federation::place_from_ue(JobId id) {
  JobState& job = jobs_.at(id);
  const bool credited = cfg_.live_migration && !job.exec_done.is_zero();
  const DataSize size = credited ? job.spec.state : job.spec.input;
  const Site* best = nullptr;
  Duration best_est;
  for (SiteId s = 0; s < sites_.size(); ++s) {
    if (!alive_[s]) continue;
    const Site& site = sites_[s];
    const Duration rem = credited
                             ? (site.est_exec(job.spec.work) > job.exec_done
                                    ? site.est_exec(job.spec.work) - job.exec_done
                                    : Duration::zero())
                             : site.est_exec(job.spec.work);
    const Duration est = est_oneway(site.ue_route().spec().up, size) +
                         site.est_wait(job.spec.work) + rem;
    if (best == nullptr || est < best_est) {
      best = &site;
      best_est = est;
    }
  }
  if (best == nullptr) return false;
  if (!credited) job.exec_done = Duration::zero();
  job.moved = true;
  start_transfer(id, best->id(), size, best->ue_route());
  return true;
}

void Federation::run_on(JobId id, SiteId s) {
  JobState& job = jobs_.at(id);
  job.site = s;
  job.phase = JobPhase::Running;
  if (job.moved) {
    job.moved = false;
    if (trace_)
      obs::emit(trace_, sim_.now(), "continuum.migrate.end",
                {{"job", id}, {"to", s}, {"credit", job.exec_done}});
  }
  job.ticket = sites_[s].submit(
      job.spec.work, job.exec_done,
      [this, id](const SiteResult& r) { on_result(id, r); });
}

void Federation::on_result(JobId id, const SiteResult& r) {
  JobState& job = jobs_.at(id);
  job.ticket = 0;
  job.exec_total += r.exec_time;
  job.cost += r.cost;
  job.exec_done = r.exec_credit + r.exec_time;

  if (!r.preempted) {
    job.phase = JobPhase::Download;
    const Duration down =
        sites_[job.site].ue_route().downlink_time(job.spec.output);
    sim_.schedule_after(down, [this, id] { finish(id); });
    return;
  }
  if (!cfg_.live_migration || abrupt_evac_) job.exec_done = Duration::zero();
  if (job.phase == JobPhase::Draining) {
    dispatch_move(id);
    return;
  }
  engine_->decide(id);
}

void Federation::dispatch_move(JobId id) {
  JobState& job = jobs_.at(id);
  const SiteId from = job.site;
  const SiteId to = job.dest;
  ++job.migrations;
  net::Transport* r = (cfg_.live_migration && !job.exec_done.is_zero())
                          ? route(from, to)
                          : nullptr;
  if (r != nullptr) {
    ++stats_.migrations;
    if (m_.migrations) m_.migrations->add();
    if (trace_)
      obs::emit(trace_, sim_.now(), "continuum.migrate.begin",
                {{"job", id},
                 {"from", from},
                 {"to", to},
                 {"state", job.spec.state},
                 {"credit", job.exec_done}});
    job.moved = true;
    start_transfer(id, to, job.spec.state, *r);
    return;
  }
  // No usable route (or credit dropped): restart from zero, input
  // re-uploaded from the UE over the destination's own access route.
  job.exec_done = Duration::zero();
  ++stats_.restarts;
  if (m_.restarts) m_.restarts->add();
  if (trace_)
    obs::emit(trace_, sim_.now(), "continuum.migrate.restart",
              {{"job", id}, {"from", from}, {"to", to}});
  job.moved = true;
  start_transfer(id, to, job.spec.input, sites_[to].ue_route());
}

void Federation::park(JobId id) {
  JobState& job = jobs_.at(id);
  job.phase = JobPhase::Parked;
  parked_.push_back(id);
  ++stats_.parked;
  if (m_.parked) m_.parked->add();
  if (trace_) obs::emit(trace_, sim_.now(), "continuum.job.parked", {{"job", id}});
}

void Federation::fail_site(SiteId id, bool graceful) {
  NTCO_EXPECTS(id < sites_.size());
  if (!alive_[id]) return;
  alive_[id] = false;
  if (trace_)
    obs::emit(trace_, sim_.now(), "continuum.site.fail",
              {{"site", id}, {"graceful", graceful}});
  engine_->evacuate(id, graceful);
}

void Federation::restore_site(SiteId id) {
  NTCO_EXPECTS(id < sites_.size());
  if (alive_[id]) return;
  alive_[id] = true;
  if (trace_)
    obs::emit(trace_, sim_.now(), "continuum.site.restore",
              {{"site", id}, {"parked", static_cast<std::uint64_t>(
                                  parked_.size())}});
  std::vector<JobId> waiting;
  waiting.swap(parked_);
  for (const JobId j : waiting) {
    if (!place_from_ue(j)) park(j);
  }
}

void Federation::finish(JobId id) {
  const auto it = jobs_.find(id);
  NTCO_EXPECTS(it != jobs_.end());
  JobState job = std::move(it->second);
  jobs_.erase(it);

  JobOutcome out;
  out.id = id;
  out.first_site = job.first_site;
  out.final_site = job.site;
  out.submitted = job.submitted;
  out.finished = sim_.now();
  out.completion = out.finished - out.submitted;
  out.exec_total = job.exec_total;
  out.cost = job.cost;
  out.migrations = job.migrations;
  out.deadline_met =
      job.spec.deadline.is_zero() || out.completion <= job.spec.deadline;

  ++stats_.completed;
  stats_.total_completion += out.completion;
  stats_.total_exec += out.exec_total;
  stats_.total_cost += out.cost;
  if (m_.completed) m_.completed->add();
  if (m_.completion_ms) m_.completion_ms->add(out.completion.to_millis());
  if (m_.job_cost_usd) m_.job_cost_usd->add(out.cost.to_usd());
  if (!out.deadline_met) {
    ++stats_.deadline_misses;
    if (m_.deadline_misses) m_.deadline_misses->add();
  }
  if (trace_)
    obs::emit(trace_, sim_.now(), "continuum.job.done",
              {{"job", id},
               {"site", out.final_site},
               {"migrations", out.migrations},
               {"cost", out.cost},
               {"deadline_met", out.deadline_met}});
  job.done(out);
}

}  // namespace ntco::continuum
