#include "ntco/continuum/migration.hpp"

#include <optional>
#include <tuple>
#include <vector>

#include "ntco/common/contracts.hpp"
#include "ntco/net/transport.hpp"
#include "ntco/obs/trace.hpp"

namespace ntco::continuum {

namespace {

Duration remaining_exec(const Site& s, const JobSpec& spec,
                        Duration exec_done) {
  const Duration full = s.est_exec(spec.work);
  return full > exec_done ? full - exec_done : Duration::zero();
}

}  // namespace

Duration MigrationEngine::est_resume(const Site& s, const JobSpec& spec,
                                     Duration exec_done) const {
  const Duration overhead =
      exec_done.is_zero() ? Duration::zero() : fed_.cfg_.resume_overhead;
  return overhead + s.est_wait(spec.work) + remaining_exec(s, spec, exec_done);
}

void MigrationEngine::decide(JobId id) {
  Federation::JobState& job = fed_.jobs_.at(id);
  NTCO_EXPECTS(job.ticket == 0);
  const JobSpec& spec = job.spec;
  const SiteId src = job.site;
  const bool credited = fed_.cfg_.live_migration && !job.exec_done.is_zero();

  // Options ranked by (estimated completion, kind, destination id) with
  // kind 0 = stay, 1 = live migrate, 2 = restart: deterministic and biased
  // toward the least disruptive action on ties.
  struct Choice {
    Duration est;
    int kind;
    SiteId dest;
  };
  std::optional<Choice> best;
  const auto consider = [&best](Duration est, int kind, SiteId dest) {
    if (!best || std::tie(est, kind, dest) <
                     std::tie(best->est, best->kind, best->dest))
      best = Choice{est, kind, dest};
  };

  if (fed_.alive_[src])
    consider(est_resume(fed_.sites_[src], spec, job.exec_done), 0, src);
  for (SiteId d = 0; d < fed_.sites_.size(); ++d) {
    if (!fed_.alive_[d] || d == src) continue;
    const Site& dst = fed_.sites_[d];
    net::Transport* r = credited ? fed_.route(src, d) : nullptr;
    if (r != nullptr) {
      consider(Federation::est_oneway(r->spec().up, spec.state) +
                   est_resume(dst, spec, job.exec_done),
               1, d);
    } else {
      consider(Federation::est_oneway(dst.ue_route().spec().up, spec.input) +
                   est_resume(dst, spec, Duration::zero()),
               2, d);
    }
  }
  if (!best) {
    fed_.park(id);
    return;
  }

  if (best->kind == 0) {
    ++fed_.stats_.stay_puts;
    if (fed_.m_.stay_puts) fed_.m_.stay_puts->add();
    if (fed_.trace_)
      obs::emit(fed_.trace_, fed_.sim_.now(), "continuum.migrate.stay",
                {{"job", id}, {"site", src}, {"credit", job.exec_done}});
    // Resume in place after the checkpoint-restore pause; no transfer.
    job.phase = Federation::JobPhase::Transfer;
    job.dest = src;
    const Duration overhead =
        job.exec_done.is_zero() ? Duration::zero() : fed_.cfg_.resume_overhead;
    fed_.sim_.schedule_after(overhead, [this, id] { fed_.arrive(id); });
    return;
  }
  job.dest = best->dest;
  fed_.dispatch_move(id);
}

void MigrationEngine::evacuate(SiteId failed, bool graceful) {
  // Snapshot first: checkpoints deliver results synchronously and those
  // callbacks re-place jobs, mutating the table we'd be iterating.
  std::vector<JobId> on_site;
  for (const auto& [id, job] : fed_.jobs_) {
    if (job.phase == Federation::JobPhase::Running && job.site == failed)
      on_site.push_back(id);
  }
  fed_.abrupt_evac_ = !graceful;
  for (const JobId id : on_site) {
    const auto it = fed_.jobs_.find(id);
    if (it == fed_.jobs_.end() ||
        it->second.phase != Federation::JobPhase::Running)
      continue;
    fed_.sites_[failed].checkpoint(it->second.ticket);
  }
  fed_.abrupt_evac_ = false;
}

void MigrationEngine::rebalance() {
  std::vector<JobId> queued;
  for (const auto& [id, job] : fed_.jobs_) {
    if (job.phase != Federation::JobPhase::Running) continue;
    const Site& s = fed_.sites_[job.site];
    if (s.utilization() < s.config().spill_threshold) continue;
    const auto pr = s.in_flight(job.ticket);
    if (pr && !pr->executing) queued.push_back(id);
  }
  for (const JobId id : queued) {
    const auto it = fed_.jobs_.find(id);
    if (it == fed_.jobs_.end() ||
        it->second.phase != Federation::JobPhase::Running)
      continue;
    Federation::JobState& job = it->second;
    const Site& src = fed_.sites_[job.site];
    const Duration stay = src.est_wait(job.spec.work) +
                          remaining_exec(src, job.spec, job.exec_done);
    const Site* best = nullptr;
    Duration best_est;
    for (SiteId d = 0; d < fed_.sites_.size(); ++d) {
      if (!fed_.alive_[d] || d == job.site) continue;
      const Site& dst = fed_.sites_[d];
      // Queued jobs carry no useful state yet: moving one is an input
      // re-upload from the UE, not a live migration.
      const Duration est =
          Federation::est_oneway(dst.ue_route().spec().up, job.spec.input) +
          est_resume(dst, job.spec, Duration::zero());
      if (best == nullptr || est < best_est) {
        best = &dst;
        best_est = est;
      }
    }
    if (best != nullptr && best_est < stay) drain_to(id, best->id());
  }
}

void MigrationEngine::drain_to(JobId id, SiteId dest) {
  Federation::JobState& job = fed_.jobs_.at(id);
  NTCO_EXPECTS(job.phase == Federation::JobPhase::Running);
  job.dest = dest;
  job.phase = Federation::JobPhase::Draining;
  fed_.sites_[job.site].checkpoint(job.ticket);
}

void MigrationEngine::follow(
    const net::MobilitySchedule& schedule,
    std::function<SiteId(const net::ConnectivityPhase&)> prefer,
    TimePoint until) {
  NTCO_EXPECTS(prefer != nullptr);
  sched_ = &schedule;
  prefer_ = std::move(prefer);
  until_ = until;
  has_preferred_ = false;
  follow_step();
}

void MigrationEngine::follow_step() {
  const TimePoint now = fed_.sim_.now();
  if (now > until_) return;
  const auto& phase = sched_->phase_at(now);
  const SiteId pref = prefer_(phase);
  if (!has_preferred_ || pref != last_preferred_) {
    has_preferred_ = true;
    last_preferred_ = pref;
    if (fed_.trace_)
      obs::emit(fed_.trace_, now, "continuum.mobility.phase",
                {{"tech", std::string_view(phase.tech.name)},
                 {"preferred", pref}});
    if (fed_.alive_[pref] && fed_.cfg_.live_migration) {
      std::vector<JobId> running;
      for (const auto& [id, job] : fed_.jobs_) {
        if (job.phase == Federation::JobPhase::Running && job.site != pref &&
            fed_.sites_[job.site].tier() == SiteTier::Edge)
          running.push_back(id);
      }
      for (const JobId id : running) {
        const auto it = fed_.jobs_.find(id);
        if (it == fed_.jobs_.end() ||
            it->second.phase != Federation::JobPhase::Running)
          continue;
        Federation::JobState& job = it->second;
        const Site& src = fed_.sites_[job.site];
        net::Transport* r = fed_.route(job.site, pref);
        if (r == nullptr) continue;
        const auto pr = src.in_flight(job.ticket);
        if (!pr) continue;
        const Duration done = job.exec_done + pr->consumed;
        const Site& dst = fed_.sites_[pref];
        // Keep running vs. move: both legs include the output download,
        // which is where UE proximity actually pays.
        const Duration stay =
            (pr->executing ? Duration::zero() : src.est_wait(job.spec.work)) +
            pr->remaining +
            Federation::est_oneway(src.ue_route().spec().down,
                                   job.spec.output);
        const Duration move =
            Federation::est_oneway(r->spec().up, job.spec.state) +
            est_resume(dst, job.spec, done) +
            Federation::est_oneway(dst.ue_route().spec().down,
                                   job.spec.output);
        if (move + fed_.cfg_.mobility_min_gain < stay) drain_to(id, pref);
      }
    }
  }
  const Duration rem = sched_->remaining_in_phase(now);
  if (now + rem <= until_)
    fed_.sim_.schedule_after(rem, [this] { follow_step(); });
}

}  // namespace ntco::continuum
