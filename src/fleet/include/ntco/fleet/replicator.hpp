#pragma once

#include <algorithm>
#include <cstdint>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "ntco/common/contracts.hpp"
#include "ntco/common/rng.hpp"
#include "ntco/fleet/thread_pool.hpp"

/// \file replicator.hpp
/// Deterministic sharded replica execution — the fleet engine's core.
///
/// A replica is one independent simulation (its own sim::Simulator, its
/// own platforms, its own Rng substream). The Replicator runs N replicas
/// across a ThreadPool and returns their results *in shard order*, so any
/// reduction the caller performs is a sequential left fold over a
/// thread-count-independent sequence: merged output is byte-identical
/// whether the fleet ran on 1 worker or 16. Two rules make that hold:
///
///  1. Randomness is keyed by shard, never by thread: shard s draws from
///     Rng::stream(seed, s) regardless of which worker executes it.
///  2. Results land in per-shard slots; nothing is reduced concurrently.
///
/// Replica bodies must not share mutable state (each owns its world); the
/// pool provides the happens-before edge between a shard's writes and the
/// reducing thread's reads.

namespace ntco::fleet {

/// Everything a replica body receives. `rng` is the shard's private
/// substream — a pure function of (seed, shard), so results cannot depend
/// on NTCO_THREADS.
struct ShardContext {
  std::size_t shard = 0;
  std::size_t shard_count = 1;
  Rng rng{0};
};

/// Runs shard bodies across a worker pool and reduces in shard order.
class Replicator {
 public:
  /// `threads == 0` means default_thread_count() (NTCO_THREADS override,
  /// else hardware concurrency).
  explicit Replicator(std::uint64_t seed, std::size_t threads = 0)
      : seed_(seed),
        threads_(threads == 0 ? default_thread_count() : threads) {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Runs `shards` replicas of `body(ShardContext&)` and returns their
  /// results in shard order. If any body throws, the first exception in
  /// shard order is rethrown after all shards finished (so no replica is
  /// abandoned mid-run).
  template <class Fn>
  [[nodiscard]] auto map(std::size_t shards, Fn&& body)
      -> std::vector<std::decay_t<std::invoke_result_t<Fn&, ShardContext&>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, ShardContext&>>;
    NTCO_EXPECTS(shards > 0);
    std::vector<std::optional<R>> slots(shards);
    std::vector<std::exception_ptr> errors(shards);
    auto run_shard = [&](std::size_t s) {
      ShardContext ctx{s, shards, Rng::stream(seed_, s)};
      try {
        slots[s].emplace(body(ctx));
      } catch (...) {
        errors[s] = std::current_exception();
      }
    };
    if (threads_ == 1 || shards == 1) {
      for (std::size_t s = 0; s < shards; ++s) run_shard(s);
    } else {
      ThreadPool pool(std::min(threads_, shards));
      for (std::size_t s = 0; s < shards; ++s)
        pool.submit([&run_shard, s] { run_shard(s); });
      pool.wait_idle();
    }
    for (std::size_t s = 0; s < shards; ++s)
      if (errors[s]) std::rethrow_exception(errors[s]);
    std::vector<R> out;
    out.reserve(shards);
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

  /// map() followed by an in-shard-order fold:
  /// `merge(acc, result, shard)` is called for shard 0, 1, 2, ... — never
  /// concurrently — so any merge operation (even order-sensitive ones like
  /// gauge last-write-wins or trace concatenation) is deterministic.
  template <class Acc, class Fn, class Merge>
  [[nodiscard]] Acc reduce(std::size_t shards, Acc init, Fn&& body,
                           Merge&& merge) {
    auto results = map(shards, std::forward<Fn>(body));
    for (std::size_t s = 0; s < results.size(); ++s)
      merge(init, std::move(results[s]), s);
    return init;
  }

 private:
  std::uint64_t seed_;
  std::size_t threads_;
};

}  // namespace ntco::fleet
