#pragma once

#include <algorithm>
#include <cstdint>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "ntco/common/contracts.hpp"
#include "ntco/common/rng.hpp"
#include "ntco/dataplane/engine.hpp"
#include "ntco/fleet/thread_pool.hpp"

/// \file replicator.hpp
/// Deterministic sharded replica execution — the fleet engine's core.
///
/// A replica is one independent simulation (its own sim::Simulator, its
/// own platforms, its own Rng substream). The Replicator dispatches N
/// replicas through the serving dataplane — per-worker lock-free SPSC
/// request rings, an MPSC completion ring, and a fixed-width epoch barrier
/// (dataplane::Engine) — and returns their results *in shard order*, so
/// any reduction the caller performs is a sequential left fold over a
/// thread-count-independent sequence: merged output is byte-identical
/// whether the fleet ran on 1 worker or 16. Three rules make that hold:
///
///  1. Randomness is keyed by shard, never by thread: shard s draws from
///     Rng::stream(seed, s) regardless of which worker executes it.
///  2. Results land in per-shard slots; nothing is reduced concurrently.
///  3. Epoch membership is a pure function of the shard index (fixed
///     epoch width), so the engine's dynamic worker scaling can only move
///     *where* a shard runs, never where its result lands or when it is
///     merged relative to its neighbours.
///
/// Replica bodies must not share mutable state (each owns its world); the
/// completion ring's release/acquire pair provides the happens-before edge
/// between a shard's writes and the reducing thread's reads.

namespace ntco::fleet {

/// Everything a replica body receives. `rng` is the shard's private
/// substream — a pure function of (seed, shard), so results cannot depend
/// on NTCO_THREADS.
struct ShardContext {
  std::size_t shard = 0;
  std::size_t shard_count = 1;
  Rng rng{0};
};

/// Runs shard bodies across the dataplane engine and reduces in shard
/// order.
class Replicator {
 public:
  /// `threads == 0` means default_thread_count() (NTCO_THREADS override,
  /// else hardware concurrency).
  explicit Replicator(std::uint64_t seed, std::size_t threads = 0)
      : seed_(seed),
        threads_(threads == 0 ? default_thread_count() : threads) {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Dataplane knobs for the parallel path (epoch width, ring capacity,
  /// controller policy). The worker count is always min(threads, shards)
  /// regardless of `cfg.workers`. Epoch width shapes performance and
  /// epoch_done granularity only — results are identical for any width.
  void set_engine_config(const dataplane::EngineConfig& cfg) {
    engine_cfg_ = cfg;
  }
  [[nodiscard]] const dataplane::EngineConfig& engine_config() const {
    return engine_cfg_;
  }

  /// What the dataplane measured during the last parallel map/reduce:
  /// epochs, per-core items and liveness, scaling events, ring occupancy.
  /// Zeroed after a serial run (threads==1 or shards==1 bypasses the
  /// engine). Timing-dependent — report it, never branch on it in-sim.
  [[nodiscard]] const dataplane::EngineRunStats& last_dataplane_run() const {
    return last_run_;
  }

  /// Runs `shards` replicas of `body(ShardContext&)` and returns their
  /// results in shard order. If any body throws, the first exception in
  /// shard order is rethrown after all shards finished (so no replica is
  /// abandoned mid-run).
  template <class Fn>
  [[nodiscard]] auto map(std::size_t shards, Fn&& body)
      -> std::vector<std::decay_t<std::invoke_result_t<Fn&, ShardContext&>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, ShardContext&>>;
    NTCO_EXPECTS(shards > 0);
    std::vector<std::optional<R>> slots(shards);
    std::vector<std::exception_ptr> errors(shards);
    auto run_shard = [&](std::size_t s) {
      ShardContext ctx{s, shards, Rng::stream(seed_, s)};
      try {
        slots[s].emplace(body(ctx));
      } catch (...) {
        errors[s] = std::current_exception();
      }
    };
    dispatch(shards, run_shard, nullptr, nullptr);
    for (std::size_t s = 0; s < shards; ++s)
      if (errors[s]) std::rethrow_exception(errors[s]);
    std::vector<R> out;
    out.reserve(shards);
    for (auto& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

  /// map() with a streaming in-shard-order fold: `merge(acc, result, s)`
  /// is called for shard 0, 1, 2, ... — never concurrently — so any merge
  /// operation (even order-sensitive ones like gauge last-write-wins or
  /// trace concatenation) is deterministic. Merging happens per epoch, as
  /// soon as the barrier publishes a shard range: a merged replica's slot
  /// is freed immediately, so peak memory is one epoch of results plus the
  /// accumulator — not all N replica worlds — which is what lets the 1M-user
  /// sweep fit. If a body throws, merging stops at the first failed shard
  /// (the partial accumulator is discarded) and that exception is rethrown
  /// once all shards have finished.
  template <class Acc, class Fn, class Merge>
  [[nodiscard]] Acc reduce(std::size_t shards, Acc init, Fn&& body,
                           Merge&& merge) {
    using R = std::decay_t<std::invoke_result_t<Fn&, ShardContext&>>;
    NTCO_EXPECTS(shards > 0);
    std::vector<std::optional<R>> slots(shards);
    std::vector<std::exception_ptr> errors(shards);
    auto run_shard = [&](std::size_t s) {
      ShardContext ctx{s, shards, Rng::stream(seed_, s)};
      try {
        slots[s].emplace(body(ctx));
      } catch (...) {
        errors[s] = std::current_exception();
      }
    };
    bool poisoned = false;
    auto drain = [&](std::size_t begin, std::size_t end) {
      for (std::size_t s = begin; s < end && !poisoned; ++s) {
        if (errors[s]) {
          poisoned = true;
          break;
        }
        merge(init, std::move(*slots[s]), s);
        slots[s].reset();
      }
    };
    dispatch(shards, run_shard, &epoch_trampoline<decltype(drain)>, &drain);
    for (std::size_t s = 0; s < shards; ++s)
      if (errors[s]) std::rethrow_exception(errors[s]);
    return init;
  }

 private:
  /// Bridges the engine's function-pointer ABI (no std::function on the
  /// dispatch path) back to the caller's closure.
  template <class Fn>
  static void shard_trampoline(void* ctx, std::size_t shard) {
    (*static_cast<Fn*>(ctx))(shard);
  }
  template <class Fn>
  static void epoch_trampoline(void* ctx, std::size_t begin,
                               std::size_t end) {
    (*static_cast<Fn*>(ctx))(begin, end);
  }

  /// Runs all shards. Serial when the pool (or the problem) is width one —
  /// same epoch segmentation, same callback order, no threads.
  template <class Fn>
  void dispatch(std::size_t shards, Fn& run_shard,
                dataplane::EpochFn epoch_done, void* epoch_ctx) {
    if (threads_ == 1 || shards == 1) {
      const std::size_t width =
          std::max<std::size_t>(engine_cfg_.epoch_width, 1);
      for (std::size_t next = 0; next < shards;) {
        const std::size_t end = std::min(shards, next + width);
        for (std::size_t s = next; s < end; ++s) run_shard(s);
        if (epoch_done != nullptr) epoch_done(epoch_ctx, next, end);
        next = end;
      }
      last_run_ = dataplane::EngineRunStats{};
      return;
    }
    dataplane::EngineConfig cfg = engine_cfg_;
    cfg.workers = std::min(threads_, shards);
    dataplane::Engine engine(cfg);
    engine.run(shards, &shard_trampoline<Fn>, &run_shard, epoch_done,
               epoch_ctx);
    last_run_ = engine.last_run();
  }

  std::uint64_t seed_;
  std::size_t threads_;
  dataplane::EngineConfig engine_cfg_;
  dataplane::EngineRunStats last_run_;
};

}  // namespace ntco::fleet
