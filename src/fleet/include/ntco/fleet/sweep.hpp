#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ntco/common/contracts.hpp"
#include "ntco/fleet/replicator.hpp"

/// \file sweep.hpp
/// Parameter sweeps on the fleet — the replacement for the hand-rolled
/// `for (param : points) for (rep : replicas)` outer loops of the bench
/// binaries.
///
/// Every (point, replica) pair becomes one fleet shard; all pairs across
/// all points run concurrently on one pool (so a sweep with a slow point
/// keeps every worker busy instead of serialising point by point), and
/// results come back grouped by point with replicas in replica order.
///
/// Seeding: pair (p, r) draws from Rng::stream(seed, p).stream(r) — the
/// nested derivation guarded by rng_test — so a point's streams do not
/// move when the replica count or the point list's tail changes.

namespace ntco::fleet {

/// Everything a sweep body receives about its (point, replica) shard.
struct ReplicaContext {
  std::size_t point = 0;          ///< index into the sweep's point vector
  std::size_t replica = 0;        ///< replica index within the point
  std::size_t replica_count = 1;  ///< replicas per point
  Rng rng{0};
};

class Sweep {
 public:
  /// `threads == 0` means default_thread_count() (NTCO_THREADS override).
  explicit Sweep(std::uint64_t seed, std::size_t threads = 0)
      : seed_(seed), replicator_(seed, threads) {}

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::size_t threads() const { return replicator_.threads(); }

  /// The underlying Replicator — dataplane engine knobs and run stats
  /// (epochs, per-core liveness) for sweeps that report them.
  [[nodiscard]] Replicator& replicator() { return replicator_; }
  [[nodiscard]] const Replicator& replicator() const { return replicator_; }

  /// Runs `replicas` evaluations of `body(point_value, ReplicaContext&)`
  /// per point. Returns results grouped by point (point order), replicas
  /// in replica order within each group.
  template <class P, class Fn>
  [[nodiscard]] auto replicate(const std::vector<P>& points,
                               std::size_t replicas, Fn&& body)
      -> std::vector<std::vector<
          std::decay_t<std::invoke_result_t<Fn&, const P&, ReplicaContext&>>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, const P&, ReplicaContext&>>;
    NTCO_EXPECTS(!points.empty());
    NTCO_EXPECTS(replicas > 0);
    auto flat =
        replicator_.map(points.size() * replicas, [&](ShardContext& sc) {
          const std::size_t p = sc.shard / replicas;
          const std::size_t r = sc.shard % replicas;
          ReplicaContext ctx{p, r, replicas, Rng::stream(seed_, p).stream(r)};
          return body(points[p], ctx);
        });
    std::vector<std::vector<R>> grouped(points.size());
    for (std::size_t p = 0; p < points.size(); ++p) {
      grouped[p].reserve(replicas);
      for (std::size_t r = 0; r < replicas; ++r)
        grouped[p].push_back(std::move(flat[p * replicas + r]));
    }
    return grouped;
  }

  /// Single evaluation per point; results in point order.
  template <class P, class Fn>
  [[nodiscard]] auto map(const std::vector<P>& points, Fn&& body)
      -> std::vector<
          std::decay_t<std::invoke_result_t<Fn&, const P&, ReplicaContext&>>> {
    using R = std::decay_t<std::invoke_result_t<Fn&, const P&, ReplicaContext&>>;
    auto grouped = replicate(points, 1, std::forward<Fn>(body));
    std::vector<R> out;
    out.reserve(points.size());
    for (auto& g : grouped) out.push_back(std::move(g.front()));
    return out;
  }

 private:
  std::uint64_t seed_;
  Replicator replicator_;
};

}  // namespace ntco::fleet
