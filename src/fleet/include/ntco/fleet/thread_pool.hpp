#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.hpp
/// Fixed-size worker pool for the fleet engine.
///
/// This is the only place the framework runs more than one OS thread. The
/// simulation kernel stays single-threaded and deterministic; the pool
/// parallelises across *independent* simulator instances (replicas), never
/// inside one. Determinism therefore never depends on scheduling: which
/// thread runs which replica is irrelevant because replica results are
/// written to per-shard slots and reduced in shard order (see
/// replicator.hpp).

namespace ntco::fleet {

/// Worker count the fleet uses when none is given explicitly: the
/// NTCO_THREADS environment variable when set to a positive integer,
/// otherwise std::thread::hardware_concurrency() (minimum 1).
[[nodiscard]] std::size_t default_thread_count();

/// Fixed-size pool executing submitted tasks on `threads` workers.
///
/// Tasks must not throw — callers that need error propagation capture
/// exceptions inside the task (Replicator stores one std::exception_ptr
/// per shard and rethrows in shard order). Destruction drains the queue:
/// already-submitted tasks still run before the workers join.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task for execution on some worker.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;  // tasks currently executing
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ntco::fleet
