#include "ntco/fleet/thread_pool.hpp"

#include <cstdlib>

#include "ntco/common/contracts.hpp"

namespace ntco::fleet {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("NTCO_THREADS");
      env != nullptr && env[0] != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0)
      return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads) {
  NTCO_EXPECTS(threads > 0);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  NTCO_EXPECTS(task != nullptr);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and the queue is drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace ntco::fleet
