#include "ntco/obs/trace.hpp"

#include <cstdio>

namespace ntco::obs {

void append_json_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_json_value(std::string& out, const FieldValue& v) {
  char buf[32];
  switch (v.kind()) {
    case FieldValue::Kind::Int:
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(v.as_int()));
      out += buf;
      break;
    case FieldValue::Kind::UInt:
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(v.as_uint()));
      out += buf;
      break;
    case FieldValue::Kind::Double:
      std::snprintf(buf, sizeof buf, "%.9g", v.as_double());
      out += buf;
      break;
    case FieldValue::Kind::Bool:
      out += v.as_bool() ? "true" : "false";
      break;
    case FieldValue::Kind::Str:
      append_json_escaped(out, v.as_str());
      break;
  }
}

void JsonlTraceWriter::record(const TraceEvent& ev) {
  char buf[32];
  out_ += "{\"t_us\":";
  std::snprintf(buf, sizeof buf, "%lld",
                static_cast<long long>(ev.time.since_origin().count_micros()));
  out_ += buf;
  out_ += ",\"ev\":";
  append_json_escaped(out_, ev.name);
  for (std::size_t i = 0; i < ev.field_count; ++i) {
    out_.push_back(',');
    append_json_escaped(out_, ev.fields[i].key);
    out_.push_back(':');
    append_json_value(out_, ev.fields[i].value);
  }
  out_ += "}\n";
  ++records_;
}

bool JsonlTraceWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(out_.data(), 1, out_.size(), f) == out_.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

}  // namespace ntco::obs
