#include "ntco/obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <tuple>
#include <vector>

#include "ntco/obs/trace.hpp"

namespace ntco::obs {

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

std::string fmt_uint(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

/// One exported scalar: (metric, kind, field, rendered value).
struct Row {
  std::string metric;
  std::string kind;
  std::string field;
  std::string value;
};

}  // namespace

stats::Histogram& MetricsRegistry::histogram(const std::string& name,
                                             double lo, double hi,
                                             std::size_t bins) {
  auto& slot = histograms_[name];
  if (slot == nullptr)
    slot = std::make_unique<stats::Histogram>(lo, hi, bins);
  return *slot;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const stats::Accumulator* MetricsRegistry::find_summary(
    const std::string& name) const {
  const auto it = summaries_.find(name);
  return it == summaries_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& o) {
  for (const auto& [name, c] : o.counters_) counters_[name].add(c.value());
  for (const auto& [name, g] : o.gauges_) gauges_[name].set(g.value());
  for (const auto& [name, a] : o.summaries_) summaries_[name].merge(a);
  for (const auto& [name, h] : o.histograms_) {
    auto& slot = histograms_[name];
    if (slot == nullptr)
      slot = std::make_unique<stats::Histogram>(*h);
    else
      slot->merge(*h);
  }
}

const stats::Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

namespace {

std::vector<Row> collect(
    const std::map<std::string, Counter>& counters,
    const std::map<std::string, Gauge>& gauges,
    const std::map<std::string, stats::Accumulator>& summaries,
    const std::map<std::string, std::unique_ptr<stats::Histogram>>&
        histograms) {
  std::vector<Row> rows;
  for (const auto& [name, c] : counters)
    rows.push_back({name, "counter", "value", fmt_uint(c.value())});
  for (const auto& [name, g] : gauges)
    rows.push_back({name, "gauge", "value", fmt_double(g.value())});
  for (const auto& [name, a] : summaries) {
    rows.push_back({name, "summary", "count", fmt_uint(a.count())});
    rows.push_back({name, "summary", "sum", fmt_double(a.sum())});
    if (!a.empty()) {
      rows.push_back({name, "summary", "mean", fmt_double(a.mean())});
      rows.push_back({name, "summary", "min", fmt_double(a.min())});
      rows.push_back({name, "summary", "max", fmt_double(a.max())});
      rows.push_back({name, "summary", "stddev", fmt_double(a.stddev())});
    }
  }
  for (const auto& [name, h] : histograms) {
    rows.push_back({name, "histogram", "total", fmt_uint(h->total())});
    rows.push_back({name, "histogram", "underflow", fmt_uint(h->underflow())});
    rows.push_back({name, "histogram", "overflow", fmt_uint(h->overflow())});
    for (std::size_t i = 0; i < h->bin_count(); ++i)
      rows.push_back({name, "histogram",
                      "bin" + std::to_string(i) + "@" + fmt_double(h->bin_lo(i)),
                      fmt_uint(h->bin(i))});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return std::tie(a.metric, a.kind, a.field) <
           std::tie(b.metric, b.kind, b.field);
  });
  return rows;
}

}  // namespace

std::string MetricsRegistry::to_csv() const {
  std::string out = "metric,kind,field,value\n";
  for (const auto& r : collect(counters_, gauges_, summaries_, histograms_)) {
    out += r.metric;
    out.push_back(',');
    out += r.kind;
    out.push_back(',');
    out += r.field;
    out.push_back(',');
    out += r.value;
    out.push_back('\n');
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  const auto rows = collect(counters_, gauges_, summaries_, histograms_);
  std::string out = "{";
  std::size_t i = 0;
  while (i < rows.size()) {
    // Group consecutive rows of one (metric, kind) into one object.
    if (out.size() > 1) out.push_back(',');
    append_json_escaped(out, rows[i].metric);
    out += ":{\"kind\":";
    append_json_escaped(out, rows[i].kind);
    const std::string& metric = rows[i].metric;
    const std::string& kind = rows[i].kind;
    for (; i < rows.size() && rows[i].metric == metric && rows[i].kind == kind;
         ++i) {
      out.push_back(',');
      append_json_escaped(out, rows[i].field);
      out.push_back(':');
      out += rows[i].value;
    }
    out.push_back('}');
  }
  out += "}\n";
  return out;
}

bool MetricsRegistry::write_csv(const std::string& path) const {
  const std::string csv = to_csv();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

}  // namespace ntco::obs
