#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

#include "ntco/common/units.hpp"

/// \file trace.hpp
/// Simulator tracing: per-event logs as first-class experiment artifacts.
///
/// Every traced component exposes an attach point taking a `TraceSink*`;
/// a null sink (the default) costs one pointer compare per potential record
/// and nothing else — call sites guard field construction behind the null
/// check. Event names are part of the public API and documented in
/// DESIGN.md ("Observability"); exporters render them deterministically so
/// two identical-seed runs produce byte-identical traces.

namespace ntco::obs {

/// One strongly typed trace attribute value. Numeric kinds render unquoted
/// in JSON; unit types map to their integer representations (Duration and
/// TimePoint to microseconds, DataSize to bytes, Money to nano-USD).
class FieldValue {
 public:
  enum class Kind : std::uint8_t { Int, UInt, Double, Bool, Str };

  FieldValue(std::int64_t v) : kind_(Kind::Int) { i_ = v; }
  FieldValue(std::int32_t v) : FieldValue(static_cast<std::int64_t>(v)) {}
  FieldValue(std::uint64_t v) : kind_(Kind::UInt) { u_ = v; }
  FieldValue(std::uint32_t v) : FieldValue(static_cast<std::uint64_t>(v)) {}
  FieldValue(double v) : kind_(Kind::Double) { d_ = v; }
  FieldValue(bool v) : kind_(Kind::Bool) { b_ = v; }
  FieldValue(std::string_view v) : kind_(Kind::Str), s_(v) {}
  FieldValue(const char* v) : FieldValue(std::string_view(v)) {}
  FieldValue(Duration d) : FieldValue(d.count_micros()) {}
  FieldValue(TimePoint t) : FieldValue(t.since_origin()) {}
  FieldValue(DataSize s) : FieldValue(s.count_bytes()) {}
  FieldValue(Money m) : FieldValue(m.count_nano_usd()) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] std::int64_t as_int() const { return i_; }
  [[nodiscard]] std::uint64_t as_uint() const { return u_; }
  [[nodiscard]] double as_double() const { return d_; }
  [[nodiscard]] bool as_bool() const { return b_; }
  [[nodiscard]] std::string_view as_str() const { return s_; }

 private:
  Kind kind_;
  union {
    std::int64_t i_;
    std::uint64_t u_;
    double d_;
    bool b_;
  };
  std::string_view s_;
};

/// One key/value attribute of a trace event. Keys must be string literals
/// (or otherwise outlive the record() call).
struct Field {
  std::string_view key;
  FieldValue value;
};

/// One trace record. `name` is a stable dotted identifier
/// ("sim.event.fired", "faas.cold_start", ...); fields are borrowed for the
/// duration of the record() call only.
struct TraceEvent {
  TimePoint time;
  std::string_view name;
  const Field* fields = nullptr;
  std::size_t field_count = 0;
};

/// Receiver of trace records. Implementations must not retain the borrowed
/// field storage past record().
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& ev) = 0;
};

/// Convenience emitter; a no-op on a null sink. Hot paths should still guard
/// with `if (sink)` so the field array is never materialised when disabled.
inline void emit(TraceSink* sink, TimePoint t, std::string_view name,
                 std::initializer_list<Field> fields = {}) {
  if (sink == nullptr) return;
  TraceEvent ev;
  ev.time = t;
  ev.name = name;
  ev.fields = fields.begin();
  ev.field_count = fields.size();
  sink->record(ev);
}

/// Read-only clock a traced component uses to timestamp records without
/// depending on the simulation kernel (sim::Simulator implements it).
class TraceClock {
 public:
  virtual ~TraceClock() = default;
  [[nodiscard]] virtual TimePoint trace_now() const = 0;
};

/// Sink that only counts records (tests, hook-overhead measurement).
class CountingSink final : public TraceSink {
 public:
  void record(const TraceEvent&) override { ++count_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }

 private:
  std::uint64_t count_ = 0;
};

/// JSONL exporter: one JSON object per record, in arrival order, e.g.
///   {"t_us":1500,"ev":"faas.cold_start","fn":0,"init_us":180600}
/// Rendering is deterministic (integer microsecond timestamps, "%.9g"
/// doubles, fields in emission order), so identical-seed runs produce
/// byte-identical output.
class JsonlTraceWriter final : public TraceSink {
 public:
  void record(const TraceEvent& ev) override;

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::size_t record_count() const { return records_; }

  /// Appends another writer's buffered records after this one's — how the
  /// fleet stitches per-shard trace streams: concatenating in shard order
  /// keeps the combined stream byte-identical at any worker count.
  void append_from(const JsonlTraceWriter& o) {
    out_ += o.out_;
    records_ += o.records_;
  }
  void clear() {
    out_.clear();
    records_ = 0;
  }

  /// Writes the buffered records to `path` (overwriting). Returns false on
  /// I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::string out_;
  std::size_t records_ = 0;
};

/// Appends a JSON string escape of `s` to `out` (shared with exporters).
void append_json_escaped(std::string& out, std::string_view s);

/// Appends a deterministic rendering of `v` to `out` (numbers unquoted).
void append_json_value(std::string& out, const FieldValue& v);

}  // namespace ntco::obs
