#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "ntco/stats/accumulator.hpp"
#include "ntco/stats/histogram.hpp"

/// \file metrics.hpp
/// Named instrument registry: counters, gauges, summaries (streaming
/// moments via stats::Accumulator), and histograms (stats::Histogram).
///
/// Components register their instruments once at attach time and cache the
/// returned references (node-based storage keeps them stable for the
/// registry's lifetime), so the per-event cost is one pointer check plus an
/// integer add. Metric names are stable public API, documented in DESIGN.md
/// ("Observability"); exporters emit them sorted by name so identical-seed
/// runs dump byte-identical CSV/JSON.

namespace ntco::obs {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_ += n; }
  [[nodiscard]] std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Last-write-wins floating-point metric.
class Gauge {
 public:
  void set(double v) { v_ = v; }
  [[nodiscard]] double value() const { return v_; }

 private:
  double v_ = 0.0;
};

/// Registry of named instruments, created on first use. Same name + same
/// kind returns the same instrument; the same name may exist under several
/// kinds (exports carry a kind column).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  stats::Accumulator& summary(const std::string& name) {
    return summaries_[name];
  }
  /// Bin geometry is fixed by the first caller for a given name.
  stats::Histogram& histogram(const std::string& name, double lo, double hi,
                              std::size_t bins);

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const stats::Accumulator* find_summary(
      const std::string& name) const;
  [[nodiscard]] const stats::Histogram* find_histogram(
      const std::string& name) const;

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + summaries_.size() +
           histograms_.size();
  }

  /// Reduces another registry into this one (fleet shard merging):
  /// counters add, summaries merge (parallel Welford), histograms add
  /// bin-wise (geometry must match — contract violation otherwise), and
  /// gauges take `o`'s value (last write wins, so merging shards in shard
  /// order reproduces the single-threaded sequence of writes). Merging a
  /// fixed sequence of registries yields the same dump under any
  /// left-to-right grouping.
  void merge_from(const MetricsRegistry& o);

  /// CSV dump, header "metric,kind,field,value", rows sorted by
  /// (metric, kind, field). Counters/gauges emit one `value` row; summaries
  /// emit count/mean/min/max/stddev/sum; histograms emit total/underflow/
  /// overflow plus one row per bin keyed "bin<i>@<lo>".
  [[nodiscard]] std::string to_csv() const;

  /// One JSON object keyed by metric name (sorted), each value an object
  /// with "kind" plus the same fields as the CSV.
  [[nodiscard]] std::string to_json() const;

  /// Writes to_csv() to `path` (overwriting). Returns false on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  // std::map: sorted iteration for deterministic export, node-based storage
  // for reference stability.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, stats::Accumulator> summaries_;
  std::map<std::string, std::unique_ptr<stats::Histogram>> histograms_;
};

}  // namespace ntco::obs
