#pragma once

#include <string_view>

/// \file names.hpp
/// Central registry of every telemetry name the tree emits — the single
/// source of truth for `obs` trace-event and metric names.
///
/// ntco-lint R7 enforces the contract in both directions: every string
/// literal reaching `obs::emit` / `trace_event` / `counter` / `gauge` /
/// `summary` / `histogram` under src/ must appear here with the matching
/// kind, and every row here must be emitted somewhere in the scanned tree
/// (dead rows are diagnostics). DESIGN.md's trace/metric tables are
/// generated from this file via `ntco-lint --dump-names`, never edited by
/// hand.
///
/// Each row also declares a usable `std::string_view` constant, so tests
/// and tools can reference names without re-typing the literal:
///
///   NTCO_OBS_NAME(kIdent, kind, "dotted.name", "`field`, `field` notes")
///
/// `kind` is one of: trace, counter, gauge, summary, histogram. The fields
/// column documents fields in emission order for traces, units/notes for
/// metrics; it feeds the generated markdown verbatim.

#define NTCO_OBS_NAME(ident, kind, name, fields) \
  inline constexpr std::string_view ident = name;

namespace ntco::obs::names {

// --- sim: event kernel ----------------------------------------------------
NTCO_OBS_NAME(kSimEventScheduled, trace, "sim.event.scheduled", "`seq`, `at` (µs)")
NTCO_OBS_NAME(kSimEventFired, trace, "sim.event.fired", "`seq`")
NTCO_OBS_NAME(kSimEventCancelled, trace, "sim.event.cancelled", "`seq`")

// --- serverless platform --------------------------------------------------
NTCO_OBS_NAME(kFaasInvoke, trace, "faas.invoke", "`fn`, `work`, `tier`")
NTCO_OBS_NAME(kFaasResume, trace, "faas.resume", "`fn`, `work`, `credit`, `tier`")
NTCO_OBS_NAME(kFaasThrottled, trace, "faas.throttled", "`fn`, `queue_depth`")
NTCO_OBS_NAME(kFaasWarmReuse, trace, "faas.warm_reuse", "`fn`, `provisioned`")
NTCO_OBS_NAME(kFaasColdStart, trace, "faas.cold_start", "`fn`, `init` (µs)")
NTCO_OBS_NAME(kFaasComplete, trace, "faas.complete", "`fn`, `exec`, `queue_wait`, `cold`, `cost` (nano-USD)")
NTCO_OBS_NAME(kFaasPreempted, trace, "faas.preempted", "`fn`, `exec`")
NTCO_OBS_NAME(kFaasCheckpoint, trace, "faas.checkpoint", "`fn`, `queued`")

// --- core offload controller ----------------------------------------------
NTCO_OBS_NAME(kCtlRunBegin, trace, "ctl.run.begin", "`app`, `mode`, `components`, `remote`")
NTCO_OBS_NAME(kCtlRunEnd, trace, "ctl.run.end", "`makespan`, `failed`, `cloud_cost`, `remote_invocations`, `cold_starts`, `transfer_failures`, `local_fallbacks`")
NTCO_OBS_NAME(kCtlTransferAttempt, trace, "ctl.transfer.attempt", "`dir`, `bytes`, `attempt`, `ok`, `elapsed`")
NTCO_OBS_NAME(kCtlTransferRetry, trace, "ctl.transfer.retry", "`dir`, `bytes`, `next_attempt`")
NTCO_OBS_NAME(kCtlTransferExhausted, trace, "ctl.transfer.exhausted", "`dir`, `bytes`")
NTCO_OBS_NAME(kCtlFallbackLocal, trace, "ctl.fallback.local", "`component`")
NTCO_OBS_NAME(kCtlDeployReuse, trace, "ctl.deploy.reuse", "`app`, `functions`")

// --- deferred scheduler ---------------------------------------------------
NTCO_OBS_NAME(kSchedJobPlanned, trace, "sched.job.planned", "`job`, `start`, `deadline`, `est`")
NTCO_OBS_NAME(kSchedJobSpotRetry, trace, "sched.job.spot_retry", "`job`, `wasted_cost`")
NTCO_OBS_NAME(kSchedJobTierFallback, trace, "sched.job.tier_fallback", "`job`")
NTCO_OBS_NAME(kSchedJobComplete, trace, "sched.job.complete", "`job`, `latency`, `met_deadline`, `cost`")

// --- network links --------------------------------------------------------
NTCO_OBS_NAME(kNetLinkState, trace, "net.link.state", "`link`, `state` (`good`/`bad`)")
NTCO_OBS_NAME(kNetLinkLoss, trace, "net.link.loss", "`link`, `bytes`, `timeout`")

// --- open-loop arrival processes --------------------------------------------
NTCO_OBS_NAME(kAppArrivalJob, trace, "app.arrival.job", "`seq`, `hour`")
NTCO_OBS_NAME(kAppArrivalVehicleEnter, trace, "app.arrival.vehicle_enter", "`vehicle`, `residence` (µs)")
NTCO_OBS_NAME(kAppArrivalVehicleExit, trace, "app.arrival.vehicle_exit", "`vehicle`, `requests`")

// --- broker serving layer -------------------------------------------------
NTCO_OBS_NAME(kBrokerPlanCacheHit, trace, "broker.plan_cache_hit", "`workload`, `hysteresis`")
NTCO_OBS_NAME(kBrokerPlanCacheMiss, trace, "broker.plan_cache_miss", "`workload`")
NTCO_OBS_NAME(kBrokerAdmissionDefer, trace, "broker.admission_defer", "`retry_at`, `deadline`")
NTCO_OBS_NAME(kBrokerAdmissionShed, trace, "broker.admission_shed", "`reason`, `deadline`, `est`")
NTCO_OBS_NAME(kBrokerBatchFlush, trace, "broker.batch_flush", "`group`, `jobs`, `sealed`")
NTCO_OBS_NAME(kBrokerTwostageFastServe, trace, "broker.twostage.fast_serve", "`workload`")
NTCO_OBS_NAME(kBrokerTwostageResolve, trace, "broker.twostage.resolve", "`workload`, `agreed`")

// --- shared network fabric ------------------------------------------------
NTCO_OBS_NAME(kFabricFlowStart, trace, "fabric.flow.start", "`flow`, `path`, `dir` (`up`/`down`), `bytes`, `segments`, `share_bps`, `dur`")
NTCO_OBS_NAME(kFabricFlowFinish, trace, "fabric.flow.finish", "`flow`, `bytes`, `dur`")

// --- edge–cloud continuum -------------------------------------------------
NTCO_OBS_NAME(kContinuumJobSubmit, trace, "continuum.job.submit", "`job`, `work`, `input`, `deadline`")
NTCO_OBS_NAME(kContinuumPlace, trace, "continuum.place", "`job`, `site`, `spilled`")
NTCO_OBS_NAME(kContinuumMigrateBegin, trace, "continuum.migrate.begin", "`job`, `from`, `to`, `state`, `credit`")
NTCO_OBS_NAME(kContinuumMigrateEnd, trace, "continuum.migrate.end", "`job`, `to`, `credit`")
NTCO_OBS_NAME(kContinuumMigrateStay, trace, "continuum.migrate.stay", "`job`, `site`, `credit`")
NTCO_OBS_NAME(kContinuumMigrateRestart, trace, "continuum.migrate.restart", "`job`, `from`, `to`")
NTCO_OBS_NAME(kContinuumMigrateReroute, trace, "continuum.migrate.reroute", "`job`, `from`, `to`")
NTCO_OBS_NAME(kContinuumJobParked, trace, "continuum.job.parked", "`job`")
NTCO_OBS_NAME(kContinuumJobDone, trace, "continuum.job.done", "`job`, `site`, `migrations`, `cost`, `deadline_met`")
NTCO_OBS_NAME(kContinuumSiteFail, trace, "continuum.site.fail", "`site`, `graceful`")
NTCO_OBS_NAME(kContinuumSiteRestore, trace, "continuum.site.restore", "`site`, `parked`")
NTCO_OBS_NAME(kContinuumMobilityPhase, trace, "continuum.mobility.phase", "`tech`, `preferred`")

// --- serving dataplane ------------------------------------------------------
NTCO_OBS_NAME(kDataplaneEpochComplete, trace, "dataplane.epoch.complete", "`epoch`, `shards`, `workers`")
NTCO_OBS_NAME(kDataplaneWorkerAcquire, trace, "dataplane.worker.acquire", "`worker`, `epoch`, `liveness`")
NTCO_OBS_NAME(kDataplaneWorkerRelease, trace, "dataplane.worker.release", "`worker`, `epoch`, `liveness`")

// --- counters ---------------------------------------------------------------
NTCO_OBS_NAME(kServerlessInvocations, counter, "serverless.invocations", "invocations accepted by the platform")
NTCO_OBS_NAME(kServerlessColdStarts, counter, "serverless.cold_starts", "container cold starts")
NTCO_OBS_NAME(kServerlessWarmReuses, counter, "serverless.warm_reuses", "warm-container reuses")
NTCO_OBS_NAME(kServerlessThrottled, counter, "serverless.throttled", "invocations queued at the concurrency cap")
NTCO_OBS_NAME(kServerlessPreemptions, counter, "serverless.preemptions", "spot preemptions")
NTCO_OBS_NAME(kCoreRuns, counter, "core.runs", "controller runs started")
NTCO_OBS_NAME(kCoreRunFailures, counter, "core.run_failures", "runs that failed outright")
NTCO_OBS_NAME(kCoreLocalFallbacks, counter, "core.local_fallbacks", "components re-run locally after remote failure")
NTCO_OBS_NAME(kCoreTransferFailures, counter, "core.transfer_failures", "transfers exhausted after retries")
NTCO_OBS_NAME(kCorePlanDeploys, counter, "core.plan_deploys", "distinct plan fingerprints deployed")
NTCO_OBS_NAME(kCorePlanReuses, counter, "core.plan_reuses", "deployments skipped via the fingerprint memo")
NTCO_OBS_NAME(kSchedJobs, counter, "sched.jobs", "jobs accepted by the deferred executor")
NTCO_OBS_NAME(kSchedDeadlineMisses, counter, "sched.deadline_misses", "jobs finishing past their deadline")
NTCO_OBS_NAME(kSchedSpotAttempts, counter, "sched.spot_attempts", "spot-tier execution attempts")
NTCO_OBS_NAME(kSchedSpotPreemptions, counter, "sched.spot_preemptions", "spot attempts cut short")
NTCO_OBS_NAME(kSchedFallbacks, counter, "sched.fallbacks", "jobs falling back to on-demand")
NTCO_OBS_NAME(kBrokerRequests, counter, "broker.requests", "serve() requests")
NTCO_OBS_NAME(kBrokerCompleted, counter, "broker.completed", "requests that completed")
NTCO_OBS_NAME(kBrokerFailed, counter, "broker.failed", "requests that failed")
NTCO_OBS_NAME(kBrokerCacheHits, counter, "broker.cache.hits", "exact plan-cache hits")
NTCO_OBS_NAME(kBrokerCacheHysteresisHits, counter, "broker.cache.hysteresis_hits", "neighbour-key hits within the hysteresis band")
NTCO_OBS_NAME(kBrokerCacheMisses, counter, "broker.cache.misses", "plan-cache misses")
NTCO_OBS_NAME(kBrokerCacheEvictions, counter, "broker.cache.evictions", "LRU evictions")
NTCO_OBS_NAME(kBrokerCacheExpiries, counter, "broker.cache.expiries", "TTL expiries")
NTCO_OBS_NAME(kBrokerAdmissionAdmitted, counter, "broker.admission.admitted", "requests admitted by the token bucket")
NTCO_OBS_NAME(kBrokerAdmissionDeferrals, counter, "broker.admission.deferrals", "requests deferred with a retry quote")
NTCO_OBS_NAME(kBrokerAdmissionShed, counter, "broker.admission.shed", "requests shed")
NTCO_OBS_NAME(kAppArrivalJobs, counter, "app.arrival.jobs", "arrivals generated by the open-loop sources")
NTCO_OBS_NAME(kBrokerTwostageFastServes, counter, "broker.twostage.fast_serves", "misses served by the stage-1 heuristic plan")
NTCO_OBS_NAME(kBrokerTwostageResolves, counter, "broker.twostage.resolves", "asynchronous exact solves completed")
NTCO_OBS_NAME(kBrokerTwostageAgreements, counter, "broker.twostage.agreements", "exact solves that confirmed the heuristic placement")
NTCO_OBS_NAME(kBrokerBatchBatches, counter, "broker.batch.batches", "batches flushed")
NTCO_OBS_NAME(kBrokerBatchJobs, counter, "broker.batch.jobs", "jobs dispatched through batches")
NTCO_OBS_NAME(kBrokerBatchSealed, counter, "broker.batch.sealed", "batches sealed at capacity")
NTCO_OBS_NAME(kContinuumJobs, counter, "continuum.jobs", "jobs submitted to the federation")
NTCO_OBS_NAME(kContinuumCompleted, counter, "continuum.completed", "jobs completed")
NTCO_OBS_NAME(kContinuumDeadlineMisses, counter, "continuum.deadline_misses", "jobs finishing past their deadline")
NTCO_OBS_NAME(kContinuumMigrations, counter, "continuum.migrations", "live migrations")
NTCO_OBS_NAME(kContinuumRestarts, counter, "continuum.restarts", "restarts from scratch")
NTCO_OBS_NAME(kContinuumStayPuts, counter, "continuum.stay_puts", "migration evaluations that chose to stay")
NTCO_OBS_NAME(kContinuumSpillovers, counter, "continuum.spillovers", "placements spilled past the preferred tier")
NTCO_OBS_NAME(kContinuumReroutes, counter, "continuum.reroutes", "mid-transfer reroutes")
NTCO_OBS_NAME(kContinuumParked, counter, "continuum.parked", "jobs parked with nowhere to run")
NTCO_OBS_NAME(kDataplaneEpochs, counter, "dataplane.epochs", "epoch barriers drained")
NTCO_OBS_NAME(kDataplaneItems, counter, "dataplane.items", "shards dispatched through the rings")
NTCO_OBS_NAME(kDataplaneScaleUps, counter, "dataplane.scale_ups", "workers acquired mid-run")
NTCO_OBS_NAME(kDataplaneScaleDowns, counter, "dataplane.scale_downs", "workers released mid-run")

// --- summaries --------------------------------------------------------------
NTCO_OBS_NAME(kServerlessQueueWaitMs, summary, "serverless.queue_wait_ms", "per-invocation queue wait (ms)")
NTCO_OBS_NAME(kServerlessExecMs, summary, "serverless.exec_ms", "per-invocation execution time (ms)")
NTCO_OBS_NAME(kServerlessInitMs, summary, "serverless.init_ms", "cold-start init time (ms)")
NTCO_OBS_NAME(kCoreMakespanMs, summary, "core.makespan_ms", "end-to-end run makespan (ms)")
NTCO_OBS_NAME(kCoreCloudCostUsd, summary, "core.cloud_cost_usd", "per-run cloud cost (USD)")
NTCO_OBS_NAME(kCoreDeviceEnergyJ, summary, "core.device_energy_j", "per-run device energy (J)")
NTCO_OBS_NAME(kSchedCompletionLatencyS, summary, "sched.completion_latency_s", "submit-to-complete latency (s)")
NTCO_OBS_NAME(kSchedDeferralS, summary, "sched.deferral_s", "planned deferral before start (s)")
NTCO_OBS_NAME(kSchedJobCostUsd, summary, "sched.job_cost_usd", "per-job cost (USD)")
NTCO_OBS_NAME(kBrokerDecisionUs, summary, "broker.decision_us", "serve() decision latency (µs)")
NTCO_OBS_NAME(kBrokerJobCostUsd, summary, "broker.job_cost_usd", "per-job cost (USD)")
NTCO_OBS_NAME(kBrokerCompletionS, summary, "broker.completion_s", "request completion time (s)")
NTCO_OBS_NAME(kContinuumCompletionMs, summary, "continuum.completion_ms", "job completion time (ms)")
NTCO_OBS_NAME(kContinuumJobCostUsd, summary, "continuum.job_cost_usd", "per-job cost (USD)")
NTCO_OBS_NAME(kDataplaneRingOccupancy, summary, "dataplane.ring.occupancy", "per-epoch mean request-ring fill (fraction)")

// --- gauges -----------------------------------------------------------------
NTCO_OBS_NAME(kDataplaneWorkersActive, gauge, "dataplane.workers.active", "workers currently live (unparked)")

}  // namespace ntco::obs::names
