#include "ntco/common/units.hpp"

#include <cstdio>

namespace ntco {

namespace {

std::string format(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}

}  // namespace

std::string to_string(Duration d) {
  const auto us = d.count_micros();
  const double a = static_cast<double>(us < 0 ? -us : us);
  std::string s;
  if (a < 1e3)
    s = format("%.0f us", static_cast<double>(us));
  else if (a < 1e6)
    s = format("%.2f ms", static_cast<double>(us) / 1e3);
  else if (a < 60e6)
    s = format("%.2f s", static_cast<double>(us) / 1e6);
  else
    s = format("%.2f min", static_cast<double>(us) / 60e6);
  return s;
}

std::string to_string(DataSize s) {
  const auto b = s.count_bytes();
  if (b < 1'000) return format("%.0f B", static_cast<double>(b));
  if (b < 1'000'000) return format("%.2f KB", static_cast<double>(b) / 1e3);
  if (b < 1'000'000'000ULL)
    return format("%.2f MB", static_cast<double>(b) / 1e6);
  return format("%.2f GB", static_cast<double>(b) / 1e9);
}

std::string to_string(Cycles c) {
  const auto v = c.value();
  if (v < 1'000'000) return format("%.0f cyc", static_cast<double>(v));
  if (v < 1'000'000'000ULL)
    return format("%.2f Mcyc", static_cast<double>(v) / 1e6);
  return format("%.2f Gcyc", static_cast<double>(v) / 1e9);
}

std::string to_string(Money m) { return format("$%.6f", m.to_usd()); }

std::string to_string(Energy e) {
  const auto uj = e.count_microjoules();
  const double a = static_cast<double>(uj < 0 ? -uj : uj);
  if (a < 1e3) return format("%.0f uJ", static_cast<double>(uj));
  if (a < 1e6) return format("%.2f mJ", static_cast<double>(uj) / 1e3);
  return format("%.2f J", static_cast<double>(uj) / 1e6);
}

}  // namespace ntco
