#pragma once

#include <string>

#include "ntco/common/error.hpp"

/// \file contracts.hpp
/// Throwing precondition / postcondition macros (Core Guidelines I.6, I.8).
///
/// Contracts throw ntco::ContractViolation instead of aborting so that unit
/// tests can verify that invalid use is rejected, and so that a long-running
/// simulation driver can recover from one malformed scenario.

namespace ntco::detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}

}  // namespace ntco::detail

#define NTCO_EXPECTS(cond)                                                 \
  do {                                                                     \
    if (!(cond))                                                           \
      ::ntco::detail::contract_fail("precondition", #cond, __FILE__,       \
                                    __LINE__);                             \
  } while (false)

#define NTCO_ENSURES(cond)                                                 \
  do {                                                                     \
    if (!(cond))                                                           \
      ::ntco::detail::contract_fail("postcondition", #cond, __FILE__,      \
                                    __LINE__);                             \
  } while (false)
