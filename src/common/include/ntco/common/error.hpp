#pragma once

#include <stdexcept>
#include <string>

/// \file error.hpp
/// Error hierarchy for the ntco library.
///
/// All failures that cross a public API boundary are reported as exceptions
/// derived from ntco::Error. Precondition violations (programming errors)
/// throw ntco::ContractViolation via the NTCO_EXPECTS / NTCO_ENSURES macros
/// so that tests can assert on them.

namespace ntco {

/// Base class of every exception thrown by the ntco library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A precondition, postcondition, or invariant was violated.
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what) : Error(what) {}
};

/// A configuration value is out of its documented domain.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// A named entity (component, function, deployment, ...) was not found.
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error(what) {}
};

/// A platform-side limit was exceeded (concurrency, capacity, budget).
class CapacityError : public Error {
 public:
  explicit CapacityError(const std::string& what) : Error(what) {}
};

}  // namespace ntco
