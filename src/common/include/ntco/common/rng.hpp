#pragma once

#include <cstdint>
#include <random>
#include <span>

#include "ntco/common/contracts.hpp"

/// \file rng.hpp
/// Deterministic random number generation.
///
/// All stochastic behaviour in the framework flows through ntco::Rng so that
/// every experiment is reproducible from a single seed. Substreams derived
/// with fork() are statistically independent (SplitMix64 seed derivation), so
/// adding a consumer of randomness in one module does not perturb another.

namespace ntco {

/// Seeded pseudo-random source with the distributions the simulators need.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(splitmix64(seed)), seed_(seed) {}

  /// Derives an independent substream. Deterministic in (seed, stream_id).
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const {
    return Rng(splitmix64(seed_ ^ (0x9E3779B97F4A7C15ULL * (stream_id + 1))));
  }

  /// Shard substream `shard` of root stream `seed` — the fleet engine's
  /// seed-derivation scheme (fleet::Replicator gives shard s the stream
  /// `Rng::stream(seed, s)`). Unlike fork()'s single xor-multiply feed,
  /// seed and shard are hashed through independent SplitMix64 rounds
  /// before combining, so nested derivations — a stream() of a stream(),
  /// as fleet::Sweep uses for (point, replica) pairs — land in a different
  /// part of the keyspace than sibling streams of the same parent.
  [[nodiscard]] static Rng stream(std::uint64_t seed, std::uint64_t shard) {
    const std::uint64_t a = splitmix64(seed ^ 0x8BADF00DDEADBEEFULL);
    const std::uint64_t b = splitmix64(shard + 0x9E3779B97F4A7C15ULL);
    return Rng(splitmix64(a ^ (b + 0x517CC1B727220A95ULL)));
  }

  /// Instance form: shard substream of this stream's own seed.
  [[nodiscard]] Rng stream(std::uint64_t shard) const {
    return stream(seed_, shard);
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    NTCO_EXPECTS(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    NTCO_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli trial with probability p of true.
  [[nodiscard]] bool bernoulli(double p) {
    NTCO_EXPECTS(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponential with the given mean (not rate).
  [[nodiscard]] double exponential(double mean) {
    NTCO_EXPECTS(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  [[nodiscard]] double normal(double mu, double sigma) {
    NTCO_EXPECTS(sigma >= 0.0);
    if (sigma == 0.0) return mu;
    return std::normal_distribution<double>(mu, sigma)(engine_);
  }

  /// Log-normal parameterised by the *location/scale of the underlying
  /// normal* (standard parameterisation).
  [[nodiscard]] double lognormal(double mu, double sigma) {
    NTCO_EXPECTS(sigma >= 0.0);
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  [[nodiscard]] std::uint64_t poisson(double mean) {
    NTCO_EXPECTS(mean >= 0.0);
    if (mean == 0.0) return 0;
    return static_cast<std::uint64_t>(
        std::poisson_distribution<std::uint64_t>(mean)(engine_));
  }

  /// Uniformly chosen element of a non-empty span.
  template <class T>
  [[nodiscard]] const T& pick(std::span<const T> items) {
    NTCO_EXPECTS(!items.empty());
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  /// Raw 64-bit draw (for hashing / shuffling).
  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

 private:
  [[nodiscard]] static std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

  std::mt19937_64 engine_;
  std::uint64_t seed_ = 0;
};

}  // namespace ntco
