#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <string>

#include "ntco/common/contracts.hpp"

/// \file units.hpp
/// Strongly typed physical and economic quantities (Core Guidelines I.4).
///
/// Every quantity the framework reasons about — simulated time, data volume,
/// CPU work, money, energy — is a distinct type with integer representation
/// so that simulations are deterministic and unit confusion is a compile
/// error. Cross-unit arithmetic is only defined where physically meaningful:
///   Cycles / Frequency  -> Duration
///   DataSize / DataRate -> Duration
///   Power * Duration    -> Energy
///   MoneyRate * Duration-> Money

namespace ntco {

/// Simulated time span. Representation: signed microseconds.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration micros(std::int64_t us) {
    return Duration(us);
  }
  [[nodiscard]] static constexpr Duration millis(std::int64_t ms) {
    return Duration(ms * 1'000);
  }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t s) {
    return Duration(s * 1'000'000);
  }
  [[nodiscard]] static constexpr Duration minutes(std::int64_t m) {
    return Duration(m * 60'000'000);
  }
  [[nodiscard]] static constexpr Duration hours(std::int64_t h) {
    return Duration(h * 3'600'000'000LL);
  }
  /// Rounds to the nearest microsecond.
  [[nodiscard]] static Duration from_seconds(double s) {
    NTCO_EXPECTS(std::isfinite(s));
    return Duration(static_cast<std::int64_t>(std::llround(s * 1e6)));
  }
  [[nodiscard]] static constexpr Duration zero() { return Duration(0); }
  [[nodiscard]] static constexpr Duration max() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  [[nodiscard]] constexpr std::int64_t count_micros() const { return us_; }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(us_) / 1e6;
  }
  [[nodiscard]] constexpr double to_millis() const {
    return static_cast<double>(us_) / 1e3;
  }
  [[nodiscard]] constexpr bool is_zero() const { return us_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return us_ < 0; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration& operator+=(Duration o) {
    us_ += o.us_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) {
    us_ -= o.us_;
    return *this;
  }
  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration(a.us_ + b.us_);
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration(a.us_ - b.us_);
  }
  friend constexpr Duration operator-(Duration a) { return Duration(-a.us_); }
  friend Duration operator*(Duration a, double k) {
    return Duration(static_cast<std::int64_t>(
        std::llround(static_cast<double>(a.us_) * k)));
  }
  friend Duration operator*(double k, Duration a) { return a * k; }
  friend Duration operator/(Duration a, double k) {
    NTCO_EXPECTS(k != 0.0);
    return Duration(static_cast<std::int64_t>(
        std::llround(static_cast<double>(a.us_) / k)));
  }
  /// Ratio of two durations.
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.us_) / static_cast<double>(b.us_);
  }

 private:
  constexpr explicit Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// Absolute simulated time, measured from simulation start.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  [[nodiscard]] static constexpr TimePoint origin() { return TimePoint(); }
  [[nodiscard]] static constexpr TimePoint at(Duration since_origin) {
    return TimePoint(since_origin);
  }

  [[nodiscard]] constexpr Duration since_origin() const { return d_; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint(t.d_ + d);
  }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint(t.d_ - d);
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return a.d_ - b.d_;
  }

 private:
  constexpr explicit TimePoint(Duration d) : d_(d) {}
  Duration d_;
};

/// Volume of data. Representation: unsigned bytes.
class DataSize {
 public:
  constexpr DataSize() = default;

  [[nodiscard]] static constexpr DataSize bytes(std::uint64_t b) {
    return DataSize(b);
  }
  [[nodiscard]] static constexpr DataSize kilobytes(std::uint64_t kb) {
    return DataSize(kb * 1'000);
  }
  [[nodiscard]] static constexpr DataSize megabytes(std::uint64_t mb) {
    return DataSize(mb * 1'000'000);
  }
  [[nodiscard]] static constexpr DataSize gigabytes(std::uint64_t gb) {
    return DataSize(gb * 1'000'000'000ULL);
  }
  [[nodiscard]] static constexpr DataSize zero() { return DataSize(0); }

  [[nodiscard]] constexpr std::uint64_t count_bytes() const { return b_; }
  [[nodiscard]] constexpr std::uint64_t count_bits() const { return b_ * 8; }
  [[nodiscard]] constexpr double to_megabytes() const {
    return static_cast<double>(b_) / 1e6;
  }
  [[nodiscard]] constexpr bool is_zero() const { return b_ == 0; }

  constexpr auto operator<=>(const DataSize&) const = default;

  constexpr DataSize& operator+=(DataSize o) {
    b_ += o.b_;
    return *this;
  }
  friend constexpr DataSize operator+(DataSize a, DataSize b) {
    return DataSize(a.b_ + b.b_);
  }
  friend DataSize operator*(DataSize a, double k) {
    NTCO_EXPECTS(k >= 0.0);
    return DataSize(static_cast<std::uint64_t>(
        std::llround(static_cast<double>(a.b_) * k)));
  }

 private:
  constexpr explicit DataSize(std::uint64_t b) : b_(b) {}
  std::uint64_t b_ = 0;
};

/// CPU work. Representation: unsigned cycles.
class Cycles {
 public:
  constexpr Cycles() = default;

  [[nodiscard]] static constexpr Cycles count(std::uint64_t c) {
    return Cycles(c);
  }
  [[nodiscard]] static constexpr Cycles mega(std::uint64_t mc) {
    return Cycles(mc * 1'000'000);
  }
  [[nodiscard]] static constexpr Cycles giga(std::uint64_t gc) {
    return Cycles(gc * 1'000'000'000ULL);
  }
  [[nodiscard]] static constexpr Cycles zero() { return Cycles(0); }

  [[nodiscard]] constexpr std::uint64_t value() const { return c_; }
  [[nodiscard]] constexpr double to_mega() const {
    return static_cast<double>(c_) / 1e6;
  }
  [[nodiscard]] constexpr bool is_zero() const { return c_ == 0; }

  constexpr auto operator<=>(const Cycles&) const = default;

  constexpr Cycles& operator+=(Cycles o) {
    c_ += o.c_;
    return *this;
  }
  friend constexpr Cycles operator+(Cycles a, Cycles b) {
    return Cycles(a.c_ + b.c_);
  }
  friend Cycles operator*(Cycles a, double k) {
    NTCO_EXPECTS(k >= 0.0);
    return Cycles(static_cast<std::uint64_t>(
        std::llround(static_cast<double>(a.c_) * k)));
  }

 private:
  constexpr explicit Cycles(std::uint64_t c) : c_(c) {}
  std::uint64_t c_ = 0;
};

/// Clock frequency. Representation: Hz (cycles per second).
class Frequency {
 public:
  constexpr Frequency() = default;

  [[nodiscard]] static constexpr Frequency hertz(std::uint64_t hz) {
    return Frequency(hz);
  }
  [[nodiscard]] static constexpr Frequency megahertz(std::uint64_t mhz) {
    return Frequency(mhz * 1'000'000);
  }
  [[nodiscard]] static constexpr Frequency gigahertz(double ghz) {
    return Frequency(static_cast<std::uint64_t>(ghz * 1e9));
  }

  [[nodiscard]] constexpr std::uint64_t count_hertz() const { return hz_; }
  [[nodiscard]] constexpr bool is_zero() const { return hz_ == 0; }

  constexpr auto operator<=>(const Frequency&) const = default;

  friend Frequency operator*(Frequency f, double k) {
    NTCO_EXPECTS(k >= 0.0);
    return Frequency(static_cast<std::uint64_t>(
        std::llround(static_cast<double>(f.hz_) * k)));
  }

 private:
  constexpr explicit Frequency(std::uint64_t hz) : hz_(hz) {}
  std::uint64_t hz_ = 0;
};

/// Link throughput. Representation: bits per second.
class DataRate {
 public:
  constexpr DataRate() = default;

  [[nodiscard]] static constexpr DataRate bits_per_second(std::uint64_t bps) {
    return DataRate(bps);
  }
  [[nodiscard]] static constexpr DataRate kilobits_per_second(
      std::uint64_t kbps) {
    return DataRate(kbps * 1'000);
  }
  [[nodiscard]] static constexpr DataRate megabits_per_second(
      std::uint64_t mbps) {
    return DataRate(mbps * 1'000'000);
  }

  [[nodiscard]] constexpr std::uint64_t count_bps() const { return bps_; }
  [[nodiscard]] constexpr double to_mbps() const {
    return static_cast<double>(bps_) / 1e6;
  }
  [[nodiscard]] constexpr bool is_zero() const { return bps_ == 0; }

  constexpr auto operator<=>(const DataRate&) const = default;

  friend DataRate operator*(DataRate r, double k) {
    NTCO_EXPECTS(k >= 0.0);
    return DataRate(static_cast<std::uint64_t>(
        std::llround(static_cast<double>(r.bps_) * k)));
  }

 private:
  constexpr explicit DataRate(std::uint64_t bps) : bps_(bps) {}
  std::uint64_t bps_ = 0;
};

/// Monetary amount. Representation: signed nano-USD (1e-9 dollars), so even
/// per-request serverless prices ($2e-7) accumulate without floating-point
/// drift. Range: ±$9.2e9, ample for any simulated bill.
class Money {
 public:
  constexpr Money() = default;

  [[nodiscard]] static constexpr Money nano_usd(std::int64_t nu) {
    return Money(nu);
  }
  [[nodiscard]] static constexpr Money micro_usd(std::int64_t mu) {
    return Money(mu * 1'000);
  }
  [[nodiscard]] static constexpr Money cents(std::int64_t c) {
    return Money(c * 10'000'000);
  }
  [[nodiscard]] static constexpr Money usd(std::int64_t d) {
    return Money(d * 1'000'000'000);
  }
  [[nodiscard]] static Money from_usd(double d) {
    NTCO_EXPECTS(std::isfinite(d));
    return Money(static_cast<std::int64_t>(std::llround(d * 1e9)));
  }
  [[nodiscard]] static constexpr Money zero() { return Money(0); }

  [[nodiscard]] constexpr std::int64_t count_nano_usd() const { return mu_; }
  [[nodiscard]] constexpr std::int64_t count_micro_usd() const {
    return mu_ / 1'000;
  }
  [[nodiscard]] constexpr double to_usd() const {
    return static_cast<double>(mu_) / 1e9;
  }
  [[nodiscard]] constexpr bool is_zero() const { return mu_ == 0; }

  constexpr auto operator<=>(const Money&) const = default;

  constexpr Money& operator+=(Money o) {
    mu_ += o.mu_;
    return *this;
  }
  constexpr Money& operator-=(Money o) {
    mu_ -= o.mu_;
    return *this;
  }
  friend constexpr Money operator+(Money a, Money b) {
    return Money(a.mu_ + b.mu_);
  }
  friend constexpr Money operator-(Money a, Money b) {
    return Money(a.mu_ - b.mu_);
  }
  friend Money operator*(Money a, double k) {
    return Money(static_cast<std::int64_t>(
        std::llround(static_cast<double>(a.mu_) * k)));
  }
  friend Money operator*(double k, Money a) { return a * k; }

 private:
  constexpr explicit Money(std::int64_t mu) : mu_(mu) {}
  std::int64_t mu_ = 0;
};

/// Electrical power draw. Representation: milliwatts.
class Power {
 public:
  constexpr Power() = default;

  [[nodiscard]] static constexpr Power milliwatts(std::int64_t mw) {
    return Power(mw);
  }
  [[nodiscard]] static Power watts(double w) {
    NTCO_EXPECTS(std::isfinite(w) && w >= 0.0);
    return Power(static_cast<std::int64_t>(std::llround(w * 1e3)));
  }
  [[nodiscard]] static constexpr Power zero() { return Power(0); }

  [[nodiscard]] constexpr std::int64_t count_milliwatts() const { return mw_; }
  [[nodiscard]] constexpr double to_watts() const {
    return static_cast<double>(mw_) / 1e3;
  }

  constexpr auto operator<=>(const Power&) const = default;

 private:
  constexpr explicit Power(std::int64_t mw) : mw_(mw) {}
  std::int64_t mw_ = 0;
};

/// Energy. Representation: microjoules.
class Energy {
 public:
  constexpr Energy() = default;

  [[nodiscard]] static constexpr Energy microjoules(std::int64_t uj) {
    return Energy(uj);
  }
  [[nodiscard]] static Energy joules(double j) {
    NTCO_EXPECTS(std::isfinite(j));
    return Energy(static_cast<std::int64_t>(std::llround(j * 1e6)));
  }
  [[nodiscard]] static constexpr Energy zero() { return Energy(0); }

  [[nodiscard]] constexpr std::int64_t count_microjoules() const {
    return uj_;
  }
  [[nodiscard]] constexpr double to_joules() const {
    return static_cast<double>(uj_) / 1e6;
  }
  [[nodiscard]] constexpr bool is_zero() const { return uj_ == 0; }

  constexpr auto operator<=>(const Energy&) const = default;

  constexpr Energy& operator+=(Energy o) {
    uj_ += o.uj_;
    return *this;
  }
  friend constexpr Energy operator+(Energy a, Energy b) {
    return Energy(a.uj_ + b.uj_);
  }
  friend constexpr Energy operator-(Energy a, Energy b) {
    return Energy(a.uj_ - b.uj_);
  }
  friend Energy operator*(Energy a, double k) {
    return Energy(static_cast<std::int64_t>(
        std::llround(static_cast<double>(a.uj_) * k)));
  }

 private:
  constexpr explicit Energy(std::int64_t uj) : uj_(uj) {}
  std::int64_t uj_ = 0;
};

// --- Cross-unit physics -----------------------------------------------------

/// Time to execute `work` on a clock running at `f`. Rounds up so that a
/// nonzero workload never takes zero simulated time.
[[nodiscard]] inline Duration operator/(Cycles work, Frequency f) {
  NTCO_EXPECTS(!f.is_zero());
  const double us = static_cast<double>(work.value()) /
                    static_cast<double>(f.count_hertz()) * 1e6;
  return Duration::micros(static_cast<std::int64_t>(std::ceil(us)));
}

/// Time to move `size` over a link of throughput `rate`. Rounds up.
[[nodiscard]] inline Duration operator/(DataSize size, DataRate rate) {
  NTCO_EXPECTS(!rate.is_zero());
  const double us = static_cast<double>(size.count_bits()) /
                    static_cast<double>(rate.count_bps()) * 1e6;
  return Duration::micros(static_cast<std::int64_t>(std::ceil(us)));
}

/// Energy drawn by a load of `p` sustained for `d`.
[[nodiscard]] inline Energy operator*(Power p, Duration d) {
  NTCO_EXPECTS(!d.is_negative());
  // mW * us = nanojoule; convert to microjoules.
  const double uj = static_cast<double>(p.count_milliwatts()) *
                    static_cast<double>(d.count_micros()) / 1e3;
  return Energy::microjoules(static_cast<std::int64_t>(std::llround(uj)));
}
[[nodiscard]] inline Energy operator*(Duration d, Power p) { return p * d; }

// --- Formatting --------------------------------------------------------------

/// Human-readable rendering, e.g. "12.50 ms", "3.20 MB", "$0.000041".
[[nodiscard]] std::string to_string(Duration d);
[[nodiscard]] std::string to_string(DataSize s);
[[nodiscard]] std::string to_string(Cycles c);
[[nodiscard]] std::string to_string(Money m);
[[nodiscard]] std::string to_string(Energy e);

}  // namespace ntco
