#pragma once

#include <vector>

#include "ntco/common/error.hpp"
#include "ntco/common/units.hpp"

/// \file price_window.hpp
/// Time-of-day pricing, shared by every layer that reasons about tariffs.
///
/// The serverless platform bills with these windows; the continuum
/// federation *estimates* with them when deciding where a job should run.
/// Both consume this one header so placement cost estimates cannot drift
/// from what the platform actually charges (the drift used to be possible
/// when serverless::PlatformConfig declared its own copy of the type).

namespace ntco {

/// Time-of-day pricing window: [start_hour, end_hour) in simulated hours
/// since origin, repeating daily. Wrapping windows (22 -> 6) are allowed.
struct PriceWindow {
  int start_hour = 0;
  int end_hour = 0;
  double multiplier = 1.0;
};

/// Simulated hour of day of `when`, in [0, 24).
[[nodiscard]] inline int hour_of_day(TimePoint when) {
  const auto hours_since_origin =
      when.since_origin().count_micros() / 3'600'000'000LL;
  return static_cast<int>(hours_since_origin % 24);
}

/// True when `hour` falls inside `w` (wrapping windows included).
[[nodiscard]] inline bool window_contains(const PriceWindow& w, int hour) {
  return (w.start_hour <= w.end_hour)
             ? (hour >= w.start_hour && hour < w.end_hour)
             : (hour >= w.start_hour || hour < w.end_hour);
}

/// Multiplier of the first window containing `when`'s hour; 1.0 outside
/// every window. First-match semantics are part of the billing contract
/// (serverless::Platform::price_multiplier delegates here).
[[nodiscard]] inline double price_multiplier_at(
    const std::vector<PriceWindow>& windows, TimePoint when) {
  const int h = hour_of_day(when);
  for (const auto& w : windows)
    if (window_contains(w, h)) return w.multiplier;
  return 1.0;
}

/// Throws ConfigError on an out-of-range hour or non-positive multiplier.
inline void validate_price_windows(const std::vector<PriceWindow>& windows) {
  for (const auto& w : windows) {
    if (w.start_hour < 0 || w.start_hour > 23 || w.end_hour < 0 ||
        w.end_hour > 24 || w.multiplier <= 0.0)
      throw ConfigError("malformed price window");
  }
}

}  // namespace ntco
