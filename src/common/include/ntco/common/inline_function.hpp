#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "ntco/common/contracts.hpp"

/// \file inline_function.hpp
/// Small-buffer move-only callable: `std::function` without the copy
/// requirement and with a caller-chosen inline capacity.
///
/// The simulation kernel schedules millions of handlers per experiment;
/// `std::function`'s small buffer (16 bytes on libstdc++) is too small for
/// the typical capture set (`this` + a shared_ptr + an id), so almost every
/// schedule paid a heap allocation. `InlineFunction<void(), 48>` stores any
/// callable of at most `Capacity` bytes (and pointer alignment, and a
/// non-throwing move) directly in the object; larger, over-aligned, or
/// throwing-move callables fall back to a single heap allocation. Because the wrapper is
/// move-only it also accepts move-only captures (`std::unique_ptr`,
/// moved-in `std::function`s), which `std::function` rejects outright.
///
/// Dispatch is one vtable pointer per object (invoke / relocate / destroy),
/// so an engaged check is a null test and a moved-from object is empty.

namespace ntco {

template <class Signature, std::size_t Capacity = 48>
class InlineFunction;  // primary template: only R(Args...) is specialised

template <class R, class... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
  static_assert(Capacity >= sizeof(void*),
                "capacity must at least hold the heap-fallback pointer");

 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}

  /// Wraps any callable invocable as R(Args...). Callables that fit the
  /// inline buffer (size, alignment, nothrow-move) never allocate.
  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(bugprone-forwarding-reference-overload)
    if constexpr (stores_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &kVTable<D, /*Inline=*/true>;
    } else {
      using Ptr = D*;
      ::new (static_cast<void*>(buf_)) Ptr(new D(std::forward<F>(f)));
      vt_ = &kVTable<D, /*Inline=*/false>;
    }
  }

  InlineFunction(InlineFunction&& o) noexcept : vt_(o.vt_) {
    if (vt_ != nullptr) {
      vt_->relocate(o.buf_, buf_);
      o.vt_ = nullptr;
    }
  }

  InlineFunction& operator=(InlineFunction&& o) noexcept {
    if (this != &o) {
      reset();
      vt_ = o.vt_;
      if (vt_ != nullptr) {
        vt_->relocate(o.buf_, buf_);
        o.vt_ = nullptr;
      }
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  ~InlineFunction() { reset(); }

  /// Destroys the stored callable (and its captures) immediately; the
  /// object becomes empty. Used by the kernel to release a cancelled
  /// handler's resources before its heap slot drains.
  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return vt_ != nullptr;
  }
  friend bool operator==(const InlineFunction& f, std::nullptr_t) noexcept {
    return f.vt_ == nullptr;
  }

  /// True when the stored callable lives in the inline buffer (test hook
  /// for the no-allocation contract). Pre: engaged.
  [[nodiscard]] bool is_inline() const {
    NTCO_EXPECTS(vt_ != nullptr);
    return vt_->is_inline;
  }

  /// Whether a callable of type D would be stored inline (no allocation).
  /// Inline storage is pointer-aligned (keeps sizeof tight for arena
  /// embedding); over-aligned callables take the heap fallback, whose
  /// operator new honours any extended alignment.
  template <class D>
  [[nodiscard]] static constexpr bool stores_inline() {
    return sizeof(D) <= Capacity && alignof(D) <= alignof(void*) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  [[nodiscard]] static constexpr std::size_t capacity() { return Capacity; }

  R operator()(Args... args) {
    NTCO_EXPECTS(vt_ != nullptr);
    return vt_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*invoke)(unsigned char*, Args&&...);
    /// Move-constructs dst's payload from src's and destroys src's. For
    /// heap-stored callables this is a pointer copy, hence noexcept for
    /// every storage mode (what makes the wrapper's moves noexcept).
    void (*relocate)(unsigned char* src, unsigned char* dst) noexcept;
    void (*destroy)(unsigned char*) noexcept;
    bool is_inline;
  };

  template <class D, bool Inline>
  struct Ops;

  template <class D>
  struct Ops<D, true> {
    static D* get(unsigned char* b) {
      return std::launder(reinterpret_cast<D*>(b));
    }
    static R invoke(unsigned char* b, Args&&... args) {
      return (*get(b))(std::forward<Args>(args)...);
    }
    static void relocate(unsigned char* src, unsigned char* dst) noexcept {
      ::new (static_cast<void*>(dst)) D(std::move(*get(src)));
      get(src)->~D();
    }
    static void destroy(unsigned char* b) noexcept { get(b)->~D(); }
  };

  template <class D>
  struct Ops<D, false> {
    using Ptr = D*;
    static Ptr* get(unsigned char* b) {
      return std::launder(reinterpret_cast<Ptr*>(b));
    }
    static R invoke(unsigned char* b, Args&&... args) {
      return (**get(b))(std::forward<Args>(args)...);
    }
    static void relocate(unsigned char* src, unsigned char* dst) noexcept {
      // Pointer relocation is a copy; the pointer itself needs no cleanup.
      ::new (static_cast<void*>(dst)) Ptr(*get(src));
    }
    static void destroy(unsigned char* b) noexcept { delete *get(b); }
  };

  template <class D, bool Inline>
  static constexpr VTable kVTable{&Ops<D, Inline>::invoke,
                                  &Ops<D, Inline>::relocate,
                                  &Ops<D, Inline>::destroy, Inline};

  alignas(void*) unsigned char buf_[Capacity];
  const VTable* vt_ = nullptr;
};

}  // namespace ntco
