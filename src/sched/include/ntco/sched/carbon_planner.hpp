#pragma once

#include <array>
#include <optional>

#include "ntco/common/contracts.hpp"
#include "ntco/common/units.hpp"

/// \file carbon_planner.hpp
/// Carbon-aware deferral: shifting delay-tolerant jobs into low-carbon
/// hours.
///
/// Grid carbon intensity swings by a factor of 2-4 over a day (solar
/// mid-day trough, evening fossil peak). A job with slack can run when the
/// grid is clean — the sustainability twin of the off-peak tariff argument
/// (bench F11). Intensity is modelled as a repeating 24-hour curve.

namespace ntco::sched {

/// Repeating 24-hour carbon intensity curve, gCO2 per kWh per hour slot.
class CarbonProfile {
 public:
  explicit CarbonProfile(std::array<double, 24> gco2_per_kwh);

  /// Intensity at simulated time `t` (hour-of-day resolution).
  [[nodiscard]] double at(TimePoint t) const;

  /// Solar-grid preset: ~480 overnight/evening, trough of ~160 around
  /// midday, evening ramp peak ~520.
  [[nodiscard]] static CarbonProfile solar_grid();

  /// Flat grid (no variation) at the given intensity.
  [[nodiscard]] static CarbonProfile flat(double gco2_per_kwh);

 private:
  std::array<double, 24> curve_;
};

/// Knobs of the carbon-aware planner.
struct CarbonPlannerConfig {
  /// Scan granularity over the admissible window.
  Duration search_step = Duration::minutes(30);
};

/// Plans job start times minimising carbon within the slack window.
class CarbonAwarePlanner {
 public:
  using Config = CarbonPlannerConfig;

  explicit CarbonAwarePlanner(CarbonProfile profile, Config cfg = {})
      : profile_(std::move(profile)), cfg_(cfg) {
    NTCO_EXPECTS(cfg_.search_step > Duration::zero());
  }

  /// Earliest start in [release, release + slack - est_duration] with the
  /// minimum intensity (clamped to `release` if the slack is tight).
  [[nodiscard]] TimePoint plan_start(TimePoint release, Duration slack,
                                     Duration est_duration) const;

  /// gCO2 of running `energy_kwh` starting at `start` (intensity sampled
  /// at the start; jobs are short relative to hourly resolution).
  [[nodiscard]] double emissions(TimePoint start, double energy_kwh) const {
    return profile_.at(start) * energy_kwh;
  }

  [[nodiscard]] const CarbonProfile& profile() const { return profile_; }

 private:
  CarbonProfile profile_;
  Config cfg_;
};

}  // namespace ntco::sched
