#pragma once

#include <string>

#include "ntco/common/units.hpp"
#include "ntco/device/device.hpp"
#include "ntco/net/mobility.hpp"

/// \file upload_planner.hpp
/// Connectivity-aware transfer scheduling ("WiFi-wait").
///
/// Moving an offload payload is itself a delay-tolerant job: waiting for
/// the next free, fast connectivity phase avoids metered cellular data and
/// cuts radio-on time (faster links finish sooner at similar power). The
/// planner picks the start time of an upload within its slack that
/// minimises `money + energy_weight * radio energy`; the classic special
/// case is "sync photos only on WiFi". Bench F10 measures the effect.

namespace ntco::sched {

/// One deferrable upload.
struct UploadJob {
  std::string name;
  DataSize bytes;
  Duration slack;  ///< must complete by release + slack
};

/// Predicted outcome of starting the upload at a given time.
struct UploadDecision {
  TimePoint start;
  Duration duration;        ///< at the rate of the phase containing start
  Money data_cost;          ///< metered-data charge
  Energy radio_energy;      ///< UE transmit energy
  bool meets_deadline = true;
  std::string tech;         ///< technology used ("WiFi", "4G", ...)
};

/// Plans upload start times against a mobility schedule.
class UploadPlanner {
 public:
  enum class Policy {
    Immediate,   ///< start at release regardless of connectivity
    WaitForFree, ///< defer to the next zero-price phase if slack allows
  };

  struct Config {
    Policy policy = Policy::WaitForFree;
    /// Relative weight of radio energy (J) against money ($) when both
    /// options are free.
    double energy_weight_per_joule = 0.0;
  };

  UploadPlanner(const net::MobilitySchedule& schedule,
                const device::DeviceSpec& device, Config cfg)
      : schedule_(schedule), device_(device), cfg_(cfg) {}

  /// Predicted outcome of starting `job` at exactly `start`.
  /// Transfers are assumed to fit within the phase containing `start`
  /// (longer transfers use that phase's rate as an approximation).
  [[nodiscard]] UploadDecision outcome_at(TimePoint start, TimePoint deadline,
                                          const UploadJob& job) const;

  /// Chooses the start time per the configured policy. The job is never
  /// deferred past the latest start that still meets the deadline; if even
  /// an immediate start misses it, the immediate outcome is returned with
  /// meets_deadline == false.
  [[nodiscard]] UploadDecision plan(TimePoint release,
                                    const UploadJob& job) const;

 private:
  const net::MobilitySchedule& schedule_;
  device::DeviceSpec device_;
  Config cfg_;
};

}  // namespace ntco::sched
