#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ntco/common/units.hpp"
#include "ntco/obs/metrics.hpp"
#include "ntco/obs/trace.hpp"
#include "ntco/serverless/platform.hpp"
#include "ntco/sim/simulator.hpp"
#include "ntco/stats/accumulator.hpp"
#include "ntco/stats/percentile.hpp"

/// \file deferred_scheduler.hpp
/// Exploiting non-time-criticality (the abstract's defining constraint).
///
/// A delay-tolerant job carries a *slack*: it may complete any time within
/// [release, release + slack]. The scheduler uses that freedom to
///  - shift work into discounted price windows (off-peak / spot-like
///    tariffs), and
///  - batch jobs at a common start so warm instances are reused instead of
///    cold-started per job.
/// DeferredExecutor runs the planned schedule on a serverless::Platform and
/// reports cost, completion latency, and deadline misses (Figures F4, F7).

namespace ntco::sched {

/// One delay-tolerant job: `work` to run remotely, due `slack` after its
/// release.
struct DeferredJob {
  std::string name;
  Cycles work;
  Duration slack;
};

/// Start-time planning policy.
enum class Policy {
  Immediate,   ///< run at release (the time-critical baseline)
  CheapestWindow,  ///< earliest start inside the cheapest reachable tariff
  Batched,     ///< CheapestWindow, then align starts to batch boundaries
};

/// Capacity-tier policy for executing deferred jobs.
enum class TierPolicy {
  OnDemandOnly,      ///< always full-price, never preempted
  /// Use the discounted spot tier while there is ample slack; retry on
  /// preemption; switch to on-demand once the remaining slack gets tight.
  /// Only delay-tolerant jobs can use this — which is precisely the
  /// abstract's argument for them.
  SpotWithFallback,
};

/// Plans start times against a platform's tariff calendar.
class DeferredScheduler {
 public:
  struct Config {
    Policy policy = Policy::CheapestWindow;
    /// Tariff scan granularity.
    Duration search_step = Duration::minutes(15);
    /// Batch alignment interval for Policy::Batched.
    Duration batch_interval = Duration::minutes(10);
    /// Capacity tier used by the executor.
    TierPolicy tier_policy = TierPolicy::OnDemandOnly;
    /// SpotWithFallback stays on spot while remaining slack exceeds
    /// `fallback_safety` x the estimated duration.
    double fallback_safety = 2.0;
  };

  DeferredScheduler(const serverless::Platform& platform, Config cfg);

  /// Latest admissible start so that `est_duration` work still meets the
  /// deadline, never before `release`.
  [[nodiscard]] TimePoint latest_start(TimePoint release,
                                       const DeferredJob& job,
                                       Duration est_duration) const;

  /// Planned start time for a job released at `release` whose execution is
  /// expected to take `est_duration`.
  [[nodiscard]] TimePoint plan_start(TimePoint release, const DeferredJob& job,
                                     Duration est_duration) const;

  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  const serverless::Platform& platform_;
  Config cfg_;
};

/// Outcome of one executed deferred job.
struct DeferredOutcome {
  std::string name;
  TimePoint released;
  TimePoint started;
  TimePoint finished;
  bool met_deadline = false;
  Money cost;
};

/// Aggregate report over an executed job stream.
struct DeferredReport {
  std::uint64_t jobs = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t spot_attempts = 0;     ///< invocations issued on spot
  std::uint64_t spot_preemptions = 0;  ///< spot attempts killed mid-run
  std::uint64_t fallbacks = 0;         ///< jobs finished on on-demand after
                                       ///< starting on spot
  Money total_cost;
  stats::PercentileSample completion_latency_s;  ///< finish - release

  [[nodiscard]] double miss_rate() const {
    return jobs == 0 ? 0.0
                     : static_cast<double>(deadline_misses) /
                           static_cast<double>(jobs);
  }
};

/// Executes planned jobs on one serverless function and collects the
/// report. Jobs submitted at simulated `now` are treated as released then.
class DeferredExecutor {
 public:
  DeferredExecutor(sim::Simulator& sim, serverless::Platform& platform,
                   serverless::FunctionId fn, DeferredScheduler scheduler);

  /// Plans and schedules the job; completion lands in the report.
  void submit(DeferredJob job);

  [[nodiscard]] const DeferredReport& report() const { return report_; }

  /// Attaches observability. `trace` receives the "sched.job.*" spans
  /// (planned, spot retries, completions); `metrics` hosts the "sched.*"
  /// instruments. Either may be null. Stable names are listed in DESIGN.md
  /// ("Observability").
  void attach_observer(obs::TraceSink* trace, obs::MetricsRegistry* metrics);

 private:
  void attempt(const DeferredJob& job, TimePoint released, TimePoint deadline,
               Duration est, Money accrued, bool spotted);
  void complete(const DeferredJob& job, TimePoint released,
                TimePoint deadline, const serverless::InvocationResult& r,
                Money accrued);

  /// Cached instrument pointers; null when no registry is attached.
  struct Instruments {
    obs::Counter* jobs = nullptr;
    obs::Counter* deadline_misses = nullptr;
    obs::Counter* spot_attempts = nullptr;
    obs::Counter* spot_preemptions = nullptr;
    obs::Counter* fallbacks = nullptr;
    stats::Accumulator* completion_latency_s = nullptr;
    stats::Accumulator* deferral_s = nullptr;
    stats::Accumulator* job_cost_usd = nullptr;
  };

  sim::Simulator& sim_;
  serverless::Platform& platform_;
  serverless::FunctionId fn_;
  DeferredScheduler scheduler_;
  DeferredReport report_;
  obs::TraceSink* trace_ = nullptr;
  Instruments m_;
};

}  // namespace ntco::sched
