#include "ntco/sched/carbon_planner.hpp"

#include "ntco/common/error.hpp"

namespace ntco::sched {

CarbonProfile::CarbonProfile(std::array<double, 24> gco2_per_kwh)
    : curve_(gco2_per_kwh) {
  for (const double v : curve_)
    if (v < 0.0) throw ConfigError("carbon intensity must be non-negative");
}

double CarbonProfile::at(TimePoint t) const {
  const auto us = t.since_origin().count_micros();
  NTCO_EXPECTS(us >= 0);
  const auto hour = (us / 3'600'000'000LL) % 24;
  return curve_[static_cast<std::size_t>(hour)];
}

CarbonProfile CarbonProfile::solar_grid() {
  return CarbonProfile({480, 470, 460, 455, 450, 440, 400, 340,  // 00-07
                        280, 220, 180, 160, 160, 170, 200, 260,  // 08-15
                        340, 430, 500, 520, 510, 500, 490, 485});  // 16-23
}

CarbonProfile CarbonProfile::flat(double gco2_per_kwh) {
  std::array<double, 24> c{};
  c.fill(gco2_per_kwh);
  return CarbonProfile(c);
}

TimePoint CarbonAwarePlanner::plan_start(TimePoint release, Duration slack,
                                         Duration est_duration) const {
  NTCO_EXPECTS(!slack.is_negative());
  TimePoint latest = release + slack - est_duration;
  if (latest < release) latest = release;

  TimePoint best = release;
  double best_intensity = profile_.at(release);
  for (TimePoint t = release; t <= latest; t = t + cfg_.search_step) {
    const double intensity = profile_.at(t);
    if (intensity < best_intensity - 1e-12) {
      best_intensity = intensity;
      best = t;
    }
  }
  return best;
}

}  // namespace ntco::sched
