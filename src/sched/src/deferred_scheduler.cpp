#include "ntco/sched/deferred_scheduler.hpp"

#include <algorithm>

namespace ntco::sched {

DeferredScheduler::DeferredScheduler(const serverless::Platform& platform,
                                     Config cfg)
    : platform_(platform), cfg_(cfg) {
  NTCO_EXPECTS(cfg.search_step > Duration::zero());
  NTCO_EXPECTS(cfg.batch_interval > Duration::zero());
}

TimePoint DeferredScheduler::latest_start(TimePoint release,
                                          const DeferredJob& job,
                                          Duration est_duration) const {
  NTCO_EXPECTS(!job.slack.is_negative());
  const TimePoint deadline = release + job.slack;
  TimePoint latest = deadline - est_duration;
  if (latest < release) latest = release;  // tight job: start immediately
  return latest;
}

TimePoint DeferredScheduler::plan_start(TimePoint release,
                                        const DeferredJob& job,
                                        Duration est_duration) const {
  if (cfg_.policy == Policy::Immediate) return release;

  const TimePoint latest = latest_start(release, job, est_duration);

  // Scan the admissible interval for the cheapest tariff; among equal
  // tariffs pick the earliest start (finish as soon as the price allows).
  TimePoint best = release;
  double best_mult = platform_.price_multiplier(release);
  for (TimePoint t = release; t <= latest; t = t + cfg_.search_step) {
    const double m = platform_.price_multiplier(t);
    if (m < best_mult - 1e-12) {
      best_mult = m;
      best = t;
    }
  }

  if (cfg_.policy == Policy::Batched && best > release) {
    // Defer slightly further to the next batch boundary so concurrent jobs
    // share warm instances — but never beyond the latest admissible start.
    const auto interval = cfg_.batch_interval.count_micros();
    const auto offset = best.since_origin().count_micros();
    const auto aligned = (offset + interval - 1) / interval * interval;
    const TimePoint batched = TimePoint::at(Duration::micros(aligned));
    if (batched <= latest &&
        platform_.price_multiplier(batched) <= best_mult + 1e-12)
      best = batched;
  }
  return best;
}

DeferredExecutor::DeferredExecutor(sim::Simulator& sim,
                                   serverless::Platform& platform,
                                   serverless::FunctionId fn,
                                   DeferredScheduler scheduler)
    : sim_(sim), platform_(platform), fn_(fn), scheduler_(std::move(scheduler)) {}

void DeferredExecutor::attach_observer(obs::TraceSink* trace,
                                       obs::MetricsRegistry* metrics) {
  trace_ = trace;
  if (metrics == nullptr) {
    m_ = Instruments{};
    return;
  }
  m_.jobs = &metrics->counter("sched.jobs");
  m_.deadline_misses = &metrics->counter("sched.deadline_misses");
  m_.spot_attempts = &metrics->counter("sched.spot_attempts");
  m_.spot_preemptions = &metrics->counter("sched.spot_preemptions");
  m_.fallbacks = &metrics->counter("sched.fallbacks");
  m_.completion_latency_s = &metrics->summary("sched.completion_latency_s");
  m_.deferral_s = &metrics->summary("sched.deferral_s");
  m_.job_cost_usd = &metrics->summary("sched.job_cost_usd");
}

void DeferredExecutor::submit(DeferredJob job) {
  const TimePoint released = sim_.now();
  const auto& spec = platform_.spec(fn_);
  const Duration est =
      platform_.exec_time(spec.memory, job.work, spec.parallel_fraction);
  const TimePoint start = scheduler_.plan_start(released, job, est);
  const TimePoint deadline = released + job.slack;

  if (trace_)
    obs::emit(trace_, released, "sched.job.planned",
              {{"job", std::string_view(job.name)},
               {"start", start.since_origin()},
               {"deadline", deadline.since_origin()},
               {"est", est}});
  if (m_.deferral_s) m_.deferral_s->add((start - released).to_seconds());

  sim_.schedule_at(start,
                   [this, job = std::move(job), released, deadline, est] {
                     attempt(job, released, deadline, est, Money::zero(),
                             /*spotted=*/false);
                   });
}

void DeferredExecutor::attempt(const DeferredJob& job, TimePoint released,
                               TimePoint deadline, Duration est, Money accrued,
                               bool spotted) {
  // Spot is only safe while we could still absorb a preempted attempt and
  // an on-demand redo within the remaining slack.
  const bool use_spot =
      scheduler_.config().tier_policy == TierPolicy::SpotWithFallback &&
      sim_.now() + est * scheduler_.config().fallback_safety <= deadline;
  if (use_spot) {
    ++report_.spot_attempts;
    if (m_.spot_attempts) m_.spot_attempts->add();
  }
  if (spotted && !use_spot) {
    ++report_.fallbacks;
    if (m_.fallbacks) m_.fallbacks->add();
    if (trace_)
      obs::emit(trace_, sim_.now(), "sched.job.tier_fallback",
                {{"job", std::string_view(job.name)}});
  }

  platform_.invoke(
      fn_, job.work,
      [this, job, released, deadline, est,
       accrued](const serverless::InvocationResult& r) {
        if (r.preempted) {
          ++report_.spot_preemptions;
          if (m_.spot_preemptions) m_.spot_preemptions->add();
          if (trace_)
            obs::emit(trace_, sim_.now(), "sched.job.spot_retry",
                      {{"job", std::string_view(job.name)},
                       {"wasted_cost", r.cost}});
          // Retry immediately; the wasted partial execution stays on the
          // bill.
          attempt(job, released, deadline, est, accrued + r.cost,
                  /*spotted=*/true);
          return;
        }
        complete(job, released, deadline, r, accrued);
      },
      use_spot ? serverless::Tier::Spot : serverless::Tier::OnDemand);
}

void DeferredExecutor::complete(const DeferredJob& job, TimePoint released,
                                TimePoint deadline,
                                const serverless::InvocationResult& r,
                                Money accrued) {
  DeferredOutcome out;
  out.name = job.name;
  out.released = released;
  out.started = r.started;
  out.finished = r.finished;
  out.met_deadline = r.finished <= deadline;
  out.cost = accrued + r.cost;

  ++report_.jobs;
  if (!out.met_deadline) ++report_.deadline_misses;
  report_.total_cost += out.cost;
  const double latency_s = (out.finished - out.released).to_seconds();
  report_.completion_latency_s.add(latency_s);

  if (m_.jobs) m_.jobs->add();
  if (!out.met_deadline && m_.deadline_misses) m_.deadline_misses->add();
  if (m_.completion_latency_s) m_.completion_latency_s->add(latency_s);
  if (m_.job_cost_usd) m_.job_cost_usd->add(out.cost.to_usd());
  if (trace_)
    obs::emit(trace_, sim_.now(), "sched.job.complete",
              {{"job", std::string_view(job.name)},
               {"latency", out.finished - out.released},
               {"met_deadline", out.met_deadline},
               {"cost", out.cost}});
}

}  // namespace ntco::sched
