#include "ntco/sched/upload_planner.hpp"

namespace ntco::sched {

UploadDecision UploadPlanner::outcome_at(TimePoint start, TimePoint deadline,
                                         const UploadJob& job) const {
  const auto& phase = schedule_.phase_at(start);
  UploadDecision d;
  d.start = start;
  d.duration = phase.tech.one_way_latency + job.bytes / phase.tech.uplink;
  d.data_cost = phase.data_price_per_gb *
                (static_cast<double>(job.bytes.count_bytes()) / 1e9);
  d.radio_energy = device_.radio_tx * d.duration;
  d.meets_deadline = start + d.duration <= deadline;
  d.tech = phase.tech.name;
  return d;
}

UploadDecision UploadPlanner::plan(TimePoint release,
                                   const UploadJob& job) const {
  NTCO_EXPECTS(!job.slack.is_negative());
  const TimePoint deadline = release + job.slack;
  const UploadDecision now = outcome_at(release, deadline, job);
  if (cfg_.policy == Policy::Immediate || !now.meets_deadline) return now;

  // Candidate: the next free (unmetered) phase, if it is reachable in time.
  const auto free_start = schedule_.next_matching(
      release, [](const net::ConnectivityPhase& p) {
        return p.data_price_per_gb.is_zero();
      });
  if (!free_start.has_value()) return now;
  const UploadDecision waited = outcome_at(*free_start, deadline, job);
  if (!waited.meets_deadline) return now;

  const auto score = [this](const UploadDecision& d) {
    return d.data_cost.to_usd() +
           cfg_.energy_weight_per_joule * d.radio_energy.to_joules();
  };
  return score(waited) < score(now) ? waited : now;
}

}  // namespace ntco::sched
