// The simulation kernel is header-only; this translation unit exists so the
// module builds as a normal static library and the headers get compiled
// (and their warnings surfaced) even before any consumer exists.
// ntco-lint: allow(R8) compile anchor: this TU exists to build the headers
#include "ntco/sim/server_pool.hpp"
// ntco-lint: allow(R8) compile anchor: this TU exists to build the headers
#include "ntco/sim/simulator.hpp"
