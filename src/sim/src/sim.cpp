// The simulation kernel is header-only; this translation unit exists so the
// module builds as a normal static library and the headers get compiled
// (and their warnings surfaced) even before any consumer exists.
#include "ntco/sim/server_pool.hpp"
#include "ntco/sim/simulator.hpp"
