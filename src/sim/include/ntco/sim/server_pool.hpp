#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>

#include "ntco/common/contracts.hpp"
#include "ntco/common/units.hpp"
#include "ntco/sim/simulator.hpp"

/// \file server_pool.hpp
/// FIFO multi-server queueing resource (an M/G/c service station when fed
/// with Poisson arrivals). Used to model fixed-capacity edge sites, build
/// agents in the CI/CD simulator, and anywhere contention for a bounded
/// resource matters.
///
/// Jobs are addressable: `submit` returns a Ticket and `cancel` removes a
/// queued or in-service job, reporting how much service it already
/// consumed. That is the primitive the continuum migration engine uses to
/// checkpoint work off a saturated or failing edge site.

namespace ntco::sim {

/// Fixed pool of identical servers with an unbounded FIFO queue.
class ServerPool {
 public:
  /// `on_done(started_at)` fires when the job finishes service; `started_at`
  /// is when it left the queue, so callers can derive queueing delay.
  using Completion = std::function<void(TimePoint started_at)>;

  /// Handle for a submitted job, usable until its completion fires.
  using Ticket = std::uint64_t;

  /// What `cancel` found. `consumed` is the service time already rendered
  /// (zero for a queued job); `started` is only meaningful when
  /// `was_running`.
  struct CancelInfo {
    bool was_running = false;
    TimePoint started;
    Duration consumed;
  };

  /// Queue/service position of a live job (see `status`).
  struct Status {
    bool running = false;
    TimePoint started;  ///< service start; meaningful when `running`
  };

  ServerPool(Simulator& sim, std::size_t servers)
      : sim_(sim), free_(servers), capacity_(servers) {
    NTCO_EXPECTS(servers > 0);
  }

  ServerPool(const ServerPool&) = delete;
  ServerPool& operator=(const ServerPool&) = delete;

  /// Enqueues a job needing `service` time on one server.
  Ticket submit(Duration service, Completion on_done) {
    NTCO_EXPECTS(!service.is_negative());
    NTCO_EXPECTS(on_done != nullptr);
    const Ticket ticket = next_ticket_++;
    queue_.push_back(Job{ticket, service, std::move(on_done)});
    dispatch();
    return ticket;
  }

  /// Removes a queued or running job. The job's completion never fires;
  /// a freed server immediately picks up queued work. Returns nullopt if
  /// the ticket is unknown (already completed or cancelled).
  std::optional<CancelInfo> cancel(Ticket ticket) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->ticket != ticket) continue;
      queue_.erase(it);
      return CancelInfo{};
    }
    const auto it = running_.find(ticket);
    if (it == running_.end()) return std::nullopt;
    const Running run = it->second;
    running_.erase(it);
    sim_.cancel(run.completion);
    CancelInfo info;
    info.was_running = true;
    info.started = run.started;
    const Duration elapsed = sim_.now() - run.started;
    info.consumed = elapsed < run.service ? elapsed : run.service;
    // busy_time_ was charged for the full service at dispatch; refund the
    // part that will never be rendered.
    busy_time_ -= run.service - info.consumed;
    ++free_;
    dispatch();
    return info;
  }

  /// Position of a live job: queued (nullopt `running`) or in service.
  [[nodiscard]] std::optional<Status> status(Ticket ticket) const {
    for (const auto& job : queue_)
      if (job.ticket == ticket) return Status{};
    const auto it = running_.find(ticket);
    if (it == running_.end()) return std::nullopt;
    return Status{true, it->second.started};
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t busy() const { return capacity_ - free_; }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }

  /// Accumulated busy server-time (for utilisation accounting).
  [[nodiscard]] Duration total_busy_time() const { return busy_time_; }

  /// Jobs fully served so far.
  [[nodiscard]] std::uint64_t completed() const { return completed_; }

 private:
  struct Job {
    Ticket ticket = 0;
    Duration service;
    Completion on_done;
  };

  struct Running {
    EventId completion = kNoEvent;
    TimePoint started;
    Duration service;
  };

  void dispatch() {
    while (free_ > 0 && !queue_.empty()) {
      Job job = std::move(queue_.front());
      queue_.pop_front();
      --free_;
      const TimePoint started = sim_.now();
      busy_time_ += job.service;
      const Ticket ticket = job.ticket;
      const EventId ev = sim_.schedule_after(
          job.service,
          [this, ticket, started, done = std::move(job.on_done)]() mutable {
            running_.erase(ticket);
            ++free_;
            ++completed_;
            done(started);
            dispatch();
          });
      running_.emplace(ticket, Running{ev, started, job.service});
    }
  }

  Simulator& sim_;
  std::size_t free_;
  std::size_t capacity_;
  std::deque<Job> queue_;
  std::map<Ticket, Running> running_;
  Ticket next_ticket_ = 1;
  Duration busy_time_;
  std::uint64_t completed_ = 0;
};

}  // namespace ntco::sim
