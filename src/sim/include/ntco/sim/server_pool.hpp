#pragma once

#include <deque>
#include <functional>

#include "ntco/common/contracts.hpp"
#include "ntco/common/units.hpp"
#include "ntco/sim/simulator.hpp"

/// \file server_pool.hpp
/// FIFO multi-server queueing resource (an M/G/c service station when fed
/// with Poisson arrivals). Used to model fixed-capacity edge sites, build
/// agents in the CI/CD simulator, and anywhere contention for a bounded
/// resource matters.

namespace ntco::sim {

/// Fixed pool of identical servers with an unbounded FIFO queue.
class ServerPool {
 public:
  /// `on_done(started_at)` fires when the job finishes service; `started_at`
  /// is when it left the queue, so callers can derive queueing delay.
  using Completion = std::function<void(TimePoint started_at)>;

  ServerPool(Simulator& sim, std::size_t servers)
      : sim_(sim), free_(servers), capacity_(servers) {
    NTCO_EXPECTS(servers > 0);
  }

  ServerPool(const ServerPool&) = delete;
  ServerPool& operator=(const ServerPool&) = delete;

  /// Enqueues a job needing `service` time on one server.
  void submit(Duration service, Completion on_done) {
    NTCO_EXPECTS(!service.is_negative());
    NTCO_EXPECTS(on_done != nullptr);
    queue_.push_back(Job{service, std::move(on_done)});
    dispatch();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t busy() const { return capacity_ - free_; }
  [[nodiscard]] std::size_t queued() const { return queue_.size(); }

  /// Accumulated busy server-time (for utilisation accounting).
  [[nodiscard]] Duration total_busy_time() const { return busy_time_; }

  /// Jobs fully served so far.
  [[nodiscard]] std::uint64_t completed() const { return completed_; }

 private:
  struct Job {
    Duration service;
    Completion on_done;
  };

  void dispatch() {
    while (free_ > 0 && !queue_.empty()) {
      Job job = std::move(queue_.front());
      queue_.pop_front();
      --free_;
      const TimePoint started = sim_.now();
      busy_time_ += job.service;
      sim_.schedule_after(
          job.service,
          [this, started, done = std::move(job.on_done)]() mutable {
            ++free_;
            ++completed_;
            done(started);
            dispatch();
          });
    }
  }

  Simulator& sim_;
  std::size_t free_;
  std::size_t capacity_;
  std::deque<Job> queue_;
  Duration busy_time_;
  std::uint64_t completed_ = 0;
};

}  // namespace ntco::sim
