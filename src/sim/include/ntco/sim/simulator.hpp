#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <type_traits>
#include <unordered_set>
#include <vector>

#include "ntco/common/contracts.hpp"
#include "ntco/common/units.hpp"
#include "ntco/obs/trace.hpp"

/// \file simulator.hpp
/// Deterministic discrete-event simulation kernel.
///
/// The kernel is single-threaded and deterministic: events that share a
/// timestamp fire in the order they were scheduled. All platform simulators
/// (serverless, edge, network, scheduler, CI/CD) are built on this kernel, in
/// the role EdgeCloudSim / iFogSim play for published offloading studies.
///
/// Observability: attach an obs::TraceSink to log every event lifecycle
/// transition ("sim.event.scheduled" / "sim.event.fired" /
/// "sim.event.cancelled", see DESIGN.md "Observability"). With no sink
/// attached the hooks cost one branch per transition and nothing else.

namespace ntco::sim {

/// Opaque handle for a scheduled event; usable to cancel it.
using EventId = std::uint64_t;

/// Single-threaded discrete-event simulator.
///
/// Usage:
///   Simulator sim;
///   sim.schedule_after(Duration::millis(5), [&]{ ... });
///   sim.run();
class Simulator : public obs::TraceClock {
 public:
  using Handler = std::function<void()>;

  /// Current simulated time. Monotonically non-decreasing.
  [[nodiscard]] TimePoint now() const { return now_; }

  /// obs::TraceClock: lets traced components that hold no Simulator
  /// reference (network links) timestamp their records.
  [[nodiscard]] TimePoint trace_now() const override { return now_; }

  /// Attaches a sink receiving every event lifecycle record; nullptr
  /// detaches. The sink must outlive the simulator or be detached first.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }
  [[nodiscard]] obs::TraceSink* trace_sink() const { return trace_; }

  /// Schedules `fn` at absolute time `t`. Pre: t >= now().
  EventId schedule_at(TimePoint t, Handler fn) {
    NTCO_EXPECTS(t >= now_);
    NTCO_EXPECTS(fn != nullptr);
    const EventId id = next_seq_++;
    queue_.push(Event{t, id, std::move(fn)});
    pending_ids_.insert(id);
    if (trace_)
      obs::emit(trace_, now_, "sim.event.scheduled", {{"seq", id}, {"at", t}});
    return id;
  }

  /// Schedules `fn` after a non-negative delay from now.
  EventId schedule_after(Duration d, Handler fn) {
    NTCO_EXPECTS(!d.is_negative());
    return schedule_at(now_ + d, std::move(fn));
  }

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool cancel(EventId id) {
    if (pending_ids_.erase(id) == 0) return false;
    cancelled_.insert(id);
    if (trace_) obs::emit(trace_, now_, "sim.event.cancelled", {{"seq", id}});
    return true;
  }

  /// Number of events still pending (excludes cancelled ones).
  [[nodiscard]] std::size_t pending() const { return pending_ids_.size(); }

  /// Ids of all pending events, in ascending (i.e. scheduling) order.
  /// pending_ids_ is an unordered set, so any ordered output derived from
  /// it must be produced by sorted extraction — copy out, then sort —
  /// never by iterating it into a result directly (hash order is
  /// implementation-defined; see the membership-only contract below).
  [[nodiscard]] std::vector<EventId> pending_event_ids() const {
    std::vector<EventId> ids(pending_ids_.begin(), pending_ids_.end());
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  /// Fires the earliest pending event. Returns false if none remain.
  bool step() {
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      if (cancelled_.erase(top.seq) > 0) {
        queue_.pop();
        continue;
      }
      now_ = top.time;
      const EventId seq = top.seq;
      // Move the handler out before popping: the handler may schedule new
      // events (which can reallocate the queue), so it must not be invoked
      // through queue storage. The const_cast is sound because the
      // comparator orders by (time, seq) only, so a moved-from fn cannot
      // perturb the heap; moving spares a std::function copy (and its heap
      // clone for captures beyond the small-buffer size) on every event.
      Handler fn = std::move(const_cast<Event&>(top).fn);
      queue_.pop();
      pending_ids_.erase(seq);
      if (trace_) obs::emit(trace_, now_, "sim.event.fired", {{"seq", seq}});
      fn();
      return true;
    }
    return false;
  }

  /// Runs until no events remain. Returns the number of events fired.
  std::size_t run() {
    std::size_t n = 0;
    while (step()) ++n;
    return n;
  }

  /// Fires every event with time <= `horizon`, then advances the clock to
  /// `horizon`. Returns the number of events fired.
  std::size_t run_until(TimePoint horizon) {
    NTCO_EXPECTS(horizon >= now_);
    std::size_t n = 0;
    for (;;) {
      drop_cancelled_head();
      if (queue_.empty() || queue_.top().time > horizon) break;
      if (step()) ++n;
    }
    now_ = horizon;
    return n;
  }

  /// Time of the earliest pending (non-cancelled) event.
  /// Pre: pending() > 0.
  [[nodiscard]] TimePoint next_event_time() {
    drop_cancelled_head();
    NTCO_EXPECTS(!queue_.empty());
    return queue_.top().time;
  }

 private:
  struct Event {
    TimePoint time;
    EventId seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // FIFO among simultaneous events
    }
  };

  void drop_cancelled_head() {
    while (!queue_.empty() && cancelled_.erase(queue_.top().seq) > 0)
      queue_.pop();
  }

  TimePoint now_;
  EventId next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Contract: cancelled_ and pending_ids_ are MEMBERSHIP-ONLY sets —
  // insert/erase/count, never iterated. Unordered iteration order is
  // implementation-defined and would leak nondeterminism into anything
  // derived from it (the exact hazard ntco-lint rule R2 rejects
  // tree-wide). Any ordered view must go through sorted extraction; the
  // only such view is pending_event_ids() above. The static_assert pins
  // EventId to an unsigned integer so that sorted extraction stays total,
  // cheap, and stable (no NaN-like incomparable values, no overflow UB in
  // the comparison).
  static_assert(std::is_unsigned_v<EventId>,
                "EventId must be an unsigned integer: pending_event_ids() "
                "sorts extracted ids, and the (time, seq) event ordering "
                "relies on well-defined unsigned comparison");
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> pending_ids_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace ntco::sim
